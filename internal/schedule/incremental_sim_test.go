package schedule_test

import (
	"math"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// TestRescheduleContentionFreeOnDenseOracle validates an incrementally
// patched schedule against the dense progressive-filling simulator, the
// repo's reference oracle: with MinEfficiency 1 and barrier-separated
// phases, every payload flow of a truly contention-free schedule runs at
// full link bandwidth, so its transfer time is exactly msize/bandwidth. Any
// intra-phase link sharing the analytical Verify might conceivably miss
// would show up here as a stretched flow.
func TestRescheduleContentionFreeOnDenseOracle(t *testing.T) {
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	s2 := g.MustAddSwitch("s2")
	g.MustConnect(s0, s1)
	g.MustConnect(s1, s2)
	for i, sw := range []int{s0, s0, s1, s2, s2} {
		g.MustConnect(sw, g.MustAddMachine(machineName(i)))
	}
	g.MustValidate()

	old, err := schedule.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	newG, rd, err := g.ApplyDelta(topology.Delta{Op: topology.OpJoin, Node: "fresh0", Attach: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule.Reschedule(old, newG, rd)
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Verify(newG, s, false); err != nil {
		t.Fatal(err)
	}

	sc, err := alltoall.NewScheduled(s, nil, alltoall.BarrierSync)
	if err != nil {
		t.Fatal(err)
	}
	const (
		bw    = 1e6
		msize = 50000
		alpha = 1e-6
	)
	w, err := simnet.NewWorld(simnet.Config{
		Graph:          newG,
		LinkBandwidth:  bw,
		StartupLatency: alpha,
		MinEfficiency:  1,
		RateEngine:     simnet.RateEngineReference,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c mpi.Comm) error {
		return sc.Fn()(c, alltoall.NewShared(msize), msize)
	}); err != nil {
		t.Fatal(err)
	}

	payload := 0
	for _, r := range w.FlowTrace() {
		if r.Size != msize {
			continue // barrier traffic
		}
		payload++
		got := r.FinishedAt - r.StartedAt
		want := float64(msize) / bw
		if math.Abs(got-want) > want*1e-9 {
			t.Errorf("flow %d->%d stretched: transfer %.9g s, contention-free is %.9g s",
				r.Src, r.Dst, got, want)
		}
	}
	n := newG.NumMachines()
	if wantFlows := n * (n - 1); payload != wantFlows {
		t.Errorf("oracle saw %d payload flows, want %d", payload, wantFlows)
	}
}

func machineName(i int) string {
	return "m" + string(rune('0'+i))
}
