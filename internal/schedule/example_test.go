package schedule_test

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// ExampleBuild constructs and verifies the contention-free schedule for a
// small two-switch cluster.
func ExampleBuild() {
	g, err := topology.ParseString(`
switches s0 s1
machines n0 n1 n2 n3
link s0 s1
link s0 n0
link s0 n1
link s1 n2
link s1 n3
`)
	if err != nil {
		log.Fatal(err)
	}
	s, err := schedule.Build(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Verify(g, s, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d messages in %d phases (load %d)\n",
		s.NumMessages(), len(s.Phases), g.AAPCLoad())
	fmt.Print(s)
	// Output:
	// 12 messages in 4 phases (load 4)
	// phase 0: 0->2 1->0 2->3 3->1
	// phase 1: 0->1 1->2 3->0
	// phase 2: 0->3 2->0
	// phase 3: 1->3 2->1 3->2
}
