package schedule

import "math/bits"

// edgeUsage tracks which phases occupy each directed edge as one bitset per
// edge over the phase axis (edge-major, the transpose of BuildGreedy's
// phase-major bitsets). First-fit probing becomes "first zero bit of the OR
// of the path's rows": word-wise with early exit, so probing P phases costs
// O(P/64 * |path|) instead of O(P * |path|).
//
// The invariant numPhases < stride*64 always holds, so a probe is
// guaranteed to find a free bit at numPhases (never set) without bounds
// checks: a probe result equal to numPhases means "open a new phase".
type edgeUsage struct {
	words     []uint64 // numEdges rows of stride words each
	stride    int
	numEdges  int
	numPhases int
}

// newEdgeUsage sizes the bitsets for numEdges directed edges and an
// expected phaseCap phases (grown on demand).
func newEdgeUsage(numEdges, phaseCap int) *edgeUsage {
	if phaseCap < 63 {
		phaseCap = 63
	}
	stride := phaseCap/64 + 1
	return &edgeUsage{
		words:    make([]uint64, numEdges*stride),
		stride:   stride,
		numEdges: numEdges,
	}
}

// set marks the phase as occupied on every edge of the path and extends
// numPhases to cover it, growing the bitsets when the invariant
// numPhases < stride*64 would break.
func (u *edgeUsage) set(path []int32, phase int) {
	if phase >= u.numPhases {
		u.numPhases = phase + 1
		if u.numPhases >= u.stride*64 {
			u.grow()
		}
	}
	w, bit := phase>>6, uint64(1)<<uint(phase&63)
	for _, e := range path {
		u.words[int(e)*u.stride+w] |= bit
	}
}

// grow doubles the per-edge stride, preserving contents.
func (u *edgeUsage) grow() {
	ns := u.stride * 2
	nw := make([]uint64, u.numEdges*ns)
	for e := 0; e < u.numEdges; e++ {
		copy(nw[e*ns:e*ns+u.stride], u.words[e*u.stride:(e+1)*u.stride])
	}
	u.words, u.stride = nw, ns
}

// firstFree returns the smallest phase >= from that is unoccupied on every
// edge of the path. The result is at most numPhases (a fresh phase).
//
//aapc:noalloc first-fit probe, the daemon's incremental-reschedule hot path
func (u *edgeUsage) firstFree(path []int32, from int) int {
	w := from >> 6
	// Mask out the bits below from in the first word so they read as
	// occupied.
	low := ^uint64(0) >> uint(64-from&63) // 0 mask when from%64 == 0
	for ; ; w++ {
		acc := low
		low = 0
		for _, e := range path {
			acc |= u.words[int(e)*u.stride+w]
		}
		if acc != ^uint64(0) {
			return w<<6 + bits.TrailingZeros64(^acc)
		}
	}
}
