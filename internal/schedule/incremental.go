package schedule

import (
	"fmt"
	"sort"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Reschedule patches an existing contention-free schedule after an
// incremental topology change instead of recompiling from scratch.
//
// The tree structure makes this sound: adding or removing a leaf (machine
// join/leave) or pruning a subtree (switch failure) never changes the
// unique path between any two surviving machines, so every message between
// survivors stays exactly where it was — its phase slot is pinned and the
// pinned set remains contention-free by assumption. Only the messages
// incident to the affected machines need placement:
//
//   - messages with a removed endpoint are dropped (phases left empty by
//     departures are compacted away);
//   - messages with an added endpoint are first-fit placed against the
//     pinned occupancy, in sorted (src, dst) order, opening new phases only
//     when no existing phase has the whole path free.
//
// The result is contention-free by construction but generally not
// phase-optimal; first-fit keeps it within the greedy bound (a re-placed
// message lands in a phase no later than its path-conflict count). At
// N=512 a single join or leave patches in milliseconds where the greedy
// fallback takes tens of seconds — the steady-state path of the schedule
// daemon.
//
// old must cover rd.NumOld ranks and newG must have rd.NumNew machines,
// with rd produced by topology.ApplyDelta for the old->new transition.
func Reschedule(old *Schedule, newG *topology.Graph, rd *topology.RankDelta) (*Schedule, error) {
	if old.NumRanks != rd.NumOld {
		return nil, fmt.Errorf("schedule: Reschedule: schedule covers %d ranks, delta expects %d",
			old.NumRanks, rd.NumOld)
	}
	if got := newG.NumMachines(); got != rd.NumNew {
		return nil, fmt.Errorf("schedule: Reschedule: topology has %d machines, delta expects %d",
			got, rd.NumNew)
	}
	n := rd.NumNew
	s := &Schedule{NumRanks: n}
	if n < 2 {
		return s, nil
	}
	idx := newG.NewEdgeIndex()

	added := make([]bool, n)
	for _, r := range rd.Added {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("schedule: Reschedule: added rank %d out of range", r)
		}
		added[r] = true
	}
	// Every (src, dst) pair with at least one added endpoint must be
	// placed; everything between survivors is pinned.
	newMsgs := make([]Message, 0, 2*len(rd.Added)*n)
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src != dst && (added[src] || added[dst]) {
				newMsgs = append(newMsgs, Message{Src: src, Dst: dst})
			}
		}
	}
	sort.Slice(newMsgs, func(i, j int) bool {
		if newMsgs[i].Src != newMsgs[j].Src {
			return newMsgs[i].Src < newMsgs[j].Src
		}
		return newMsgs[i].Dst < newMsgs[j].Dst
	})

	u := newEdgeUsage(idx.Len(), len(old.Phases)+len(newMsgs)+1)
	phases := make([]Phase, len(old.Phases))
	var path []int32

	// Pin the surviving messages in their original phases; their paths are
	// unchanged by the delta, so the pinned occupancy stays
	// contention-free.
	for pi, p := range old.Phases {
		for _, m := range p {
			if m.Src < 0 || m.Src >= rd.NumOld || m.Dst < 0 || m.Dst >= rd.NumOld {
				return nil, fmt.Errorf("schedule: Reschedule: message %v out of old rank range", m)
			}
			ns, nd := rd.OldToNew[m.Src], rd.OldToNew[m.Dst]
			if ns < 0 || nd < 0 {
				continue // an endpoint left the cluster
			}
			path = newG.AppendPathEdgeIDs(idx, newG.MachineID(ns), newG.MachineID(nd), path[:0])
			u.set(path, pi)
			phases[pi] = append(phases[pi], Message{Src: ns, Dst: nd})
		}
	}
	if u.numPhases < len(old.Phases) {
		u.numPhases = len(old.Phases)
	}

	// First-fit place the messages incident to the added machines.
	for _, m := range newMsgs {
		path = newG.AppendPathEdgeIDs(idx, newG.MachineID(m.Src), newG.MachineID(m.Dst), path[:0])
		p := u.firstFree(path, 0)
		u.set(path, p)
		for len(phases) <= p {
			phases = append(phases, nil)
		}
		phases[p] = append(phases[p], m)
	}

	// Compact phases emptied by departures.
	for _, p := range phases {
		if len(p) > 0 {
			s.Phases = append(s.Phases, p)
		}
	}
	s.normalize()
	return s, nil
}
