package schedule

import "fmt"

// GroupSchedule is the result of global message scheduling (Section 4.2):
// for every ordered subtree pair (i, j) the contiguous range of phases in
// which the group of messages ti -> tj is realized. The extended ring
// schedule guarantees (Lemma 2) that the total number of phases is
// |M0| * (|M| - |M0|) and that within a phase no two groups contend on the
// links connecting subtrees to the root.
type GroupSchedule struct {
	// Sizes holds the subtree machine counts |M0| >= |M1| >= ... >= |Mk-1|.
	Sizes []int
	// Total is the number of phases, |M0| * (|M| - |M0|).
	Total int
	// start[i][j] is the first phase of group ti -> tj; start[i][i] = -1.
	start [][]int
}

// NewGroupSchedule computes the extended ring global schedule for subtrees
// with the given machine counts, which must be positive and in non-increasing
// order with at least two subtrees.
func NewGroupSchedule(sizes []int) (*GroupSchedule, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("schedule: need at least 2 subtrees, have %d", len(sizes))
	}
	total := 0
	for i, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("schedule: subtree %d has non-positive size %d", i, s)
		}
		if i > 0 && s > sizes[i-1] {
			return nil, fmt.Errorf("schedule: subtree sizes not sorted: |M%d|=%d > |M%d|=%d",
				i, s, i-1, sizes[i-1])
		}
		total += s
	}
	k := len(sizes)
	gs := &GroupSchedule{
		Sizes: append([]int(nil), sizes...),
		Total: sizes[0] * (total - sizes[0]),
		start: make([][]int, k),
	}
	for i := 0; i < k; i++ {
		gs.start[i] = make([]int, k)
		for j := 0; j < k; j++ {
			switch {
			case i == j:
				gs.start[i][j] = -1
			case j > i:
				// Messages in ti -> tj start at |Mi| * sum(|Mk|, i<k<j).
				p := 0
				for x := i + 1; x < j; x++ {
					p += sizes[x]
				}
				gs.start[i][j] = sizes[i] * p
			default: // i > j
				// Messages in ti -> tj start at
				// |M0|*(|M|-|M0|) - |Mj| * sum(|Mk|, j<k<=i).
				p := 0
				for x := j + 1; x <= i; x++ {
					p += sizes[x]
				}
				gs.start[i][j] = gs.Total - sizes[j]*p
			}
		}
	}
	return gs, nil
}

// K returns the number of subtrees.
func (gs *GroupSchedule) K() int { return len(gs.Sizes) }

// Start returns the first phase of the group ti -> tj.
func (gs *GroupSchedule) Start(i, j int) int {
	if i == j {
		panic(fmt.Sprintf("schedule: Start(%d, %d): no self group", i, j))
	}
	return gs.start[i][j]
}

// End returns one past the last phase of the group ti -> tj.
func (gs *GroupSchedule) End(i, j int) int {
	return gs.Start(i, j) + gs.Sizes[i]*gs.Sizes[j]
}

// GroupAt returns which group (i -> j) subtree i is sending at phase p, or
// ok=false when subtree i has no sending group covering p (the subtree is
// idle as a sender in that phase).
func (gs *GroupSchedule) GroupAt(i, p int) (j int, ok bool) {
	for j = 0; j < gs.K(); j++ {
		if j == i {
			continue
		}
		if s := gs.Start(i, j); s <= p && p < gs.End(i, j) {
			return j, true
		}
	}
	return -1, false
}

// SenderGroupInto returns which group (i -> j) is sending into subtree j at
// phase p, or ok=false when no group targets subtree j in that phase.
func (gs *GroupSchedule) SenderGroupInto(j, p int) (i int, ok bool) {
	for i = 0; i < gs.K(); i++ {
		if i == j {
			continue
		}
		if s := gs.Start(i, j); s <= p && p < gs.End(i, j) {
			return i, true
		}
	}
	return -1, false
}
