//go:build race

package schedule

// raceEnabled reports whether the race detector is compiled in; the
// wall-clock bound of the incremental-reschedule latency test is only
// asserted without it (the race runtime slows CPU-bound bitset code 5-20x).
const raceEnabled = true
