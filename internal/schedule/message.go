// Package schedule implements the AAPC message scheduling algorithm of
// Faraj & Yuan (IPPS 2005, Section 4): the construction of contention-free
// phases that realize all-to-all personalized communication on a tree
// topology in the theoretically minimal number of phases.
//
// The algorithm has three components:
//
//  1. Root identification (provided by package topology, Section 4.1).
//  2. Global message scheduling: an extended ring schedule that allocates a
//     contiguous range of phases to the group of messages from subtree ti to
//     subtree tj (Section 4.2).
//  3. Global and local message assignment: the six-step algorithm of Fig. 4
//     that places each individual message into a phase using broadcast and
//     rotate patterns (Section 4.3).
//
// The result is a Schedule whose phase count equals the AAPC load of the
// topology, with no two messages of a phase sharing a directed link — the
// conditions that guarantee peak aggregate throughput.
package schedule

import (
	"fmt"
	"sort"
)

// Message is one AAPC point-to-point communication between machine ranks.
type Message struct {
	// Src is the sending machine rank.
	Src int
	// Dst is the receiving machine rank.
	Dst int
}

// String renders the message as "src->dst".
func (m Message) String() string { return fmt.Sprintf("%d->%d", m.Src, m.Dst) }

// Phase is a set of messages intended to proceed concurrently without
// contention.
type Phase []Message

// Schedule is a phased realization of the AAPC pattern on NumRanks machines.
type Schedule struct {
	// NumRanks is the number of machines |M|.
	NumRanks int
	// Phases lists the contention-free phases in execution order. Within a
	// phase, messages are sorted by (Src, Dst) for determinism.
	Phases []Phase
}

// NumMessages returns the total number of messages across all phases.
func (s *Schedule) NumMessages() int {
	total := 0
	for _, p := range s.Phases {
		total += len(p)
	}
	return total
}

// PhaseOf returns a map from message to its phase index.
func (s *Schedule) PhaseOf() map[Message]int {
	out := make(map[Message]int, s.NumMessages())
	for i, p := range s.Phases {
		for _, m := range p {
			out[m] = i
		}
	}
	return out
}

// normalize sorts messages within each phase for deterministic output.
func (s *Schedule) normalize() {
	for _, p := range s.Phases {
		sort.Slice(p, func(i, j int) bool {
			if p[i].Src != p[j].Src {
				return p[i].Src < p[j].Src
			}
			return p[i].Dst < p[j].Dst
		})
	}
}

// String renders the schedule one phase per line.
func (s *Schedule) String() string {
	out := ""
	for i, p := range s.Phases {
		out += fmt.Sprintf("phase %d:", i)
		for _, m := range p {
			out += " " + m.String()
		}
		out += "\n"
	}
	return out
}

// mod returns a mod m with a non-negative result, as the scheduling formulas
// of the paper require (Go's % can be negative for negative a).
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// gcd returns the greatest common divisor of two positive integers.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
