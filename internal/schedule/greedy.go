package schedule

import (
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// BuildGreedy constructs a contention-free phased schedule with a simple
// first-fit greedy heuristic: messages are considered in row-major order and
// each is placed into the earliest phase where its path shares no directed
// link with the messages already there.
//
// The greedy schedule satisfies conditions 1 and 2 of the Theorem (coverage
// and contention freedom) but generally needs more phases than the AAPC
// load; it serves as the ablation baseline that quantifies what the paper's
// construction buys.
func BuildGreedy(g *topology.Graph) *Schedule {
	n := g.NumMachines()
	s := &Schedule{NumRanks: n}
	if n < 2 {
		return s
	}
	idx := g.NewEdgeIndex()
	// usage[p] marks the directed edges used by phase p.
	var usage [][]bool
	for src := 0; src < n; src++ {
		for off := 1; off < n; off++ {
			dst := (src + off) % n
			ids := g.PathIDs(idx, g.MachineID(src), g.MachineID(dst))
			p := 0
			for ; p < len(usage); p++ {
				free := true
				for _, id := range ids {
					if usage[p][id] {
						free = false
						break
					}
				}
				if free {
					break
				}
			}
			if p == len(usage) {
				usage = append(usage, make([]bool, idx.Len()))
				s.Phases = append(s.Phases, nil)
			}
			for _, id := range ids {
				usage[p][id] = true
			}
			s.Phases[p] = append(s.Phases[p], Message{Src: src, Dst: dst})
		}
	}
	s.normalize()
	return s
}
