package schedule

import (
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// BuildGreedy constructs a contention-free phased schedule with a simple
// first-fit greedy heuristic: messages are considered in row-major order and
// each is placed into the earliest phase where its path shares no directed
// link with the messages already there.
//
// The greedy schedule satisfies conditions 1 and 2 of the Theorem (coverage
// and contention freedom) but generally needs more phases than the AAPC
// load; it serves as the ablation baseline that quantifies what the paper's
// construction buys.
//
// Link occupancy is tracked as one []uint64 bitset per phase over the dense
// directed-edge index: a message's path becomes a reusable mask and the
// first-fit scan is a word-wise AND with early exit, 64 links per compare,
// instead of a per-link bool probe.
func BuildGreedy(g *topology.Graph) *Schedule {
	n := g.NumMachines()
	s := &Schedule{NumRanks: n}
	if n < 2 {
		return s
	}
	idx := g.NewEdgeIndex()
	words := (idx.Len() + 63) / 64
	// usage[p] is the bitset of directed edges used by phase p.
	var usage [][]uint64
	// mask holds the current message's path in the same layout, rebuilt per
	// message in place.
	mask := make([]uint64, words)
	for src := 0; src < n; src++ {
		for off := 1; off < n; off++ {
			dst := (src + off) % n
			path := g.Path(g.MachineID(src), g.MachineID(dst))
			for i := range mask {
				mask[i] = 0
			}
			for _, e := range path {
				id := idx.ID(e)
				mask[id>>6] |= 1 << uint(id&63)
			}
			p := 0
		scan:
			for ; p < len(usage); p++ {
				for wi, w := range mask {
					if w&usage[p][wi] != 0 {
						continue scan
					}
				}
				break
			}
			if p == len(usage) {
				usage = append(usage, make([]uint64, words))
				s.Phases = append(s.Phases, nil)
			}
			for wi, w := range mask {
				usage[p][wi] |= w
			}
			s.Phases[p] = append(s.Phases[p], Message{Src: src, Dst: dst})
		}
	}
	s.normalize()
	return s
}
