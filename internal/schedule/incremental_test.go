package schedule

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// randomClusterFor derives a random cluster from quick-generated values.
func randomClusterFor(seed int64, switches, machines uint) (*topology.Graph, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	g := topology.RandomCluster(topology.RandomOptions{
		Switches: int(switches%5) + 1,
		Machines: int(machines%14) + 2,
		Rand:     rng,
	})
	return g, rng
}

// TestQuickGreedyParallelMatchesSequential pins the equivalence contract of
// the parallel builder: for any cluster and worker count, its schedule is
// byte-for-byte the sequential BuildGreedy schedule.
func TestQuickGreedyParallelMatchesSequential(t *testing.T) {
	prop := func(seed int64, switches, machines, workers uint) bool {
		g, _ := randomClusterFor(seed, switches, machines)
		want := BuildGreedy(g)
		got := BuildGreedyParallel(g, int(workers%8)+1)
		if !reflect.DeepEqual(got, want) {
			t.Logf("cluster:\n%sworkers=%d\nsequential:\n%sparallel:\n%s",
				g.Format(), int(workers%8)+1, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestGreedyParallelMatchesSequentialLarge crosses the parallel-probe
// threshold (4096 phases) that the small quick clusters never reach, so the
// speculative-probe + serial-revalidate path is the one being compared.
func TestGreedyParallelMatchesSequentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large greedy equivalence skipped in -short")
	}
	g := greedyBenchCluster(128)
	want := BuildGreedy(g)
	got := BuildGreedyParallel(g, 4)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel greedy diverges at N=128: %d vs %d phases",
			len(got.Phases), len(want.Phases))
	}
	if len(want.Phases) < 4096 {
		t.Fatalf("test did not cross the parallel-probe threshold (%d phases)", len(want.Phases))
	}
}

// applyRandomDelta picks a feasible random delta for the cluster, skewed
// toward joins and leaves (the common storm events).
func applyRandomDelta(t testingT, g *topology.Graph, rng *rand.Rand) (*topology.Graph, *topology.RankDelta) {
	for attempt := 0; attempt < 8; attempt++ {
		var d topology.Delta
		switch rng.Intn(3) {
		case 0:
			d = topology.Delta{Op: topology.OpJoin, Node: "fresh0", Attach: randomSwitch(g, rng)}
		case 1:
			d = topology.Delta{Op: topology.OpLeave,
				Node: g.Node(g.MachineID(rng.Intn(g.NumMachines()))).Name}
		default:
			d = topology.Delta{Op: topology.OpSwitchFail, Node: randomSwitch(g, rng)}
		}
		newG, rd, err := g.ApplyDelta(d)
		if err == nil && newG.NumMachines() >= 2 {
			return newG, rd
		}
	}
	// Joins are always feasible.
	newG, rd, err := g.ApplyDelta(topology.Delta{Op: topology.OpJoin, Node: "fresh0", Attach: randomSwitch(g, rng)})
	if err != nil {
		t.Fatalf("join fallback failed: %v", err)
	}
	return newG, rd
}

type testingT interface{ Fatalf(string, ...any) }

func randomSwitch(g *topology.Graph, rng *rand.Rand) string {
	var names []string
	for id := 0; id < g.NumNodes(); id++ {
		if g.Node(id).Kind == topology.Switch {
			names = append(names, g.Node(id).Name)
		}
	}
	return names[rng.Intn(len(names))]
}

// firstFitBound is the provable first-fit ceiling for the re-placed
// messages: a message can be rejected from a phase only by a conflicting
// message, and it conflicts with at most sum(load(e)-1) others over its
// path edges, so first-fit places it in a phase of index at most that sum.
func firstFitBound(g *topology.Graph, placed []Message) int {
	idx := g.NewEdgeIndex()
	load := make([]int, idx.Len())
	n := g.NumMachines()
	var path []int32
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			path = g.AppendPathEdgeIDs(idx, g.MachineID(src), g.MachineID(dst), path[:0])
			for _, e := range path {
				load[e]++
			}
		}
	}
	bound := 0
	for _, m := range placed {
		conflicts := 0
		path = g.AppendPathEdgeIDs(idx, g.MachineID(m.Src), g.MachineID(m.Dst), path[:0])
		for _, e := range path {
			conflicts += load[e] - 1
		}
		if conflicts+1 > bound {
			bound = conflicts + 1
		}
	}
	return bound
}

// TestQuickRescheduleAfterDelta: for random clusters and random feasible
// deltas, the incremental reschedule of a greedy schedule must (a) cover
// exactly the new AAPC message set with no intra-phase link sharing
// (Verify), and (b) stay within the first-fit phase bound relative to both
// the pinned schedule and a from-scratch greedy compile.
func TestQuickRescheduleAfterDelta(t *testing.T) {
	prop := func(seed int64, switches, machines uint) bool {
		g, rng := randomClusterFor(seed, switches, machines)
		old := BuildGreedy(g)
		newG, rd := applyRandomDelta(t, g, rng)
		inc, err := Reschedule(old, newG, rd)
		if err != nil {
			t.Logf("Reschedule: %v", err)
			return false
		}
		if err := Verify(newG, inc, false); err != nil {
			t.Logf("incremental schedule invalid: %v\ncluster:\n%s", err, newG.Format())
			return false
		}
		scratch := BuildGreedy(newG)
		var placed []Message
		addedSet := make(map[int]bool, len(rd.Added))
		for _, r := range rd.Added {
			addedSet[r] = true
		}
		for _, p := range inc.Phases {
			for _, m := range p {
				if addedSet[m.Src] || addedSet[m.Dst] {
					placed = append(placed, m)
				}
			}
		}
		limit := len(old.Phases)
		if b := firstFitBound(newG, placed); b > limit {
			limit = b
		}
		if len(inc.Phases) > limit {
			t.Logf("incremental used %d phases; pinned %d, first-fit bound %d, scratch %d",
				len(inc.Phases), len(old.Phases), limit, len(scratch.Phases))
			return false
		}
		// Pure departures can only shrink the schedule.
		if len(rd.Added) == 0 && len(inc.Phases) > len(old.Phases) {
			t.Logf("leave-only delta grew the schedule: %d -> %d phases",
				len(old.Phases), len(inc.Phases))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestReschedulePinsSurvivors: surviving messages must keep their relative
// phase assignment (modulo compaction of emptied phases).
func TestReschedulePinsSurvivors(t *testing.T) {
	g := greedyBenchCluster(24)
	old := BuildGreedy(g)
	newG, rd, err := g.ApplyDelta(topology.Delta{Op: topology.OpLeave, Node: "n7"})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Reschedule(old, newG, rd)
	if err != nil {
		t.Fatal(err)
	}
	oldPhase := old.PhaseOf()
	// Map each surviving old message to its new phase; the assignment must
	// be order-preserving (compaction shifts phases down monotonically).
	newPhase := inc.PhaseOf()
	shift := make(map[int]int) // old phase -> new phase
	for om, op := range oldPhase {
		ns, nd := rd.OldToNew[om.Src], rd.OldToNew[om.Dst]
		if ns < 0 || nd < 0 {
			continue
		}
		np, ok := newPhase[Message{Src: ns, Dst: nd}]
		if !ok {
			t.Fatalf("surviving message %v lost", om)
		}
		if prev, seen := shift[op]; seen && prev != np {
			t.Fatalf("old phase %d split across new phases %d and %d", op, prev, np)
		}
		shift[op] = np
		if np > op {
			t.Fatalf("survivor %v moved later: phase %d -> %d", om, op, np)
		}
	}
}

// TestRescheduleN512Milliseconds is the headline acceptance bound: a single
// node join and a single node leave at N=512 must each patch in under
// 100ms — versus roughly a minute for the sequential greedy recompile — and
// the patched schedules must verify contention-free. The wall-clock bound
// is only enforced without the race detector.
func TestRescheduleN512Milliseconds(t *testing.T) {
	if testing.Short() {
		t.Skip("N=512 reschedule skipped in -short")
	}
	g := greedyBenchCluster(512)
	old, err := Build(g) // the paper's optimal construction, fast at N=512
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []topology.Delta{
		{Op: topology.OpJoin, Node: "fresh0", Attach: "s0"},
		{Op: topology.OpLeave, Node: "n300"},
	} {
		newG, rd, err := g.ApplyDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		// Best of three: the bound is on the operation, not on scheduler
		// noise from sibling test binaries sharing the box.
		var inc *Schedule
		elapsed := time.Duration(1 << 62)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			got, err := Reschedule(old, newG, rd)
			if d := time.Since(start); d < elapsed {
				elapsed = d
			}
			if err != nil {
				t.Fatal(err)
			}
			inc = got
		}
		if err := Verify(newG, inc, false); err != nil {
			t.Fatalf("%s: incremental schedule invalid: %v", d.Format(), err)
		}
		t.Logf("%s: N=512 incremental reschedule in %v (%d -> %d phases)",
			d.Format(), elapsed, len(old.Phases), len(inc.Phases))
		if !raceEnabled && elapsed > 100*time.Millisecond {
			t.Errorf("%s: incremental reschedule took %v, want < 100ms", d.Format(), elapsed)
		}
	}
}

// BenchmarkBuildGreedyParallel tracks the parallel builder against the
// sequential baseline (BenchmarkBuildGreedy) at the same sizes.
func BenchmarkBuildGreedyParallel(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		g := greedyBenchCluster(n)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := BuildGreedyParallel(g, 0)
				if len(s.Phases) == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

// BenchmarkReschedule measures the steady-state incremental patch latency
// for a single join at daemon-relevant sizes; committed reference numbers
// live in BENCH_sched.json.
func BenchmarkReschedule(b *testing.B) {
	for _, n := range []int{128, 512} {
		g := greedyBenchCluster(n)
		old, err := Build(g)
		if err != nil {
			b.Fatal(err)
		}
		newG, rd, err := g.ApplyDelta(topology.Delta{Op: topology.OpJoin, Node: "fresh0", Attach: "s0"})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Reschedule(old, newG, rd); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
