package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg bounds generated values to useful ranges.
var quickCfg = &quick.Config{MaxCount: 300}

// boundedPair maps arbitrary uints into pattern sizes 1..12.
func boundedPair(a, b uint) (int, int) {
	return int(a%12) + 1, int(b%12) + 1
}

// TestQuickRotateRealizesAllPairs: for any sizes, the rotate pattern
// contains every (sender, receiver) pair exactly once.
func TestQuickRotateRealizesAllPairs(t *testing.T) {
	prop := func(a, b uint) bool {
		mi, mj := boundedPair(a, b)
		seen := make(map[Pair]bool)
		for _, p := range RotatePattern(mi, mj) {
			if p.SenderIdx < 0 || p.SenderIdx >= mi || p.RecvIdx < 0 || p.RecvIdx >= mj {
				return false
			}
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return len(seen) == mi*mj
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRotateLemma6Windows: every aligned window of mi phases has all
// senders; every aligned window of mj phases has all receivers.
func TestQuickRotateLemma6Windows(t *testing.T) {
	prop := func(a, b uint) bool {
		mi, mj := boundedPair(a, b)
		pat := RotatePattern(mi, mj)
		for w := 0; w+mi <= len(pat); w += mi {
			seen := make(map[int]bool)
			for _, p := range pat[w : w+mi] {
				seen[p.SenderIdx] = true
			}
			if len(seen) != mi {
				return false
			}
		}
		for w := 0; w+mj <= len(pat); w += mj {
			seen := make(map[int]bool)
			for _, p := range pat[w : w+mj] {
				seen[p.RecvIdx] = true
			}
			if len(seen) != mj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBroadcastLemma5: each broadcast sender holds exactly mj
// consecutive slots, in order.
func TestQuickBroadcastLemma5(t *testing.T) {
	prop := func(a, b uint) bool {
		mi, mj := boundedPair(a, b)
		pat := BroadcastPattern(mi, mj)
		if len(pat) != mi*mj {
			return false
		}
		for q, p := range pat {
			if p.SenderIdx != q/mj || p.RecvIdx != q%mj {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRingIsPermutationPhases: for any k, every ring phase is a
// permutation (each participant sends once and receives once) and all
// k*(k-1) messages appear.
func TestQuickRingIsPermutationPhases(t *testing.T) {
	prop := func(a uint) bool {
		k := int(a%14) + 2
		phases := Ring(k)
		if len(phases) != k-1 {
			return false
		}
		total := 0
		for _, p := range phases {
			sends := make(map[int]bool)
			recvs := make(map[int]bool)
			for _, m := range p {
				if sends[m.Src] || recvs[m.Dst] {
					return false
				}
				sends[m.Src] = true
				recvs[m.Dst] = true
			}
			if len(p) != k {
				return false
			}
			total += len(p)
		}
		return total == k*(k-1)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// sizesFromSeed builds a valid (sorted, |M0| <= |M|/2) subtree size vector.
func sizesFromSeed(seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	k := 2 + rng.Intn(6)
	sizes := make([]int, k)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(6)
	}
	sortDesc(sizes)
	total := 0
	for _, s := range sizes {
		total += s
	}
	for sizes[0] > total-sizes[0] {
		// Grow a smaller subtree until the dominance condition holds.
		sizes[len(sizes)-1]++
		total++
		sortDesc(sizes)
	}
	return sizes
}

// TestQuickGroupScheduleTiling: for any valid size vector, subtree i's send
// ranges use exactly |Mi| * (|M| - |Mi|) phases with no overlap, and the
// receive ranges into subtree j likewise tile without overlap.
func TestQuickGroupScheduleTiling(t *testing.T) {
	prop := func(seed int64) bool {
		sizes := sizesFromSeed(seed)
		gs, err := NewGroupSchedule(sizes)
		if err != nil {
			return false
		}
		k := len(sizes)
		for i := 0; i < k; i++ {
			// Send ranges of subtree i must not overlap each other.
			busy := make([]bool, gs.Total)
			count := 0
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				for p := gs.Start(i, j); p < gs.End(i, j); p++ {
					if busy[p] {
						return false
					}
					busy[p] = true
					count++
				}
			}
			total := 0
			for _, s := range sizes {
				total += s
			}
			if count != sizes[i]*(total-sizes[i]) {
				return false
			}
			// Receive ranges into subtree i must not overlap each other.
			busy = make([]bool, gs.Total)
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				for p := gs.Start(j, i); p < gs.End(j, i); p++ {
					if busy[p] {
						return false
					}
					busy[p] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickModGcd: mod is always in [0, m) and congruent; gcd divides both
// arguments and any common divisor divides it.
func TestQuickModGcd(t *testing.T) {
	propMod := func(a int, mm uint) bool {
		m := int(mm%100) + 1
		r := mod(a, m)
		return r >= 0 && r < m && (a-r)%m == 0
	}
	if err := quick.Check(propMod, quickCfg); err != nil {
		t.Error(err)
	}
	propGcd := func(aa, bb uint) bool {
		a, b := int(aa%1000)+1, int(bb%1000)+1
		g := gcd(a, b)
		if g <= 0 || a%g != 0 || b%g != 0 {
			return false
		}
		// No larger common divisor.
		for d := g + 1; d <= a && d <= b; d++ {
			if a%d == 0 && b%d == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(propGcd, quickCfg); err != nil {
		t.Error(err)
	}
}
