package schedule

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// This file extends the paper's scheduler to clusters with heterogeneous
// link speeds (gigabit trunks over 100 Mbps machine links). The paper's
// construction minimizes the number of phases under the rule "one message
// per directed link per phase", which is optimal only when all links are
// equal: a 10x trunk can carry ten concurrent messages at full end-host
// rate, so on upgraded clusters the paper's schedule over-serializes.
//
// The generalization replaces contention-freedom by capacity-respect: a
// phase is valid when every directed link carries at most speed(link)
// concurrent messages. The phase duration is then governed by the slowest
// link relative to its population, and the cost of a schedule is the sum of
// per-phase durations in units of msize/B.

// VerifyCapacity checks a schedule against the capacity-respect rule: every
// message appears exactly once, and within each phase no directed link
// carries more messages than its speed multiplier. On uniform clusters this
// is exactly the paper's contention-freedom.
func VerifyCapacity(g *topology.Graph, s *Schedule) error {
	n := g.NumMachines()
	if s.NumRanks != n {
		return verifyErrf("schedule covers %d ranks, topology has %d machines", s.NumRanks, n)
	}
	seen := make(map[Message]bool)
	idx := g.NewEdgeIndex()
	counts := make([]int, idx.Len())
	for pi, p := range s.Phases {
		for i := range counts {
			counts[i] = 0
		}
		for _, m := range p {
			if m.Src == m.Dst || m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
				return verifyErrf("phase %d: bad message %v", pi, m)
			}
			if seen[m] {
				return verifyErrf("message %v scheduled twice", m)
			}
			seen[m] = true
			for _, id := range g.PathIDs(idx, g.MachineID(m.Src), g.MachineID(m.Dst)) {
				counts[id]++
			}
		}
		for id, c := range counts {
			e := idx.Edge(id)
			if float64(c) > g.LinkSpeed(e) {
				return verifyErrf("phase %d: %d messages on link %s->%s exceed speed %g",
					pi, c, g.Node(e.U).Name, g.Node(e.V).Name, g.LinkSpeed(e))
			}
		}
	}
	if want := n * (n - 1); len(seen) != want {
		return verifyErrf("scheduled %d messages, want %d", len(seen), want)
	}
	return nil
}

// WeightedCost estimates the completion time of a schedule in units of
// msize/B: the sum over phases of the worst per-link relative load
// max_e count(e)/speed(e). For the paper's schedule on a uniform cluster
// this is exactly the phase count.
func WeightedCost(g *topology.Graph, s *Schedule) float64 {
	idx := g.NewEdgeIndex()
	counts := make([]int, idx.Len())
	total := 0.0
	for _, p := range s.Phases {
		for i := range counts {
			counts[i] = 0
		}
		for _, m := range p {
			for _, id := range g.PathIDs(idx, g.MachineID(m.Src), g.MachineID(m.Dst)) {
				counts[id]++
			}
		}
		worst := 0.0
		for id, c := range counts {
			if c == 0 {
				continue
			}
			if r := float64(c) / g.LinkSpeed(idx.Edge(id)); r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total
}

// BuildRing schedules AAPC as N-1 permutation phases (the Table 1 ring over
// all machines, ignoring switch structure). On clusters whose inter-switch
// links are fast enough, every permutation respects capacity and the ring
// is weighted-optimal: the N-1 phases are exactly the machine-link bound.
func BuildRing(g *topology.Graph) *Schedule {
	s := &Schedule{NumRanks: g.NumMachines(), Phases: Ring(g.NumMachines())}
	s.normalize()
	return s
}

// BuildAuto picks the better of the paper's construction and the ring
// schedule by weighted cost. On uniform clusters it always returns the
// paper's schedule (which is optimal there); on heterogeneous clusters it
// switches to the ring when the faster trunks make permutation phases
// capacity-valid and cheaper.
func BuildAuto(g *topology.Graph) (*Schedule, error) {
	paper, err := Build(g)
	if err != nil {
		return nil, err
	}
	if g.Uniform() || g.NumMachines() < 2 {
		return paper, nil
	}
	ring := BuildRing(g)
	if VerifyCapacity(g, ring) != nil {
		return paper, nil
	}
	if WeightedCost(g, ring) < WeightedCost(g, paper) {
		return ring, nil
	}
	return paper, nil
}

// WeightedBestCasePhases returns the lower bound on weighted cost for any
// capacity-respecting schedule: the weighted bottleneck ratio
// max_link load/speed (each link must carry its load at its speed).
func WeightedBestCasePhases(g *topology.Graph) (float64, error) {
	if g.NumMachines() < 2 {
		return 0, fmt.Errorf("schedule: need at least 2 machines")
	}
	_, ratio := g.WeightedBottleneck()
	return ratio, nil
}
