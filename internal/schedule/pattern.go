package schedule

// Pair is one slot of an inter-subtree communication pattern: at some local
// phase, the machine with index SenderIdx in the source subtree sends to the
// machine with index RecvIdx in the destination subtree.
type Pair struct {
	SenderIdx int
	RecvIdx   int
}

// BroadcastPattern returns the broadcast scheme of Section 4.3 for realizing
// ti -> tj with mi senders and mj receivers: the mi*mj local phases are
// partitioned into mi rounds of mj phases; in round r sender r transmits one
// message to each receiver in order. Each sender occupies mj continuous
// phases (Lemma 5).
func BroadcastPattern(mi, mj int) []Pair {
	pattern := make([]Pair, 0, mi*mj)
	for s := 0; s < mi; s++ {
		for r := 0; r < mj; r++ {
			pattern = append(pattern, Pair{SenderIdx: s, RecvIdx: r})
		}
	}
	return pattern
}

// RotateSenderIndex returns the sender index of the rotate scheme at local
// phase q for a pattern with mi senders and mj receivers and the identity
// base sequence. Let D = gcd(mi, mj), mi = a*D and mj = b*D. The base
// sequence is repeated b times for each block of a*b*D phases; at every
// block boundary the base sequence is rotated once more.
func RotateSenderIndex(mi, mj, q int) int {
	d := gcd(mi, mj)
	block := mi * (mj / d) // a*b*D phases per rotation block
	rot := q / block
	return mod(q+rot, mi)
}

// RotatePattern returns the rotate scheme of Section 4.3 (Table 2) for
// realizing ti -> tj: receivers repeat the fixed sequence tj,0..tj,mj-1 and
// senders follow the rotated base sequence. Counting from the first phase,
// each sender occurs once in every mi phases and each receiver once in every
// mj phases (Lemma 6), and all mi*mj messages are realized exactly once.
func RotatePattern(mi, mj int) []Pair {
	pattern := make([]Pair, mi*mj)
	for q := range pattern {
		pattern[q] = Pair{
			SenderIdx: RotateSenderIndex(mi, mj, q),
			RecvIdx:   q % mj,
		}
	}
	return pattern
}
