package schedule

// Ring computes the classic ring schedule of Table 1 for k participants:
// k-1 phases in which participant i sends to participant j at phase
// j-i-1 when j > i and phase (k-1)-(i-j) when i > j. Each phase is a
// permutation in which every participant sends exactly once and receives
// exactly once.
//
// Participants are identified by index 0..k-1; the messages returned use
// those indices as ranks. Ring is the degenerate case of the extended ring
// global schedule when every subtree holds exactly one machine.
func Ring(k int) []Phase {
	if k < 2 {
		return nil
	}
	phases := make([]Phase, k-1)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			var p int
			if j > i {
				p = j - i - 1
			} else {
				p = (k - 1) - (i - j)
			}
			phases[p] = append(phases[p], Message{Src: i, Dst: j})
		}
	}
	return phases
}

// RingPhaseOf returns the ring-schedule phase of the message i -> j among k
// participants, matching Table 1 of the paper.
func RingPhaseOf(k, i, j int) int {
	if j > i {
		return j - i - 1
	}
	return (k - 1) - (i - j)
}
