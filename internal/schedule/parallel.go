package schedule

import (
	"runtime"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// BuildGreedyParallel is BuildGreedy with the phase-probe inner loop fanned
// out across a worker pool; its output is byte-for-byte identical to the
// sequential builder (the equivalence is pinned by a testing/quick
// property).
//
// Messages are processed in the same row-major order, but in batches: the
// workers probe a batch's messages concurrently against the edge-usage
// bitsets as of the batch start (reads only), then the coordinator commits
// the batch in message order. Placements only ever add usage, so a
// message's true first-fit phase can never be *earlier* than its
// speculative probe — the commit just re-scans forward from the speculative
// phase, which is a no-op unless a batch-earlier message collided with it.
// That keeps the expensive probing parallel and the serial section to a
// handful of word operations per message, while the result stays exactly
// first-fit in the canonical order.
//
// The probe itself uses edge-major phase bitsets (see edgeUsage): first-fit
// is "first zero bit of the OR of the path's rows", 64 phases per word,
// which is also what makes the sequential fallback here much faster than
// BuildGreedy's phase-major scan at large N.
//
// workers <= 0 uses GOMAXPROCS; workers == 1 runs fully serial.
func BuildGreedyParallel(g *topology.Graph, workers int) *Schedule {
	n := g.NumMachines()
	s := &Schedule{NumRanks: n}
	if n < 2 {
		return s
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	idx := g.NewEdgeIndex()
	// Greedy lands within a few percent of the AAPC load on realistic
	// trees; leave headroom so growth is rare.
	u := newEdgeUsage(idx.Len(), g.AAPCLoad()*5/4+64)

	type msg struct {
		src, dst int
		path     []int32
		phase    int
	}
	// Row-major message order, identical to BuildGreedy.
	msgs := make([]msg, 0, n*(n-1))
	for src := 0; src < n; src++ {
		for off := 1; off < n; off++ {
			msgs = append(msgs, msg{src: src, dst: (src + off) % n})
		}
	}

	const batchSize = 256
	if workers > batchSize {
		workers = batchSize
	}
	var wg sync.WaitGroup
	arena := make([]int32, 0, 64) // serial-path scratch
	for lo := 0; lo < len(msgs); lo += batchSize {
		hi := lo + batchSize
		if hi > len(msgs) {
			hi = len(msgs)
		}
		batch := msgs[lo:hi]
		if workers > 1 && u.numPhases >= 4096 {
			// Parallel speculative probe: worker w handles messages
			// w, w+workers, ... of the batch. Each result is keyed to
			// its message index, so worker interleaving cannot reach
			// the output.
			for w := 0; w < workers; w++ {
				wg.Add(1)
				//aapc:allow determinism speculative probes land in batch[i] by message index and are re-validated serially in message order below
				go func(w int) {
					defer wg.Done()
					var buf []int32
					for i := w; i < len(batch); i += workers {
						m := &batch[i]
						buf = g.AppendPathEdgeIDs(idx, g.MachineID(m.src), g.MachineID(m.dst), buf[:0])
						m.path = append([]int32(nil), buf...)
						m.phase = u.firstFree(m.path, 0)
					}
				}(w)
			}
			wg.Wait()
		} else {
			for i := range batch {
				m := &batch[i]
				arena = g.AppendPathEdgeIDs(idx, g.MachineID(m.src), g.MachineID(m.dst), arena[:0])
				m.path = append([]int32(nil), arena...)
				m.phase = u.firstFree(m.path, 0)
			}
		}
		// Serial commit in message order. Re-scanning from the
		// speculative phase is exact: every phase below it was already
		// occupied at batch start and occupancy only grows.
		for i := range batch {
			m := &batch[i]
			p := u.firstFree(m.path, m.phase)
			u.set(m.path, p)
			m.phase = p
		}
	}

	for _, m := range msgs {
		for len(s.Phases) <= m.phase {
			s.Phases = append(s.Phases, nil)
		}
		s.Phases[m.phase] = append(s.Phases[m.phase], Message{Src: m.src, Dst: m.dst})
	}
	s.normalize()
	return s
}
