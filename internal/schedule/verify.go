package schedule

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// VerifyError describes a violated schedule property.
type VerifyError struct {
	Reason string
}

func (e *VerifyError) Error() string { return "schedule: " + e.Reason }

func verifyErrf(format string, args ...any) error {
	return &VerifyError{Reason: fmt.Sprintf(format, args...)}
}

// Verify checks the three conditions of the paper's Theorem against a
// schedule for the given cluster:
//
//  1. every AAPC message u -> v (u != v machines) appears exactly once;
//  2. no two messages within a phase share a directed link (contention
//     freedom);
//  3. the number of phases equals the AAPC load of the topology (so the
//     schedule achieves the peak aggregate throughput bound).
//
// Condition 3 is skipped when optimal is false, allowing verification of
// suboptimal but correct schedules (e.g. the greedy baseline).
func Verify(g *topology.Graph, s *Schedule, optimal bool) error {
	n := g.NumMachines()
	if s.NumRanks != n {
		return verifyErrf("schedule covers %d ranks, topology has %d machines",
			s.NumRanks, n)
	}
	// Condition 1: exact coverage.
	seen := make(map[Message]int)
	for pi, p := range s.Phases {
		for _, m := range p {
			if m.Src == m.Dst {
				return verifyErrf("phase %d: self message %v", pi, m)
			}
			if m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
				return verifyErrf("phase %d: message %v out of rank range", pi, m)
			}
			if prev, dup := seen[m]; dup {
				return verifyErrf("message %v in both phase %d and phase %d", m, prev, pi)
			}
			seen[m] = pi
		}
	}
	if want := n * (n - 1); len(seen) != want {
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src != dst {
					if _, ok := seen[Message{src, dst}]; !ok {
						return verifyErrf("message %d->%d never scheduled", src, dst)
					}
				}
			}
		}
		return verifyErrf("scheduled %d messages, want %d", len(seen), want)
	}
	// Condition 2: contention freedom per phase.
	idx := g.NewEdgeIndex()
	owner := make([]Message, idx.Len())
	used := make([]int, idx.Len()) // phase+1 of the last use, 0 = never
	for pi, p := range s.Phases {
		for _, m := range p {
			for _, id := range g.PathIDs(idx, g.MachineID(m.Src), g.MachineID(m.Dst)) {
				if used[id] == pi+1 {
					e := idx.Edge(id)
					return verifyErrf("phase %d: messages %v and %v contend on edge %s->%s",
						pi, owner[id], m, g.Node(e.U).Name, g.Node(e.V).Name)
				}
				used[id] = pi + 1
				owner[id] = m
			}
		}
	}
	// Condition 3: optimal phase count.
	if optimal {
		if want := g.AAPCLoad(); len(s.Phases) != want {
			return verifyErrf("%d phases, want AAPC load %d", len(s.Phases), want)
		}
	}
	return nil
}
