package schedule

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Build runs the complete scheduling pipeline on a cluster: root
// identification, global message scheduling, and global and local message
// assignment. The resulting schedule realizes every AAPC message exactly
// once in AAPCLoad(g) contention-free phases.
func Build(g *topology.Graph) (*Schedule, error) {
	ri, err := g.FindRoot()
	if err != nil {
		return nil, err
	}
	return BuildWithRoot(g, ri)
}

// BuildWithRoot runs global scheduling and message assignment for an
// explicitly chosen root decomposition. The subtree decomposition fully
// determines the schedule; the graph is only needed by the caller for
// verification, so topologies with the same two-level view get identical
// schedules.
func BuildWithRoot(g *topology.Graph, ri *topology.RootInfo) (*Schedule, error) {
	n := g.NumMachines()
	switch {
	case n == 0:
		return nil, fmt.Errorf("schedule: no machines")
	case n == 1:
		return &Schedule{NumRanks: 1}, nil
	}
	if len(ri.Subtrees) < 2 {
		return nil, fmt.Errorf("schedule: root decomposition has %d machine-bearing subtrees; need >= 2",
			len(ri.Subtrees))
	}
	a, err := newAssigner(ri)
	if err != nil {
		return nil, err
	}
	s := a.run()
	s.NumRanks = n
	s.normalize()
	return s, nil
}

// assigner carries the state of the six-step assignment algorithm (Fig. 4).
type assigner struct {
	gs *GroupSchedule
	// machines[i][x] is the machine rank of the paper's node t_{i,x}.
	machines [][]int
	total    int // |M|
	phases   []Phase

	// t0Sender[p] is the index x such that t0,x is the sender of a global
	// message at phase p, as fixed by Step 1. Every phase has a t0 sender.
	t0Sender []int
	// t0SenderPhase[r][x] is the phase within round r at which t0,x is the
	// sender. Rounds are the aligned windows of |M0| consecutive phases.
	t0SenderPhase [][]int
}

func newAssigner(ri *topology.RootInfo) (*assigner, error) {
	sizes := make([]int, len(ri.Subtrees))
	machines := make([][]int, len(ri.Subtrees))
	total := 0
	for i, st := range ri.Subtrees {
		sizes[i] = len(st.Machines)
		machines[i] = st.Machines
		total += len(st.Machines)
	}
	gs, err := NewGroupSchedule(sizes)
	if err != nil {
		return nil, err
	}
	return &assigner{
		gs:       gs,
		machines: machines,
		total:    total,
		phases:   make([]Phase, gs.Total),
	}, nil
}

// rank translates subtree coordinates t_{i,x} to a machine rank.
func (a *assigner) rank(i, x int) int { return a.machines[i][x] }

// designatedReceiver returns the paper's aligned receiver index for subtree
// i at phase p: t_{i, (p - |M0|*(|M|-|M0|)) mod |Mi|}. Steps 1, 4 and 6
// assign the receivers of all messages into subtree i by this formula, so at
// any phase at most this node of subtree i receives a global message.
func (a *assigner) designatedReceiver(i, p int) int {
	return mod(p-a.gs.Total, a.gs.Sizes[i])
}

// add places the message t_{i,x} -> t_{j,y} into phase p.
func (a *assigner) add(p, i, x, j, y int) {
	a.phases[p] = append(a.phases[p], Message{Src: a.rank(i, x), Dst: a.rank(j, y)})
}

func (a *assigner) run() *Schedule {
	a.step1()
	a.step2()
	a.step3()
	a.step4()
	a.step5()
	a.step6()
	return &Schedule{Phases: a.phases}
}

// step1 assigns phases to messages in t0 -> tj, 1 <= j < k. Receivers follow
// the designated-receiver formula; senders follow the rotate pattern with
// base sequence t0,0, t0,1, ..., so that every aligned window of |M0| phases
// sees each node of t0 send exactly once.
func (a *assigner) step1() {
	k := a.gs.K()
	m0 := a.gs.Sizes[0]
	a.t0Sender = make([]int, a.gs.Total)
	numRounds := a.gs.Total / m0
	a.t0SenderPhase = make([][]int, numRounds)
	for r := range a.t0SenderPhase {
		a.t0SenderPhase[r] = make([]int, m0)
	}
	for j := 1; j < k; j++ {
		mj := a.gs.Sizes[j]
		start := a.gs.Start(0, j)
		for q := 0; q < m0*mj; q++ {
			p := start + q
			sender := RotateSenderIndex(m0, mj, q)
			recv := a.designatedReceiver(j, p)
			a.add(p, 0, sender, j, recv)
			a.t0Sender[p] = sender
			a.t0SenderPhase[p/m0][sender] = p
		}
	}
}

// step2 assigns phases to messages in ti -> t0, 1 <= i < k. The receiver at
// phase p in round r is t0,(s + r mod |M0| + 1) mod |M0| where t0,s is the
// Step-1 sender at p (the Table 3 mapping); the senders follow the broadcast
// pattern, each node of ti sending for one whole round of |M0| phases.
func (a *assigner) step2() {
	k := a.gs.K()
	m0 := a.gs.Sizes[0]
	for i := 1; i < k; i++ {
		start := a.gs.Start(i, 0)
		for q := 0; q < a.gs.Sizes[i]*m0; q++ {
			p := start + q
			sender := q / m0 // broadcast: one round per sender
			r := p / m0
			recv := mod(a.t0Sender[p]+mod(r, m0)+1, m0)
			a.add(p, i, sender, 0, recv)
		}
	}
}

// step3 schedules the local messages of t0 in the first |M0| * (|M0| - 1)
// phases: t0,n -> t0,m is placed at the phase where t0,n receives a global
// message (by the Table 3 mapping) and t0,m sends one.
func (a *assigner) step3() {
	m0 := a.gs.Sizes[0]
	for n := 0; n < m0; n++ {
		for m := 0; m < m0; m++ {
			if n == m {
				continue
			}
			// In round r the Step-2 mapping pairs sender t0,m with receiver
			// t0,(m + r + 1) mod |M0|; choose r so that receiver is t0,n.
			r := mod(n-m-1, m0)
			p := a.t0SenderPhase[r][m]
			a.add(p, 0, n, 0, m)
		}
	}
}

// step4 assigns phases to messages in ti -> tj for i > j >= 1 using the
// broadcast pattern. The phase-range start is congruent to the total phase
// count modulo |Mj|, so the broadcast receivers coincide with the
// designated-receiver formula.
func (a *assigner) step4() {
	k := a.gs.K()
	for j := 1; j < k; j++ {
		for i := j + 1; i < k; i++ {
			a.assignAlignedBroadcast(i, j)
		}
	}
}

// step5 schedules the local messages of ti, 1 <= i < k, within the phases of
// ti -> t(i-1). In that range each node t_{i,i1} sends a global message for
// |M(i-1)| >= |Mi| consecutive phases, and the designated receiver formula
// cycles through all of ti, so for every i2 != i1 there is a phase where
// t_{i,i2} is the designated receiver while t_{i,i1} sends; the local
// message t_{i,i2} -> t_{i,i1} goes there.
func (a *assigner) step5() {
	k := a.gs.K()
	for i := 1; i < k; i++ {
		mi := a.gs.Sizes[i]
		if mi < 2 {
			continue // no local messages in a single-machine subtree
		}
		prev := a.gs.Sizes[i-1] // block size of the broadcast into t(i-1)
		start := a.gs.Start(i, i-1)
		for i1 := 0; i1 < mi; i1++ {
			blockStart := start + i1*prev
			for i2 := 0; i2 < mi; i2++ {
				if i2 == i1 {
					continue
				}
				p := -1
				for q := 0; q < prev; q++ {
					if a.designatedReceiver(i, blockStart+q) == i2 {
						p = blockStart + q
						break
					}
				}
				if p < 0 {
					// Unreachable: |M(i-1)| >= |Mi| guarantees every
					// designated-receiver value occurs in the block.
					panic(fmt.Sprintf("schedule: no phase for local message t%d,%d -> t%d,%d",
						i, i2, i, i1))
				}
				a.add(p, i, i2, i, i1)
			}
		}
	}
}

// step6 assigns phases to messages in ti -> tj for 1 <= i < j. The paper
// allows either the broadcast or the rotate pattern here; we use the
// broadcast pattern with receivers aligned to the designated-receiver
// formula, which preserves the invariant that every message into tj targets
// the designated receiver (the alignment makes the choice robust even if a
// step-6 range were to overlap local-message phases).
func (a *assigner) step6() {
	k := a.gs.K()
	for i := 1; i < k; i++ {
		for j := i + 1; j < k; j++ {
			a.assignAlignedBroadcast(i, j)
		}
	}
}

// assignAlignedBroadcast realizes ti -> tj with broadcast senders (each
// sender holds |Mj| consecutive phases) and designated-formula receivers.
// Any window of |Mj| consecutive phases covers each receiver exactly once,
// so all |Mi| * |Mj| messages are realized.
func (a *assigner) assignAlignedBroadcast(i, j int) {
	mj := a.gs.Sizes[j]
	start := a.gs.Start(i, j)
	for q := 0; q < a.gs.Sizes[i]*mj; q++ {
		p := start + q
		a.add(p, i, q/mj, j, a.designatedReceiver(j, p))
	}
}
