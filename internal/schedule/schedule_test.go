package schedule

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// fig1 reconstructs the example cluster of Fig. 1 (see topology tests for
// the wiring derivation). Machine ranks: n0..n5 = 0..5.
func fig1(t testing.TB) *topology.Graph {
	t.Helper()
	g, err := topology.ParseString(`
switches s0 s1 s2 s3
machines n0 n1 n2 n3 n4 n5
link s0 n0
link s0 n1
link s0 s2
link s2 n2
link s1 s0
link s1 s3
link s1 n5
link s3 n3
link s3 n4
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fig1Root(t testing.TB, g *topology.Graph) *topology.RootInfo {
	t.Helper()
	s1, ok := g.Lookup("s1")
	if !ok {
		t.Fatal("no s1")
	}
	ri, err := g.RootInfoAt(s1)
	if err != nil {
		t.Fatal(err)
	}
	return ri
}

// TestRingTable1 checks the ring schedule against Table 1 of the paper.
func TestRingTable1(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 9} {
		phases := Ring(k)
		if len(phases) != k-1 {
			t.Fatalf("k=%d: %d phases, want %d", k, len(phases), k-1)
		}
		// Table 1: phase d holds ti -> t(i+d+1 mod k) for every i.
		for d, p := range phases {
			if len(p) != k {
				t.Errorf("k=%d phase %d: %d messages, want %d", k, d, len(p), k)
			}
			for _, m := range p {
				if want := (m.Src + d + 1) % k; m.Dst != want {
					t.Errorf("k=%d phase %d: %v, want dst %d", k, d, m, want)
				}
			}
		}
		// Every pair exactly once; consistent with RingPhaseOf.
		seen := map[Message]bool{}
		for d, p := range phases {
			for _, m := range p {
				if seen[m] {
					t.Errorf("k=%d: duplicate %v", k, m)
				}
				seen[m] = true
				if got := RingPhaseOf(k, m.Src, m.Dst); got != d {
					t.Errorf("RingPhaseOf(%d, %d, %d) = %d, want %d", k, m.Src, m.Dst, got, d)
				}
			}
		}
		if len(seen) != k*(k-1) {
			t.Errorf("k=%d: %d messages, want %d", k, len(seen), k*(k-1))
		}
	}
}

// TestRotatePatternTable2 checks the rotate pattern against Table 2
// (|Mi| = 6, |Mj| = 4).
func TestRotatePatternTable2(t *testing.T) {
	got := RotatePattern(6, 4)
	want := []Pair{
		// phases 0-11: base sequence repeated twice, receivers cycling
		{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 0}, {5, 1},
		{0, 2}, {1, 3}, {2, 0}, {3, 1}, {4, 2}, {5, 3},
		// phases 12-23: rotated base sequence (1,2,3,4,5,0) repeated twice
		{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 0}, {0, 1},
		{1, 2}, {2, 3}, {3, 0}, {4, 1}, {5, 2}, {0, 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RotatePattern(6, 4) mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestPatternsRealizeAllPairs checks that both schemes realize each of the
// mi*mj messages exactly once, for many size combinations.
func TestPatternsRealizeAllPairs(t *testing.T) {
	for mi := 1; mi <= 8; mi++ {
		for mj := 1; mj <= 8; mj++ {
			for name, pat := range map[string][]Pair{
				"broadcast": BroadcastPattern(mi, mj),
				"rotate":    RotatePattern(mi, mj),
			} {
				if len(pat) != mi*mj {
					t.Fatalf("%s(%d,%d): %d slots", name, mi, mj, len(pat))
				}
				seen := map[Pair]bool{}
				for _, pr := range pat {
					if seen[pr] {
						t.Errorf("%s(%d,%d): duplicate %v", name, mi, mj, pr)
					}
					seen[pr] = true
				}
			}
		}
	}
}

// TestLemma5Broadcast checks that each broadcast sender occupies |Mj|
// continuous phases.
func TestLemma5Broadcast(t *testing.T) {
	for mi := 1; mi <= 6; mi++ {
		for mj := 1; mj <= 6; mj++ {
			pat := BroadcastPattern(mi, mj)
			for q, pr := range pat {
				if want := q / mj; pr.SenderIdx != want {
					t.Errorf("broadcast(%d,%d) phase %d: sender %d, want %d",
						mi, mj, q, pr.SenderIdx, want)
				}
			}
		}
	}
}

// TestLemma6Rotate checks that in the rotate pattern each sender occurs once
// in every |Mi| phases and each receiver once in every |Mj| phases, counting
// from the first phase.
func TestLemma6Rotate(t *testing.T) {
	for mi := 1; mi <= 8; mi++ {
		for mj := 1; mj <= 8; mj++ {
			pat := RotatePattern(mi, mj)
			for w := 0; w+mi <= len(pat); w += mi {
				seen := map[int]bool{}
				for _, pr := range pat[w : w+mi] {
					seen[pr.SenderIdx] = true
				}
				if len(seen) != mi {
					t.Errorf("rotate(%d,%d): window at %d has %d distinct senders",
						mi, mj, w, len(seen))
				}
			}
			for w := 0; w+mj <= len(pat); w += mj {
				seen := map[int]bool{}
				for _, pr := range pat[w : w+mj] {
					seen[pr.RecvIdx] = true
				}
				if len(seen) != mj {
					t.Errorf("rotate(%d,%d): window at %d has %d distinct receivers",
						mi, mj, w, len(seen))
				}
			}
		}
	}
}

// TestGlobalScheduleFig3 checks the extended ring schedule for the Fig. 1
// example against the phase ranges shown in Fig. 3: |M0|=3, |M1|=2, |M2|=1.
func TestGlobalScheduleFig3(t *testing.T) {
	gs, err := NewGroupSchedule([]int{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Total != 9 {
		t.Fatalf("Total = %d, want 9", gs.Total)
	}
	ranges := map[[2]int][2]int{
		{0, 1}: {0, 6}, // t0->t1: phases 0-5
		{0, 2}: {6, 9}, // t0->t2: phases 6-8
		{1, 2}: {0, 2}, // t1->t2: phases 0-1
		{1, 0}: {3, 9}, // t1->t0: phases 3-8
		{2, 0}: {0, 3}, // t2->t0: phases 0-2
		{2, 1}: {7, 9}, // t2->t1: phases 7-8
	}
	for pair, want := range ranges {
		if got := gs.Start(pair[0], pair[1]); got != want[0] {
			t.Errorf("Start(%d,%d) = %d, want %d", pair[0], pair[1], got, want[0])
		}
		if got := gs.End(pair[0], pair[1]); got != want[1] {
			t.Errorf("End(%d,%d) = %d, want %d", pair[0], pair[1], got, want[1])
		}
	}
	// Fig. 3 also shows idle slots: t1 sends nothing at phase 2.
	if _, ok := gs.GroupAt(1, 2); ok {
		t.Error("t1 should be idle as a sender at phase 2")
	}
	if j, ok := gs.GroupAt(0, 7); !ok || j != 2 {
		t.Errorf("GroupAt(0, 7) = %d,%v, want 2,true", j, ok)
	}
	if i, ok := gs.SenderGroupInto(1, 8); !ok || i != 2 {
		t.Errorf("SenderGroupInto(1, 8) = %d,%v, want 2,true", i, ok)
	}
	if _, ok := gs.SenderGroupInto(2, 3); ok {
		t.Error("no group should send into t2 at phase 3")
	}
}

// TestLemma2GlobalSchedule checks, over many random size vectors, that the
// extended ring schedule produces |M0|*(|M|-|M0|) phases in which every
// subtree sends at most one group and receives at most one group (no
// contention on the links connecting subtrees to the root).
func TestLemma2GlobalSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(6)
		sizes := make([]int, k)
		total := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(6)
			total += sizes[i]
		}
		// Sort non-increasing and enforce |M0| <= |M|/2 by capping.
		for {
			sortDesc(sizes)
			if sizes[0] <= (total-sizes[0]) || len(sizes) == 2 && sizes[0] == sizes[1] {
				break
			}
			sizes[0]--
			total--
			if sizes[0] == 0 {
				t.Skip("degenerate")
			}
		}
		gs, err := NewGroupSchedule(sizes)
		if err != nil {
			t.Fatalf("sizes %v: %v", sizes, err)
		}
		if want := sizes[0] * (total - sizes[0]); gs.Total != want {
			t.Fatalf("sizes %v: total %d, want %d", sizes, gs.Total, want)
		}
		// Range bounds and per-phase group contention.
		for p := 0; p < gs.Total; p++ {
			sendBusy := make([]int, k)
			recvBusy := make([]int, k)
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					if i == j {
						continue
					}
					s, e := gs.Start(i, j), gs.End(i, j)
					if s < 0 || e > gs.Total {
						t.Fatalf("sizes %v: range (%d,%d) = [%d,%d) out of [0,%d)",
							sizes, i, j, s, e, gs.Total)
					}
					if s <= p && p < e {
						sendBusy[i]++
						recvBusy[j]++
					}
				}
			}
			for x := 0; x < k; x++ {
				if sendBusy[x] > 1 {
					t.Fatalf("sizes %v phase %d: subtree %d sends %d groups",
						sizes, p, x, sendBusy[x])
				}
				if recvBusy[x] > 1 {
					t.Fatalf("sizes %v phase %d: subtree %d receives %d groups",
						sizes, p, x, recvBusy[x])
				}
			}
		}
	}
}

func sortDesc(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] > s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestGroupScheduleErrors(t *testing.T) {
	if _, err := NewGroupSchedule([]int{3}); err == nil {
		t.Error("want error for single subtree")
	}
	if _, err := NewGroupSchedule([]int{2, 3}); err == nil {
		t.Error("want error for unsorted sizes")
	}
	if _, err := NewGroupSchedule([]int{2, 0}); err == nil {
		t.Error("want error for zero size")
	}
}

// table4 is the full result of the global and local message assignment for
// the Fig. 1 example, as published in Table 4 of the paper (with the
// t2->t1 group at phases 7-8 per the Fig. 3 global schedule and the
// designated-receiver alignment; machine ranks t0 = {0,1,2}, t1 = {3,4},
// t2 = {5}).
var table4 = []Phase{
	{{0, 4}, {3, 5}, {5, 1}, {1, 0}}, // phase 0
	{{1, 3}, {4, 5}, {5, 2}, {2, 1}}, // phase 1
	{{2, 4}, {5, 0}, {0, 2}},         // phase 2
	{{0, 3}, {3, 2}, {2, 0}},         // phase 3
	{{1, 4}, {3, 0}, {0, 1}, {4, 3}}, // phase 4
	{{2, 3}, {3, 1}, {1, 2}},         // phase 5
	{{0, 5}, {4, 0}},                 // phase 6
	{{1, 5}, {4, 1}, {5, 3}, {3, 4}}, // phase 7
	{{2, 5}, {4, 2}, {5, 4}},         // phase 8
}

// TestAssignmentTable4 checks the six-step assignment against Table 4.
func TestAssignmentTable4(t *testing.T) {
	g := fig1(t)
	ri := fig1Root(t, g)
	s, err := BuildWithRoot(g, ri)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != len(table4) {
		t.Fatalf("%d phases, want %d\n%s", len(s.Phases), len(table4), s)
	}
	want := &Schedule{NumRanks: 6, Phases: table4}
	want.normalize()
	for i := range want.Phases {
		if !reflect.DeepEqual(s.Phases[i], want.Phases[i]) {
			t.Errorf("phase %d:\n got %v\nwant %v", i, s.Phases[i], want.Phases[i])
		}
	}
	if err := Verify(g, s, true); err != nil {
		t.Errorf("Table 4 schedule fails verification: %v", err)
	}
}

// TestStep2MappingTable3 checks the Table 3 sender/receiver mapping through
// the Fig. 1 example: in round r, the ti->t0 receiver paired with t0 sender
// t0,s must be t0,(s+r+1 mod |M0|).
func TestStep2MappingTable3(t *testing.T) {
	g := fig1(t)
	ri := fig1Root(t, g)
	s, err := BuildWithRoot(g, ri)
	if err != nil {
		t.Fatal(err)
	}
	// Rank sets: t0 = {0,1,2}; rounds of |M0| = 3 phases.
	inT0 := func(r int) bool { return r <= 2 }
	for p, phase := range s.Phases {
		round := p / 3
		var sender, recv = -1, -1
		for _, m := range phase {
			if inT0(m.Src) && !inT0(m.Dst) {
				sender = m.Src
			}
			if !inT0(m.Src) && inT0(m.Dst) {
				recv = m.Dst
			}
		}
		if sender < 0 {
			t.Fatalf("phase %d: t0 has no global sender", p)
		}
		if recv < 0 {
			t.Fatalf("phase %d: t0 has no global receiver", p)
		}
		if want := (sender + round%3 + 1) % 3; recv != want {
			t.Errorf("phase %d (round %d): sender t0,%d paired with receiver t0,%d, want t0,%d",
				p, round, sender, recv, want)
		}
	}
}

// TestTheoremFig1 checks all three Theorem conditions on the example.
func TestTheoremFig1(t *testing.T) {
	g := fig1(t)
	s, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, s, true); err != nil {
		t.Error(err)
	}
	if got, want := s.NumMessages(), 30; got != want {
		t.Errorf("NumMessages = %d, want %d", got, want)
	}
}

// TestTheoremRandomClusters is the property test for the paper's Theorem:
// for random tree topologies, the constructed schedule realizes every
// message exactly once, is contention-free in every phase, and uses exactly
// AAPCLoad(g) phases.
func TestTheoremRandomClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(8),
			Machines: 3 + rng.Intn(29),
			Rand:     rng,
		})
		s, err := Build(g)
		if err != nil {
			t.Fatalf("trial %d: Build: %v\n%s", trial, err, g.Format())
		}
		if err := Verify(g, s, true); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Format())
		}
	}
}

// TestTheoremStarClusters checks single-switch clusters of every size up to
// 33: the schedule must degenerate to N-1 permutation phases.
func TestTheoremStarClusters(t *testing.T) {
	for n := 2; n <= 33; n++ {
		g := star(t, n)
		s, err := Build(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Verify(g, s, true); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(s.Phases) != n-1 {
			t.Errorf("n=%d: %d phases, want %d", n, len(s.Phases), n-1)
		}
		for pi, p := range s.Phases {
			if len(p) != n {
				t.Errorf("n=%d phase %d: %d messages, want %d (permutation)", n, pi, len(p), n)
			}
		}
	}
}

func star(t testing.TB, n int) *topology.Graph {
	t.Helper()
	g := topology.New()
	s := g.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		m, err := g.AddMachine(machineName(i))
		if err != nil {
			t.Fatal(err)
		}
		g.MustConnect(s, m)
	}
	return g.MustValidate()
}

func machineName(i int) string {
	const digits = "0123456789"
	if i < 10 {
		return "n" + digits[i:i+1]
	}
	return "n" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// TestBuildTwoMachines checks the |M| = 2 degenerate case.
func TestBuildTwoMachines(t *testing.T) {
	g := star(t, 2)
	s, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 1 || len(s.Phases[0]) != 2 {
		t.Fatalf("want 1 phase with both messages, got %s", s)
	}
	if err := Verify(g, s, true); err != nil {
		t.Error(err)
	}
}

// TestGreedyCorrectButNotOptimal checks the greedy baseline: always correct,
// never fewer phases than the optimum, and strictly worse somewhere.
func TestGreedyCorrectButNotOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sawWorse := false
	for trial := 0; trial < 100; trial++ {
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(6),
			Machines: 3 + rng.Intn(20),
			Rand:     rng,
		})
		s := BuildGreedy(g)
		if err := Verify(g, s, false); err != nil {
			t.Fatalf("trial %d: greedy: %v\n%s", trial, err, g.Format())
		}
		if len(s.Phases) < g.AAPCLoad() {
			t.Fatalf("trial %d: greedy beat the load bound: %d < %d",
				trial, len(s.Phases), g.AAPCLoad())
		}
		if len(s.Phases) > g.AAPCLoad() {
			sawWorse = true
		}
	}
	if !sawWorse {
		t.Error("greedy matched the optimum on every trial; baseline is not informative")
	}
}

// TestVerifyCatchesBadSchedules exercises each verifier failure mode.
func TestVerifyCatchesBadSchedules(t *testing.T) {
	g := fig1(t)
	good, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() *Schedule {
		c := &Schedule{NumRanks: good.NumRanks, Phases: make([]Phase, len(good.Phases))}
		for i, p := range good.Phases {
			c.Phases[i] = append(Phase(nil), p...)
		}
		return c
	}

	t.Run("wrong ranks", func(t *testing.T) {
		c := clone()
		c.NumRanks = 5
		if Verify(g, c, true) == nil {
			t.Error("want error")
		}
	})
	t.Run("missing message", func(t *testing.T) {
		c := clone()
		c.Phases[0] = c.Phases[0][1:]
		if Verify(g, c, true) == nil {
			t.Error("want error")
		}
	})
	t.Run("duplicate message", func(t *testing.T) {
		c := clone()
		c.Phases[1] = append(c.Phases[1], c.Phases[0][0])
		if Verify(g, c, true) == nil {
			t.Error("want error")
		}
	})
	t.Run("self message", func(t *testing.T) {
		c := clone()
		c.Phases[0] = append(c.Phases[0], Message{1, 1})
		if Verify(g, c, true) == nil {
			t.Error("want error")
		}
	})
	t.Run("contention", func(t *testing.T) {
		// One phase with two messages sharing n0's uplink.
		c := &Schedule{NumRanks: 6, Phases: []Phase{{{0, 1}, {0, 2}}}}
		err := Verify(g, c, false)
		if err == nil {
			t.Fatal("want contention error")
		}
		var ve *VerifyError
		if !asVerifyError(err, &ve) {
			t.Errorf("want *VerifyError, got %T", err)
		}
	})
	t.Run("too many phases", func(t *testing.T) {
		c := clone()
		c.Phases = append(c.Phases, Phase{})
		if Verify(g, c, true) == nil {
			t.Error("want error for non-optimal phase count")
		}
		// But acceptable when optimality is not demanded... except the
		// duplicate coverage check still passes with an empty extra phase.
		if err := Verify(g, c, false); err != nil {
			t.Errorf("non-optimal verify should pass: %v", err)
		}
	})
}

func asVerifyError(err error, target **VerifyError) bool {
	ve, ok := err.(*VerifyError)
	if ok {
		*target = ve
	}
	return ok
}

// TestSchedulePhaseOfAndString covers the small helpers.
func TestSchedulePhaseOfAndString(t *testing.T) {
	g := fig1(t)
	s, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	po := s.PhaseOf()
	if len(po) != 30 {
		t.Fatalf("PhaseOf has %d entries, want 30", len(po))
	}
	for i, p := range s.Phases {
		for _, m := range p {
			if po[m] != i {
				t.Errorf("PhaseOf[%v] = %d, want %d", m, po[m], i)
			}
		}
	}
	if s.String() == "" || (Message{1, 2}).String() != "1->2" {
		t.Error("String helpers broken")
	}
}

func TestModGcd(t *testing.T) {
	if mod(-9, 2) != 1 || mod(-1, 3) != 2 || mod(5, 3) != 2 || mod(0, 7) != 0 {
		t.Error("mod broken")
	}
	if gcd(6, 4) != 2 || gcd(7, 3) != 1 || gcd(12, 12) != 12 {
		t.Error("gcd broken")
	}
}

// TestCaterpillarTopology schedules a chain of switches with one machine
// each — the shape that maximizes root-walk depth and exercises Step 5's
// subtree chaining with many equal-size subtrees.
func TestCaterpillarTopology(t *testing.T) {
	for _, nsw := range []int{3, 5, 9, 12} {
		g := topology.New()
		prev := -1
		for i := 0; i < nsw; i++ {
			sw := g.MustAddSwitch(machineName(i) + "s")
			if prev >= 0 {
				g.MustConnect(prev, sw)
			}
			prev = sw
			m := g.MustAddMachine(machineName(i))
			g.MustConnect(sw, m)
		}
		g.MustValidate()
		s, err := Build(g)
		if err != nil {
			t.Fatalf("nsw=%d: %v", nsw, err)
		}
		if err := Verify(g, s, true); err != nil {
			t.Fatalf("nsw=%d: %v\n%s", nsw, err, g.Format())
		}
	}
}

// TestEqualHalvesTopology covers k=2 with |M0| = |M1|: the dominant-subtree
// tie, where every phase must carry cross traffic in both directions.
func TestEqualHalvesTopology(t *testing.T) {
	for _, half := range []int{1, 2, 3, 5, 8} {
		g := topology.New()
		s0 := g.MustAddSwitch("L")
		s1 := g.MustAddSwitch("R")
		g.MustConnect(s0, s1)
		for i := 0; i < half; i++ {
			g.MustConnect(s0, g.MustAddMachine("l"+machineName(i)))
			g.MustConnect(s1, g.MustAddMachine("r"+machineName(i)))
		}
		g.MustValidate()
		s, err := Build(g)
		if err != nil {
			t.Fatalf("half=%d: %v", half, err)
		}
		if err := Verify(g, s, true); err != nil {
			t.Fatalf("half=%d: %v", half, err)
		}
		if want := half * half; len(s.Phases) != want {
			t.Errorf("half=%d: %d phases, want %d", half, len(s.Phases), want)
		}
	}
}

func TestVerifyErrorAndStartPanics(t *testing.T) {
	err := Verify(fig1(t), &Schedule{NumRanks: 5}, true)
	var ve *VerifyError
	if !asVerifyError(err, &ve) || ve.Error() == "" {
		t.Errorf("want VerifyError with message, got %v", err)
	}
	gs, err2 := NewGroupSchedule([]int{2, 1})
	if err2 != nil {
		t.Fatal(err2)
	}
	defer func() {
		if recover() == nil {
			t.Error("Start(i, i) should panic")
		}
	}()
	gs.Start(1, 1)
}
