package schedule

import (
	"fmt"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// greedyBenchCluster builds the N-machine chain-of-switches cluster the
// harness scale tests use (16 machines per switch).
func greedyBenchCluster(n int) *topology.Graph {
	g := topology.New()
	nsw := (n + 15) / 16
	sw := make([]int, nsw)
	for i := range sw {
		sw[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(sw[i-1], sw[i])
		}
	}
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw[i/16], m)
	}
	return g.MustValidate()
}

// BenchmarkBuildGreedy tracks the cost of the greedy ablation baseline at
// harness scale: N^2 messages, each probing phases for a free path. The
// bitset edge-usage representation keeps the 512-rank cell tractable.
func BenchmarkBuildGreedy(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			g := greedyBenchCluster(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := BuildGreedy(g)
				if len(s.Phases) == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}
