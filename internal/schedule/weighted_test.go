package schedule

import (
	"math/rand"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// gigaStar builds 2 switches with a 10x trunk and 3 machines each.
func gigaStar(t testing.TB) *topology.Graph {
	t.Helper()
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnectSpeed(s0, s1, 10)
	for i, sw := range []int{s0, s0, s0, s1, s1, s1} {
		m := g.MustAddMachine("n" + string(rune('0'+i)))
		g.MustConnect(sw, m)
	}
	return g.MustValidate()
}

func TestVerifyCapacityUniformEqualsStrict(t *testing.T) {
	// On a uniform cluster, VerifyCapacity accepts exactly the schedules the
	// strict verifier accepts.
	g := fig1(t)
	s, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCapacity(g, s); err != nil {
		t.Errorf("paper schedule rejected: %v", err)
	}
	// The full ring is invalid on fig1 (trunk carries several messages).
	if err := VerifyCapacity(g, BuildRing(g)); err == nil {
		t.Error("ring schedule should violate capacity on a uniform cluster")
	}
}

func TestVerifyCapacityAcceptsRingOnGiga(t *testing.T) {
	g := gigaStar(t)
	ring := BuildRing(g)
	if err := VerifyCapacity(g, ring); err != nil {
		t.Errorf("ring rejected on 10x trunk cluster: %v", err)
	}
	if len(ring.Phases) != 5 {
		t.Errorf("ring phases = %d, want N-1 = 5", len(ring.Phases))
	}
}

func TestVerifyCapacityCatchesDuplicates(t *testing.T) {
	g := gigaStar(t)
	s := BuildRing(g)
	s.Phases[0] = append(s.Phases[0], s.Phases[1][0])
	if err := VerifyCapacity(g, s); err == nil {
		t.Error("want duplicate-message error")
	}
}

func TestWeightedCostValues(t *testing.T) {
	g := gigaStar(t)
	// Paper schedule: one message per link per phase -> cost = phase count.
	paper, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := WeightedCost(g, paper), float64(len(paper.Phases)); got != want {
		t.Errorf("paper weighted cost = %v, want %v", got, want)
	}
	// Ring: each permutation phase is machine-link bound (3 trunk crossings
	// over speed 10 < 1).
	ring := BuildRing(g)
	if got, want := WeightedCost(g, ring), 5.0; got != want {
		t.Errorf("ring weighted cost = %v, want %v", got, want)
	}
}

func TestBuildAutoPicksRingOnGiga(t *testing.T) {
	g := gigaStar(t)
	s, err := BuildAuto(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 5 {
		t.Errorf("auto picked %d phases, want the 5-phase ring", len(s.Phases))
	}
	bound, err := WeightedBestCasePhases(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := WeightedCost(g, s); got != bound {
		t.Errorf("auto cost %v, want the weighted bound %v", got, bound)
	}
}

func TestBuildAutoKeepsPaperOnUniform(t *testing.T) {
	g := fig1(t)
	s, err := BuildAuto(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 9 {
		t.Errorf("auto on uniform cluster: %d phases, want the paper's 9", len(s.Phases))
	}
	if err := Verify(g, s, true); err != nil {
		t.Error(err)
	}
}

func TestBuildAutoKeepsPaperWhenRingInvalid(t *testing.T) {
	// A modest 2x trunk cannot absorb the ring's crossings; auto must stay
	// with the paper's schedule.
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnectSpeed(s0, s1, 2)
	for i, sw := range []int{s0, s0, s0, s1, s1, s1} {
		m := g.MustAddMachine("n" + string(rune('0'+i)))
		g.MustConnect(sw, m)
	}
	g.MustValidate()
	s, err := BuildAuto(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != g.AAPCLoad() {
		t.Errorf("auto: %d phases, want paper's %d", len(s.Phases), g.AAPCLoad())
	}
}

func TestBuildAutoRandomHeterogeneous(t *testing.T) {
	// Whatever auto picks must always pass capacity verification and never
	// cost more than the paper's schedule.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		g := topology.New()
		nsw := 2 + rng.Intn(3)
		sws := make([]int, nsw)
		for i := range sws {
			sws[i] = g.MustAddSwitch(machineName(i) + "sw")
			if i > 0 {
				speed := []float64{1, 2, 10}[rng.Intn(3)]
				g.MustConnectSpeed(sws[i-1], sws[i], speed)
			}
		}
		nm := 3 + rng.Intn(9)
		for i := 0; i < nm; i++ {
			m := g.MustAddMachine(machineName(i))
			g.MustConnect(sws[rng.Intn(nsw)], m)
		}
		g.MustValidate()
		auto, err := BuildAuto(g)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Format())
		}
		if err := VerifyCapacity(g, auto); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Format())
		}
		paper, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		if WeightedCost(g, auto) > WeightedCost(g, paper) {
			t.Errorf("trial %d: auto cost %v exceeds paper cost %v",
				trial, WeightedCost(g, auto), WeightedCost(g, paper))
		}
	}
}
