package simnet

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// starGraph builds n machines on one switch.
func starGraph(t testing.TB, n int) *topology.Graph {
	t.Helper()
	g := topology.New()
	sw := g.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw, m)
	}
	return g.MustValidate()
}

// near asserts a relative tolerance of 1e-6.
func near(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %.9g, want %.9g", name, got, want)
	}
}

const (
	testBW    = 1e6  // 1 MB/s for easy arithmetic
	testAlpha = 1e-3 // 1 ms startup
)

func newTestWorld(t *testing.T, g *topology.Graph, minEff float64) *World {
	t.Helper()
	w, err := NewWorld(Config{
		Graph:          g,
		LinkBandwidth:  testBW,
		StartupLatency: testAlpha,
		MinEfficiency:  minEff,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSingleMessageTiming(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	const size = 50000
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, make([]byte, size), 1, 0)
		}
		return mpi.Recv(c, make([]byte, size), 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+size/testBW)
}

func TestDataIntegrity(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	got := make([]byte, len(payload))
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, payload, 1, 5)
		}
		return mpi.Recv(c, got, 0, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload corrupted: %q", got)
	}
}

func TestFullDuplexNoContention(t *testing.T) {
	// Opposite directions of a link are independent channels: a<->b swap
	// takes the same time as a single message.
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 0.6)
	const size = 30000
	err := w.Run(func(c mpi.Comm) error {
		peer := 1 - c.Rank()
		return mpi.Sendrecv(c, make([]byte, size), peer, 0, make([]byte, size), peer, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+size/testBW)
}

func TestSharedLinkFairSharing(t *testing.T) {
	// Two equal flows into the same machine share its downlink. With ideal
	// efficiency each gets B/2.
	g := starGraph(t, 3)
	w := newTestWorld(t, g, 1)
	const size = 40000
	err := w.Run(func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return mpi.Send(c, make([]byte, size), 2, 0)
		case 1:
			return mpi.Send(c, make([]byte, size), 2, 0)
		default:
			r0 := c.Irecv(make([]byte, size), 0, 0)
			r1 := c.Irecv(make([]byte, size), 1, 0)
			return mpi.WaitAll([]mpi.Request{r0, r1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+2*size/testBW)
}

func TestCongestionPenalty(t *testing.T) {
	// Same scenario with MinEfficiency = 0.6: the shared link runs at
	// eff(2) = 0.8 of capacity, so each flow gets 0.4 B.
	g := starGraph(t, 3)
	w := newTestWorld(t, g, 0.6)
	const size = 40000
	err := w.Run(func(c mpi.Comm) error {
		switch c.Rank() {
		case 0, 1:
			return mpi.Send(c, make([]byte, size), 2, 0)
		default:
			r0 := c.Irecv(make([]byte, size), 0, 0)
			r1 := c.Irecv(make([]byte, size), 1, 0)
			return mpi.WaitAll([]mpi.Request{r0, r1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+size/(0.4*testBW))
}

func TestMaxMinRecomputeAfterCompletion(t *testing.T) {
	// Unequal flows: 10000 and 30000 bytes share a link (ideal fluid). Both
	// run at B/2 until the short one finishes (t1 = 20000/B); the long one
	// then gets full bandwidth for its remaining 20000 bytes.
	g := starGraph(t, 3)
	w := newTestWorld(t, g, 1)
	err := w.Run(func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return mpi.Send(c, make([]byte, 10000), 2, 0)
		case 1:
			return mpi.Send(c, make([]byte, 30000), 2, 0)
		default:
			r0 := c.Irecv(make([]byte, 10000), 0, 0)
			r1 := c.Irecv(make([]byte, 30000), 1, 0)
			return mpi.WaitAll([]mpi.Request{r0, r1})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+20000/testBW+20000/testBW)
}

func TestInterSwitchBottleneck(t *testing.T) {
	// Two switches with two machines each; two flows crossing the trunk
	// share it (ideal fluid -> B/2 each), while their machine links are
	// uncontended.
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnect(s0, s1)
	var m [4]int
	for i := range m {
		m[i] = g.MustAddMachine(fmt.Sprintf("n%d", i))
	}
	g.MustConnect(s0, m[0])
	g.MustConnect(s0, m[1])
	g.MustConnect(s1, m[2])
	g.MustConnect(s1, m[3])
	g.MustValidate()
	w := newTestWorld(t, g, 1)
	const size = 25000
	err := w.Run(func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return mpi.Send(c, make([]byte, size), 2, 0)
		case 1:
			return mpi.Send(c, make([]byte, size), 3, 0)
		case 2:
			return mpi.Recv(c, make([]byte, size), 0, 0)
		default:
			return mpi.Recv(c, make([]byte, size), 1, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+2*size/testBW)
}

func TestStartupLatencySerializesPhases(t *testing.T) {
	// Two back-to-back messages on the same path pay alpha twice.
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	const size = 10000
	err := w.Run(func(c mpi.Comm) error {
		for round := 0; round < 2; round++ {
			if c.Rank() == 0 {
				if err := mpi.Send(c, make([]byte, size), 1, round); err != nil {
					return err
				}
			} else {
				if err := mpi.Recv(c, make([]byte, size), 0, round); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), 2*(testAlpha+size/testBW))
}

func TestSelfMessage(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	data := []byte("self")
	got := make([]byte, 4)
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		r := c.Irecv(got, 0, 0)
		if err := mpi.Send(c, data, 0, 0); err != nil {
			//aapc:allow waitcheck the test aborts; the posted receive dies with the world
			return err
		}
		return r.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "self" {
		t.Errorf("self message corrupted: %q", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			// Receive that will never be matched.
			return mpi.Recv(c, make([]byte, 1), 1, 42)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want deadlock error, got success")
	}
}

func TestBarrierCost(t *testing.T) {
	g := starGraph(t, 4)
	w, err := NewWorld(Config{
		Graph:          g,
		LinkBandwidth:  testBW,
		StartupLatency: testAlpha,
		MinEfficiency:  1,
		BarrierLatency: 7e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c mpi.Comm) error { return c.Barrier() }); err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), 7e-3)
}

func TestBarrierSeparatesRounds(t *testing.T) {
	g := starGraph(t, 2)
	w, err := NewWorld(Config{
		Graph:          g,
		LinkBandwidth:  testBW,
		StartupLatency: testAlpha,
		MinEfficiency:  1,
		BarrierLatency: 2e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	const size = 10000
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := mpi.Send(c, make([]byte, size), 1, 0); err != nil {
				return err
			}
		} else if err := mpi.Recv(c, make([]byte, size), 0, 0); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			return mpi.Send(c, make([]byte, size), 0, 1)
		}
		return mpi.Recv(c, make([]byte, size), 1, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), (testAlpha+size/testBW)+2e-3+(testAlpha+size/testBW))
}

func TestDeterminism(t *testing.T) {
	// The same all-to-all program must give bit-identical virtual times on
	// repeated runs despite goroutine nondeterminism.
	run := func() float64 {
		g := starGraph(t, 8)
		w := newTestWorld(t, g, 0.6)
		err := w.Run(func(c mpi.Comm) error {
			n := c.Size()
			var reqs []mpi.Request
			for p := 0; p < n; p++ {
				if p == c.Rank() {
					continue
				}
				reqs = append(reqs, c.Irecv(make([]byte, 20000), p, 0))
				reqs = append(reqs, c.Isend(make([]byte, 20000), p, 0))
			}
			return mpi.WaitAll(reqs)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	a := run()
	for i := 0; i < 5; i++ {
		if b := run(); b != a {
			t.Fatalf("nondeterministic: %.12g vs %.12g", a, b)
		}
	}
}

func TestLinkStatsAccounting(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	const size = 12345
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, make([]byte, size), 1, 0)
		}
		return mpi.Recv(c, make([]byte, size), 0, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, ls := range w.LinkStats() {
		total += ls.Bytes
	}
	// The message crosses two directed links (n0->sw, sw->n1).
	near(t, "total link bytes", total, 2*size)
	if w.FlowCount() != 1 {
		t.Errorf("FlowCount = %d, want 1", w.FlowCount())
	}
}

func TestTruncationDetected(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, make([]byte, 100), 1, 0)
		}
		return mpi.Recv(c, make([]byte, 10), 0, 0)
	})
	if err == nil {
		t.Fatal("want truncation error")
	}
}

func TestConfigValidation(t *testing.T) {
	g := starGraph(t, 2)
	cases := []Config{
		{},
		{Graph: g, LinkBandwidth: -1},
		{Graph: g, StartupLatency: -1},
		{Graph: g, MinEfficiency: 1.5},
		{Graph: g, MinEfficiency: -0.1},
	}
	for i, cfg := range cases {
		if _, err := NewWorld(cfg); err == nil {
			t.Errorf("case %d: want config error", i)
		}
	}
	// Defaults fill in.
	w, err := NewWorld(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.LinkBandwidth != DefaultLinkBandwidth ||
		w.cfg.StartupLatency != DefaultStartupLatency ||
		w.cfg.MinEfficiency != DefaultMinEfficiency ||
		w.cfg.BarrierLatency <= 0 {
		t.Errorf("defaults not applied: %+v", w.cfg)
	}
}

func TestManyRanksAllToAllFinishes(t *testing.T) {
	// Smoke test at the paper's scale: 24 ranks, naive all-to-all.
	g := starGraph(t, 24)
	w := newTestWorld(t, g, 0.6)
	const size = 8192
	err := w.Run(func(c mpi.Comm) error {
		n := c.Size()
		var reqs []mpi.Request
		for off := 1; off < n; off++ {
			p := (c.Rank() + off) % n
			reqs = append(reqs, c.Irecv(make([]byte, size), p, 0))
			reqs = append(reqs, c.Isend(make([]byte, size), p, 0))
		}
		return mpi.WaitAll(reqs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Elapsed() <= 0 {
		t.Error("no virtual time elapsed")
	}
	// Lower bound: a machine link must carry 23 messages.
	if lb := 23 * size / testBW; w.Elapsed() < lb {
		t.Errorf("elapsed %.6g below physical lower bound %.6g", w.Elapsed(), lb)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	run := func(frac float64, seed uint64) float64 {
		g := starGraph(t, 6)
		w, err := NewWorld(Config{
			Graph:          g,
			LinkBandwidth:  testBW,
			StartupLatency: testAlpha,
			MinEfficiency:  1,
			JitterFrac:     frac,
			JitterSeed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c mpi.Comm) error {
			n := c.Size()
			var reqs []mpi.Request
			for p := 0; p < n; p++ {
				if p == c.Rank() {
					continue
				}
				reqs = append(reqs, c.Irecv(make([]byte, 5000), p, 0))
				reqs = append(reqs, c.Isend(make([]byte, 5000), p, 0))
			}
			return mpi.WaitAll(reqs)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	base := run(0, 1)
	j1a := run(0.5, 1)
	j1b := run(0.5, 1)
	j2 := run(0.5, 2)
	if j1a != j1b {
		t.Errorf("same seed gave different times: %v vs %v", j1a, j1b)
	}
	if j1a == j2 {
		t.Errorf("different seeds gave identical times: %v", j1a)
	}
	if j1a < base {
		t.Errorf("jitter %v should not beat the jitter-free run %v", j1a, base)
	}
	// Jitter adds at most JitterFrac * alpha per message on the critical
	// path; with everything concurrent that is one extra alpha at most.
	if j1a > base+0.5*testAlpha+1e-9 {
		t.Errorf("jitter overhead too large: %v vs %v", j1a, base)
	}
}

func TestJitterValidation(t *testing.T) {
	g := starGraph(t, 2)
	if _, err := NewWorld(Config{Graph: g, JitterFrac: -0.5}); err == nil {
		t.Error("want error for negative jitter")
	}
}

func TestHeterogeneousLinkSpeeds(t *testing.T) {
	// Two flows crossing a 10x trunk both run at full machine-link rate:
	// the trunk has capacity to spare, so elapsed time matches a single
	// uncontended transfer.
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnectSpeed(s0, s1, 10)
	var m [4]int
	for i := range m {
		m[i] = g.MustAddMachine(fmt.Sprintf("h%d", i))
	}
	g.MustConnect(s0, m[0])
	g.MustConnect(s0, m[1])
	g.MustConnect(s1, m[2])
	g.MustConnect(s1, m[3])
	g.MustValidate()
	w := newTestWorld(t, g, 1)
	const size = 20000
	err := w.Run(func(c mpi.Comm) error {
		switch c.Rank() {
		case 0:
			return mpi.Send(c, make([]byte, size), 2, 0)
		case 1:
			return mpi.Send(c, make([]byte, size), 3, 0)
		case 2:
			return mpi.Recv(c, make([]byte, size), 0, 0)
		default:
			return mpi.Recv(c, make([]byte, size), 1, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "elapsed", w.Elapsed(), testAlpha+size/testBW)
}

func TestControlLatency(t *testing.T) {
	// A 32-byte message pays the control latency; a large one pays the full
	// startup latency.
	run := func(size int, control float64) float64 {
		g := starGraph(t, 2)
		w, err := NewWorld(Config{
			Graph:          g,
			LinkBandwidth:  testBW,
			StartupLatency: testAlpha,
			MinEfficiency:  1,
			ControlLatency: control,
		})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c mpi.Comm) error {
			if c.Rank() == 0 {
				return mpi.Send(c, make([]byte, size), 1, 0)
			}
			return mpi.Recv(c, make([]byte, size), 0, 0)
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Elapsed()
	}
	const ctl = 1e-4
	near(t, "small with control latency", run(32, ctl), ctl+32/testBW)
	near(t, "large unaffected", run(10000, ctl), testAlpha+10000/testBW)
	near(t, "small without knob", run(32, 0), testAlpha+32/testBW)
	if _, err := NewWorld(Config{Graph: starGraph(t, 2), ControlLatency: -1}); err == nil {
		t.Error("want error for negative control latency")
	}
}

func TestCommNowAndFlowTrace(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	var mid float64
	err := w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := mpi.Send(c, make([]byte, 5000), 1, 3); err != nil {
				return err
			}
			mid = c.Now()
			return nil
		}
		return mpi.Recv(c, make([]byte, 5000), 0, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mid <= 0 {
		t.Error("Now did not advance with virtual time")
	}
	tr := w.FlowTrace()
	if len(tr) != 1 {
		t.Fatalf("FlowTrace = %d records, want 1", len(tr))
	}
	r := tr[0]
	if r.Src != 0 || r.Dst != 1 || r.Tag != 3 || r.Size != 5000 {
		t.Errorf("record = %+v", r)
	}
	if !(r.MatchedAt <= r.StartedAt && r.StartedAt < r.FinishedAt) {
		t.Errorf("record times out of order: %+v", r)
	}
	near(t, "finish", r.FinishedAt, testAlpha+5000/testBW)
}

func TestPostAfterDeadlockErrors(t *testing.T) {
	g := starGraph(t, 2)
	w := newTestWorld(t, g, 1)
	comms := w.Comms()
	errs := make(chan error, 2)
	go func() { errs <- comms[0].Irecv(make([]byte, 1), 1, 9).Wait() }()
	go func() { errs <- nil }() // rank 1 does nothing; engine needs its finish
	// Drive via Run-less world: emulate by finishing rank 1 manually is not
	// exposed; instead use Run with an early-returning rank.
	_ = errs
	w2 := newTestWorld(t, g, 1)
	err := w2.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			// First op deadlocks; a second op after the failure must error
			// immediately.
			if e := mpi.Recv(c, make([]byte, 1), 1, 9); e == nil {
				return fmt.Errorf("deadlocked recv returned nil")
			}
			if r := c.Isend(make([]byte, 1), 1, 10); r.Wait() == nil {
				return fmt.Errorf("post-deadlock send returned nil")
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
