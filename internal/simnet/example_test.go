package simnet_test

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// ExampleWorld_Run simulates one 1 MB transfer over a 100 Mbps link: the
// virtual completion time is the startup latency plus size/bandwidth,
// independent of how fast the host machine is.
func ExampleWorld_Run() {
	g := topology.New()
	s := g.MustAddSwitch("sw")
	a := g.MustAddMachine("a")
	b := g.MustAddMachine("b")
	g.MustConnect(s, a)
	g.MustConnect(s, b)
	g.MustValidate()

	w, err := simnet.NewWorld(simnet.Config{
		Graph:          g,
		LinkBandwidth:  12.5e6, // 100 Mbps
		StartupLatency: 1e-3,
		MinEfficiency:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	const size = 1 << 20
	err = w.Run(func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, make([]byte, size), 1, 0)
		}
		return mpi.Recv(c, make([]byte, size), 0, 0)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual time: %.4f s\n", w.Elapsed())
	fmt.Println("flows:", w.FlowCount())
	// Output:
	// virtual time: 0.0849 s
	// flows: 1
}
