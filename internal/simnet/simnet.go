// Package simnet simulates an Ethernet switched cluster with virtual time.
//
// The simulator substitutes for the paper's physical 32-node 100 Mbps
// testbed. It executes unmodified mpi algorithms — each rank runs as a
// goroutine against an mpi.Comm — while modelling the network as a fluid
// system on the cluster tree:
//
//   - Every directed link has a fixed capacity (full-duplex Ethernet).
//   - A message becomes a flow when both its send and its receive are
//     posted (rendezvous), and starts moving StartupLatency seconds later
//     (per-message software/protocol overhead).
//   - Concurrent flows share links by max-min fairness, recomputed whenever
//     a flow starts or finishes (progressive filling).
//   - A link crossed by n concurrent flows runs at efficiency
//     effMin + (1-effMin)/n: full speed for a single flow, degrading toward
//     the MinEfficiency floor as oversubscription grows. This models the
//     packet loss and TCP backoff that make unscheduled AAPC collapse on
//     real Ethernet, which a pure fluid model would hide.
//
// Virtual time advances only when every rank is blocked (conservative
// synchronous simulation), so results are deterministic regardless of
// goroutine scheduling.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Config describes the simulated cluster and its cost model.
type Config struct {
	// Graph is the cluster topology; one rank per machine.
	Graph *topology.Graph
	// LinkBandwidth is the capacity of every link in bytes/second.
	// The paper's clusters use 100 Mbps Ethernet = 12.5e6 B/s.
	LinkBandwidth float64
	// StartupLatency is the per-message overhead in seconds between the
	// rendezvous match and the first byte moving (software stack, protocol
	// handshake). Default 0.5 ms, calibrated against the paper's 8 KB rows.
	StartupLatency float64
	// MinEfficiency is the asymptotic efficiency of a link shared by many
	// flows (TCP collapse floor). 1.0 gives an ideal fluid network.
	// Default 0.6.
	MinEfficiency float64
	// BarrierLatency is the virtual-time cost of a barrier once the last
	// rank arrives. Default 2 * StartupLatency * ceil(log2(N)).
	BarrierLatency float64
	// ControlLatency, when positive, is the startup latency applied to
	// control-sized messages (at most ControlSizeMax bytes) instead of
	// StartupLatency. Small packets cross a real MPI/TCP stack much faster
	// than the rendezvous of a large transfer; this knob lets the
	// synchronization messages of the scheduled algorithm pay a realistic
	// latency. Zero keeps StartupLatency for all messages.
	ControlLatency float64
	// JitterFrac adds deterministic pseudo-random variation to the startup
	// latency: each message pays StartupLatency * (1 + JitterFrac * u) with
	// u in [0, 1) derived from a hash of (src, dst, tag, per-key sequence
	// number) and JitterSeed. This models the OS-scheduling and protocol
	// timing noise of a real cluster — the noise that makes unsynchronized
	// phased algorithms drift into contention — while keeping runs exactly
	// reproducible. Default 0 (no jitter).
	JitterFrac float64
	// JitterSeed selects the jitter pattern; equal seeds give identical
	// runs.
	JitterSeed uint64
}

// Defaults for the zero fields of Config, chosen to mimic the paper's
// 100 Mbps Ethernet testbed.
const (
	DefaultLinkBandwidth  = 12.5e6 // 100 Mbps in bytes/second
	DefaultStartupLatency = 0.5e-3
	DefaultMinEfficiency  = 0.6
	// ControlSizeMax is the size threshold below which a message counts as
	// control traffic for ControlLatency purposes.
	ControlSizeMax = 64
)

func (cfg *Config) withDefaults() (Config, error) {
	out := *cfg
	if out.Graph == nil {
		return out, fmt.Errorf("simnet: Config.Graph is nil")
	}
	if err := out.Graph.Validate(); err != nil {
		return out, err
	}
	if out.LinkBandwidth == 0 {
		out.LinkBandwidth = DefaultLinkBandwidth
	}
	if out.LinkBandwidth <= 0 {
		return out, fmt.Errorf("simnet: non-positive bandwidth %v", out.LinkBandwidth)
	}
	if out.StartupLatency == 0 {
		out.StartupLatency = DefaultStartupLatency
	}
	if out.StartupLatency < 0 {
		return out, fmt.Errorf("simnet: negative startup latency %v", out.StartupLatency)
	}
	if out.MinEfficiency == 0 {
		out.MinEfficiency = DefaultMinEfficiency
	}
	if out.MinEfficiency <= 0 || out.MinEfficiency > 1 {
		return out, fmt.Errorf("simnet: MinEfficiency %v outside (0, 1]", out.MinEfficiency)
	}
	if out.BarrierLatency == 0 {
		n := out.Graph.NumMachines()
		out.BarrierLatency = 2 * out.StartupLatency * math.Ceil(math.Log2(float64(n)+1))
	}
	if out.JitterFrac < 0 {
		return out, fmt.Errorf("simnet: negative JitterFrac %v", out.JitterFrac)
	}
	if out.ControlLatency < 0 {
		return out, fmt.Errorf("simnet: negative ControlLatency %v", out.ControlLatency)
	}
	return out, nil
}

// World is one simulated cluster instance. A World runs a single program
// (one function per rank) and is then exhausted; create a new World per run.
type World struct {
	cfg Config
	eng *engine
}

// NewWorld builds a simulated world for the topology in cfg.
func NewWorld(cfg Config) (*World, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &World{cfg: full, eng: newEngine(full)}, nil
}

// Comms returns one communicator per machine rank. Each must be used only
// from the goroutine that runs that rank.
func (w *World) Comms() []mpi.Comm {
	comms := make([]mpi.Comm, w.eng.n)
	for i := range comms {
		comms[i] = &comm{e: w.eng, rank: i}
	}
	return comms
}

// Run executes fn once per rank on its own goroutine and waits for all,
// returning the first error. Virtual time advances as the ranks communicate;
// after Run returns, Elapsed reports the completion time of the whole
// program.
func (w *World) Run(fn func(c mpi.Comm) error) error {
	comms := w.Comms()
	errs := make(chan error, len(comms))
	for _, c := range comms {
		go func(c mpi.Comm) {
			defer w.eng.finish()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("simnet: rank %d panicked: %v", c.Rank(), r)
					return
				}
			}()
			errs <- fn(c)
		}(c)
	}
	var first error
	for range comms {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Elapsed returns the current virtual time in seconds.
func (w *World) Elapsed() float64 {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return w.eng.clock
}

// LinkStats describes the cumulative utilization of one directed link after
// a run.
type LinkStats struct {
	Edge topology.Edge
	// Bytes is the total number of bytes carried.
	Bytes float64
	// BusySeconds integrates the fraction of raw capacity in use over time;
	// BusySeconds/Elapsed is the mean utilization.
	BusySeconds float64
}

// LinkStats returns per-directed-edge utilization, sorted by edge index.
func (w *World) LinkStats() []LinkStats {
	e := w.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LinkStats, e.idx.Len())
	for i := range out {
		out[i] = LinkStats{
			Edge:        e.idx.Edge(i),
			Bytes:       e.linkBytes[i],
			BusySeconds: e.linkBytes[i] / e.edgeCap[i],
		}
	}
	return out
}

// FlowRecord describes one completed message for tracing: who sent it,
// when the rendezvous matched, when bytes started moving, and when it
// finished.
type FlowRecord struct {
	Src, Dst int
	Tag      int
	Size     int
	// MatchedAt is when both endpoints had posted (rendezvous).
	MatchedAt float64
	// StartedAt is MatchedAt plus the startup latency.
	StartedAt float64
	// FinishedAt is when the last byte arrived.
	FinishedAt float64
}

// FlowTrace returns the completed flows in completion order. It must be
// called after Run returns.
func (w *World) FlowTrace() []FlowRecord {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return append([]FlowRecord(nil), w.eng.trace...)
}

// FlowCount returns the total number of flows the run created.
func (w *World) FlowCount() int {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return w.eng.flowSeq
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

type matchKey struct{ src, dst, tag int }

// simOp is a posted send or receive. Completion is driven by the engine.
type simOp struct {
	buf      []byte
	done     bool
	err      error
	nwaiters int // ranks currently blocked on this op
}

// flow is a matched message in transit.
type flow struct {
	id       int
	src, dst int
	tag      int
	path     []int // directed edge IDs; empty for self-messages
	matched  float64
	size     float64
	remain   float64
	rate     float64
	startAt  float64 // virtual time at which bytes start moving
	active   bool
	sendOp   *simOp
	recvOp   *simOp
	sendBuf  []byte
	recvBuf  []byte
	overflow bool // receiver buffer too small
}

// timer fires an op completion at a fixed virtual time (barriers).
type timer struct {
	at float64
	op *simOp
}

type engine struct {
	cfg Config
	n   int
	idx *topology.EdgeIndex
	// edgeCap[i] is the capacity of directed edge i in bytes/second
	// (LinkBandwidth times the link's speed multiplier).
	edgeCap []float64
	// pathOf caches directed-edge paths between machine ranks.
	pathOf [][][]int

	mu   sync.Mutex
	cond *sync.Cond

	clock   float64
	alive   int // ranks that have not finished their program
	blocked int // ranks blocked on an undone op

	sends map[matchKey][]*simOp
	recvs map[matchKey][]*simOp

	flows   []*flow // pending + active flows
	flowSeq int
	trace   []FlowRecord
	// seq counts matches per (src, dst, tag) for jitter hashing.
	seq        map[matchKey]uint64
	timers     []timer
	ratesDirty bool
	deadlocked bool

	barrierOp      *simOp
	barrierWaiting int

	linkBytes []float64
}

func newEngine(cfg Config) *engine {
	g := cfg.Graph
	n := g.NumMachines()
	e := &engine{
		cfg:       cfg,
		n:         n,
		idx:       g.NewEdgeIndex(),
		alive:     n,
		sends:     make(map[matchKey][]*simOp),
		recvs:     make(map[matchKey][]*simOp),
		seq:       make(map[matchKey]uint64),
		linkBytes: nil,
	}
	e.linkBytes = make([]float64, e.idx.Len())
	e.edgeCap = make([]float64, e.idx.Len())
	for i := range e.edgeCap {
		e.edgeCap[i] = cfg.LinkBandwidth * g.LinkSpeed(e.idx.Edge(i))
	}
	e.cond = sync.NewCond(&e.mu)
	e.pathOf = make([][][]int, n)
	for src := 0; src < n; src++ {
		e.pathOf[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if src != dst {
				e.pathOf[src][dst] = g.PathIDs(e.idx, g.MachineID(src), g.MachineID(dst))
			}
		}
	}
	return e
}

// finish marks one rank's program as complete.
func (e *engine) finish() {
	e.mu.Lock()
	e.alive--
	// Blocked ranks may now be the only ones left; wake one to advance.
	e.cond.Broadcast()
	e.mu.Unlock()
}

// post registers an operation and matches it against the opposite queue.
// Caller holds e.mu.
func (e *engine) post(key matchKey, op *simOp, isSend bool) {
	mine, theirs := e.sends, e.recvs
	if !isSend {
		mine, theirs = e.recvs, e.sends
	}
	if q := theirs[key]; len(q) > 0 {
		peer := q[0]
		theirs[key] = q[1:]
		var sendOp, recvOp *simOp
		if isSend {
			sendOp, recvOp = op, peer
		} else {
			sendOp, recvOp = peer, op
		}
		e.startFlow(key, sendOp, recvOp)
		return
	}
	mine[key] = append(mine[key], op)
}

// mix is the splitmix64 finalizer, used to hash message identities into
// jitter values.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// startup returns the (possibly jittered) startup latency for a message of
// the given size.
func (e *engine) startup(key matchKey, size int) float64 {
	alpha := e.cfg.StartupLatency
	if e.cfg.ControlLatency > 0 && size <= ControlSizeMax {
		alpha = e.cfg.ControlLatency
	}
	if e.cfg.JitterFrac == 0 {
		return alpha
	}
	n := e.seq[key]
	e.seq[key] = n + 1
	h := mix(e.cfg.JitterSeed ^ mix(uint64(key.src)<<42^uint64(key.dst)<<21^uint64(int64(key.tag))) ^ mix(n))
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	return alpha * (1 + e.cfg.JitterFrac*u)
}

// startFlow creates the flow for a matched pair. Caller holds e.mu.
func (e *engine) startFlow(key matchKey, sendOp, recvOp *simOp) {
	f := &flow{
		id:      e.flowSeq,
		src:     key.src,
		dst:     key.dst,
		tag:     key.tag,
		matched: e.clock,
		size:    float64(len(sendOp.buf)),
		remain:  float64(len(sendOp.buf)),
		startAt: e.clock + e.startup(key, len(sendOp.buf)),
		sendOp:  sendOp,
		recvOp:  recvOp,
		sendBuf: sendOp.buf,
		recvBuf: recvOp.buf,
	}
	e.flowSeq++
	if key.src != key.dst {
		f.path = e.pathOf[key.src][key.dst]
	}
	if len(recvOp.buf) < len(sendOp.buf) {
		f.overflow = true
	}
	e.flows = append(e.flows, f)
}

// completeOp finishes an op and releases its waiters. Caller holds e.mu.
func (e *engine) completeOp(op *simOp, err error) {
	if op.done {
		return
	}
	op.done = true
	op.err = err
	e.blocked -= op.nwaiters
	op.nwaiters = 0
}

// block waits until op completes, advancing virtual time when this rank is
// the last one still runnable.
func (e *engine) block(op *simOp) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if op.done {
		return op.err
	}
	op.nwaiters++
	e.blocked++
	for !op.done {
		if e.blocked == e.alive {
			if !e.advance() {
				e.failAll()
			}
			e.cond.Broadcast()
			continue
		}
		e.cond.Wait()
	}
	return op.err
}

// failAll marks every pending operation as deadlocked. Caller holds e.mu.
func (e *engine) failAll() {
	if e.deadlocked {
		return
	}
	e.deadlocked = true
	err := fmt.Errorf("simnet: deadlock at t=%.6fs: all ranks blocked with no pending events", e.clock)
	for _, q := range e.sends {
		for _, op := range q {
			e.completeOp(op, err)
		}
	}
	for _, q := range e.recvs {
		for _, op := range q {
			e.completeOp(op, err)
		}
	}
	for _, f := range e.flows {
		e.completeOp(f.sendOp, err)
		e.completeOp(f.recvOp, err)
	}
	if e.barrierOp != nil {
		e.completeOp(e.barrierOp, err)
		e.barrierOp = nil
	}
}

const timeEps = 1e-12

// advance moves virtual time to the next event and processes it. It returns
// false when no event is pending (deadlock). Caller holds e.mu.
func (e *engine) advance() bool {
	if e.ratesDirty {
		e.assignRates()
		e.ratesDirty = false
	}
	next := math.Inf(1)
	for _, f := range e.flows {
		if f.active {
			if f.rate > 0 {
				t := e.clock + f.remain/f.rate
				if t < next {
					next = t
				}
			} else if f.remain <= 0 {
				next = e.clock
			}
		} else if f.startAt < next {
			next = f.startAt
		}
	}
	for _, tm := range e.timers {
		if tm.at < next {
			next = tm.at
		}
	}
	if math.IsInf(next, 1) {
		return false
	}
	if next < e.clock {
		next = e.clock
	}
	dt := next - e.clock

	// Move bytes.
	if dt > 0 {
		for _, f := range e.flows {
			if f.active && f.rate > 0 {
				moved := f.rate * dt
				if moved > f.remain {
					moved = f.remain
				}
				f.remain -= moved
				for _, eid := range f.path {
					e.linkBytes[eid] += moved
				}
			}
		}
	}
	e.clock = next

	changed := false

	// Complete finished flows (deterministic order by flow id: e.flows is
	// in creation order).
	keep := e.flows[:0]
	for _, f := range e.flows {
		if f.active && (f.remain <= timeEps*math.Max(1, f.size) || f.remain <= f.rate*timeEps) {
			var err error
			if f.overflow {
				err = fmt.Errorf("simnet: message truncated: receiver buffer %d < %d",
					len(f.recvBuf), len(f.sendBuf))
			} else {
				copy(f.recvBuf, f.sendBuf)
			}
			e.completeOp(f.sendOp, err)
			e.completeOp(f.recvOp, err)
			e.trace = append(e.trace, FlowRecord{
				Src: f.src, Dst: f.dst, Tag: f.tag, Size: int(f.size),
				MatchedAt: f.matched, StartedAt: f.startAt, FinishedAt: e.clock,
			})
			changed = true
			continue
		}
		keep = append(keep, f)
	}
	e.flows = keep

	// Activate pending flows whose startup delay elapsed.
	for _, f := range e.flows {
		if !f.active && f.startAt <= e.clock+timeEps {
			f.active = true
			changed = true
		}
	}

	// Fire due timers.
	keepT := e.timers[:0]
	for _, tm := range e.timers {
		if tm.at <= e.clock+timeEps {
			e.completeOp(tm.op, nil)
		} else {
			keepT = append(keepT, tm)
		}
	}
	e.timers = keepT

	if changed {
		e.ratesDirty = true
	}
	return true
}

// efficiency returns the effective fraction of raw link capacity available
// when n flows share the link.
func (e *engine) efficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	m := e.cfg.MinEfficiency
	return m + (1-m)/float64(n)
}

// assignRates recomputes max-min fair rates for all active flows. Caller
// holds e.mu.
func (e *engine) assignRates() {
	nEdges := e.idx.Len()
	count := make([]int, nEdges)
	var active []*flow
	for _, f := range e.flows {
		if !f.active {
			continue
		}
		f.rate = 0
		if len(f.path) == 0 {
			// Self-message: crosses no link, completes (near-)instantly
			// once active. A finite rate keeps the arithmetic NaN-free.
			f.rate = math.Max(f.remain, 1) / timeEps
			continue
		}
		active = append(active, f)
		for _, eid := range f.path {
			count[eid]++
		}
	}
	if len(active) == 0 {
		return
	}
	remCap := make([]float64, nEdges)
	remCount := make([]int, nEdges)
	for eid := 0; eid < nEdges; eid++ {
		remCap[eid] = e.edgeCap[eid] * e.efficiency(count[eid])
		remCount[eid] = count[eid]
	}
	unassigned := len(active)
	frozen := make([]bool, len(active))
	for unassigned > 0 {
		// Bottleneck fair share.
		share := math.Inf(1)
		for eid := 0; eid < nEdges; eid++ {
			if remCount[eid] > 0 {
				if s := remCap[eid] / float64(remCount[eid]); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			break // no constrained flows left (cannot happen on a tree)
		}
		// Freeze flows crossing any bottleneck edge at the fair share.
		progressed := false
		for i, f := range active {
			if frozen[i] {
				continue
			}
			bottlenecked := false
			for _, eid := range f.path {
				if remCount[eid] > 0 && remCap[eid]/float64(remCount[eid]) <= share*(1+1e-9) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			frozen[i] = true
			f.rate = share
			unassigned--
			progressed = true
			for _, eid := range f.path {
				remCap[eid] -= share
				remCount[eid]--
			}
		}
		if !progressed {
			// Numerical safety valve: freeze everything at the share.
			for i, f := range active {
				if !frozen[i] {
					frozen[i] = true
					f.rate = share
					unassigned--
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Comm implementation
// ---------------------------------------------------------------------------

type comm struct {
	e    *engine
	rank int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.e.n }

func (c *comm) Now() float64 {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.e.clock
}

type request struct {
	e  *engine
	op *simOp
}

func (r *request) Wait() error { return r.e.block(r.op) }

type errRequest struct{ err error }

func (r errRequest) Wait() error { return r.err }

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	op := &simOp{buf: buf}
	e := c.e
	e.mu.Lock()
	if e.deadlocked {
		e.mu.Unlock()
		return errRequest{fmt.Errorf("simnet: world deadlocked")}
	}
	e.post(matchKey{src: c.rank, dst: dst, tag: tag}, op, true)
	e.mu.Unlock()
	return &request{e: e, op: op}
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	op := &simOp{buf: buf}
	e := c.e
	e.mu.Lock()
	if e.deadlocked {
		e.mu.Unlock()
		return errRequest{fmt.Errorf("simnet: world deadlocked")}
	}
	e.post(matchKey{src: src, dst: c.rank, tag: tag}, op, false)
	e.mu.Unlock()
	return &request{e: e, op: op}
}

func (c *comm) Barrier() error {
	e := c.e
	e.mu.Lock()
	if e.barrierOp == nil {
		e.barrierOp = &simOp{}
	}
	op := e.barrierOp
	e.barrierWaiting++
	if e.barrierWaiting == e.alive {
		// Last arrival: schedule completion after the barrier latency and
		// reset for the next generation.
		e.timers = append(e.timers, timer{at: e.clock + e.cfg.BarrierLatency, op: op})
		sort.Slice(e.timers, func(i, j int) bool { return e.timers[i].at < e.timers[j].at })
		e.barrierOp = nil
		e.barrierWaiting = 0
	}
	e.mu.Unlock()
	return (&request{e: e, op: op}).Wait()
}
