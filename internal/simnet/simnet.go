// Package simnet simulates an Ethernet switched cluster with virtual time.
//
// The simulator substitutes for the paper's physical 32-node 100 Mbps
// testbed. It executes unmodified mpi algorithms — each rank runs as a
// goroutine against an mpi.Comm — while modelling the network as a fluid
// system on the cluster tree:
//
//   - Every directed link has a fixed capacity (full-duplex Ethernet).
//   - A message becomes a flow when both its send and its receive are
//     posted (rendezvous), and starts moving StartupLatency seconds later
//     (per-message software/protocol overhead).
//   - Concurrent flows share links by max-min fairness, recomputed whenever
//     a flow starts or finishes (progressive filling).
//   - A link crossed by n concurrent flows runs at efficiency
//     effMin + (1-effMin)/n: full speed for a single flow, degrading toward
//     the MinEfficiency floor as oversubscription grows. This models the
//     packet loss and TCP backoff that make unscheduled AAPC collapse on
//     real Ethernet, which a pure fluid model would hide.
//
// Virtual time advances only when every rank is blocked (conservative
// synchronous simulation), so results are deterministic regardless of
// goroutine scheduling.
//
// The engine is built to stay tractable far past the paper's 32 nodes:
// timers and flow activations live in an indexed min-heap event calendar,
// flow completions are found through a completion horizon recomputed only
// when rates change, per-link byte accounting integrates aggregate link
// rates instead of per-flow increments, and blocked ranks park on per-rank
// wait channels so an event wakes only the ranks it completes (no broadcast
// storms). Max-min rates come from one of two interchangeable solvers
// selected by Config.RateEngine: the default aggregated incidence-list
// solver (zero allocations at steady state) or the original dense solver,
// kept as a reference oracle.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Rate-engine selectors for Config.RateEngine.
const (
	// RateEngineFast is the aggregated incidence-list max-min solver (the
	// default): flows sharing a path collapse into one aggregate for the
	// progressive-filling loop and all solver state lives in reusable
	// scratch buffers.
	RateEngineFast = "fast"
	// RateEngineReference is the original dense progressive-filling solver,
	// kept as the oracle the fast engine is property-tested against.
	RateEngineReference = "reference"
)

// Config describes the simulated cluster and its cost model.
type Config struct {
	// Graph is the cluster topology; one rank per machine.
	Graph *topology.Graph
	// LinkBandwidth is the capacity of every link in bytes/second.
	// The paper's clusters use 100 Mbps Ethernet = 12.5e6 B/s.
	LinkBandwidth float64
	// StartupLatency is the per-message overhead in seconds between the
	// rendezvous match and the first byte moving (software stack, protocol
	// handshake). Default 0.5 ms, calibrated against the paper's 8 KB rows.
	StartupLatency float64
	// MinEfficiency is the asymptotic efficiency of a link shared by many
	// flows (TCP collapse floor). 1.0 gives an ideal fluid network.
	// Default 0.6.
	MinEfficiency float64
	// BarrierLatency is the virtual-time cost of a barrier once the last
	// rank arrives. Default 2 * StartupLatency * ceil(log2(N)).
	BarrierLatency float64
	// ControlLatency, when positive, is the startup latency applied to
	// control-sized messages (at most ControlSizeMax bytes) instead of
	// StartupLatency. Small packets cross a real MPI/TCP stack much faster
	// than the rendezvous of a large transfer; this knob lets the
	// synchronization messages of the scheduled algorithm pay a realistic
	// latency. Zero keeps StartupLatency for all messages.
	ControlLatency float64
	// JitterFrac adds deterministic pseudo-random variation to the startup
	// latency: each message pays StartupLatency * (1 + JitterFrac * u) with
	// u in [0, 1) derived from a hash of (src, dst, tag, per-key sequence
	// number) and JitterSeed. This models the OS-scheduling and protocol
	// timing noise of a real cluster — the noise that makes unsynchronized
	// phased algorithms drift into contention — while keeping runs exactly
	// reproducible. Default 0 (no jitter).
	JitterFrac float64
	// JitterSeed selects the jitter pattern; equal seeds give identical
	// runs.
	JitterSeed uint64
	// RateEngine selects the max-min solver: RateEngineFast (default when
	// empty) or RateEngineReference. Both produce the same rates; the
	// reference solver exists as the oracle for equivalence tests and for
	// bisecting suspected solver regressions.
	RateEngine string
}

// Defaults for the zero fields of Config, chosen to mimic the paper's
// 100 Mbps Ethernet testbed.
const (
	DefaultLinkBandwidth  = 12.5e6 // 100 Mbps in bytes/second
	DefaultStartupLatency = 0.5e-3
	DefaultMinEfficiency  = 0.6
	// ControlSizeMax is the size threshold below which a message counts as
	// control traffic for ControlLatency purposes.
	ControlSizeMax = 64
)

func (cfg *Config) withDefaults() (Config, error) {
	out := *cfg
	if out.Graph == nil {
		return out, fmt.Errorf("simnet: Config.Graph is nil")
	}
	if err := out.Graph.Validate(); err != nil {
		return out, err
	}
	if out.LinkBandwidth == 0 {
		out.LinkBandwidth = DefaultLinkBandwidth
	}
	if out.LinkBandwidth <= 0 {
		return out, fmt.Errorf("simnet: non-positive bandwidth %v", out.LinkBandwidth)
	}
	if out.StartupLatency == 0 {
		out.StartupLatency = DefaultStartupLatency
	}
	if out.StartupLatency < 0 {
		return out, fmt.Errorf("simnet: negative startup latency %v", out.StartupLatency)
	}
	if out.MinEfficiency == 0 {
		out.MinEfficiency = DefaultMinEfficiency
	}
	if out.MinEfficiency <= 0 || out.MinEfficiency > 1 {
		return out, fmt.Errorf("simnet: MinEfficiency %v outside (0, 1]", out.MinEfficiency)
	}
	if out.BarrierLatency == 0 {
		n := out.Graph.NumMachines()
		out.BarrierLatency = 2 * out.StartupLatency * math.Ceil(math.Log2(float64(n)+1))
	}
	if out.JitterFrac < 0 {
		return out, fmt.Errorf("simnet: negative JitterFrac %v", out.JitterFrac)
	}
	if out.ControlLatency < 0 {
		return out, fmt.Errorf("simnet: negative ControlLatency %v", out.ControlLatency)
	}
	switch out.RateEngine {
	case "":
		out.RateEngine = RateEngineFast
	case RateEngineFast, RateEngineReference:
	default:
		return out, fmt.Errorf("simnet: unknown RateEngine %q (want %q or %q)",
			out.RateEngine, RateEngineFast, RateEngineReference)
	}
	return out, nil
}

// World is one simulated cluster instance. A World runs a single program
// (one function per rank) and is then exhausted; create a new World per run.
type World struct {
	cfg Config
	eng *engine
}

// NewWorld builds a simulated world for the topology in cfg.
func NewWorld(cfg Config) (*World, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &World{cfg: full, eng: newEngine(full)}, nil
}

// Comms returns one communicator per machine rank. Each must be used only
// from the goroutine that runs that rank.
func (w *World) Comms() []mpi.Comm {
	comms := make([]mpi.Comm, w.eng.n)
	for i := range comms {
		comms[i] = &comm{e: w.eng, rank: i}
	}
	return comms
}

// Run executes fn once per rank on its own goroutine and waits for all,
// returning the first error. Virtual time advances as the ranks communicate;
// after Run returns, Elapsed reports the completion time of the whole
// program.
func (w *World) Run(fn func(c mpi.Comm) error) error {
	comms := w.Comms()
	errs := make(chan error, len(comms))
	for _, c := range comms {
		//aapc:allow determinism rank goroutines are arbitrated by the virtual clock; interleaving cannot affect simulated time
		go func(c mpi.Comm) {
			defer w.eng.finish()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("simnet: rank %d panicked: %v", c.Rank(), r)
					return
				}
			}()
			errs <- fn(c)
		}(c)
	}
	var first error
	for range comms {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Elapsed returns the current virtual time in seconds.
func (w *World) Elapsed() float64 {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return w.eng.clock
}

// LinkStats describes the cumulative utilization of one directed link after
// a run.
type LinkStats struct {
	Edge topology.Edge
	// Bytes is the total number of bytes carried.
	Bytes float64
	// BusySeconds integrates the fraction of raw capacity in use over time;
	// BusySeconds/Elapsed is the mean utilization.
	BusySeconds float64
}

// LinkStats returns per-directed-edge utilization, sorted by edge index.
func (w *World) LinkStats() []LinkStats {
	e := w.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LinkStats, e.idx.Len())
	for i := range out {
		out[i] = LinkStats{
			Edge:        e.idx.Edge(i),
			Bytes:       e.linkBytes[i],
			BusySeconds: e.linkBytes[i] / e.edgeCap[i],
		}
	}
	return out
}

// FlowRecord describes one completed message for tracing: who sent it,
// when the rendezvous matched, when bytes started moving, and when it
// finished.
type FlowRecord struct {
	Src, Dst int
	Tag      int
	Size     int
	// MatchedAt is when both endpoints had posted (rendezvous).
	MatchedAt float64
	// StartedAt is MatchedAt plus the startup latency.
	StartedAt float64
	// FinishedAt is when the last byte arrived.
	FinishedAt float64
}

// FlowTrace returns the completed flows in completion order. It must be
// called after Run returns.
func (w *World) FlowTrace() []FlowRecord {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return append([]FlowRecord(nil), w.eng.trace...)
}

// FlowCount returns the total number of flows the run created.
func (w *World) FlowCount() int {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return w.eng.flowSeq
}

// Events returns the number of discrete events the engine has processed
// (virtual-time advances). Together with wall-clock time it gives the
// simulator's events/second throughput.
func (w *World) Events() int64 {
	w.eng.mu.Lock()
	defer w.eng.mu.Unlock()
	return w.eng.events
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

type matchKey struct{ src, dst, tag int }

// simOp is a posted send or receive. Completion is driven by the engine.
type simOp struct {
	buf      []byte
	done     bool
	err      error
	nwaiters int   // ranks currently blocked on this op
	waiters  []int // ranks to wake when the op completes
	// ctx is the trace context: set at post time on sends (IsendTraced),
	// copied from the matched send at flow completion on receives.
	ctx uint64
	// deliveredAt is the virtual time the flow finished, stamped on both
	// sides of the matched pair (traced flows only).
	deliveredAt float64
}

// flow is a matched message in transit.
type flow struct {
	id       int
	src, dst int
	tag      int
	// matchIdx is the per-(src,dst,tag) match sequence number. Unlike id
	// (global creation order, which depends on how rank goroutines happen to
	// interleave when several pairs match at the same virtual instant), it is
	// deterministic: the send queue for a key is filled only by rank src in
	// program order, so the k-th match of a key is always the same message.
	matchIdx uint64
	path     []int // directed edge IDs; empty for self-messages
	matched  float64
	size     float64
	remain   float64
	rate     float64
	startAt  float64 // virtual time at which bytes start moving
	active   bool
	actIdx   int // position in engine.act while active
	agg      *aggregate
	sendOp   *simOp
	recvOp   *simOp
	sendBuf  []byte
	recvBuf  []byte
	overflow bool // receiver buffer too small
}

type engine struct {
	cfg   Config
	n     int
	dense bool // use the reference rate engine
	idx   *topology.EdgeIndex
	// edgeCap[i] is the capacity of directed edge i in bytes/second
	// (LinkBandwidth times the link's speed multiplier).
	edgeCap []float64
	// pathOf caches directed-edge paths between machine ranks.
	pathOf [][][]int

	mu sync.Mutex

	clock   float64
	alive   int // ranks that have not finished their program
	blocked int // ranks blocked on an undone op

	sends map[matchKey][]*simOp
	recvs map[matchKey][]*simOp

	// act holds the flows currently moving bytes (activation order); flows
	// whose startup latency has not elapsed live only in the calendar.
	act     []*flow
	cal     calendar
	flowSeq int
	trace   []FlowRecord
	// seq counts matches per (src, dst, tag); it feeds jitter hashing and
	// the deterministic completion ordering (flow.matchIdx).
	seq        map[matchKey]uint64
	ratesDirty bool
	deadlocked bool

	barrierOp      *simOp
	barrierWaiting int

	// Per-rank parking: a blocked rank waits on its own 1-buffered channel
	// and is woken only when one of its ops completes (or when it must take
	// over advancing virtual time).
	parkCh    []chan struct{}
	isBlocked []bool
	driving   bool

	// linkRate[i] is the aggregate rate (bytes/second) currently crossing
	// directed edge i; linkBytes integrates it over rate intervals.
	linkBytes []float64
	linkRate  []float64
	events    int64

	// effTab memoizes efficiency(n) = m + (1-m)/n.
	effTab []float64

	// completed is per-advance scratch for flows finishing at an event.
	completed []*flow

	// Fast-engine aggregate state (see rates_fast.go). linkCount[i] is the
	// number of active flows crossing directed edge i, maintained
	// incrementally by attachFlow/detachFlow; rateGen numbers
	// assignRatesFast calls for the aggregate freeze marks.
	aggByKey  map[int]*aggregate
	aggs      []*aggregate
	edgeAggs  [][]aggEntry
	aggPool   []*aggregate
	linkCount []int
	rateGen   uint64
	fs        fastScratch

	// Reference-engine scratch (see rates_dense.go).
	ds denseScratch
}

func newEngine(cfg Config) *engine {
	g := cfg.Graph
	n := g.NumMachines()
	e := &engine{
		cfg:   cfg,
		n:     n,
		dense: cfg.RateEngine == RateEngineReference,
		idx:   g.NewEdgeIndex(),
		alive: n,
		sends: make(map[matchKey][]*simOp),
		recvs: make(map[matchKey][]*simOp),
		seq:   make(map[matchKey]uint64),
	}
	nEdges := e.idx.Len()
	e.linkBytes = make([]float64, nEdges)
	e.linkRate = make([]float64, nEdges)
	e.edgeCap = make([]float64, nEdges)
	for i := range e.edgeCap {
		e.edgeCap[i] = cfg.LinkBandwidth * g.LinkSpeed(e.idx.Edge(i))
	}
	e.parkCh = make([]chan struct{}, n)
	for i := range e.parkCh {
		e.parkCh[i] = make(chan struct{}, 1)
	}
	e.isBlocked = make([]bool, n)
	e.pathOf = make([][][]int, n)
	for src := 0; src < n; src++ {
		e.pathOf[src] = make([][]int, n)
		for dst := 0; dst < n; dst++ {
			if src != dst {
				e.pathOf[src][dst] = g.PathIDs(e.idx, g.MachineID(src), g.MachineID(dst))
			}
		}
	}
	if !e.dense {
		e.aggByKey = make(map[int]*aggregate)
		e.edgeAggs = make([][]aggEntry, nEdges)
		e.linkCount = make([]int, nEdges)
	}
	return e
}

// finish marks one rank's program as complete.
func (e *engine) finish() {
	e.mu.Lock()
	e.alive--
	// The finished rank may have been the only runnable one; if everyone
	// left is blocked, summon one of them to advance virtual time.
	if e.alive > 0 && e.blocked == e.alive && !e.driving {
		e.summon()
	}
	e.mu.Unlock()
}

// wake delivers a wakeup token to a rank's park channel. The token is
// buffered, so a wakeup sent before the rank parks is not lost; a duplicate
// token only causes one harmless spurious wake. Caller holds e.mu.
func (e *engine) wake(rank int) {
	select {
	case e.parkCh[rank] <- struct{}{}:
	default:
	}
}

// summon wakes one blocked rank so it can take over driving virtual time.
// Caller holds e.mu.
func (e *engine) summon() {
	for r, b := range e.isBlocked {
		if b {
			e.wake(r)
			return
		}
	}
}

// post registers an operation and matches it against the opposite queue.
// Caller holds e.mu.
func (e *engine) post(key matchKey, op *simOp, isSend bool) {
	mine, theirs := e.sends, e.recvs
	if !isSend {
		mine, theirs = e.recvs, e.sends
	}
	if q := theirs[key]; len(q) > 0 {
		peer := q[0]
		theirs[key] = q[1:]
		var sendOp, recvOp *simOp
		if isSend {
			sendOp, recvOp = op, peer
		} else {
			sendOp, recvOp = peer, op
		}
		e.startFlow(key, sendOp, recvOp)
		return
	}
	mine[key] = append(mine[key], op)
}

// mix is the splitmix64 finalizer, used to hash message identities into
// jitter values.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// startup returns the (possibly jittered) startup latency for the n-th
// message of the given size matched under key.
func (e *engine) startup(key matchKey, size int, n uint64) float64 {
	alpha := e.cfg.StartupLatency
	if e.cfg.ControlLatency > 0 && size <= ControlSizeMax {
		alpha = e.cfg.ControlLatency
	}
	if e.cfg.JitterFrac == 0 {
		return alpha
	}
	h := mix(e.cfg.JitterSeed ^ mix(uint64(key.src)<<42^uint64(key.dst)<<21^uint64(int64(key.tag))) ^ mix(n))
	u := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	return alpha * (1 + e.cfg.JitterFrac*u)
}

// startFlow creates the flow for a matched pair and schedules its activation
// in the event calendar. Caller holds e.mu.
func (e *engine) startFlow(key matchKey, sendOp, recvOp *simOp) {
	n := e.seq[key]
	e.seq[key] = n + 1
	f := &flow{
		id:       e.flowSeq,
		src:      key.src,
		dst:      key.dst,
		tag:      key.tag,
		matchIdx: n,
		matched:  e.clock,
		size:     float64(len(sendOp.buf)),
		remain:   float64(len(sendOp.buf)),
		startAt:  e.clock + e.startup(key, len(sendOp.buf), n),
		sendOp:   sendOp,
		recvOp:   recvOp,
		sendBuf:  sendOp.buf,
		recvBuf:  recvOp.buf,
	}
	e.flowSeq++
	if key.src != key.dst {
		f.path = e.pathOf[key.src][key.dst]
	}
	if len(recvOp.buf) < len(sendOp.buf) {
		f.overflow = true
	}
	e.cal.push(f.startAt, f, nil)
}

// completeOp finishes an op and wakes exactly the ranks blocked on it.
// Caller holds e.mu.
func (e *engine) completeOp(op *simOp, err error) {
	if op.done {
		return
	}
	op.done = true
	op.err = err
	e.blocked -= op.nwaiters
	op.nwaiters = 0
	for _, r := range op.waiters {
		e.wake(r)
	}
	op.waiters = op.waiters[:0]
}

// block waits until op completes. The last runnable rank becomes the driver
// and advances virtual time; everyone else parks on its per-rank channel and
// is woken only when one of its ops completes (or to take over driving).
func (e *engine) block(op *simOp, rank int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if op.done {
		return op.err
	}
	op.nwaiters++
	op.waiters = append(op.waiters, rank)
	e.blocked++
	e.isBlocked[rank] = true
	for !op.done {
		if e.blocked == e.alive && !e.driving {
			e.driving = true
			for !op.done && e.blocked == e.alive {
				if !e.advance() {
					e.failAll()
				}
			}
			e.driving = false
			continue
		}
		e.mu.Unlock()
		<-e.parkCh[rank]
		e.mu.Lock()
	}
	e.isBlocked[rank] = false
	return op.err
}

// failAll marks every pending operation as deadlocked. Caller holds e.mu.
func (e *engine) failAll() {
	if e.deadlocked {
		return
	}
	e.deadlocked = true
	err := fmt.Errorf("simnet: deadlock at t=%.6fs: all ranks blocked with no pending events", e.clock)
	// Complete pending ops in sorted key order: map iteration order would
	// make the completion sequence on the deadlock path differ run to run,
	// breaking bit-identical replays (observed event order, first error).
	for _, q := range sortedQueues(e.sends) {
		for _, op := range q {
			e.completeOp(op, err)
		}
	}
	for _, q := range sortedQueues(e.recvs) {
		for _, op := range q {
			e.completeOp(op, err)
		}
	}
	for _, f := range e.act {
		e.completeOp(f.sendOp, err)
		e.completeOp(f.recvOp, err)
	}
	for _, ev := range e.cal.h {
		if ev.f != nil {
			e.completeOp(ev.f.sendOp, err)
			e.completeOp(ev.f.recvOp, err)
		} else if ev.op != nil {
			e.completeOp(ev.op, err)
		}
	}
	if e.barrierOp != nil {
		e.completeOp(e.barrierOp, err)
		e.barrierOp = nil
	}
}

// sortedQueues returns the map's queues ordered by (src, dst, tag).
func sortedQueues(m map[matchKey][]*simOp) [][]*simOp {
	keys := make([]matchKey, 0, len(m))
	for k := range m { //aapc:allow determinism order restored by the sort below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	out := make([][]*simOp, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

const timeEps = 1e-12

// advance moves virtual time to the next event and processes it. It returns
// false when no event is pending (deadlock). Caller holds e.mu.
//
// The next event time is the minimum of the completion horizon (earliest
// finish over active flows at current rates) and the head of the event
// calendar (pending activations and timers). Per-link byte accounting uses
// the aggregate link rates maintained by the rate engines, so moving bytes
// costs O(edges) + O(active flows) instead of O(active flows × path).
func (e *engine) advance() bool {
	if e.ratesDirty {
		e.assignRates()
		e.ratesDirty = false
	}
	next := math.Inf(1)
	for _, f := range e.act {
		if f.rate > 0 {
			if t := e.clock + f.remain/f.rate; t < next {
				next = t
			}
		} else if f.remain <= 0 && e.clock < next {
			next = e.clock
		}
	}
	if !e.cal.empty() {
		if t := e.cal.top().at; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		return false
	}
	e.events++
	if next < e.clock {
		next = e.clock
	}
	dt := next - e.clock

	// Integrate link utilization over the rate interval.
	if dt > 0 {
		for i, r := range e.linkRate {
			if r > 0 {
				e.linkBytes[i] += r * dt
			}
		}
	}
	e.clock = next

	changed := false

	// Move bytes and detect completed flows.
	e.completed = e.completed[:0]
	for _, f := range e.act {
		if dt > 0 && f.rate > 0 {
			moved := f.rate * dt
			if moved > f.remain {
				moved = f.remain
			}
			f.remain -= moved
		}
		if f.remain <= timeEps*math.Max(1, f.size) || f.remain <= f.rate*timeEps {
			e.completed = append(e.completed, f)
		}
	}
	if len(e.completed) > 0 {
		// Deterministic completion order by (src, dst, tag, matchIdx). Flow
		// ids (creation order) are NOT deterministic for flows matched at the
		// same virtual instant — they depend on goroutine scheduling — but
		// the per-key match index is fixed by each rank's program order.
		sort.Slice(e.completed, func(i, j int) bool {
			a, b := e.completed[i], e.completed[j]
			if a.src != b.src {
				return a.src < b.src
			}
			if a.dst != b.dst {
				return a.dst < b.dst
			}
			if a.tag != b.tag {
				return a.tag < b.tag
			}
			return a.matchIdx < b.matchIdx
		})
		for _, f := range e.completed {
			var err error
			if f.overflow {
				err = fmt.Errorf("simnet: message truncated: receiver buffer %d < %d",
					len(f.recvBuf), len(f.sendBuf))
			} else {
				copy(f.recvBuf, f.sendBuf)
			}
			if f.sendOp.ctx != 0 {
				f.recvOp.ctx = f.sendOp.ctx
				f.recvOp.deliveredAt = e.clock
				f.sendOp.deliveredAt = e.clock
			}
			e.completeOp(f.sendOp, err)
			e.completeOp(f.recvOp, err)
			e.trace = append(e.trace, FlowRecord{
				Src: f.src, Dst: f.dst, Tag: f.tag, Size: int(f.size),
				MatchedAt: f.matched, StartedAt: f.startAt, FinishedAt: e.clock,
			})
			e.removeActive(f)
			if !e.dense {
				e.detachFlow(f)
			}
		}
		changed = true
	}

	// Fire due calendar events: flow activations and timers.
	for !e.cal.empty() && e.cal.top().at <= e.clock+timeEps {
		ev := e.cal.pop()
		if ev.f != nil {
			ev.f.active = true
			ev.f.actIdx = len(e.act)
			e.act = append(e.act, ev.f)
			if !e.dense {
				e.attachFlow(ev.f)
			}
			changed = true
		} else if ev.op != nil {
			e.completeOp(ev.op, nil)
		}
	}

	if changed {
		e.ratesDirty = true
	}
	return true
}

// removeActive deletes a flow from the active set in O(1). Caller holds e.mu.
func (e *engine) removeActive(f *flow) {
	last := len(e.act) - 1
	moved := e.act[last]
	e.act[f.actIdx] = moved
	moved.actIdx = f.actIdx
	e.act[last] = nil
	e.act = e.act[:last]
	f.active = false
}

// efficiency returns the effective fraction of raw link capacity available
// when n flows share the link, memoized per count.
func (e *engine) efficiency(n int) float64 {
	if n <= 1 {
		return 1
	}
	if n >= len(e.effTab) {
		if e.effTab == nil {
			e.effTab = make([]float64, 2, n+1)
			e.effTab[0], e.effTab[1] = 1, 1
		}
		m := e.cfg.MinEfficiency
		for i := len(e.effTab); i <= n; i++ {
			e.effTab = append(e.effTab, m+(1-m)/float64(i))
		}
	}
	return e.effTab[n]
}

// assignRates recomputes max-min fair rates for all active flows with the
// configured solver and refreshes the aggregate per-link rates. Caller holds
// e.mu.
func (e *engine) assignRates() {
	if e.dense {
		e.assignRatesDense()
	} else {
		e.assignRatesFast()
	}
}

// selfRate is the (finite) rate of a message that crosses no link, so it
// completes (near-)instantly once active while keeping the arithmetic
// NaN-free.
func selfRate(remain float64) float64 {
	return math.Max(remain, 1) / timeEps
}

// ---------------------------------------------------------------------------
// Comm implementation
// ---------------------------------------------------------------------------

type comm struct {
	e    *engine
	rank int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.e.n }

func (c *comm) Now() float64 {
	c.e.mu.Lock()
	defer c.e.mu.Unlock()
	return c.e.clock
}

type request struct {
	e    *engine
	op   *simOp
	rank int
}

func (r *request) Wait() error { return r.e.block(r.op, r.rank) }

// WaitTraced blocks like Wait and reports the matched sender's trace
// context and the flow's virtual completion time (mpi.TracedRequest).
// simOps are never recycled, so reading the fields after the block is safe.
func (r *request) WaitTraced() (mpi.TraceInfo, error) {
	err := r.e.block(r.op, r.rank)
	return mpi.TraceInfo{Ctx: r.op.ctx, DeliveredAt: r.op.deliveredAt}, err
}

type errRequest struct{ err error }

func (r errRequest) Wait() error { return r.err }

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	return c.isend(buf, dst, tag, 0)
}

// IsendTraced attaches a trace context to the message (mpi.TracedSender):
// the matched receive learns it when the simulated flow completes.
func (c *comm) IsendTraced(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	return c.isend(buf, dst, tag, ctx)
}

func (c *comm) isend(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	op := &simOp{buf: buf, ctx: ctx}
	e := c.e
	e.mu.Lock()
	if e.deadlocked {
		e.mu.Unlock()
		return errRequest{fmt.Errorf("simnet: world deadlocked")}
	}
	e.post(matchKey{src: c.rank, dst: dst, tag: tag}, op, true)
	e.mu.Unlock()
	return &request{e: e, op: op, rank: c.rank}
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	op := &simOp{buf: buf}
	e := c.e
	e.mu.Lock()
	if e.deadlocked {
		e.mu.Unlock()
		return errRequest{fmt.Errorf("simnet: world deadlocked")}
	}
	e.post(matchKey{src: src, dst: c.rank, tag: tag}, op, false)
	e.mu.Unlock()
	return &request{e: e, op: op, rank: c.rank}
}

func (c *comm) Barrier() error {
	e := c.e
	e.mu.Lock()
	if e.barrierOp == nil {
		e.barrierOp = &simOp{}
	}
	op := e.barrierOp
	e.barrierWaiting++
	if e.barrierWaiting == e.alive {
		// Last arrival: schedule completion after the barrier latency and
		// reset for the next generation.
		e.cal.push(e.clock+e.cfg.BarrierLatency, nil, op)
		e.barrierOp = nil
		e.barrierWaiting = 0
	}
	e.mu.Unlock()
	return (&request{e: e, op: op, rank: c.rank}).Wait()
}
