package simnet

import "math"

// The fast rate engine collapses flows sharing a path into aggregates for
// the progressive-filling loop. On a tree the path between two machines is
// unique, so the aggregate key is simply the (src, dst) pair: every
// concurrent message between the same endpoints — repeated iterations,
// windowed exchanges, sync traffic — is one solver variable instead of many.
// Aggregates and per-edge flow counts are maintained incrementally as flows
// activate and complete, and every directed edge keeps an incidence list of
// the aggregates crossing it, so a filling round freezes the aggregates of a
// bottleneck edge directly instead of re-scanning every unfrozen flow's
// path. Edge fair-share ratios are cached and recomputed only for edges a
// freeze actually touched. All solver state lives in reusable buffers: at
// steady state (no new aggregates) a rate assignment performs zero
// allocations.
//
// Equivalence with the dense reference: flows with identical paths are
// symmetric in the max-min system, so they always freeze together at the
// same share, and the solver subtracts the share from an edge's remaining
// capacity once per member flow — replaying exactly the reference solver's
// arithmetic — so the two engines agree bit-for-bit away from degenerate
// 1e-9 tie-breaks (see the property tests in rates_test.go).

// aggregate is one path-equivalence class of active flows.
type aggregate struct {
	key    int   // src*n + dst
	path   []int // directed edge IDs (shared with engine.pathOf)
	weight int   // number of active member flows
	// slots[i] is this aggregate's position in edgeAggs[path[i]], kept for
	// O(1) swap-removal when the last member completes.
	slots   []int
	listIdx int // position in engine.aggs
	rate    float64
	// frozenGen marks the assignRatesFast call (engine.rateGen) that froze
	// this aggregate, replacing a per-call reset sweep.
	frozenGen uint64
}

// aggEntry is one incidence-list entry: the aggregate and the index of this
// edge within the aggregate's path (so removal can fix slots).
type aggEntry struct {
	agg *aggregate
	pi  int
}

// edgeState is one edge's solver state, packed so every path step during a
// freeze touches a single cache line instead of five parallel arrays. ratio
// caches remCap/remCount and is recomputed only when dirty.
type edgeState struct {
	remCap   float64
	ratio    float64
	rate     float64 // aggregate link rate accumulated this call
	remCount int32
	dirty    bool
}

// fastScratch holds the aggregated solver's per-call working state.
type fastScratch struct {
	edges []edgeState
}

// attachFlow adds an activated flow to its path aggregate, creating and
// registering the aggregate on first use, and bumps the persistent per-edge
// flow counts. Caller holds e.mu.
func (e *engine) attachFlow(f *flow) {
	if len(f.path) == 0 {
		return // self-message: crosses no link, never aggregated
	}
	for _, eid := range f.path {
		e.linkCount[eid]++
	}
	key := f.src*e.n + f.dst
	a := e.aggByKey[key]
	if a == nil {
		if n := len(e.aggPool); n > 0 {
			a = e.aggPool[n-1]
			e.aggPool = e.aggPool[:n-1]
		} else {
			a = &aggregate{}
		}
		a.key = key
		a.path = f.path
		a.weight = 0
		a.frozenGen = 0
		if cap(a.slots) < len(f.path) {
			a.slots = make([]int, len(f.path))
		} else {
			a.slots = a.slots[:len(f.path)]
		}
		for pi, eid := range f.path {
			a.slots[pi] = len(e.edgeAggs[eid])
			e.edgeAggs[eid] = append(e.edgeAggs[eid], aggEntry{agg: a, pi: pi})
		}
		a.listIdx = len(e.aggs)
		e.aggs = append(e.aggs, a)
		e.aggByKey[key] = a
	}
	a.weight++
	f.agg = a
}

// detachFlow removes a completed flow from its aggregate and the per-edge
// flow counts, unregistering the aggregate when the last member leaves.
// Caller holds e.mu.
func (e *engine) detachFlow(f *flow) {
	a := f.agg
	if a == nil {
		return
	}
	f.agg = nil
	for _, eid := range a.path {
		e.linkCount[eid]--
	}
	a.weight--
	if a.weight > 0 {
		return
	}
	for pi, eid := range a.path {
		list := e.edgeAggs[eid]
		slot := a.slots[pi]
		last := len(list) - 1
		moved := list[last]
		list[slot] = moved
		moved.agg.slots[moved.pi] = slot
		list[last] = aggEntry{}
		e.edgeAggs[eid] = list[:last]
	}
	last := len(e.aggs) - 1
	movedA := e.aggs[last]
	e.aggs[a.listIdx] = movedA
	movedA.listIdx = a.listIdx
	e.aggs[last] = nil
	e.aggs = e.aggs[:last]
	delete(e.aggByKey, a.key)
	a.path = nil
	e.aggPool = append(e.aggPool, a)
}

// assignRatesFast computes max-min fair rates by progressive filling over
// path aggregates: each round finds the bottleneck share from the cached
// edge ratios, then freezes the aggregates on bottleneck edges through the
// incidence lists. Each aggregate is frozen exactly once and each edge is a
// bottleneck at most once, so a call costs O(rounds × edges + Σ aggregate
// path lengths) instead of the reference solver's O(rounds × flows × path).
// Caller holds e.mu.
//aapc:noalloc
func (e *engine) assignRatesFast() {
	nEdges := len(e.edgeCap)
	fs := &e.fs
	if cap(fs.edges) < nEdges {
		fs.edges = make([]edgeState, nEdges) //aapc:allow noalloc amortized: sized once per topology, reused every solver call
	}
	if len(e.aggs) == 0 {
		for i := range e.linkRate {
			e.linkRate[i] = 0
		}
		for _, f := range e.act {
			f.rate = selfRate(f.remain)
		}
		return
	}
	e.rateGen++
	gen := e.rateGen
	es := fs.edges[:nEdges]
	for eid := 0; eid < nEdges; eid++ {
		c := e.linkCount[eid]
		es[eid] = edgeState{
			remCap:   e.edgeCap[eid] * e.efficiency(c),
			remCount: int32(c),
			dirty:    true,
		}
	}
	unassigned := len(e.aggs)
	for unassigned > 0 {
		// Bottleneck fair share from the cached ratios.
		share := math.Inf(1)
		for eid := range es {
			st := &es[eid]
			if st.remCount <= 0 {
				continue
			}
			if st.dirty {
				st.ratio = st.remCap / float64(st.remCount)
				st.dirty = false
			}
			if st.ratio < share {
				share = st.ratio
			}
		}
		if math.IsInf(share, 1) {
			break // no constrained aggregates left (cannot happen on a tree)
		}
		// Freeze the aggregates of every bottleneck edge at the fair share.
		// Freezing shifts other edges' ratios downward, so rescan until the
		// round closes — exactly the set the reference solver's in-round
		// mutating check freezes.
		thr := share * (1 + 1e-9)
		progressed := false
		for {
			found := false
			for eid := range es {
				st := &es[eid]
				if st.remCount <= 0 {
					continue
				}
				if st.dirty {
					st.ratio = st.remCap / float64(st.remCount)
					st.dirty = false
				}
				if st.ratio > thr {
					continue
				}
				for _, ent := range e.edgeAggs[eid] {
					a := ent.agg
					if a.frozenGen == gen {
						continue
					}
					a.frozenGen = gen
					a.rate = share
					unassigned--
					progressed, found = true, true
					w := a.weight
					if w == 1 {
						for _, eid2 := range a.path {
							st2 := &es[eid2]
							st2.remCap -= share
							st2.remCount--
							st2.dirty = true
							st2.rate += share
						}
						continue
					}
					sw := share * float64(w)
					for _, eid2 := range a.path {
						st2 := &es[eid2]
						// One subtraction per member flow, replaying the
						// reference solver's arithmetic bit-for-bit.
						for k := 0; k < w; k++ {
							st2.remCap -= share
						}
						st2.remCount -= int32(w)
						st2.dirty = true
						st2.rate += sw
					}
				}
			}
			if !found {
				break
			}
		}
		if !progressed {
			// Numerical safety valve: freeze everything at the share.
			for _, a := range e.aggs {
				if a.frozenGen == gen {
					continue
				}
				a.frozenGen = gen
				a.rate = share
				unassigned--
				for _, eid := range a.path {
					es[eid].rate += share * float64(a.weight)
				}
			}
		}
	}
	for eid := range es {
		e.linkRate[eid] = es[eid].rate
	}
	for _, f := range e.act {
		if len(f.path) == 0 {
			f.rate = selfRate(f.remain)
			continue
		}
		f.rate = f.agg.rate
	}
}
