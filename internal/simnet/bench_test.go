package simnet

import (
	"fmt"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// benchCluster builds an N-machine cluster spread round-robin over a chain
// of switches (16 machines per switch), the shape that stresses both the
// machine links and the shared switch-to-switch trunks.
func benchCluster(n int) *topology.Graph {
	g := topology.New()
	nsw := (n + 15) / 16
	sw := make([]int, nsw)
	for i := range sw {
		sw[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(sw[i-1], sw[i])
		}
	}
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw[i/16], m)
	}
	return g.MustValidate()
}

// benchConfig is the engine cost model. jitter > 0 staggers every message
// activation so (nearly) every event forces a max-min rate recompute — the
// worst case for the solver; jitter = 0 is the synchronized-wave regime
// harness cells run, where coincident events batch under one recompute.
func benchConfig(g *topology.Graph, jitter float64) Config {
	return Config{
		Graph:          g,
		LinkBandwidth:  DefaultLinkBandwidth,
		StartupLatency: DefaultStartupLatency,
		MinEfficiency:  DefaultMinEfficiency,
		JitterFrac:     jitter,
		JitterSeed:     1,
	}
}

// postAllAAPC is the LAM-style exchange: every rank posts all N-1 sends and
// receives up front, creating O(N^2) concurrent flows.
func postAllAAPC(msize int) func(c mpi.Comm) error {
	return func(c mpi.Comm) error {
		n := c.Size()
		reqs := make([]mpi.Request, 0, 2*(n-1))
		for off := 1; off < n; off++ {
			p := (c.Rank() + off) % n
			reqs = append(reqs, c.Irecv(make([]byte, msize), p, 0))
		}
		for off := 1; off < n; off++ {
			p := (c.Rank() + off) % n
			reqs = append(reqs, c.Isend(make([]byte, msize), p, 0))
		}
		return mpi.WaitAll(reqs)
	}
}

// windowedAAPC keeps at most window exchanges outstanding per rank — the
// pattern production all-to-all implementations use at scale. Buffers are a
// per-rank ring reused across waves (they are free after each WaitAll), so
// the benchmark measures the engine, not the host allocator.
func windowedAAPC(msize, window int) func(c mpi.Comm) error {
	return func(c mpi.Comm) error {
		n := c.Size()
		sbuf := make([][]byte, window)
		rbuf := make([][]byte, window)
		for i := range sbuf {
			sbuf[i] = make([]byte, msize)
			rbuf[i] = make([]byte, msize)
		}
		reqs := make([]mpi.Request, 0, 2*window)
		k := 0
		for off := 1; off < n; off++ {
			p := (c.Rank() + off) % n
			q := (c.Rank() - off + n) % n
			reqs = append(reqs, c.Irecv(rbuf[k], q, 0))
			reqs = append(reqs, c.Isend(sbuf[k], p, 0))
			k++
			if k == window {
				if err := mpi.WaitAll(reqs); err != nil {
					return err
				}
				reqs, k = reqs[:0], 0
			}
		}
		return mpi.WaitAll(reqs)
	}
}

// BenchmarkSimAAPC measures raw engine throughput on AAPC runs. N=32 and
// N=128 use the post-all (LAM) pattern with O(N^2) concurrent flows and
// jittered activations — the per-event-recompute worst case for the solver.
// N=512 uses a windowed exchange (window 32) without jitter, the
// synchronized-wave regime large harness cells actually run (jittering half
// a million 512-rank flows individually is intractable for any
// full-recompute max-min solver). The custom metrics report discrete events
// per wall-clock second and flows per run; allocs/op tracks solver garbage.
func BenchmarkSimAAPC(b *testing.B) {
	cases := []struct {
		n      int
		window int     // 0 = post-all
		jitter float64 // activation jitter fraction
		msize  int
	}{
		{n: 32, jitter: 0.25, msize: 64 << 10},
		{n: 128, jitter: 0.25, msize: 64 << 10},
		// 512 ranks move 261k messages; the paper's 8 KB base size keeps the
		// benchmark's real byte movement (copied on every delivery) sane.
		{n: 512, window: 32, msize: 8 << 10},
	}
	for _, tc := range cases {
		g := benchCluster(tc.n)
		cfg := benchConfig(g, tc.jitter)
		fn := postAllAAPC(tc.msize)
		if tc.window > 0 {
			fn = windowedAAPC(tc.msize, tc.window)
		}
		b.Run(fmt.Sprintf("N=%d", tc.n), func(b *testing.B) {
			b.ReportAllocs()
			var events, flows int64
			for i := 0; i < b.N; i++ {
				w, err := NewWorld(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := w.Run(fn); err != nil {
					b.Fatal(err)
				}
				events += w.Events()
				flows += int64(w.FlowCount())
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(flows)/float64(b.N), "flows/run")
		})
	}
}
