package simnet

import "math"

// denseScratch holds the reference solver's per-call working state, reused
// across calls so steady-state rate assignment performs no allocations.
type denseScratch struct {
	count    []int
	remCap   []float64
	remCount []int
	active   []*flow
	frozen   []bool
}

// assignRatesDense is the original dense max-min solver, kept verbatim as
// the reference oracle for the aggregated engine: progressive filling over
// individual flows, scanning every unfrozen flow's path each round. Its only
// changes from the seed implementation are the reusable scratch buffers, the
// memoized efficiency table, and maintenance of the aggregate per-link rates
// the event loop integrates for byte accounting. Caller holds e.mu.
func (e *engine) assignRatesDense() {
	nEdges := len(e.edgeCap)
	ds := &e.ds
	if cap(ds.count) < nEdges {
		ds.count = make([]int, nEdges)
		ds.remCap = make([]float64, nEdges)
		ds.remCount = make([]int, nEdges)
	}
	count := ds.count[:nEdges]
	for i := range count {
		count[i] = 0
	}
	for i := range e.linkRate {
		e.linkRate[i] = 0
	}
	active := ds.active[:0]
	for _, f := range e.act {
		f.rate = 0
		if len(f.path) == 0 {
			// Self-message: crosses no link, completes (near-)instantly
			// once active.
			f.rate = selfRate(f.remain)
			continue
		}
		active = append(active, f)
		for _, eid := range f.path {
			count[eid]++
		}
	}
	ds.active = active
	if len(active) == 0 {
		return
	}
	remCap := ds.remCap[:nEdges]
	remCount := ds.remCount[:nEdges]
	for eid := 0; eid < nEdges; eid++ {
		remCap[eid] = e.edgeCap[eid] * e.efficiency(count[eid])
		remCount[eid] = count[eid]
	}
	unassigned := len(active)
	if cap(ds.frozen) < len(active) {
		ds.frozen = make([]bool, len(active))
	}
	frozen := ds.frozen[:len(active)]
	for i := range frozen {
		frozen[i] = false
	}
	for unassigned > 0 {
		// Bottleneck fair share.
		share := math.Inf(1)
		for eid := 0; eid < nEdges; eid++ {
			if remCount[eid] > 0 {
				if s := remCap[eid] / float64(remCount[eid]); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			break // no constrained flows left (cannot happen on a tree)
		}
		// Freeze flows crossing any bottleneck edge at the fair share.
		progressed := false
		for i, f := range active {
			if frozen[i] {
				continue
			}
			bottlenecked := false
			for _, eid := range f.path {
				if remCount[eid] > 0 && remCap[eid]/float64(remCount[eid]) <= share*(1+1e-9) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			frozen[i] = true
			f.rate = share
			unassigned--
			progressed = true
			for _, eid := range f.path {
				remCap[eid] -= share
				remCount[eid]--
			}
		}
		if !progressed {
			// Numerical safety valve: freeze everything at the share.
			for i, f := range active {
				if !frozen[i] {
					frozen[i] = true
					f.rate = share
					unassigned--
				}
			}
		}
	}
	for _, f := range active {
		for _, eid := range f.path {
			e.linkRate[eid] += f.rate
		}
	}
}
