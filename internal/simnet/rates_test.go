package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// ratesTestEngine builds a bare engine (no running ranks) for solver-only
// tests.
func ratesTestEngine(t testing.TB, g *topology.Graph, rateEngine string) *engine {
	t.Helper()
	base := Config{Graph: g, RateEngine: rateEngine}
	cfg, err := base.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(cfg)
}

// injectFlow activates a synthetic flow directly in the engine, bypassing
// the message-matching machinery, exactly as advance does on an activation
// event.
func injectFlow(e *engine, src, dst int, size float64) {
	f := &flow{
		id:     e.flowSeq,
		src:    src,
		dst:    dst,
		path:   e.pathOf[src][dst],
		size:   size,
		remain: size,
		active: true,
	}
	e.flowSeq++
	f.actIdx = len(e.act)
	e.act = append(e.act, f)
	if !e.dense {
		e.attachFlow(f)
	}
}

// popFlow deactivates the most recently injected flow, as a completion does.
func popFlow(e *engine) {
	last := len(e.act) - 1
	f := e.act[last]
	e.act[last] = nil
	e.act = e.act[:last]
	if !e.dense {
		e.detachFlow(f)
	}
}

// within1e9 is the equivalence bound: 1e-9 relative error (absolute below
// one byte/second).
func within1e9(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// randomFlowSet draws a random multiset of (src, dst) demands on n ranks;
// duplicates are frequent by construction, exercising aggregation weights.
func randomFlowSet(rng *rand.Rand, n int) [][2]int {
	nf := 1 + rng.Intn(4*n)
	set := make([][2]int, 0, nf)
	for i := 0; i < nf; i++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if rng.Intn(3) == 0 && len(set) > 0 {
			// Reuse an existing pair to force aggregate weights > 1.
			set = append(set, set[rng.Intn(len(set))])
			continue
		}
		set = append(set, [2]int{src, dst})
	}
	return set
}

// TestRateEnginesAgreeQuick is the equivalence property test: on random
// trees with random flow multisets, the aggregated solver must reproduce
// the dense reference solver's max-min rates within 1e-9 relative error
// (they agree bit-for-bit in practice; the epsilon only covers degenerate
// share tie-breaks). Each quick iteration also removes a random suffix of
// flows and re-solves, exercising the incremental detach path.
func TestRateEnginesAgreeQuick(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.RandomCluster(topology.RandomOptions{
			Switches: 1 + rng.Intn(6),
			Machines: 2 + rng.Intn(24),
			Rand:     rng,
		})
		n := g.NumMachines()
		fast := ratesTestEngine(t, g, RateEngineFast)
		dense := ratesTestEngine(t, g, RateEngineReference)
		for round := 0; round < 3; round++ {
			for _, p := range randomFlowSet(rng, n) {
				size := float64(1+rng.Intn(1<<20)) * (1 + rng.Float64())
				injectFlow(fast, p[0], p[1], size)
				injectFlow(dense, p[0], p[1], size)
			}
			fast.assignRates()
			dense.assignRates()
			if len(fast.act) != len(dense.act) {
				t.Fatalf("seed %d: flow count mismatch", seed)
			}
			for i, ff := range fast.act {
				df := dense.act[i]
				if !within1e9(ff.rate, df.rate) {
					t.Logf("seed %d round %d: flow %d (%d->%d) fast rate %g, dense rate %g",
						seed, round, i, ff.src, ff.dst, ff.rate, df.rate)
					return false
				}
			}
			for eid := range fast.linkRate {
				fr, dr := fast.linkRate[eid], dense.linkRate[eid]
				if !within1e9(fr, dr) {
					t.Logf("seed %d round %d: edge %d fast link rate %g, dense %g",
						seed, round, eid, fr, dr)
					return false
				}
			}
			// Complete a random suffix before the next wave of demands.
			drop := rng.Intn(len(fast.act) + 1)
			for i := 0; i < drop; i++ {
				popFlow(fast)
				popFlow(dense)
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRateEngineEndToEndIdentical runs full jittered AAPC programs under
// both solvers and requires byte-identical results: same Elapsed, same
// FlowTrace (ids, times, rates). This is the regression gate that keeps the
// fast engine a drop-in replacement rather than an approximation.
func TestRateEngineEndToEndIdentical(t *testing.T) {
	g := benchCluster(24)
	for _, jitter := range []float64{0, 0.3} {
		t.Run(fmt.Sprintf("jitter=%v", jitter), func(t *testing.T) {
			cfg := benchConfig(g, jitter)
			run := func(engine string) (float64, []FlowRecord) {
				c := cfg
				c.RateEngine = engine
				w, err := NewWorld(c)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Run(postAllAAPC(4 << 10)); err != nil {
					t.Fatal(err)
				}
				return w.Elapsed(), w.FlowTrace()
			}
			fastEl, fastTr := run(RateEngineFast)
			refEl, refTr := run(RateEngineReference)
			if fastEl != refEl {
				t.Errorf("Elapsed: fast %v, reference %v", fastEl, refEl)
			}
			if len(fastTr) != len(refTr) {
				t.Fatalf("trace length: fast %d, reference %d", len(fastTr), len(refTr))
			}
			for i := range fastTr {
				if fastTr[i] != refTr[i] {
					t.Fatalf("flow record %d differs:\nfast:      %+v\nreference: %+v",
						i, fastTr[i], refTr[i])
				}
			}
		})
	}
}

// TestAssignRatesNoSteadyStateAllocs pins the zero-allocation claim for both
// solvers: once scratch buffers are warm and the aggregate pool is
// populated, re-solving (including flow churn through attach/detach on the
// fast path) must not allocate.
func TestAssignRatesNoSteadyStateAllocs(t *testing.T) {
	g := benchCluster(32)
	for _, engine := range []string{RateEngineFast, RateEngineReference} {
		t.Run(engine, func(t *testing.T) {
			e := ratesTestEngine(t, g, engine)
			rng := rand.New(rand.NewSource(7))
			for _, p := range randomFlowSet(rng, 32) {
				injectFlow(e, p[0], p[1], 1<<16)
			}
			e.assignRates() // warm scratch
			popFlow(e)      // and the aggregate pool
			e.assignRates()
			// One churn cycle with a reusable flow object: activate, solve,
			// complete, solve. The simulator reuses nothing else per event.
			f := &flow{
				id: e.flowSeq, src: 3, dst: 17, path: e.pathOf[3][17],
				size: 1 << 16, remain: 1 << 16, active: true,
			}
			churn := func() {
				f.actIdx = len(e.act)
				e.act = append(e.act, f)
				if !e.dense {
					e.attachFlow(f)
				}
				e.assignRates()
				e.act = e.act[:len(e.act)-1]
				if !e.dense {
					e.detachFlow(f)
				}
				e.assignRates()
			}
			churn() // populate the (3,17) aggregate pool slot
			allocs := testing.AllocsPerRun(20, churn)
			if allocs > 0 {
				t.Errorf("%s engine: %v allocs per steady-state churn cycle, want 0", engine, allocs)
			}
		})
	}
}
