package simnet

// calEvent is one scheduled occurrence in the event calendar: either a flow
// activation (f != nil, fires when the startup latency elapses) or a timer
// completing an operation at a fixed virtual time (op != nil, barriers).
// Flow completions are not stored per flow — their times shift on every rate
// change, so the engine instead keeps a single completion horizon
// (engine.nextFinish) refreshed whenever rates are reassigned.
type calEvent struct {
	at  float64
	seq int64 // insertion order; ties break deterministically
	f   *flow
	op  *simOp
}

// calendar is an indexed binary min-heap over (at, seq). Both event kinds
// have immutable fire times, so no decrease-key is needed; the seq index
// makes pop order — and therefore the whole simulation — deterministic when
// events coincide.
type calendar struct {
	h   []calEvent
	seq int64
}

func (c *calendar) len() int      { return len(c.h) }
func (c *calendar) empty() bool   { return len(c.h) == 0 }
func (c *calendar) top() calEvent { return c.h[0] }

func (c *calendar) less(i, j int) bool {
	if c.h[i].at != c.h[j].at {
		return c.h[i].at < c.h[j].at
	}
	return c.h[i].seq < c.h[j].seq
}

func (c *calendar) push(at float64, f *flow, op *simOp) {
	c.seq++
	c.h = append(c.h, calEvent{at: at, seq: c.seq, f: f, op: op})
	c.up(len(c.h) - 1)
}

func (c *calendar) pop() calEvent {
	ev := c.h[0]
	last := len(c.h) - 1
	c.h[0] = c.h[last]
	c.h[last] = calEvent{} // release pointers for GC
	c.h = c.h[:last]
	if last > 0 {
		c.down(0)
	}
	return ev
}

func (c *calendar) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.h[i], c.h[parent] = c.h[parent], c.h[i]
		i = parent
	}
}

func (c *calendar) down(i int) {
	n := len(c.h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && c.less(l, min) {
			min = l
		}
		if r < n && c.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		c.h[i], c.h[min] = c.h[min], c.h[i]
		i = min
	}
}
