// Package harness reproduces the paper's evaluation (Section 6): the three
// experimental topologies of Fig. 5, the message-size sweeps behind
// Figs. 6-8, and the table/series rendering that mirrors what the paper
// reports, all running on the simnet substrate.
package harness

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Fig1 builds the paper's running example cluster (Fig. 1): 6 machines on
// 4 switches with AAPC load 9.
func Fig1() *topology.Graph {
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	s2 := g.MustAddSwitch("s2")
	s3 := g.MustAddSwitch("s3")
	n := make([]int, 6)
	for i := range n {
		n[i] = g.MustAddMachine(fmt.Sprintf("n%d", i))
	}
	g.MustConnect(s0, n[0])
	g.MustConnect(s0, n[1])
	g.MustConnect(s0, s2)
	g.MustConnect(s2, n[2])
	g.MustConnect(s1, s0)
	g.MustConnect(s1, s3)
	g.MustConnect(s1, n[5])
	g.MustConnect(s3, n[3])
	g.MustConnect(s3, n[4])
	return g.MustValidate()
}

// TopologyA builds Fig. 5(a): 24 machines on a single switch (the Dell
// PowerEdge 2324). The bottleneck links are the machine links (load 23), so
// the peak aggregate throughput is 24 x B.
func TopologyA() *topology.Graph {
	g := topology.New()
	s := g.MustAddSwitch("s0")
	for i := 0; i < 24; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(s, m)
	}
	return g.MustValidate()
}

// TopologyB builds Fig. 5(b): 32 machines, 8 per switch, with switches S1,
// S2, S3 each connected to S0 (a star of switches). The bottleneck links are
// the three inter-switch links (load 8 x 24 = 192); peak aggregate
// throughput is 32*31*B/192 ≈ 5.17 B, matching the peak line of Fig. 7.
func TopologyB() *topology.Graph {
	return multiSwitch32(func(g *topology.Graph, s [4]int) {
		g.MustConnect(s[0], s[1])
		g.MustConnect(s[0], s[2])
		g.MustConnect(s[0], s[3])
	})
}

// TopologyC builds Fig. 5(c): 32 machines, 8 per switch, with the switches
// in a linear chain S0-S1-S2-S3. The bottleneck is the middle link
// (load 16 x 16 = 256); peak aggregate throughput is 32*31*B/256 ≈ 3.88 B,
// matching the peak line of Fig. 8.
func TopologyC() *topology.Graph {
	return multiSwitch32(func(g *topology.Graph, s [4]int) {
		g.MustConnect(s[0], s[1])
		g.MustConnect(s[1], s[2])
		g.MustConnect(s[2], s[3])
	})
}

// TopologyBGiga is topology (b) upgraded with 10x (gigabit-class) uplinks
// between the switches — the heterogeneous-bandwidth extension. The
// inter-switch links stop being the bottleneck (weighted load 19.2 versus 31
// on the machine links), raising the weighted peak aggregate throughput from
// 516.7 to 3200 Mbps at B = 100 Mbps.
func TopologyBGiga() *topology.Graph {
	return multiSwitch32(func(g *topology.Graph, s [4]int) {
		g.MustConnectSpeed(s[0], s[1], 10)
		g.MustConnectSpeed(s[0], s[2], 10)
		g.MustConnectSpeed(s[0], s[3], 10)
	})
}

// multiSwitch32 builds a 32-machine cluster over 4 switches (8 machines
// each) with the inter-switch wiring supplied by connect. Machine ranks run
// n0..n7 on S0, n8..n15 on S1, n16..n23 on S2 and n24..n31 on S3, matching
// the paper's figure labels.
func multiSwitch32(connect func(g *topology.Graph, s [4]int)) *topology.Graph {
	g := topology.New()
	var s [4]int
	for i := range s {
		s[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
	}
	connect(g, s)
	for i := 0; i < 32; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(s[i/8], m)
	}
	return g.MustValidate()
}

// Preset returns a named experiment topology: "a", "b", "c" for Fig. 5, or
// "fig1" for the running example.
func Preset(name string) (*topology.Graph, error) {
	switch name {
	case "a":
		return TopologyA(), nil
	case "b":
		return TopologyB(), nil
	case "c":
		return TopologyC(), nil
	case "bg":
		return TopologyBGiga(), nil
	case "fig1":
		return Fig1(), nil
	default:
		return nil, fmt.Errorf("harness: unknown topology preset %q (want a, b, c, bg or fig1)", name)
	}
}
