package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Algorithm is a named MPI_Alltoall implementation that may be customized to
// a topology (the paper's generated routines are; the baselines ignore it).
type Algorithm struct {
	// Name labels the algorithm in reports ("LAM", "MPICH", "Ours").
	Name string
	// Make builds the algorithm function for a cluster.
	Make func(g *topology.Graph) (alltoall.Func, error)
}

// LAM is the original LAM/MPI all-to-all (the paper's first baseline).
func LAM() Algorithm {
	return Algorithm{Name: "LAM", Make: func(*topology.Graph) (alltoall.Func, error) {
		return alltoall.Simple, nil
	}}
}

// MPICHAlg is the improved MPICH all-to-all (the paper's second baseline).
func MPICHAlg() Algorithm {
	return Algorithm{Name: "MPICH", Make: func(*topology.Graph) (alltoall.Func, error) {
		return alltoall.MPICH, nil
	}}
}

// Ours is the paper's contribution: the automatically generated routine with
// the given synchronization mode (PairwiseSync is the published scheme).
func Ours(mode alltoall.SyncMode) Algorithm {
	name := "Ours"
	if mode != alltoall.PairwiseSync {
		name = "Ours/" + mode.String()
	}
	return Algorithm{Name: name, Make: func(g *topology.Graph) (alltoall.Func, error) {
		sc, err := CompileRoutine(g, mode)
		if err != nil {
			return nil, err
		}
		return sc.Fn(), nil
	}}
}

// OursGreedy schedules with the greedy first-fit baseline instead of the
// paper's construction — the ablation that isolates the value of the
// load-optimal phase count.
func OursGreedy() Algorithm {
	return Algorithm{Name: "Ours/greedy", Make: func(g *topology.Graph) (alltoall.Func, error) {
		s := schedule.BuildGreedy(g)
		plan, err := syncplan.Build(g, s)
		if err != nil {
			return nil, err
		}
		sc, err := alltoall.NewScheduled(s, plan, alltoall.PairwiseSync)
		if err != nil {
			return nil, err
		}
		return sc.Fn(), nil
	}}
}

// CompileRoutine runs the full generation pipeline for a topology: schedule
// construction, verification, synchronization planning, and compilation into
// a runnable routine. This is the library entry point behind cmd/aapcgen.
func CompileRoutine(g *topology.Graph, mode alltoall.SyncMode) (*alltoall.Scheduled, error) {
	s, err := schedule.Build(g)
	if err != nil {
		return nil, fmt.Errorf("harness: scheduling: %w", err)
	}
	if err := schedule.Verify(g, s, true); err != nil {
		return nil, fmt.Errorf("harness: generated schedule failed verification: %w", err)
	}
	var plan *syncplan.Plan
	if mode == alltoall.PairwiseSync {
		plan, err = syncplan.Build(g, s)
		if err != nil {
			return nil, fmt.Errorf("harness: synchronization planning: %w", err)
		}
	}
	return alltoall.NewScheduled(s, plan, mode)
}

// Result is one measured cell of an evaluation table.
type Result struct {
	Algorithm string
	Msize     int
	// Seconds is the simulated completion time of one MPI_Alltoall.
	Seconds float64
	// ThroughputMbps is the aggregate throughput
	// |M| * (|M|-1) * msize / Seconds, in megabits per second.
	ThroughputMbps float64
}

// Experiment is one evaluation sweep: a set of algorithms across message
// sizes on one topology, like each of Figs. 6-8.
type Experiment struct {
	Name       string
	Graph      *topology.Graph
	Msizes     []int
	Algorithms []Algorithm
	// Net overrides the simulator cost model; zero fields take simnet
	// defaults. Net.Graph is set by Run.
	Net simnet.Config
	// Iterations invokes the routine this many times back to back and
	// reports the mean per-invocation time, mirroring the paper's
	// measurement procedure (10 iterations per execution). Consecutive
	// invocations may pipeline, exactly as on the real cluster. Default 1.
	Iterations int
	// Parallel caps how many (algorithm, msize) cells are simulated
	// concurrently. Each cell runs on its own World, and every World is
	// deterministic in isolation, so the report is identical for any
	// setting. 0 uses GOMAXPROCS; 1 restores fully serial measurement.
	Parallel int
}

// PaperMsizes are the message sizes of the paper's tables: 8 KB to 256 KB.
var PaperMsizes = []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}

// Report is the outcome of an experiment.
type Report struct {
	Name string
	// Machines is |M|.
	Machines int
	// Load is the AAPC load of the topology.
	Load int
	// PeakMbps is the analytic peak aggregate throughput (the "Peak" line
	// of the paper's throughput figures).
	PeakMbps float64
	// Msizes and Algorithms give the table axes in order.
	Msizes     []int
	Algorithms []string
	// Rows holds one Result per (algorithm, msize).
	Rows []Result
}

// Run measures every (algorithm, msize) cell on a fresh simulated world.
// Simulation is deterministic, so a single invocation per cell is exact —
// where the paper averages 10 iterations over 3 executions to tame real-
// machine noise, the simulator has none.
//
// Cells are independent simulations, so they fan out over a worker pool of
// Parallel goroutines. Routine generation stays serial (it is cheap and its
// errors should surface deterministically), and rows are assembled in the
// same (algorithm, msize) order as serial measurement, so reports are
// byte-identical for every Parallel setting.
func (e *Experiment) Run() (*Report, error) {
	if len(e.Msizes) == 0 {
		e.Msizes = PaperMsizes
	}
	if len(e.Algorithms) == 0 {
		e.Algorithms = []Algorithm{LAM(), MPICHAlg(), Ours(alltoall.PairwiseSync)}
	}
	if err := e.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	net := e.Net
	net.Graph = e.Graph
	bw := net.LinkBandwidth
	if bw == 0 {
		bw = simnet.DefaultLinkBandwidth
	}
	m := e.Graph.NumMachines()
	rep := &Report{
		Name:     e.Name,
		Machines: m,
		Load:     e.Graph.AAPCLoad(),
		PeakMbps: e.Graph.PeakAggregateThroughput(bw) * 8 / 1e6,
		Msizes:   e.Msizes,
	}
	fns := make([]alltoall.Func, len(e.Algorithms))
	for i, alg := range e.Algorithms {
		rep.Algorithms = append(rep.Algorithms, alg.Name)
		fn, err := alg.Make(e.Graph)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", alg.Name, err)
		}
		fns[i] = fn
	}
	if m >= 2 {
		// Populate the graph's lazy rooted-view cache before worlds are
		// built concurrently; afterwards workers only read it.
		e.Graph.PathBetweenRanks(0, 1)
	}
	type cell struct {
		alg   int
		msize int
	}
	jobs := make([]cell, 0, len(e.Algorithms)*len(e.Msizes))
	for ai := range e.Algorithms {
		for _, msize := range e.Msizes {
			jobs = append(jobs, cell{alg: ai, msize: msize})
		}
	}
	workers := e.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	rows := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//aapc:allow determinism results land in rows[j]/errs[j] keyed by job index, so worker interleaving is invisible
		go func() {
			defer wg.Done()
			for {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(jobs) {
					return
				}
				alg, msize := e.Algorithms[jobs[j].alg], jobs[j].msize
				secs, err := MeasureIterations(net, fns[jobs[j].alg], msize, e.Iterations)
				if err != nil {
					errs[j] = fmt.Errorf("harness: %s msize %d: %w", alg.Name, msize, err)
					continue
				}
				rows[j] = Result{
					Algorithm:      alg.Name,
					Msize:          msize,
					Seconds:        secs,
					ThroughputMbps: float64(m) * float64(m-1) * float64(msize) * 8 / secs / 1e6,
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err // first failure in serial cell order
		}
	}
	rep.Rows = rows
	return rep, nil
}

// Measure runs one all-to-all invocation of fn on a fresh simulated world
// and returns the virtual completion time in seconds.
func Measure(net simnet.Config, fn alltoall.Func, msize int) (float64, error) {
	return MeasureIterations(net, fn, msize, 1)
}

// MeasureIterations invokes fn iterations times back to back on one world
// and returns the mean per-invocation virtual time. iterations < 1 is
// treated as 1.
func MeasureIterations(net simnet.Config, fn alltoall.Func, msize, iterations int) (float64, error) {
	if iterations < 1 {
		iterations = 1
	}
	w, err := simnet.NewWorld(net)
	if err != nil {
		return 0, err
	}
	err = w.Run(func(c mpi.Comm) error {
		b := alltoall.NewShared(msize)
		for i := 0; i < iterations; i++ {
			if err := fn(c, b, msize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return w.Elapsed() / float64(iterations), nil
}

// Cell returns the result for an algorithm and message size.
func (r *Report) Cell(alg string, msize int) (Result, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == alg && row.Msize == msize {
			return row, true
		}
	}
	return Result{}, false
}

// MeasureObserved is Measure with obsv instrumentation: every rank runs
// through an instrumenting wrapper and the per-rank recorders come back with
// the virtual completion time. From the recorders' merged events the caller
// gets phase statistics (obsv.PhaseStats) and a JSONL trace
// (obsv.WriteRecorders) for the same run the time was measured on. Under
// -tags obsv_off the recorders come back empty and the measurement is
// unchanged.
func MeasureObserved(net simnet.Config, fn alltoall.Func, msize int) (float64, []*obsv.Recorder, error) {
	w, err := simnet.NewWorld(net)
	if err != nil {
		return 0, nil, err
	}
	recs := make([]*obsv.Recorder, net.Graph.NumMachines())
	for i := range recs {
		recs[i] = obsv.NewRecorder(i)
	}
	err = w.Run(func(c mpi.Comm) error {
		ic := obsv.Instrument(c, recs[c.Rank()])
		return fn(ic, alltoall.NewShared(msize), msize)
	})
	if err != nil {
		return 0, nil, err
	}
	return w.Elapsed(), recs, nil
}

// MeasureTraced is Measure returning the run's flow records as well, for
// timeline analysis with the trace package.
func MeasureTraced(net simnet.Config, fn alltoall.Func, msize int) (float64, []simnet.FlowRecord, error) {
	elapsed, records, _, err := MeasureTracedStats(net, fn, msize)
	return elapsed, records, err
}

// MeasureTracedStats additionally returns per-link utilization statistics.
func MeasureTracedStats(net simnet.Config, fn alltoall.Func, msize int) (float64, []simnet.FlowRecord, []simnet.LinkStats, error) {
	w, err := simnet.NewWorld(net)
	if err != nil {
		return 0, nil, nil, err
	}
	err = w.Run(func(c mpi.Comm) error {
		return fn(c, alltoall.NewShared(msize), msize)
	})
	if err != nil {
		return 0, nil, nil, err
	}
	return w.Elapsed(), w.FlowTrace(), w.LinkStats(), nil
}

// OursWeighted is the heterogeneous-bandwidth extension: schedule selection
// by weighted cost (schedule.BuildAuto) with capacity-aware pair-wise
// synchronizations. On uniform clusters it is identical to Ours.
func OursWeighted() Algorithm {
	return Algorithm{Name: "Ours/weighted", Make: func(g *topology.Graph) (alltoall.Func, error) {
		sc, err := CompileRoutineWeighted(g)
		if err != nil {
			return nil, err
		}
		return sc.Fn(), nil
	}}
}

// CompileRoutineWeighted runs the capacity-aware generation pipeline for
// heterogeneous clusters: weighted schedule selection, capacity
// verification, and cross-phase-only synchronization planning.
func CompileRoutineWeighted(g *topology.Graph) (*alltoall.Scheduled, error) {
	s, err := schedule.BuildAuto(g)
	if err != nil {
		return nil, fmt.Errorf("harness: weighted scheduling: %w", err)
	}
	if err := schedule.VerifyCapacity(g, s); err != nil {
		return nil, fmt.Errorf("harness: weighted schedule failed verification: %w", err)
	}
	plan, err := syncplan.BuildCapacityAware(g, s)
	if err != nil {
		return nil, fmt.Errorf("harness: capacity-aware synchronization planning: %w", err)
	}
	return alltoall.NewScheduled(s, plan, alltoall.PairwiseSync)
}
