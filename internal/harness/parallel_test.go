package harness

import (
	"reflect"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// TestExperimentParallelDeterministic pins the contract of the concurrent
// harness: the report is byte-identical for every Parallel setting and for
// both rate engines, because each cell is an isolated deterministic world
// and rows are assembled in serial order.
func TestExperimentParallelDeterministic(t *testing.T) {
	g, err := Preset("a")
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel int, engine string) *Report {
		exp := &Experiment{
			Name:   "det",
			Graph:  g,
			Msizes: []int{8 << 10, 32 << 10},
			Net:    simnet.Config{JitterFrac: 0.2, JitterSeed: 42, RateEngine: engine},
			// Default algorithms: LAM, MPICH, Ours.
			Parallel: parallel,
		}
		rep, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(1, simnet.RateEngineFast)
	for _, parallel := range []int{0, 2, 7} {
		if rep := run(parallel, simnet.RateEngineFast); !reflect.DeepEqual(serial, rep) {
			t.Errorf("Parallel=%d report differs from serial:\nserial:   %+v\nparallel: %+v",
				parallel, serial.Rows, rep.Rows)
		}
	}
	if rep := run(0, simnet.RateEngineReference); !reflect.DeepEqual(serial, rep) {
		t.Errorf("reference-engine report differs from fast-engine report:\nfast:      %+v\nreference: %+v",
			serial.Rows, rep.Rows)
	}
}
