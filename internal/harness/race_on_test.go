//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in; the scale
// test skips under it (5-20x slowdown on a CPU-bound 512-rank simulation).
const raceEnabled = true
