package harness

import (
	"net/http/httptest"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/sched"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// daemonClient boots a schedule daemon over the Fig. 1 cluster and returns
// a client for it.
func daemonClient(t *testing.T) *sched.Client {
	t.Helper()
	d, err := sched.New(sched.Options{Graph: Fig1()})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sched.NewServer(d, nil))
	t.Cleanup(srv.Close)
	return sched.NewClient(srv.URL, srv.Client())
}

// TestDaemonBackedMatchesLocalCompile: a routine fetched from the daemon
// must behave identically to the locally compiled one — same simulated
// completion time on the same deterministic world.
func TestDaemonBackedMatchesLocalCompile(t *testing.T) {
	g := Fig1()
	cl := daemonClient(t)
	const msize = 64 << 10 // medium class: pair-wise syncs travel with it

	remote, err := DaemonBacked(cl, sched.AlgOurs, msize).Make(g)
	if err != nil {
		t.Fatal(err)
	}
	local, err := Ours(alltoall.PairwiseSync).Make(g)
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.Config{Graph: g}
	tr, err := Measure(net, remote, msize)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Measure(net, local, msize)
	if err != nil {
		t.Fatal(err)
	}
	if tr != tl {
		t.Errorf("daemon-backed run took %gs, local compile %gs — same schedule must simulate identically", tr, tl)
	}
}

// TestDaemonBackedSmallMessagesUseBarrier: the small class carries no sync
// plan; the daemon's advice selects barrier synchronization and the routine
// still completes.
func TestDaemonBackedSmallMessagesUseBarrier(t *testing.T) {
	g := Fig1()
	cl := daemonClient(t)
	fn, err := DaemonBacked(cl, sched.AlgOurs, 1024).Make(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Measure(simnet.Config{Graph: g}, fn, 1024); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBackedRejectsForeignTopology: making the routine for a cluster
// the daemon has never seen must fail (the hash pin misses), not silently
// serve the daemon's own schedule.
func TestDaemonBackedRejectsForeignTopology(t *testing.T) {
	cl := daemonClient(t)
	if _, err := DaemonBacked(cl, sched.AlgOurs, 1024).Make(TopologyA()); err == nil {
		t.Fatal("schedule for a foreign topology was served")
	}
}
