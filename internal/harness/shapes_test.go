package harness

import (
	"testing"

	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// TestPaperShapes asserts the qualitative claims of the paper's evaluation
// (Section 6) on the simulator, for all three topologies of Fig. 5. It is
// the automated version of EXPERIMENTS.md. Skipped under -short: the full
// sweep simulates 3 topologies x 3 algorithms x 3 sizes.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-shape sweep skipped in -short mode")
	}
	msizes := []int{8 << 10, 64 << 10, 256 << 10}
	for _, preset := range []string{"a", "b", "c"} {
		g, err := Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		exp := &Experiment{Name: preset, Graph: g, Msizes: msizes}
		rep, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		small, large := msizes[0], msizes[2]
		oursSmall, _ := rep.Cell("Ours", small)
		lamSmall, _ := rep.Cell("LAM", small)
		oursLarge, _ := rep.Cell("Ours", large)
		lamLarge, _ := rep.Cell("LAM", large)
		mpichLarge, _ := rep.Cell("MPICH", large)

		// Claim 1: at 8 KB the generated routine loses to LAM
		// (synchronization overhead dominates small messages).
		if oursSmall.Seconds <= lamSmall.Seconds {
			t.Errorf("topology %s: ours (%.1fms) should lose to LAM (%.1fms) at 8KB",
				preset, oursSmall.Seconds*1e3, lamSmall.Seconds*1e3)
		}
		// Claim 2: at 256 KB the generated routine beats LAM decisively.
		if oursLarge.Seconds >= lamLarge.Seconds*0.85 {
			t.Errorf("topology %s: ours (%.1fms) should beat LAM (%.1fms) by >15%% at 256KB",
				preset, oursLarge.Seconds*1e3, lamLarge.Seconds*1e3)
		}
		// Claim 3: at 256 KB the generated routine approaches the peak
		// aggregate throughput (within 25%), and never exceeds it.
		if oursLarge.ThroughputMbps > rep.PeakMbps*1.0001 {
			t.Errorf("topology %s: ours %.1f Mbps exceeds peak %.1f",
				preset, oursLarge.ThroughputMbps, rep.PeakMbps)
		}
		if oursLarge.ThroughputMbps < rep.PeakMbps*0.75 {
			t.Errorf("topology %s: ours %.1f Mbps too far below peak %.1f",
				preset, oursLarge.ThroughputMbps, rep.PeakMbps)
		}
		// Claim 4 (topology c): MPICH gains nothing over LAM when link
		// contention dominates.
		if preset == "c" && mpichLarge.Seconds < lamLarge.Seconds*0.95 {
			t.Errorf("topology c: MPICH (%.1fms) should not meaningfully beat LAM (%.1fms)",
				mpichLarge.Seconds*1e3, lamLarge.Seconds*1e3)
		}
		// Claim 5: LAM throughput plateaus (insensitive to msize) while ours
		// grows with msize.
		lamMid, _ := rep.Cell("LAM", msizes[1])
		if lamLarge.ThroughputMbps < lamMid.ThroughputMbps*0.9 {
			t.Errorf("topology %s: LAM throughput should plateau, got %.1f then %.1f",
				preset, lamMid.ThroughputMbps, lamLarge.ThroughputMbps)
		}
		oursMid, _ := rep.Cell("Ours", msizes[1])
		if oursLarge.ThroughputMbps <= oursMid.ThroughputMbps {
			t.Errorf("topology %s: ours throughput should grow with msize, got %.1f then %.1f",
				preset, oursMid.ThroughputMbps, oursLarge.ThroughputMbps)
		}
	}
}

// TestSchedulerSoak builds and fully verifies schedules for large clusters:
// a 128-machine multi-switch tree and a deep chain. Skipped under -short.
func TestSchedulerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	t.Run("wide", func(t *testing.T) {
		g := topology.New()
		root := g.MustAddSwitch("root")
		for i := 0; i < 8; i++ {
			sw := g.MustAddSwitch(sName(i))
			g.MustConnect(root, sw)
			for j := 0; j < 16; j++ {
				m := g.MustAddMachine(sName(i) + "m" + sName(j))
				g.MustConnect(sw, m)
			}
		}
		g.MustValidate()
		s, err := schedule.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Verify(g, s, true); err != nil {
			t.Fatal(err)
		}
		if got, want := len(s.Phases), 16*(128-16); got != want {
			t.Errorf("phases = %d, want %d", got, want)
		}
	})
	t.Run("deep-chain", func(t *testing.T) {
		g := topology.New()
		prev := -1
		for i := 0; i < 16; i++ {
			sw := g.MustAddSwitch("c" + sName(i))
			if prev >= 0 {
				g.MustConnect(prev, sw)
			}
			prev = sw
			for j := 0; j < 4; j++ {
				m := g.MustAddMachine("c" + sName(i) + "m" + sName(j))
				g.MustConnect(sw, m)
			}
		}
		g.MustValidate()
		s, err := schedule.Build(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := schedule.Verify(g, s, true); err != nil {
			t.Fatal(err)
		}
	})
}

func sName(i int) string {
	const d = "0123456789abcdefghijklmnopqrstuvwxyz"
	if i < 36 {
		return d[i : i+1]
	}
	return d[i/36:i/36+1] + d[i%36:i%36+1]
}
