package harness

import (
	"fmt"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/obsv/collect"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// End-to-end attribution: run a compiled schedule on a real transport with
// tracing on, price the same schedule in the simulator, and let the
// collector name the straggling rank and the diverging link. This is the
// measurement loop ROADMAP item 3b (jitter-adaptive scheduling) will sit
// on: before a scheduler can react to a slow link it has to be able to find
// one.

// AttributionConfig configures RunAttribution.
type AttributionConfig struct {
	// Graph is the cluster topology (required).
	Graph *topology.Graph
	// Mode selects the synchronization flavor (default PairwiseSync).
	Mode alltoall.SyncMode
	// Msize is the per-pair block size (default 4096).
	Msize int
	// Plan, when non-nil, injects faults into the measured run (the
	// simulator prices the fault-free baseline, so injected slowness is
	// exactly what divergence should localize).
	Plan *faults.Plan
	// Timeout bounds every blocking step of the measured run (default 30s;
	// failing closed beats hanging a test on a faulty run).
	Timeout time.Duration
	// Net prices the prediction; Graph is filled in from Graph. Zero-value
	// fields use the simulator defaults.
	Net simnet.Config
	// Divergence tunes the flagging thresholds.
	Divergence collect.DivergenceOptions
}

// RunAttribution executes the schedule on the in-process mem transport with
// causal tracing, ingests every rank's span log into a collector, prices
// the same routine in simnet, and returns the merged attribution report.
func RunAttribution(cfg AttributionConfig) (*collect.Report, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("harness: attribution needs a topology")
	}
	if cfg.Msize <= 0 {
		cfg.Msize = 4096
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	sc, err := CompileRoutine(cfg.Graph, cfg.Mode)
	if err != nil {
		return nil, err
	}
	fn := sc.FnTimeout(cfg.Timeout)
	m := cfg.Graph.NumMachines()

	// Measured run: mem transport, optional fault wrapping UNDER the
	// instrumentation so injected delays land inside the recorded spans.
	recs := make([]*obsv.Recorder, m)
	for i := range recs {
		recs[i] = obsv.NewRecorder(i)
	}
	inj := faults.New(cfg.Plan)
	err = mem.Run(m, func(c mpi.Comm) error {
		if cfg.Plan != nil {
			c = inj.Wrap(c)
		}
		return fn(obsv.Instrument(c, recs[c.Rank()]), alltoall.NewShared(cfg.Msize), cfg.Msize)
	})
	if err != nil {
		return nil, fmt.Errorf("harness: measured run: %w", err)
	}

	store := collect.NewStore()
	// One process, one clock: skip offset estimation (which injected delays
	// would otherwise mislead — a uniformly slow sender looks exactly like a
	// lagging clock to a min-delay estimator).
	store.SetCommonClock(true)
	for _, r := range recs {
		store.AddEvents(r.Events())
	}

	// Prediction: the same routine priced contention-free-baseline in the
	// simulator (no faults — divergence localizes what the plan injected).
	net := cfg.Net
	net.Graph = cfg.Graph
	_, flows, err := MeasureTraced(net, sc.Fn(), cfg.Msize)
	if err != nil {
		return nil, fmt.Errorf("harness: prediction run: %w", err)
	}
	return store.AnalyzeWithPrediction(cfg.Graph, flows, cfg.Divergence), nil
}
