package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/obsv/collect"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// twoSwitchGraph builds the smallest topology with a cross-switch trunk:
//
//	n0, n1 - s0 --- s1 - n2, n3
//
// Small enough that the expected divergence counts can be enumerated by
// hand (see TestAttributionNamesSlowLink).
func twoSwitchGraph(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	for i, sw := range []int{s0, s0, s1, s1} {
		n := g.MustAddMachine("n" + string(rune('0'+i)))
		g.MustConnect(n, sw)
	}
	g.MustConnect(s0, s1)
	return g.MustValidate()
}

// TestAttributionNamesSlowLink is the end-to-end acceptance run: a fault
// plan delays every message rank 0 sends by 15ms (a slow NIC on n0's
// uplink), and the merged report must name rank 0 as the straggler, route
// the critical path through rank 0, and flag exactly the n0>s0 uplink in
// the sim-vs-real divergence.
//
// Expected link arithmetic (4 ranks, one data message per directed pair):
//
//	n0>s0: crossed by 0->1, 0->2, 0->3 — 3/3 delayed  => flagged
//	s0>s1: crossed by 0->2, 0->3, 1->2, 1->3 — 2/4    => below 0.75
//	s0>n1: crossed by 0->1, 2->1, 3->1 — 1/3          => below 0.75
//	s0>n0, s1>s0, ...: only healthy traffic           => 0 diverging
func TestAttributionNamesSlowLink(t *testing.T) {
	g := twoSwitchGraph(t)
	plan, err := faults.ParsePlanString("delay 0 * 15ms")
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	rep, err := RunAttribution(AttributionConfig{
		Graph: g,
		Mode:  alltoall.PairwiseSync,
		Msize: 4096,
		Plan:  plan,
		// The injected delay (15ms) dwarfs loopback noise by orders of
		// magnitude; a generous factor keeps scheduler jitter on healthy
		// messages from ever flagging.
		Divergence: collect.DivergenceOptions{Factor: 10},
		Timeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunAttribution: %v", err)
	}

	if rep.Ranks != 4 {
		t.Fatalf("ranks = %d, want 4", rep.Ranks)
	}
	if rep.Linked == 0 {
		t.Fatalf("no causally linked messages in the merged trace")
	}

	// Straggler: rank 0 is the slow sender.
	if rep.SlowestRank != 0 {
		t.Errorf("SlowestRank = %d, want 0\n%s", rep.SlowestRank, rep.Text())
	}

	// Critical path: the chain bounding the makespan must pass through the
	// delayed rank and cross at least one wire.
	if len(rep.Critical) == 0 {
		t.Fatalf("empty critical path")
	}
	through0, viaLink := false, false
	for _, st := range rep.Critical {
		if st.Rank == 0 {
			through0 = true
		}
		if st.ViaLink {
			viaLink = true
		}
	}
	if !through0 {
		t.Errorf("critical path avoids rank 0:\n%s", rep.Text())
	}
	if !viaLink {
		t.Errorf("critical path never crosses a message edge:\n%s", rep.Text())
	}

	// Divergence: exactly the slow uplink is flagged.
	if rep.Divergence == nil {
		t.Fatalf("no divergence report attached")
	}
	if rep.Divergence.Matched == 0 {
		t.Fatalf("divergence matched no messages (unmatched=%d)", rep.Divergence.Unmatched)
	}
	flagged := rep.Divergence.FlaggedLinks()
	if len(flagged) != 1 || flagged[0] != "n0>s0" {
		t.Errorf("flagged links = %v, want [n0>s0]\n%s", flagged, rep.Text())
	}

	// Every data message out of rank 0 must itself be flagged.
	for _, m := range rep.Divergence.Messages {
		if m.Src == 0 && !m.Flagged {
			t.Errorf("delayed message 0->%d not flagged (ratio %.2f)", m.Dst, m.Ratio)
		}
	}

	// The rendered report names the culprit link.
	if txt := rep.Text(); !strings.Contains(txt, "n0>s0") {
		t.Errorf("text report does not mention the flagged link:\n%s", txt)
	}
}

// TestAttributionCleanRun verifies the negative: without faults no link is
// flagged, so the flag in TestAttributionNamesSlowLink is signal, not floor
// noise.
func TestAttributionCleanRun(t *testing.T) {
	g := twoSwitchGraph(t)
	rep, err := RunAttribution(AttributionConfig{
		Graph:      g,
		Mode:       alltoall.PairwiseSync,
		Msize:      4096,
		Divergence: collect.DivergenceOptions{Factor: 10},
	})
	if err != nil {
		t.Fatalf("RunAttribution: %v", err)
	}
	if rep.Divergence == nil || rep.Divergence.Matched == 0 {
		t.Fatalf("clean run produced no matched messages")
	}
	if flagged := rep.Divergence.FlaggedLinks(); len(flagged) != 0 {
		t.Errorf("clean run flagged links %v\n%s", flagged, rep.Text())
	}
	if len(rep.Critical) == 0 {
		t.Errorf("clean run has no critical path")
	}
}
