package harness

import (
	"fmt"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// chainCluster builds machines spread over a chain of switches, 16 per
// switch — the stress shape of the simulator benchmarks.
func chainCluster(machines int) *topology.Graph {
	g := topology.New()
	nsw := (machines + 15) / 16
	sw := make([]int, nsw)
	for i := range sw {
		sw[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
		if i > 0 {
			g.MustConnect(sw[i-1], sw[i])
		}
	}
	for i := 0; i < machines; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw[i/16], m)
	}
	return g.MustValidate()
}

// TestHarness512RankCell pins the simulator's scale contract: one 512-rank
// AAPC harness cell — the windowed exchange pattern production all-to-alls
// use at scale, 261k messages — must complete well under a minute. (The
// post-all LAM pattern at 512 ranks is the deliberate worst case: 261k
// *concurrent* flows whose max-min rate cascade re-solves per completion
// wave; it is simulable but takes many minutes, which is exactly why the
// windowed pattern exists.)
func TestHarness512RankCell(t *testing.T) {
	if testing.Short() {
		t.Skip("512-rank cell takes tens of seconds; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("512-rank cell under the race detector takes minutes; wall-clock bound is meaningless there")
	}
	g := chainCluster(512)
	net := simnet.Config{Graph: g}
	start := time.Now()
	secs, err := Measure(net, alltoall.Windowed(32), 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	t.Logf("512-rank windowed(32) cell: wall %v, virtual %.3fs", wall, secs)
	if secs <= 0 {
		t.Fatalf("nonsensical virtual time %v", secs)
	}
	if wall > time.Minute {
		t.Errorf("512-rank cell took %v, want < 1m", wall)
	}
}
