package harness

import (
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// TestTopologyPresets checks the Fig. 5 topologies against the analytic
// properties that identify them: machine counts, AAPC loads, and the peak
// aggregate throughput lines of the paper's figures.
func TestTopologyPresets(t *testing.T) {
	const bw = simnet.DefaultLinkBandwidth // 100 Mbps
	cases := []struct {
		name     string
		machines int
		load     int
		peakMbps float64
	}{
		// Topology (a): machine links bottleneck at load 23; peak 24*100.
		{"a", 24, 23, 2400},
		// Topology (b): inter-switch links carry 8*24; peak 32*31*100/192.
		{"b", 32, 192, 516.7},
		// Topology (c): middle link carries 16*16; peak 32*31*100/256.
		{"c", 32, 256, 387.5},
		// Fig. 1 example: load 9.
		{"fig1", 6, 9, 333.3},
	}
	for _, tc := range cases {
		g, err := Preset(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.NumMachines(); got != tc.machines {
			t.Errorf("topology %s: %d machines, want %d", tc.name, got, tc.machines)
		}
		if got := g.AAPCLoad(); got != tc.load {
			t.Errorf("topology %s: load %d, want %d", tc.name, got, tc.load)
		}
		peak := g.PeakAggregateThroughput(bw) * 8 / 1e6
		if peak < tc.peakMbps-0.1 || peak > tc.peakMbps+0.1 {
			t.Errorf("topology %s: peak %.1f Mbps, want %.1f", tc.name, peak, tc.peakMbps)
		}
		// Every preset must be schedulable and verified.
		s, err := schedule.Build(g)
		if err != nil {
			t.Fatalf("topology %s: %v", tc.name, err)
		}
		if err := schedule.Verify(g, s, true); err != nil {
			t.Errorf("topology %s: %v", tc.name, err)
		}
	}
	if _, err := Preset("z"); err == nil {
		t.Error("want error for unknown preset")
	}
}

func TestCompileRoutinePipeline(t *testing.T) {
	g := Fig1()
	sc, err := CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumRanks() != 6 || sc.SyncCount() == 0 {
		t.Errorf("compiled routine: ranks=%d syncs=%d", sc.NumRanks(), sc.SyncCount())
	}
}

// TestExperimentShapeFig1 runs a small sweep end to end and checks the
// qualitative claims of the paper on the example topology: the generated
// routine beats LAM at large message sizes and approaches the peak.
func TestExperimentShapeFig1(t *testing.T) {
	exp := &Experiment{
		Name:   "fig1",
		Graph:  Fig1(),
		Msizes: []int{8 << 10, 128 << 10},
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3*2 {
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	const big = 128 << 10
	ours, _ := rep.Cell("Ours", big)
	lam, _ := rep.Cell("LAM", big)
	if ours.Seconds >= lam.Seconds {
		t.Errorf("at 128KB ours (%.4g s) should beat LAM (%.4g s)", ours.Seconds, lam.Seconds)
	}
	if ours.ThroughputMbps > rep.PeakMbps*1.0001 {
		t.Errorf("ours throughput %.1f exceeds peak %.1f", ours.ThroughputMbps, rep.PeakMbps)
	}
	if ours.ThroughputMbps < rep.PeakMbps*0.75 {
		t.Errorf("ours throughput %.1f too far from peak %.1f at 128KB",
			ours.ThroughputMbps, rep.PeakMbps)
	}
	// Throughput/time consistency.
	for _, row := range rep.Rows {
		wantMbps := float64(rep.Machines) * float64(rep.Machines-1) *
			float64(row.Msize) * 8 / row.Seconds / 1e6
		if diff := row.ThroughputMbps - wantMbps; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("row %+v: inconsistent throughput", row)
		}
	}
}

func TestReportRendering(t *testing.T) {
	exp := &Experiment{
		Name:   "render",
		Graph:  Fig1(),
		Msizes: []int{8 << 10},
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Summary()
	for _, want := range []string{"Completion time", "Aggregate throughput", "LAM", "MPICH", "Ours", "8KB"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
	plot := rep.ThroughputPlot(10)
	if !strings.Contains(plot, "legend") || !strings.Contains(plot, "Peak") {
		t.Errorf("plot missing legend:\n%s", plot)
	}
	if _, ok := rep.Cell("nope", 8<<10); ok {
		t.Error("Cell found nonexistent algorithm")
	}
}

func TestFormatMsize(t *testing.T) {
	cases := map[int]string{
		100:     "100B",
		8 << 10: "8KB",
		1 << 20: "1MB",
		3000:    "3000B",
	}
	for in, want := range cases {
		if got := FormatMsize(in); got != want {
			t.Errorf("FormatMsize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestOursGreedyRuns(t *testing.T) {
	exp := &Experiment{
		Name:       "greedy-ablation",
		Graph:      Fig1(),
		Msizes:     []int{16 << 10},
		Algorithms: []Algorithm{Ours(alltoall.PairwiseSync), OursGreedy()},
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := rep.Cell("Ours", 16<<10)
	greedy, _ := rep.Cell("Ours/greedy", 16<<10)
	if opt.Seconds <= 0 || greedy.Seconds <= 0 {
		t.Fatal("non-positive times")
	}
}

func TestSyncModeAblation(t *testing.T) {
	exp := &Experiment{
		Name:   "sync-ablation",
		Graph:  Fig1(),
		Msizes: []int{64 << 10},
		Algorithms: []Algorithm{
			Ours(alltoall.PairwiseSync),
			Ours(alltoall.BarrierSync),
			Ours(alltoall.NoSync),
		},
	}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := rep.Cell("Ours", 64<<10)
	bar, _ := rep.Cell("Ours/barrier", 64<<10)
	if pw.Seconds > bar.Seconds {
		t.Errorf("pairwise sync (%.4g) should not be slower than barriers (%.4g)",
			pw.Seconds, bar.Seconds)
	}
}

// TestWeightedExtensionOnGigabit checks the heterogeneous-bandwidth
// extension end to end: on topology (b) with 10x uplinks the weighted
// routine must run several times faster than the uniform-assuming one and
// must remain identical to it on the uniform topology (b).
func TestWeightedExtensionOnGigabit(t *testing.T) {
	bg, err := Preset("bg")
	if err != nil {
		t.Fatal(err)
	}
	net := simnet.Config{Graph: bg}
	const msize = 256 << 10
	uniformAssuming, err := Ours(alltoall.PairwiseSync).Make(bg)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := OursWeighted().Make(bg)
	if err != nil {
		t.Fatal(err)
	}
	tUniform, err := Measure(net, uniformAssuming, msize)
	if err != nil {
		t.Fatal(err)
	}
	tWeighted, err := Measure(net, weighted, msize)
	if err != nil {
		t.Fatal(err)
	}
	if tWeighted*3 > tUniform {
		t.Errorf("weighted routine %.1fms should be >3x faster than uniform-assuming %.1fms",
			tWeighted*1e3, tUniform*1e3)
	}
	// On the uniform topology (b) both pipelines produce the same schedule.
	b := TopologyB()
	scU, err := CompileRoutine(b, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	scW, err := CompileRoutineWeighted(b)
	if err != nil {
		t.Fatal(err)
	}
	if scU.SyncCount() != scW.SyncCount() || scU.NumRanks() != scW.NumRanks() {
		t.Errorf("weighted pipeline diverged on a uniform cluster: %d/%d syncs",
			scU.SyncCount(), scW.SyncCount())
	}
}

func TestReportCSV(t *testing.T) {
	exp := &Experiment{Name: "csvtest", Graph: Fig1(), Msizes: []int{8 << 10}}
	rep, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	csv := rep.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+3 {
		t.Fatalf("csv rows = %d, want header+3:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "topology,algorithm") {
		t.Errorf("csv header wrong: %s", lines[0])
	}
	if !strings.Contains(csv, "csvtest,LAM,8192,") {
		t.Errorf("csv missing LAM row:\n%s", csv)
	}
}

func TestMeasureIterationsPipelines(t *testing.T) {
	// Ten back-to-back invocations must average close to a single one:
	// slightly above is legitimate (iteration i+1's first phases queue
	// behind iteration i's tail on the same links), far above would mean
	// the routine does not re-run cleanly.
	g := Fig1()
	net := simnet.Config{Graph: g}
	fn, err := Ours(alltoall.PairwiseSync).Make(g)
	if err != nil {
		t.Fatal(err)
	}
	const msize = 32 << 10
	one, err := MeasureIterations(net, fn, msize, 1)
	if err != nil {
		t.Fatal(err)
	}
	ten, err := MeasureIterations(net, fn, msize, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ten > one*1.1 {
		t.Errorf("mean of 10 iterations (%.4g) far above single run (%.4g)", ten, one)
	}
	if ten < one*0.75 {
		t.Errorf("mean of 10 iterations (%.4g) suspiciously below single run (%.4g)", ten, one)
	}
	// The Experiment path accepts the knob too.
	exp := &Experiment{Name: "iters", Graph: g, Msizes: []int{msize}, Iterations: 3}
	if _, err := exp.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureTracedStats(t *testing.T) {
	g := Fig1()
	net := simnet.Config{Graph: g}
	elapsed, records, stats, err := MeasureTracedStats(net, alltoall.Simple, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 || len(records) != 30 || len(stats) == 0 {
		t.Errorf("elapsed=%v records=%d stats=%d", elapsed, len(records), len(stats))
	}
	e2, r2, err := MeasureTraced(net, alltoall.Simple, 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != elapsed || len(r2) != len(records) {
		t.Errorf("MeasureTraced disagrees: %v/%d vs %v/%d", e2, len(r2), elapsed, len(records))
	}
}
