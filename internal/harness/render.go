package harness

import (
	"fmt"
	"strings"
)

// FormatMsize renders a message size the way the paper's tables do: "8KB",
// "256KB".
func FormatMsize(msize int) string {
	switch {
	case msize >= 1<<20 && msize%(1<<20) == 0:
		return fmt.Sprintf("%dMB", msize>>20)
	case msize >= 1<<10 && msize%(1<<10) == 0:
		return fmt.Sprintf("%dKB", msize>>10)
	default:
		return fmt.Sprintf("%dB", msize)
	}
}

// formatTime renders a duration in seconds the way the paper's completion
// tables do: milliseconds with sensible precision.
func formatTime(secs float64) string {
	ms := secs * 1e3
	switch {
	case ms >= 1000:
		return fmt.Sprintf("%.0fms", ms)
	case ms >= 100:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.2fms", ms)
	}
}

// CompletionTable renders the "(a) Completion time" half of a paper figure:
// one row per message size, one column per algorithm.
func (r *Report) CompletionTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "msize")
	for _, alg := range r.Algorithms {
		fmt.Fprintf(&sb, " %12s", alg)
	}
	sb.WriteByte('\n')
	for _, msize := range r.Msizes {
		fmt.Fprintf(&sb, "%-8s", FormatMsize(msize))
		for _, alg := range r.Algorithms {
			if cell, ok := r.Cell(alg, msize); ok {
				fmt.Fprintf(&sb, " %12s", formatTime(cell.Seconds))
			} else {
				fmt.Fprintf(&sb, " %12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ThroughputTable renders the "(b) Aggregate throughput" half of a paper
// figure as a table: the analytic peak plus one series per algorithm, in
// Mbps.
func (r *Report) ThroughputTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s", "msize", "Peak")
	for _, alg := range r.Algorithms {
		fmt.Fprintf(&sb, " %12s", alg)
	}
	sb.WriteByte('\n')
	for _, msize := range r.Msizes {
		fmt.Fprintf(&sb, "%-8s %12.1f", FormatMsize(msize), r.PeakMbps)
		for _, alg := range r.Algorithms {
			if cell, ok := r.Cell(alg, msize); ok {
				fmt.Fprintf(&sb, " %12.1f", cell.ThroughputMbps)
			} else {
				fmt.Fprintf(&sb, " %12s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ThroughputPlot renders the throughput series as an ASCII chart shaped like
// the paper's figure panels: message size on the x axis, aggregate Mbps on
// the y axis.
func (r *Report) ThroughputPlot(height int) string {
	if height < 4 {
		height = 12
	}
	maxY := r.PeakMbps
	for _, row := range r.Rows {
		if row.ThroughputMbps > maxY {
			maxY = row.ThroughputMbps
		}
	}
	cols := len(r.Msizes)
	colw := 8
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*colw))
	}
	put := func(col int, mbps float64, mark byte) {
		row := int((mbps / maxY) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row > height-1 {
			row = height - 1
		}
		x := col*colw + colw/2
		y := height - 1 - row
		if grid[y][x] == ' ' || grid[y][x] == '-' {
			grid[y][x] = mark
		}
	}
	marks := []byte{'O', 'M', 'L', 'G', 'B', 'N', 'X', 'Y'}
	legend := make([]string, 0, len(r.Algorithms)+1)
	for c := range r.Msizes {
		put(c, r.PeakMbps, '-')
	}
	legend = append(legend, "- Peak")
	for ai, alg := range r.Algorithms {
		mark := marks[ai%len(marks)]
		for c, msize := range r.Msizes {
			if cell, ok := r.Cell(alg, msize); ok {
				put(c, cell.ThroughputMbps, mark)
			}
		}
		legend = append(legend, fmt.Sprintf("%c %s", mark, alg))
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Aggregate throughput (Mbps), max %.0f\n", maxY)
	for i, line := range grid {
		label := ""
		if i == 0 {
			label = fmt.Sprintf("%6.0f", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%6.0f", 0.0)
		} else {
			label = strings.Repeat(" ", 6)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&sb, "       +%s\n        ", strings.Repeat("-", cols*colw))
	for _, msize := range r.Msizes {
		fmt.Fprintf(&sb, "%-*s", colw, FormatMsize(msize))
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "  legend: %s\n", strings.Join(legend, "  "))
	return sb.String()
}

// Summary renders the full paper-style figure: header, completion table and
// throughput table.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %d machines, AAPC load %d, peak %.1f Mbps ==\n",
		r.Name, r.Machines, r.Load, r.PeakMbps)
	sb.WriteString("(a) Completion time\n")
	sb.WriteString(r.CompletionTable())
	sb.WriteString("(b) Aggregate throughput (Mbps)\n")
	sb.WriteString(r.ThroughputTable())
	return sb.String()
}

// CSV renders the report as comma-separated rows for external plotting:
// topology, algorithm, msize_bytes, seconds, mbps, peak_mbps.
func (r *Report) CSV() string {
	var sb strings.Builder
	sb.WriteString("topology,algorithm,msize_bytes,seconds,agg_mbps,peak_mbps\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s,%s,%d,%.9g,%.6g,%.6g\n",
			r.Name, row.Algorithm, row.Msize, row.Seconds, row.ThroughputMbps, r.PeakMbps)
	}
	return sb.String()
}
