package harness

import (
	"context"
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/sched"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// DaemonBacked is an Algorithm whose routine is compiled by a running
// schedule daemon (cmd/aapcd) instead of in-process: Make fetches the
// schedule — and, for pair-wise synchronization classes, the sync plan —
// over HTTP and compiles only the executable program locally. The request
// pins the daemon to the local topology's hash, so a daemon that has moved
// on to a newer cluster version either serves the retained matching version
// or fails loudly; it can never hand back a schedule for some other
// topology. The served schedule is re-verified locally before use.
func DaemonBacked(cl *sched.Client, alg string, msize int) Algorithm {
	return Algorithm{
		Name: "Daemon/" + alg,
		Make: func(g *topology.Graph) (alltoall.Func, error) {
			wantSyncs := sched.ClassifyMsize(msize).SyncModeFor() == "pairwise"
			resp, err := cl.Schedule(context.Background(), alg, msize, wantSyncs, g.Hash())
			if err != nil {
				return nil, fmt.Errorf("harness: daemon schedule: %w", err)
			}
			s := resp.ToSchedule()
			verr := schedule.Verify(g, s, false)
			if verr != nil && (alg == sched.AlgAuto || alg == sched.AlgRing) {
				// Auto/ring may share fast links within a phase; valid iff
				// capacity-respecting.
				verr = schedule.VerifyCapacity(g, s)
			}
			if verr != nil {
				return nil, fmt.Errorf("harness: daemon served an invalid schedule: %w", verr)
			}
			mode := alltoall.BarrierSync
			if resp.SyncMode == "pairwise" {
				mode = alltoall.PairwiseSync
			}
			sc, err := alltoall.NewScheduled(s, resp.ToPlan(), mode)
			if err != nil {
				return nil, fmt.Errorf("harness: compiling daemon schedule: %w", err)
			}
			return sc.Fn(), nil
		},
	}
}
