//go:build linux

package shm

import (
	"fmt"
	"os"
	"syscall"
)

// MapAvailable reports whether cross-process segment mapping is supported
// on this platform and the segment directory is writable. Rendezvous uses
// it to advertise shm capability; pairs fall back to TCP when either side
// lacks it.
func MapAvailable() bool {
	st, err := os.Stat(SegmentDir())
	return err == nil && st.IsDir()
}

// SegmentDir returns the directory for pair segment files: tmpfs when
// available (true shared memory, never touching a disk), the default temp
// directory otherwise.
func SegmentDir() string {
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		return "/dev/shm"
	}
	return os.TempDir()
}

// MapSegment maps size bytes of the file at path into memory, shared with
// every other process mapping the same file. With create set the file is
// created (truncating any stale leftover) and sized; otherwise it must
// already exist. The returned func unmaps.
func MapSegment(path string, size int, create bool) ([]byte, func() error, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o600)
	if err != nil {
		return nil, nil, fmt.Errorf("shm: open segment: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	if create {
		if err := f.Truncate(int64(size)); err != nil {
			os.Remove(path)
			return nil, nil, fmt.Errorf("shm: size segment: %w", err)
		}
	}
	seg, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		if create {
			os.Remove(path)
		}
		return nil, nil, fmt.Errorf("shm: mmap segment: %w", err)
	}
	return seg, func() error { return syscall.Munmap(seg) }, nil
}
