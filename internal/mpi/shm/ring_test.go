package shm

import (
	"bytes"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// TestRingStreamSPSC stresses the stream mode across two goroutines with a
// tiny ring, forcing many wraparounds, and checks the byte stream arrives
// intact and in order.
func TestRingStreamSPSC(t *testing.T) {
	const total = 1 << 20
	r := NewRing(257) // prime-ish, never divides the write sizes
	src := make([]byte, total)
	rng := rand.New(rand.NewSource(7))
	rng.Read(src)
	go func() {
		sent := 0
		for sent < total {
			chunk := min(1+rng.Intn(400), total-sent)
			for chunk > 0 {
				n := r.TryWrite(src[sent : sent+chunk])
				sent += n
				chunk -= n
				if n == 0 {
					runtime.Gosched()
				}
			}
		}
	}()
	got := make([]byte, 0, total)
	buf := make([]byte, 313)
	for len(got) < total {
		n := r.TryRead(buf)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		got = append(got, buf[:n]...)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("stream corrupted through ring")
	}
}

// TestRingRecords checks record-mode framing: tags and payloads round-trip,
// partial space rejects the whole record, and order is preserved.
func TestRingRecords(t *testing.T) {
	r := NewRing(64)
	if ok := r.WriteRecord(7, make([]byte, 64)); ok {
		t.Fatal("record larger than free space was accepted")
	}
	if !r.WriteRecord(1, []byte("alpha")) || !r.WriteRecord(2, []byte("")) || !r.WriteRecord(3, []byte("beta")) {
		t.Fatal("records rejected with free space available")
	}
	want := []struct {
		tag     int64
		payload string
	}{{1, "alpha"}, {2, ""}, {3, "beta"}}
	for _, w := range want {
		tag, size, ok := r.PeekRecord()
		if !ok || tag != w.tag || size != len(w.payload) {
			t.Fatalf("peek = (%d, %d, %v), want (%d, %d, true)", tag, size, ok, w.tag, len(w.payload))
		}
		buf := make([]byte, size)
		r.ReadRecord(buf)
		if string(buf) != w.payload {
			t.Fatalf("record %d payload %q, want %q", w.tag, buf, w.payload)
		}
	}
	if _, _, ok := r.PeekRecord(); ok {
		t.Fatal("peek succeeded on drained ring")
	}
}

// TestRingTypedRecords round-trips a strided layout through a record:
// gather on write, scatter on read, wrapping the ring boundary.
func TestRingTypedRecords(t *testing.T) {
	r := NewRing(100)
	// Fill and drain once so the next record wraps.
	if !r.WriteRecord(0, make([]byte, 60)) {
		t.Fatal("warm-up record rejected")
	}
	r.ReadRecord(make([]byte, 60))

	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	sdt := mpi.Vector(4, 8, 16) // blocks 0-7, 16-23, 32-39, 48-55
	if !r.writeRecordTyped(5, src, sdt) {
		t.Fatal("typed record rejected")
	}
	tag, size, ok := r.PeekRecord()
	if !ok || tag != 5 || size != 32 {
		t.Fatalf("peek = (%d, %d, %v), want (5, 32, true)", tag, size, ok)
	}
	dst := make([]byte, 64)
	ddt := mpi.Vector(8, 4, 8) // different geometry, same 32 bytes
	if placed := r.readRecordTyped(dst, ddt); placed != 32 {
		t.Fatalf("placed %d bytes, want 32", placed)
	}
	packedSrc := make([]byte, 32)
	sdt.Pack(packedSrc, src)
	packedDst := make([]byte, 32)
	ddt.Pack(packedDst, dst)
	if !bytes.Equal(packedSrc, packedDst) {
		t.Fatal("typed record did not preserve packed byte order")
	}
}

// TestRingReadRecordTypedTruncates checks a too-small receive layout
// consumes the whole record and reports the shorter placement.
func TestRingReadRecordTypedTruncates(t *testing.T) {
	r := NewRing(128)
	if !r.WriteRecord(1, []byte("0123456789")) {
		t.Fatal("record rejected")
	}
	dst := make([]byte, 4)
	if placed := r.readRecordTyped(dst, mpi.Contiguous(4)); placed != 4 {
		t.Fatalf("placed %d, want 4", placed)
	}
	if string(dst) != "0123" {
		t.Fatalf("dst = %q", dst)
	}
	if r.Buffered() != 0 {
		t.Fatalf("truncating read left %d bytes buffered", r.Buffered())
	}
}

// TestConnPipe moves a large random stream both ways through a Pipe pair
// concurrently.
func TestConnPipe(t *testing.T) {
	a, b := Pipe(512)
	defer a.Close()
	defer b.Close()
	const total = 1 << 19
	payload := make([]byte, total)
	rand.New(rand.NewSource(11)).Read(payload)
	check := func(w, r *Conn) chan error {
		errs := make(chan error, 1)
		go func() {
			if _, err := w.Write(payload); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}()
		go func() {
			got := make([]byte, total)
			if _, err := io.ReadFull(r, got); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- io.ErrUnexpectedEOF
				return
			}
			errs <- nil
		}()
		return errs
	}
	e1 := check(a, b)
	e2 := check(b, a)
	for i := 0; i < 4; i++ {
		select {
		case err := <-e1:
			if err != nil {
				t.Fatal(err)
			}
		case err := <-e2:
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestConnCloseSemantics checks TCP-like teardown: buffered bytes remain
// readable after the peer closes, then EOF; writes to a closed conn fail.
func TestConnCloseSemantics(t *testing.T) {
	a, b := Pipe(512)
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	got := make([]byte, 4)
	if _, err := io.ReadFull(b, got); err != nil || string(got) != "tail" {
		t.Fatalf("read after close = %q, %v", got, err)
	}
	if _, err := b.Read(got); err != io.EOF {
		t.Fatalf("read past close = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed pipe succeeded")
	}
}

// TestConnReadDeadline checks an expired deadline surfaces a timeout error
// and a cleared deadline restores blocking reads.
func TestConnReadDeadline(t *testing.T) {
	a, b := Pipe(512)
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	if nerr, ok := err.(interface{ Timeout() bool }); !ok || !nerr.Timeout() {
		t.Fatalf("read past deadline = %v, want timeout", err)
	}
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("k"))
	if _, err := io.ReadFull(b, buf); err != nil || buf[0] != 'k' {
		t.Fatalf("read after clearing deadline = %q, %v", buf, err)
	}
}
