package shm

import (
	"sync/atomic"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Typed record operations: gather a strided datatype straight into the ring
// and scatter a record straight out into one, so a strided send or receive
// through the shm transport costs exactly one memcpy per block on each side
// of the segment — never a pack/unpack staging buffer.

// writeRecordTyped publishes one record whose payload is the dt-described
// bytes of base, gathered block by block into the ring. False when free
// space is insufficient. Producer side only.
//
//aapc:role producer
func (r *Ring) writeRecordTyped(tag int64, base []byte, dt mpi.Datatype) bool {
	size := dt.Size()
	need := recordHeader + size
	if need > int(r.cap) {
		return false
	}
	tail := atomic.LoadUint64(r.tail)
	head := atomic.LoadUint64(r.head)
	if int(r.cap-(tail-head)) < need {
		return false
	}
	var hdr [recordHeader]byte
	putU32(hdr[0:4], uint32(size))
	putU64(hdr[4:12], uint64(tag))
	r.copyIn(tail, hdr[:])
	pos := tail + recordHeader
	for i := 0; i < dt.Count(); i++ {
		b := dt.Block(base, i)
		r.copyIn(pos, b)
		pos += uint64(len(b))
	}
	atomic.StoreUint64(r.tail, tail+uint64(need))
	return true
}

// readRecordTyped consumes the next record, scattering its payload into the
// dt-described blocks of base, and returns the bytes placed: the smaller of
// the record's payload and dt.Size(). The whole record is consumed even
// when the layout is too small to hold it (the caller reports truncation).
// Consumer side only; the caller has established via PeekRecord that a
// record is present.
//
//aapc:role consumer
func (r *Ring) readRecordTyped(base []byte, dt mpi.Datatype) int {
	head := atomic.LoadUint64(r.head)
	var hdr [recordHeader]byte
	r.copyOut(head, hdr[:])
	size := int(getU32(hdr[0:4]))
	pos := head + recordHeader
	remaining := size
	placed := 0
	for i := 0; i < dt.Count() && remaining > 0; i++ {
		b := dt.Block(base, i)
		if len(b) > remaining {
			b = b[:remaining]
		}
		r.copyOut(pos, b)
		pos += uint64(len(b))
		remaining -= len(b)
		placed += len(b)
	}
	atomic.StoreUint64(r.head, head+recordHeader+uint64(size))
	return placed
}
