package shm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// World is a set of co-located communicator endpoints exchanging bytes
// through per-pair shared-memory rings. Two data paths exist:
//
//   - single-copy handoff: when a matching receive is already posted, the
//     send scatters straight from the sender's (possibly strided) layout
//     into the receiver's layout — one memcpy, no staging anywhere;
//   - ring transit: with no receive posted, the payload is gathered into
//     the directed pair's ring segment and scattered out at match time —
//     the exact path co-located aapcnode processes use across /dev/shm.
//
// A scheduled all-to-all pre-posts its receives, so its steady state rides
// the single-copy path; the ring absorbs sender/receiver skew.
type World struct {
	n     int
	start time.Time
	cfg   Config

	pairs []pair // directed, indexed src*n+dst

	barMu   sync.Mutex
	barrier *barrierGen

	// Counters (see Stats).
	directPlacements atomic.Uint64
	ringTransits     atomic.Uint64
	overflowStages   atomic.Uint64
	bytesDirect      atomic.Uint64
	bytesRing        atomic.Uint64

	closeOnce sync.Once

	// opsMu guards opFree, the freelist of completed operations, recycled
	// exactly as in the mem transport: only a consumed Wait returns an op.
	opsMu  sync.Mutex
	opFree []*op
}

// Config carries the world options.
type Config struct {
	// RingBytes is the data capacity of each directed pair's ring segment.
	RingBytes int
	// Recorder, when non-nil, receives the world's transport counters
	// (aapc_shm_*) at Close.
	Recorder *obsv.Recorder
}

// Option customizes a world.
type Option func(*Config)

// defaultRingBytes absorbs a few large blocks of sender/receiver skew per
// pair without growing the overflow path.
const defaultRingBytes = 1 << 18

// RingBytes sets the per-pair ring segment data capacity.
func RingBytes(n int) Option {
	return func(c *Config) { c.RingBytes = n }
}

// WithRecorder mirrors the world's transport counters into r when the world
// closes.
func WithRecorder(r *obsv.Recorder) Option {
	return func(c *Config) { c.Recorder = r }
}

// Stats is a snapshot of the world's data-path counters.
type Stats struct {
	// DirectPlacements counts sends placed straight into a posted receive:
	// the single-copy handoff path.
	DirectPlacements uint64
	// RingTransits counts messages staged through a pair's ring segment.
	RingTransits uint64
	// OverflowStages counts messages staged on the heap because the pair's
	// ring was full (or the record exceeded its capacity).
	OverflowStages uint64
	// BytesDirect and BytesRing split the payload bytes by path; overflow
	// stages count toward BytesRing (they take the same two-copy route).
	BytesDirect uint64
	BytesRing   uint64
}

// Stats returns a snapshot of the world's counters.
func (w *World) Stats() Stats {
	return Stats{
		DirectPlacements: w.directPlacements.Load(),
		RingTransits:     w.ringTransits.Load(),
		OverflowStages:   w.overflowStages.Load(),
		BytesDirect:      w.bytesDirect.Load(),
		BytesRing:        w.bytesRing.Load(),
	}
}

// Close flushes the world's counters into the configured Recorder.
// Idempotent; the comms remain usable (shm has no connections to tear
// down), but counters recorded after Close are not mirrored.
func (w *World) Close() {
	w.closeOnce.Do(func() {
		if r := w.cfg.Recorder; r != nil {
			s := w.Stats()
			c := r.Counters()
			c.Add("aapc_shm_direct_placements_total", s.DirectPlacements)
			c.Add("aapc_shm_ring_transits_total", s.RingTransits)
			c.Add("aapc_shm_overflow_stages_total", s.OverflowStages)
			c.Add("aapc_shm_direct_bytes_total", s.BytesDirect)
			c.Add("aapc_shm_ring_bytes_total", s.BytesRing)
		}
	})
}

// barrierGen is one generation of the barrier (same scheme as mem).
type barrierGen struct {
	waiting int
	release chan struct{}
}

// stagedFrame is one message popped out of the ring (or staged past a full
// ring) awaiting its receive. The send op completes at match time, so the
// observable completion semantics are identical on every path.
type stagedFrame struct {
	buf  []byte
	send *op
}

// pair is the matching state of one directed (src, dst) link. The ring is
// allocated on first staging need; a world whose receives always win the
// race never pays for segments.
type pair struct {
	mu      sync.Mutex
	ring    *Ring
	ringOps []*op         // send ops staged in the ring, in record order
	recvs   map[int][]*op // posted receives by tag, FIFO
	arrived map[int][]stagedFrame
}

// op is one pending operation; it doubles as the request (see mem.op, whose
// freelist discipline this copies: Wait recycles, WaitTimeout abandons).
type op struct {
	w    *World
	buf  []byte
	dt   mpi.Datatype // zero = untyped
	done chan error
}

// size returns the operation's payload capacity in bytes.
func (o *op) size() int {
	if o.dt.IsZero() {
		return len(o.buf)
	}
	return o.dt.Size()
}

// layout returns the op's datatype, substituting the contiguous identity
// for untyped operations.
func (o *op) layout() mpi.Datatype {
	if o.dt.IsZero() {
		return mpi.Contiguous(len(o.buf))
	}
	return o.dt
}

func (o *op) Wait() error {
	err := <-o.done
	o.w.putOp(o)
	return err
}

// WaitTimeout bounds the wait (mpi.TimedRequest). A timed-out op is
// abandoned, never recycled: a late match may still write its buffer.
func (o *op) WaitTimeout(d time.Duration) error {
	if d <= 0 {
		return o.Wait()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-o.done:
		o.w.putOp(o)
		return err
	case <-t.C:
		return &mpi.TimeoutError{Op: "wait", After: d}
	}
}

const opFreeCap = 1024

func (w *World) getOp(buf []byte, dt mpi.Datatype) *op {
	w.opsMu.Lock()
	if k := len(w.opFree); k > 0 {
		o := w.opFree[k-1]
		w.opFree[k-1] = nil
		w.opFree = w.opFree[:k-1]
		w.opsMu.Unlock()
		o.buf = buf
		o.dt = dt
		return o
	}
	w.opsMu.Unlock()
	return &op{w: w, buf: buf, dt: dt, done: make(chan error, 1)}
}

func (w *World) putOp(o *op) {
	o.buf = nil
	o.dt = mpi.Datatype{}
	w.opsMu.Lock()
	if len(w.opFree) < opFreeCap {
		w.opFree = append(w.opFree, o)
	}
	w.opsMu.Unlock()
}

// NewWorld creates a world of n co-located ranks and returns one
// communicator per rank.
func NewWorld(n int, opts ...Option) []mpi.Comm {
	comms, _ := NewWorldComms(n, opts...)
	return comms
}

// NewWorldComms returns the comms and the world itself, for callers that
// need the stats or Close.
func NewWorldComms(n int, opts ...Option) ([]mpi.Comm, *World) {
	if n < 1 {
		panic(fmt.Sprintf("shm: world size %d", n))
	}
	cfg := Config{RingBytes: defaultRingBytes}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.RingBytes < MinSegment {
		cfg.RingBytes = MinSegment
	}
	w := &World{
		n:       n,
		start:   time.Now(),
		cfg:     cfg,
		pairs:   make([]pair, n*n),
		barrier: &barrierGen{release: make(chan struct{})},
	}
	comms := make([]mpi.Comm, n)
	for i := range comms {
		comms[i] = &comm{w: w, rank: i}
	}
	return comms, w
}

// Run starts fn once per rank on its own goroutine, waits for all of them,
// closes the world and returns the first non-nil error.
func Run(n int, fn func(c mpi.Comm) error, opts ...Option) error {
	comms, w := NewWorldComms(n, opts...)
	defer w.Close()
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pair returns the directed pair state for src->dst.
func (w *World) pair(src, dst int) *pair { return &w.pairs[src*w.n+dst] }

type comm struct {
	w    *World
	rank int
}

func (c *comm) Rank() int    { return c.rank }
func (c *comm) Size() int    { return c.w.n }
func (c *comm) Now() float64 { return time.Since(c.w.start).Seconds() }

// errRequest is an already-failed request.
type errRequest struct{ err error }

func (r errRequest) Wait() error                     { return r.err }
func (r errRequest) WaitTimeout(time.Duration) error { return r.err }

// truncErr builds the truncation error shared by every path; the message
// shape matches the mem transport's so callers can treat them uniformly.
func truncErr(src, dst, tag, recvCap, sentSize int) error {
	return fmt.Errorf("shm: send %d->%d tag %d truncated: receiver buffer %d < %d",
		src, dst, tag, recvCap, sentSize)
}

// complete signals both ends of a match: err on truncation, nil otherwise.
func complete(recv, send *op, err error) {
	recv.done <- err
	send.done <- err
}

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	return c.isend(buf, mpi.Datatype{}, dst, tag)
}

// IsendTyped starts a typed send (mpi.TypedComm): the dt-described blocks
// of base are gathered straight into the receiver's layout or the pair
// ring, never through a pack buffer.
func (c *comm) IsendTyped(base []byte, dt mpi.Datatype, dst, tag int) mpi.Request {
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	return c.isend(base, dt, dst, tag)
}

// IrecvTyped posts a typed receive (mpi.TypedComm).
func (c *comm) IrecvTyped(base []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	return c.irecv(base, dt, src, tag)
}

func (c *comm) isend(buf []byte, dt mpi.Datatype, dst, tag int) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	w := c.w
	me := w.getOp(buf, dt)
	p := w.pair(c.rank, dst)
	p.mu.Lock()
	// Single-copy handoff: a receive is already posted, so the payload
	// moves straight between the two user layouts. Matching order is safe
	// because a receive is only ever posted after the pair's ring and
	// arrived queues were drained of its tag (see irecv).
	if q := p.recvs[tag]; len(q) > 0 {
		peer := q[0]
		q[0] = nil
		p.recvs[tag] = q[1:]
		n := mpi.CopyTyped(peer.buf, peer.layout(), me.buf, me.layout())
		sentSize, recvCap := me.size(), peer.size()
		p.mu.Unlock()
		w.directPlacements.Add(1)
		w.bytesDirect.Add(uint64(n))
		if n < sentSize {
			complete(peer, me, truncErr(c.rank, dst, tag, recvCap, sentSize))
		} else {
			complete(peer, me, nil)
		}
		return me
	}
	// No receive posted: stage through the pair's ring segment. The send
	// op completes at match time (not at staging), keeping completion and
	// truncation semantics identical on every path.
	if p.ring == nil {
		p.ring = NewRing(w.cfg.RingBytes)
	}
	if p.ring.writeRecordTyped(int64(tag), me.buf, me.layout()) {
		p.ringOps = append(p.ringOps, me)
		w.ringTransits.Add(1)
		w.bytesRing.Add(uint64(me.size()))
		p.mu.Unlock()
		return me
	}
	// Ring full (receiver far behind) or record larger than the segment:
	// drain the ring into the arrived queues to free space, then retry,
	// falling back to a heap stage so progress never depends on ring size.
	p.drainRingLocked()
	if p.ring.writeRecordTyped(int64(tag), me.buf, me.layout()) {
		p.ringOps = append(p.ringOps, me)
		w.ringTransits.Add(1)
		w.bytesRing.Add(uint64(me.size()))
		p.mu.Unlock()
		return me
	}
	staged := make([]byte, me.size())
	me.layout().Pack(staged, me.buf)
	if p.arrived == nil {
		p.arrived = make(map[int][]stagedFrame)
	}
	p.arrived[tag] = append(p.arrived[tag], stagedFrame{buf: staged, send: me})
	w.overflowStages.Add(1)
	w.bytesRing.Add(uint64(len(staged)))
	p.mu.Unlock()
	return me
}

// drainRingLocked pops every complete record out of the pair's ring into
// the arrived queues, preserving order. Caller holds p.mu.
func (p *pair) drainRingLocked() {
	for {
		tag, size, ok := p.ring.PeekRecord()
		if !ok {
			return
		}
		buf := make([]byte, size)
		p.ring.ReadRecord(buf)
		send := p.ringOps[0]
		p.ringOps[0] = nil
		p.ringOps = p.ringOps[1:]
		if p.arrived == nil {
			p.arrived = make(map[int][]stagedFrame)
		}
		p.arrived[int(tag)] = append(p.arrived[int(tag)], stagedFrame{buf: buf, send: send})
	}
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	return c.irecv(buf, mpi.Datatype{}, src, tag)
}

func (c *comm) irecv(buf []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	w := c.w
	me := w.getOp(buf, dt)
	p := w.pair(src, c.rank)
	p.mu.Lock()
	// Heap-staged frames first: they precede anything still in the ring.
	if af := p.arrived[tag]; len(af) > 0 {
		fr := af[0]
		af[0] = stagedFrame{}
		p.arrived[tag] = af[1:]
		n := me.layout().Unpack(me.buf, fr.buf)
		recvCap := me.size()
		p.mu.Unlock()
		if n < len(fr.buf) {
			complete(me, fr.send, truncErr(src, c.rank, tag, recvCap, len(fr.buf)))
		} else {
			complete(me, fr.send, nil)
		}
		return me
	}
	// Drain the ring looking for this tag; records for other tags move to
	// the arrived queues in order. On a tag hit the payload scatters
	// straight from the shared segment into the receive layout.
	for p.ring != nil {
		rtag, size, ok := p.ring.PeekRecord()
		if !ok {
			break
		}
		send := p.ringOps[0]
		p.ringOps[0] = nil
		p.ringOps = p.ringOps[1:]
		if int(rtag) == tag {
			placed := p.ring.readRecordTyped(me.buf, me.layout())
			recvCap := me.size()
			p.mu.Unlock()
			if placed < size {
				complete(me, send, truncErr(src, c.rank, tag, recvCap, size))
			} else {
				complete(me, send, nil)
			}
			return me
		}
		buf := make([]byte, size)
		p.ring.ReadRecord(buf)
		if p.arrived == nil {
			p.arrived = make(map[int][]stagedFrame)
		}
		p.arrived[int(rtag)] = append(p.arrived[int(rtag)], stagedFrame{buf: buf, send: send})
	}
	// Nothing pending for this tag anywhere: post the receive. The next
	// send with this tag takes the single-copy path.
	if p.recvs == nil {
		p.recvs = make(map[int][]*op)
	}
	p.recvs[tag] = append(p.recvs[tag], me)
	p.mu.Unlock()
	return me
}

func (c *comm) Barrier() error {
	w := c.w
	w.barMu.Lock()
	gen := w.barrier
	gen.waiting++
	if gen.waiting == w.n {
		close(gen.release)
		w.barrier = &barrierGen{release: make(chan struct{})}
		w.barMu.Unlock()
		return nil
	}
	w.barMu.Unlock()
	<-gen.release
	return nil
}
