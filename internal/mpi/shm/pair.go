package shm

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
	"unsafe"
)

// Cross-process pair segments: one mapped file carries a duplex link — two
// rings, one per direction — between two co-located ranks. The lower rank
// creates and initializes the file; the higher rank attaches once the
// creator has published the magic word (stored last, so an attacher never
// observes a half-initialized segment).

// pairMagic marks a fully initialized pair segment.
const pairMagic = 0xAA9C5E6D00C0FFEE

// pairHeader is the segment preamble holding the magic word.
const pairHeader = 8

// pairSegmentSize returns the file size for two rings of ringBytes data
// capacity each, keeping every ring base 8-aligned.
func pairSegmentSize(ringBytes int) int {
	ringSeg := headerBytes + (ringBytes+7)&^7
	return pairHeader + 2*ringSeg
}

// attachPair slices a mapped segment into its two rings.
func attachPair(seg []byte, ringBytes int) (loToHi, hiToLo *Ring, err error) {
	ringSeg := headerBytes + (ringBytes+7)&^7
	if len(seg) != pairSegmentSize(ringBytes) {
		return nil, nil, fmt.Errorf("shm: pair segment is %d bytes, want %d", len(seg), pairSegmentSize(ringBytes))
	}
	loToHi, err = Attach(seg[pairHeader : pairHeader+ringSeg])
	if err != nil {
		return nil, nil, err
	}
	hiToLo, err = Attach(seg[pairHeader+ringSeg:])
	if err != nil {
		return nil, nil, err
	}
	return loToHi, hiToLo, nil
}

// CreatePairConn creates the pair segment file at path (truncating any
// stale leftover) and returns the creator's — the lower rank's — side of
// the link. The file is unlinked when the conn closes.
func CreatePairConn(path string, ringBytes int, local, remote string) (*Conn, error) {
	if ringBytes < MinSegment {
		ringBytes = MinSegment
	}
	size := pairSegmentSize(ringBytes)
	seg, unmap, err := MapSegment(path, size, true)
	if err != nil {
		return nil, err
	}
	cleanup := func() error {
		unmapErr := unmap()
		if rmErr := os.Remove(path); unmapErr == nil {
			unmapErr = rmErr
		}
		return unmapErr
	}
	loToHi, hiToLo, err := attachPair(seg, ringBytes)
	if err != nil {
		cleanup()
		return nil, err
	}
	// Publish: attachers spin until they observe the magic word, which is
	// stored only after both rings are laid out over zeroed pages.
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&seg[0])), pairMagic)
	c := NewConn(hiToLo, loToHi, local, remote)
	c.cleanup = cleanup
	return c, nil
}

// OpenPairConn attaches to a pair segment created by the peer and returns
// the attacher's — the higher rank's — side of the link, retrying until the
// creator has published the segment or the timeout elapses.
func OpenPairConn(path string, ringBytes int, local, remote string, timeout time.Duration) (*Conn, error) {
	if ringBytes < MinSegment {
		ringBytes = MinSegment
	}
	size := pairSegmentSize(ringBytes)
	deadline := time.Now().Add(timeout)
	for {
		seg, unmap, err := tryOpenPair(path, size)
		if err == nil {
			loToHi, hiToLo, err := attachPair(seg, ringBytes)
			if err != nil {
				unmap()
				return nil, err
			}
			c := NewConn(loToHi, hiToLo, local, remote)
			c.cleanup = unmap
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shm: attaching %s: %w", path, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// tryOpenPair maps the segment if it exists at full size with the magic
// word published.
func tryOpenPair(path string, size int) ([]byte, func() error, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if st.Size() != int64(size) {
		return nil, nil, fmt.Errorf("shm: segment %s is %d bytes, want %d", path, st.Size(), size)
	}
	seg, unmap, err := MapSegment(path, size, false)
	if err != nil {
		return nil, nil, err
	}
	if atomic.LoadUint64((*uint64)(unsafe.Pointer(&seg[0]))) != pairMagic {
		unmap()
		return nil, nil, fmt.Errorf("shm: segment %s not yet published", path)
	}
	return seg, unmap, nil
}
