package shm

import (
	"io"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

// Conn adapts a duplex pair of rings to net.Conn, so transports written
// against sockets (the distributed TCP mesh) can run co-located links over
// shared memory without touching the kernel: Read and Write move bytes
// through the rings' stream mode with a spin-then-sleep backoff instead of
// blocking syscalls.
type Conn struct {
	rx, tx        *Ring
	local, remote Addr
	closed        atomic.Bool
	// active counts in-flight Reads and Writes; Close waits for it to
	// drain before releasing the segment, so a concurrent poller never
	// touches unmapped memory.
	active        atomic.Int64
	readDeadline  atomic.Int64 // unix nanos; 0 = none
	writeDeadline atomic.Int64
	// cleanup, when non-nil, releases the underlying segment (munmap,
	// unlink) on Close.
	cleanup func() error
}

// Addr is the shm endpoint address.
type Addr string

// Network names the shm pseudo-network.
func (Addr) Network() string { return "shm" }

func (a Addr) String() string { return string(a) }

// NewConn builds a Conn reading from rx and writing to tx.
func NewConn(rx, tx *Ring, local, remote string) *Conn {
	return &Conn{rx: rx, tx: tx, local: Addr(local), remote: Addr(remote)}
}

// backoff is the polling strategy for an empty/full ring: stay hot through
// the scheduler first (another goroutine on this box is about to make
// progress), then back off to short sleeps so a stalled peer does not burn
// a core.
type backoff struct {
	spins int
}

const (
	backoffSpins    = 64
	backoffMinSleep = time.Microsecond
	backoffMaxSleep = 100 * time.Microsecond
)

func (b *backoff) pause() {
	b.spins++
	if b.spins <= backoffSpins {
		runtime.Gosched()
		return
	}
	d := backoffMinSleep << uint(min(b.spins-backoffSpins, 16))
	if d > backoffMaxSleep {
		d = backoffMaxSleep
	}
	time.Sleep(d)
}

// deadlineExpired reports whether the stored deadline has passed.
func deadlineExpired(dl *atomic.Int64) bool {
	v := dl.Load()
	return v != 0 && time.Now().UnixNano() >= v
}

// enter registers an in-flight operation; false once the conn is locally
// closed (the segment may be unmapped at any point after that).
func (c *Conn) enter() bool {
	c.active.Add(1)
	if c.closed.Load() {
		c.active.Add(-1)
		return false
	}
	return true
}

func (c *Conn) exit() { c.active.Add(-1) }

// Read pops available bytes, blocking (polling) until at least one byte,
// EOF (peer closed and ring drained, or local close) or the read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if !c.enter() {
		return 0, io.EOF
	}
	defer c.exit()
	var bo backoff
	for {
		// Drain before honoring the peer's close: bytes written before it
		// closed must still be readable, matching TCP half-close reads.
		if n := c.rx.TryRead(p); n > 0 {
			return n, nil
		}
		if c.closed.Load() || c.rx.Closed() {
			return 0, io.EOF
		}
		if deadlineExpired(&c.readDeadline) {
			return 0, os.ErrDeadlineExceeded
		}
		bo.pause()
	}
}

// Write pushes all of p, blocking (polling) while the ring is full.
func (c *Conn) Write(p []byte) (int, error) {
	if !c.enter() {
		return 0, io.ErrClosedPipe
	}
	defer c.exit()
	written := 0
	var bo backoff
	for written < len(p) {
		if c.closed.Load() || c.tx.Closed() {
			return written, io.ErrClosedPipe
		}
		if deadlineExpired(&c.writeDeadline) {
			return written, os.ErrDeadlineExceeded
		}
		if n := c.tx.TryWrite(p[written:]); n > 0 {
			written += n
			bo.spins = 0
			continue
		}
		bo.pause()
	}
	return written, nil
}

// Close marks both rings closed (waking the peer's polling loops), waits
// for in-flight Reads and Writes to drain — they observe the close within
// one backoff step — and releases the underlying segment. Idempotent.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.rx.Close()
	c.tx.Close()
	for c.active.Load() != 0 {
		runtime.Gosched()
	}
	if c.cleanup != nil {
		return c.cleanup()
	}
	return nil
}

// LocalAddr returns this side's shm address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the peer's shm address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.SetWriteDeadline(t)
}

// SetReadDeadline bounds future Reads; the zero time clears it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	if t.IsZero() {
		c.readDeadline.Store(0)
	} else {
		c.readDeadline.Store(t.UnixNano())
	}
	return nil
}

// SetWriteDeadline bounds future Writes; the zero time clears it.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if t.IsZero() {
		c.writeDeadline.Store(0)
	} else {
		c.writeDeadline.Store(t.UnixNano())
	}
	return nil
}

// Pipe returns an in-process connected pair, the shm analogue of net.Pipe
// with real buffering: bytes written to one side are readable on the other
// through heap-backed rings. Used by tests and by co-located ranks inside
// one process.
func Pipe(ringBytes int) (*Conn, *Conn) {
	if ringBytes < MinSegment {
		ringBytes = MinSegment
	}
	a := NewRing(ringBytes)
	b := NewRing(ringBytes)
	return NewConn(a, b, "pipe:0", "pipe:1"), NewConn(b, a, "pipe:1", "pipe:0")
}
