//go:build !linux

package shm

import (
	"fmt"
	"os"
)

// MapAvailable reports whether cross-process segment mapping is supported:
// never, on platforms without the mmap implementation. Co-located pairs
// fall back to TCP.
func MapAvailable() bool { return false }

// SegmentDir returns the directory pair segment files would live in.
func SegmentDir() string { return os.TempDir() }

// MapSegment is unavailable on this platform.
func MapSegment(path string, size int, create bool) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("shm: cross-process segments are not supported on this platform")
}
