package shm

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// fill gives message (src, dst) a distinctive payload.
func fill(buf []byte, src, dst int) {
	for i := range buf {
		buf[i] = byte(src*37 + dst*11 + i)
	}
}

// TestWorldAlltoall runs a hand-rolled all-to-all over the world and checks
// every payload lands intact: receives posted first, so the single-copy
// path carries the steady state.
func TestWorldAlltoall(t *testing.T) {
	const n, size = 5, 1536
	comms, w := NewWorldComms(n)
	err := runAll(comms, func(c mpi.Comm) error {
		me := c.Rank()
		recvBufs := make([][]byte, n)
		var reqs []mpi.Request
		for src := 0; src < n; src++ {
			recvBufs[src] = make([]byte, size)
			reqs = append(reqs, c.Irecv(recvBufs[src], src, 3))
		}
		if err := c.Barrier(); err != nil {
			//aapc:allow waitcheck the test aborts; posted receives die with the world
			return err
		}
		for dst := 0; dst < n; dst++ {
			buf := make([]byte, size)
			fill(buf, me, dst)
			reqs = append(reqs, c.Isend(buf, dst, 3))
		}
		if err := mpi.WaitAll(reqs); err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			want := make([]byte, size)
			fill(want, src, me)
			if !bytes.Equal(recvBufs[src], want) {
				return fmt.Errorf("rank %d: payload from %d corrupted", me, src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.DirectPlacements == 0 {
		t.Fatalf("no direct placements with receives pre-posted: %+v", s)
	}
}

// TestWorldRingPath forces the ring transit path — sends before any receive
// is posted — mixing records that fit the deliberately tiny ring with
// records that exceed its whole capacity (heap overflow), and checks
// payloads and FIFO order survive across both staging routes.
func TestWorldRingPath(t *testing.T) {
	comms, w := NewWorldComms(2, RingBytes(256))
	snd, rcv := comms[0], comms[1]
	sizes := []int{96, 96, 300, 96, 300, 96} // 300+12 > 256: heap overflow
	var sends []mpi.Request
	for k, size := range sizes {
		buf := make([]byte, size)
		fill(buf, k, 0)
		sends = append(sends, snd.Isend(buf, 1, 0))
	}
	for k, size := range sizes {
		got := make([]byte, size)
		if err := mpi.Recv(rcv, got, 0, 0); err != nil {
			t.Fatal(err)
		}
		want := make([]byte, size)
		fill(want, k, 0)
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d out of order or corrupted through ring", k)
		}
	}
	if err := mpi.WaitAll(sends); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.RingTransits == 0 || s.OverflowStages == 0 {
		t.Fatalf("expected both ring transits and overflow stages: %+v", s)
	}
	if s.DirectPlacements != 0 {
		t.Fatalf("unexpected direct placements: %+v", s)
	}
}

// TestWorldTypedStridedRoundTrip sends a strided view and receives into a
// differently-strided view; the packed byte streams must be identical. Both
// the direct path (receive first) and the ring path (send first) are
// checked.
func TestWorldTypedStridedRoundTrip(t *testing.T) {
	for _, recvFirst := range []bool{true, false} {
		name := "ring-first"
		if recvFirst {
			name = "recv-first"
		}
		t.Run(name, func(t *testing.T) {
			comms, _ := NewWorldComms(2)
			src := make([]byte, 256)
			for i := range src {
				src[i] = byte(i * 3)
			}
			sdt := mpi.Vector(8, 16, 32)
			dst := make([]byte, 512)
			ddt := mpi.Vector(16, 8, 32)

			var rr, sr mpi.Request
			if recvFirst {
				rr = mpi.IrecvTyped(comms[1], dst, ddt, 0, 9)
				sr = mpi.IsendTyped(comms[0], src, sdt, 1, 9)
			} else {
				sr = mpi.IsendTyped(comms[0], src, sdt, 1, 9)
				rr = mpi.IrecvTyped(comms[1], dst, ddt, 0, 9)
			}
			if err := sr.Wait(); err != nil {
				t.Fatal(err)
			}
			if err := rr.Wait(); err != nil {
				t.Fatal(err)
			}
			wantPacked := make([]byte, sdt.Size())
			sdt.Pack(wantPacked, src)
			gotPacked := make([]byte, ddt.Size())
			ddt.Pack(gotPacked, dst)
			if !bytes.Equal(wantPacked, gotPacked) {
				t.Fatal("strided payload corrupted")
			}
		})
	}
}

// TestWorldTruncation checks both ends of a truncated transfer fail with
// the same diagnostic, on the direct and the ring path alike (matching the
// mem transport's semantics).
func TestWorldTruncation(t *testing.T) {
	for _, recvFirst := range []bool{true, false} {
		comms, _ := NewWorldComms(2)
		var rr, sr mpi.Request
		if recvFirst {
			rr = comms[1].Irecv(make([]byte, 4), 0, 1)
			sr = comms[0].Isend(make([]byte, 16), 1, 1)
		} else {
			sr = comms[0].Isend(make([]byte, 16), 1, 1)
			rr = comms[1].Irecv(make([]byte, 4), 0, 1)
		}
		serr, rerr := sr.Wait(), rr.Wait()
		for _, err := range []error{serr, rerr} {
			if err == nil || !strings.Contains(err.Error(), "truncated") {
				t.Fatalf("recvFirst=%v: truncation error = %v / %v", recvFirst, serr, rerr)
			}
		}
	}
}

// TestWorldRecorderCounters checks Close mirrors the data-path counters.
func TestWorldRecorderCounters(t *testing.T) {
	rec := obsv.NewRecorder(0)
	comms, w := NewWorldComms(2, WithRecorder(rec))
	rr := comms[1].Irecv(make([]byte, 8), 0, 0)
	if err := mpi.Send(comms[0], make([]byte, 8), 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := rr.Wait(); err != nil {
		t.Fatal(err)
	}
	sr := comms[0].Isend(make([]byte, 8), 1, 0) // stages via ring, completes at match
	if err := mpi.Recv(comms[1], make([]byte, 8), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	counters := rec.Counters().Snapshot()
	if counters["aapc_shm_direct_placements_total"] != 1 {
		t.Fatalf("direct placements counter = %d, want 1", counters["aapc_shm_direct_placements_total"])
	}
	if counters["aapc_shm_ring_transits_total"] != 1 {
		t.Fatalf("ring transits counter = %d, want 1", counters["aapc_shm_ring_transits_total"])
	}
}

// TestWorldSelfSend checks rank-to-self transfers work on both paths.
func TestWorldSelfSend(t *testing.T) {
	comms := NewWorld(1)
	c := comms[0]
	buf := make([]byte, 32)
	fill(buf, 0, 0)
	sr := c.Isend(buf, 0, 5) // no receive posted: rides the ring
	got := make([]byte, 32)
	if err := mpi.Recv(c, got, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := sr.Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("self-send corrupted")
	}
}

// TestPairConnCrossMapped runs both ends of a mapped pair segment — the
// cross-process link, exercised here from two goroutines mapping the same
// file — and checks a bidirectional exchange.
func TestPairConnCrossMapped(t *testing.T) {
	if !MapAvailable() {
		t.Skip("cross-process segments unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "pairseg")
	const ringBytes = 4096
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() { // lower rank: creator
		defer wg.Done()
		conn, err := CreatePairConn(path, ringBytes, "shm:0", "shm:1")
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("from-lo")); err != nil {
			errs <- err
			return
		}
		got := make([]byte, 7)
		if err := readFull(conn, got); err != nil {
			errs <- err
			return
		}
		if string(got) != "from-hi" {
			errs <- fmt.Errorf("creator read %q", got)
			return
		}
		errs <- nil
	}()
	go func() { // higher rank: attacher
		defer wg.Done()
		conn, err := OpenPairConn(path, ringBytes, "shm:1", "shm:0", 5*time.Second)
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		got := make([]byte, 7)
		if err := readFull(conn, got); err != nil {
			errs <- err
			return
		}
		if string(got) != "from-lo" {
			errs <- fmt.Errorf("attacher read %q", got)
			return
		}
		if _, err := conn.Write([]byte("from-hi")); err != nil {
			errs <- err
			return
		}
		errs <- nil
	}()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// The creator's Close unlinked the segment file.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("segment file not removed: %v", err)
	}
}

// readFull fills buf from the conn.
func readFull(c *Conn, buf []byte) error {
	got := 0
	for got < len(buf) {
		n, err := c.Read(buf[got:])
		if err != nil {
			return err
		}
		got += n
	}
	return nil
}

// runAll runs fn once per comm and returns the first error.
func runAll(comms []mpi.Comm, fn func(c mpi.Comm) error) error {
	errs := make(chan error, len(comms))
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for range comms {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
