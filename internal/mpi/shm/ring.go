// Package shm is the shared-memory transport for co-located ranks: lock-free
// single-producer single-consumer byte rings laid out over a flat memory
// segment, so two ranks on one host exchange AAPC blocks through memcpy and
// two atomic cursor updates — no socket, no syscall, no kernel transition.
//
// The same ring code runs over two kinds of segment:
//
//   - in-process heap segments (NewSegment), used by the shm World for
//     co-located ranks inside one process and by the tests/benchmarks;
//   - cross-process /dev/shm mappings (MapSegment, linux), used by the
//     distributed harness to link co-located aapcnode processes — the
//     rendezvous host map decides which pairs qualify.
//
// Synchronization is pure atomics on the segment's header words, so a ring
// works identically whether its two ends live in one address space or in two
// processes mapping the same file.
package shm

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Segment header layout (all uint64, 8-byte aligned):
//
//	[0:8]   tail — bytes produced (written by the producer only)
//	[8:16]  head — bytes consumed (written by the consumer only)
//	[16:24] closed — non-zero once either side closed the ring
//
// Cursors grow monotonically; data lives at segment[headerBytes:] and is
// addressed modulo the data capacity. Producer and consumer each own one
// cursor, so the only cross-party communication is one release-store and
// one acquire-load per operation.
const headerBytes = 24

// MinSegment is the smallest usable segment: header plus room for one
// maximally small record.
const MinSegment = headerBytes + recordHeader + 1

// recordHeader is the per-record framing in record mode: u32 payload size
// plus i64 tag.
const recordHeader = 12

// Ring is one directed SPSC byte ring over a segment. At most one goroutine
// (or process) may produce and one consume; the two may differ freely.
//
// The aapc:spsc markers below put the ring under the spscsafe analyzer:
// every cursor access must go through sync/atomic, and only methods carrying
// the matching //aapc:role may store their cursor.
//
//aapc:spsc
type Ring struct {
	tail   *uint64 //aapc:cursor producer
	head   *uint64 //aapc:cursor consumer
	closed *uint64
	data   []byte
	cap    uint64
}

// NewSegment allocates an in-process segment of the given total size,
// 8-byte aligned (backed by a uint64 slice, which the Go allocator aligns).
func NewSegment(size int) []byte {
	if size < MinSegment {
		size = MinSegment
	}
	words := make([]uint64, (size+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
}

// Attach interprets seg as a ring segment. Both ends of a pair attach to
// the same memory; the roles (producer vs consumer) are fixed by the
// caller's protocol, not by Attach.
func Attach(seg []byte) (*Ring, error) {
	if len(seg) < MinSegment {
		return nil, fmt.Errorf("shm: segment %d bytes, need at least %d", len(seg), MinSegment)
	}
	if uintptr(unsafe.Pointer(&seg[0]))%8 != 0 {
		return nil, fmt.Errorf("shm: segment is not 8-byte aligned")
	}
	return &Ring{
		tail:   (*uint64)(unsafe.Pointer(&seg[0])),
		head:   (*uint64)(unsafe.Pointer(&seg[8])),
		closed: (*uint64)(unsafe.Pointer(&seg[16])),
		data:   seg[headerBytes:],
		cap:    uint64(len(seg) - headerBytes),
	}, nil
}

// NewRing allocates an in-process ring whose data area holds at least
// dataCap bytes.
func NewRing(dataCap int) *Ring {
	r, err := Attach(NewSegment(headerBytes + dataCap))
	if err != nil {
		panic(err) // unreachable: NewSegment guarantees size and alignment
	}
	return r
}

// Close marks the ring closed, waking both ends' polling loops. Idempotent,
// callable from either side.
func (r *Ring) Close() { atomic.StoreUint64(r.closed, 1) }

// Closed reports whether either side closed the ring.
func (r *Ring) Closed() bool { return atomic.LoadUint64(r.closed) != 0 }

// Buffered returns the bytes currently readable.
func (r *Ring) Buffered() int {
	return int(atomic.LoadUint64(r.tail) - atomic.LoadUint64(r.head))
}

// Free returns the bytes currently writable.
func (r *Ring) Free() int { return int(r.cap) - r.Buffered() }

// copyIn copies p into the data area starting at absolute cursor pos,
// wrapping once. Caller has established that the space is free.
func (r *Ring) copyIn(pos uint64, p []byte) {
	off := pos % r.cap
	n := copy(r.data[off:], p)
	if n < len(p) {
		copy(r.data, p[n:])
	}
}

// copyOut copies into p from the data area starting at absolute cursor
// pos, wrapping once. Caller has established that the bytes are readable.
func (r *Ring) copyOut(pos uint64, p []byte) {
	off := pos % r.cap
	n := copy(p, r.data[off:])
	if n < len(p) {
		copy(p[n:], r.data)
	}
}

// TryWrite copies up to len(p) bytes into the ring (stream mode) and
// returns the count, 0 when the ring is full. Producer side only.
//
//aapc:role producer
func (r *Ring) TryWrite(p []byte) int {
	tail := atomic.LoadUint64(r.tail)
	head := atomic.LoadUint64(r.head) // acquire: consumer freed this space
	free := int(r.cap - (tail - head))
	n := min(free, len(p))
	if n <= 0 {
		return 0
	}
	r.copyIn(tail, p[:n])
	atomic.StoreUint64(r.tail, tail+uint64(n)) // release: publish the bytes
	return n
}

// TryRead pops up to len(p) bytes from the ring (stream mode) and returns
// the count, 0 when the ring is empty. Consumer side only.
//
//aapc:role consumer
func (r *Ring) TryRead(p []byte) int {
	head := atomic.LoadUint64(r.head)
	tail := atomic.LoadUint64(r.tail) // acquire: producer published these bytes
	avail := int(tail - head)
	n := min(avail, len(p))
	if n <= 0 {
		return 0
	}
	r.copyOut(head, p[:n])
	atomic.StoreUint64(r.head, head+uint64(n)) // release: free the space
	return n
}

// WriteRecord publishes one [size u32][tag i64][payload] record atomically:
// either the whole record enters the ring or nothing does (false when free
// space is insufficient). Record and stream modes must not be mixed on one
// ring. Producer side only.
//
//aapc:role producer
func (r *Ring) WriteRecord(tag int64, p []byte) bool {
	need := recordHeader + len(p)
	if need > int(r.cap) {
		return false // can never fit; caller must bound record sizes
	}
	tail := atomic.LoadUint64(r.tail)
	head := atomic.LoadUint64(r.head)
	if int(r.cap-(tail-head)) < need {
		return false
	}
	var hdr [recordHeader]byte
	putU32(hdr[0:4], uint32(len(p)))
	putU64(hdr[4:12], uint64(tag))
	r.copyIn(tail, hdr[:])
	r.copyIn(tail+recordHeader, p)
	atomic.StoreUint64(r.tail, tail+uint64(need))
	return true
}

// PeekRecord returns the next record's tag and payload size without
// consuming it; ok is false when the ring holds no complete record.
// Consumer side only.
//
//aapc:role consumer
func (r *Ring) PeekRecord() (tag int64, size int, ok bool) {
	head := atomic.LoadUint64(r.head)
	tail := atomic.LoadUint64(r.tail)
	if tail-head < recordHeader {
		return 0, 0, false
	}
	var hdr [recordHeader]byte
	r.copyOut(head, hdr[:])
	return int64(getU64(hdr[4:12])), int(getU32(hdr[0:4])), true
}

// ReadRecord consumes the next record, copying its payload into p (which
// must hold PeekRecord's size). Consumer side only.
//
//aapc:role consumer
func (r *Ring) ReadRecord(p []byte) {
	head := atomic.LoadUint64(r.head)
	r.copyOut(head+recordHeader, p)
	atomic.StoreUint64(r.head, head+recordHeader+uint64(len(p)))
}

// Byte-order helpers (little endian, matching the tcp frame encoding).
// encoding/binary is avoided here only to keep the record path free of
// bounds-check noise in the hot loop; the layouts are identical.
func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
