// Package mpi defines the message-passing substrate the AAPC algorithms are
// written against: a deliberately small subset of MPI point-to-point
// semantics (nonblocking send/receive with tag matching, waiting, and a
// barrier).
//
// The paper's automatically generated MPI_Alltoall routines are built on MPI
// point-to-point primitives; this package plays the role of that layer. Three
// implementations exist:
//
//   - mpi/mem: in-process transport over shared memory; real byte movement,
//     used for functional correctness tests and the examples.
//   - mpi/tcp: loopback TCP sockets (one connection per rank pair); the
//     closest runnable analogue of the paper's LAM/MPI-over-Ethernet stack.
//   - simnet: a discrete-event fluid network simulator with virtual time,
//     used to reproduce the paper's performance evaluation.
//
// Algorithms written once against Comm run on all three.
package mpi

import (
	"fmt"
	"time"
)

// AnyTag is not supported: all receives match an explicit (source, tag)
// pair. The constant exists to document that choice.
const AnyTag = -1

// Request is an in-flight nonblocking operation.
type Request interface {
	// Wait blocks until the operation completes and returns its error.
	// Wait may be called at most once per request.
	Wait() error
}

// Comm is a communicator: the endpoint of one rank within a world of Size
// ranks. Implementations must be safe for use by the owning rank's
// goroutine; a Comm must not be shared between goroutines.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the world.
	Size() int
	// Isend starts a nonblocking send of buf to rank dst with the given
	// tag. The buffer must not be modified until the request completes.
	Isend(buf []byte, dst, tag int) Request
	// Irecv starts a nonblocking receive into buf from rank src with the
	// given tag. Completion copies min(len(buf), len(sent)) bytes.
	Irecv(buf []byte, src, tag int) Request
	// Barrier blocks until every rank of the world has entered it.
	Barrier() error
	// Now returns the communicator's notion of elapsed time in seconds:
	// wall-clock time for real transports, virtual time for the simulator.
	Now() float64
}

// Flusher is the optional Comm extension for transports with an
// asynchronous writer stage between Isend and the wire. Flush(dst) returns
// once every send this rank has issued toward dst before the call has been
// handed to the kernel — a wire-entry ordering point — without waiting for
// delivery acknowledgement. d > 0 bounds the wait (typed *TimeoutError on
// expiry); d <= 0 waits until the watermark is reached or the transport
// reports failure.
//
// Schedulers use it to order "my previous message entered the link before
// this synchronization" at the cost of a local writer handoff instead of a
// delivery round trip. Transports whose Isend hands bytes over
// synchronously (mem, simulators) simply don't implement it; callers fall
// back to waiting the request.
type Flusher interface {
	Flush(dst int, d time.Duration) error
}

// Send is a blocking send: Isend immediately waited.
func Send(c Comm, buf []byte, dst, tag int) error {
	return c.Isend(buf, dst, tag).Wait()
}

// Recv is a blocking receive: Irecv immediately waited.
func Recv(c Comm, buf []byte, src, tag int) error {
	return c.Irecv(buf, src, tag).Wait()
}

// Sendrecv performs a blocking simultaneous send and receive, the workhorse
// of pairwise-exchange algorithms.
func Sendrecv(c Comm, sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) error {
	rr := c.Irecv(recvBuf, src, recvTag)
	sr := c.Isend(sendBuf, dst, sendTag)
	if err := sr.Wait(); err != nil {
		// Drain the receive to keep the transport consistent before
		// reporting the send failure.
		_ = rr.Wait()
		return err
	}
	return rr.Wait()
}

// WaitAll waits for every request and returns the first error encountered,
// after waiting for all of them.
func WaitAll(reqs []Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CheckRank validates a peer rank against the world size.
func CheckRank(c Comm, peer int) error {
	if peer < 0 || peer >= c.Size() {
		return fmt.Errorf("mpi: rank %d out of range [0, %d)", peer, c.Size())
	}
	return nil
}
