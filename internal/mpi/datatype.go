package mpi

import (
	"fmt"
	"time"
)

// Datatype describes a (possibly strided) byte layout over a base slice —
// the repository's analogue of MPI user-defined datatypes (MPI_Type_vector
// and friends). A datatype lets an algorithm hand the transport a view into
// application storage (a row of blocks inside one matrix, a sub-matrix with
// a leading dimension) instead of packing the data into a contiguous
// staging buffer first: transports that understand datatypes gather the
// blocks straight into their wire batches and scatter received bytes
// straight into the destination blocks, so the data crosses user space at
// most once.
//
// The layout is count blocks of blockLen bytes each, the i-th block
// starting at byte offset i*stride of the base slice. stride == blockLen
// (or count <= 1) makes the layout contiguous. The zero Datatype is the
// "untyped" marker used internally by transports; user code builds
// datatypes with Contiguous and Vector.
type Datatype struct {
	count    int
	blockLen int
	stride   int
}

// Contiguous describes n contiguous bytes — the identity datatype.
func Contiguous(n int) Datatype {
	return Datatype{count: 1, blockLen: n, stride: n}
}

// Vector describes count blocks of blockLen bytes spaced stride bytes apart
// (MPI_Type_vector with byte-granular elements). stride must be at least
// blockLen; blocks never overlap.
func Vector(count, blockLen, stride int) Datatype {
	return Datatype{count: count, blockLen: blockLen, stride: stride}
}

// IsZero reports whether the datatype is the zero "untyped" marker.
func (d Datatype) IsZero() bool { return d.count == 0 && d.blockLen == 0 && d.stride == 0 }

// Count returns the number of blocks.
func (d Datatype) Count() int { return d.count }

// BlockLen returns the bytes per block.
func (d Datatype) BlockLen() int { return d.blockLen }

// Stride returns the byte distance between consecutive block starts.
func (d Datatype) Stride() int { return d.stride }

// Size returns the number of payload bytes the datatype describes.
func (d Datatype) Size() int { return d.count * d.blockLen }

// Extent returns the span of base bytes the layout touches: from offset 0
// to the end of the last block.
func (d Datatype) Extent() int {
	if d.count == 0 {
		return 0
	}
	return (d.count-1)*d.stride + d.blockLen
}

// Contig reports whether the layout is a single contiguous run.
func (d Datatype) Contig() bool {
	return d.count <= 1 || d.stride == d.blockLen
}

// Validate checks the datatype's internal consistency and that it fits
// within baseLen bytes of backing storage.
func (d Datatype) Validate(baseLen int) error {
	if d.count < 0 || d.blockLen < 0 {
		return fmt.Errorf("mpi: datatype with negative count (%d) or block length (%d)", d.count, d.blockLen)
	}
	if d.count > 1 && d.stride < d.blockLen {
		return fmt.Errorf("mpi: datatype stride %d < block length %d (blocks overlap)", d.stride, d.blockLen)
	}
	if d.Extent() > baseLen {
		return fmt.Errorf("mpi: datatype extent %d exceeds base length %d", d.Extent(), baseLen)
	}
	return nil
}

// Block returns the i-th block as a view into base.
func (d Datatype) Block(base []byte, i int) []byte {
	off := i * d.stride
	return base[off : off+d.blockLen]
}

// Pack gathers the datatype's bytes out of base into dst (which must hold
// Size() bytes) and returns the bytes written. The strided inverse of
// Unpack.
func (d Datatype) Pack(dst, base []byte) int {
	if d.Contig() {
		return copy(dst, base[:min(d.Size(), len(base))])
	}
	n := 0
	for i := 0; i < d.count; i++ {
		n += copy(dst[n:], d.Block(base, i))
	}
	return n
}

// Unpack scatters up to len(src) contiguous bytes into the datatype's
// blocks of base and returns the bytes placed.
func (d Datatype) Unpack(base, src []byte) int {
	if d.Contig() {
		return copy(base[:min(d.Size(), len(base))], src)
	}
	n := 0
	for i := 0; i < d.count && n < len(src); i++ {
		n += copy(d.Block(base, i), src[n:])
	}
	return n
}

// CopyTyped moves bytes between two typed views with no intermediate
// buffer, aligning the source's packed byte stream onto the destination's
// layout. It copies min(sdt.Size(), ddt.Size()) bytes and returns the
// count.
func CopyTyped(dstBase []byte, ddt Datatype, srcBase []byte, sdt Datatype) int {
	switch {
	case sdt.Contig():
		return ddt.Unpack(dstBase, srcBase[:min(sdt.Size(), len(srcBase))])
	case ddt.Contig():
		return sdt.Pack(dstBase[:min(ddt.Size(), len(dstBase))], srcBase)
	}
	// Both strided: walk both block sequences in packed order.
	total := min(sdt.Size(), ddt.Size())
	n := 0
	di, doff := 0, 0
	for si := 0; si < sdt.count && n < total; si++ {
		sb := sdt.Block(srcBase, si)
		for len(sb) > 0 && n < total {
			db := ddt.Block(dstBase, di)[doff:]
			k := min(len(sb), len(db))
			if rem := total - n; k > rem {
				k = rem
			}
			copy(db[:k], sb[:k])
			sb = sb[k:]
			n += k
			doff += k
			if doff == ddt.blockLen {
				di++
				doff = 0
			}
		}
	}
	return n
}

// TypedComm is the optional transport interface for zero-copy datatype
// operations: the transport gathers the send layout straight into its wire
// batch and scatters received bytes straight into the receive layout, never
// staging the payload in a pack buffer.
type TypedComm interface {
	// IsendTyped starts a nonblocking send of the dt-described bytes of
	// base. Like Isend, the described bytes must not be modified until the
	// request completes.
	IsendTyped(base []byte, dt Datatype, dst, tag int) Request
	// IrecvTyped starts a nonblocking receive placing incoming bytes into
	// the dt-described blocks of base.
	IrecvTyped(base []byte, dt Datatype, src, tag int) Request
}

// IsendTyped sends a typed view through any Comm: natively when the
// transport implements TypedComm, otherwise by packing into a temporary
// contiguous buffer (the one copy the native path avoids).
func IsendTyped(c Comm, base []byte, dt Datatype, dst, tag int) Request {
	if tc, ok := c.(TypedComm); ok {
		return tc.IsendTyped(base, dt, dst, tag)
	}
	if dt.Contig() {
		return c.Isend(base[:min(dt.Size(), len(base))], dst, tag)
	}
	tmp := make([]byte, dt.Size())
	dt.Pack(tmp, base)
	return c.Isend(tmp, dst, tag)
}

// IrecvTyped receives into a typed view through any Comm: natively when the
// transport implements TypedComm, otherwise by receiving into a temporary
// buffer and unpacking at completion.
func IrecvTyped(c Comm, base []byte, dt Datatype, src, tag int) Request {
	if tc, ok := c.(TypedComm); ok {
		return tc.IrecvTyped(base, dt, src, tag)
	}
	if dt.Contig() {
		return c.Irecv(base[:min(dt.Size(), len(base))], src, tag)
	}
	tmp := make([]byte, dt.Size())
	return &unpackReq{inner: c.Irecv(tmp, src, tag), base: base, tmp: tmp, dt: dt}
}

// unpackReq completes a fallback typed receive: wait, then scatter the
// staged bytes into the user layout.
type unpackReq struct {
	inner Request
	base  []byte
	tmp   []byte
	dt    Datatype
}

func (r *unpackReq) Wait() error {
	err := r.inner.Wait()
	if err == nil {
		r.dt.Unpack(r.base, r.tmp)
	}
	return err
}

// WaitTimeout bounds the wait when the inner request supports deadlines
// (TimedRequest).
func (r *unpackReq) WaitTimeout(d time.Duration) error {
	err := WaitTimeout(r.inner, d)
	if err == nil {
		r.dt.Unpack(r.base, r.tmp)
	}
	return err
}
