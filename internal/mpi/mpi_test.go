package mpi

import (
	"errors"
	"testing"
)

// stubComm is a minimal in-memory Comm for exercising the package helpers
// without a real transport: sends complete immediately into a queue,
// receives pop from it.
type stubComm struct {
	rank, size int
	queue      map[int][][]byte // per tag
	sendErr    error
	recvErr    error
}

type stubRequest struct{ err error }

func (r stubRequest) Wait() error { return r.err }

func (c *stubComm) Rank() int    { return c.rank }
func (c *stubComm) Size() int    { return c.size }
func (c *stubComm) Now() float64 { return 0 }

func (c *stubComm) Isend(buf []byte, dst, tag int) Request {
	if err := CheckRank(c, dst); err != nil {
		return stubRequest{err}
	}
	if c.sendErr != nil {
		return stubRequest{c.sendErr}
	}
	if c.queue == nil {
		c.queue = make(map[int][][]byte)
	}
	c.queue[tag] = append(c.queue[tag], append([]byte(nil), buf...))
	return stubRequest{}
}

func (c *stubComm) Irecv(buf []byte, src, tag int) Request {
	if err := CheckRank(c, src); err != nil {
		return stubRequest{err}
	}
	if c.recvErr != nil {
		return stubRequest{c.recvErr}
	}
	q := c.queue[tag]
	if len(q) == 0 {
		return stubRequest{errors.New("stub: nothing queued")}
	}
	copy(buf, q[0])
	c.queue[tag] = q[1:]
	return stubRequest{}
}

func (c *stubComm) Barrier() error { return nil }

func TestSendRecvHelpers(t *testing.T) {
	c := &stubComm{rank: 0, size: 2}
	if err := Send(c, []byte("hi"), 0, 1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if err := Recv(c, buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Errorf("got %q", buf)
	}
}

func TestSendrecvHelper(t *testing.T) {
	c := &stubComm{rank: 0, size: 2}
	// Preload what the receive will consume.
	if err := Send(c, []byte("xy"), 0, 7); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 2)
	if err := Sendrecv(c, []byte("ab"), 0, 3, in, 0, 7); err != nil {
		t.Fatal(err)
	}
	if string(in) != "xy" {
		t.Errorf("got %q", in)
	}
}

func TestSendrecvPropagatesSendError(t *testing.T) {
	c := &stubComm{rank: 0, size: 2, sendErr: errors.New("boom")}
	if err := Sendrecv(c, nil, 0, 0, nil, 0, 0); err == nil {
		t.Error("want send error")
	}
}

func TestWaitAll(t *testing.T) {
	boom := errors.New("boom")
	reqs := []Request{
		stubRequest{},
		nil, // tolerated
		stubRequest{boom},
		stubRequest{errors.New("later, ignored")},
	}
	if err := WaitAll(reqs); err != boom {
		t.Errorf("WaitAll = %v, want first error %v", err, boom)
	}
	if err := WaitAll(nil); err != nil {
		t.Errorf("WaitAll(nil) = %v", err)
	}
}

func TestCheckRank(t *testing.T) {
	c := &stubComm{rank: 0, size: 4}
	if err := CheckRank(c, 3); err != nil {
		t.Error(err)
	}
	if err := CheckRank(c, 4); err == nil {
		t.Error("want error for rank == size")
	}
	if err := CheckRank(c, -1); err == nil {
		t.Error("want error for negative rank")
	}
}
