package mem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, []byte("hello"), 1, 7)
		}
		buf := make([]byte, 5)
		if err := mpi.Recv(c, buf, 0, 7); err != nil {
			return err
		}
		if string(buf) != "hello" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 1 {
			buf := make([]byte, 3)
			r := c.Irecv(buf, 0, 0)
			if err := r.Wait(); err != nil {
				return err
			}
			if string(buf) != "abc" {
				return fmt.Errorf("got %q", buf)
			}
			return nil
		}
		time.Sleep(10 * time.Millisecond) // let the receive post first
		return mpi.Send(c, []byte("abc"), 1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Two messages with different tags sent in one order, received in the
	// other: tags must route them correctly.
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := mpi.Send(c, []byte("first"), 1, 1); err != nil {
				return err
			}
			return mpi.Send(c, []byte("secnd"), 1, 2)
		}
		b2 := make([]byte, 5)
		b1 := make([]byte, 5)
		r2 := c.Irecv(b2, 0, 2)
		r1 := c.Irecv(b1, 0, 1)
		if err := mpi.WaitAll([]mpi.Request{r1, r2}); err != nil {
			return err
		}
		if string(b1) != "first" || string(b2) != "secnd" {
			return fmt.Errorf("tag mismatch: %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderingSameKey(t *testing.T) {
	// Messages with identical (src, dst, tag) must not overtake each other.
	const k = 50
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := mpi.Send(c, []byte{byte(i)}, 1, 9); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			b := make([]byte, 1)
			if err := mpi.Recv(c, b, 0, 9); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecv(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		peer := 1 - c.Rank()
		out := []byte{byte(c.Rank())}
		in := make([]byte, 1)
		if err := mpi.Sendrecv(c, out, peer, 0, in, peer, 0); err != nil {
			return err
		}
		if in[0] != byte(peer) {
			return fmt.Errorf("rank %d got %d", c.Rank(), in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncationError(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, []byte("too long"), 1, 0)
		}
		buf := make([]byte, 2)
		return mpi.Recv(c, buf, 0, 0)
	})
	if err == nil {
		t.Fatal("want truncation error")
	}
}

func TestBadRank(t *testing.T) {
	comms := NewWorld(2)
	if err := comms[0].Isend(nil, 5, 0).Wait(); err == nil {
		t.Error("want error for out-of-range destination")
	}
	if err := comms[0].Irecv(nil, -1, 0).Wait(); err == nil {
		t.Error("want error for out-of-range source")
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	phase := make([]int, n)
	err := Run(n, func(c mpi.Comm) error {
		for round := 0; round < 5; round++ {
			mu.Lock()
			phase[c.Rank()] = round
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			// After the barrier, nobody can still be in an older round.
			mu.Lock()
			for r, p := range phase {
				if p < round {
					mu.Unlock()
					return fmt.Errorf("rank %d saw rank %d still at round %d during round %d",
						c.Rank(), r, p, round)
				}
			}
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyToOne(t *testing.T) {
	const n = 16
	err := Run(n, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			got := make([]bool, n)
			for i := 1; i < n; i++ {
				b := make([]byte, 1)
				if err := mpi.Recv(c, b, i, 3); err != nil {
					return err
				}
				got[b[0]] = true
			}
			for i := 1; i < n; i++ {
				if !got[i] {
					return fmt.Errorf("missing message from %d", i)
				}
			}
			return nil
		}
		return mpi.Send(c, []byte{byte(c.Rank())}, 0, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNaiveAllToAll(t *testing.T) {
	// A hand-rolled all-to-all over the raw interface: every rank sends a
	// distinctive pattern to every other rank.
	const n = 6
	const sz = 128
	err := Run(n, func(c mpi.Comm) error {
		var reqs []mpi.Request
		recv := make([][]byte, n)
		for p := 0; p < n; p++ {
			if p == c.Rank() {
				continue
			}
			recv[p] = make([]byte, sz)
			reqs = append(reqs, c.Irecv(recv[p], p, 0))
		}
		for p := 0; p < n; p++ {
			if p == c.Rank() {
				continue
			}
			out := bytes.Repeat([]byte{byte(c.Rank()*16 + p)}, sz)
			reqs = append(reqs, c.Isend(out, p, 0))
		}
		if err := mpi.WaitAll(reqs); err != nil {
			return err
		}
		for p := 0; p < n; p++ {
			if p == c.Rank() {
				continue
			}
			want := byte(p*16 + c.Rank())
			for _, b := range recv[p] {
				if b != want {
					return fmt.Errorf("rank %d from %d: got %d want %d", c.Rank(), p, b, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNowMonotonic(t *testing.T) {
	comms := NewWorld(1)
	a := comms[0].Now()
	time.Sleep(time.Millisecond)
	b := comms[0].Now()
	if b <= a {
		t.Errorf("Now not increasing: %v then %v", a, b)
	}
}
