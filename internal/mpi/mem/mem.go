// Package mem provides an in-process mpi transport: all ranks live in one
// address space and exchange real bytes through a matching engine. It is the
// reference transport for functional correctness — if an all-to-all
// algorithm produces the right permutation here, the algorithm logic is
// right; performance behaviour is the simulator's job.
//
// For fault testing, a rank can be killed (KillRank or the mpi.Killer
// interface on its comm): every pending and future operation involving the
// dead rank — on any rank — fails with a typed *mpi.RankError, and barriers
// abort instead of waiting for an arrival that will never come.
package mem

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// World is a set of in-process communicator endpoints.
type World struct {
	n     int
	start time.Time

	mu      sync.Mutex
	sends   map[matchKey][]*op
	recvs   map[matchKey][]*op
	dead    map[int]error
	barrier *barrierGen

	// opsMu guards opFree, the freelist of completed operations. An op (and
	// its one-slot channel) is recycled when Wait consumes its completion —
	// the only point where provably neither side references it anymore. Ops
	// abandoned by WaitTimeout are never recycled: a late match may still
	// write their buffer and channel.
	opsMu  sync.Mutex
	opFree []*op
}

// opFreeCap bounds the freelist; beyond it completed ops fall to the GC.
const opFreeCap = 1024

// getOp returns a recycled op or makes a fresh one.
func (w *World) getOp(buf []byte) *op {
	w.opsMu.Lock()
	if k := len(w.opFree); k > 0 {
		o := w.opFree[k-1]
		w.opFree[k-1] = nil
		w.opFree = w.opFree[:k-1]
		w.opsMu.Unlock()
		o.buf = buf
		return o
	}
	w.opsMu.Unlock()
	return &op{w: w, buf: buf, done: make(chan error, 1)}
}

// putOp returns a consumed op to the freelist. Its channel is empty again
// (the single completion was just received), so it is ready for reuse.
func (w *World) putOp(o *op) {
	o.buf = nil
	o.ctx = 0
	o.deliveredAt = 0
	o.dt = mpi.Datatype{}
	w.opsMu.Lock()
	if len(w.opFree) < opFreeCap {
		w.opFree = append(w.opFree, o)
	}
	w.opsMu.Unlock()
}

// barrierGen is one generation of the barrier: everyone blocked on it is
// released together, either cleanly or with an abort error.
type barrierGen struct {
	waiting int
	release chan struct{}
	err     error
}

// matchKey identifies a send/receive rendezvous point. MPI ordering applies
// per key: matching is FIFO between identical (src, dst, tag) triples.
type matchKey struct {
	src, dst, tag int
}

// op is one pending operation awaiting its match. It doubles as the request
// handed back to the caller: Wait consumes the completion and recycles the
// op through the world's freelist, so a steady stream of operations reuses a
// small set of op/channel pairs instead of allocating per message.
type op struct {
	w    *World
	buf  []byte
	done chan error
	// ctx is the trace context: on a send op, the context the sender
	// attached (IsendTraced); on a recv op, the matching sender's context,
	// copied at match time before the completion is signalled. 0 = untraced.
	ctx uint64
	// deliveredAt is the delivery timestamp (Comm.Now seconds), stamped on
	// BOTH ops at match time for traced messages only: the recv side reads
	// it as the payload's arrival, the send side as the moment its message
	// left (which a late-drained Wait would otherwise misreport).
	deliveredAt float64
	// dt, when non-zero, describes buf's strided layout (typed operation).
	// The match moves bytes straight between the two layouts — the mem
	// transport's single copy, with no pack staging in between.
	dt mpi.Datatype
}

// size returns the operation's payload capacity in bytes.
func (o *op) size() int {
	if o.dt.IsZero() {
		return len(o.buf)
	}
	return o.dt.Size()
}

// place moves the matched message's bytes from the send op into the recv
// op, honoring either side's layout, and returns the bytes placed.
func place(recv, send *op) int {
	if recv.dt.IsZero() && send.dt.IsZero() {
		return copy(recv.buf, send.buf)
	}
	rdt, sdt := recv.dt, send.dt
	if rdt.IsZero() {
		rdt = mpi.Contiguous(len(recv.buf))
	}
	if sdt.IsZero() {
		sdt = mpi.Contiguous(len(send.buf))
	}
	return mpi.CopyTyped(recv.buf, rdt, send.buf, sdt)
}

func (o *op) Wait() error {
	err := <-o.done
	o.w.putOp(o)
	return err
}

// WaitTraced consumes the completion and returns the trace information the
// match recorded (mpi.TracedRequest). The info is read before the op is
// recycled — reading it after Wait would race the freelist.
func (o *op) WaitTraced() (mpi.TraceInfo, error) {
	err := <-o.done
	info := mpi.TraceInfo{Ctx: o.ctx, DeliveredAt: o.deliveredAt}
	o.w.putOp(o)
	return info, err
}

// WaitTracedTimeout bounds the traced wait (mpi.TracedTimedRequest). Like
// WaitTimeout, a timed-out op is abandoned, never recycled.
func (o *op) WaitTracedTimeout(d time.Duration) (mpi.TraceInfo, error) {
	if d <= 0 {
		return o.WaitTraced()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-o.done:
		info := mpi.TraceInfo{Ctx: o.ctx, DeliveredAt: o.deliveredAt}
		o.w.putOp(o)
		return info, err
	case <-t.C:
		return mpi.TraceInfo{}, &mpi.TimeoutError{Op: "wait", After: d}
	}
}

// WaitTimeout bounds the wait (mpi.TimedRequest). The operation is
// abandoned on timeout: its buffer must not be reused, a late match may
// still consume it, and the op is left to the garbage collector rather than
// recycled.
func (o *op) WaitTimeout(d time.Duration) error {
	if d <= 0 {
		return o.Wait()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-o.done:
		o.w.putOp(o)
		return err
	case <-t.C:
		return &mpi.TimeoutError{Op: "wait", After: d}
	}
}

// NewWorld creates a world of n in-process ranks and returns one
// communicator per rank.
func NewWorld(n int) []mpi.Comm {
	if n < 1 {
		panic(fmt.Sprintf("mem: world size %d", n))
	}
	w := &World{
		n:       n,
		start:   time.Now(),
		sends:   make(map[matchKey][]*op),
		recvs:   make(map[matchKey][]*op),
		dead:    make(map[int]error),
		barrier: &barrierGen{release: make(chan struct{})},
	}
	comms := make([]mpi.Comm, n)
	for i := range comms {
		comms[i] = &comm{w: w, rank: i}
	}
	return comms
}

// NewWorldComms returns the comms and the world itself, for callers that
// need fault control (KillRank).
func NewWorldComms(n int) ([]mpi.Comm, *World) {
	comms := NewWorld(n)
	return comms, comms[0].(*comm).w
}

// Run starts fn once per rank on its own goroutine and waits for all of
// them, returning the first non-nil error.
func Run(n int, fn func(c mpi.Comm) error) error {
	comms := NewWorld(n)
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// KillRank simulates the death of rank r: pending sends and receives
// involving r fail with a *mpi.RankError on every rank, as do future ones,
// and any barrier in progress aborts. Killing a dead rank is a no-op.
func (w *World) KillRank(r int) error {
	if r < 0 || r >= w.n {
		return fmt.Errorf("mem: kill of rank %d out of range [0, %d)", r, w.n)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.dead[r]; ok {
		return nil
	}
	cause := fmt.Errorf("mem: rank %d killed", r)
	w.dead[r] = cause
	rankErr := &mpi.RankError{Rank: r, Err: cause}
	for key, q := range w.sends {
		if key.src != r && key.dst != r {
			continue
		}
		for _, o := range q {
			o.done <- rankErr
		}
		delete(w.sends, key)
	}
	for key, q := range w.recvs {
		if key.src != r && key.dst != r {
			continue
		}
		for _, o := range q {
			o.done <- rankErr
		}
		delete(w.recvs, key)
	}
	// Abort the in-flight barrier generation: the dead rank will never
	// arrive, so everyone blocked would wait forever.
	if w.barrier.waiting > 0 {
		w.barrier.err = rankErr
		close(w.barrier.release)
		w.barrier = &barrierGen{release: make(chan struct{})}
	}
	return nil
}

// deadErrLocked returns the typed error for an operation involving a dead
// endpoint, or nil. Caller holds w.mu.
func (w *World) deadErrLocked(ranks ...int) error {
	for _, r := range ranks {
		if cause, ok := w.dead[r]; ok {
			return &mpi.RankError{Rank: r, Err: cause}
		}
	}
	return nil
}

type comm struct {
	w    *World
	rank int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.w.n }

func (c *comm) Now() float64 { return time.Since(c.w.start).Seconds() }

// Kill simulates the death of this rank (mpi.Killer).
func (c *comm) Kill() error { return c.w.KillRank(c.rank) }

// errRequest is an already-failed request.
type errRequest struct{ err error }

func (r errRequest) Wait() error                     { return r.err }
func (r errRequest) WaitTimeout(time.Duration) error { return r.err }

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	return c.isend(buf, mpi.Datatype{}, dst, tag, 0)
}

// IsendTyped starts a typed send (mpi.TypedComm): the match copies straight
// from the dt-described blocks of base into the receiver's layout.
func (c *comm) IsendTyped(base []byte, dt mpi.Datatype, dst, tag int) mpi.Request {
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	return c.isend(base, dt, dst, tag, 0)
}

// IrecvTyped posts a typed receive (mpi.TypedComm).
func (c *comm) IrecvTyped(base []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	return c.irecv(base, dt, src, tag)
}

// IsendTraced attaches a trace context to the message (mpi.TracedSender):
// the matching receive op learns it, and its delivery time, at match time.
func (c *comm) IsendTraced(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	return c.isend(buf, mpi.Datatype{}, dst, tag, ctx)
}

func (c *comm) isend(buf []byte, dt mpi.Datatype, dst, tag int, ctx uint64) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	key := matchKey{src: c.rank, dst: dst, tag: tag}
	w := c.w
	me := w.getOp(buf)
	me.dt = dt
	me.ctx = ctx
	w.mu.Lock()
	if err := w.deadErrLocked(c.rank, dst); err != nil {
		w.mu.Unlock()
		w.putOp(me)
		return errRequest{err}
	}
	if q := w.recvs[key]; len(q) > 0 {
		peer := q[0]
		q[0] = nil
		w.recvs[key] = q[1:]
		n := place(peer, me)
		if ctx != 0 {
			// The channel send below orders these writes before the
			// receiver's WaitTraced read. The sender's op gets the same
			// stamp: a send's effect happened at the match, not at whatever
			// later point its Wait was drained.
			peer.ctx = ctx
			peer.deliveredAt = c.Now()
			me.deliveredAt = peer.deliveredAt
		}
		w.mu.Unlock()
		if n < me.size() {
			err := fmt.Errorf("mem: send %d->%d tag %d truncated: receiver buffer %d < %d",
				key.src, key.dst, key.tag, peer.size(), me.size())
			peer.done <- err
			me.done <- err
		} else {
			peer.done <- nil
			me.done <- nil
		}
		return me
	}
	w.sends[key] = append(w.sends[key], me)
	w.mu.Unlock()
	return me
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	return c.irecv(buf, mpi.Datatype{}, src, tag)
}

func (c *comm) irecv(buf []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	key := matchKey{src: src, dst: c.rank, tag: tag}
	w := c.w
	me := w.getOp(buf)
	me.dt = dt
	w.mu.Lock()
	if q := w.sends[key]; len(q) > 0 {
		// A message sent before the source died still matches.
		peer := q[0]
		q[0] = nil
		w.sends[key] = q[1:]
		n := place(me, peer)
		if peer.ctx != 0 {
			me.ctx = peer.ctx
			me.deliveredAt = c.Now()
			peer.deliveredAt = me.deliveredAt
		}
		w.mu.Unlock()
		if n < peer.size() {
			err := fmt.Errorf("mem: send %d->%d tag %d truncated: receiver buffer %d < %d",
				key.src, key.dst, key.tag, me.size(), peer.size())
			peer.done <- err
			me.done <- err
		} else {
			peer.done <- nil
			me.done <- nil
		}
		return me
	}
	if err := w.deadErrLocked(c.rank, src); err != nil {
		w.mu.Unlock()
		w.putOp(me)
		return errRequest{err}
	}
	w.recvs[key] = append(w.recvs[key], me)
	w.mu.Unlock()
	return me
}

func (c *comm) Barrier() error {
	w := c.w
	w.mu.Lock()
	if err := w.deadErrLocked(c.rank); err != nil {
		w.mu.Unlock()
		return err
	}
	// A barrier can never complete while any rank is dead; fail fast with
	// the same typed error every surviving rank sees.
	for r := range w.dead {
		err := &mpi.RankError{Rank: r, Err: w.dead[r]}
		w.mu.Unlock()
		return err
	}
	gen := w.barrier
	gen.waiting++
	if gen.waiting == w.n {
		// Last arrival releases everyone and resets for the next round.
		close(gen.release)
		w.barrier = &barrierGen{release: make(chan struct{})}
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	<-gen.release
	return gen.err
}
