// Package mem provides an in-process mpi transport: all ranks live in one
// address space and exchange real bytes through a matching engine. It is the
// reference transport for functional correctness — if an all-to-all
// algorithm produces the right permutation here, the algorithm logic is
// right; performance behaviour is the simulator's job.
package mem

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// World is a set of in-process communicator endpoints.
type World struct {
	n     int
	start time.Time

	mu      sync.Mutex
	sends   map[matchKey][]*op
	recvs   map[matchKey][]*op
	barrier struct {
		gen     int
		waiting int
		release chan struct{}
	}
}

// matchKey identifies a send/receive rendezvous point. MPI ordering applies
// per key: matching is FIFO between identical (src, dst, tag) triples.
type matchKey struct {
	src, dst, tag int
}

// op is one pending operation awaiting its match.
type op struct {
	buf  []byte
	done chan error
}

// NewWorld creates a world of n in-process ranks and returns one
// communicator per rank.
func NewWorld(n int) []mpi.Comm {
	if n < 1 {
		panic(fmt.Sprintf("mem: world size %d", n))
	}
	w := &World{
		n:     n,
		start: time.Now(),
		sends: make(map[matchKey][]*op),
		recvs: make(map[matchKey][]*op),
	}
	w.barrier.release = make(chan struct{})
	comms := make([]mpi.Comm, n)
	for i := range comms {
		comms[i] = &comm{w: w, rank: i}
	}
	return comms
}

// Run starts fn once per rank on its own goroutine and waits for all of
// them, returning the first non-nil error.
func Run(n int, fn func(c mpi.Comm) error) error {
	comms := NewWorld(n)
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

type comm struct {
	w    *World
	rank int
}

func (c *comm) Rank() int { return c.rank }
func (c *comm) Size() int { return c.w.n }

func (c *comm) Now() float64 { return time.Since(c.w.start).Seconds() }

type request struct {
	done chan error
}

func (r *request) Wait() error { return <-r.done }

// errRequest is an already-failed request.
type errRequest struct{ err error }

func (r errRequest) Wait() error { return r.err }

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	key := matchKey{src: c.rank, dst: dst, tag: tag}
	me := &op{buf: buf, done: make(chan error, 1)}

	w := c.w
	w.mu.Lock()
	if q := w.recvs[key]; len(q) > 0 {
		peer := q[0]
		w.recvs[key] = q[1:]
		n := copy(peer.buf, buf)
		w.mu.Unlock()
		if n < len(buf) {
			err := fmt.Errorf("mem: send %d->%d tag %d truncated: receiver buffer %d < %d",
				key.src, key.dst, key.tag, len(peer.buf), len(buf))
			peer.done <- err
			me.done <- err
		} else {
			peer.done <- nil
			me.done <- nil
		}
		return &request{done: me.done}
	}
	w.sends[key] = append(w.sends[key], me)
	w.mu.Unlock()
	return &request{done: me.done}
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	key := matchKey{src: src, dst: c.rank, tag: tag}
	me := &op{buf: buf, done: make(chan error, 1)}

	w := c.w
	w.mu.Lock()
	if q := w.sends[key]; len(q) > 0 {
		peer := q[0]
		w.sends[key] = q[1:]
		n := copy(buf, peer.buf)
		w.mu.Unlock()
		if n < len(peer.buf) {
			err := fmt.Errorf("mem: send %d->%d tag %d truncated: receiver buffer %d < %d",
				key.src, key.dst, key.tag, len(buf), len(peer.buf))
			peer.done <- err
			me.done <- err
		} else {
			peer.done <- nil
			me.done <- nil
		}
		return &request{done: me.done}
	}
	w.recvs[key] = append(w.recvs[key], me)
	w.mu.Unlock()
	return &request{done: me.done}
}

func (c *comm) Barrier() error {
	w := c.w
	w.mu.Lock()
	w.barrier.waiting++
	if w.barrier.waiting == w.n {
		// Last arrival releases everyone and resets for the next round.
		close(w.barrier.release)
		w.barrier.release = make(chan struct{})
		w.barrier.waiting = 0
		w.barrier.gen++
		w.mu.Unlock()
		return nil
	}
	release := w.barrier.release
	w.mu.Unlock()
	<-release
	return nil
}
