package tcp

import (
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// TestTCPZeroCopySteadyState is the copy-count analogue of the allocation
// gates: in the steady state — receives pre-posted, payloads at or above
// zeroCopyMin — the data plane must move every payload with zero userspace
// copies. Send side: every frame borrows the caller's buffer into the
// writev batch (BorrowedSends, no CopiedSends). Receive side: every payload
// lands straight off the socket into the posted buffer (ZeroCopyRecvs, no
// PayloadCopies). The assertions are exact equalities on the stats deltas,
// so a single regression anywhere on the path fails the gate.
func TestTCPZeroCopySteadyState(t *testing.T) {
	const (
		n     = 4
		iters = 10
		msize = 65536
	)
	comms, closeWorld, err := NewWorld(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closeWorld(); err != nil {
			t.Fatal(err)
		}
	}()

	// Pre-post every receive of every iteration (distinct tags), then
	// barrier: from here on no frame can arrive before its receive, and no
	// control traffic interleaves with the measured window.
	recvs := make([][]mpi.Request, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			me := c.Rank()
			for it := 0; it < iters; it++ {
				for src := 0; src < n; src++ {
					if src == me {
						continue
					}
					recvs[me] = append(recvs[me], c.Irecv(make([]byte, msize), src, it))
				}
			}
			errs <- c.Barrier()
		}(comms[r])
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	base := comms[0].(*comm).TransportStats()

	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			me := c.Rank()
			sendBufs := make([][]byte, n)
			for dst := 0; dst < n; dst++ {
				sendBufs[dst] = make([]byte, msize)
			}
			for it := 0; it < iters; it++ {
				var reqs []mpi.Request
				for dst := 0; dst < n; dst++ {
					if dst == me {
						continue
					}
					reqs = append(reqs, c.Isend(sendBufs[dst], dst, it))
				}
				// Wait drains the iteration; borrowed frames complete on
				// their cumulative ack, so the buffers are free for reuse.
				if err := mpi.WaitAll(reqs); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(comms[r])
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < n; r++ {
		if err := mpi.WaitAll(recvs[r]); err != nil {
			t.Fatal(err)
		}
	}

	s := comms[0].(*comm).TransportStats()
	const frames = uint64(iters * n * (n - 1))
	if got := s.BorrowedSends - base.BorrowedSends; got != frames {
		t.Errorf("borrowed sends = %d, want %d (every data frame borrows)", got, frames)
	}
	if got := s.CopiedSends - base.CopiedSends; got != 0 {
		t.Errorf("copied sends = %d, want 0 in the steady state", got)
	}
	if got := s.PayloadCopies - base.PayloadCopies; got != 0 {
		t.Errorf("payload copies = %d, want 0 with receives pre-posted", got)
	}
	if got := s.ZeroCopyRecvs - base.ZeroCopyRecvs; got != frames {
		t.Errorf("zero-copy receives = %d, want %d", got, frames)
	}
}
