package tcp

import (
	"runtime"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// exchangeAll runs a full pairwise exchange (every rank sends one patterned
// message to every other rank) and verifies every received byte.
func exchangeAll(c mpi.Comm, msize int) error {
	n, me := c.Size(), c.Rank()
	reqs := make([]mpi.Request, 0, 2*(n-1))
	recvBufs := make([][]byte, n)
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		buf := make([]byte, msize)
		for i := range buf {
			buf[i] = byte(me*31 + p*7 + i)
		}
		reqs = append(reqs, c.Isend(buf, p, 5))
		recvBufs[p] = make([]byte, msize)
		reqs = append(reqs, c.Irecv(recvBufs[p], p, 5))
	}
	if err := mpi.WaitAllTimeout(reqs, 20*time.Second); err != nil {
		return err
	}
	for p := 0; p < n; p++ {
		if p == me {
			continue
		}
		for i, b := range recvBufs[p] {
			if b != byte(p*31+me*7+i) {
				return &mpi.RankError{Rank: p, Err: errCorrupt(p, me, i)}
			}
		}
	}
	return nil
}

type corruptError struct{ src, dst, i int }

func errCorrupt(src, dst, i int) error { return &corruptError{src, dst, i} }
func (e *corruptError) Error() string {
	return "corrupt byte"
}

// TestTransientDropByteExact is the recovery acceptance test: a plan that
// breaks connections under live traffic must still end with a byte-exact
// exchange, because the transport reconnects with backoff and retransmits
// unacked frames.
func TestTransientDropByteExact(t *testing.T) {
	plan, err := faults.ParsePlanString(`
seed 11
drop 0 1 count 2
drop 2 3 after 1 count 1
drop 1 2 count 1
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	err = Run(4, func(c mpi.Comm) error {
		for round := 0; round < 3; round++ {
			if err := exchangeAll(c, 512); err != nil {
				return err
			}
		}
		return nil
	}, WithFaults(inj))
	if err != nil {
		t.Fatalf("exchange under transient drops: %v", err)
	}
	if len(inj.Events()) == 0 {
		t.Fatal("no faults fired; test is vacuous")
	}
}

// TestDuplicateFramesDiscarded: duplicated frames must be deduplicated by
// the sequence-number guard, never matched twice.
func TestDuplicateFramesDiscarded(t *testing.T) {
	plan, err := faults.ParsePlanString("seed 5\ndup * * prob 0.5\n")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	err = Run(3, func(c mpi.Comm) error {
		for round := 0; round < 4; round++ {
			if err := exchangeAll(c, 64); err != nil {
				return err
			}
		}
		// If a duplicate had been delivered as a real message, it would
		// still be queued: a fresh receive must time out, not match.
		if c.Rank() == 0 {
			probeErr := mpi.RecvTimeout(c, make([]byte, 64), 1, 5, 100*time.Millisecond)
			if !mpi.IsTimeout(probeErr) {
				return errCorrupt(1, 0, -1)
			}
		}
		return nil
	}, WithFaults(inj))
	if err != nil {
		t.Fatalf("exchange under duplicated frames: %v", err)
	}
	if len(inj.Events()) == 0 {
		t.Fatal("no duplicates fired; test is vacuous")
	}
}

// TestDelayedFramesByteExact: injected frame delays reorder nothing and
// lose nothing.
func TestDelayedFramesByteExact(t *testing.T) {
	plan, err := faults.ParsePlanString("seed 9\ndelay * * 2ms prob 0.4\n")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	err = Run(3, func(c mpi.Comm) error {
		return exchangeAll(c, 256)
	}, WithFaults(inj))
	if err != nil {
		t.Fatalf("exchange under frame delays: %v", err)
	}
}

// TestKillRankTypedError is the fail-closed acceptance test: when a rank
// dies mid-exchange, every surviving rank's operations involving it must
// return a typed *mpi.RankError naming the dead rank — within the op
// deadline, not after a hang.
func TestKillRankTypedError(t *testing.T) {
	const n, victim = 4, 2
	start := time.Now()
	err := Run(n, func(c mpi.Comm) error {
		if c.Rank() == victim {
			// Die after one clean exchange round.
			if err := exchangeAll(c, 128); err != nil {
				return err
			}
			return c.(mpi.Killer).Kill()
		}
		if err := exchangeAll(c, 128); err != nil {
			return err
		}
		// The next receive from the victim must fail with the typed error.
		err := mpi.RecvTimeout(c, make([]byte, 8), victim, 7, 10*time.Second)
		re, ok := mpi.AsRankError(err)
		if !ok {
			return err
		}
		if re.Rank != victim {
			return re
		}
		return nil
	}, WithOpDeadline(10*time.Second))
	if err != nil {
		t.Fatalf("kill-one-rank: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("survivors took %v to learn of the death; deadline not honored", elapsed)
	}
}

// TestKillRankFailsPendingOps: operations already blocked on the victim
// when it dies must be released with the typed error, not stay pending.
func TestKillRankFailsPendingOps(t *testing.T) {
	comms, closeWorld, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld()
	req := comms[0].Irecv(make([]byte, 4), 1, 3)
	done := make(chan error, 1)
	go func() { done <- req.Wait() }()
	time.Sleep(20 * time.Millisecond) // let the receive be posted
	if err := comms[1].(mpi.Killer).Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		re, ok := mpi.AsRankError(err)
		if !ok || re.Rank != 1 {
			t.Fatalf("pending recv after kill: got %v, want RankError{Rank: 1}", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending receive still blocked 5s after the peer died")
	}
	// Future sends toward the dead rank fail immediately and typed.
	err = comms[0].Isend([]byte{1}, 1, 4).Wait()
	if re, ok := mpi.AsRankError(err); !ok || re.Rank != 1 {
		t.Fatalf("send to dead rank: got %v, want RankError{Rank: 1}", err)
	}
}

// TestNonResilientDropFailsTyped: with resilience off, an injected
// connection drop must surface as a typed error, not a hang.
func TestNonResilientDropFailsTyped(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Src: 0, Dst: 1, Count: 1}}}
	inj := faults.New(plan)
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.SendTimeout(c, []byte("x"), 1, 1, 10*time.Second)
		}
		err := mpi.RecvTimeout(c, make([]byte, 1), 0, 1, 10*time.Second)
		if err == nil {
			return errCorrupt(0, 1, -1)
		}
		return nil
	}, WithFaults(inj), WithoutResilience())
	if err == nil {
		t.Fatal("want a typed failure from the dropped connection")
	}
	if _, ok := mpi.AsRankError(err); !ok && !mpi.IsTimeout(err) {
		t.Fatalf("drop without resilience: got %v, want RankError or timeout", err)
	}
}

// TestPeerDeathDuringReconnect: a pair broken by an injected drop is
// backing off toward a redial when the peer dies — the reconnector must
// abandon the retry and fail the in-flight send with the typed error
// instead of re-establishing a socket to a dead rank.
func TestPeerDeathDuringReconnect(t *testing.T) {
	plan := &faults.Plan{Rules: []faults.Rule{{Kind: faults.Drop, Src: 0, Dst: 1, Count: 1}}}
	inj := faults.New(plan)
	res := DefaultResilience()
	res.BackoffBase = 300 * time.Millisecond
	res.BackoffMax = 300 * time.Millisecond
	res.Jitter = 0
	comms, closeWorld, err := NewWorld(2, WithFaults(inj), WithResilience(res))
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld()
	req := comms[0].Isend([]byte("x"), 1, 1) // drop fires, reconnect backs off
	time.Sleep(50 * time.Millisecond)        // well inside the 300ms backoff
	if len(inj.Events()) != 1 {
		t.Fatalf("expected the drop to have fired, events: %v", inj.Events())
	}
	if err := comms[1].(mpi.Killer).Kill(); err != nil {
		t.Fatal(err)
	}
	err = mpi.WaitTimeout(req, 10*time.Second)
	re, ok := mpi.AsRankError(err)
	if !ok || re.Rank != 1 {
		t.Fatalf("send caught mid-reconnect by peer death: got %v, want RankError{Rank: 1}", err)
	}
}

// TestNoGoroutineLeaks exercises create/traffic/close, create/kill/close
// and create/drop/close cycles and checks the world's goroutines are gone
// afterwards. Stdlib-only leak check: compare runtime.NumGoroutine with
// slack for runtime helpers.
func TestNoGoroutineLeaks(t *testing.T) {
	cycle := func(kind int) {
		switch kind {
		case 0: // clean traffic
			_ = Run(3, func(c mpi.Comm) error { return exchangeAll(c, 64) })
		case 1: // killed rank
			_ = Run(3, func(c mpi.Comm) error {
				if c.Rank() == 1 {
					return c.(mpi.Killer).Kill()
				}
				err := mpi.RecvTimeout(c, make([]byte, 1), 1, 1, 5*time.Second)
				if err == nil {
					return nil
				}
				return nil
			})
		case 2: // transient drops with reconnect
			inj := faults.New(&faults.Plan{Rules: []faults.Rule{
				{Kind: faults.Drop, Src: 0, Dst: 1, Count: 1},
			}})
			_ = Run(2, func(c mpi.Comm) error { return exchangeAll(c, 64) }, WithFaults(inj))
		case 3: // world closed with pending operations
			comms, closeWorld, err := NewWorld(2)
			if err != nil {
				return
			}
			req := comms[0].Irecv(make([]byte, 4), 1, 9)
			closeWorld()
			_ = req.Wait()
		}
	}
	// Warm up once so lazily-started runtime goroutines don't count.
	for kind := 0; kind < 4; kind++ {
		cycle(kind)
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		for kind := 0; kind < 4; kind++ {
			cycle(kind)
		}
	}
	// Give exiting goroutines a moment; poll instead of one long sleep.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
