package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, []byte("over tcp"), 1, 3)
		}
		buf := make([]byte, 8)
		if err := mpi.Recv(c, buf, 0, 3); err != nil {
			return err
		}
		if string(buf) != "over tcp" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeMessage(t *testing.T) {
	const size = 4 << 20 // 4 MB crosses many TCP segments
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, payload, 1, 0)
		}
		buf := make([]byte, size)
		if err := mpi.Recv(c, buf, 0, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, payload) {
			return fmt.Errorf("payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOOrderingSameKey(t *testing.T) {
	const k = 200
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			reqs := make([]mpi.Request, k)
			for i := 0; i < k; i++ {
				reqs[i] = c.Isend([]byte{byte(i)}, 1, 9)
			}
			return mpi.WaitAll(reqs)
		}
		for i := 0; i < k; i++ {
			b := make([]byte, 1)
			if err := mpi.Recv(c, b, 0, 9); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d overtaken by %d", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagRouting(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			if err := mpi.Send(c, []byte("one"), 1, 1); err != nil {
				return err
			}
			return mpi.Send(c, []byte("two"), 1, 2)
		}
		b2 := make([]byte, 3)
		b1 := make([]byte, 3)
		r2 := c.Irecv(b2, 0, 2)
		r1 := c.Irecv(b1, 0, 1)
		if err := mpi.WaitAll([]mpi.Request{r1, r2}); err != nil {
			return err
		}
		if string(b1) != "one" || string(b2) != "two" {
			return fmt.Errorf("tag routing wrong: %q %q", b1, b2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		r := c.Irecv(make([]byte, 4), 0, 0)
		if err := mpi.Send(c, []byte("self"), 0, 0); err != nil {
			//aapc:allow waitcheck the test aborts; the posted receive dies with the world
			return err
		}
		return r.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		err := Run(n, func(c mpi.Comm) error {
			for round := 0; round < 4; round++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestNegativeTagRejected(t *testing.T) {
	comms, closeWorld, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld()
	if err := comms[0].Isend(nil, 1, -5).Wait(); err == nil {
		t.Error("want error for negative send tag")
	}
	if err := comms[0].Irecv(nil, 1, -5).Wait(); err == nil {
		t.Error("want error for negative recv tag")
	}
}

func TestBadRank(t *testing.T) {
	comms, closeWorld, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld()
	if err := comms[0].Isend(nil, 7, 0).Wait(); err == nil {
		t.Error("want error for bad destination")
	}
}

func TestTruncation(t *testing.T) {
	err := Run(2, func(c mpi.Comm) error {
		if c.Rank() == 0 {
			return mpi.Send(c, []byte("long payload"), 1, 0)
		}
		return mpi.Recv(c, make([]byte, 3), 0, 0)
	})
	if err == nil {
		t.Fatal("want truncation error")
	}
}

// TestAlltoallAlgorithmsOverTCP runs every algorithm over real sockets with
// full data verification — the closest this repository gets to the paper's
// LAM/MPI runs.
func TestAlltoallAlgorithmsOverTCP(t *testing.T) {
	g := harness.Fig1()
	ours, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	oursBarrier, err := harness.CompileRoutine(g, alltoall.BarrierSync)
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]alltoall.Func{
		"lam":          alltoall.Simple,
		"mpich":        alltoall.MPICH,
		"bruck":        alltoall.Bruck,
		"ours":         ours.Fn(),
		"ours-barrier": oursBarrier.Fn(),
	}
	const n = 6
	const msize = 2048
	for name, fn := range algos {
		errs := make(chan error, n)
		comms, closeWorld, err := NewWorld(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range comms {
			go func(c mpi.Comm) {
				b := alltoall.NewContig(n, msize)
				for dst := 0; dst < n; dst++ {
					blk := b.SendBlock(dst)
					for i := range blk {
						blk[i] = byte(c.Rank()*31 + dst*7 + i)
					}
				}
				if err := fn(c, b, msize); err != nil {
					errs <- err
					return
				}
				for src := 0; src < n; src++ {
					blk := b.RecvBlock(src)
					for i := range blk {
						if blk[i] != byte(src*31+c.Rank()*7+i) {
							errs <- fmt.Errorf("rank %d: bad byte from %d", c.Rank(), src)
							return
						}
					}
				}
				errs <- nil
			}(c)
		}
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Errorf("%s: %v", name, err)
				break
			}
		}
		closeWorld()
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, _, err := NewWorld(0); err == nil {
		t.Error("want error for zero-size world")
	}
}

func TestNowAdvances(t *testing.T) {
	comms, closeWorld, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld()
	if comms[0].Now() < 0 {
		t.Error("negative time")
	}
}

// TestFailureInjectionClosedWorld verifies error propagation when the
// sockets die under pending operations: every blocked receive must return a
// transport error rather than hang.
func TestFailureInjectionClosedWorld(t *testing.T) {
	comms, closeWorld, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	pending := comms[0].Irecv(make([]byte, 8), 1, 5)
	done := make(chan error, 1)
	go func() { done <- pending.Wait() }()
	// Tear the world down with the receive outstanding.
	if err := closeWorld(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending receive should fail after close")
		}
	case <-timeAfter(t):
		t.Fatal("pending receive hung after close")
	}
	// Operations posted after failure also error out promptly.
	if err := comms[1].Irecv(make([]byte, 8), 0, 9).Wait(); err == nil {
		t.Error("post-failure receive should error")
	}
}

func timeAfter(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(5 * time.Second)
}
