package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Distributed mode: each rank lives in its own process (or goroutine) and
// finds its peers through a rendezvous coordinator, after which the ranks
// form a full TCP mesh exactly like the in-process World. This is the
// deployable analogue of an MPI launcher: start a coordinator for n ranks,
// start n processes that Join it, and run any algorithm over the returned
// Comm.
//
// Rendezvous protocol (all integers little-endian uint32, strings
// length-prefixed):
//
//  1. Each joiner opens its own listener, dials the coordinator and sends
//     its listener address.
//  2. After n joiners, the coordinator assigns ranks in arrival order and
//     sends every joiner its rank, the world size, and all addresses.
//  3. Joiner r dials every peer p < r (sending the usual from/to
//     handshake) and accepts connections from every peer p > r.

// Coordinator is the rendezvous point for one distributed world.
type Coordinator struct {
	ln   net.Listener
	n    int
	done chan error
}

// StartCoordinator listens on addr (e.g. "127.0.0.1:0") for a world of n
// ranks. It returns immediately; rendezvous proceeds in the background and
// Wait reports its outcome.
func StartCoordinator(addr string, n int) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcp: coordinator world size %d", n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{ln: ln, n: n, done: make(chan error, 1)}
	go c.serve()
	return c, nil
}

// Addr returns the coordinator's listen address for joiners.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every rank has been given the address book (or the
// rendezvous failed) and returns the outcome.
func (c *Coordinator) Wait() error { return <-c.done }

// Close stops the coordinator's listener.
func (c *Coordinator) Close() error { return c.ln.Close() }

func (c *Coordinator) serve() {
	defer c.ln.Close()
	type joiner struct {
		conn net.Conn
		addr string
	}
	joiners := make([]joiner, 0, c.n)
	for len(joiners) < c.n {
		conn, err := c.ln.Accept()
		if err != nil {
			c.done <- fmt.Errorf("tcp: coordinator accept: %w", err)
			return
		}
		addr, err := readString(conn)
		if err != nil {
			conn.Close()
			c.done <- fmt.Errorf("tcp: coordinator handshake: %w", err)
			return
		}
		joiners = append(joiners, joiner{conn: conn, addr: addr})
	}
	for rank, j := range joiners {
		if err := writeUint32(j.conn, uint32(rank)); err != nil {
			c.done <- err
			return
		}
		if err := writeUint32(j.conn, uint32(c.n)); err != nil {
			c.done <- err
			return
		}
		for _, peer := range joiners {
			if err := writeString(j.conn, peer.addr); err != nil {
				c.done <- err
				return
			}
		}
		j.conn.Close()
	}
	c.done <- nil
}

// Join connects this process to a distributed world through the coordinator
// and returns its communicator once the full mesh is up. The cleanup
// function closes all sockets.
func Join(coordAddr string) (mpi.Comm, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	coord, err := net.Dial("tcp", coordAddr)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	if err := writeString(coord, ln.Addr().String()); err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	rank32, err := readUint32(coord)
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	n32, err := readUint32(coord)
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	rank, n := int(rank32), int(n32)
	addrs := make([]string, n)
	for i := range addrs {
		if addrs[i], err = readString(coord); err != nil {
			ln.Close()
			coord.Close()
			return nil, nil, err
		}
	}
	coord.Close()

	ep := &endpoint{
		rank:  rank,
		n:     n,
		start: time.Now(),
		conns: make([]net.Conn, n),
		outq:  make([]*outQueue, n),
		matcher: &matcher{
			arrived: make(map[matchKey][][]byte),
			posted:  make(map[matchKey][]*recvOp),
		},
	}
	for p := range ep.outq {
		ep.outq[p] = &outQueue{}
	}

	// Dial lower ranks; accept higher ranks. Run both sides concurrently to
	// avoid rendezvous ordering deadlocks.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for p := 0; p < rank; p++ {
			conn, err := net.Dial("tcp", addrs[p])
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d dialing %d: %w", rank, p, err)
				return
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(rank))
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(p))
			if _, err := conn.Write(hdr[:]); err != nil {
				errs <- err
				return
			}
			ep.conns[p] = conn
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n-1-rank; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d accepting: %w", rank, err)
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errs <- err
				return
			}
			from := int(binary.LittleEndian.Uint32(hdr[0:4]))
			to := int(binary.LittleEndian.Uint32(hdr[4:8]))
			if to != rank || from <= rank || from >= n {
				errs <- fmt.Errorf("tcp: rank %d: bad mesh handshake %d->%d", rank, from, to)
				return
			}
			ep.conns[from] = conn
		}
	}()
	wg.Wait()
	ln.Close()
	select {
	case err := <-errs:
		ep.close()
		return nil, nil, err
	default:
	}
	for p, conn := range ep.conns {
		if p != rank {
			go ep.readLoop(conn, p)
		}
	}
	return &distComm{ep: ep}, ep.close, nil
}

// endpoint is one rank's half of a distributed mesh. It reuses the frame
// format, matcher and ordered outbound queues of the in-process World.
type endpoint struct {
	rank, n int
	start   time.Time
	conns   []net.Conn
	outq    []*outQueue
	matcher *matcher

	closeOnce sync.Once
}

func (ep *endpoint) close() error {
	ep.closeOnce.Do(func() {
		for _, c := range ep.conns {
			if c != nil {
				c.Close()
			}
		}
	})
	return nil
}

func (ep *endpoint) readLoop(conn net.Conn, p int) {
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			ep.matcher.fail(p, fmt.Errorf("tcp: rank %d reading from %d: %w", ep.rank, p, err))
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[0:8])))
		size := int(int64(binary.LittleEndian.Uint64(hdr[8:16])))
		if size < 0 || size > 1<<30 {
			ep.matcher.fail(p, fmt.Errorf("tcp: rank %d: bad frame size %d from %d", ep.rank, size, p))
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			ep.matcher.fail(p, fmt.Errorf("tcp: rank %d reading payload from %d: %w", ep.rank, p, err))
			return
		}
		ep.matcher.deliver(matchKey{src: p, tag: tag}, payload)
	}
}

func (ep *endpoint) drain(p int) {
	q := ep.outq[p]
	conn := ep.conns[p]
	for {
		q.mu.Lock()
		if len(q.frames) == 0 {
			q.draining = false
			q.mu.Unlock()
			return
		}
		fr := q.frames[0]
		q.frames = q.frames[1:]
		q.mu.Unlock()

		var hdr [headerLen]byte
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(int64(fr.tag)))
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(int64(len(fr.buf))))
		if _, err := conn.Write(hdr[:]); err != nil {
			fr.done <- err
			continue
		}
		_, err := conn.Write(fr.buf)
		fr.done <- err
	}
}

// distComm adapts an endpoint to mpi.Comm.
type distComm struct {
	ep         *endpoint
	barrierGen int
}

func (c *distComm) Rank() int    { return c.ep.rank }
func (c *distComm) Size() int    { return c.ep.n }
func (c *distComm) Now() float64 { return time.Since(c.ep.start).Seconds() }

func (c *distComm) isend(buf []byte, dst, tag int) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	if dst == c.ep.rank {
		payload := append([]byte(nil), buf...)
		c.ep.matcher.deliver(matchKey{src: dst, tag: tag}, payload)
		return errRequest{nil}
	}
	fr := &outFrame{tag: tag, buf: buf, done: make(chan error, 1)}
	q := c.ep.outq[dst]
	q.mu.Lock()
	q.frames = append(q.frames, fr)
	if !q.draining {
		q.draining = true
		go c.ep.drain(dst)
	}
	q.mu.Unlock()
	return chanRequest{done: fr.done}
}

func (c *distComm) Isend(buf []byte, dst, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag)
}

func (c *distComm) irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	op := &recvOp{buf: buf, done: make(chan error, 1)}
	c.ep.matcher.post(matchKey{src: src, tag: tag}, op)
	return chanRequest{done: op.done}
}

func (c *distComm) Irecv(buf []byte, src, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.irecv(buf, src, tag)
}

// Barrier is the same dissemination barrier as the in-process transport.
func (c *distComm) Barrier() error {
	n := c.ep.n
	if n == 1 {
		return nil
	}
	gen := c.barrierGen
	c.barrierGen++
	round := 0
	for dist := 1; dist < n; dist <<= 1 {
		tag := -(gen*64 + round + 1)
		dst := (c.ep.rank + dist) % n
		src := (c.ep.rank - dist + n) % n
		sr := c.isend(nil, dst, tag)
		rr := c.irecv(nil, src, tag)
		if err := sr.Wait(); err != nil {
			return err
		}
		if err := rr.Wait(); err != nil {
			return err
		}
		round++
	}
	return nil
}

// Wire helpers.

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeUint32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readUint32(r)
	if err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("tcp: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
