package tcp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
)

// Distributed mode: each rank lives in its own process (or goroutine) and
// finds its peers through a rendezvous coordinator, after which the ranks
// form a full TCP mesh exactly like the in-process World. This is the
// deployable analogue of an MPI launcher: start a coordinator for n ranks,
// start n processes that Join it, and run any algorithm over the returned
// Comm.
//
// Rendezvous protocol (all integers little-endian uint32, strings
// length-prefixed):
//
//  1. Each joiner opens its own listener, dials the coordinator and sends
//     its listener address, its host identity, and whether it can map
//     shared-memory segments.
//  2. After n joiners, the coordinator assigns ranks in arrival order and
//     sends every joiner its rank, the world size, a world token, and all
//     addresses, hosts and shm flags — the host map.
//  3. Joiner r links to every peer: pairs on the same host with shm
//     capability on both sides ride a shared-memory pair segment (the
//     lower rank creates it under the world token, the higher rank
//     attaches), so co-located traffic never touches a socket; everyone
//     else dials (r > p, with the usual from/to handshake) or accepts
//     (r < p) TCP exactly as before.
//
// Failure model: the coordinator tracks joiner health during rendezvous —
// a joiner that disconnects before the world is complete, or a rendezvous
// that exceeds its deadline, triggers a clean abort broadcast (rank
// abortRank) so every waiting joiner errors out instead of hanging.
// JoinRetry dials a not-yet-started coordinator with backoff. Peer failures
// after the mesh is up surface as typed *mpi.RankError through the matcher.

// abortRank is the rank value the coordinator broadcasts to cancel a
// rendezvous.
const abortRank = ^uint32(0)

// Coordinator is the rendezvous point for one distributed world.
type Coordinator struct {
	ln      net.Listener
	n       int
	timeout time.Duration
	done    chan error
}

// CoordinatorOption customizes a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithRendezvousTimeout aborts the rendezvous (with a broadcast to every
// joined rank) if the world is not complete within d. Zero means wait
// forever.
func WithRendezvousTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.timeout = d }
}

// StartCoordinator listens on addr (e.g. "127.0.0.1:0") for a world of n
// ranks. It returns immediately; rendezvous proceeds in the background and
// Wait reports its outcome.
func StartCoordinator(addr string, n int, opts ...CoordinatorOption) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcp: coordinator world size %d", n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{ln: ln, n: n, done: make(chan error, 1)}
	for _, o := range opts {
		o(c)
	}
	go c.serve()
	return c, nil
}

// Addr returns the coordinator's listen address for joiners.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Wait blocks until every rank has been given the address book (or the
// rendezvous failed) and returns the outcome.
func (c *Coordinator) Wait() error { return <-c.done }

// Close stops the coordinator's listener.
func (c *Coordinator) Close() error { return c.ln.Close() }

func (c *Coordinator) serve() {
	defer c.ln.Close()
	type joinMsg struct {
		conn  net.Conn
		addr  string
		host  string
		shmOK bool
		err   error
	}
	// Buffered generously so late accept/handshake goroutines never block
	// after serve has returned.
	joinCh := make(chan joinMsg, 2*c.n+4)
	deathCh := make(chan int, c.n)
	go func() {
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				joinCh <- joinMsg{err: err}
				return
			}
			go func(conn net.Conn) {
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				addr, err := readString(conn)
				var host string
				if err == nil {
					host, err = readString(conn)
				}
				var shmFlag uint32
				if err == nil {
					shmFlag, err = readUint32(conn)
				}
				conn.SetReadDeadline(time.Time{})
				if err != nil {
					conn.Close()
					return
				}
				joinCh <- joinMsg{conn: conn, addr: addr, host: host, shmOK: shmFlag != 0}
			}(conn)
		}
	}()
	var timeoutCh <-chan time.Time
	if c.timeout > 0 {
		tm := time.NewTimer(c.timeout)
		defer tm.Stop()
		timeoutCh = tm.C
	}
	type joiner struct {
		conn  net.Conn
		addr  string
		host  string
		shmOK bool
	}
	joiners := make([]joiner, 0, c.n)
	abort := func(reason error) {
		for _, j := range joiners {
			// Best-effort clean abort broadcast: joiners waiting for their
			// rank read abortRank and fail with a typed error instead of
			// hanging on a closed socket.
			j.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			writeUint32(j.conn, abortRank)
			j.conn.Close()
		}
		c.done <- reason
	}
	for len(joiners) < c.n {
		select {
		case m := <-joinCh:
			if m.err != nil {
				abort(fmt.Errorf("tcp: coordinator accept: %w", m.err))
				return
			}
			idx := len(joiners)
			joiners = append(joiners, joiner{conn: m.conn, addr: m.addr, host: m.host, shmOK: m.shmOK})
			// Health monitor: joiners send nothing after their address, so
			// a successful read — or any error — before rendezvous
			// completion means the joiner is gone.
			go func(conn net.Conn, idx int) {
				var b [1]byte
				conn.Read(b[:])
				deathCh <- idx
			}(m.conn, idx)
		case idx := <-deathCh:
			abort(fmt.Errorf("tcp: joiner %d (of %d joined, world %d) died before rendezvous completed",
				idx, len(joiners), c.n))
			return
		case <-timeoutCh:
			abort(fmt.Errorf("tcp: rendezvous timed out with %d of %d ranks", len(joiners), c.n))
			return
		}
	}
	token := worldToken(c.ln.Addr().String())
	for rank, j := range joiners {
		err := writeUint32(j.conn, uint32(rank))
		if err == nil {
			err = writeUint32(j.conn, uint32(c.n))
		}
		if err == nil {
			err = writeString(j.conn, token)
		}
		for _, peer := range joiners {
			if err != nil {
				break
			}
			err = writeString(j.conn, peer.addr)
		}
		for _, peer := range joiners {
			if err != nil {
				break
			}
			err = writeString(j.conn, peer.host)
		}
		for _, peer := range joiners {
			if err != nil {
				break
			}
			flag := uint32(0)
			if peer.shmOK {
				flag = 1
			}
			err = writeUint32(j.conn, flag)
		}
		if err != nil {
			// A joiner died mid-book: abort the rest so nobody hangs
			// waiting for addresses that will never come.
			abort(fmt.Errorf("tcp: sending address book to rank %d: %w", rank, err))
			return
		}
		j.conn.Close()
	}
	c.done <- nil
}

// JoinOption customizes a Join.
type JoinOption func(*joinConfig)

type joinConfig struct {
	host   string
	useShm bool
}

// WithHostID overrides the host identity advertised to the coordinator.
// Ranks advertising the same identity (and shm capability) link through
// shared-memory pair segments instead of sockets. Defaults to the AAPC_HOST
// environment variable, then os.Hostname.
func WithHostID(host string) JoinOption {
	return func(c *joinConfig) { c.host = host }
}

// WithoutSharedMemory disables shared-memory links for this rank: every
// pair involving it uses TCP even when co-located. The choice is advertised
// through the rendezvous, so both sides of each pair agree.
func WithoutSharedMemory() JoinOption {
	return func(c *joinConfig) { c.useShm = false }
}

// shmLinkRingBytes is the per-direction ring capacity of a distributed
// shared-memory link: a few large frames of headroom so the writer rarely
// stalls behind the reader.
const shmLinkRingBytes = 1 << 20

// shmAttachTimeout bounds the higher rank's wait for the lower rank to
// publish their pair segment.
const shmAttachTimeout = 10 * time.Second

// worldToken derives the filename-safe token namespacing one world's pair
// segments from the coordinator's listen address.
func worldToken(coordAddr string) string {
	h := fnv.New64a()
	h.Write([]byte(coordAddr))
	return fmt.Sprintf("%016x", h.Sum64())
}

// segmentPath names the pair segment file for ranks lo < hi of the world
// identified by token.
func segmentPath(token string, lo, hi int) string {
	return filepath.Join(shm.SegmentDir(), fmt.Sprintf("aapc-pair-%s-%d-%d", token, lo, hi))
}

// hostIdentity resolves the identity advertised to the coordinator.
func hostIdentity(cfg *joinConfig) string {
	if cfg.host != "" {
		return cfg.host
	}
	if h := os.Getenv("AAPC_HOST"); h != "" {
		return h
	}
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "unknown-host"
}

// Join connects this process to a distributed world through the coordinator
// and returns its communicator once the full mesh is up. The cleanup
// function closes all links. Join fails fast if the coordinator is
// unreachable; use JoinRetry to tolerate a coordinator that starts later.
func Join(coordAddr string, opts ...JoinOption) (mpi.Comm, func() error, error) {
	return join(coordAddr, 0, opts...)
}

// JoinRetry is Join with startup retry: dialing the coordinator is retried
// with exponential backoff until it succeeds or the window elapses. Errors
// after the dial (an aborted rendezvous, a failed mesh) are not retried.
func JoinRetry(coordAddr string, window time.Duration, opts ...JoinOption) (mpi.Comm, func() error, error) {
	return join(coordAddr, window, opts...)
}

func join(coordAddr string, retryWindow time.Duration, opts ...JoinOption) (mpi.Comm, func() error, error) {
	cfg := joinConfig{useShm: true}
	for _, o := range opts {
		o(&cfg)
	}
	host := hostIdentity(&cfg)
	shmOK := cfg.useShm && shm.MapAvailable() && os.Getenv("AAPC_SHM") != "0"
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	coord, err := dialRetry(coordAddr, retryWindow)
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	err = writeString(coord, ln.Addr().String())
	if err == nil {
		err = writeString(coord, host)
	}
	if err == nil {
		flag := uint32(0)
		if shmOK {
			flag = 1
		}
		err = writeUint32(coord, flag)
	}
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	rank32, err := readUint32(coord)
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	if rank32 == abortRank {
		ln.Close()
		coord.Close()
		return nil, nil, fmt.Errorf("tcp: rendezvous aborted by coordinator")
	}
	n32, err := readUint32(coord)
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	rank, n := int(rank32), int(n32)
	token, err := readString(coord)
	if err != nil {
		ln.Close()
		coord.Close()
		return nil, nil, err
	}
	addrs := make([]string, n)
	for i := range addrs {
		if addrs[i], err = readString(coord); err != nil {
			ln.Close()
			coord.Close()
			return nil, nil, err
		}
	}
	hosts := make([]string, n)
	for i := range hosts {
		if hosts[i], err = readString(coord); err != nil {
			ln.Close()
			coord.Close()
			return nil, nil, err
		}
	}
	shmFlags := make([]bool, n)
	for i := range shmFlags {
		flag, err := readUint32(coord)
		if err != nil {
			ln.Close()
			coord.Close()
			return nil, nil, err
		}
		shmFlags[i] = flag != 0
	}
	coord.Close()

	// The host map decides each pair's medium from broadcast data alone, so
	// both sides always agree: shared memory when co-located and capable on
	// both ends, TCP otherwise.
	useShm := make([]bool, n)
	for p := 0; p < n; p++ {
		useShm[p] = p != rank && shmFlags[p] && shmFlags[rank] && hosts[p] == hosts[rank]
	}

	ep := &endpoint{
		rank:     rank,
		n:        n,
		start:    time.Now(),
		conns:    make([]net.Conn, n),
		shmLink:  useShm,
		outq:     make([]*outQueue, n),
		recvNext: make([]uint64, n),
	}
	ep.matcher = &matcher{
		pool:    &ep.pool,
		stats:   &ep.stats,
		now:     func() float64 { return time.Since(ep.start).Seconds() },
		arrived: make(map[matchKey][]arrivedMsg),
		posted:  make(map[matchKey][]*recvOp),
	}
	for p := range ep.outq {
		ep.outq[p] = &outQueue{}
	}

	// Create the pair segments this rank owns (the lower rank of each
	// co-located pair) before anything else: attachers poll for them, so
	// publishing first keeps the mesh free of ordering deadlocks.
	for p := rank + 1; p < n; p++ {
		if !useShm[p] {
			continue
		}
		conn, err := shm.CreatePairConn(segmentPath(token, rank, p), shmLinkRingBytes,
			fmt.Sprintf("shm:%d", rank), fmt.Sprintf("shm:%d", p))
		if err != nil {
			ln.Close()
			ep.close()
			return nil, nil, fmt.Errorf("tcp: rank %d creating shm link to %d: %w", rank, p, err)
		}
		ep.conns[p] = conn
		ep.stats.shmLinks.Add(1)
	}

	// Dial lower ranks (attaching shm segments for co-located ones); accept
	// higher ranks over TCP. Run both sides concurrently to avoid
	// rendezvous ordering deadlocks.
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for p := 0; p < rank; p++ {
			if useShm[p] {
				conn, err := shm.OpenPairConn(segmentPath(token, p, rank), shmLinkRingBytes,
					fmt.Sprintf("shm:%d", rank), fmt.Sprintf("shm:%d", p), shmAttachTimeout)
				if err != nil {
					errs <- fmt.Errorf("tcp: rank %d attaching shm link to %d: %w", rank, p, err)
					return
				}
				ep.conns[p] = conn
				ep.stats.shmLinks.Add(1)
				continue
			}
			conn, err := net.Dial("tcp", addrs[p])
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d dialing %d: %w", rank, p, err)
				return
			}
			tuneConn(conn)
			if err := writeHandshake(conn, rank, p, hsInitial); err != nil {
				errs <- err
				return
			}
			ep.conns[p] = conn
		}
	}()
	go func() {
		defer wg.Done()
		expect := 0
		for p := rank + 1; p < n; p++ {
			if !useShm[p] {
				expect++
			}
		}
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errs <- fmt.Errorf("tcp: rank %d accepting: %w", rank, err)
				return
			}
			tuneConn(conn)
			var hdr [handshakeLen]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				errs <- err
				return
			}
			from := int(binary.LittleEndian.Uint32(hdr[0:4]))
			to := int(binary.LittleEndian.Uint32(hdr[4:8]))
			if to != rank || from <= rank || from >= n || useShm[from] {
				errs <- fmt.Errorf("tcp: rank %d: bad mesh handshake %d->%d", rank, from, to)
				return
			}
			ep.conns[from] = conn
		}
	}()
	wg.Wait()
	ln.Close()
	select {
	case err := <-errs:
		ep.close()
		return nil, nil, err
	default:
	}
	for p, conn := range ep.conns {
		if p != rank {
			go ep.readLoop(conn, p)
		}
	}
	return &distComm{ep: ep}, ep.close, nil
}

// dialRetry dials addr, retrying with exponential backoff for up to window
// when window > 0.
func dialRetry(addr string, window time.Duration) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err == nil || window <= 0 {
		return conn, err
	}
	deadline := time.Now().Add(window)
	backoff := 10 * time.Millisecond
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcp: coordinator unreachable after %v: %w", window, err)
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
	}
}

// endpoint is one rank's half of a distributed mesh. It reuses the frame
// format and matcher of the in-process World. Frames carry sequence numbers
// and the receive path discards duplicates, so a future retransmitting peer
// cannot double-match; reconnection itself is currently an in-process World
// feature.
type endpoint struct {
	rank, n int
	start   time.Time
	conns   []net.Conn
	// shmLink[p] marks the link to peer p as a shared-memory pair segment
	// (co-located ranks); false means TCP.
	shmLink []bool
	outq    []*outQueue
	// recvNext[p] is the next sequence number expected from peer p; only
	// p's read loop touches entry p.
	recvNext []uint64
	matcher  *matcher
	// pool recycles receive payloads and self-send copies, exactly like the
	// in-process World's.
	pool bufPool
	// recvOps recycles posted-receive operations, exactly like the
	// in-process World's.
	recvOps recvOpPool
	// stats counts data-plane activity (frames, bytes, vectored writes,
	// duplicate discards); surfaced through distComm.TransportStats.
	stats stats

	closeOnce sync.Once
}

// outQueue orders a rank's outbound frames toward one peer and assigns
// their sequence numbers.
type outQueue struct {
	mu       sync.Mutex
	frames   []*outFrame
	nextSeq  uint64
	draining bool
}

func (ep *endpoint) close() error {
	ep.closeOnce.Do(func() {
		for _, c := range ep.conns {
			if c != nil {
				c.Close()
			}
		}
	})
	return nil
}

func (ep *endpoint) readLoop(conn net.Conn, p int) {
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			ep.matcher.fail(p, &mpi.RankError{Rank: p,
				Err: fmt.Errorf("tcp: rank %d reading from %d: %w", ep.rank, p, err)})
			return
		}
		kind := hdr[0]
		tag := int(int64(binary.LittleEndian.Uint64(hdr[1:9])))
		seq := binary.LittleEndian.Uint64(hdr[9:17])
		size := int(int64(binary.LittleEndian.Uint64(hdr[17:25])))
		ctx := binary.LittleEndian.Uint64(hdr[25:33])
		if size < 0 || size > maxFramePayload {
			ep.matcher.fail(p, &mpi.RankError{Rank: p,
				Err: fmt.Errorf("tcp: rank %d: bad frame size %d from %d", ep.rank, size, p)})
			return
		}
		switch kind {
		case frameAck:
			// Distributed peers do not retransmit yet; acks are ignored.
		case frameData:
			payload := ep.pool.get(size)
			if _, err := io.ReadFull(conn, payload); err != nil {
				ep.pool.put(payload)
				ep.matcher.fail(p, &mpi.RankError{Rank: p,
					Err: fmt.Errorf("tcp: rank %d reading payload from %d: %w", ep.rank, p, err)})
				return
			}
			if seq < ep.recvNext[p] {
				ep.pool.put(payload)
				ep.stats.dupDiscards.Add(1)
				continue // duplicate re-delivery: discard, never double-match
			}
			ep.recvNext[p] = seq + 1
			ep.matcher.deliver(matchKey{src: p, tag: tag}, payload, ctx)
		default:
			ep.matcher.fail(p, &mpi.RankError{Rank: p,
				Err: fmt.Errorf("tcp: rank %d: unknown frame kind %d from %d", ep.rank, kind, p)})
			return
		}
	}
}

// drain flushes the queue toward peer p. Each cycle pops every queued frame
// (up to writerMaxBatch) and issues one vectored write for the whole batch,
// so concurrent senders behind a slow socket coalesce into a single syscall.
func (ep *endpoint) drain(p int) {
	q := ep.outq[p]
	conn := ep.conns[p]
	var (
		batch  []*outFrame
		hdrs   []byte
		iovecs net.Buffers
	)
	for {
		q.mu.Lock()
		if len(q.frames) == 0 {
			q.draining = false
			q.mu.Unlock()
			return
		}
		n := len(q.frames)
		if n > writerMaxBatch {
			n = writerMaxBatch
		}
		batch = append(batch[:0], q.frames[:n]...)
		for i := 0; i < n; i++ {
			q.frames[i] = nil
		}
		q.frames = q.frames[n:]
		q.mu.Unlock()

		if cap(hdrs) < n*headerLen {
			hdrs = make([]byte, n*headerLen)
		}
		hdrs = hdrs[:n*headerLen]
		iovecs = iovecs[:0]
		for i, fr := range batch {
			hdr := hdrs[i*headerLen : (i+1)*headerLen]
			hdr[0] = fr.kind
			binary.LittleEndian.PutUint64(hdr[1:9], uint64(int64(fr.tag)))
			binary.LittleEndian.PutUint64(hdr[9:17], fr.seq)
			binary.LittleEndian.PutUint64(hdr[17:25], uint64(int64(len(fr.buf))))
			binary.LittleEndian.PutUint64(hdr[25:33], fr.ctx)
			iovecs = append(iovecs, hdr)
			if len(fr.buf) > 0 {
				iovecs = append(iovecs, fr.buf)
			}
		}
		// WriteTo consumes the slice it is handed; iovecs itself is rebuilt
		// next cycle from the retained backing array.
		iov := iovecs
		_, err := iov.WriteTo(conn)
		if err == nil {
			ep.stats.writevs.Add(1)
			ep.stats.framesSent.Add(uint64(len(batch)))
			var bytes uint64
			for _, fr := range batch {
				bytes += uint64(len(fr.buf))
			}
			ep.stats.bytesSent.Add(bytes)
			if ep.shmLink != nil && ep.shmLink[p] {
				ep.stats.shmBytesSent.Add(bytes)
			} else {
				ep.stats.tcpBytesSent.Add(bytes)
			}
		}
		for _, fr := range batch {
			if err != nil {
				fr.done <- &mpi.RankError{Rank: p, Err: err}
			} else {
				if fr.ctx != 0 {
					fr.doneAt = time.Since(ep.start).Seconds()
				}
				fr.done <- nil
			}
		}
	}
}

// distComm adapts an endpoint to mpi.Comm.
type distComm struct {
	ep         *endpoint
	barrierGen int
}

func (c *distComm) Rank() int    { return c.ep.rank }
func (c *distComm) Size() int    { return c.ep.n }
func (c *distComm) Now() float64 { return time.Since(c.ep.start).Seconds() }

// Kill simulates the death of this rank's process: all sockets close, so
// every peer's pending and future receives from it fail with a typed
// *mpi.RankError (mpi.Killer).
func (c *distComm) Kill() error { return c.ep.close() }

// TransportStats snapshots this rank's data-plane counters.
// (FramesSent+AcksSent)/Writevs is the write-coalescing factor.
func (c *distComm) TransportStats() Stats { return c.ep.stats.snapshot() }

func (c *distComm) isend(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	if dst == c.ep.rank {
		payload := c.ep.pool.get(len(buf))
		copy(payload, buf)
		if len(buf) > 0 {
			c.ep.stats.payloadCopies.Add(1)
		}
		c.ep.matcher.deliver(matchKey{src: dst, tag: tag}, payload, ctx)
		return errRequest{nil}
	}
	if len(buf) > 0 {
		// The frame references the caller's slice until the vectored write
		// completes — distributed peers do not retransmit, so like the
		// in-process non-resilient mode every send borrows.
		c.ep.stats.borrowedSends.Add(1)
	}
	q := c.ep.outq[dst]
	q.mu.Lock()
	fr := &outFrame{kind: frameData, tag: tag, seq: q.nextSeq, ctx: ctx, buf: buf, done: make(chan error, 1)}
	q.nextSeq++
	q.frames = append(q.frames, fr)
	if !q.draining {
		q.draining = true
		go c.ep.drain(dst)
	}
	q.mu.Unlock()
	return chanRequest{done: fr.done, fr: fr}
}

func (c *distComm) Isend(buf []byte, dst, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag, 0)
}

// IsendTraced attaches a trace context to the outgoing frame
// (mpi.TracedSender); it shares the wire format with the in-process World.
func (c *distComm) IsendTraced(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag, ctx)
}

func (c *distComm) irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	op := c.ep.recvOps.get(buf)
	c.ep.matcher.post(matchKey{src: src, tag: tag}, op)
	return op
}

func (c *distComm) Irecv(buf []byte, src, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.irecv(buf, src, tag)
}

// Barrier is the same dissemination barrier as the in-process transport.
func (c *distComm) Barrier() error {
	n := c.ep.n
	if n == 1 {
		return nil
	}
	gen := c.barrierGen
	c.barrierGen++
	round := 0
	for dist := 1; dist < n; dist <<= 1 {
		tag := -(gen*64 + round + 1)
		dst := (c.ep.rank + dist) % n
		src := (c.ep.rank - dist + n) % n
		sr := c.isend(nil, dst, tag, 0)
		rr := c.irecv(nil, src, tag)
		if err := sr.Wait(); err != nil {
			return err
		}
		if err := rr.Wait(); err != nil {
			return err
		}
		round++
	}
	return nil
}

// Wire helpers.

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeUint32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readUint32(r)
	if err != nil {
		return "", err
	}
	if n > 4096 {
		return "", fmt.Errorf("tcp: unreasonable string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
