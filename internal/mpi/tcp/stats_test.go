package tcp

import (
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// runWorld executes fn on every rank of a fresh world and returns it (still
// open) along with its closer.
func runWorld(t *testing.T, n int, fn func(c mpi.Comm) error, opts ...Option) (*World, func() error) {
	t.Helper()
	comms, closeWorld, err := NewWorld(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("rank error: %v", err)
		}
	}
	// NewWorld's comms share one World; recover it through the first comm.
	return comms[0].(*comm).w, closeWorld
}

// TestStatsCleanRun: on an undisturbed run the traffic counters move and
// every recovery counter stays zero.
func TestStatsCleanRun(t *testing.T) {
	w, closeWorld := runWorld(t, 3, func(c mpi.Comm) error {
		return exchangeAll(c, 256)
	})
	defer closeWorld()
	s := w.Stats()
	if s.FramesSent == 0 || s.BytesSent == 0 || s.AcksSent == 0 {
		t.Errorf("traffic counters did not move: %+v", s)
	}
	if s.recovered() {
		t.Errorf("recovery counters moved on a clean run: %+v", s)
	}
}

// TestStatsUnderFaults: injected connection drops and duplicate frames must
// show up in the world's recovery counters, and closing with a recorder must
// mirror them into obsv counter names.
func TestStatsUnderFaults(t *testing.T) {
	plan, err := faults.ParsePlanString(`
seed 11
drop 0 1 count 2
dup * * prob 0.4
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	rec := obsv.NewRecorder(0)
	w, closeWorld := runWorld(t, 3, func(c mpi.Comm) error {
		for round := 0; round < 3; round++ {
			if err := exchangeAll(c, 512); err != nil {
				return err
			}
		}
		return nil
	}, WithFaults(inj), WithRecorder(rec))
	s := w.Stats()
	if s.Reconnects == 0 {
		t.Errorf("injected drops caused no reconnects: %+v", s)
	}
	if s.Retransmits == 0 {
		t.Errorf("reconnects caused no retransmits: %+v", s)
	}
	if s.DupDiscards == 0 {
		t.Errorf("injected duplicates were never discarded: %+v", s)
	}
	if s.BackoffSleeps == 0 || s.BackoffNanos == 0 {
		t.Errorf("reconnects slept no backoff: %+v", s)
	}
	if err := closeWorld(); err != nil {
		t.Fatal(err)
	}
	// The recorder mirror happens at close.
	got := rec.Counters().Snapshot()
	for _, name := range []string{
		"aapc_tcp_reconnects_total",
		"aapc_tcp_retransmits_total",
		"aapc_tcp_duplicate_discards_total",
		"aapc_tcp_backoff_sleeps_total",
		"aapc_tcp_frames_sent_total",
	} {
		if got[name] == 0 {
			t.Errorf("recorder counter %s = 0 after close; snapshot %v", name, got)
		}
	}
	if sum := rec.Counters().Summary(); !strings.Contains(sum, "aapc_tcp_reconnects_total") {
		t.Errorf("counters summary misses reconnects: %q", sum)
	}
}
