package tcp

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
)

// shmAvailableForTest mirrors the runtime gate Join applies when deciding
// whether co-located pairs may use shared-memory segments.
func shmAvailableForTest() bool {
	return shm.MapAvailable() && os.Getenv("AAPC_SHM") != "0"
}

// joinWorld starts a coordinator and joins n endpoints concurrently (each
// standing in for a separate process). Everything rendezvouses over real
// sockets; co-located pairs then link through shared-memory segments when
// the platform supports it, unless opts say otherwise.
func joinWorld(t *testing.T, n int, opts ...JoinOption) ([]mpi.Comm, func()) {
	t.Helper()
	coord, err := StartCoordinator("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]mpi.Comm, n)
	closers := make([]func() error, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, closeFn, err := Join(coord.Addr(), opts...)
			if err != nil {
				errs <- err
				return
			}
			// Ranks are assigned in arrival order; index by rank.
			comms[c.Rank()] = c
			closers[c.Rank()] = closeFn
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		for _, fn := range closers {
			if fn != nil {
				fn()
			}
		}
	}
	for r, c := range comms {
		if c == nil || c.Rank() != r || c.Size() != n {
			cleanup()
			t.Fatalf("rank assignment broken: %v", comms)
		}
	}
	return comms, cleanup
}

func TestDistributedSendRecv(t *testing.T) {
	comms, cleanup := joinWorld(t, 3)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			next := (c.Rank() + 1) % 3
			prev := (c.Rank() + 2) % 3
			out := []byte{byte(c.Rank())}
			in := make([]byte, 1)
			if err := mpi.Sendrecv(c, out, next, 4, in, prev, 4); err != nil {
				errs <- err
				return
			}
			if in[0] != byte(prev) {
				errs <- fmt.Errorf("rank %d got %d, want %d", c.Rank(), in[0], prev)
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestDistributedBarrierAndSelf(t *testing.T) {
	comms, cleanup := joinWorld(t, 4)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if err := c.Barrier(); err != nil {
					errs <- err
					return
				}
			}
			// Self message through the endpoint matcher.
			r := c.Irecv(make([]byte, 2), c.Rank(), 1)
			if err := mpi.Send(c, []byte("ok"), c.Rank(), 1); err != nil {
				errs <- err
				//aapc:allow waitcheck the test aborts; the posted receive dies with the world
				return
			}
			errs <- r.Wait()
		}(c)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedScheduledAlltoall runs the paper's generated routine across
// the distributed mesh with full data verification — the deployable
// configuration end to end.
func TestDistributedScheduledAlltoall(t *testing.T) {
	g := harness.Fig1()
	routine, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	const msize = 1024
	comms, cleanup := joinWorld(t, n)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			b := alltoall.NewContig(n, msize)
			for dst := 0; dst < n; dst++ {
				blk := b.SendBlock(dst)
				for i := range blk {
					blk[i] = byte(c.Rank()*31 + dst*7 + i)
				}
			}
			if err := routine.Fn()(c, b, msize); err != nil {
				errs <- err
				return
			}
			for src := 0; src < n; src++ {
				blk := b.RecvBlock(src)
				for i := range blk {
					if blk[i] != byte(src*31+c.Rank()*7+i) {
						errs <- fmt.Errorf("rank %d: bad byte from %d", c.Rank(), src)
						return
					}
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedShmLinkSelection checks the host map puts co-located
// pairs on shared-memory segments (bytes flow over shm, not sockets), that
// WithoutSharedMemory forces every pair back to TCP, and that both meshes
// deliver the same traffic.
func TestDistributedShmLinkSelection(t *testing.T) {
	if !shmAvailableForTest() {
		t.Skip("shared-memory segments unsupported on this platform")
	}
	for _, tc := range []struct {
		name    string
		opts    []JoinOption
		wantShm bool
	}{
		{"shm-auto", nil, true},
		{"tcp-forced", []JoinOption{WithoutSharedMemory()}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 3
			comms, cleanup := joinWorld(t, n, tc.opts...)
			defer cleanup()
			var wg sync.WaitGroup
			errs := make(chan error, n)
			for _, c := range comms {
				wg.Add(1)
				go func(c mpi.Comm) {
					defer wg.Done()
					next := (c.Rank() + 1) % n
					prev := (c.Rank() + n - 1) % n
					out := make([]byte, 2048)
					for i := range out {
						out[i] = byte(c.Rank() + i)
					}
					in := make([]byte, 2048)
					if err := mpi.Sendrecv(c, out, next, 8, in, prev, 8); err != nil {
						errs <- err
						return
					}
					for i := range in {
						if in[i] != byte(prev+i) {
							errs <- fmt.Errorf("rank %d: corrupted byte %d", c.Rank(), i)
							return
						}
					}
					errs <- nil
				}(c)
			}
			wg.Wait()
			for i := 0; i < n; i++ {
				if err := <-errs; err != nil {
					t.Fatal(err)
				}
			}
			for _, c := range comms {
				s := c.(*distComm).TransportStats()
				if tc.wantShm {
					if s.ShmLinks != n-1 {
						t.Fatalf("rank %d: %d shm links, want %d", c.Rank(), s.ShmLinks, n-1)
					}
					if s.ShmBytesSent == 0 || s.TCPBytesSent != 0 {
						t.Fatalf("rank %d: byte split shm=%d tcp=%d, want all shm", c.Rank(), s.ShmBytesSent, s.TCPBytesSent)
					}
				} else {
					if s.ShmLinks != 0 || s.ShmBytesSent != 0 {
						t.Fatalf("rank %d: shm used with shm disabled: %+v", c.Rank(), s)
					}
					if s.TCPBytesSent == 0 {
						t.Fatalf("rank %d: no TCP bytes recorded", c.Rank())
					}
				}
			}
		})
	}
}

// TestDistributedMixedHosts advertises two distinct host identities: pairs
// sharing one ride shm, cross-host pairs stay on TCP, and the mesh still
// delivers everything.
func TestDistributedMixedHosts(t *testing.T) {
	if !shmAvailableForTest() {
		t.Skip("shared-memory segments unsupported on this platform")
	}
	const n = 4
	coord, err := StartCoordinator("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]mpi.Comm, n)
	closers := make([]func() error, n)
	var wg sync.WaitGroup
	joinErrs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Arrival order assigns ranks, so hosts interleave arbitrarily;
			// what matters is two ranks per identity.
			c, closeFn, err := Join(coord.Addr(), WithHostID(fmt.Sprintf("node%d", i%2)))
			if err != nil {
				joinErrs <- err
				return
			}
			comms[c.Rank()] = c
			closers[c.Rank()] = closeFn
		}(i)
	}
	wg.Wait()
	select {
	case err := <-joinErrs:
		t.Fatal(err)
	default:
	}
	defer func() {
		for _, fn := range closers {
			if fn != nil {
				fn()
			}
		}
	}()
	errs := make(chan error, n)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			// All-to-all so both shm and TCP pairs carry payload.
			var reqs []mpi.Request
			got := make([][]byte, n)
			for p := 0; p < n; p++ {
				if p == c.Rank() {
					continue
				}
				got[p] = make([]byte, 512)
				reqs = append(reqs, c.Irecv(got[p], p, 2))
			}
			for p := 0; p < n; p++ {
				if p == c.Rank() {
					continue
				}
				out := make([]byte, 512)
				for i := range out {
					out[i] = byte(c.Rank()*13 + i)
				}
				reqs = append(reqs, c.Isend(out, p, 2))
			}
			if err := mpi.WaitAll(reqs); err != nil {
				errs <- err
				return
			}
			for p := 0; p < n; p++ {
				if p == c.Rank() {
					continue
				}
				for i := range got[p] {
					if got[p][i] != byte(p*13+i) {
						errs <- fmt.Errorf("rank %d: corrupted payload from %d", c.Rank(), p)
						return
					}
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range comms {
		s := c.(*distComm).TransportStats()
		if s.ShmLinks != 1 {
			t.Fatalf("rank %d: %d shm links, want 1 (one co-located peer)", c.Rank(), s.ShmLinks)
		}
		if s.ShmBytesSent == 0 || s.TCPBytesSent == 0 {
			t.Fatalf("rank %d: byte split shm=%d tcp=%d, want both non-zero", c.Rank(), s.ShmBytesSent, s.TCPBytesSent)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := StartCoordinator("127.0.0.1:0", 0); err == nil {
		t.Error("want error for zero-rank world")
	}
	if _, _, err := Join("127.0.0.1:1"); err == nil {
		t.Error("want error joining a dead coordinator")
	}
}

func TestDistributedSingleRank(t *testing.T) {
	comms, cleanup := joinWorld(t, 1)
	defer cleanup()
	if err := comms[0].Barrier(); err != nil {
		t.Fatal(err)
	}
}
