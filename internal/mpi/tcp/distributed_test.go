package tcp

import (
	"fmt"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// joinWorld starts a coordinator and joins n endpoints concurrently (each
// standing in for a separate process: Join uses only real sockets, no shared
// memory).
func joinWorld(t *testing.T, n int) ([]mpi.Comm, func()) {
	t.Helper()
	coord, err := StartCoordinator("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]mpi.Comm, n)
	closers := make([]func() error, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, closeFn, err := Join(coord.Addr())
			if err != nil {
				errs <- err
				return
			}
			// Ranks are assigned in arrival order; index by rank.
			comms[c.Rank()] = c
			closers[c.Rank()] = closeFn
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := coord.Wait(); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		for _, fn := range closers {
			if fn != nil {
				fn()
			}
		}
	}
	for r, c := range comms {
		if c == nil || c.Rank() != r || c.Size() != n {
			cleanup()
			t.Fatalf("rank assignment broken: %v", comms)
		}
	}
	return comms, cleanup
}

func TestDistributedSendRecv(t *testing.T) {
	comms, cleanup := joinWorld(t, 3)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			next := (c.Rank() + 1) % 3
			prev := (c.Rank() + 2) % 3
			out := []byte{byte(c.Rank())}
			in := make([]byte, 1)
			if err := mpi.Sendrecv(c, out, next, 4, in, prev, 4); err != nil {
				errs <- err
				return
			}
			if in[0] != byte(prev) {
				errs <- fmt.Errorf("rank %d got %d, want %d", c.Rank(), in[0], prev)
			}
		}(c)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestDistributedBarrierAndSelf(t *testing.T) {
	comms, cleanup := joinWorld(t, 4)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if err := c.Barrier(); err != nil {
					errs <- err
					return
				}
			}
			// Self message through the endpoint matcher.
			r := c.Irecv(make([]byte, 2), c.Rank(), 1)
			if err := mpi.Send(c, []byte("ok"), c.Rank(), 1); err != nil {
				errs <- err
				//aapc:allow waitcheck the test aborts; the posted receive dies with the world
				return
			}
			errs <- r.Wait()
		}(c)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedScheduledAlltoall runs the paper's generated routine across
// the distributed mesh with full data verification — the deployable
// configuration end to end.
func TestDistributedScheduledAlltoall(t *testing.T) {
	g := harness.Fig1()
	routine, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	const msize = 1024
	comms, cleanup := joinWorld(t, n)
	defer cleanup()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for _, c := range comms {
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			b := alltoall.NewContig(n, msize)
			for dst := 0; dst < n; dst++ {
				blk := b.SendBlock(dst)
				for i := range blk {
					blk[i] = byte(c.Rank()*31 + dst*7 + i)
				}
			}
			if err := routine.Fn()(c, b, msize); err != nil {
				errs <- err
				return
			}
			for src := 0; src < n; src++ {
				blk := b.RecvBlock(src)
				for i := range blk {
					if blk[i] != byte(src*31+c.Rank()*7+i) {
						errs <- fmt.Errorf("rank %d: bad byte from %d", c.Rank(), src)
						return
					}
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := StartCoordinator("127.0.0.1:0", 0); err == nil {
		t.Error("want error for zero-rank world")
	}
	if _, _, err := Join("127.0.0.1:1"); err == nil {
		t.Error("want error joining a dead coordinator")
	}
}

func TestDistributedSingleRank(t *testing.T) {
	comms, cleanup := joinWorld(t, 1)
	defer cleanup()
	if err := comms[0].Barrier(); err != nil {
		t.Fatal(err)
	}
}
