package tcp

import (
	"sync"
	"sync/atomic"
)

// Size-classed payload pool. Every buffer the data plane allocates per
// message — receive payloads read off the socket, resilient-mode send
// copies, self-send loopback copies — comes from here and is returned the
// moment its last reader is done with it:
//
//   - a receive payload is returned after copyPayload hands its bytes to the
//     user's Irecv buffer (immediately when the receive was already posted,
//     at match time when the frame waited in the arrived queue);
//   - a duplicate frame discarded by the sequence cursor is returned at once;
//   - a send copy is returned when the cumulative ack prunes it from the
//     retransmit window — never earlier, because rewind() may retransmit any
//     still-unacked frame on a fresh connection epoch. A frame being written
//     when its ack lands is released by the writer once the write completes
//     (outFrame.writing/ackFreed, both guarded by the stream lock).
//
// Classes are powers of two from 64 B to 1 MiB; larger payloads fall back to
// the garbage collector (at that size the copy dwarfs the allocation).
// Freelists are plain mutex-guarded slices rather than sync.Pool: Put on a
// sync.Pool boxes the slice header (one allocation per recycle, exactly what
// the pool exists to remove), and a bounded freelist keeps worst-case memory
// explicit.
const (
	poolMinShift = 6  // 64 B
	poolMaxShift = 20 // 1 MiB
	poolClasses  = poolMaxShift - poolMinShift + 1
	// poolClassCap bounds each class's freelist; overflow is dropped to the
	// GC so a burst cannot pin memory forever.
	poolClassCap = 256
)

// bufPool is one world's payload pool. The zero value is ready to use.
type bufPool struct {
	classes [poolClasses]struct {
		mu   sync.Mutex
		free [][]byte
	}
	// gets/puts/misses are test/diagnostic counters; atomic because they
	// span classes with independent locks.
	stats struct {
		gets   atomic.Uint64
		misses atomic.Uint64
		puts   atomic.Uint64
	}
}

// poolAligned reports whether b's backing array is an exact pool class
// (power-of-two capacity in the pooled range). Such a slice is what get()
// would have handed out anyway, so the send path can borrow it directly
// into a writev batch instead of copying it into a fresh pool buffer —
// worthwhile even for control-sized (≤64B) messages.
func poolAligned(b []byte) bool {
	c := cap(b)
	return c >= 1<<poolMinShift && c <= 1<<poolMaxShift && c&(c-1) == 0
}

// classFor returns the class index whose buffers hold n bytes, or -1 when n
// is out of the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<poolMaxShift {
		return -1
	}
	c := 0
	for s := 1 << poolMinShift; s < n; s <<= 1 {
		c++
	}
	return c
}

// get returns a length-n buffer, recycled when a suitable one is pooled.
// n == 0 returns nil (zero-length frames carry no payload).
//
//aapc:noalloc
func (p *bufPool) get(n int) []byte {
	c := classFor(n)
	if c < 0 {
		if n == 0 {
			return nil
		}
		return make([]byte, n)
	}
	cl := &p.classes[c]
	p.stats.gets.Add(1)
	cl.mu.Lock()
	if k := len(cl.free); k > 0 {
		b := cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	p.stats.misses.Add(1)
	return make([]byte, n, 1<<(poolMinShift+c)) //aapc:allow noalloc pool miss populates the class; steady state hits the freelist
}

// put returns a buffer to its class. Buffers whose capacity is not an exact
// class size (foreign allocations, oversize payloads) are dropped to the GC,
// so put is safe to call on anything.
//
//aapc:noalloc
func (p *bufPool) put(b []byte) {
	c := cap(b)
	if c < 1<<poolMinShift || c > 1<<poolMaxShift || c&(c-1) != 0 {
		return
	}
	cls := 0
	for s := 1 << poolMinShift; s < c; s <<= 1 {
		cls++
	}
	cl := &p.classes[cls]
	p.stats.puts.Add(1)
	cl.mu.Lock()
	if len(cl.free) < poolClassCap {
		cl.free = append(cl.free, b[:0])
	}
	cl.mu.Unlock()
}
