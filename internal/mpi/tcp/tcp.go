// Package tcp provides an mpi transport over real loopback TCP sockets: one
// connection per rank pair, length-prefixed frames, and a dissemination
// barrier built from the transport's own messages. Among the repository's
// transports it is the closest analogue to the paper's LAM/MPI-over-Ethernet
// stack — bytes really cross the kernel's network path — while still running
// in a single process.
//
// The transport is resilient by default: every data frame carries a
// per-pair sequence number, receivers acknowledge delivery, and a broken
// pair socket is redialed with bounded exponential backoff + jitter while
// unacknowledged frames are retransmitted. Sequence numbers make
// re-delivery idempotent — a retried frame that already arrived is
// discarded, never double-matched. A pair that cannot be reconnected (or a
// rank killed through KillRank) fails closed: every operation naming the
// dead peer returns a typed *mpi.RankError instead of hanging.
//
// User tags must be non-negative; negative tags are reserved for the
// barrier protocol.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// Frame wire format: kind (1 byte) | tag (int64) | seq (uint64) |
// payload length (int64) | trace ctx (uint64) | payload. Ack frames carry
// the cumulative ack in seq (every data frame with a smaller sequence
// number has been delivered) and no payload or trace context (ctx 0).
// The trace context is an opaque causal identifier (mpi.MakeTraceCtx)
// handed to the matching receiver; retransmissions repeat the original
// frame verbatim, context included, and the duplicate-discard below the
// matcher keeps re-deliveries from ever reaching a receive twice.
const headerLen = 33

const (
	frameData byte = 0
	frameAck  byte = 1
)

// Pair handshake: from (uint32) | to (uint32) | flags (uint32).
const (
	handshakeLen           = 12
	hsInitial       uint32 = 0
	hsReconnect     uint32 = 1
	maxFramePayload        = 1 << 30
)

// Resilience holds the reconnect/retransmit knobs of a world.
type Resilience struct {
	// MaxReconnects bounds redial attempts per connection break.
	MaxReconnects int
	// BackoffBase is the first redial delay; attempt k waits
	// BackoffBase<<k, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the redial delay.
	BackoffMax time.Duration
	// Jitter is the random fraction (0..1) added to or subtracted from each
	// backoff delay to avoid lock-step retry storms.
	Jitter float64
	// RetransmitLimit bounds the unacknowledged frames buffered per
	// directed pair; exceeding it fails the pair instead of growing
	// without bound.
	RetransmitLimit int
}

// DefaultResilience returns the default reconnect policy.
func DefaultResilience() Resilience {
	return Resilience{
		MaxReconnects:   6,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      250 * time.Millisecond,
		Jitter:          0.25,
		RetransmitLimit: 1 << 14,
	}
}

// Config collects the tunable behaviour of a World.
type Config struct {
	// OpDeadline, when positive, bounds every wait inside Barrier and is
	// the default deadline handed to WaitTimeout-aware callers. Zero means
	// unbounded.
	OpDeadline time.Duration
	// Resilient enables sequence numbers, acks, retransmission and
	// reconnect. On by default.
	Resilient bool
	// Res holds the reconnect knobs (used only when Resilient).
	Res Resilience
	// Faults, when non-nil, is consulted once per outbound data frame
	// (first transmission only) to inject delays, connection drops and
	// duplicates.
	Faults mpi.FaultInjector
	// Recorder, when non-nil, receives the world's recovery counters
	// (mirrored at close) so they show up on the obsv metrics endpoint.
	Recorder *obsv.Recorder
}

// Option customizes a World.
type Option func(*Config)

// WithOpDeadline bounds every barrier wait by d and makes the world's
// requests honor it as their default deadline.
func WithOpDeadline(d time.Duration) Option {
	return func(c *Config) { c.OpDeadline = d }
}

// WithFaults installs a fault injector consulted per outbound data frame.
func WithFaults(inj mpi.FaultInjector) Option {
	return func(c *Config) { c.Faults = inj }
}

// WithResilience overrides the reconnect policy.
func WithResilience(r Resilience) Option {
	return func(c *Config) { c.Resilient = true; c.Res = r }
}

// WithoutResilience disables sequence numbers, acks and reconnects: a
// broken pair socket immediately fails the pair, as a plain transport
// would.
func WithoutResilience() Option {
	return func(c *Config) { c.Resilient = false }
}

// WithRecorder mirrors the world's transport counters into r when the world
// closes, so recovery activity appears alongside the communication metrics
// on an obsv endpoint.
func WithRecorder(r *obsv.Recorder) Option {
	return func(c *Config) { c.Recorder = r }
}

// Stats is a snapshot of a world's transport counters: traffic volume plus
// every recovery action the resilience layer took. On a healthy loopback run
// the recovery counters stay zero; under injected faults or real socket
// trouble they quantify how hard the transport worked to hide it.
type Stats struct {
	// FramesSent and AcksSent count successfully written frames (including
	// retransmissions and injected duplicates); BytesSent is the payload
	// volume of the data frames among them.
	FramesSent uint64
	AcksSent   uint64
	BytesSent  uint64
	// Writevs counts vectored write calls. (FramesSent+AcksSent)/Writevs is
	// the write-coalescing factor: how many frames each syscall carried.
	Writevs uint64
	// Reconnects counts successful pair redials; ReconnectFailures counts
	// pairs that exhausted their redial budget and failed terminally.
	Reconnects        uint64
	ReconnectFailures uint64
	// Retransmits counts data frames rewritten after a reconnect.
	Retransmits uint64
	// DupDiscards counts received data frames dropped by the sequence
	// cursor as already-delivered (retransmission or injected duplicate).
	DupDiscards uint64
	// BackoffSleeps and BackoffNanos account the time spent waiting between
	// redial attempts.
	BackoffSleeps uint64
	BackoffNanos  uint64
	// BorrowedSends counts data frames whose payload was borrowed from the
	// caller's buffer straight into the writev batch (zero send-side
	// copies); CopiedSends counts frames that went through a pooled send
	// copy instead (small, non-pool-aligned buffers).
	BorrowedSends uint64
	CopiedSends   uint64
	// PayloadCopies counts userspace copies of payload bytes anywhere on
	// the data path: pooled send copies, self-send loopback packs, and
	// match-time copies of frames that arrived before their receive was
	// posted. On a steady-state scheduled run with pre-posted receives and
	// borrowed sends it stays zero.
	PayloadCopies uint64
	// ZeroCopyRecvs counts data frames whose payload was read off the
	// socket directly into the posted receive buffer (no staging copy).
	ZeroCopyRecvs uint64
	// ShmLinks counts mesh links riding shared-memory pair segments
	// instead of sockets (distributed mode with co-located ranks);
	// ShmBytesSent and TCPBytesSent split the distributed payload volume
	// by link kind. All three stay zero for in-process worlds.
	ShmLinks     uint64
	ShmBytesSent uint64
	TCPBytesSent uint64
}

// recovered reports whether any resilience machinery fired.
func (s Stats) recovered() bool {
	return s.Reconnects+s.ReconnectFailures+s.Retransmits+s.DupDiscards+s.BackoffSleeps > 0
}

// stats holds the world's counters; all fields are updated atomically.
type stats struct {
	framesSent        atomic.Uint64
	acksSent          atomic.Uint64
	bytesSent         atomic.Uint64
	writevs           atomic.Uint64
	reconnects        atomic.Uint64
	reconnectFailures atomic.Uint64
	retransmits       atomic.Uint64
	dupDiscards       atomic.Uint64
	backoffSleeps     atomic.Uint64
	backoffNanos      atomic.Uint64
	borrowedSends     atomic.Uint64
	copiedSends       atomic.Uint64
	payloadCopies     atomic.Uint64
	zeroCopyRecvs     atomic.Uint64
	shmLinks          atomic.Uint64
	shmBytesSent      atomic.Uint64
	tcpBytesSent      atomic.Uint64
}

func (st *stats) snapshot() Stats {
	return Stats{
		FramesSent:        st.framesSent.Load(),
		AcksSent:          st.acksSent.Load(),
		BytesSent:         st.bytesSent.Load(),
		Writevs:           st.writevs.Load(),
		Reconnects:        st.reconnects.Load(),
		ReconnectFailures: st.reconnectFailures.Load(),
		Retransmits:       st.retransmits.Load(),
		DupDiscards:       st.dupDiscards.Load(),
		BackoffSleeps:     st.backoffSleeps.Load(),
		BackoffNanos:      st.backoffNanos.Load(),
		BorrowedSends:     st.borrowedSends.Load(),
		CopiedSends:       st.copiedSends.Load(),
		PayloadCopies:     st.payloadCopies.Load(),
		ZeroCopyRecvs:     st.zeroCopyRecvs.Load(),
		ShmLinks:          st.shmLinks.Load(),
		ShmBytesSent:      st.shmBytesSent.Load(),
		TCPBytesSent:      st.tcpBytesSent.Load(),
	}
}

// World is a set of ranks connected pairwise by loopback TCP.
type World struct {
	n     int
	start time.Time
	cfg   Config
	stats stats
	// pool recycles per-message payload buffers (receive payloads, send
	// copies, self-send loopback copies) across the whole world.
	pool bufPool
	// recvOps recycles posted-receive operations across the whole world.
	recvOps recvOpPool

	listener net.Listener
	addr     string
	matchers []*matcher
	// streams[r][p] is rank r's outbound stream toward peer p (nil on the
	// diagonal). It also holds r's receive cursor for frames from p.
	streams [][]*sendStream
	// links[lo][hi] (lo < hi) is the shared connection state of the pair.
	links [][]*link

	deadMu sync.Mutex
	dead   map[int]error

	setupMu   sync.Mutex
	setupCh   chan accepted
	setupDone bool

	reconnMu   sync.Mutex
	reconnWait map[pairID]chan net.Conn

	closed    chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

type pairID struct{ lo, hi int }

type accepted struct {
	conn net.Conn
	from int
	to   int
	err  error
}

// Link states.
const (
	linkUp = iota
	linkReconnecting
	linkDown
)

// link is the shared connection of one unordered rank pair. Both ends of
// the single TCP connection live in this process: connLo belongs to the
// lower rank, connHi to the higher. epoch increments on every reconnect so
// stale readers/writers can detect they raced a replacement.
type link struct {
	lo, hi int
	mu     sync.Mutex
	cond   *sync.Cond
	epoch  int
	connLo net.Conn
	connHi net.Conn
	state  int
	err    error
	// readers tracks the pair's live read loops. A reconnect waits for the
	// old epoch's readers to exit (their sockets are already closed) before
	// installing the new connection: the receive cursor is advanced outside
	// the stream lock — after the payload lands in user memory — so at most
	// one reader per direction may ever be processing frames.
	readers sync.WaitGroup
}

// acquire returns the current connection end for rank self, blocking while
// the pair is being reconnected.
func (lk *link) acquire(self int) (net.Conn, int, error) {
	lk.mu.Lock()
	defer lk.mu.Unlock()
	for lk.state == linkReconnecting {
		lk.cond.Wait()
	}
	if lk.state == linkDown {
		return nil, 0, lk.err
	}
	if self == lk.lo {
		return lk.connLo, lk.epoch, nil
	}
	return lk.connHi, lk.epoch, nil
}

// outFrame is one queued outbound frame. Completion (done, data frames
// only) depends on who owns the payload memory:
//
//   - copied frames (small, non-pool-aligned buffers in resilient mode)
//     complete on the first successful write — the pooled copy makes the
//     caller's buffer reusable immediately, and delivery is guaranteed by
//     retransmitting the copy;
//   - borrowed frames (the zero-copy path: the caller's slice rides the
//     writev batch directly) complete only when the cumulative ack retires
//     them. Until then MPI's no-modify rule keeps the borrowed bytes
//     stable, so a post-reconnect retransmission can resend them verbatim —
//     no copy-on-rewind is ever needed;
//   - in non-resilient mode every frame borrows and completes at write, as
//     a plain transport would.
type outFrame struct {
	kind byte
	tag  int
	seq  uint64
	// ctx is the causal trace context carried in the frame header (0 =
	// untraced). Retransmissions reuse the frame, so the context survives
	// re-delivery unchanged.
	ctx uint64
	// doneAt is the sender-local completion timestamp (seconds since the
	// world/endpoint epoch), stamped just before done is signalled on traced
	// data frames. It is the sender's honest "my bytes left at T" mark — a
	// request whose Wait is drained much later must not misreport its send
	// as having lasted until the drain. The channel send orders the write
	// before any WaitTraced read.
	doneAt float64
	// buf is the contiguous payload. Strided frames (non-contig datatype
	// sends) leave buf nil and carry base+dt instead: buildIovecs emits one
	// iovec per block, gathering the strided layout straight off the user's
	// matrix with no pack buffer.
	buf  []byte
	base []byte
	dt   mpi.Datatype
	// size is the payload length on the wire (len(buf) or dt.Size()).
	size      int
	done      chan error
	completed bool
	consulted bool // fault injector consulted (first transmission)
	// poolable marks buf as owned by the world's payload pool: it is
	// returned there when the cumulative ack prunes the frame (never
	// earlier — rewind may retransmit any still-unacked frame).
	poolable bool
	// borrowed marks the payload as caller-owned memory: completion is
	// deferred to the cumulative ack (see the type comment).
	borrowed bool
	// written records at least one fully successful write. When the stream
	// fails terminally, a written borrowed frame completes with nil — the
	// copy path completed at exactly that point, and send completion never
	// promised delivery — while an unwritten one fails typed.
	written bool
	// writing marks the frame as part of the writer's in-flight batch; the
	// ack path must not release its buffer underneath the write. Guarded by
	// the stream mutex.
	writing bool
	// ackFreed records that the ack pruned the frame while it was being
	// written; the writer releases the buffer when the write completes.
	ackFreed bool
}

// sendStream orders rank src's outbound frames toward dst and tracks the
// retransmit window. recvNext is the unrelated-but-colocated receive
// cursor: the next sequence number rank src expects FROM dst, kept here so
// the read loop and ack path share one lock per directed pair.
type sendStream struct {
	src, dst int
	mu       sync.Mutex
	cond     *sync.Cond
	nextSeq  uint64
	// queue[qhead:] is the pending-frame FIFO. Popping advances qhead (the
	// slot is nilled); when the queue drains both reset to zero, so the
	// backing array is reused instead of reallocated by every append that
	// follows a front-advance.
	queue    []*outFrame
	qhead    int
	unacked  []*outFrame
	resend   int // index into unacked to retransmit from
	recvNext uint64
	// ackUpTo/ackDirty coalesce outbound cumulative acks: the read loop
	// notes the newest value, the writer piggybacks at most one ack frame
	// per vectored write. Values are monotonic, so collapsing a backlog of
	// acks into the latest one loses nothing.
	ackUpTo  uint64
	ackDirty bool
	// rewinds counts rewind() calls. The writer snapshots it when it
	// collects a batch and aborts the write if it changed while blocked in
	// acquire: a reconnect happened, and the batch's frames must now be
	// preceded by the retransmissions the rewind scheduled.
	rewinds uint64
	// enq counts frames accepted into the queue; wrote counts frames that
	// have completed at least one full socket write. comm.Flush waits for
	// wrote to catch up with enq's value at call time: "everything I sent
	// has been handed to the kernel", a much cheaper ordering point than
	// delivery-acknowledged completion.
	enq    uint64
	wrote  uint64
	failed error
	closed bool
}

// hasWorkLocked reports whether the writer has anything to write. Caller
// holds st.mu.
func (st *sendStream) hasWorkLocked() bool {
	return st.resend < len(st.unacked) || st.qhead < len(st.queue) || st.ackDirty
}

// matcher pairs incoming frames with posted receives for one rank.
type matcher struct {
	// pool, when non-nil, receives payload buffers back once their bytes
	// have been copied into the user's receive buffer.
	pool *bufPool
	// stats, when non-nil, counts match-time payload copies (frames that
	// arrived before their receive was posted and had to be staged).
	stats *stats
	// now reads the world clock (Comm.Now seconds). Used to stamp the
	// delivery time of traced frames only, so the untraced path stays free
	// of clock reads.
	now func() float64

	mu sync.Mutex
	// arrived holds frames with no posted receive yet, FIFO per key.
	arrived map[matchKey][]arrivedMsg
	// posted holds receives with no arrived frame yet, FIFO per key.
	posted map[matchKey][]*recvOp
	// srcErr holds sticky per-source transport errors: a dead peer fails
	// only the receives naming it, not traffic from healthy peers.
	srcErr map[int]error
}

// arrivedMsg is a delivered frame waiting for its receive: the payload plus
// the trace context it carried and its delivery timestamp (stamped only
// when traced, so a late-posted receive still learns the true arrival
// time, not its own post time).
type arrivedMsg struct {
	payload []byte
	ctx     uint64
	at      float64
}

type matchKey struct {
	src int
	tag int
}

// recvOp is one posted receive. It doubles as the request handed back to
// the caller: Wait consumes the completion and recycles the op (and its
// one-slot channel) through its pool, so a steady stream of receives reuses
// a small set of op/channel pairs instead of allocating per message. Ops
// abandoned by a WaitTimeout timeout are never recycled: a late delivery
// may still write their buffer and channel.
type recvOp struct {
	pool *recvOpPool // nil: the op falls to the GC instead
	buf  []byte
	// dt, when non-zero and non-contiguous, describes the strided layout of
	// buf that incoming payload bytes are scattered into. Contiguous typed
	// receives are normalized to a plain buf at post time.
	dt   mpi.Datatype
	done chan error
	// ctx/deliveredAt carry the matched frame's trace context and delivery
	// time. Written by the matcher before the done send, read by WaitTraced
	// after the done receive (and before recycling), so the channel orders
	// the accesses.
	ctx         uint64
	deliveredAt float64
}

func (o *recvOp) Wait() error {
	err := <-o.done
	if o.pool != nil {
		o.pool.put(o)
	}
	return err
}

// WaitTraced waits and returns the sender's trace context and the frame's
// delivery time (mpi.TracedRequest). The info is read before the op is
// recycled — reading it after Wait would race the freelist.
func (o *recvOp) WaitTraced() (mpi.TraceInfo, error) {
	err := <-o.done
	info := mpi.TraceInfo{Ctx: o.ctx, DeliveredAt: o.deliveredAt}
	if o.pool != nil {
		o.pool.put(o)
	}
	return info, err
}

// WaitTimeout bounds the wait (mpi.TimedRequest). The operation is
// abandoned on timeout: its buffer must not be reused and the op is left to
// the garbage collector rather than recycled.
func (o *recvOp) WaitTimeout(d time.Duration) error {
	if d <= 0 {
		return o.Wait()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-o.done:
		if o.pool != nil {
			o.pool.put(o)
		}
		return err
	case <-t.C:
		return &mpi.TimeoutError{Op: "wait", After: d}
	}
}

// WaitTracedTimeout bounds WaitTraced (mpi.TracedTimedRequest). On timeout
// the op is abandoned like WaitTimeout and the info is zero.
func (o *recvOp) WaitTracedTimeout(d time.Duration) (mpi.TraceInfo, error) {
	if d <= 0 {
		return o.WaitTraced()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-o.done:
		info := mpi.TraceInfo{Ctx: o.ctx, DeliveredAt: o.deliveredAt}
		if o.pool != nil {
			o.pool.put(o)
		}
		return info, err
	case <-t.C:
		return mpi.TraceInfo{}, &mpi.TimeoutError{Op: "wait", After: d}
	}
}

// recvOpFreeCap bounds a recvOp freelist; beyond it ops fall to the GC.
const recvOpFreeCap = 1024

// recvOpPool recycles receive operations. An op is recycled only when Wait
// consumes its completion — the one point where provably neither the
// matcher nor the caller references it anymore.
type recvOpPool struct {
	mu   sync.Mutex
	free []*recvOp
}

func (p *recvOpPool) get(buf []byte) *recvOp {
	p.mu.Lock()
	if k := len(p.free); k > 0 {
		o := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.mu.Unlock()
		o.buf = buf
		return o
	}
	p.mu.Unlock()
	return &recvOp{pool: p, buf: buf, done: make(chan error, 1)}
}

func (p *recvOpPool) put(o *recvOp) {
	o.buf = nil
	o.dt = mpi.Datatype{}
	o.ctx = 0
	o.deliveredAt = 0
	p.mu.Lock()
	if len(p.free) < recvOpFreeCap {
		p.free = append(p.free, o)
	}
	p.mu.Unlock()
}

// NewWorld builds an n-rank world over loopback TCP. The returned cleanup
// function closes every socket and waits for all transport goroutines to
// exit; it must be called exactly once.
func NewWorld(n int, opts ...Option) ([]mpi.Comm, func() error, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("tcp: world size %d", n)
	}
	cfg := Config{Resilient: true, Res: DefaultResilience()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.Res.MaxReconnects < 1 {
		cfg.Res.MaxReconnects = 1
	}
	if cfg.Res.RetransmitLimit < 1 {
		cfg.Res.RetransmitLimit = DefaultResilience().RetransmitLimit
	}
	w := &World{
		n:          n,
		start:      time.Now(),
		cfg:        cfg,
		dead:       make(map[int]error),
		reconnWait: make(map[pairID]chan net.Conn),
		closed:     make(chan struct{}),
	}
	w.matchers = make([]*matcher, n)
	w.streams = make([][]*sendStream, n)
	for r := 0; r < n; r++ {
		w.matchers[r] = &matcher{
			pool:    &w.pool,
			stats:   &w.stats,
			now:     func() float64 { return time.Since(w.start).Seconds() },
			arrived: make(map[matchKey][]arrivedMsg),
			posted:  make(map[matchKey][]*recvOp),
			srcErr:  make(map[int]error),
		}
		w.streams[r] = make([]*sendStream, n)
		for p := 0; p < n; p++ {
			if p == r {
				continue
			}
			st := &sendStream{src: r, dst: p}
			st.cond = sync.NewCond(&st.mu)
			w.streams[r][p] = st
		}
	}
	w.links = make([][]*link, n)
	for lo := 0; lo < n; lo++ {
		w.links[lo] = make([]*link, n)
		for hi := lo + 1; hi < n; hi++ {
			lk := &link{lo: lo, hi: hi}
			lk.cond = sync.NewCond(&lk.mu)
			w.links[lo][hi] = lk
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	w.listener = ln
	w.addr = ln.Addr().String()
	pairs := n * (n - 1) / 2
	w.setupCh = make(chan accepted, pairs)
	w.wg.Add(1)
	go w.acceptLoop()

	// Establish one connection per pair: the higher rank dials with a
	// (from, to, initial) handshake; the accept path routes accordingly.
	for hi := 1; hi < n; hi++ {
		for lo := 0; lo < hi; lo++ {
			conn, err := net.Dial("tcp", w.addr)
			if err != nil {
				w.close()
				return nil, nil, err
			}
			tuneConn(conn)
			if err := writeHandshake(conn, hi, lo, hsInitial); err != nil {
				conn.Close()
				w.close()
				return nil, nil, err
			}
			w.links[lo][hi].connHi = conn
		}
	}
	for i := 0; i < pairs; i++ {
		select {
		case a := <-w.setupCh:
			if a.err != nil {
				w.close()
				return nil, nil, a.err
			}
			if a.from <= a.to || a.from >= n || a.to < 0 {
				w.close()
				return nil, nil, fmt.Errorf("tcp: bad handshake %d->%d", a.from, a.to)
			}
			w.links[a.to][a.from].connLo = a.conn
		case <-time.After(10 * time.Second):
			w.close()
			return nil, nil, fmt.Errorf("tcp: world setup timed out")
		}
	}
	w.setupMu.Lock()
	w.setupDone = true
	w.setupMu.Unlock()

	// One reader per connection end, one writer per directed pair.
	for lo := 0; lo < n; lo++ {
		for hi := lo + 1; hi < n; hi++ {
			lk := w.links[lo][hi]
			w.wg.Add(2)
			lk.readers.Add(2)
			go w.readLoop(lo, hi, lk.connLo, 0)
			go w.readLoop(hi, lo, lk.connHi, 0)
		}
	}
	for r := 0; r < n; r++ {
		for p := 0; p < n; p++ {
			if p != r {
				w.wg.Add(1)
				go w.writer(w.streams[r][p])
			}
		}
	}

	comms := make([]mpi.Comm, n)
	for r := range comms {
		comms[r] = &comm{w: w, rank: r}
	}
	return comms, w.close, nil
}

// Stats snapshots the world's transport counters. Safe to call at any time,
// including after close.
func (w *World) Stats() Stats { return w.stats.snapshot() }

func (w *World) linkFor(a, b int) *link {
	if a > b {
		a, b = b, a
	}
	return w.links[a][b]
}

// sockBufSize is the requested kernel socket buffer size per direction.
// One full-window burst of large frames fits in the send buffer, so a
// 64 KiB writev completes in one syscall instead of trickling out at the
// default buffer's pace, and the receiver drains whole frames per wakeup.
const sockBufSize = 1 << 20

// tuneConn applies the data-plane socket options to a freshly established
// connection: TCP_NODELAY so the 33-byte ack and sync frames the scheduled
// algorithm's pairwise synchronization rides on are never Nagle-delayed
// behind an unacked large frame, and enlarged kernel buffers (see
// sockBufSize). Best effort: a conn type without the knobs (tests, exotic
// stacks) is used as-is.
func tuneConn(conn net.Conn) net.Conn {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		tc.SetReadBuffer(sockBufSize)
		tc.SetWriteBuffer(sockBufSize)
	}
	return conn
}

func writeHandshake(conn net.Conn, from, to int, flags uint32) error {
	var hdr [handshakeLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(from))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(to))
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	_, err := conn.Write(hdr[:])
	return err
}

// acceptLoop accepts pair connections for the lifetime of the world:
// during setup it feeds the initial mesh, afterwards it routes reconnect
// handshakes to the waiting reconnector.
func (w *World) acceptLoop() {
	defer w.wg.Done()
	for {
		conn, err := w.listener.Accept()
		if err != nil {
			// Listener closed: if setup is still in flight, unblock it.
			w.setupMu.Lock()
			if !w.setupDone {
				select {
				case w.setupCh <- accepted{err: err}:
				default:
				}
			}
			w.setupMu.Unlock()
			return
		}
		tuneConn(conn)
		w.wg.Add(1)
		go w.handleHandshake(conn)
	}
}

func (w *World) handleHandshake(conn net.Conn) {
	defer w.wg.Done()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [handshakeLen]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	from := int(binary.LittleEndian.Uint32(hdr[0:4]))
	to := int(binary.LittleEndian.Uint32(hdr[4:8]))
	flags := binary.LittleEndian.Uint32(hdr[8:12])
	if from < 0 || from >= w.n || to < 0 || to >= w.n || from == to {
		conn.Close()
		return
	}
	switch flags {
	case hsInitial:
		w.setupMu.Lock()
		done := w.setupDone
		w.setupMu.Unlock()
		if done {
			conn.Close()
			return
		}
		w.setupCh <- accepted{conn: conn, from: from, to: to}
	case hsReconnect:
		lo, hi := to, from
		if lo > hi {
			lo, hi = hi, lo
		}
		w.reconnMu.Lock()
		ch := w.reconnWait[pairID{lo, hi}]
		w.reconnMu.Unlock()
		if ch == nil {
			conn.Close()
			return
		}
		select {
		case ch <- conn:
		default:
			conn.Close()
		}
	default:
		conn.Close()
	}
}

func (w *World) close() error {
	w.closeOnce.Do(func() {
		close(w.closed)
		if w.listener != nil {
			w.closeErr = w.listener.Close()
		}
		errClosed := fmt.Errorf("tcp: world closed")
		for lo := 0; lo < w.n; lo++ {
			for hi := lo + 1; hi < w.n; hi++ {
				lk := w.links[lo][hi]
				lk.mu.Lock()
				if lk.state != linkDown {
					lk.state = linkDown
					lk.err = errClosed
					if lk.connLo != nil {
						lk.connLo.Close()
					}
					if lk.connHi != nil {
						lk.connHi.Close()
					}
					lk.cond.Broadcast()
				}
				lk.mu.Unlock()
				w.failPair(lk, errClosed, -1)
			}
		}
		w.wg.Wait()
		s := w.stats.snapshot()
		if s.recovered() {
			// One line, only when the resilience layer actually did work:
			// silence means a clean run.
			log.Printf("tcp: world closed after recovery activity: "+
				"reconnects=%d reconnect_failures=%d retransmits=%d dup_discards=%d backoff_sleeps=%d backoff=%s",
				s.Reconnects, s.ReconnectFailures, s.Retransmits, s.DupDiscards,
				s.BackoffSleeps, time.Duration(s.BackoffNanos))
		}
		if r := w.cfg.Recorder; r != nil {
			c := r.Counters()
			c.Add("aapc_tcp_frames_sent_total", s.FramesSent)
			c.Add("aapc_tcp_acks_sent_total", s.AcksSent)
			c.Add("aapc_tcp_payload_bytes_sent_total", s.BytesSent)
			c.Add("aapc_tcp_reconnects_total", s.Reconnects)
			c.Add("aapc_tcp_reconnect_failures_total", s.ReconnectFailures)
			c.Add("aapc_tcp_retransmits_total", s.Retransmits)
			c.Add("aapc_tcp_duplicate_discards_total", s.DupDiscards)
			c.Add("aapc_tcp_backoff_sleeps_total", s.BackoffSleeps)
			c.Add("aapc_tcp_backoff_nanoseconds_total", s.BackoffNanos)
			c.Add("aapc_tcp_borrowed_sends_total", s.BorrowedSends)
			c.Add("aapc_tcp_copied_sends_total", s.CopiedSends)
			c.Add("aapc_tcp_payload_copies_total", s.PayloadCopies)
			c.Add("aapc_tcp_zerocopy_recvs_total", s.ZeroCopyRecvs)
		}
	})
	return w.closeErr
}

func (w *World) isClosed() bool {
	select {
	case <-w.closed:
		return true
	default:
		return false
	}
}

// firstDead returns the lower-numbered dead rank among the two, or -1.
func (w *World) firstDead(a, b int) int {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	if _, ok := w.dead[a]; ok {
		return a
	}
	if _, ok := w.dead[b]; ok {
		return b
	}
	return -1
}

func (w *World) rankDead(r int) error {
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	return w.dead[r]
}

// KillRank simulates the death of rank r: every pair involving r is torn
// down terminally and every pending or future operation naming r — on any
// rank — fails with a *mpi.RankError. Killing an already-dead rank is a
// no-op.
func (w *World) KillRank(r int) error {
	if r < 0 || r >= w.n {
		return fmt.Errorf("tcp: kill of rank %d out of range [0, %d)", r, w.n)
	}
	w.deadMu.Lock()
	if _, ok := w.dead[r]; ok {
		w.deadMu.Unlock()
		return nil
	}
	cause := fmt.Errorf("tcp: rank %d killed", r)
	w.dead[r] = cause
	w.deadMu.Unlock()
	for p := 0; p < w.n; p++ {
		if p == r {
			continue
		}
		lk := w.linkFor(r, p)
		lk.mu.Lock()
		if lk.state != linkDown {
			lk.state = linkDown
			lk.err = &mpi.RankError{Rank: r, Err: cause}
			if lk.connLo != nil {
				lk.connLo.Close()
			}
			if lk.connHi != nil {
				lk.connHi.Close()
			}
			lk.cond.Broadcast()
		}
		lk.mu.Unlock()
		w.failPair(lk, cause, r)
	}
	// Fail the dead rank's own matcher wholesale, including self traffic.
	w.matchers[r].fail(r, &mpi.RankError{Rank: r, Err: cause})
	return nil
}

// failPair terminally fails both directions of a pair. deadRank >= 0 pins
// the blame on that rank; otherwise each side blames its peer.
func (w *World) failPair(lk *link, cause error, deadRank int) {
	blame := func(victim, peer int) error {
		rank := peer
		if deadRank >= 0 {
			rank = deadRank
		}
		return &mpi.RankError{Rank: rank, Err: cause}
	}
	w.failStream(w.streams[lk.lo][lk.hi], blame(lk.lo, lk.hi))
	w.failStream(w.streams[lk.hi][lk.lo], blame(lk.hi, lk.lo))
	w.matchers[lk.lo].fail(lk.hi, blame(lk.lo, lk.hi))
	w.matchers[lk.hi].fail(lk.lo, blame(lk.hi, lk.lo))
}

// failStream fails a directed stream: queued and unacknowledged frames
// complete with err, future sends are rejected, the writer exits.
func (w *World) failStream(st *sendStream, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return
	}
	st.failed = err
	for _, fr := range st.queue[st.qhead:] {
		if fr.done != nil && !fr.completed {
			fr.completed = true
			fr.done <- err
		}
	}
	for _, fr := range st.unacked {
		if fr.done != nil && !fr.completed {
			fr.completed = true
			if fr.borrowed && fr.written {
				// Written before the failure: the copy path completed here.
				fr.done <- nil
			} else {
				fr.done <- err
			}
		}
	}
	st.queue = nil
	st.qhead = 0
	st.unacked = nil
	st.resend = 0
	st.cond.Broadcast()
}

// linkBroken handles a connection error on the given epoch: transient
// breaks start the reconnector, everything else fails the pair.
func (w *World) linkBroken(lk *link, epoch int, cause error) {
	lk.mu.Lock()
	if lk.state != linkUp || lk.epoch != epoch {
		lk.mu.Unlock()
		return
	}
	if lk.connLo != nil {
		lk.connLo.Close()
	}
	if lk.connHi != nil {
		lk.connHi.Close()
	}
	deadRank := w.firstDead(lk.lo, lk.hi)
	if !w.cfg.Resilient || w.isClosed() || deadRank >= 0 {
		lk.state = linkDown
		lk.err = cause
		lk.cond.Broadcast()
		lk.mu.Unlock()
		w.failPair(lk, cause, deadRank)
		return
	}
	lk.state = linkReconnecting
	lk.mu.Unlock()
	w.wg.Add(1)
	go w.reconnect(lk, cause)
}

// reconnect redials a broken pair with exponential backoff + jitter,
// retransmitting unacknowledged frames once the new socket is up.
func (w *World) reconnect(lk *link, cause error) {
	defer w.wg.Done()
	res := w.cfg.Res
	lastErr := cause
	for attempt := 0; attempt < res.MaxReconnects; attempt++ {
		d := res.BackoffBase << uint(attempt)
		if d > res.BackoffMax || d <= 0 {
			d = res.BackoffMax
		}
		if res.Jitter > 0 {
			f := 1 + res.Jitter*(2*rand.Float64()-1)
			d = time.Duration(float64(d) * f)
		}
		w.stats.backoffSleeps.Add(1)
		w.stats.backoffNanos.Add(uint64(d))
		select {
		case <-time.After(d):
		case <-w.closed:
			w.reconnectFailed(lk, fmt.Errorf("tcp: world closed during reconnect"))
			return
		}
		if dead := w.firstDead(lk.lo, lk.hi); dead >= 0 {
			w.reconnectFailed(lk, w.rankDead(dead))
			return
		}
		connHi, connLo, err := w.redial(lk)
		if err != nil {
			lastErr = err
			continue
		}
		// The old epoch's sockets are closed; wait for its readers to exit
		// before the new epoch goes live, so the pair never has two readers
		// racing one receive cursor.
		lk.readers.Wait()
		lk.mu.Lock()
		if lk.state != linkReconnecting {
			// Killed or closed while redialing.
			lk.mu.Unlock()
			connHi.Close()
			connLo.Close()
			return
		}
		lk.connHi = connHi
		lk.connLo = connLo
		lk.epoch++
		epoch := lk.epoch
		// Rewind both directions before waking writers blocked in acquire:
		// a writer must observe resend=0 (and the bumped rewind generation)
		// no later than it observes the fresh connection, or it could write
		// post-gap frames before the retransmissions that fill the gap.
		w.streams[lk.lo][lk.hi].rewind()
		w.streams[lk.hi][lk.lo].rewind()
		lk.state = linkUp
		lk.cond.Broadcast()
		lk.mu.Unlock()
		w.stats.reconnects.Add(1)
		w.wg.Add(2)
		lk.readers.Add(2)
		go w.readLoop(lk.lo, lk.hi, connLo, epoch)
		go w.readLoop(lk.hi, lk.lo, connHi, epoch)
		return
	}
	w.reconnectFailed(lk, fmt.Errorf("tcp: pair (%d,%d) reconnect failed after %d attempts: %w",
		lk.lo, lk.hi, res.MaxReconnects, lastErr))
}

func (w *World) reconnectFailed(lk *link, err error) {
	w.stats.reconnectFailures.Add(1)
	lk.mu.Lock()
	if lk.state == linkReconnecting {
		lk.state = linkDown
		lk.err = err
	}
	lk.cond.Broadcast()
	lk.mu.Unlock()
	w.failPair(lk, err, w.firstDead(lk.lo, lk.hi))
}

// redial establishes a fresh socket for the pair: the higher rank dials the
// world listener with a reconnect handshake, the accept path hands the
// peer end back. Returns (higher end, lower end).
func (w *World) redial(lk *link) (net.Conn, net.Conn, error) {
	ch := make(chan net.Conn, 1)
	id := pairID{lk.lo, lk.hi}
	w.reconnMu.Lock()
	w.reconnWait[id] = ch
	w.reconnMu.Unlock()
	defer func() {
		w.reconnMu.Lock()
		delete(w.reconnWait, id)
		w.reconnMu.Unlock()
	}()
	connHi, err := net.Dial("tcp", w.addr)
	if err != nil {
		return nil, nil, err
	}
	tuneConn(connHi)
	if err := writeHandshake(connHi, lk.hi, lk.lo, hsReconnect); err != nil {
		connHi.Close()
		return nil, nil, err
	}
	select {
	case connLo := <-ch:
		return connHi, connLo, nil
	case <-time.After(2 * time.Second):
		connHi.Close()
		return nil, nil, fmt.Errorf("tcp: reconnect handshake timed out")
	case <-w.closed:
		connHi.Close()
		return nil, nil, fmt.Errorf("tcp: world closed")
	}
}

// rewind schedules every unacknowledged frame for retransmission.
func (st *sendStream) rewind() {
	st.mu.Lock()
	st.resend = 0
	st.rewinds++
	st.cond.Broadcast()
	st.mu.Unlock()
}

// retireFrameLocked releases an acked frame's resources: pooled send copies
// go back to the pool, and borrowed frames get their deferred completion —
// the ack proves delivery, so the caller's buffer is finally free for
// reuse. Caller holds the stream mutex; done is buffered, so the send
// cannot block under it.
//
//aapc:noalloc
func (w *World) retireFrameLocked(fr *outFrame) {
	if fr.poolable && fr.buf != nil {
		w.pool.put(fr.buf)
		fr.buf = nil
	}
	if fr.borrowed && fr.done != nil && !fr.completed {
		fr.completed = true
		if fr.ctx != 0 {
			fr.doneAt = time.Since(w.start).Seconds()
		}
		fr.done <- nil
	}
}

// ackStream prunes unacknowledged frames below the cumulative ack,
// retiring each (pool release or deferred borrowed completion). A frame
// the writer is concurrently writing is only marked (ackFreed); the writer
// retires it when the write completes — releasing mid-write would hand the
// bytes to another message (or let the caller modify them) while writev
// still references them.
func (w *World) ackStream(st *sendStream, upTo uint64) {
	st.mu.Lock()
	k := 0
	for k < len(st.unacked) && st.unacked[k].seq < upTo {
		k++
	}
	if k > 0 {
		for _, fr := range st.unacked[:k] {
			if fr.writing {
				fr.ackFreed = true
			} else {
				w.retireFrameLocked(fr)
			}
		}
		// Shift the survivors down instead of re-slicing forward: the
		// backing array keeps its full capacity, so the steady state appends
		// in collect stop reallocating it.
		n := copy(st.unacked, st.unacked[k:])
		for i := n; i < len(st.unacked); i++ {
			st.unacked[i] = nil
		}
		st.unacked = st.unacked[:n]
		st.resend -= k
		if st.resend < 0 {
			st.resend = 0
		}
	}
	st.mu.Unlock()
}

// noteAck records a cumulative ack to piggyback on the stream's next write.
// upTo values are monotonic per pair, so only the newest matters; >= (not >)
// keeps the re-ack of a discarded duplicate flowing even when the value is
// unchanged, preserving the pre-coalescing belt-and-braces behaviour.
func (st *sendStream) noteAck(upTo uint64) {
	st.mu.Lock()
	if st.failed == nil && !st.closed && upTo >= st.ackUpTo {
		st.ackUpTo = upTo
		st.ackDirty = true
		st.cond.Signal()
	}
	st.mu.Unlock()
}

// writerMaxBatch bounds the frames per vectored write: 64 frames is 129
// iovecs worst case, well under IOV_MAX, and bounds how much payload memory
// a single batch pins against ack-driven release.
const writerMaxBatch = 64

// writeBatch is the writer's reusable scratch: the frames of the current
// vectored write, their headers (one arena, resliced per frame), the iovec
// list handed to net.Buffers, and a singleton frame for coalesced acks.
type writeBatch struct {
	frames   []*outFrame
	nRetrans int
	haveAck  bool
	ackSeq   uint64
	rewinds  uint64 // st.rewinds snapshot; mismatch after acquire = stale batch
	dup      bool   // write frames[0] twice (injected duplicate)

	hdrs   []byte
	iovecs net.Buffers
	ack    outFrame
}

// collect fills the batch from the stream: pending retransmissions first,
// then queued frames in order (assigning sequence numbers and entering the
// retransmit window), then the coalesced ack if one is due. Caller holds
// st.mu. Returns true when the queue head cannot be admitted because the
// retransmit window is full and nothing else is writable — the overflow
// condition that terminally fails the stream.
//
//aapc:noalloc
//aapc:nocopy frames move by pointer; payload bytes are never touched
func (b *writeBatch) collect(st *sendStream, resilient bool, limit, maxData int) (overflow bool) {
	b.frames = b.frames[:0]
	b.nRetrans = 0
	b.haveAck = false
	b.dup = false
	for st.resend < len(st.unacked) && len(b.frames) < maxData {
		fr := st.unacked[st.resend]
		st.resend++
		fr.writing = true
		b.frames = append(b.frames, fr)
		b.nRetrans++
	}
	for st.qhead < len(st.queue) && len(b.frames) < maxData {
		if resilient && len(st.unacked) >= limit {
			if len(b.frames) == 0 && !st.ackDirty {
				return true
			}
			break
		}
		fr := st.queue[st.qhead]
		st.queue[st.qhead] = nil
		st.qhead++
		fr.seq = st.nextSeq
		st.nextSeq++
		if resilient {
			st.unacked = append(st.unacked, fr)
			st.resend = len(st.unacked)
		}
		fr.writing = true
		b.frames = append(b.frames, fr)
	}
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
	if st.ackDirty {
		b.haveAck = true
		b.ackSeq = st.ackUpTo
		st.ackDirty = false
	}
	b.rewinds = st.rewinds
	return false
}

// buildIovecs lays the batch out for one vectored write: header, payload,
// header, payload, ..., with the coalesced ack last. A strided frame
// (base+dt) contributes one iovec per block — the writev gathers the
// caller's matrix layout directly, so the wire sees a contiguous payload
// that never existed in a pack buffer. Go's runtime caps each writev at
// IOV_MAX iovecs and loops, so block counts beyond it cost extra syscalls,
// never correctness.
//
//aapc:noalloc
//aapc:nocopy payload rides the iovec list by reference into writev
func (b *writeBatch) buildIovecs() {
	n := len(b.frames)
	if b.dup {
		n++
	}
	if b.haveAck {
		n++
	}
	if cap(b.hdrs) < n*headerLen {
		b.hdrs = make([]byte, n*headerLen) //aapc:allow noalloc amortized: grows to the high-water batch size, then stable
	}
	b.hdrs = b.hdrs[:n*headerLen]
	b.iovecs = b.iovecs[:0]
	hi := 0
	emit := func(fr *outFrame) {
		hdr := b.hdrs[hi*headerLen : (hi+1)*headerLen]
		hi++
		hdr[0] = fr.kind
		binary.LittleEndian.PutUint64(hdr[1:9], uint64(int64(fr.tag)))
		binary.LittleEndian.PutUint64(hdr[9:17], fr.seq)
		binary.LittleEndian.PutUint64(hdr[17:25], uint64(int64(fr.size)))
		binary.LittleEndian.PutUint64(hdr[25:33], fr.ctx)
		b.iovecs = append(b.iovecs, hdr)
		switch {
		case fr.base != nil:
			for i := 0; i < fr.dt.Count(); i++ {
				b.iovecs = append(b.iovecs, fr.dt.Block(fr.base, i))
			}
		case len(fr.buf) > 0:
			b.iovecs = append(b.iovecs, fr.buf)
		}
	}
	for _, fr := range b.frames {
		emit(fr)
	}
	if b.dup && len(b.frames) > 0 {
		emit(b.frames[0])
	}
	if b.haveAck {
		b.ack = outFrame{kind: frameAck, seq: b.ackSeq}
		emit(&b.ack)
	}
}

// release clears the in-flight marks of the batch, retiring frames whose
// ack arrived mid-write, and (when complete is true) delivers data-frame
// completions with err. Borrowed frames skip the successful-write
// completion — their caller's buffer stays pinned until the cumulative ack
// retires them — but do complete on terminal errors, where no
// retransmission will ever need the bytes again. reack re-arms the
// coalesced ack after a failed write so it is retried on the next
// (post-reconnect) cycle.
//
//aapc:noalloc
//aapc:nocopy
func (w *World) releaseBatch(st *sendStream, b *writeBatch, err error, complete, reack bool) {
	advanced := false
	st.mu.Lock()
	for _, fr := range b.frames {
		fr.writing = false
		if fr.ackFreed {
			fr.ackFreed = false
			w.retireFrameLocked(fr)
		}
		if complete && err == nil && !fr.written {
			fr.written = true
			st.wrote++
			advanced = true
		}
		if complete && fr.done != nil && !fr.completed && (err != nil || !fr.borrowed) {
			fr.completed = true
			e := err
			if fr.borrowed && fr.written {
				// The frame hit the wire before the terminal failure: the
				// copy path would have completed it then, so report the same
				// success; delivery truth surfaces on receiver-side ops.
				e = nil
			}
			if fr.ctx != 0 {
				fr.doneAt = time.Since(w.start).Seconds()
			}
			fr.done <- e
		}
	}
	if reack && b.haveAck && st.failed == nil && !st.closed {
		if b.ackSeq >= st.ackUpTo {
			st.ackUpTo = b.ackSeq
		}
		st.ackDirty = true
	}
	if advanced {
		// Wake Flush waiters; the writer re-checks hasWorkLocked and goes
		// back to sleep if the broadcast was only for them.
		st.cond.Broadcast()
	}
	st.mu.Unlock()
}

// writer drains one directed stream for the lifetime of the world. Frames
// are coalesced opportunistically: every pass writes whatever is queued at
// that moment — retransmissions first, then queued frames in order, plus at
// most one piggybacked cumulative ack — in a single vectored write. An idle
// stream therefore flushes each frame immediately (no delay timers);
// batching emerges exactly when the socket is the bottleneck and frames
// accumulate behind the in-flight write. MPI's non-overtaking guarantee
// holds because this is the only goroutine writing the pair's frames for
// its direction.
func (w *World) writer(st *sendStream) {
	defer w.wg.Done()
	lk := w.linkFor(st.src, st.dst)
	maxData := writerMaxBatch
	if w.cfg.Faults != nil {
		// Fault decisions are per frame and can sleep, break the link or
		// duplicate; keep one data frame per write so injection points stay
		// exactly where the plan put them.
		maxData = 1
	}
	var b writeBatch
	// iov is the consumable slice header handed to WriteTo (which advances
	// it as it writes). Its address escapes through the net.Conn interface,
	// so it is declared once per writer, not once per batch, to keep the
	// heap allocation out of the loop.
	var iov net.Buffers
	for {
		st.mu.Lock()
		for st.failed == nil && !st.closed && !st.hasWorkLocked() {
			st.cond.Wait()
		}
		if st.failed != nil || st.closed {
			st.mu.Unlock()
			return
		}
		overflow := b.collect(st, w.cfg.Resilient, w.cfg.Res.RetransmitLimit, maxData)
		st.mu.Unlock()
		if overflow {
			w.failStream(st, &mpi.RankError{Rank: st.dst, Err: fmt.Errorf(
				"tcp: retransmit buffer overflow (%d frames) toward rank %d",
				w.cfg.Res.RetransmitLimit, st.dst)})
			return
		}
		if b.nRetrans > 0 {
			w.stats.retransmits.Add(uint64(b.nRetrans))
		}

		conn, epoch, err := lk.acquire(st.src)
		if err != nil {
			// Pair is terminally down; failPair has drained or will drain
			// the stream. Complete any in-flight frames that escaped it.
			w.releaseBatch(st, &b, err, true, false)
			return
		}

		st.mu.Lock()
		stale := st.rewinds != b.rewinds
		st.mu.Unlock()
		if stale {
			// A reconnect rewound the stream while this batch waited for the
			// link: retransmissions now precede these frames in sequence
			// order. Put the batch back (the frames already sit in unacked,
			// below the rewound resend cursor) and re-collect.
			w.releaseBatch(st, &b, nil, false, true)
			continue
		}

		if maxData == 1 && len(b.frames) == 1 && b.nRetrans == 0 {
			fr := b.frames[0]
			if !fr.consulted {
				fr.consulted = true
				op, d := w.cfg.Faults.FrameFault(st.src, st.dst)
				switch op {
				case mpi.FaultDelay:
					select {
					case <-time.After(d):
					case <-w.closed:
					}
				case mpi.FaultDropConn:
					werr := fmt.Errorf("tcp: injected connection drop %d->%d", st.src, st.dst)
					w.linkBroken(lk, epoch, werr)
					if !w.cfg.Resilient {
						w.releaseBatch(st, &b, &mpi.RankError{Rank: st.dst, Err: werr}, true, false)
						return
					}
					// Frame sits in unacked; retransmitted after reconnect.
					w.releaseBatch(st, &b, nil, false, true)
					continue
				case mpi.FaultDuplicate:
					b.dup = true
				}
			}
		}

		b.buildIovecs()
		iov = b.iovecs
		_, werr := iov.WriteTo(conn)
		if werr != nil {
			w.linkBroken(lk, epoch, werr)
			if !w.cfg.Resilient {
				w.releaseBatch(st, &b, werr, true, false)
				return
			}
			// Data frames stay in unacked and are retransmitted after the
			// reconnect (or failed terminally); the ack is re-armed.
			w.releaseBatch(st, &b, nil, false, true)
			continue
		}
		w.stats.writevs.Add(1)
		frames := uint64(len(b.frames))
		var bytes uint64
		for _, fr := range b.frames {
			bytes += uint64(fr.size)
		}
		if b.dup && len(b.frames) > 0 {
			frames++
			bytes += uint64(b.frames[0].size)
		}
		w.stats.framesSent.Add(frames)
		w.stats.bytesSent.Add(bytes)
		if b.haveAck {
			w.stats.acksSent.Add(1)
		}
		w.releaseBatch(st, &b, nil, true, false)
	}
}

// readLoop receives frames sent by peer p to rank r on one connection
// epoch. Data frames pass the sequence cursor (duplicates are discarded and
// re-acked), ack frames prune the reverse retransmit window. Payloads are
// read into pooled buffers; the matcher returns each one once its bytes are
// copied into the user's receive buffer.
func (w *World) readLoop(r, p int, conn net.Conn, epoch int) {
	defer w.wg.Done()
	lk := w.linkFor(r, p)
	defer lk.readers.Done()
	st := w.streams[r][p]
	m := w.matchers[r]
	// hdr escapes through the net.Conn interface; declaring it outside the
	// loop costs one heap allocation per connection instead of one per frame.
	var hdr [headerLen]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			w.linkBroken(lk, epoch, fmt.Errorf("tcp: rank %d reading from %d: %w", r, p, err))
			return
		}
		kind := hdr[0]
		tag := int(int64(binary.LittleEndian.Uint64(hdr[1:9])))
		seq := binary.LittleEndian.Uint64(hdr[9:17])
		size := int(int64(binary.LittleEndian.Uint64(hdr[17:25])))
		ctx := binary.LittleEndian.Uint64(hdr[25:33])
		if size < 0 || size > maxFramePayload {
			w.linkBroken(lk, epoch, fmt.Errorf("tcp: rank %d: bad frame size %d from %d", r, size, p))
			return
		}
		switch kind {
		case frameAck:
			w.ackStream(st, seq)
		case frameData:
			// Peek: resolve the sequence cursor BEFORE touching the payload
			// bytes, so an in-order frame can be read straight into the
			// posted receive buffer. The cursor only advances after the full
			// payload has been read — a link break mid-read leaves recvNext
			// untouched and the retransmission re-delivers the same frame.
			if w.cfg.Resilient {
				st.mu.Lock()
				cur := st.recvNext
				st.mu.Unlock()
				switch {
				case seq < cur:
					// Idempotent re-delivery: already matched, drain the
					// bytes but re-ack so the sender prunes its window.
					if err := drainPayload(conn, size, &w.pool); err != nil {
						w.linkBroken(lk, epoch, fmt.Errorf("tcp: rank %d draining duplicate from %d: %w", r, p, err))
						return
					}
					w.stats.dupDiscards.Add(1)
					st.noteAck(cur)
					continue
				case seq > cur:
					w.hardFail(lk, epoch, fmt.Errorf(
						"tcp: rank %d: sequence gap from %d: got %d want %d", r, p, seq, cur))
					return
				}
			}
			key := matchKey{src: p, tag: tag}
			if op := m.claim(key); op != nil {
				// Zero-copy placement: the receive is already posted, so the
				// payload is read off the socket directly into its buffer.
				sockErr, opErr := w.readIntoOp(conn, op, size)
				if sockErr != nil {
					// The op was not completed and no bytes were delivered;
					// put it back at the head of its queue so the
					// retransmission (or the pair failure) finds it.
					m.unclaim(key, op)
					w.linkBroken(lk, epoch, fmt.Errorf("tcp: rank %d reading payload from %d: %w", r, p, sockErr))
					return
				}
				if w.cfg.Resilient {
					st.mu.Lock()
					st.recvNext++
					next := st.recvNext
					st.mu.Unlock()
					m.complete(op, ctx, opErr)
					st.noteAck(next)
				} else {
					m.complete(op, ctx, opErr)
				}
				continue
			}
			// No receive posted yet: stage the payload in a pooled buffer;
			// the match-time copy into the late-posted receive is the single
			// copy of this path.
			payload := w.pool.get(size)
			if _, err := io.ReadFull(conn, payload); err != nil {
				w.pool.put(payload)
				w.linkBroken(lk, epoch, fmt.Errorf("tcp: rank %d reading payload from %d: %w", r, p, err))
				return
			}
			if w.cfg.Resilient {
				st.mu.Lock()
				st.recvNext++
				next := st.recvNext
				st.mu.Unlock()
				m.deliver(key, payload, ctx)
				st.noteAck(next)
			} else {
				m.deliver(key, payload, ctx)
			}
		default:
			w.hardFail(lk, epoch, fmt.Errorf("tcp: rank %d: unknown frame kind %d from %d", r, p, kind))
			return
		}
	}
}

// hardFail terminally fails a pair on a protocol violation — reconnecting
// cannot fix a corrupted stream.
func (w *World) hardFail(lk *link, epoch int, cause error) {
	lk.mu.Lock()
	if lk.state == linkUp && lk.epoch == epoch {
		lk.state = linkDown
		lk.err = cause
		if lk.connLo != nil {
			lk.connLo.Close()
		}
		if lk.connHi != nil {
			lk.connHi.Close()
		}
		lk.cond.Broadcast()
	}
	lk.mu.Unlock()
	w.failPair(lk, cause, -1)
}

// fail records a transport failure for one source: every pending and
// future receive from that source errors out; other sources are unaffected.
func (m *matcher) fail(src int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.srcErr == nil {
		m.srcErr = make(map[int]error)
	}
	if m.srcErr[src] != nil {
		return
	}
	m.srcErr[src] = err
	for key, q := range m.posted {
		if key.src != src {
			continue
		}
		for _, op := range q {
			op.done <- err
		}
		delete(m.posted, key)
	}
}

// deliver hands an arrived frame to a posted receive or queues it. A
// matched payload goes back to the pool the moment its bytes are copied
// into the receiver's buffer; an unmatched one is retained in the arrived
// queue and returned at post time. Traced frames (ctx != 0) get a delivery
// timestamp here — the moment the payload reached this rank — so a receive
// waited long after arrival still reports the true delivery time.
func (m *matcher) deliver(key matchKey, payload []byte, ctx uint64) {
	var at float64
	if ctx != 0 && m.now != nil {
		at = m.now()
	}
	m.mu.Lock()
	if q := m.posted[key]; len(q) > 0 {
		op := q[0]
		// Shift-down pop: the backing array keeps its capacity, so the
		// append in post stops reallocating once the queue has reached its
		// working size.
		copy(q, q[1:])
		q[len(q)-1] = nil
		m.posted[key] = q[:len(q)-1]
		if ctx != 0 {
			op.ctx = ctx
			op.deliveredAt = at
		}
		m.mu.Unlock()
		err := op.place(payload, m.stats)
		if m.pool != nil {
			m.pool.put(payload)
		}
		op.done <- err
		return
	}
	m.arrived[key] = append(m.arrived[key], arrivedMsg{payload: payload, ctx: ctx, at: at})
	m.mu.Unlock()
}

// post registers a receive, matching an already-arrived frame if any.
// Frames that arrived before the source died still match.
func (m *matcher) post(key matchKey, op *recvOp) {
	m.mu.Lock()
	if q := m.arrived[key]; len(q) > 0 {
		msg := q[0]
		copy(q, q[1:])
		q[len(q)-1] = arrivedMsg{}
		m.arrived[key] = q[:len(q)-1]
		if msg.ctx != 0 {
			op.ctx = msg.ctx
			op.deliveredAt = msg.at
		}
		m.mu.Unlock()
		err := op.place(msg.payload, m.stats)
		if m.pool != nil {
			m.pool.put(msg.payload)
		}
		op.done <- err
		return
	}
	if err := m.srcErr[key.src]; err != nil {
		m.mu.Unlock()
		op.done <- err
		return
	}
	m.posted[key] = append(m.posted[key], op)
	m.mu.Unlock()
}

// claim pops the oldest posted receive for key, transferring ownership to
// the caller (the read loop, which will fill its buffer straight off the
// socket). Returns nil when no receive is posted — the caller falls back to
// staging the payload. For one key, frames only ever arrive from a single
// read loop, so the pop order is the match order.
func (m *matcher) claim(key matchKey) *recvOp {
	m.mu.Lock()
	q := m.posted[key]
	if len(q) == 0 {
		m.mu.Unlock()
		return nil
	}
	op := q[0]
	copy(q, q[1:])
	q[len(q)-1] = nil
	m.posted[key] = q[:len(q)-1]
	m.mu.Unlock()
	return op
}

// unclaim returns a claimed-but-unfilled op to the head of its queue after
// a socket error interrupted its payload read: the receive cursor did not
// advance, so the retransmission (on the next connection epoch) must find
// the same op first. If the source failed terminally while the op was
// claimed, it is completed with that error instead — matcher.fail could not
// see it.
func (m *matcher) unclaim(key matchKey, op *recvOp) {
	m.mu.Lock()
	if err := m.srcErr[key.src]; err != nil {
		m.mu.Unlock()
		op.done <- err
		return
	}
	q := append(m.posted[key], nil)
	copy(q[1:], q)
	q[0] = op
	m.posted[key] = q
	m.mu.Unlock()
}

// complete finishes a claimed op whose buffer the read loop has filled:
// stamp the trace context/delivery time, then deliver the completion.
func (m *matcher) complete(op *recvOp, ctx uint64, err error) {
	if ctx != 0 {
		op.ctx = ctx
		if m.now != nil {
			op.deliveredAt = m.now()
		}
	}
	op.done <- err
}

// readIntoOp reads a size-byte payload off the socket straight into a
// claimed receive op. The two return values separate the failure domains:
// sockErr is a connection error (the op was not completed, the caller must
// unclaim it and break the link); opErr is a per-operation delivery error
// (truncation) with the stream itself still healthy.
//
//aapc:nocopy contiguous receives land straight off the socket; staging is
// confined to the strided-scatter and truncation fallbacks
func (w *World) readIntoOp(conn net.Conn, op *recvOp, size int) (sockErr, opErr error) {
	if !op.dt.IsZero() && !op.dt.Contig() {
		// Strided destination: stage contiguously, scatter into the blocks —
		// the single copy of the typed receive path.
		payload := w.pool.get(size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			w.pool.put(payload)
			return err, nil
		}
		opErr = op.place(payload, &w.stats)
		w.pool.put(payload)
		return nil, opErr
	}
	if size <= len(op.buf) {
		if _, err := io.ReadFull(conn, op.buf[:size]); err != nil {
			return err, nil
		}
		if size > 0 {
			w.stats.zeroCopyRecvs.Add(1)
		}
		return nil, nil
	}
	// Truncation: fill what fits, drain the excess to keep the stream
	// parseable, report the same error the copy path would.
	if _, err := io.ReadFull(conn, op.buf); err != nil {
		return err, nil
	}
	if err := drainPayload(conn, size-len(op.buf), &w.pool); err != nil {
		return err, nil
	}
	return nil, fmt.Errorf("tcp: message truncated: receiver buffer %d < %d", len(op.buf), size)
}

// drainPayload discards size payload bytes from the socket (duplicate
// frames, truncated excess) through a scratch pool buffer.
func drainPayload(conn net.Conn, size int, pool *bufPool) error {
	if size <= 0 {
		return nil
	}
	b := pool.get(size)
	_, err := io.ReadFull(conn, b)
	pool.put(b)
	return err
}

// place copies a staged payload into the op's buffer, honoring a strided
// layout when the op carries one. This is the match-time copy counted
// against the ≤1-copy budget.
func (o *recvOp) place(payload []byte, st *stats) error {
	if st != nil && len(payload) > 0 {
		st.payloadCopies.Add(1)
	}
	if !o.dt.IsZero() && !o.dt.Contig() {
		if o.dt.Unpack(o.buf, payload) < len(payload) {
			return fmt.Errorf("tcp: message truncated: receiver layout %d < %d", o.dt.Size(), len(payload))
		}
		return nil
	}
	return copyPayload(o.buf, payload)
}

func copyPayload(dst, src []byte) error {
	if copy(dst, src) < len(src) {
		return fmt.Errorf("tcp: message truncated: receiver buffer %d < %d", len(dst), len(src))
	}
	return nil
}

// comm is one rank's endpoint.
type comm struct {
	w    *World
	rank int
	// barrierGen counts this rank's completed barriers, keeping the
	// reserved tags of successive barriers distinct.
	barrierGen int
}

func (c *comm) Rank() int    { return c.rank }
func (c *comm) Size() int    { return c.w.n }
func (c *comm) Now() float64 { return time.Since(c.w.start).Seconds() }

// Kill simulates the death of this rank (mpi.Killer).
func (c *comm) Kill() error { return c.w.KillRank(c.rank) }

// OpDeadline returns the world's per-operation deadline (0 = none).
func (c *comm) OpDeadline() time.Duration { return c.w.cfg.OpDeadline }

// TransportStats snapshots the world's data-plane counters (shared by all
// ranks of the in-process world).
func (c *comm) TransportStats() Stats { return c.w.stats.snapshot() }

// chanRequest is a send request: completion arrives on done, and fr (when
// non-nil) carries the trace context and sender-local completion stamp for
// WaitTraced. The frame is only read after the done receive, which orders
// the completer's writes.
type chanRequest struct {
	done chan error
	fr   *outFrame
}

func (r chanRequest) Wait() error { return <-r.done }

// WaitTimeout bounds the wait (mpi.TimedRequest). The operation is
// abandoned on timeout: its buffer must not be reused.
func (r chanRequest) WaitTimeout(d time.Duration) error {
	if d <= 0 {
		return <-r.done
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-r.done:
		return err
	case <-t.C:
		return &mpi.TimeoutError{Op: "wait", After: d}
	}
}

func (r chanRequest) info() mpi.TraceInfo {
	if r.fr == nil {
		return mpi.TraceInfo{}
	}
	return mpi.TraceInfo{Ctx: r.fr.ctx, DeliveredAt: r.fr.doneAt}
}

// WaitTraced returns the send's trace info (mpi.TracedRequest).
func (r chanRequest) WaitTraced() (mpi.TraceInfo, error) {
	err := <-r.done
	return r.info(), err
}

// WaitTracedTimeout bounds the traced wait (mpi.TracedTimedRequest).
func (r chanRequest) WaitTracedTimeout(d time.Duration) (mpi.TraceInfo, error) {
	if d <= 0 {
		return r.WaitTraced()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case err := <-r.done:
		return r.info(), err
	case <-t.C:
		return mpi.TraceInfo{}, &mpi.TimeoutError{Op: "wait", After: d}
	}
}

type errRequest struct{ err error }

func (r errRequest) Wait() error                     { return r.err }
func (r errRequest) WaitTimeout(time.Duration) error { return r.err }

// isend frames and queues buf toward dst without blocking the caller.
// Frames for one destination are written by a single writer in enqueue
// order, so MPI's non-overtaking guarantee holds per (source, destination,
// tag).
//
//aapc:nocopy the borrowed path is the steady state; staging copies are
// confined to the annotated small-message and self-send fallbacks
func (c *comm) isend(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	if err := c.w.rankDead(c.rank); err != nil {
		return errRequest{&mpi.RankError{Rank: c.rank, Err: err}}
	}
	if err := c.w.rankDead(dst); err != nil {
		return errRequest{&mpi.RankError{Rank: dst, Err: err}}
	}
	if dst == c.rank {
		// Self-send: loop through the matcher directly, via a pooled copy.
		payload := c.w.pool.get(len(buf))
		copy(payload, buf)
		if len(buf) > 0 {
			c.w.stats.payloadCopies.Add(1)
		}
		c.w.matchers[c.rank].deliver(matchKey{src: c.rank, tag: tag}, payload, ctx)
		return errRequest{nil}
	}
	st := c.w.streams[c.rank][dst]
	st.mu.Lock()
	if st.failed != nil {
		err := st.failed
		st.mu.Unlock()
		return errRequest{err}
	}
	data := buf
	poolable, borrowed := false, false
	if c.w.cfg.Resilient && len(buf) > 0 {
		if len(buf) >= zeroCopyMin || poolAligned(buf) {
			// Borrow: the caller's bytes ride the writev batch directly and
			// the request completes only when the cumulative ack retires the
			// frame — until then MPI's no-modify rule keeps them stable, so
			// retransmissions can reuse them verbatim. Zero copies.
			borrowed = true
			c.w.stats.borrowedSends.Add(1)
		} else {
			// Copy: for small, non-pool-aligned buffers the ack-deferred
			// completion costs more than the copy. The pooled copy makes the
			// frame retransmittable forever and completes at first write.
			data = c.w.pool.get(len(buf))
			//aapc:allow copycount deliberate: below zeroCopyMin the copy beats ack-deferred completion
			copy(data, buf)
			poolable = true
			c.w.stats.copiedSends.Add(1)
			c.w.stats.payloadCopies.Add(1)
		}
	} else if len(buf) > 0 {
		// Non-resilient mode always borrows (nothing ever retransmits).
		c.w.stats.borrowedSends.Add(1)
	}
	fr := &outFrame{kind: frameData, tag: tag, ctx: ctx, buf: data, size: len(data),
		done: make(chan error, 1), poolable: poolable, borrowed: borrowed}
	st.queue = append(st.queue, fr)
	st.enq++
	st.cond.Signal()
	st.mu.Unlock()
	return chanRequest{done: fr.done, fr: fr}
}

// zeroCopyMin is the smallest payload that borrows the caller's buffer
// unconditionally on the resilient path. Below it a pooled copy is cheaper
// than deferring completion to the ack — unless the slice is already
// pool-aligned, in which case borrowing costs nothing extra.
const zeroCopyMin = 1024

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag, 0)
}

// IsendTraced attaches a trace context to the outgoing frame
// (mpi.TracedSender): the context rides the wire in the frame header and
// surfaces on the matching receive's WaitTraced.
func (c *comm) IsendTraced(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag, ctx)
}

// IsendTyped starts a zero-copy send of the dt-described bytes of base
// (mpi.TypedComm). Contiguous layouts are normalized to the plain path; a
// strided layout rides the writev batch as one iovec per block, so the
// bytes go from the caller's matrix to the kernel with no intermediate
// buffer at all.
//
//aapc:nocopy
func (c *comm) IsendTyped(base []byte, dt mpi.Datatype, dst, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	if dt.Contig() {
		return c.isend(base[:dt.Size()], dst, tag, 0)
	}
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	if err := c.w.rankDead(c.rank); err != nil {
		return errRequest{&mpi.RankError{Rank: c.rank, Err: err}}
	}
	if err := c.w.rankDead(dst); err != nil {
		return errRequest{&mpi.RankError{Rank: dst, Err: err}}
	}
	size := dt.Size()
	if dst == c.rank {
		// Self-send: pack the strided layout into a pooled loopback copy.
		payload := c.w.pool.get(size)
		dt.Pack(payload, base)
		if size > 0 {
			c.w.stats.payloadCopies.Add(1)
		}
		c.w.matchers[c.rank].deliver(matchKey{src: c.rank, tag: tag}, payload, 0)
		return errRequest{nil}
	}
	st := c.w.streams[c.rank][dst]
	st.mu.Lock()
	if st.failed != nil {
		err := st.failed
		st.mu.Unlock()
		return errRequest{err}
	}
	// Strided frames always borrow: packing up front would be exactly the
	// copy this path exists to remove. In resilient mode completion defers
	// to the cumulative ack like any borrowed frame.
	c.w.stats.borrowedSends.Add(1)
	fr := &outFrame{kind: frameData, tag: tag, base: base, dt: dt, size: size,
		done: make(chan error, 1), borrowed: c.w.cfg.Resilient}
	st.queue = append(st.queue, fr)
	st.enq++
	st.cond.Signal()
	st.mu.Unlock()
	return chanRequest{done: fr.done, fr: fr}
}

// IrecvTyped posts a receive that scatters incoming payload bytes into the
// dt-described blocks of base (mpi.TypedComm). Contiguous layouts place
// bytes straight off the socket; strided ones stage once and scatter.
func (c *comm) IrecvTyped(base []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	if err := dt.Validate(len(base)); err != nil {
		return errRequest{err}
	}
	if dt.Contig() {
		return c.irecv(base[:dt.Size()], src, tag)
	}
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	if err := c.w.rankDead(c.rank); err != nil {
		return errRequest{&mpi.RankError{Rank: c.rank, Err: err}}
	}
	op := c.w.recvOps.get(base)
	op.dt = dt
	c.w.matchers[c.rank].post(matchKey{src: src, tag: tag}, op)
	return op
}

// Flush blocks until every frame this rank has so far accepted toward dst
// has completed at least one full socket write — the bytes are in the
// kernel, ordered ahead of anything the rank writes afterwards
// (mpi.Flusher). It does NOT wait for delivery: borrowed-frame completion
// still defers to the cumulative ack. The scheduled algorithm orders its
// synchronization emits on this watermark, paying a local writer handoff
// instead of a delivery round trip per phase boundary.
//
// d > 0 bounds the wait with a typed *mpi.TimeoutError; d <= 0 waits until
// the watermark is reached or the stream fails.
func (c *comm) Flush(dst int, d time.Duration) error {
	if err := mpi.CheckRank(c, dst); err != nil {
		return err
	}
	if dst == c.rank {
		return nil // self-sends bypass the stream and deliver at once
	}
	st := c.w.streams[c.rank][dst]
	var timer *time.Timer
	expired := false
	st.mu.Lock()
	target := st.enq
	for st.failed == nil && st.wrote < target && !expired {
		if d > 0 && timer == nil {
			// Armed lazily: the common case — the writer already drained
			// the queue — never allocates the timer.
			timer = time.AfterFunc(d, func() {
				st.mu.Lock()
				expired = true
				st.cond.Broadcast()
				st.mu.Unlock()
			})
			defer timer.Stop()
		}
		st.cond.Wait()
	}
	wrote, failed := st.wrote, st.failed
	st.mu.Unlock()
	if wrote >= target {
		return nil
	}
	if failed != nil {
		return failed
	}
	return &mpi.TimeoutError{Op: "flush", After: d}
}

func (c *comm) irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	if err := c.w.rankDead(c.rank); err != nil {
		return errRequest{&mpi.RankError{Rank: c.rank, Err: err}}
	}
	op := c.w.recvOps.get(buf)
	c.w.matchers[c.rank].post(matchKey{src: src, tag: tag}, op)
	return op
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.irecv(buf, src, tag)
}

// Barrier runs a dissemination barrier over the transport itself:
// ceil(log2 n) rounds, each rank signalling rank+2^k and waiting for
// rank-2^k, with reserved negative tags per generation and round. When the
// world has an OpDeadline, every wait is bounded by it and a stuck barrier
// returns a typed *mpi.TimeoutError instead of hanging.
func (c *comm) Barrier() error {
	n := c.w.n
	if n == 1 {
		return nil
	}
	d := c.w.cfg.OpDeadline
	gen := c.barrierGen
	c.barrierGen++
	round := 0
	for dist := 1; dist < n; dist <<= 1 {
		tag := -(gen*64 + round + 1)
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		sr := c.isend(nil, dst, tag, 0)
		rr := c.irecv(nil, src, tag)
		if err := mpi.WaitTimeout(sr, d); err != nil {
			return fmt.Errorf("tcp: barrier round %d: %w", round, err)
		}
		if err := mpi.WaitTimeout(rr, d); err != nil {
			return fmt.Errorf("tcp: barrier round %d: %w", round, err)
		}
		round++
	}
	return nil
}

// Run builds a TCP world, executes fn once per rank, tears the sockets
// down, and returns the first error.
func Run(n int, fn func(c mpi.Comm) error, opts ...Option) error {
	comms, closeWorld, err := NewWorld(n, opts...)
	if err != nil {
		return err
	}
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if cerr := closeWorld(); cerr != nil && first == nil {
		first = cerr
	}
	return first
}
