// Package tcp provides an mpi transport over real loopback TCP sockets: one
// connection per rank pair, length-prefixed frames, and a dissemination
// barrier built from the transport's own messages. Among the repository's
// transports it is the closest analogue to the paper's LAM/MPI-over-Ethernet
// stack — bytes really cross the kernel's network path — while still running
// in a single process.
//
// User tags must be non-negative; negative tags are reserved for the
// barrier protocol.
package tcp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// World is a set of ranks connected pairwise by loopback TCP.
type World struct {
	n     int
	start time.Time
	// conns[r][p] is rank r's connection to peer p (nil on the diagonal).
	conns [][]net.Conn
	// outq[r][p] is rank r's ordered outbound frame queue toward peer p.
	outq     [][]*outQueue
	matchers []*matcher
	listener net.Listener

	closeOnce sync.Once
	closeErr  error
}

// frame header: tag (int64) + payload length (int64).
const headerLen = 16

// matcher pairs incoming frames with posted receives for one rank.
type matcher struct {
	mu sync.Mutex
	// arrived holds frames with no posted receive yet, FIFO per key.
	arrived map[matchKey][][]byte
	// posted holds receives with no arrived frame yet, FIFO per key.
	posted map[matchKey][]*recvOp
	// srcErr holds sticky per-source transport errors: a dead peer fails
	// only the receives naming it, not traffic from healthy peers.
	srcErr map[int]error
}

type matchKey struct {
	src int
	tag int
}

type recvOp struct {
	buf  []byte
	done chan error
}

// outFrame is one queued outbound message.
type outFrame struct {
	tag  int
	buf  []byte
	done chan error
}

// outQueue orders a rank's outbound frames toward one peer.
type outQueue struct {
	mu       sync.Mutex
	frames   []*outFrame
	draining bool
}

// NewWorld builds an n-rank world over loopback TCP. The returned cleanup
// function closes every socket; it must be called exactly once.
func NewWorld(n int) ([]mpi.Comm, func() error, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("tcp: world size %d", n)
	}
	w := &World{n: n, start: time.Now()}
	w.conns = make([][]net.Conn, n)
	w.outq = make([][]*outQueue, n)
	w.matchers = make([]*matcher, n)
	for r := 0; r < n; r++ {
		w.conns[r] = make([]net.Conn, n)
		w.outq[r] = make([]*outQueue, n)
		for p := 0; p < n; p++ {
			w.outq[r][p] = &outQueue{}
		}
		w.matchers[r] = &matcher{
			arrived: make(map[matchKey][][]byte),
			posted:  make(map[matchKey][]*recvOp),
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	w.listener = ln

	// Establish one connection per pair: the higher rank dials, sending an
	// 8-byte (from, to) handshake; the accept loop routes accordingly.
	type accepted struct {
		conn net.Conn
		from int
		to   int
		err  error
	}
	pairs := n * (n - 1) / 2
	acceptCh := make(chan accepted, pairs)
	go func() {
		for i := 0; i < pairs; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			var hdr [8]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptCh <- accepted{err: err}
				return
			}
			acceptCh <- accepted{
				conn: conn,
				from: int(binary.LittleEndian.Uint32(hdr[0:4])),
				to:   int(binary.LittleEndian.Uint32(hdr[4:8])),
			}
		}
	}()
	for hi := 1; hi < n; hi++ {
		for lo := 0; lo < hi; lo++ {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				w.close()
				return nil, nil, err
			}
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(hi))
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(lo))
			if _, err := conn.Write(hdr[:]); err != nil {
				w.close()
				return nil, nil, err
			}
			w.conns[hi][lo] = conn
		}
	}
	for i := 0; i < pairs; i++ {
		a := <-acceptCh
		if a.err != nil {
			w.close()
			return nil, nil, a.err
		}
		if a.from < 0 || a.from >= n || a.to < 0 || a.to >= n {
			w.close()
			return nil, nil, fmt.Errorf("tcp: bad handshake %d->%d", a.from, a.to)
		}
		w.conns[a.to][a.from] = a.conn
	}

	// One reader goroutine per (rank, peer) connection end.
	for r := 0; r < n; r++ {
		for p := 0; p < n; p++ {
			if r != p {
				go w.readLoop(r, p)
			}
		}
	}

	comms := make([]mpi.Comm, n)
	for r := range comms {
		comms[r] = &comm{w: w, rank: r}
	}
	return comms, w.close, nil
}

func (w *World) close() error {
	w.closeOnce.Do(func() {
		if w.listener != nil {
			w.closeErr = w.listener.Close()
		}
		for _, row := range w.conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	})
	return w.closeErr
}

// readLoop receives frames sent by peer p to rank r.
func (w *World) readLoop(r, p int) {
	conn := w.conns[r][p]
	m := w.matchers[r]
	for {
		var hdr [headerLen]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			m.fail(p, fmt.Errorf("tcp: rank %d reading from %d: %w", r, p, err))
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[0:8])))
		size := int(int64(binary.LittleEndian.Uint64(hdr[8:16])))
		if size < 0 || size > 1<<30 {
			m.fail(p, fmt.Errorf("tcp: rank %d: bad frame size %d from %d", r, size, p))
			return
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			m.fail(p, fmt.Errorf("tcp: rank %d reading payload from %d: %w", r, p, err))
			return
		}
		m.deliver(matchKey{src: p, tag: tag}, payload)
	}
}

// fail records a transport failure for one source: every pending and
// future receive from that source errors out; other sources are unaffected.
func (m *matcher) fail(src int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.srcErr == nil {
		m.srcErr = make(map[int]error)
	}
	if m.srcErr[src] != nil {
		return
	}
	m.srcErr[src] = err
	for key, q := range m.posted {
		if key.src != src {
			continue
		}
		for _, op := range q {
			op.done <- err
		}
		delete(m.posted, key)
	}
}

// deliver hands an arrived frame to a posted receive or queues it.
func (m *matcher) deliver(key matchKey, payload []byte) {
	m.mu.Lock()
	if q := m.posted[key]; len(q) > 0 {
		op := q[0]
		m.posted[key] = q[1:]
		m.mu.Unlock()
		op.done <- copyPayload(op.buf, payload)
		return
	}
	m.arrived[key] = append(m.arrived[key], payload)
	m.mu.Unlock()
}

// post registers a receive, matching an already-arrived frame if any.
// Frames that arrived before the source died still match.
func (m *matcher) post(key matchKey, op *recvOp) {
	m.mu.Lock()
	if q := m.arrived[key]; len(q) > 0 {
		payload := q[0]
		m.arrived[key] = q[1:]
		m.mu.Unlock()
		op.done <- copyPayload(op.buf, payload)
		return
	}
	if err := m.srcErr[key.src]; err != nil {
		m.mu.Unlock()
		op.done <- err
		return
	}
	m.posted[key] = append(m.posted[key], op)
	m.mu.Unlock()
}

func copyPayload(dst, src []byte) error {
	if copy(dst, src) < len(src) {
		return fmt.Errorf("tcp: message truncated: receiver buffer %d < %d", len(dst), len(src))
	}
	return nil
}

// comm is one rank's endpoint.
type comm struct {
	w    *World
	rank int
	// barrierGen counts this rank's completed barriers, keeping the
	// reserved tags of successive barriers distinct.
	barrierGen int
}

func (c *comm) Rank() int    { return c.rank }
func (c *comm) Size() int    { return c.w.n }
func (c *comm) Now() float64 { return time.Since(c.w.start).Seconds() }

type chanRequest struct{ done chan error }

func (r chanRequest) Wait() error { return <-r.done }

type errRequest struct{ err error }

func (r errRequest) Wait() error { return r.err }

// isend frames and writes buf to dst without blocking the caller. Frames
// for one destination are written by a single drainer in enqueue order, so
// MPI's non-overtaking guarantee holds per (source, destination, tag).
func (c *comm) isend(buf []byte, dst, tag int) mpi.Request {
	if err := mpi.CheckRank(c, dst); err != nil {
		return errRequest{err}
	}
	if dst == c.rank {
		// Self-send: loop through the matcher directly.
		payload := append([]byte(nil), buf...)
		c.w.matchers[c.rank].deliver(matchKey{src: c.rank, tag: tag}, payload)
		return errRequest{nil}
	}
	fr := &outFrame{tag: tag, buf: buf, done: make(chan error, 1)}
	q := c.w.outq[c.rank][dst]
	q.mu.Lock()
	q.frames = append(q.frames, fr)
	if !q.draining {
		q.draining = true
		go c.w.drain(c.rank, dst)
	}
	q.mu.Unlock()
	return chanRequest{done: fr.done}
}

// drain writes queued frames for (r -> p) in order until the queue empties.
func (w *World) drain(r, p int) {
	q := w.outq[r][p]
	conn := w.conns[r][p]
	for {
		q.mu.Lock()
		if len(q.frames) == 0 {
			q.draining = false
			q.mu.Unlock()
			return
		}
		fr := q.frames[0]
		q.frames = q.frames[1:]
		q.mu.Unlock()

		var hdr [headerLen]byte
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(int64(fr.tag)))
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(int64(len(fr.buf))))
		if _, err := conn.Write(hdr[:]); err != nil {
			fr.done <- err
			continue
		}
		_, err := conn.Write(fr.buf)
		fr.done <- err
	}
}

func (c *comm) Isend(buf []byte, dst, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.isend(buf, dst, tag)
}

func (c *comm) irecv(buf []byte, src, tag int) mpi.Request {
	if err := mpi.CheckRank(c, src); err != nil {
		return errRequest{err}
	}
	op := &recvOp{buf: buf, done: make(chan error, 1)}
	c.w.matchers[c.rank].post(matchKey{src: src, tag: tag}, op)
	return chanRequest{done: op.done}
}

func (c *comm) Irecv(buf []byte, src, tag int) mpi.Request {
	if tag < 0 {
		return errRequest{fmt.Errorf("tcp: negative tag %d is reserved", tag)}
	}
	return c.irecv(buf, src, tag)
}

// Barrier runs a dissemination barrier over the transport itself:
// ceil(log2 n) rounds, each rank signalling rank+2^k and waiting for
// rank-2^k, with reserved negative tags per generation and round.
func (c *comm) Barrier() error {
	n := c.w.n
	if n == 1 {
		return nil
	}
	gen := c.barrierGen
	c.barrierGen++
	round := 0
	for dist := 1; dist < n; dist <<= 1 {
		tag := -(gen*64 + round + 1)
		dst := (c.rank + dist) % n
		src := (c.rank - dist + n) % n
		sr := c.isend(nil, dst, tag)
		rr := c.irecv(nil, src, tag)
		if err := sr.Wait(); err != nil {
			return err
		}
		if err := rr.Wait(); err != nil {
			return err
		}
		round++
	}
	return nil
}

// Run builds a TCP world, executes fn once per rank, tears the sockets
// down, and returns the first error.
func Run(n int, fn func(c mpi.Comm) error) error {
	comms, closeWorld, err := NewWorld(n)
	if err != nil {
		return err
	}
	errs := make(chan error, n)
	for _, c := range comms {
		go func(c mpi.Comm) { errs <- fn(c) }(c)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	if cerr := closeWorld(); cerr != nil && first == nil {
		first = cerr
	}
	return first
}
