package mpi

import (
	"errors"
	"fmt"
	"time"
)

// RankError reports that a specific peer rank has failed (process death,
// exhausted reconnects, injected kill). Transports surface it instead of
// hanging so that collective algorithms can fail closed: every operation
// naming the dead rank — and only those — errors with a RankError.
type RankError struct {
	// Rank is the rank that failed.
	Rank int
	// Err is the underlying transport error, if any.
	Err error
}

func (e *RankError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Err)
	}
	return fmt.Sprintf("mpi: rank %d failed", e.Rank)
}

func (e *RankError) Unwrap() error { return e.Err }

// AsRankError extracts a RankError from an error chain.
func AsRankError(err error) (*RankError, bool) {
	var re *RankError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// TimeoutError reports that an operation's deadline expired before the
// operation completed. The operation itself is abandoned, not cancelled: its
// buffer must not be reused, and a late match may still consume it.
type TimeoutError struct {
	// Op names the operation ("recv", "send", "barrier", ...).
	Op string
	// After is the deadline that expired.
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("mpi: %s deadline %v expired", e.Op, e.After)
}

// Timeout marks the error as a timeout in the net.Error sense.
func (e *TimeoutError) Timeout() bool { return true }

// IsTimeout reports whether the error chain contains a TimeoutError.
func IsTimeout(err error) bool {
	var te *TimeoutError
	return errors.As(err, &te)
}

// TimedRequest is a Request whose Wait can be bounded by a deadline.
// Transports that can support per-operation deadlines implement it.
type TimedRequest interface {
	Request
	// WaitTimeout behaves like Wait but returns a TimeoutError if the
	// operation has not completed within d. d <= 0 means no deadline.
	// At most one of Wait/WaitTimeout may be called per request.
	WaitTimeout(d time.Duration) error
}

// WaitTimeout waits for a request with a deadline when the transport
// supports one (TimedRequest); otherwise it degrades to a plain Wait.
// d <= 0 always means an unbounded wait.
func WaitTimeout(r Request, d time.Duration) error {
	if r == nil {
		return nil
	}
	if d > 0 {
		if tr, ok := r.(TimedRequest); ok {
			return tr.WaitTimeout(d)
		}
	}
	return r.Wait()
}

// WaitAllTimeout waits for every request under one shared deadline: the
// budget d covers the whole batch, not each request. It returns the first
// error encountered after attempting to wait for all of them. d <= 0 is
// WaitAll.
func WaitAllTimeout(reqs []Request, d time.Duration) error {
	if d <= 0 {
		return WaitAll(reqs)
	}
	deadline := time.Now().Add(d)
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		rem := time.Until(deadline)
		if rem <= 0 {
			// Budget exhausted: give each remaining request a chance to
			// complete immediately, but do not block.
			rem = time.Nanosecond
		}
		if err := WaitTimeout(r, rem); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SendTimeout is a blocking send bounded by d.
func SendTimeout(c Comm, buf []byte, dst, tag int, d time.Duration) error {
	return WaitTimeout(c.Isend(buf, dst, tag), d)
}

// RecvTimeout is a blocking receive bounded by d.
func RecvTimeout(c Comm, buf []byte, src, tag int, d time.Duration) error {
	return WaitTimeout(c.Irecv(buf, src, tag), d)
}

// FaultOp is the action a fault-injection layer requests for one outbound
// message. The hook types live here, in the package both the transports and
// the injector already depend on, so neither has to import the other.
type FaultOp int

const (
	// FaultNone delivers the message normally.
	FaultNone FaultOp = iota
	// FaultDelay delays the message by the returned duration.
	FaultDelay
	// FaultDropConn breaks the underlying connection instead of delivering;
	// a resilient transport recovers it by reconnect + retransmit, a
	// non-resilient one fails the pair.
	FaultDropConn
	// FaultDuplicate delivers the message twice; sequence-number
	// deduplication must discard the second copy.
	FaultDuplicate
)

// String names the op.
func (op FaultOp) String() string {
	switch op {
	case FaultNone:
		return "none"
	case FaultDelay:
		return "delay"
	case FaultDropConn:
		return "drop"
	case FaultDuplicate:
		return "dup"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(op))
	}
}

// FaultInjector is consulted by a transport once per outbound message on the
// directed pair src->dst (first transmission only, never on retransmits).
// Implementations must be safe for concurrent use and deterministic per
// pair: the k-th call for a given (src, dst) always returns the same action
// regardless of interleaving with other pairs.
type FaultInjector interface {
	FrameFault(src, dst int) (FaultOp, time.Duration)
}

// Killer is implemented by communicators that can simulate the death of
// their own rank: after Kill, every operation involving the rank fails with
// a RankError on all surviving ranks.
type Killer interface {
	Kill() error
}
