package conformance

import (
	"fmt"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// TestInstrumentedConformance runs the same random programs through the obsv
// instrumenting wrapper on every transport: instrumentation must be
// semantics-preserving — identical matching, ordering and payload delivery —
// while recording every operation it passed through.
func TestInstrumentedConformance(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(2000 + trial)
		n := 2 + trial%4 // 2..5 ranks
		prog := genProgram(seed, n, 3, 12)
		for name, runner := range transports(t, n) {
			name, runner := name, runner
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				var mu sync.Mutex
				recs := make(map[int]*obsv.Recorder)
				err := runner(func(c mpi.Comm) error {
					rec := obsv.NewRecorder(c.Rank())
					mu.Lock()
					recs[c.Rank()] = rec
					mu.Unlock()
					return prog.runRank(obsv.Instrument(c, rec))
				})
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				// Each rank must have recorded exactly its share of the
				// program, with no failed operation.
				for r, rec := range recs {
					var sends, recvs int
					for _, e := range rec.Events() {
						if e.Err != "" {
							t.Errorf("rank %d: recorded error %q", r, e.Err)
						}
						switch e.Kind {
						case obsv.KindSend:
							sends++
						case obsv.KindRecv:
							recvs++
						}
					}
					wantSends, wantRecvs := 0, 0
					for _, ms := range prog.rounds {
						for _, m := range ms {
							if m.src == r {
								wantSends++
							}
							if m.dst == r {
								wantRecvs++
							}
						}
					}
					if sends != wantSends || recvs != wantRecvs {
						t.Errorf("rank %d recorded %d sends, %d recvs; program has %d, %d",
							r, sends, recvs, wantSends, wantRecvs)
					}
				}
			})
		}
	}
}

// TestInstrumentedScheduledAlltoall runs the paper's generated routine
// through the instrumented wrapper on the mem and tcp transports and checks
// both the delivered bytes and the recorded event structure: n-1 data sends
// and receives per rank, phase markers covering the schedule, and send sizes
// equal to the block size.
func TestInstrumentedScheduledAlltoall(t *testing.T) {
	const msize = 512
	g := starGraph(5)
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	n := sc.NumRanks()
	for name, runner := range transports(t, n) {
		if name == "simnet" {
			// The simulator world models the alltoall itself; the scheduled
			// routine is exercised on the executable transports here.
			continue
		}
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			var mu sync.Mutex
			recs := make([]*obsv.Recorder, n)
			err := runner(func(c mpi.Comm) error {
				rec := obsv.NewRecorder(c.Rank())
				mu.Lock()
				recs[c.Rank()] = rec
				mu.Unlock()
				ic := obsv.Instrument(c, rec)
				me := ic.Rank()
				b := alltoall.NewContig(n, msize)
				for dst := 0; dst < n; dst++ {
					blk := b.SendBlock(dst)
					for i := range blk {
						blk[i] = byte(me*31 + dst*7 + i)
					}
				}
				if err := sc.Fn()(ic, b, msize); err != nil {
					return err
				}
				for src := 0; src < n; src++ {
					blk := b.RecvBlock(src)
					for i := range blk {
						if blk[i] != byte(src*31+me*7+i) {
							return fmt.Errorf("rank %d: corrupt byte %d from %d", me, i, src)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, rec := range recs {
				var dataSends, dataRecvs, phases int
				for _, e := range rec.Events() {
					switch e.Kind {
					case obsv.KindSend:
						if e.Bytes == msize {
							dataSends++
						}
					case obsv.KindRecv:
						if e.Bytes == msize {
							dataRecvs++
						}
					case obsv.KindPhase:
						phases++
					}
				}
				if dataSends != n-1 || dataRecvs != n-1 {
					t.Errorf("rank %d: %d data sends, %d data recvs; want %d each",
						r, dataSends, dataRecvs, n-1)
				}
				if phases == 0 {
					t.Errorf("rank %d: no phase markers recorded", r)
				}
			}
			// Phase statistics over the merged events must account every
			// data send of the schedule.
			stats := obsv.PhaseStats(obsv.MergedEvents(recs...))
			total := 0
			for _, st := range stats {
				total += st.Sends
			}
			if total != n*(n-1) {
				t.Errorf("phase stats cover %d sends, want %d", total, n*(n-1))
			}
		})
	}
}
