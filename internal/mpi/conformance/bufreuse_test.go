package conformance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
)

// The buffer-reuse suite proves the transports' recycling machinery — the
// tcp payload pool, its epoch-aware send-copy release, and the mem op
// freelist — never aliases a buffer a user or an in-flight frame still
// owns. Each round every rank exchanges pattern-filled messages with every
// peer while the test stresses exactly the hazards the pools introduce:
//
//   - late-posted receives park pooled payloads in the matcher's arrived
//     queue while the pool keeps cycling underneath them;
//   - send buffers are scribbled over the moment their Wait returns, so a
//     transport retransmitting from the user's buffer instead of its own
//     copy corrupts the stream detectably;
//   - received data is verified immediately AND after the next round's
//     churn has recycled every pooled buffer, catching writes into buffers
//     the transport no longer owns;
//   - message sizes straddle pool size classes, including odd (non
//     power-of-two) lengths and a size large enough to span several frames.
//
// The tcp variant also runs under a Drop fault plan forcing reconnects
// mid-exchange, so retransmissions replay from pooled send copies whose
// release is gated on the cumulative ack.

// reuseRounds and reuseSizes define the exchange grid.
const reuseRounds = 6

var reuseSizes = []int{17, 64, 1000, 1024, 4096}

// reuseSize picks the message size for (round, src, dst).
func reuseSize(round, src, dst int) int {
	return reuseSizes[(round+src*3+dst)%len(reuseSizes)]
}

// reuseFill writes the deterministic pattern for (round, src, dst).
func reuseFill(buf []byte, round, src, dst int) {
	for i := range buf {
		buf[i] = byte(round*131 + src*31 + dst*17 + i*7)
	}
}

// runBufReuseRank is one rank's side of the exchange. It returns the final
// round's receive buffers so the caller can re-verify them after every rank
// has finished (and, on tcp, after the world has drained its acks).
func runBufReuseRank(c mpi.Comm, n int) error {
	me := c.Rank()
	// Two receive-buffer sets, ping-ponged between rounds: set k%2 is
	// verified right after round k and again after round k+1 has churned
	// the pools.
	var recvSets [2][][]byte
	for s := range recvSets {
		recvSets[s] = make([][]byte, n)
		for p := 0; p < n; p++ {
			recvSets[s][p] = make([]byte, 8192)
		}
	}
	sendBufs := make([][]byte, n)
	for p := 0; p < n; p++ {
		sendBufs[p] = make([]byte, 8192)
	}
	verify := func(round int, set [][]byte) error {
		for src := 0; src < n; src++ {
			if src == me {
				continue
			}
			size := reuseSize(round, src, me)
			want := make([]byte, size)
			reuseFill(want, round, src, me)
			if !bytes.Equal(set[src][:size], want) {
				return fmt.Errorf("rank %d round %d: payload from %d corrupted", me, round, src)
			}
		}
		return nil
	}
	for round := 0; round < reuseRounds; round++ {
		set := recvSets[round%2]
		reqs := make([]mpi.Request, 0, 2*(n-1))
		// Post the receives from even-offset peers now; the rest are posted
		// late, after the senders have likely delivered, so those payloads
		// wait in the matcher holding pooled buffers.
		var late []int
		for off := 1; off < n; off++ {
			src := (me + off) % n
			if off%2 == 0 {
				reqs = append(reqs, c.Irecv(set[src][:reuseSize(round, src, me)], src, round))
			} else {
				late = append(late, src)
			}
		}
		sendReqs := make([]mpi.Request, 0, n-1)
		for off := 1; off < n; off++ {
			dst := (me + off) % n
			size := reuseSize(round, me, dst)
			reuseFill(sendBufs[dst][:size], round, me, dst)
			sendReqs = append(sendReqs, c.Isend(sendBufs[dst][:size], dst, round))
		}
		time.Sleep(time.Millisecond) // let in-flight payloads land unmatched
		for _, src := range late {
			reqs = append(reqs, c.Irecv(set[src][:reuseSize(round, src, me)], src, round))
		}
		if err := mpi.WaitAll(sendReqs); err != nil {
			//aapc:allow waitcheck the test aborts; pending receives are abandoned with the world
			return fmt.Errorf("rank %d round %d send: %w", me, round, err)
		}
		// Sends are complete: the transport must own any bytes it still
		// needs (retransmits included). Scribbling the user buffers now
		// makes a transport that cheats corrupt the stream detectably.
		for p := 0; p < n; p++ {
			if p != me {
				for i := range sendBufs[p] {
					sendBufs[p][i] = 0xEE
				}
			}
		}
		if err := mpi.WaitAll(reqs); err != nil {
			return fmt.Errorf("rank %d round %d recv: %w", me, round, err)
		}
		if err := verify(round, set); err != nil {
			return err
		}
		// The previous round's buffers went through a full round of pool
		// churn since delivery; they must be untouched.
		if round > 0 {
			if err := verify(round-1, recvSets[(round-1)%2]); err != nil {
				return fmt.Errorf("late corruption: %w", err)
			}
		}
	}
	return nil
}

// TestBufferReuseSafetyMem exercises the mem transport's op freelist.
func TestBufferReuseSafetyMem(t *testing.T) {
	const n = 4
	err := watchdog(t, func() error {
		return mem.Run(n, func(c mpi.Comm) error { return runBufReuseRank(c, n) })
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBufferReuseSafetyTCP exercises the tcp payload pool on a clean world.
func TestBufferReuseSafetyTCP(t *testing.T) {
	const n = 4
	err := watchdog(t, func() error {
		return tcp.Run(n, func(c mpi.Comm) error { return runBufReuseRank(c, n) },
			tcp.WithOpDeadline(chaosWatchdog/2))
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBufferReuseSafetyTCPReconnect adds injected connection drops: every
// reconnect rewinds the retransmit window, so frames replay from pooled send
// copies while acks race to release them. Several seeds vary where in the
// exchange the drops land.
func TestBufferReuseSafetyTCPReconnect(t *testing.T) {
	const n = 4
	for trial := 0; trial < 3; trial++ {
		seed := int64(9500 + trial)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
				{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Prob: 0.05, Count: 8},
				{Kind: faults.Dup, Src: faults.Any, Dst: faults.Any, Prob: 0.1, Count: 10},
			}}
			inj := faults.New(plan)
			err := watchdog(t, func() error {
				return tcp.Run(n, func(c mpi.Comm) error { return runBufReuseRank(c, n) },
					tcp.WithFaults(inj), tcp.WithOpDeadline(chaosWatchdog/2))
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
