package conformance

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
)

// The chaos suite runs the same randomized programs as the conformance
// tests, but through the fault-injection layer. The contract under faults:
//
//   - benign faults (delays, stalls, duplicated frames, transient
//     connection drops on the resilient transport) must not change the
//     outcome — every payload byte-exact;
//   - hard faults (killed ranks, lost messages without retransmission)
//     must surface as typed errors (*mpi.RankError, *mpi.TimeoutError);
//   - in no case may a rank hang: every run finishes inside a watchdog.
//
// chaosWatchdog bounds one whole run; a hang dumps all stacks.
const chaosWatchdog = 60 * time.Second

func watchdog(t *testing.T, run func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		return err
	case <-time.After(chaosWatchdog):
		buf := make([]byte, 1<<21)
		n := runtime.Stack(buf, true)
		t.Fatalf("chaos run hung past %v\n%s", chaosWatchdog, buf[:n])
		return nil
	}
}

// typedOrNil fails the test unless err is nil or a typed fault error.
func typedOrNil(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if _, ok := mpi.AsRankError(err); ok {
		return
	}
	if mpi.IsTimeout(err) {
		return
	}
	t.Fatalf("untyped failure escaped the fault layer: %v", err)
}

// benignPlan generates delays and stalls (and frame duplicates when
// dupOK) — faults that must never affect correctness.
func benignPlan(seed int64, n int, dupOK bool) *faults.Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &faults.Plan{Seed: seed}
	for i := 0; i < 2+rng.Intn(3); i++ {
		p.Rules = append(p.Rules, faults.Rule{
			Kind:  faults.Delay,
			Src:   faults.Any,
			Dst:   rng.Intn(n),
			Delay: time.Duration(rng.Intn(3)+1) * time.Millisecond,
			Prob:  0.2 + 0.3*rng.Float64(),
		})
	}
	p.Rules = append(p.Rules, faults.Rule{
		Kind:  faults.Stall,
		Src:   rng.Intn(n),
		Delay: time.Duration(rng.Intn(4)+1) * time.Millisecond,
		Count: 2 + rng.Intn(4),
	})
	if dupOK {
		p.Rules = append(p.Rules, faults.Rule{
			Kind: faults.Dup,
			Src:  faults.Any,
			Dst:  faults.Any,
			Prob: 0.3,
		})
	}
	return p
}

// TestChaosBenignMem: delays and stalls through the comm-level wrapper on
// the in-process transport must leave every program byte-exact.
func TestChaosBenignMem(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(9000 + trial)
		n := 2 + trial%3
		prog := genProgram(seed, n, 3, 10)
		plan := benignPlan(seed, n, false)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faults.New(plan)
			inj.SetOpTimeout(chaosWatchdog / 2)
			err := watchdog(t, func() error {
				return mem.Run(n, func(c mpi.Comm) error {
					return prog.runRank(inj.Wrap(c))
				})
			})
			if err != nil {
				t.Fatalf("benign faults changed the outcome: %v", err)
			}
		})
	}
}

// TestChaosBenignTCP: frame-level delays and duplicates plus comm-level
// stalls on the resilient TCP transport must leave every program
// byte-exact.
func TestChaosBenignTCP(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		seed := int64(9100 + trial)
		n := 2 + trial%3
		prog := genProgram(seed, n, 2, 10)
		plan := benignPlan(seed, n, true)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faults.New(plan)
			err := watchdog(t, func() error {
				return tcp.Run(n, func(c mpi.Comm) error {
					return prog.runRank(inj.WrapRankOnly(c))
				}, tcp.WithFaults(inj), tcp.WithOpDeadline(chaosWatchdog/2))
			})
			if err != nil {
				t.Fatalf("benign faults changed the outcome: %v", err)
			}
		})
	}
}

// TestChaosTransientDropsTCP: injected connection drops under randomized
// programs must be fully absorbed by reconnect + retransmit.
func TestChaosTransientDropsTCP(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		seed := int64(9200 + trial)
		n := 3 + trial%2
		prog := genProgram(seed, n, 2, 12)
		plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
			{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Prob: 0.1, Count: 6},
		}}
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faults.New(plan)
			err := watchdog(t, func() error {
				return tcp.Run(n, func(c mpi.Comm) error {
					return prog.runRank(c)
				}, tcp.WithFaults(inj), tcp.WithOpDeadline(chaosWatchdog/2))
			})
			if err != nil {
				t.Fatalf("transient drops changed the outcome: %v", err)
			}
		})
	}
}

// TestChaosKill runs kill plans on both transports: the run must finish
// inside the watchdog and any error must be typed.
func TestChaosKill(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(9300 + trial)
		n := 3 + trial%2
		victim := trial % n
		after := 1 + trial
		prog := genProgram(seed, n, 3, 10)
		plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
			{Kind: faults.Kill, Src: victim, Dst: faults.Any, After: after},
		}}
		t.Run(fmt.Sprintf("mem/seed%d", seed), func(t *testing.T) {
			inj := faults.New(plan)
			inj.SetOpTimeout(5 * time.Second)
			err := watchdog(t, func() error {
				return mem.Run(n, func(c mpi.Comm) error {
					return prog.runRank(inj.Wrap(c))
				})
			})
			typedOrNil(t, err)
			if !inj.Killed(victim) {
				t.Fatalf("kill rule for rank %d never fired", victim)
			}
		})
		t.Run(fmt.Sprintf("tcp/seed%d", seed), func(t *testing.T) {
			inj := faults.New(plan)
			err := watchdog(t, func() error {
				return tcp.Run(n, func(c mpi.Comm) error {
					return prog.runRank(inj.WrapRankOnly(c))
				}, tcp.WithOpDeadline(5*time.Second))
			})
			typedOrNil(t, err)
			if !inj.Killed(victim) {
				t.Fatalf("kill rule for rank %d never fired", victim)
			}
		})
	}
}

// TestChaosLostMessagesMem: comm-level drops on a transport without
// retransmission must surface as timeouts on the receiver side — fail
// closed, not hang.
func TestChaosLostMessagesMem(t *testing.T) {
	seed := int64(9400)
	const n = 3
	prog := genProgram(seed, n, 2, 10)
	plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Prob: 0.3},
	}}
	inj := faults.New(plan)
	inj.SetOpTimeout(500 * time.Millisecond)
	err := watchdog(t, func() error {
		return mem.Run(n, func(c mpi.Comm) error {
			return prog.runRank(inj.Wrap(c))
		})
	})
	if len(inj.Events()) == 0 {
		t.Fatal("no drops fired; test is vacuous")
	}
	// With ~30% of messages lost the program all but certainly fails; what
	// matters is that it fails typed.
	typedOrNil(t, err)
}

// TestChaosDeterminismAcrossTransports: the same plan and seed produce the
// same injected frame-event sequence on repeated tcp runs, even though
// goroutine interleaving differs — the end-to-end version of the
// injector-level determinism test.
func TestChaosDeterminismAcrossTransports(t *testing.T) {
	seed := int64(9500)
	const n = 3
	prog := genProgram(seed, n, 2, 8)
	plan := &faults.Plan{Seed: seed, Rules: []faults.Rule{
		{Kind: faults.Delay, Src: faults.Any, Dst: faults.Any, Delay: time.Millisecond, Prob: 0.4},
		{Kind: faults.Dup, Src: faults.Any, Dst: faults.Any, Prob: 0.25},
	}}
	var want []faults.Event
	for i := 0; i < 3; i++ {
		inj := faults.New(plan)
		err := watchdog(t, func() error {
			return tcp.Run(n, func(c mpi.Comm) error {
				return prog.runRank(c)
			}, tcp.WithFaults(inj), tcp.WithOpDeadline(chaosWatchdog/2))
		})
		if err != nil {
			t.Fatal(err)
		}
		evs := inj.Events()
		if i == 0 {
			want = evs
			if len(want) == 0 {
				t.Fatal("no events; determinism test is vacuous")
			}
			continue
		}
		if len(evs) != len(want) {
			t.Fatalf("run %d: %d events, first run had %d\n%v\nvs\n%v",
				i, len(evs), len(want), evs, want)
		}
		for k := range evs {
			if evs[k] != want[k] {
				t.Fatalf("run %d: event %d = %v, first run had %v", i, k, evs[k], want[k])
			}
		}
	}
}
