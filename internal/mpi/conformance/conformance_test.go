// Package conformance cross-checks every transport in the repository —
// in-process (mem), shared memory (shm), loopback TCP (tcp), distributed
// TCP (tcp.Join, both over shm pair segments and forced pure-TCP) and the
// virtual-time simulator (simnet) — against a common model: randomly
// generated message programs whose outcome is computable from MPI matching
// semantics (per-(source, destination, tag) FIFO). Any divergence in
// matching, ordering or payload delivery on any transport fails here.
package conformance

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// message is one point-to-point transfer of the generated program.
type message struct {
	src, dst, tag int
	size          int
	seq           int // global index; determines the payload
}

// program is a randomly generated communication pattern in two barrier-
// separated rounds.
type program struct {
	n      int
	rounds [][]message
}

// payloadByte gives byte i of message seq.
func payloadByte(seq, i int) byte { return byte(seq*131 + i*7 + 3) }

// genProgram builds a random program: k messages per round with random
// endpoints, tags and sizes (including zero-length messages).
func genProgram(seed int64, n, rounds, perRound int) *program {
	rng := rand.New(rand.NewSource(seed))
	p := &program{n: n}
	seq := 0
	for r := 0; r < rounds; r++ {
		var ms []message
		for k := 0; k < perRound; k++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			for dst == src {
				dst = rng.Intn(n)
			}
			ms = append(ms, message{
				src:  src,
				dst:  dst,
				tag:  rng.Intn(3),
				size: rng.Intn(1500),
				seq:  seq,
			})
			seq++
		}
		p.rounds = append(p.rounds, ms)
	}
	return p
}

// runRank executes one rank's part of the program: per round, post all
// receives (in program order), then all sends, wait, verify, barrier.
func (p *program) runRank(c mpi.Comm) error {
	me := c.Rank()
	for ri, ms := range p.rounds {
		type pendingRecv struct {
			msg message
			buf []byte
			req mpi.Request
		}
		var recvs []pendingRecv
		var sends []mpi.Request
		for _, m := range ms {
			if m.dst == me {
				buf := make([]byte, m.size)
				recvs = append(recvs, pendingRecv{
					msg: m,
					buf: buf,
					req: c.Irecv(buf, m.src, m.tag),
				})
			}
		}
		for _, m := range ms {
			if m.src == me {
				buf := make([]byte, m.size)
				for i := range buf {
					buf[i] = payloadByte(m.seq, i)
				}
				sends = append(sends, c.Isend(buf, m.dst, m.tag))
			}
		}
		for _, pr := range recvs {
			if err := pr.req.Wait(); err != nil {
				//aapc:allow waitcheck the test aborts; in-flight sends are abandoned with the world
				return fmt.Errorf("round %d msg %d: recv: %w", ri, pr.msg.seq, err)
			}
			for i, b := range pr.buf {
				if b != payloadByte(pr.msg.seq, i) {
					//aapc:allow waitcheck the test aborts; in-flight sends are abandoned with the world
					return fmt.Errorf("round %d msg %d (src %d tag %d): byte %d = %d, want %d",
						ri, pr.msg.seq, pr.msg.src, pr.msg.tag, i, b, payloadByte(pr.msg.seq, i))
				}
			}
		}
		if err := mpi.WaitAll(sends); err != nil {
			return fmt.Errorf("round %d: send: %w", ri, err)
		}
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("round %d: barrier: %w", ri, err)
		}
	}
	return nil
}

// starGraph builds the simnet topology for n ranks.
func starGraph(n int) *topology.Graph {
	g := topology.New()
	sw := g.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		m := g.MustAddMachine(fmt.Sprintf("h%d", i))
		g.MustConnect(sw, m)
	}
	return g.MustValidate()
}

// transports enumerates the runners under test.
func transports(t *testing.T, n int) map[string]func(fn func(c mpi.Comm) error) error {
	t.Helper()
	return map[string]func(fn func(c mpi.Comm) error) error{
		"mem": func(fn func(c mpi.Comm) error) error {
			return mem.Run(n, fn)
		},
		"tcp": func(fn func(c mpi.Comm) error) error {
			return tcp.Run(n, fn)
		},
		"shm": func(fn func(c mpi.Comm) error) error {
			return shm.Run(n, fn)
		},
		// With every test joiner on one host, the default distributed mesh
		// links all pairs through shm segments; the second variant forces
		// the pure socket mesh so both data planes stay covered.
		"tcp-distributed":     distributedRunner(n),
		"tcp-distributed-tcp": distributedRunner(n, tcp.WithoutSharedMemory()),
		"simnet": func(fn func(c mpi.Comm) error) error {
			w, err := simnet.NewWorld(simnet.Config{Graph: starGraph(n)})
			if err != nil {
				return err
			}
			return w.Run(fn)
		},
	}
}

// distributedRunner builds a runner over a real coordinator rendezvous with
// n concurrent joiners.
func distributedRunner(n int, opts ...tcp.JoinOption) func(fn func(c mpi.Comm) error) error {
	return func(fn func(c mpi.Comm) error) error {
		coord, err := tcp.StartCoordinator("127.0.0.1:0", n)
		if err != nil {
			return err
		}
		var wg sync.WaitGroup
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, closeFn, err := tcp.Join(coord.Addr(), opts...)
				if err != nil {
					errs <- err
					return
				}
				err = fn(c)
				// Close only after every rank is done with the mesh.
				if berr := c.Barrier(); err == nil {
					err = berr
				}
				closeFn()
				errs <- err
			}()
		}
		wg.Wait()
		var first error
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil && first == nil {
				first = err
			}
		}
		return first
	}
}

// TestTransportConformance runs the same random programs on every transport.
func TestTransportConformance(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := int64(1000 + trial)
		n := 2 + trial%4 // 2..5 ranks
		prog := genProgram(seed, n, 3, 12)
		for name, runner := range transports(t, n) {
			name, runner := name, runner
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				if err := runner(prog.runRank); err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
			})
		}
	}
}

// TestTransportConformanceHeavy stresses one bigger program per transport:
// more ranks, more messages, larger payloads.
func TestTransportConformanceHeavy(t *testing.T) {
	const n = 8
	prog := genProgram(424242, n, 2, 120)
	for name, runner := range transports(t, n) {
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			if err := runner(prog.runRank); err != nil {
				t.Fatal(err)
			}
		})
	}
}
