package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/shm"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
)

// xfer is one randomly drawn typed transfer. The payload size factors as
// A*B*C so the sender's strided view (A blocks of B*C bytes) and the
// receiver's differently-strided view (A*B blocks of C bytes) always cover
// the same byte count while disagreeing on layout.
type xfer struct {
	A, B, C    int
	SPad, RPad int // gap bytes between consecutive blocks
	Seed       int64
}

// Generate implements quick.Generator with always-valid dimensions.
func (xfer) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(xfer{
		A:    1 + r.Intn(5),
		B:    1 + r.Intn(5),
		C:    1 + r.Intn(6),
		SPad: r.Intn(9),
		RPad: r.Intn(9),
		Seed: r.Int63(),
	})
}

// layouts builds the two views; rdt degenerates to a contiguous layout
// whenever RPad is zero, so the strided<->contiguous corner is drawn too.
func (x xfer) layouts() (sdt, rdt mpi.Datatype) {
	sdt = mpi.Vector(x.A, x.B*x.C, x.B*x.C+x.SPad)
	if x.RPad == 0 {
		rdt = mpi.Contiguous(x.A * x.B * x.C)
	} else {
		rdt = mpi.Vector(x.A*x.B, x.C, x.C+x.RPad)
	}
	return sdt, rdt
}

// runTyped executes the transfer on a 2-rank world: rank 0 sends its strided
// view, rank 1 receives into its own view, and the property holds when the
// packed byte streams agree AND no byte outside the receiver's blocks was
// touched.
func (x xfer) runTyped(runner func(fn func(c mpi.Comm) error) error) error {
	sdt, rdt := x.layouts()
	payload := make([]byte, sdt.Size())
	rng := rand.New(rand.NewSource(x.Seed))
	rng.Read(payload)
	return runner(func(c mpi.Comm) error {
		const tag = 7
		if c.Rank() == 0 {
			base := make([]byte, sdt.Extent())
			for i := range base {
				base[i] = 0xEE
			}
			sdt.Unpack(base, payload)
			return mpi.WaitTimeout(mpi.IsendTyped(c, base, sdt, 1, tag), quickOpTimeout)
		}
		base := make([]byte, rdt.Extent())
		for i := range base {
			base[i] = 0xEE
		}
		if err := mpi.WaitTimeout(mpi.IrecvTyped(c, base, rdt, 0, tag), quickOpTimeout); err != nil {
			return err
		}
		want := make([]byte, rdt.Extent())
		for i := range want {
			want[i] = 0xEE
		}
		rdt.Unpack(want, payload)
		if !bytes.Equal(base, want) {
			got := make([]byte, rdt.Size())
			rdt.Pack(got, base)
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("packed stream diverged for %+v", x)
			}
			return fmt.Errorf("bytes outside receive blocks clobbered for %+v", x)
		}
		return nil
	})
}

const quickOpTimeout = 30 * time.Second // far above any healthy transfer

// TestTypedTransferQuick is the cross-transport property test: any randomly
// drawn strided<->strided (or strided<->contiguous) transfer is
// byte-identical after packing on every transport, including a TCP world
// whose first data frame per pair is force-dropped so delivery rides the
// reconnect + retransmit path.
func TestTypedTransferQuick(t *testing.T) {
	dropFirst := &faults.Plan{Seed: 99, Rules: []faults.Rule{
		{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Count: 1},
	}}
	runners := map[string]func(fn func(c mpi.Comm) error) error{
		"mem": func(fn func(c mpi.Comm) error) error { return mem.Run(2, fn) },
		"shm": func(fn func(c mpi.Comm) error) error { return shm.Run(2, fn) },
		"tcp": func(fn func(c mpi.Comm) error) error { return tcp.Run(2, fn) },
		"tcp-reconnect": func(fn func(c mpi.Comm) error) error {
			return tcp.Run(2, fn, tcp.WithFaults(faults.New(dropFirst)))
		},
	}
	for name, runner := range runners {
		name, runner := name, runner
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := &quick.Config{
				MaxCount: 10,
				Rand:     rand.New(rand.NewSource(int64(len(name)) * 7919)),
			}
			if err := quick.Check(func(x xfer) bool {
				if err := x.runTyped(runner); err != nil {
					t.Log(err)
					return false
				}
				return true
			}, cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTypedTransferReconnectRecovers pins the fault variant actually
// exercising the resilience layer: with the first frame of every pair
// dropped, the world must record reconnects or retransmits, not silently
// deliver on the first try.
func TestTypedTransferReconnectRecovers(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Kind: faults.Drop, Src: faults.Any, Dst: faults.Any, Count: 1},
	}}
	var recovered bool
	err := tcp.Run(2, func(c mpi.Comm) error {
		x := xfer{A: 3, B: 2, C: 4, SPad: 3, RPad: 1, Seed: 11}
		sdt, rdt := x.layouts()
		payload := make([]byte, sdt.Size())
		rand.New(rand.NewSource(x.Seed)).Read(payload)
		const tag = 2
		if c.Rank() == 0 {
			base := make([]byte, sdt.Extent())
			sdt.Unpack(base, payload)
			if err := mpi.WaitTimeout(mpi.IsendTyped(c, base, sdt, 1, tag), quickOpTimeout); err != nil {
				return err
			}
		} else {
			base := make([]byte, rdt.Extent())
			if err := mpi.WaitTimeout(mpi.IrecvTyped(c, base, rdt, 0, tag), quickOpTimeout); err != nil {
				return err
			}
			got := make([]byte, rdt.Size())
			rdt.Pack(got, base)
			if !bytes.Equal(got, payload) {
				return fmt.Errorf("payload diverged across reconnect")
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// World stats are shared; sample from one rank to keep the flag
		// single-writer.
		if c.Rank() == 0 {
			s := c.(interface{ TransportStats() tcp.Stats }).TransportStats()
			recovered = s.Reconnects > 0 || s.Retransmits > 0
		}
		return nil
	}, tcp.WithFaults(faults.New(plan)))
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("fault plan injected no reconnect/retransmit: property test not covering recovery")
	}
}
