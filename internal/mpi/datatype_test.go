package mpi

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func fillPattern(b []byte, seed byte) {
	for i := range b {
		b[i] = seed + byte(i*7)
	}
}

func TestDatatypeGeometry(t *testing.T) {
	cases := []struct {
		dt           Datatype
		size, extent int
		contig       bool
	}{
		{Contiguous(0), 0, 0, true},
		{Contiguous(17), 17, 17, true},
		{Vector(4, 8, 8), 32, 32, true},
		{Vector(4, 8, 32), 32, 3*32 + 8, false},
		{Vector(1, 5, 100), 5, 5, true},
		{Datatype{}, 0, 0, true},
	}
	for i, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("case %d: Size=%d want %d", i, got, c.size)
		}
		if got := c.dt.Extent(); got != c.extent {
			t.Errorf("case %d: Extent=%d want %d", i, got, c.extent)
		}
		if got := c.dt.Contig(); got != c.contig {
			t.Errorf("case %d: Contig=%v want %v", i, got, c.contig)
		}
	}
	if !(Datatype{}).IsZero() {
		t.Error("zero Datatype should be IsZero")
	}
	if Contiguous(0).IsZero() {
		t.Error("Contiguous(0) must not be the untyped marker")
	}
}

func TestDatatypeValidate(t *testing.T) {
	if err := Vector(4, 8, 32).Validate(3*32 + 8); err != nil {
		t.Errorf("exact-fit layout rejected: %v", err)
	}
	if err := Vector(4, 8, 32).Validate(3*32 + 7); err == nil {
		t.Error("overrun layout accepted")
	}
	if err := Vector(2, 8, 4).Validate(100); err == nil {
		t.Error("overlapping blocks accepted")
	}
}

func TestDatatypePackUnpackRoundTrip(t *testing.T) {
	dt := Vector(5, 3, 10)
	base := make([]byte, dt.Extent())
	fillPattern(base, 1)
	packed := make([]byte, dt.Size())
	if n := dt.Pack(packed, base); n != dt.Size() {
		t.Fatalf("Pack=%d want %d", n, dt.Size())
	}
	out := make([]byte, dt.Extent())
	if n := dt.Unpack(out, packed); n != dt.Size() {
		t.Fatalf("Unpack=%d want %d", n, dt.Size())
	}
	for i := 0; i < dt.Count(); i++ {
		if !bytes.Equal(dt.Block(out, i), dt.Block(base, i)) {
			t.Fatalf("block %d mismatch after round trip", i)
		}
	}
	// Gaps must be untouched.
	for i := range out {
		inBlock := false
		for b := 0; b < dt.Count(); b++ {
			if i >= b*dt.Stride() && i < b*dt.Stride()+dt.BlockLen() {
				inBlock = true
			}
		}
		if !inBlock && out[i] != 0 {
			t.Fatalf("gap byte %d written", i)
		}
	}
}

// CopyTyped between any two layouts of equal Size must equal
// Pack(src)→Unpack(dst).
func TestCopyTypedMatchesPackUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gen := func(size int) Datatype {
		// Random factorization of size into count*blockLen plus slack stride.
		if size == 0 {
			return Contiguous(0)
		}
		bl := 1 + rng.Intn(size)
		for size%bl != 0 {
			bl = 1 + rng.Intn(size)
		}
		count := size / bl
		return Vector(count, bl, bl+rng.Intn(9))
	}
	for iter := 0; iter < 500; iter++ {
		size := rng.Intn(200)
		sdt, ddt := gen(size), gen(size)
		src := make([]byte, sdt.Extent())
		rng.Read(src)
		want := make([]byte, ddt.Extent())
		packed := make([]byte, size)
		sdt.Pack(packed, src)
		ddt.Unpack(want, packed)

		got := make([]byte, ddt.Extent())
		if n := CopyTyped(got, ddt, src, sdt); n != size {
			t.Fatalf("iter %d: CopyTyped=%d want %d (sdt=%+v ddt=%+v)", iter, n, size, sdt, ddt)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: CopyTyped differs from pack/unpack (sdt=%+v ddt=%+v)", iter, sdt, ddt)
		}
	}
}

func TestCopyTypedQuick(t *testing.T) {
	f := func(countS, blS, slackS, countD, slackD uint8, data []byte) bool {
		cs, bs := int(countS%8)+1, int(blS%16)+1
		size := cs * bs
		sdt := Vector(cs, bs, bs+int(slackS%8))
		// Destination: different factorization of the same size.
		cd := int(countD%8) + 1
		for size%cd != 0 {
			cd--
		}
		ddt := Vector(cd, size/cd, size/cd+int(slackD%8))
		src := make([]byte, sdt.Extent())
		copy(src, data)
		packed := make([]byte, size)
		sdt.Pack(packed, src)
		want := make([]byte, ddt.Extent())
		ddt.Unpack(want, packed)
		got := make([]byte, ddt.Extent())
		CopyTyped(got, ddt, src, sdt)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
