package mpi

import "time"

// Causal trace contexts.
//
// A trace context is a compact causal identifier a sender attaches to one
// message so the receiver's span can be linked back to the sender's span
// across rank-local event logs: the observability layer stamps every
// instrumented operation with a per-rank sequence number, packs
// (rank, seq) into a context, and transports that support tracing carry
// the context alongside the payload (an extra header word on tcp frames,
// a field on the in-process and simulated match records). Retransmitted
// frames carry the same context as the original, and duplicate discard
// happens below the matching layer, so one message produces exactly one
// causal edge no matter how often the wire re-delivers it.
//
// The zero context means "no context": both the rank and the sequence
// number are biased so that a valid context is never 0.

// traceSeqBits is the width of the sequence-number field of a context; the
// rank occupies the bits above it. 2^40 operations per rank per run and
// 2^23 ranks are both far beyond anything this repository simulates.
const traceSeqBits = 40

// MakeTraceCtx packs a sender rank and a 1-based per-rank span sequence
// number into a trace context. A valid context is never zero (the rank
// field is biased by one), so 0 always means "untraced".
//
//aapc:noalloc
func MakeTraceCtx(rank int, seq uint64) uint64 {
	return (uint64(rank)+1)<<traceSeqBits | (seq & (1<<traceSeqBits - 1))
}

// SplitTraceCtx unpacks a context built by MakeTraceCtx.
//
//aapc:noalloc
func SplitTraceCtx(ctx uint64) (rank int, seq uint64) {
	return int(ctx>>traceSeqBits) - 1, ctx & (1<<traceSeqBits - 1)
}

// TraceInfo is what a traced wait learns about the completed operation
// beyond its error.
type TraceInfo struct {
	// Ctx is the trace context the matching sender attached, or 0 when the
	// message was sent untraced (or the transport cannot carry contexts).
	Ctx uint64
	// DeliveredAt is the transport's delivery timestamp in Comm.Now()
	// seconds: the moment the payload reached this rank's matching layer,
	// as opposed to the moment the receiver got around to waiting. 0 means
	// unknown. Transports stamp it only for traced messages, keeping the
	// untraced fast path free of clock reads.
	DeliveredAt float64
}

// TracedSender is implemented by transports that can attach a trace
// context to an outgoing message. IsendTraced behaves exactly like Isend
// with the context riding along to the receiver.
type TracedSender interface {
	IsendTraced(buf []byte, dst, tag int, ctx uint64) Request
}

// TracedRequest is implemented by receive requests that can report the
// sender's trace context. WaitTraced must be used instead of Wait (never
// after it): transports recycle completed operations through freelists
// inside Wait, so the context must be read and returned in the same step
// that consumes the completion.
type TracedRequest interface {
	Request
	// WaitTraced behaves like Wait and additionally returns the trace
	// information delivered with the message.
	WaitTraced() (TraceInfo, error)
}

// TracedTimedRequest bounds a traced wait, mirroring TimedRequest.
type TracedTimedRequest interface {
	// WaitTracedTimeout behaves like WaitTimeout and additionally returns
	// the trace information delivered with the message. On timeout the
	// info is zero.
	WaitTracedTimeout(d time.Duration) (TraceInfo, error)
}

// WaitTraced waits for the request and returns the delivered trace
// information, degrading to a plain Wait (zero info) on requests that do
// not support tracing.
func WaitTraced(r Request) (TraceInfo, error) {
	if tr, ok := r.(TracedRequest); ok {
		return tr.WaitTraced()
	}
	return TraceInfo{}, r.Wait()
}

// WaitTracedTimeout is WaitTraced bounded by d, with the same degradation
// ladder as WaitTimeout: d <= 0 or an untimed request waits unbounded, an
// untraced request returns zero info.
func WaitTracedTimeout(r Request, d time.Duration) (TraceInfo, error) {
	if d <= 0 {
		return WaitTraced(r)
	}
	if tr, ok := r.(TracedTimedRequest); ok {
		return tr.WaitTracedTimeout(d)
	}
	if tr, ok := r.(TimedRequest); ok {
		return TraceInfo{}, tr.WaitTimeout(d)
	}
	return WaitTraced(r)
}
