//go:build obsv_off

package obsv

// Enabled is false under -tags obsv_off: Instrument returns communicators
// unchanged and recording methods return immediately, so the layer compiles
// out of the binary.
const Enabled = false
