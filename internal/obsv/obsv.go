// Package obsv is the repository's transport-agnostic observability layer:
// structured events, counters and log2-bucketed histograms recorded while an
// algorithm runs over any mpi.Comm — in-process memory, loopback TCP,
// distributed TCP or the virtual-time simulator.
//
// The paper's whole argument is about where time goes: contention-free
// phases versus oversubscribed edges, synchronization cost versus drift.
// Until now only the simulator could show that (internal/simnet records flow
// traces that internal/trace renders). This package closes the gap for the
// real transports:
//
//   - Instrument wraps a Comm so that every Isend/Irecv/Wait/Barrier becomes
//     an Event (src, dst, tag, bytes, start/finish via Comm.Now()) in a
//     per-rank Recorder. One rank, one Recorder, one uncontended mutex: the
//     hot path is an append and two Now() calls.
//   - alltoall.Scheduled marks phase boundaries and synchronization waits
//     through the Marker interface, making phase drift and stall time
//     first-class measurements on every transport.
//   - The tcp transport and the fault injector feed named Counters
//     (reconnects, retransmits, duplicate discards, injected faults).
//   - Two sinks: a Prometheus-text /metrics HTTP endpoint (metrics.go) and a
//     JSONL event trace (jsonl.go) that internal/trace loads back into the
//     same Gantt/stat rendering used for simulator runs.
//
// Building with -tags obsv_off turns the whole layer into no-ops: Instrument
// returns the communicator unchanged and recording methods return
// immediately, so the instrumentation compiles out of deployments that do
// not want it.
package obsv

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// Kind classifies an Event.
type Kind uint8

const (
	// KindSend is one completed (or failed) nonblocking send.
	KindSend Kind = iota
	// KindRecv is one completed (or failed) nonblocking receive.
	KindRecv
	// KindBarrier is one barrier entry/exit.
	KindBarrier
	// KindPhase marks a rank entering a schedule phase (Marker.MarkPhase);
	// Start == End.
	KindPhase
	// KindSyncWait is the time a rank spent blocked waiting for a pair-wise
	// synchronization message before it was allowed to send.
	KindSyncWait
)

// String names the kind as it appears in JSONL traces.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindBarrier:
		return "barrier"
	case KindPhase:
		return "phase"
	case KindSyncWait:
		return "syncwait"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind for JSON.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the JSON form.
func (k *Kind) UnmarshalText(b []byte) error {
	switch string(b) {
	case "send":
		*k = KindSend
	case "recv":
		*k = KindRecv
	case "barrier":
		*k = KindBarrier
	case "phase":
		*k = KindPhase
	case "syncwait":
		*k = KindSyncWait
	default:
		return fmt.Errorf("obsv: unknown event kind %q", b)
	}
	return nil
}

// Event is one recorded operation. Times are Comm.Now() seconds — wall clock
// on real transports, virtual time in the simulator — so the same analysis
// applies to both.
type Event struct {
	Kind Kind `json:"kind"`
	// Rank is the recording rank.
	Rank int `json:"rank"`
	// Peer is the destination (send), source (recv, syncwait) or -1.
	Peer int `json:"peer"`
	// Tag is the MPI tag of send/recv events.
	Tag int `json:"tag,omitempty"`
	// Bytes is the payload length (send: buffer sent; recv: receive buffer
	// capacity, which every routine in this repository sizes exactly).
	Bytes int `json:"bytes,omitempty"`
	// Phase is the schedule phase the operation belongs to, or -1 when the
	// algorithm did not mark phases.
	Phase int `json:"phase"`
	// Start and End bound the operation: post-to-completion for send/recv,
	// entry-to-exit for barriers, the blocked interval for syncwaits.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Seq numbers the rank's events 1..n in program order. (rank, Seq) is
	// the event's causal identity: senders pack it into the trace context
	// that rides the transport frame (mpi.MakeTraceCtx).
	Seq uint64 `json:"seq,omitempty"`
	// LinkSeq, on a recv event, is the Seq of the matching send event on
	// rank Peer — the cross-rank causal edge. 0 means the transport did not
	// carry a context (or the message was sent uninstrumented).
	LinkSeq uint64 `json:"link,omitempty"`
	// Deliver is the transport's completion timestamp, as opposed to End,
	// which is when the rank finished waiting. On a linked recv it is when
	// the payload reached this rank; on a traced send it is when the
	// message left (mem: the match; tcp: the socket write). An operation
	// posted early and drained late has Deliver well before End. 0 means
	// unknown.
	Deliver float64 `json:"deliver,omitempty"`
	// Err carries the operation's error text, if it failed.
	Err string `json:"err,omitempty"`
}

// Recorder collects one rank's events, counters and histograms. It is safe
// for concurrent use, but the design point is one recorder per rank so the
// mutex is effectively uncontended.
type Recorder struct {
	rank int

	mu sync.Mutex
	// chunks stores events in fixed-size blocks: appending never copies the
	// history (no slice-doubling), so the steady-state cost of record is one
	// in-place append, with one chunk allocation per eventChunkSize events.
	chunks  [][]Event
	nEvents int

	counters Counters

	// sendWait/recvWait/barrierWait/syncWait observe operation latencies in
	// nanoseconds; sendBytes observes send payload sizes in bytes.
	sendWait    Histogram
	recvWait    Histogram
	barrierWait Histogram
	syncWait    Histogram
	sendBytes   Histogram

	bytesSent uint64
	bytesRecv uint64
}

// NewRecorder builds an empty recorder for a rank.
func NewRecorder(rank int) *Recorder { return &Recorder{rank: rank} }

// Rank returns the rank the recorder belongs to.
func (r *Recorder) Rank() int { return r.rank }

// Counters returns the recorder's named counter set (nil-safe: a nil
// recorder returns nil, and Counters methods accept a nil receiver).
func (r *Recorder) Counters() *Counters {
	if r == nil {
		return nil
	}
	return &r.counters
}

// Events returns a copy of every recorded event, in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nEvents == 0 {
		return nil
	}
	out := make([]Event, 0, r.nEvents)
	for _, ch := range r.chunks {
		out = append(out, ch...)
	}
	return out
}

// NumEvents returns the number of recorded events.
func (r *Recorder) NumEvents() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nEvents
}

// eventChunkSize is the block size of the recorder's event storage: one
// allocation per this many events on the record path.
const eventChunkSize = 256

// record appends an event and feeds the derived histograms and byte tallies.
//aapc:noalloc
func (r *Recorder) record(e Event) {
	if !Enabled || r == nil {
		return
	}
	ns := uint64((e.End - e.Start) * 1e9)
	r.mu.Lock()
	if k := len(r.chunks); k == 0 || len(r.chunks[k-1]) == cap(r.chunks[k-1]) {
		// The first chunk is small — a single alltoall records on the order
		// of 64 events per rank — later chunks use the full block size.
		size := 64
		if k > 0 {
			size = eventChunkSize
		}
		r.chunks = append(r.chunks, make([]Event, 0, size)) //aapc:allow noalloc amortized: one chunk per eventChunkSize events
	}
	last := len(r.chunks) - 1
	r.chunks[last] = append(r.chunks[last], e)
	r.nEvents++
	switch e.Kind {
	case KindSend:
		r.sendWait.Observe(ns)
		r.sendBytes.Observe(uint64(e.Bytes))
		r.bytesSent += uint64(e.Bytes)
	case KindRecv:
		r.recvWait.Observe(ns)
		r.bytesRecv += uint64(e.Bytes)
	case KindBarrier:
		r.barrierWait.Observe(ns)
	case KindSyncWait:
		r.syncWait.Observe(ns)
	}
	r.mu.Unlock()
}

// SendWait returns a snapshot of the send-completion latency histogram
// (nanoseconds).
func (r *Recorder) SendWait() Histogram { return r.snap(&r.sendWait) }

// RecvWait returns a snapshot of the receive-completion latency histogram
// (nanoseconds).
func (r *Recorder) RecvWait() Histogram { return r.snap(&r.recvWait) }

// BarrierWait returns a snapshot of the barrier latency histogram
// (nanoseconds).
func (r *Recorder) BarrierWait() Histogram { return r.snap(&r.barrierWait) }

// SyncWait returns a snapshot of the synchronization-stall histogram
// (nanoseconds).
func (r *Recorder) SyncWait() Histogram { return r.snap(&r.syncWait) }

// SendBytes returns a snapshot of the send payload size histogram (bytes).
func (r *Recorder) SendBytes() Histogram { return r.snap(&r.sendBytes) }

// BytesSent and BytesRecv return the cumulative payload volumes.
func (r *Recorder) BytesSent() uint64 { r.mu.Lock(); defer r.mu.Unlock(); return r.bytesSent }

// BytesRecv returns the cumulative bytes posted for receiving.
func (r *Recorder) BytesRecv() uint64 { r.mu.Lock(); defer r.mu.Unlock(); return r.bytesRecv }

func (r *Recorder) snap(h *Histogram) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return *h
}

// MergedEvents concatenates the events of several recorders, ordered by
// start time (ties by rank) — the canonical form for JSONL traces and phase
// analysis.
func MergedEvents(recs ...*Recorder) []Event {
	var out []Event
	for _, r := range recs {
		out = append(out, r.Events()...)
	}
	sortEvents(out)
	return out
}

// Marker is implemented by instrumented communicators: algorithms that know
// their schedule structure (alltoall.Scheduled) mark phase boundaries and
// synchronization stalls through it, turning phase drift into data. Times
// are Comm.Now() seconds.
type Marker interface {
	// MarkPhase records that the rank entered the given schedule phase;
	// subsequent send/recv events are attributed to it.
	MarkPhase(phase int)
	// MarkSyncWait records a blocked interval waiting for the pair-wise
	// synchronization message from peer.
	MarkSyncWait(peer int, start, end float64)
}

// MarkerFor returns the Marker behind a communicator, or nil when the comm
// is not instrumented (or the layer is compiled out).
func MarkerFor(c mpi.Comm) Marker {
	m, _ := c.(Marker)
	return m
}

// OpPhaser lets schedule-aware algorithms attribute a single upcoming
// operation to a phase other than the current one. alltoall.Scheduled
// pre-posts every data receive before entering phase 0; without the hint
// those receives would all be attributed to phase -1 even though each
// belongs to the phase whose message it catches.
type OpPhaser interface {
	// SetNextOpPhase overrides the phase recorded for the next posted
	// Isend/Irecv only; the override is consumed by that operation.
	SetNextOpPhase(phase int)
}

// PhaserFor returns the OpPhaser behind a communicator, or nil when the
// comm is not instrumented (or the layer is compiled out).
func PhaserFor(c mpi.Comm) OpPhaser {
	p, _ := c.(OpPhaser)
	return p
}

// Instrument wraps a communicator so that every operation is recorded into
// r. With a nil recorder — or when the package is built with -tags obsv_off
// — the communicator is returned unchanged, so instrumentation has strictly
// zero cost when unused. The wrapper preserves the optional mpi.TimedRequest
// and mpi.Killer capabilities of the underlying transport.
func Instrument(c mpi.Comm, r *Recorder) mpi.Comm {
	if !Enabled || r == nil || c == nil {
		return c
	}
	ic := &icomm{inner: c, rec: r, phase: -1, nextPhase: -1}
	ic.ts, _ = c.(mpi.TracedSender)
	// The wrapper must present exactly the inner transport's optional
	// capabilities: surfacing a method the transport lacks would make
	// callers take paths the transport cannot honor (a no-op Flush skips a
	// wait that is load-bearing on the simulator), and hiding one would
	// silently demote the zero-copy typed path to the pack fallback under
	// instrumentation.
	tc, typed := c.(mpi.TypedComm)
	fl, flush := c.(mpi.Flusher)
	switch {
	case typed && flush:
		return &icommZC{icommTyped{icomm: ic, tc: tc}, fl}
	case typed:
		return &icommTyped{icomm: ic, tc: tc}
	default:
		return ic
	}
}

// icommTyped extends the decorator over transports with native datatype
// support (mpi.TypedComm), forwarding typed operations so instrumented
// comms keep the zero-copy path. Typed sends go untraced (no causal
// context in the frame); the cross-rank trace graph covers contiguous
// sends, which remain the common case for control traffic.
type icommTyped struct {
	*icomm
	tc mpi.TypedComm
}

//aapc:noalloc
func (c *icommTyped) IsendTyped(base []byte, dt mpi.Datatype, dst, tag int) mpi.Request {
	c.seq++
	ev := Event{Kind: KindSend, Rank: c.inner.Rank(), Peer: dst, Tag: tag,
		Bytes: dt.Size(), Phase: c.opPhase(), Seq: c.seq, Start: c.inner.Now()}
	return c.newReq(c.tc.IsendTyped(base, dt, dst, tag), ev)
}

//aapc:noalloc
func (c *icommTyped) IrecvTyped(base []byte, dt mpi.Datatype, src, tag int) mpi.Request {
	c.seq++
	ev := Event{Kind: KindRecv, Rank: c.inner.Rank(), Peer: src, Tag: tag,
		Bytes: dt.Size(), Phase: c.opPhase(), Seq: c.seq, Start: c.inner.Now()}
	return c.newReq(c.tc.IrecvTyped(base, dt, src, tag), ev)
}

// icommZC additionally forwards the wire-entry watermark wait
// (mpi.Flusher). The wait itself is not recorded as an event: the send and
// sync events around it already bound any stall.
type icommZC struct {
	icommTyped
	fl mpi.Flusher
}

func (c *icommZC) Flush(dst int, d time.Duration) error {
	return c.fl.Flush(dst, d)
}

// icomm is the instrumenting decorator.
type icomm struct {
	inner mpi.Comm
	rec   *Recorder
	// ts is the transport's traced-send capability, type-asserted once at
	// construction; nil when the transport cannot carry trace contexts, in
	// which case sends fall back to plain Isend and receives stay unlinked.
	ts mpi.TracedSender
	// phase is the current schedule phase set through MarkPhase; a Comm is
	// owned by one goroutine, so no lock is needed.
	phase int
	// nextPhase, when >= 0, overrides the phase of the next posted
	// operation only (OpPhaser).
	nextPhase int
	// seq numbers this rank's events 1..n in program order. A send's
	// (rank, seq) is packed into its outgoing trace context.
	seq uint64
	// chunk bump-allocates request wrappers 64 at a time: one heap object
	// per 64 operations instead of one per operation keeps the wrapper's
	// allocation and GC-scan cost off the per-message path. Outstanding
	// *ireq pointers stay valid because a full chunk is abandoned (kept
	// alive by those pointers), never grown in place.
	chunk []ireq
}

// opPhase returns the phase to attribute the next posted operation to,
// consuming any one-shot SetNextOpPhase override.
func (c *icomm) opPhase() int {
	if c.nextPhase >= 0 {
		p := c.nextPhase
		c.nextPhase = -1
		return p
	}
	return c.phase
}

// SetNextOpPhase implements OpPhaser.
func (c *icomm) SetNextOpPhase(phase int) { c.nextPhase = phase }

// newReq wraps a request in the next slot of the current chunk.
//aapc:noalloc
func (c *icomm) newReq(inner mpi.Request, ev Event) *ireq {
	if len(c.chunk) == cap(c.chunk) {
		c.chunk = make([]ireq, 0, 64) //aapc:allow noalloc bump-allocator refill: one heap object per 64 requests
	}
	c.chunk = append(c.chunk, ireq{inner: inner, c: c, ev: ev})
	return &c.chunk[len(c.chunk)-1]
}

func (c *icomm) Rank() int    { return c.inner.Rank() }
func (c *icomm) Size() int    { return c.inner.Size() }
func (c *icomm) Now() float64 { return c.inner.Now() }

// Kill passes through to the underlying transport (mpi.Killer).
func (c *icomm) Kill() error {
	if k, ok := c.inner.(mpi.Killer); ok {
		return k.Kill()
	}
	return fmt.Errorf("obsv: transport cannot kill ranks")
}

// MarkPhase implements Marker.
func (c *icomm) MarkPhase(phase int) {
	now := c.inner.Now()
	c.phase = phase
	c.seq++
	c.rec.record(Event{Kind: KindPhase, Rank: c.inner.Rank(), Peer: -1, Phase: phase,
		Seq: c.seq, Start: now, End: now})
}

// MarkSyncWait implements Marker.
func (c *icomm) MarkSyncWait(peer int, start, end float64) {
	c.seq++
	c.rec.record(Event{Kind: KindSyncWait, Rank: c.inner.Rank(), Peer: peer,
		Phase: c.phase, Seq: c.seq, Start: start, End: end})
}

//aapc:noalloc
func (c *icomm) Isend(buf []byte, dst, tag int) mpi.Request {
	c.seq++
	ev := Event{Kind: KindSend, Rank: c.inner.Rank(), Peer: dst, Tag: tag,
		Bytes: len(buf), Phase: c.opPhase(), Seq: c.seq, Start: c.inner.Now()}
	if c.ts != nil {
		return c.newReq(c.ts.IsendTraced(buf, dst, tag, mpi.MakeTraceCtx(ev.Rank, c.seq)), ev)
	}
	return c.newReq(c.inner.Isend(buf, dst, tag), ev)
}

//aapc:noalloc
func (c *icomm) Irecv(buf []byte, src, tag int) mpi.Request {
	c.seq++
	ev := Event{Kind: KindRecv, Rank: c.inner.Rank(), Peer: src, Tag: tag,
		Bytes: len(buf), Phase: c.opPhase(), Seq: c.seq, Start: c.inner.Now()}
	return c.newReq(c.inner.Irecv(buf, src, tag), ev)
}

func (c *icomm) Barrier() error {
	start := c.inner.Now()
	err := c.inner.Barrier()
	c.seq++
	ev := Event{Kind: KindBarrier, Rank: c.inner.Rank(), Peer: -1,
		Phase: c.phase, Seq: c.seq, Start: start, End: c.inner.Now()}
	if err != nil {
		ev.Err = err.Error()
	}
	c.rec.record(ev)
	return err
}

// ireq records the operation when its wait completes. A request's Wait may
// be called at most once (mpi.Request contract), so completion is recorded
// exactly once per operation — no event loss, no duplication.
type ireq struct {
	inner mpi.Request
	c     *icomm
	ev    Event
	done  bool
}

//aapc:noalloc completion path of every instrumented operation
func (r *ireq) finish(info mpi.TraceInfo, err error) {
	if r.done {
		return
	}
	r.done = true
	r.ev.End = r.c.inner.Now()
	if r.ev.Kind == KindRecv && info.Ctx != 0 {
		// Link the receive to its sender's span. The rank check rejects a
		// context that somehow crossed sources (it cannot on the transports
		// in this repository, but a linked trace must never lie).
		if rank, seq := mpi.SplitTraceCtx(info.Ctx); rank == r.ev.Peer {
			r.ev.LinkSeq = seq
			r.ev.Deliver = info.DeliveredAt
		}
	}
	if r.ev.Kind == KindSend && info.DeliveredAt > 0 {
		// A send whose Wait drained long after the match would otherwise
		// report the drain as its duration; the transport's completion stamp
		// is the honest end of the operation. The context check confirms the
		// info describes this very send.
		if rank, seq := mpi.SplitTraceCtx(info.Ctx); rank == r.ev.Rank && seq == r.ev.Seq {
			r.ev.Deliver = info.DeliveredAt
		}
	}
	if err != nil {
		r.ev.Err = err.Error()
	}
	r.c.rec.record(r.ev)
}

func (r *ireq) Wait() error {
	info, err := mpi.WaitTraced(r.inner)
	r.finish(info, err)
	return err
}

// WaitTimeout bounds the wait when the underlying transport supports
// deadlines, degrading to Wait otherwise (the mpi.WaitTimeout contract). A
// timed-out operation is recorded with its timeout error: the event marks
// when the rank gave up, not when (or whether) the transport finished.
func (r *ireq) WaitTimeout(d time.Duration) error {
	info, err := mpi.WaitTracedTimeout(r.inner, d)
	r.finish(info, err)
	return err
}
