//go:build !obsv_off

package obsv

// Enabled reports whether the observability layer is compiled in. Building
// with -tags obsv_off flips it to false, turning every recording call into a
// constant-folded no-op.
const Enabled = true
