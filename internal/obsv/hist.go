package obsv

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// numBuckets covers the full uint64 range: bucket k holds values v with
// bits.Len64(v) == k, i.e. bucket 0 holds only 0 and bucket k >= 1 holds
// [2^(k-1), 2^k).
const numBuckets = 65

// Histogram is a log2-bucketed histogram of non-negative integer
// observations (nanoseconds for latencies, bytes for sizes). The zero value
// is ready to use. Histograms from different ranks merge exactly: buckets
// add, so cluster-wide quantile estimates cost nothing to assemble.
//
// A Histogram is a plain value with no internal locking: the Recorder
// serializes access to its histograms under the per-rank mutex, and the
// snapshots it hands out are copies that need no synchronization.
type Histogram struct {
	counts  [numBuckets]uint64
	total   uint64
	sum     float64
	maxSeen uint64
}

// Observe records one value. Not safe for concurrent use on a shared
// histogram; Recorder guards its histograms with the per-rank mutex.
func (h *Histogram) Observe(v uint64) {
	if !Enabled || h == nil {
		return
	}
	h.counts[bits.Len64(v)]++
	h.total++
	h.sum += float64(v)
	if v > h.maxSeen {
		h.maxSeen = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.maxSeen }

// Mean returns the arithmetic mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Merge adds other's buckets into h. Exact: merging per-rank histograms
// yields the histogram the whole world would have recorded.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) as the geometric midpoint
// of the bucket containing the q-th observation. The estimate is exact to
// within a factor of 2 — sufficient for latency triage, free to maintain.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for k, c := range h.counts {
		cum += c
		if cum >= rank {
			return bucketMid(k)
		}
	}
	return bucketMid(numBuckets - 1)
}

// bucketMid returns the representative value of bucket k: 0 for the zero
// bucket, the geometric midpoint sqrt(2^(k-1) * 2^k) otherwise.
func bucketMid(k int) float64 {
	if k == 0 {
		return 0
	}
	return math.Sqrt(math.Pow(2, float64(k-1)) * math.Pow(2, float64(k)))
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs in
// ascending order — the form Prometheus-style cumulative rendering needs.
func (h *Histogram) Buckets() []BucketCount {
	var out []BucketCount
	for k, c := range h.counts {
		if c == 0 {
			continue
		}
		var ub uint64
		switch {
		case k == 0:
			ub = 0
		case k == 64:
			ub = math.MaxUint64
		default:
			ub = 1<<uint(k) - 1
		}
		out = append(out, BucketCount{UpperBound: ub, Count: c})
	}
	return out
}

// BucketCount is one non-empty histogram bucket.
type BucketCount struct {
	// UpperBound is the largest value the bucket admits.
	UpperBound uint64
	// Count is the number of observations in the bucket.
	Count uint64
}

// String renders a compact summary for logs and reports.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty)"
	}
	return fmt.Sprintf("n=%d mean=%.0f p50=%.0f p99=%.0f max=%d",
		h.total, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.maxSeen)
}

// Counters is a set of named monotonic counters. Names double as the metric
// identity on the /metrics endpoint, so they follow Prometheus conventions
// (snake_case with a _total suffix, optional {label="value"} suffix). The
// zero value is ready to use; all methods tolerate a nil receiver so
// instrumentation points never need nil checks.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta uint64) {
	if !Enabled || c == nil || delta == 0 {
		return
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the counter's current value (0 if never incremented).
func (c *Counters) Get(name string) uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]uint64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Summary renders the counters sorted by name, one "name=value" per entry.
func (c *Counters) Summary() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, snap[n])
	}
	return strings.Join(parts, " ")
}
