package obsv

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	wantSum := float64(1 + 2 + 3 + 100 + 1000 + 1<<20)
	if h.Sum() != wantSum {
		t.Errorf("Sum = %g, want %g", h.Sum(), wantSum)
	}
	if h.Max() != 1<<20 {
		t.Errorf("Max = %d, want %d", h.Max(), 1<<20)
	}
	if got := h.Mean(); math.Abs(got-wantSum/6) > 1e-9 {
		t.Errorf("Mean = %g, want %g", got, wantSum/6)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// Log2 buckets are coarse: the quantile must land within a factor of 2
	// of the exact value.
	for _, tc := range []struct {
		q     float64
		exact float64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := h.Quantile(tc.q)
		if got < tc.exact/2 || got > tc.exact*2 {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]", tc.q, got, tc.exact/2, tc.exact*2)
		}
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
}

func TestHistogramMergeExact(t *testing.T) {
	// Merging two histograms must equal observing the union.
	var a, b, union Histogram
	for i := uint64(1); i < 200; i += 3 {
		a.Observe(i)
		union.Observe(i)
	}
	for i := uint64(5); i < 5000; i += 7 {
		b.Observe(i)
		union.Observe(i)
	}
	a.Merge(&b)
	if a.Count() != union.Count() || a.Sum() != union.Sum() || a.Max() != union.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %g/%g max %d/%d",
			a.Count(), union.Count(), a.Sum(), union.Sum(), a.Max(), union.Max())
	}
	if !reflect.DeepEqual(a.Buckets(), union.Buckets()) {
		t.Error("merged buckets differ from union buckets")
	}
	if a.Quantile(0.5) != union.Quantile(0.5) {
		t.Error("merged quantile differs from union quantile")
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc("x")
	c.Add("x", 4)
	c.Add(`y{kind="delay"}`, 2)
	if got := c.Get("x"); got != 5 {
		t.Errorf("Get(x) = %d, want 5", got)
	}
	snap := c.Snapshot()
	if snap["x"] != 5 || snap[`y{kind="delay"}`] != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	if s := c.Summary(); !strings.Contains(s, "x=5") {
		t.Errorf("Summary %q misses x=5", s)
	}
	// Nil receivers must be safe no-ops.
	var nilC *Counters
	nilC.Inc("z")
	if nilC.Get("z") != 0 || nilC.Snapshot() != nil {
		t.Error("nil Counters not inert")
	}
}

// TestInstrumentRecordsExchange runs a small verified exchange on the mem
// transport through the instrumented wrapper and checks the recorded events
// against what the program did.
func TestInstrumentRecordsExchange(t *testing.T) {
	const n = 4
	const size = 256
	recs := make([]*Recorder, n)
	for i := range recs {
		recs[i] = NewRecorder(i)
	}
	err := mem.Run(n, func(raw mpi.Comm) error {
		c := Instrument(raw, recs[raw.Rank()])
		me := c.Rank()
		// Every rank sends one block to every other rank and receives one.
		reqs := make([]mpi.Request, 0, 2*(n-1))
		bufs := make([][]byte, n)
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			out := make([]byte, size)
			for i := range out {
				out[i] = byte(me*17 + p*5 + i)
			}
			bufs[p] = make([]byte, size)
			reqs = append(reqs, c.Isend(out, p, 1), c.Irecv(bufs[p], p, 1))
		}
		for _, r := range reqs {
			if err := r.Wait(); err != nil {
				return err
			}
		}
		for p := 0; p < n; p++ {
			if p == me {
				continue
			}
			for i, got := range bufs[p] {
				if got != byte(p*17+me*5+i) {
					t.Errorf("rank %d: corrupt byte %d from %d", me, i, p)
					break
				}
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rec := range recs {
		var sends, recvs, barriers int
		for _, e := range rec.Events() {
			switch e.Kind {
			case KindSend:
				sends++
				if e.Bytes != size {
					t.Errorf("rank %d send of %d bytes, want %d", r, e.Bytes, size)
				}
				if e.End < e.Start {
					t.Errorf("rank %d send ends before it starts", r)
				}
			case KindRecv:
				recvs++
			case KindBarrier:
				barriers++
			}
		}
		if sends != n-1 || recvs != n-1 || barriers != 1 {
			t.Errorf("rank %d recorded %d sends, %d recvs, %d barriers; want %d, %d, 1",
				r, sends, recvs, barriers, n-1, n-1)
		}
		if rec.BytesSent() != uint64(size*(n-1)) {
			t.Errorf("rank %d BytesSent = %d, want %d", r, rec.BytesSent(), size*(n-1))
		}
		if sw := rec.SendWait(); sw.Count() != uint64(n-1) {
			t.Errorf("rank %d SendWait count = %d", r, sw.Count())
		}
	}
}

func TestInstrumentNilRecorderPassthrough(t *testing.T) {
	comms := mem.NewWorld(1)
	if got := Instrument(comms[0], nil); got != comms[0] {
		t.Error("Instrument(c, nil) must return c unchanged")
	}
	if m := MarkerFor(comms[0]); m != nil {
		t.Error("MarkerFor on a plain comm must be nil")
	}
	if m := MarkerFor(Instrument(comms[0], NewRecorder(0))); m == nil {
		t.Error("MarkerFor on an instrumented comm must not be nil")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	rec2 := NewRecorder(1)
	// Produce events through the wrapper over a tiny mem world.
	err := mem.Run(2, func(raw mpi.Comm) error {
		c := Instrument(raw, []*Recorder{rec, rec2}[raw.Rank()])
		if m := MarkerFor(c); m != nil {
			m.MarkPhase(0)
			m.MarkSyncWait(1-c.Rank(), c.Now(), c.Now())
		}
		peer := 1 - c.Rank()
		sr := c.Isend([]byte{1, 2, 3}, peer, 0)
		buf := make([]byte, 3)
		rr := c.Irecv(buf, peer, 0)
		if err := sr.Wait(); err != nil {
			//aapc:allow waitcheck the test aborts; the posted receive dies with the world
			return err
		}
		return rr.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{Ranks: 2, Transport: "mem", Name: "test", Msize: 3}
	var buf bytes.Buffer
	if err := WriteRecorders(&buf, meta, rec, rec2); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvents, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Ranks != 2 || gotMeta.Transport != "mem" || gotMeta.Name != "test" || gotMeta.Msize != 3 {
		t.Errorf("meta round trip: %+v", gotMeta)
	}
	want := MergedEvents(rec, rec2)
	if !reflect.DeepEqual(gotEvents, want) {
		t.Errorf("events round trip mismatch:\ngot  %+v\nwant %+v", gotEvents, want)
	}
}

func TestReadJSONLBadKind(t *testing.T) {
	in := `{"meta":{"version":1,"ranks":1}}` + "\n" +
		`{"kind":"frobnicate","rank":0,"phase":-1}` + "\n"
	if _, _, err := ReadJSONL(strings.NewReader(in)); err == nil {
		t.Fatal("unknown event kind must fail loudly")
	}
}

func TestPhaseStats(t *testing.T) {
	events := []Event{
		{Kind: KindPhase, Rank: 0, Phase: 0, Start: 1.0, End: 1.0},
		{Kind: KindPhase, Rank: 1, Phase: 0, Start: 1.5, End: 1.5},
		{Kind: KindSend, Rank: 0, Peer: 1, Phase: 0, Bytes: 100, Start: 1.0, End: 2.0},
		{Kind: KindSyncWait, Rank: 1, Peer: 0, Phase: 0, Start: 1.5, End: 1.75},
		{Kind: KindPhase, Rank: 0, Phase: 1, Start: 2.0, End: 2.0},
		{Kind: KindSend, Rank: 0, Peer: 1, Phase: 1, Bytes: 500, Start: 2.0, End: 2.5},
		{Kind: KindSend, Rank: 0, Peer: 1, Phase: 1, Bytes: 1, Start: 2.0, End: 2.1}, // sync message: excluded
		{Kind: KindBarrier, Rank: 0, Phase: -1, Start: 0, End: 0.5},                  // unattributed: ignored
	}
	stats := PhaseStats(events)
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2", len(stats))
	}
	p0 := stats[0]
	if p0.Phase != 0 || p0.Ranks != 2 || p0.Sends != 1 || p0.Bytes != 100 {
		t.Errorf("phase 0: %+v", p0)
	}
	if math.Abs(p0.Drift-0.5) > 1e-12 || math.Abs(p0.SyncWaitSeconds-0.25) > 1e-12 {
		t.Errorf("phase 0 drift %g syncwait %g", p0.Drift, p0.SyncWaitSeconds)
	}
	if s := FormatPhaseStats(stats); !strings.Contains(s, "phase") {
		t.Errorf("FormatPhaseStats output %q", s)
	}
}

func TestRegistryMetricsEndpoint(t *testing.T) {
	rec := NewRecorder(0)
	rec.Counters().Add("aapc_tcp_reconnects_total", 3)
	err := mem.Run(1, func(raw mpi.Comm) error {
		c := Instrument(raw, rec)
		sr := c.Isend([]byte{9}, 0, 0)
		buf := make([]byte, 1)
		rr := c.Irecv(buf, 0, 0)
		if err := sr.Wait(); err != nil {
			//aapc:allow waitcheck the test aborts; the posted receive dies with the world
			return err
		}
		return rr.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	NewRegistry(rec).WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"aapc_ranks 1",
		`aapc_events_total{kind="send"} 1`,
		`aapc_bytes_total{dir="sent"} 1`,
		"aapc_send_wait_seconds_count 1",
		"aapc_tcp_reconnects_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestServeMetricsHTTP(t *testing.T) {
	rec := NewRecorder(0)
	rec.Counters().Inc("aapc_test_total")
	addr, closeSrv, err := ServeMetrics("127.0.0.1:0", NewRegistry(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrv()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "aapc_test_total 1") {
		t.Errorf("metrics body misses counter:\n%s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	// The debug mux rides along.
	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", resp.StatusCode)
	}
}
