package obsv

import (
	_ "expvar" // registers /debug/vars on http.DefaultServeMux
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry aggregates recorders for the metrics endpoint. Rendering merges
// across ranks: per-kind event totals, byte volumes, latency histograms and
// every named counter. It implements http.Handler (Prometheus text
// exposition format), so it can be mounted on any mux.
type Registry struct {
	mu   sync.Mutex
	recs []*Recorder
	cnts []*Counters
}

// NewRegistry builds a registry over the given recorders.
func NewRegistry(recs ...*Recorder) *Registry {
	g := &Registry{}
	g.recs = append(g.recs, recs...)
	return g
}

// Add registers another recorder.
func (g *Registry) Add(r *Recorder) {
	if r == nil {
		return
	}
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
}

// AddCounters registers a standalone counter set that is not tied to a
// rank recorder — control-plane components (the schedule daemon) account
// cache hits and compiles this way. Its counters render on /metrics merged
// with the recorder counters.
func (g *Registry) AddCounters(c *Counters) {
	if c == nil {
		return
	}
	g.mu.Lock()
	g.cnts = append(g.cnts, c)
	g.mu.Unlock()
}

// Recorders returns the registered recorders.
func (g *Registry) Recorders() []*Recorder {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Recorder(nil), g.recs...)
}

// counterSets returns the registered standalone counter sets.
func (g *Registry) counterSets() []*Counters {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Counters(nil), g.cnts...)
}

// ServeHTTP renders the current metrics in Prometheus text format.
func (g *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.WriteMetrics(w)
}

// WriteMetrics writes the Prometheus text exposition of everything the
// registered recorders know: event counts by kind, payload volumes, merged
// latency/size histograms, and every named counter (tcp recovery activity,
// injected faults).
func (g *Registry) WriteMetrics(w io.Writer) {
	recs := g.Recorders()

	kindTotals := make(map[Kind]uint64)
	var bytesSent, bytesRecv uint64
	var sendWait, recvWait, barrierWait, syncWait, sendBytes Histogram
	counters := make(map[string]uint64)
	for _, r := range recs {
		for _, ev := range r.Events() {
			kindTotals[ev.Kind]++
		}
		bytesSent += r.BytesSent()
		bytesRecv += r.BytesRecv()
		for _, m := range []struct {
			into *Histogram
			from Histogram
		}{
			{&sendWait, r.SendWait()},
			{&recvWait, r.RecvWait()},
			{&barrierWait, r.BarrierWait()},
			{&syncWait, r.SyncWait()},
			{&sendBytes, r.SendBytes()},
		} {
			m.into.Merge(&m.from)
		}
		for name, v := range r.Counters().Snapshot() {
			counters[name] += v
		}
	}
	for _, c := range g.counterSets() {
		for name, v := range c.Snapshot() {
			counters[name] += v
		}
	}

	fmt.Fprintf(w, "# HELP aapc_ranks Number of ranks reporting to this endpoint.\n")
	fmt.Fprintf(w, "# TYPE aapc_ranks gauge\naapc_ranks %d\n", len(recs))

	fmt.Fprintf(w, "# HELP aapc_events_total Recorded communication events by kind.\n")
	fmt.Fprintf(w, "# TYPE aapc_events_total counter\n")
	for _, k := range []Kind{KindSend, KindRecv, KindBarrier, KindPhase, KindSyncWait} {
		fmt.Fprintf(w, "aapc_events_total{kind=%q} %d\n", k.String(), kindTotals[k])
	}

	fmt.Fprintf(w, "# HELP aapc_bytes_total Payload bytes by direction.\n")
	fmt.Fprintf(w, "# TYPE aapc_bytes_total counter\n")
	fmt.Fprintf(w, "aapc_bytes_total{dir=\"sent\"} %d\n", bytesSent)
	fmt.Fprintf(w, "aapc_bytes_total{dir=\"recv\"} %d\n", bytesRecv)

	writeHistogram(w, "aapc_send_wait_seconds", "Send post-to-completion latency.", &sendWait, 1e-9)
	writeHistogram(w, "aapc_recv_wait_seconds", "Receive post-to-completion latency.", &recvWait, 1e-9)
	writeHistogram(w, "aapc_barrier_seconds", "Barrier entry-to-exit latency.", &barrierWait, 1e-9)
	writeHistogram(w, "aapc_sync_wait_seconds", "Pair-wise synchronization stall time.", &syncWait, 1e-9)
	writeHistogram(w, "aapc_send_size_bytes", "Send payload sizes.", &sendBytes, 1)

	// Group series by family BEFORE emitting: a plain byte sort of the series
	// names cannot keep families contiguous, because '_' (0x5f) sorts before
	// '{' (0x7b) — "aapc_x_sub_total" lands between "aapc_x_total" and
	// "aapc_x_total{kind=...}", splitting the aapc_x_total family and making
	// its TYPE header repeat. Prometheus requires each family's HELP/TYPE
	// block to appear exactly once, with all of its series directly below it.
	families := make(map[string][]string)
	for n := range counters {
		family := n
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		families[family] = append(families[family], n)
	}
	famNames := make([]string, 0, len(families))
	for f := range families {
		famNames = append(famNames, f)
	}
	sort.Strings(famNames)
	for _, f := range famNames {
		series := families[f]
		sort.Strings(series)
		fmt.Fprintf(w, "# HELP %s Named counter merged across ranks and registered counter sets.\n", f)
		fmt.Fprintf(w, "# TYPE %s counter\n", f)
		for _, n := range series {
			fmt.Fprintf(w, "%s %d\n", n, counters[n])
		}
	}
}

// writeHistogram renders one merged histogram as a Prometheus cumulative
// histogram. scale converts raw bucket bounds into the exposed unit
// (1e-9 turns nanosecond observations into seconds).
func writeHistogram(w io.Writer, name, help string, h *Histogram, scale float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(float64(b.UpperBound)*scale), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum()*scale)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// ServeMetrics starts an HTTP server on addr exposing /metrics (Prometheus
// text over the registry), /debug/vars (expvar) and /debug/pprof. It
// returns the bound address (useful with ":0") and a closer. Under
// -tags obsv_off it binds nothing and returns a no-op closer.
func ServeMetrics(addr string, g *Registry) (string, func() error, error) {
	if !Enabled {
		return "", func() error { return nil }, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", g)
	// expvar and pprof register themselves on the default mux.
	mux.Handle("/debug/", http.DefaultServeMux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
