package obsv

import (
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
)

// nopComm is a do-nothing transport: benchmarking the wrapper against it
// isolates the instrumentation cost per operation from any transport work.
type nopComm struct{ start time.Time }

type nopReq struct{}

func (nopReq) Wait() error { return nil }

func (c *nopComm) Rank() int                                  { return 0 }
func (c *nopComm) Size() int                                  { return 2 }
func (c *nopComm) Now() float64                               { return time.Since(c.start).Seconds() }
func (c *nopComm) Isend(buf []byte, dst, tag int) mpi.Request { return nopReq{} }
func (c *nopComm) Irecv(buf []byte, src, tag int) mpi.Request { return nopReq{} }
func (c *nopComm) Barrier() error                             { return nil }

// BenchmarkInstrumentedOpCost is the per-operation cost of the wrapper in
// isolation: one Isend+Wait pair per iteration (two clock reads, one pooled
// request, one recorded event).
func BenchmarkInstrumentedOpCost(b *testing.B) {
	base := &nopComm{start: time.Now()}
	buf := make([]byte, 1024)
	c := Instrument(base, NewRecorder(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh recorder every 64 ops keeps the event buffer at the size a
		// real all-to-all run produces, instead of growing without bound.
		if i%64 == 0 {
			c = Instrument(base, NewRecorder(0))
		}
		if err := c.Isend(buf, 1, 0).Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
