package obsv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// jsonlVersion is the current trace file format version.
const jsonlVersion = 1

// Meta is the header line of a JSONL event trace: enough context to
// reconstruct the world without inferring it from the events (an idle rank
// produces no events but still exists — see trace.NewWithRanks).
type Meta struct {
	// Version is the trace format version (currently 1).
	Version int `json:"version"`
	// Ranks is the world size.
	Ranks int `json:"ranks"`
	// Transport names the substrate ("mem", "tcp", "simnet", ...).
	Transport string `json:"transport,omitempty"`
	// Name labels the run (algorithm, experiment).
	Name string `json:"name,omitempty"`
	// Msize is the per-pair block size of the run, when applicable.
	Msize int `json:"msize,omitempty"`
}

// metaLine is the wire form of the header, distinguishable from event lines
// by its "meta" key.
type metaLine struct {
	Meta *Meta `json:"meta"`
}

// WriteJSONL writes a trace: one meta header line, then one JSON object per
// event. Events are written as given; use MergedEvents for the canonical
// start-time order.
func WriteJSONL(w io.Writer, meta Meta, events []Event) error {
	if meta.Version == 0 {
		meta.Version = jsonlVersion
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(metaLine{Meta: &meta}); err != nil {
		return err
	}
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRecorders merges the recorders' events into canonical order and
// writes them as one trace. A zero meta.Ranks is filled in from the number
// of recorders.
func WriteRecorders(w io.Writer, meta Meta, recs ...*Recorder) error {
	if meta.Ranks == 0 {
		meta.Ranks = len(recs)
	}
	return WriteJSONL(w, meta, MergedEvents(recs...))
}

// ReadJSONL parses a trace written by WriteJSONL. A missing header is
// tolerated (Meta zero value, ranks inferred by the consumer); unknown
// event kinds fail loudly rather than being dropped silently.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	var meta Meta
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if lineno == 1 {
			var ml metaLine
			if err := json.Unmarshal(line, &ml); err == nil && ml.Meta != nil {
				meta = *ml.Meta
				continue
			}
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return meta, nil, fmt.Errorf("obsv: trace line %d: %w", lineno, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return meta, nil, fmt.Errorf("obsv: reading trace: %w", err)
	}
	return meta, events, nil
}

// sortEvents orders events by start time, breaking ties by rank then kind —
// the canonical trace order.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Start != evs[j].Start {
			return evs[i].Start < evs[j].Start
		}
		if evs[i].Rank != evs[j].Rank {
			return evs[i].Rank < evs[j].Rank
		}
		return evs[i].Kind < evs[j].Kind
	})
}
