package obsv

import (
	"fmt"
	"sort"
	"strings"
)

// ControlSizeMax classifies events by payload size: messages of at most
// this many bytes count as control traffic (the scheduled algorithm's
// synchronization messages are 1 byte). trace.ControlSizeMax aliases this
// constant so simulator flow records and recorded event traces classify
// identically.
const ControlSizeMax = 64

// PhaseStat summarizes one schedule phase across every rank of a run, built
// from the phase and syncwait markers alltoall.Scheduled emits plus the send
// events attributed to the phase. Drift — the spread between the first and
// last rank to enter a phase — is the quantity the paper's synchronization
// scheme exists to bound: an unsynchronized schedule whose drift exceeds a
// phase's duration has lost its contention-freedom.
type PhaseStat struct {
	// Phase is the schedule phase index.
	Phase int `json:"phase"`
	// FirstEnter and LastEnter are the earliest and latest times (seconds)
	// any participating rank entered the phase.
	FirstEnter float64 `json:"first_enter"`
	LastEnter  float64 `json:"last_enter"`
	// Drift is LastEnter - FirstEnter.
	Drift float64 `json:"drift"`
	// End is the completion time of the phase's last send.
	End float64 `json:"end"`
	// Ranks is the number of ranks that entered the phase (ranks with no
	// sends in a phase never enter it).
	Ranks int `json:"ranks"`
	// Sends and Bytes count the phase's data movement; sends of at most
	// ControlSizeMax bytes (synchronization messages) are excluded.
	Sends int `json:"sends"`
	Bytes int `json:"bytes"`
	// SyncWaitSeconds is the total time ranks spent stalled on pair-wise
	// synchronization messages before sending in this phase.
	SyncWaitSeconds float64 `json:"sync_wait_seconds"`
}

// PhaseStats aggregates per-phase statistics from a merged event stream.
// Events without phase attribution (Phase < 0) are ignored.
func PhaseStats(events []Event) []PhaseStat {
	byPhase := make(map[int]*PhaseStat)
	get := func(p int) *PhaseStat {
		st, ok := byPhase[p]
		if !ok {
			st = &PhaseStat{Phase: p, FirstEnter: -1}
			byPhase[p] = st
		}
		return st
	}
	for _, e := range events {
		if e.Phase < 0 {
			continue
		}
		st := get(e.Phase)
		switch e.Kind {
		case KindPhase:
			if st.FirstEnter < 0 || e.Start < st.FirstEnter {
				st.FirstEnter = e.Start
			}
			if e.Start > st.LastEnter {
				st.LastEnter = e.Start
			}
			st.Ranks++
		case KindSend:
			if e.Bytes <= ControlSizeMax {
				break // sync message, not data movement
			}
			st.Sends++
			st.Bytes += e.Bytes
			if e.End > st.End {
				st.End = e.End
			}
		case KindSyncWait:
			st.SyncWaitSeconds += e.End - e.Start
		}
	}
	out := make([]PhaseStat, 0, len(byPhase))
	for _, st := range byPhase {
		if st.FirstEnter < 0 {
			st.FirstEnter = 0
		}
		st.Drift = st.LastEnter - st.FirstEnter
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}

// FormatPhaseStats renders a phase-drift table for terminal reports:
// per-phase enter window, drift, and synchronization stall time. Reading
// it: drift well below the phase duration means the synchronization scheme
// is holding the phases apart; drift rivaling the duration means phases are
// bleeding into each other and contention is back.
func FormatPhaseStats(stats []PhaseStat) string {
	if len(stats) == 0 {
		return "(no phase data)\n"
	}
	var sb strings.Builder
	sb.WriteString("phase  ranks  sends      bytes   enter(ms)    drift(ms)  syncwait(ms)\n")
	for _, st := range stats {
		fmt.Fprintf(&sb, "%5d  %5d  %5d  %9d  %10.3f  %11.3f  %12.3f\n",
			st.Phase, st.Ranks, st.Sends, st.Bytes,
			st.FirstEnter*1e3, st.Drift*1e3, st.SyncWaitSeconds*1e3)
	}
	return sb.String()
}
