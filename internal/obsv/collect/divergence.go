package collect

import (
	"fmt"
	"sort"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Sim-vs-real divergence: price the same schedule in the fluid simulator
// and flag the links whose measured message latencies exceed the
// contention-free prediction by more than the run's norm.
//
// The two time bases are incommensurable — wall microseconds on a loopback
// run versus simulated milliseconds at modeled link speeds — so raw ratios
// mean nothing. What is comparable is the SHAPE: in a healthy run every
// message's measured/predicted ratio sits near one common scale (the median
// ratio). A slow link bends its messages away from that scale, so flagging
// ratio > Factor × median localizes the anomaly without calibrating either
// clock. A link is named only when most of the data messages crossing it
// diverge (LinkFraction): a message through a healthy link behind one slow
// sender diverges too, but on the healthy link it is the minority.

// ControlSizeMax is the payload size at or below which a message is
// treated as control traffic (sync bytes, barrier tokens) and excluded
// from divergence analysis: its duration is dominated by per-message
// overheads the fluid model does not price.
const ControlSizeMax = 64

// DivergenceOptions tunes the flagging thresholds.
type DivergenceOptions struct {
	// Factor flags a message when measured/predicted exceeds Factor times
	// the run's median ratio. <= 0 defaults to 3.
	Factor float64
	// LinkFraction flags a link when at least this fraction of the data
	// messages crossing it are flagged. <= 0 defaults to 0.75.
	LinkFraction float64
	// MinExcess gates flagging on the message's absolute excess over the
	// scaled prediction exceeding this fraction of the run's makespan.
	// Ratios alone cannot separate harm from noise: on a loopback run a
	// microsecond-scale message stretched to 300µs by a scheduler hiccup
	// shows an enormous ratio while costing the run nothing. <= 0 defaults
	// to 0.01 (1% of makespan).
	MinExcess float64
}

// MsgDivergence is one matched message's measured-vs-predicted comparison.
type MsgDivergence struct {
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Phase     int     `json:"phase"`
	Measured  float64 `json:"measured"`
	Predicted float64 `json:"predicted"`
	// Excess is measured minus the scaled prediction: the wall time this
	// message cost beyond what the model priced.
	Excess float64 `json:"excess"`
	// Ratio is measured/predicted normalized by the run scale; ~1 means
	// the message behaved like the run at large.
	Ratio   float64 `json:"ratio"`
	Flagged bool    `json:"flagged,omitempty"`
}

// LinkDivergence aggregates flagged messages per topology link.
type LinkDivergence struct {
	Link      string `json:"link"`
	U         int    `json:"u"`
	V         int    `json:"v"`
	Diverging int    `json:"diverging"`
	Crossing  int    `json:"crossing"`
	Flagged   bool   `json:"flagged,omitempty"`
}

// DivergenceReport compares one measured trace against a simnet pricing.
type DivergenceReport struct {
	// Scale is the median measured/predicted ratio — the factor relating
	// the two time bases for this run.
	Scale        float64          `json:"scale"`
	Factor       float64          `json:"factor"`
	LinkFraction float64          `json:"link_fraction"`
	Matched      int              `json:"matched"`
	Unmatched    int              `json:"unmatched"`
	Messages     []MsgDivergence  `json:"messages,omitempty"`
	Links        []LinkDivergence `json:"links,omitempty"`
}

// FlaggedLinks returns the names of the links the report flags.
func (d *DivergenceReport) FlaggedLinks() []string {
	var out []string
	for _, l := range d.Links {
		if l.Flagged {
			out = append(out, l.Link)
		}
	}
	return out
}

// Divergence matches the trace's data messages against the simulator's
// flow records for the same schedule and flags diverging links. The k-th
// data message of each (src, dst) pair in the trace (sender program order)
// is matched with the pair's k-th simulated flow (match order): both sides
// order one pair's messages identically because MPI sends between a pair
// are non-overtaking. g may be nil (messages are still compared; no link
// attribution).
func Divergence(spans []Span, flows []simnet.FlowRecord, g *topology.Graph, opt DivergenceOptions) *DivergenceReport {
	if opt.Factor <= 0 {
		opt.Factor = 3
	}
	if opt.LinkFraction <= 0 {
		opt.LinkFraction = 0.75
	}
	if opt.MinExcess <= 0 {
		opt.MinExcess = 0.01
	}
	rep := &DivergenceReport{Factor: opt.Factor, LinkFraction: opt.LinkFraction}

	// Makespan on the common timebase, for the absolute-excess gate.
	var makespan float64
	if len(spans) > 0 {
		first, last := spans[0].GStart, spans[0].GEnd
		for i := range spans {
			if spans[i].GStart < first {
				first = spans[i].GStart
			}
			if spans[i].GEnd > last {
				last = spans[i].GEnd
			}
		}
		makespan = last - first
	}

	index := make(map[spanKey]*Span, len(spans))
	for i := range spans {
		sp := &spans[i]
		index[spanKey{sp.Rank, sp.Seq}] = sp
	}

	type pair struct{ src, dst int }
	// Measured data messages per pair, ordered by the sender's program
	// order (LinkSeq is the sender's span sequence).
	type measured struct {
		sendSeq  uint64
		phase    int
		duration float64
	}
	meas := make(map[pair][]measured)
	for i := range spans {
		sp := &spans[i]
		if sp.Kind != obsv.KindRecv || sp.LinkSeq == 0 || sp.Bytes <= ControlSizeMax {
			continue
		}
		send := index[spanKey{sp.Peer, sp.LinkSeq}]
		if send == nil || send.Rank == sp.Rank {
			continue
		}
		meas[pair{send.Rank, sp.Rank}] = append(meas[pair{send.Rank, sp.Rank}],
			measured{sendSeq: sp.LinkSeq, phase: send.Phase, duration: sp.effEnd() - send.GStart})
	}
	for _, list := range meas {
		sort.Slice(list, func(i, j int) bool { return list[i].sendSeq < list[j].sendSeq })
	}

	// Predicted flows per pair, in rendezvous-match order.
	pred := make(map[pair][]simnet.FlowRecord)
	for _, f := range flows {
		if f.Size <= ControlSizeMax || f.Src == f.Dst {
			continue
		}
		pred[pair{f.Src, f.Dst}] = append(pred[pair{f.Src, f.Dst}], f)
	}
	for _, list := range pred {
		sort.SliceStable(list, func(i, j int) bool { return list[i].MatchedAt < list[j].MatchedAt })
	}

	// Match k-th with k-th, deterministically over pairs.
	pairs := make([]pair, 0, len(meas))
	for p := range meas {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	var ratios []float64
	for _, p := range pairs {
		ms, fs := meas[p], pred[p]
		n := len(ms)
		if len(fs) < n {
			n = len(fs)
		}
		rep.Unmatched += len(ms) - n
		for k := 0; k < n; k++ {
			predicted := fs[k].FinishedAt - fs[k].MatchedAt
			if predicted <= 0 || ms[k].duration <= 0 {
				rep.Unmatched++
				continue
			}
			rep.Matched++
			rep.Messages = append(rep.Messages, MsgDivergence{
				Src: p.src, Dst: p.dst, Phase: ms[k].phase,
				Measured: ms[k].duration, Predicted: predicted,
				Ratio: ms[k].duration / predicted,
			})
			ratios = append(ratios, ms[k].duration/predicted)
		}
	}
	if len(ratios) == 0 {
		return rep
	}

	// Scale = median raw ratio; then normalize and flag.
	sorted := append([]float64(nil), ratios...)
	sort.Float64s(sorted)
	rep.Scale = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		rep.Scale = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	for i := range rep.Messages {
		m := &rep.Messages[i]
		m.Ratio /= rep.Scale
		m.Excess = m.Measured - rep.Scale*m.Predicted
		m.Flagged = m.Ratio > opt.Factor && m.Excess >= opt.MinExcess*makespan
	}

	if g == nil {
		return rep
	}
	type linkAcc struct {
		crossing  int
		diverging int
	}
	// Divergence keeps edges DIRECTED (unlike the phase-stat latency
	// aggregation): Ethernet links are full duplex and a failing NIC or
	// queue slows one direction. Folding directions together would let a
	// slow uplink hide behind the healthy traffic flowing back down it.
	accs := make(map[topology.Edge]*linkAcc)
	for i := range rep.Messages {
		m := &rep.Messages[i]
		for _, e := range g.PathBetweenRanks(m.Src, m.Dst) {
			a := accs[e]
			if a == nil {
				a = &linkAcc{}
				accs[e] = a
			}
			a.crossing++
			if m.Flagged {
				a.diverging++
			}
		}
	}
	edges := make([]topology.Edge, 0, len(accs))
	for e := range accs {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		a := accs[e]
		ld := LinkDivergence{
			Link: fmt.Sprintf("%s>%s", g.Node(e.U).Name, g.Node(e.V).Name), U: e.U, V: e.V,
			Diverging: a.diverging, Crossing: a.crossing,
			Flagged: a.crossing > 0 && float64(a.diverging) >= opt.LinkFraction*float64(a.crossing),
		}
		rep.Links = append(rep.Links, ld)
	}
	return rep
}
