package collect

import (
	"math"

	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// Pairwise clock-offset estimation.
//
// Each rank records event times on its own Comm.Now() clock. On the
// in-process transports those clocks share one epoch, but the analysis
// cannot assume that: distributed endpoints each start their own clock, and
// even in-process runs are a rehearsal for multi-host traces. The linked
// spans themselves carry enough information to align the clocks without any
// extra protocol — the classic NTP-style symmetric-delay argument applied
// to the messages the run was sending anyway:
//
// For a directed pair (a, b), every linked message gives one sample of
//
//	d[a][b] = recv_b(local clock of b) − sendStart_a(local clock of a)
//	        = trueDelay + skew_b − skew_a
//
// Queueing only ever adds to trueDelay, so the MINIMUM over samples is the
// tightest bound on trueDelay + (skew_b − skew_a). With traffic in both
// directions the unknown true delays cancel under the usual symmetry
// assumption:
//
//	skew_b − skew_a ≈ (min d[a][b] − min d[b][a]) / 2
//
// The per-pair relative skews compose along any path, so a breadth-first
// walk from rank 0 (the anchor, offset 0) assigns every reachable rank an
// offset that maps its local times onto rank 0's timebase:
//
//	t_global = t_local[r] + offset[r]
//
// Ranks with no linked traffic to the anchored component keep offset 0.

// EstimateOffsets estimates one clock offset per rank from the linked spans
// in byRank (events indexed by rank, as returned by Store.ByRank). The
// result maps local times to rank 0's timebase: global = local + offset.
func EstimateOffsets(byRank [][]obsv.Event) []float64 {
	n := len(byRank)
	offsets := make([]float64, n)
	if n == 0 {
		return offsets
	}

	// sendStart[rank][seq] for every send span.
	sendStart := make([]map[uint64]float64, n)
	for r, evs := range byRank {
		for _, ev := range evs {
			if ev.Kind != obsv.KindSend {
				continue
			}
			if sendStart[r] == nil {
				sendStart[r] = make(map[uint64]float64)
			}
			sendStart[r][ev.Seq] = ev.Start
		}
	}

	// minDelay[a*n+b] = min over linked messages a->b of recvTime_b − sendStart_a.
	minDelay := make([]float64, n*n)
	have := make([]bool, n*n)
	for b, evs := range byRank {
		for _, ev := range evs {
			if ev.Kind != obsv.KindRecv || ev.LinkSeq == 0 {
				continue
			}
			a := ev.Peer
			if a < 0 || a >= n || sendStart[a] == nil {
				continue
			}
			start, ok := sendStart[a][ev.LinkSeq]
			if !ok {
				continue
			}
			recvTime := ev.End
			if ev.Deliver > 0 {
				recvTime = ev.Deliver
			}
			d := recvTime - start
			if !have[a*n+b] || d < minDelay[a*n+b] {
				minDelay[a*n+b] = d
				have[a*n+b] = true
			}
		}
	}

	// rel[a][b] = offset_b − offset_a where both directions were observed.
	// BFS from rank 0 composes them; visiting neighbors in rank order keeps
	// the estimate deterministic when multiple spanning trees exist.
	visited := make([]bool, n)
	visited[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for b := 0; b < n; b++ {
			if visited[b] || !have[a*n+b] || !have[b*n+a] {
				continue
			}
			skew := (minDelay[a*n+b] - minDelay[b*n+a]) / 2
			if math.IsNaN(skew) || math.IsInf(skew, 0) {
				continue
			}
			// b's clock runs ahead of a's by skew, so mapping b onto the
			// global timebase subtracts it.
			offsets[b] = offsets[a] - skew
			visited[b] = true
			queue = append(queue, b)
		}
	}
	return offsets
}
