package collect

import (
	"bytes"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// Collector benchmarks behind `make bench-trace`: JSONL ingest throughput,
// merge rate, and full-analysis cost, reported as spans/sec so the numbers
// compare across trace sizes (committed reference: BENCH_trace.json).

// benchTrace synthesizes a linked all-to-all trace: ranks x rounds, one
// send+recv pair per directed pair per round plus a phase marker, with
// every recv causally linked to its true send.
func benchTrace(ranks, rounds int) [][]obsv.Event {
	byRank := make([][]obsv.Event, ranks)
	seq := make([]uint64, ranks)
	t := 0.0
	for round := 0; round < rounds; round++ {
		for r := 0; r < ranks; r++ {
			seq[r]++
			byRank[r] = append(byRank[r], obsv.Event{
				Kind: obsv.KindPhase, Rank: r, Peer: -1, Seq: seq[r], Phase: round,
				Start: t, End: t,
			})
		}
		for a := 0; a < ranks; a++ {
			for b := 0; b < ranks; b++ {
				if a == b {
					continue
				}
				t += 1e-6
				seq[a]++
				sendSeq := seq[a]
				byRank[a] = append(byRank[a], obsv.Event{
					Kind: obsv.KindSend, Rank: a, Peer: b, Seq: sendSeq, Phase: round,
					Bytes: 4096, Start: t, End: t + 2e-5, Deliver: t + 1.5e-5,
				})
				seq[b]++
				byRank[b] = append(byRank[b], obsv.Event{
					Kind: obsv.KindRecv, Rank: b, Peer: a, Seq: seq[b], Phase: round,
					LinkSeq: sendSeq, Bytes: 4096,
					Start: t, End: t + 3e-5, Deliver: t + 1.5e-5,
				})
			}
		}
	}
	return byRank
}

func traceSpanCount(byRank [][]obsv.Event) int {
	n := 0
	for _, evs := range byRank {
		n += len(evs)
	}
	return n
}

// BenchmarkIngestJSONL is the wire-format path: parse one serialized trace
// and group it by rank, as POST /v1/trace/ingest does per request.
func BenchmarkIngestJSONL(b *testing.B) {
	byRank := benchTrace(16, 8)
	var all []obsv.Event
	for _, evs := range byRank {
		all = append(all, evs...)
	}
	var buf bytes.Buffer
	if err := obsv.WriteJSONL(&buf, obsv.Meta{Version: 1, Ranks: 16}, all); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore()
		if err := s.AddJSONL(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(all))*float64(b.N)/b.Elapsed().Seconds(), "spans/s")
}

// BenchmarkMerge is the collector's merge core: per-rank logs onto the
// common timebase (offset estimation skipped, as for in-process traces).
func BenchmarkMerge(b *testing.B) {
	byRank := benchTrace(16, 8)
	offsets := make([]float64, len(byRank))
	spans := traceSpanCount(byRank)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Merge(byRank, offsets); len(got) != spans {
			b.Fatalf("merged %d spans, want %d", len(got), spans)
		}
	}
	b.ReportMetric(float64(spans)*float64(b.N)/b.Elapsed().Seconds(), "spans/s")
}

// BenchmarkAnalyze is the full report: merge, causal link count, critical
// path, phase attribution, straggler.
func BenchmarkAnalyze(b *testing.B) {
	for _, size := range []struct {
		name          string
		ranks, rounds int
	}{
		{"ranks=8", 8, 8},
		{"ranks=32", 32, 4},
	} {
		b.Run(size.name, func(b *testing.B) {
			s := NewStore()
			s.SetCommonClock(true)
			byRank := benchTrace(size.ranks, size.rounds)
			for _, evs := range byRank {
				s.AddEvents(evs)
			}
			spans := s.NumSpans()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := s.Analyze(nil)
				if rep.Spans != spans || rep.SlowestRank < 0 {
					b.Fatalf("bad report: %d spans straggler %d", rep.Spans, rep.SlowestRank)
				}
			}
			b.ReportMetric(float64(spans)*float64(b.N)/b.Elapsed().Seconds(), "spans/s")
		})
	}
}

// BenchmarkEstimateOffsets is the multi-host path: pairwise minimum one-way
// delays plus BFS composition over the rank graph.
func BenchmarkEstimateOffsets(b *testing.B) {
	byRank := benchTrace(16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := EstimateOffsets(byRank); len(got) != len(byRank) {
			b.Fatal("bad offsets")
		}
	}
}
