package collect

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// chainSpans builds the minimal two-rank story: rank 0 computes slowly,
// sends late; rank 1 posted its receive immediately and sat waiting. The
// critical path must cross the message edge into rank 1.
func chainSpans() []Span {
	mk := func(kind obsv.Kind, rank, peer int, seq uint64, start, end float64, link uint64, deliver float64) Span {
		return Span{
			Event:  obsv.Event{Kind: kind, Rank: rank, Peer: peer, Seq: seq, LinkSeq: link, Bytes: 4096},
			GStart: start, GEnd: end, GDeliver: deliver,
		}
	}
	return []Span{
		mk(obsv.KindPhase, 0, -1, 1, 0, 0, 0, 0),
		mk(obsv.KindSend, 0, 1, 2, 0.001, 0.050, 0, 0), // 49ms "slow NIC" send
		mk(obsv.KindPhase, 1, -1, 1, 0, 0, 0, 0),
		mk(obsv.KindRecv, 1, 0, 2, 0.0005, 0.051, 2, 0.050),
		mk(obsv.KindSend, 1, 0, 3, 0.051, 0.052, 0, 0),
	}
}

func TestCriticalPathCrossesMessageEdge(t *testing.T) {
	path := CriticalPath(chainSpans())
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	// Forward order: must start on rank 0 and cross to rank 1 via the link.
	if path[0].Rank != 0 {
		t.Errorf("path starts on rank %d, want 0", path[0].Rank)
	}
	sawVia := false
	for _, st := range path {
		if st.ViaLink {
			if st.Rank != 1 || st.Kind != obsv.KindRecv {
				t.Errorf("unexpected via-link step: %+v", st)
			}
			sawVia = true
		}
	}
	if !sawVia {
		t.Error("path never crossed the message edge")
	}
	last := path[len(path)-1]
	if last.Rank != 1 {
		t.Errorf("path ends on rank %d, want 1", last.Rank)
	}
}

func TestCriticalPathPrefersLocalWhenSenderWasReady(t *testing.T) {
	// The sender was ready at t=0.001; the receiver posted its recv only at
	// t=0.049 after 48ms of its own work, and the rendezvous completed
	// immediately. Blaming the wire would point at a healthy link.
	spans := []Span{
		{Event: obsv.Event{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 1, Bytes: 4096},
			GStart: 0.001, GEnd: 0.0495, GDeliver: 0.0493},
		{Event: obsv.Event{Kind: obsv.KindPhase, Rank: 1, Peer: -1, Seq: 1},
			GStart: 0, GEnd: 0.049},
		{Event: obsv.Event{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 2, LinkSeq: 1, Bytes: 4096},
			GStart: 0.049, GEnd: 0.0494, GDeliver: 0.0493},
		{Event: obsv.Event{Kind: obsv.KindSend, Rank: 1, Peer: 0, Seq: 3, Bytes: 4096},
			GStart: 0.0494, GEnd: 0.0505},
	}
	path := CriticalPath(spans)
	for _, st := range path {
		if st.ViaLink {
			t.Fatalf("path crossed the wire although the receiver was the constraint:\n%+v", path)
		}
	}
	if path[0].Rank != 1 {
		t.Errorf("path should stay on the late rank 1, got %+v", path)
	}
}

func TestCriticalPathTerminatesOnDegenerateInput(t *testing.T) {
	// Two spans claiming each other's identity ranges must not loop.
	spans := []Span{
		{Event: obsv.Event{Kind: obsv.KindRecv, Rank: 0, Peer: 1, Seq: 1, LinkSeq: 1, Bytes: 4096}, GStart: 0, GEnd: 2, GDeliver: 2},
		{Event: obsv.Event{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 1, LinkSeq: 1, Bytes: 4096}, GStart: 0, GEnd: 2, GDeliver: 2},
	}
	path := CriticalPath(spans)
	if len(path) > len(spans) {
		t.Fatalf("path longer than span count: %d", len(path))
	}
}

// starGraph is n machines n0..n<k-1> on one switch s0.
func starGraph(t *testing.T, ranks int) *topology.Graph {
	t.Helper()
	g := topology.New()
	s := g.MustAddSwitch("s0")
	for i := 0; i < ranks; i++ {
		n := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(n, s)
	}
	return g.MustValidate()
}

func TestPhaseStatsAttribution(t *testing.T) {
	g := starGraph(t, 2)
	spans := []Span{
		// Phase 0: rank 0 enters at 0, rank 1 at 0.010 — skew 10ms.
		{Event: obsv.Event{Kind: obsv.KindPhase, Rank: 0, Peer: -1, Seq: 1, Phase: 0}, GStart: 0, GEnd: 0},
		{Event: obsv.Event{Kind: obsv.KindPhase, Rank: 1, Peer: -1, Seq: 1, Phase: 0}, GStart: 0.010, GEnd: 0.010},
		// Rank 0's data send in phase 0, delivered 20ms later.
		{Event: obsv.Event{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 2, Phase: 0, Bytes: 4096}, GStart: 0.001, GEnd: 0.021, GDeliver: 0.021},
		{Event: obsv.Event{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 2, Phase: 0, LinkSeq: 2, Bytes: 4096}, GStart: 0.011, GEnd: 0.022, GDeliver: 0.021},
		// Rank 1 stalls 5ms in sync during phase 0.
		{Event: obsv.Event{Kind: obsv.KindSyncWait, Rank: 1, Peer: 0, Seq: 3, Phase: 0}, GStart: 0.022, GEnd: 0.027},
		// Phase 1 entries end phase 0's residence.
		{Event: obsv.Event{Kind: obsv.KindPhase, Rank: 0, Peer: -1, Seq: 3, Phase: 1}, GStart: 0.030, GEnd: 0.030},
		{Event: obsv.Event{Kind: obsv.KindPhase, Rank: 1, Peer: -1, Seq: 4, Phase: 1}, GStart: 0.028, GEnd: 0.028},
	}
	stats := PhaseStats(spans, g)
	if len(stats) != 2 {
		t.Fatalf("got %d phases, want 2", len(stats))
	}
	p0 := stats[0]
	if p0.Phase != 0 {
		t.Fatalf("first phase = %d", p0.Phase)
	}
	if p0.FirstRank != 0 || p0.LastRank != 1 {
		t.Errorf("enter order: first %d last %d, want 0/1", p0.FirstRank, p0.LastRank)
	}
	if got, want := p0.EnterSkew, 0.010; !near(got, want) {
		t.Errorf("EnterSkew = %v, want %v", got, want)
	}
	// Residence: rank 0 spans 0..0.030, rank 1 spans 0.010..0.028.
	if p0.SlowestRank != 0 || !near(p0.Residence, 0.030) {
		t.Errorf("slowest = rank %d residence %v, want rank 0 / 0.030", p0.SlowestRank, p0.Residence)
	}
	if !near(p0.SyncWait, 0.005) {
		t.Errorf("SyncWait = %v, want 0.005", p0.SyncWait)
	}
	// Transmit: delivery 0.021 minus send start 0.001.
	if !near(p0.Transmit, 0.020) {
		t.Errorf("Transmit = %v, want 0.020", p0.Transmit)
	}
	if p0.SlowestLink == "" {
		t.Error("no slowest link named despite a topology")
	}
}

func near(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }

func TestDivergenceFlagsOnlySlowLink(t *testing.T) {
	// Three ranks on one switch; rank 0's uplink (n0>s0) is slow, so both of
	// its outbound messages take 0.1s where the simulator predicts 0.01s.
	// Every other directed pair is healthy. Only n0>s0 is crossed exclusively
	// by slow traffic — s0>n1 and s0>n2 each also carry a healthy message, so
	// they fall below the 75% link fraction and must stay unflagged.
	g := starGraph(t, 3)
	var spans []Span
	var flows []simnet.FlowRecord
	seq := map[int]uint64{}
	msg := func(src, dst int, dur float64) {
		seq[src]++
		s := seq[src]
		spans = append(spans,
			Span{Event: obsv.Event{Kind: obsv.KindSend, Rank: src, Peer: dst, Seq: s, Bytes: 4096},
				GStart: 0, GEnd: dur, GDeliver: dur},
			Span{Event: obsv.Event{Kind: obsv.KindRecv, Rank: dst, Peer: src, Seq: 100 + s, LinkSeq: s, Bytes: 4096},
				GStart: 0, GEnd: dur, GDeliver: dur},
		)
		flows = append(flows, simnet.FlowRecord{Src: src, Dst: dst, Size: 4096, MatchedAt: 0, FinishedAt: 0.01})
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			dur := 0.01
			if src == 0 {
				dur = 0.1 // slow uplink
			}
			msg(src, dst, dur)
		}
	}
	rep := Divergence(spans, flows, g, DivergenceOptions{Factor: 3})
	if rep.Matched != 6 {
		t.Fatalf("matched %d, want 6", rep.Matched)
	}
	flagged := rep.FlaggedLinks()
	if len(flagged) != 1 || flagged[0] != "n0>s0" {
		t.Errorf("flagged = %v, want [n0>s0]", flagged)
	}
	for _, m := range rep.Messages {
		if m.Src == 0 && !m.Flagged {
			t.Errorf("slow message 0->%d unflagged: %+v", m.Dst, m)
		}
		if m.Src != 0 && m.Flagged {
			t.Errorf("healthy message %d->%d flagged: %+v", m.Src, m.Dst, m)
		}
	}
}

func TestDivergenceIgnoresControlTraffic(t *testing.T) {
	spans := []Span{
		{Event: obsv.Event{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 1, Bytes: 8}, GStart: 0, GEnd: 0.5, GDeliver: 0.5},
		{Event: obsv.Event{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 1, LinkSeq: 1, Bytes: 8}, GStart: 0, GEnd: 0.5, GDeliver: 0.5},
	}
	flows := []simnet.FlowRecord{{Src: 0, Dst: 1, Size: 8, MatchedAt: 0, FinishedAt: 0.001}}
	rep := Divergence(spans, flows, nil, DivergenceOptions{})
	if rep.Matched != 0 || len(rep.Messages) != 0 {
		t.Errorf("control-size traffic entered divergence: %+v", rep)
	}
}

func TestStoreJSONLRoundTrip(t *testing.T) {
	meta := obsv.Meta{Version: 1, Ranks: 2, Transport: "mem", Name: "rt", Msize: 64}
	evs := []obsv.Event{
		{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 1, Start: 0.1, End: 0.2, Bytes: 64},
		{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 1, LinkSeq: 1, Start: 0.1, End: 0.3, Deliver: 0.2, Bytes: 64},
	}
	var buf bytes.Buffer
	if err := obsv.WriteJSONL(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	if err := s.AddJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if s.NumSpans() != 2 {
		t.Fatalf("NumSpans = %d, want 2", s.NumSpans())
	}
	if got := s.Meta(); got.Name != "rt" || got.Ranks != 2 {
		t.Errorf("meta not adopted: %+v", got)
	}
	rep := s.Analyze(nil)
	if rep.Ranks != 2 || rep.Linked != 1 {
		t.Errorf("report: ranks %d linked %d, want 2/1", rep.Ranks, rep.Linked)
	}
	s.Reset()
	if s.NumSpans() != 0 {
		t.Error("Reset left spans behind")
	}
	if got := s.Counters().Get("aapc_trace_spans_total"); got != 2 {
		t.Errorf("aapc_trace_spans_total = %d, want 2 (counters survive Reset)", got)
	}
}

func TestHandlerIngestReportReset(t *testing.T) {
	s := NewStore()
	srv := httptest.NewServer(Handler(s, nil))
	defer srv.Close()

	meta := obsv.Meta{Version: 1, Ranks: 2, Transport: "mem", Name: "h", Msize: 64}
	evs := []obsv.Event{
		{Kind: obsv.KindSend, Rank: 0, Peer: 1, Seq: 1, Start: 0.1, End: 0.2, Bytes: 64},
		{Kind: obsv.KindRecv, Rank: 1, Peer: 0, Seq: 1, LinkSeq: 1, Start: 0.1, End: 0.3, Deliver: 0.2, Bytes: 64},
	}
	var buf bytes.Buffer
	if err := obsv.WriteJSONL(&buf, meta, evs); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/trace/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/trace/report?format=text")
	if err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	_, _ = txt.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(txt.String(), "2 spans (1 causally linked)") {
		t.Errorf("text report missing span summary:\n%s", txt.String())
	}

	resp, err = http.Get(srv.URL + "/v1/trace/events")
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, gotEvs, err := obsv.ReadJSONL(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Name != "h" || len(gotEvs) != 2 {
		t.Errorf("events round trip: meta %+v, %d events", gotMeta, len(gotEvs))
	}

	resp, err = http.Post(srv.URL+"/v1/trace/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if s.NumSpans() != 0 {
		t.Error("reset endpoint did not clear the store")
	}

	// GET on ingest and POST-only reset must be refused.
	resp, err = http.Get(srv.URL + "/v1/trace/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET ingest status %d, want 405", resp.StatusCode)
	}
}
