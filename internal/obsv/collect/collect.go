// Package collect is the cluster-wide trace collector: it merges per-rank
// span logs (obsv JSONL) into one causally-linked DAG on a common timebase
// and answers the questions the paper's schedules pose — which chain of
// sends and waits bounds the makespan (critical path), which rank or link
// drags each phase (straggler attribution), and where a measured run
// diverges from the simulator's contention-free prediction.
//
// The collector is transport-agnostic: it consumes the Seq/LinkSeq/Deliver
// causal fields the obsv layer records on any traced transport (mem, tcp,
// distributed tcp, simnet). It can run embedded (harness, tests), behind
// the schedule daemon's HTTP mux (POST /v1/trace/ingest), or standalone in
// cmd/aapctrace.
package collect

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Store accumulates per-rank event logs until a report is asked for. It is
// safe for concurrent ingestion.
type Store struct {
	mu     sync.Mutex
	byRank map[int][]obsv.Event
	meta   obsv.Meta
	common bool
	cnts   obsv.Counters
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byRank: make(map[int][]obsv.Event)}
}

// Counters exposes the store's ingestion counters so a Registry can merge
// them onto /metrics (aapc_trace_ingests_total, aapc_trace_spans_total,
// aapc_trace_reports_total).
func (s *Store) Counters() *obsv.Counters { return &s.cnts }

// SetCommonClock records the producer's assertion that every rank's clock
// shares one epoch (true for the in-process transports: mem, tcp.Run,
// simnet), so analysis skips pairwise offset estimation. The estimator is
// for multi-host traces where clocks genuinely differ; running it on a
// shared clock can only add error, and under injected faults it is actively
// misled — a uniform delay on one rank's sends is indistinguishable, from
// minimum one-way delays alone, from that rank's clock running behind.
func (s *Store) SetCommonClock(v bool) {
	s.mu.Lock()
	s.common = v
	s.mu.Unlock()
}

// AddEvents ingests events, grouping them by their recorded rank.
func (s *Store) AddEvents(evs []obsv.Event) {
	if len(evs) == 0 {
		return
	}
	s.mu.Lock()
	for _, ev := range evs {
		s.byRank[ev.Rank] = append(s.byRank[ev.Rank], ev)
	}
	s.mu.Unlock()
	s.cnts.Inc("aapc_trace_ingests_total")
	s.cnts.Add("aapc_trace_spans_total", uint64(len(evs)))
}

// AddJSONL ingests one obsv JSONL trace (rank logs may be streamed in any
// interleaving; events carry their rank). The first meta header seen with a
// nonzero rank count wins.
func (s *Store) AddJSONL(r io.Reader) error {
	meta, evs, err := obsv.ReadJSONL(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.meta.Ranks == 0 && meta.Ranks > 0 {
		s.meta = meta
	}
	s.mu.Unlock()
	s.AddEvents(evs)
	return nil
}

// Meta returns the trace header the store adopted (zero value when none).
func (s *Store) Meta() obsv.Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta
}

// Reset drops every ingested event, keeping the counters.
func (s *Store) Reset() {
	s.mu.Lock()
	s.byRank = make(map[int][]obsv.Event)
	s.meta = obsv.Meta{}
	s.mu.Unlock()
}

// NumSpans returns the total number of ingested events.
func (s *Store) NumSpans() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, evs := range s.byRank {
		n += len(evs)
	}
	return n
}

// ByRank returns the ingested events as a dense rank-indexed slice, each
// rank's log sorted by Seq (program order). The world size is the larger of
// the meta header's rank count and the highest rank seen.
func (s *Store) ByRank() [][]obsv.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.meta.Ranks
	for r := range s.byRank {
		if r+1 > n {
			n = r + 1
		}
	}
	out := make([][]obsv.Event, n)
	for r, evs := range s.byRank {
		if r < 0 {
			continue
		}
		cp := append([]obsv.Event(nil), evs...)
		sort.SliceStable(cp, func(i, j int) bool { return cp[i].Seq < cp[j].Seq })
		out[r] = cp
	}
	return out
}

// Span is one event mapped onto the common (rank-0) timebase.
type Span struct {
	obsv.Event
	// GStart/GEnd are Start/End plus the rank's estimated clock offset.
	GStart float64 `json:"gstart"`
	GEnd   float64 `json:"gend"`
	// GDeliver is the adjusted transport delivery time; 0 when unknown.
	GDeliver float64 `json:"gdeliver,omitempty"`
}

// effEnd is the moment the span's effect actually happened: the delivery
// time for a linked receive (the payload was there even if the rank drained
// the wait much later), the transport completion for a traced send (drain
// order must not inflate a send's apparent duration), End otherwise.
func (s *Span) effEnd() float64 {
	if s.GDeliver > 0 && (s.Kind == obsv.KindSend || (s.Kind == obsv.KindRecv && s.LinkSeq != 0)) {
		return s.GDeliver
	}
	return s.GEnd
}

// Merge maps the per-rank logs onto the common timebase. The result is
// ordered rank-major, Seq-minor — the canonical span order every analysis
// in this package indexes into.
func Merge(byRank [][]obsv.Event, offsets []float64) []Span {
	var out []Span
	for r, evs := range byRank {
		off := 0.0
		if r < len(offsets) {
			off = offsets[r]
		}
		for _, ev := range evs {
			sp := Span{Event: ev, GStart: ev.Start + off, GEnd: ev.End + off}
			if ev.Deliver > 0 {
				sp.GDeliver = ev.Deliver + off
			}
			out = append(out, sp)
		}
	}
	return out
}

// Report is the full analysis of one merged trace.
type Report struct {
	Meta    obsv.Meta `json:"meta"`
	Ranks   int       `json:"ranks"`
	Spans   int       `json:"spans"`
	Linked  int       `json:"linked"`
	Offsets []float64 `json:"offsets"`
	// Makespan is the span of the merged run on the common timebase.
	Makespan float64 `json:"makespan"`
	// Critical is the chain of spans bounding the makespan, in time order.
	Critical []CritStep `json:"critical"`
	// Phases holds the per-phase skew/straggler attribution.
	Phases []PhaseStat `json:"phases"`
	// SlowestRank lost the most time across phases (-1 when unknowable).
	SlowestRank int `json:"slowest_rank"`
	// Divergence compares the run against a simnet pricing of the same
	// schedule; nil when no prediction was supplied.
	Divergence *DivergenceReport `json:"divergence,omitempty"`
}

// Analyze builds the full report for the store's current contents. g, when
// non-nil, enables per-phase link attribution (paths between ranks).
func (s *Store) Analyze(g *topology.Graph) *Report {
	rep, _ := s.analyze(g)
	return rep
}

// AnalyzeWithPrediction is Analyze plus a sim-vs-real divergence section:
// flows is a simnet pricing of the same schedule (harness.MeasureTraced).
func (s *Store) AnalyzeWithPrediction(g *topology.Graph, flows []simnet.FlowRecord, opt DivergenceOptions) *Report {
	rep, spans := s.analyze(g)
	rep.Divergence = Divergence(spans, flows, g, opt)
	return rep
}

func (s *Store) analyze(g *topology.Graph) (*Report, []Span) {
	s.cnts.Inc("aapc_trace_reports_total")
	byRank := s.ByRank()
	s.mu.Lock()
	common := s.common
	s.mu.Unlock()
	offsets := make([]float64, len(byRank))
	if !common {
		offsets = EstimateOffsets(byRank)
	}
	spans := Merge(byRank, offsets)
	rep := &Report{
		Meta:    s.Meta(),
		Ranks:   len(byRank),
		Spans:   len(spans),
		Offsets: offsets,
	}
	for i := range spans {
		if spans[i].Kind == obsv.KindRecv && spans[i].LinkSeq != 0 {
			rep.Linked++
		}
	}
	var first, last float64
	for i := range spans {
		if i == 0 || spans[i].GStart < first {
			first = spans[i].GStart
		}
		if spans[i].GEnd > last {
			last = spans[i].GEnd
		}
	}
	if len(spans) > 0 {
		rep.Makespan = last - first
	}
	rep.Critical = CriticalPath(spans)
	rep.Phases = PhaseStats(spans, g)
	rep.SlowestRank = slowestRank(rep.Critical)
	return rep, spans
}

// slowestRank attributes the run's straggler from the critical path: each
// step's exclusive contribution — how far it pushed the path past its
// predecessor's effective end — is charged to its rank, and the rank with
// the largest total wins (ties to the lower rank; -1 on an empty path).
//
// Phase residence cannot answer this question: in an all-to-all every rank
// finishes together, so the waiters' residences inflate in lockstep with
// the straggler's — worst in the final phase, where the rank that raced
// ahead earliest shows the LONGEST stay while it sits blocked on the slow
// one. Exclusive path time has no such confound: a wait step's contribution
// is only the sliver past what it waited on, while the slow rank's own
// sends carry their full duration.
func slowestRank(path []CritStep) int {
	contrib := make(map[int]float64)
	for i, st := range path {
		base := st.Start
		if i > 0 {
			base = path[i-1].End
		}
		if d := st.End - base; d > 0 {
			contrib[st.Rank] += d
		}
	}
	best, bestT := -1, 0.0
	for r, t := range contrib {
		if best == -1 || t > bestT || (t == bestT && r < best) {
			best, bestT = r, t
		}
	}
	return best
}

// WriteText renders the report as the human-readable straggler/critical
// path summary shown by `aapctrace` and GET /v1/trace/report?format=text.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace report: %d ranks, %d spans (%d causally linked), makespan %.3fms\n",
		r.Ranks, r.Spans, r.Linked, r.Makespan*1e3)
	if r.Meta.Name != "" {
		fmt.Fprintf(w, "run: %s transport=%s msize=%d\n", r.Meta.Name, r.Meta.Transport, r.Meta.Msize)
	}
	fmt.Fprintf(w, "clock offsets vs rank 0:")
	for _, off := range r.Offsets {
		fmt.Fprintf(w, " %+.6fs", off)
	}
	fmt.Fprintln(w)
	if r.SlowestRank >= 0 {
		fmt.Fprintf(w, "straggler: rank %d\n", r.SlowestRank)
	}
	if len(r.Phases) > 0 {
		fmt.Fprintln(w, "per-phase attribution:")
		for _, p := range r.Phases {
			fmt.Fprintf(w, "  phase %d: enter-skew %.3fms, slowest rank %d (residence %.3fms), sync-wait %.3fms, transmit %.3fms",
				p.Phase, p.EnterSkew*1e3, p.SlowestRank, p.Residence*1e3, p.SyncWait*1e3, p.Transmit*1e3)
			if p.SlowestLink != "" {
				fmt.Fprintf(w, ", slowest link %s (%.3fms mean)", p.SlowestLink, p.SlowestLinkLatency*1e3)
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Critical) > 0 {
		fmt.Fprintf(w, "critical path (%d steps):\n", len(r.Critical))
		for _, st := range r.Critical {
			via := ""
			if st.ViaLink {
				via = " <-msg"
			}
			fmt.Fprintf(w, "  %8.3fms..%8.3fms rank %d %s peer=%d phase=%d seq=%d%s\n",
				st.Start*1e3, st.End*1e3, st.Rank, st.Kind, st.Peer, st.Phase, st.Seq, via)
		}
	}
	if d := r.Divergence; d != nil {
		fmt.Fprintf(w, "sim-vs-real divergence: %d messages matched (%d unmatched), scale %.3g, factor %.1f\n",
			d.Matched, d.Unmatched, d.Scale, d.Factor)
		for _, l := range d.Links {
			mark := " "
			if l.Flagged {
				mark = "!"
			}
			fmt.Fprintf(w, "  %s link %-12s %d/%d messages diverging\n", mark, l.Link, l.Diverging, l.Crossing)
		}
	}
}

// Text renders WriteText to a string.
func (r *Report) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler serves the collector over HTTP:
//
//	POST /v1/trace/ingest  — body is an obsv JSONL trace; merged into the store
//	GET  /v1/trace/report  — JSON report (?format=text for the rendering)
//	GET  /v1/trace/events  — merged events as one JSONL trace
//	POST /v1/trace/reset   — drop ingested events
//
// The graph, when non-nil, enables link attribution in reports.
func Handler(s *Store, g *topology.Graph) http.Handler {
	return HandlerLive(s, func() *topology.Graph { return g })
}

// HandlerLive is Handler with a graph provider, for hosts whose topology
// evolves while the collector runs (the schedule daemon re-resolves its
// current version on every report). graph may return nil.
func HandlerLive(s *Store, graph func() *topology.Graph) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/trace/ingest", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := s.AddJSONL(req.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"spans\":%d}\n", s.NumSpans())
	})
	mux.HandleFunc("/v1/trace/report", func(w http.ResponseWriter, req *http.Request) {
		rep := s.Analyze(graph())
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/v1/trace/events", func(w http.ResponseWriter, req *http.Request) {
		byRank := s.ByRank()
		var evs []obsv.Event
		for _, r := range byRank {
			evs = append(evs, r...)
		}
		meta := s.Meta()
		if meta.Ranks == 0 {
			meta.Ranks = len(byRank)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = obsv.WriteJSONL(w, meta, evs)
	})
	mux.HandleFunc("/v1/trace/reset", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		s.Reset()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}
