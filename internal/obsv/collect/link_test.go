package collect

import (
	"fmt"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/mpi/tcp"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// Causal-linking invariants, exercised against the real transports: every
// cross-rank data receive must carry exactly one causal edge to its true
// sender span, and that must stay true when the wire misbehaves —
// retransmitted frames reuse their trace context, and the duplicate discard
// below the matcher keeps a re-delivered message from minting a second
// edge.

const linkTestRanks = 4

// tracedExchange sends one patterned message per directed pair through an
// instrumented comm, several rounds, and returns per-rank recorders.
func tracedExchange(t *testing.T, rounds, msize int, run func(fn func(c mpi.Comm) error) error) []*obsv.Recorder {
	t.Helper()
	recs := make([]*obsv.Recorder, linkTestRanks)
	for i := range recs {
		recs[i] = obsv.NewRecorder(i)
	}
	err := run(func(raw mpi.Comm) error {
		c := obsv.Instrument(raw, recs[raw.Rank()])
		me, n := c.Rank(), c.Size()
		for round := 0; round < rounds; round++ {
			reqs := make([]mpi.Request, 0, 2*(n-1))
			bufs := make([][]byte, n)
			for p := 0; p < n; p++ {
				if p == me {
					continue
				}
				out := make([]byte, msize)
				for i := range out {
					out[i] = byte(me + p + round + i)
				}
				reqs = append(reqs, c.Isend(out, p, 7))
				bufs[p] = make([]byte, msize)
				reqs = append(reqs, c.Irecv(bufs[p], p, 7))
			}
			if err := mpi.WaitAllTimeout(reqs, 20*time.Second); err != nil {
				return err
			}
			for p := 0; p < n; p++ {
				if p == me {
					continue
				}
				for i, b := range bufs[p] {
					if b != byte(p+me+round+i) {
						return fmt.Errorf("rank %d: corrupt byte %d from %d round %d", me, i, p, round)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	return recs
}

// checkLinking asserts the causal bijection on the recorded logs: every
// cross-rank data recv is linked, every link resolves to a real send span
// addressed to the receiver, and no send span is claimed twice.
func checkLinking(t *testing.T, recs []*obsv.Recorder, wantRecvs int) {
	t.Helper()
	store := NewStore()
	store.SetCommonClock(true)
	for _, r := range recs {
		store.AddEvents(r.Events())
	}
	byRank := store.ByRank()

	type edge struct {
		rank int
		seq  uint64
	}
	sends := make(map[edge]obsv.Event)
	for r, evs := range byRank {
		for _, ev := range evs {
			if ev.Kind == obsv.KindSend {
				sends[edge{r, ev.Seq}] = ev
			}
		}
	}

	claimed := make(map[edge]edge) // sender identity -> claiming recv identity
	recvs := 0
	for r, evs := range byRank {
		for _, ev := range evs {
			if ev.Kind != obsv.KindRecv || ev.Peer == r {
				continue
			}
			recvs++
			if ev.LinkSeq == 0 {
				t.Errorf("rank %d recv seq %d from %d: no causal link", r, ev.Seq, ev.Peer)
				continue
			}
			if ev.Deliver <= 0 {
				t.Errorf("rank %d recv seq %d: linked but no delivery stamp", r, ev.Seq)
			}
			src := edge{ev.Peer, ev.LinkSeq}
			send, ok := sends[src]
			if !ok {
				t.Errorf("rank %d recv seq %d: link to nonexistent send (%d, %d)", r, ev.Seq, ev.Peer, ev.LinkSeq)
				continue
			}
			if send.Peer != r {
				t.Errorf("rank %d recv seq %d: linked send was addressed to %d", r, ev.Seq, send.Peer)
			}
			if prev, dup := claimed[src]; dup {
				t.Errorf("send (%d, %d) claimed by two recvs: (%d,%d) and (%d,%d) — duplicate causal edge",
					src.rank, src.seq, prev.rank, prev.seq, r, ev.Seq)
			}
			claimed[src] = edge{r, ev.Seq}
		}
	}
	if recvs != wantRecvs {
		t.Errorf("saw %d cross-rank recv spans, want %d", recvs, wantRecvs)
	}
}

func TestCausalLinkingMem(t *testing.T) {
	const rounds = 3
	recs := tracedExchange(t, rounds, 256, func(fn func(c mpi.Comm) error) error {
		return mem.Run(linkTestRanks, fn)
	})
	checkLinking(t, recs, rounds*linkTestRanks*(linkTestRanks-1))
}

func TestCausalLinkingTCP(t *testing.T) {
	const rounds = 3
	recs := tracedExchange(t, rounds, 256, func(fn func(c mpi.Comm) error) error {
		return tcp.Run(linkTestRanks, fn)
	})
	checkLinking(t, recs, rounds*linkTestRanks*(linkTestRanks-1))
}

// TestCausalLinkingTCPReconnect drops connections under live traffic so the
// transport reconnects and retransmits. A retransmitted frame carries the
// same trace context; the receive cursor discards the re-delivered copy, so
// the causal edge count must not change.
func TestCausalLinkingTCPReconnect(t *testing.T) {
	plan, err := faults.ParsePlanString(`
seed 7
drop 0 1 count 2
drop 2 3 after 1 count 1
drop 1 2 count 1
`)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	const rounds = 3
	recs := tracedExchange(t, rounds, 256, func(fn func(c mpi.Comm) error) error {
		return tcp.Run(linkTestRanks, fn, tcp.WithFaults(inj))
	})
	if len(inj.Events()) == 0 {
		t.Fatal("no faults fired; the reconnect path was not exercised")
	}
	checkLinking(t, recs, rounds*linkTestRanks*(linkTestRanks-1))
}

// TestCausalLinkingUnderCommDelay wraps the traced transport in the
// comm-level injector: tracing must survive the wrapper (IsendTraced
// passthrough) so attribution still works on exactly the runs where faults
// are being injected.
func TestCausalLinkingUnderCommDelay(t *testing.T) {
	plan, err := faults.ParsePlanString("delay 1 2 200us count 2")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(plan)
	const rounds = 2
	recs := tracedExchange(t, rounds, 256, func(fn func(c mpi.Comm) error) error {
		return mem.Run(linkTestRanks, func(c mpi.Comm) error {
			return fn(inj.Wrap(c))
		})
	})
	if len(inj.Events()) == 0 {
		t.Fatal("no faults fired; test is vacuous")
	}
	checkLinking(t, recs, rounds*linkTestRanks*(linkTestRanks-1))
}
