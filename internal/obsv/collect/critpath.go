package collect

import (
	"fmt"
	"sort"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Critical-path extraction and per-phase straggler attribution over the
// merged span DAG.
//
// The DAG has two edge families:
//
//   - timeline edges: on one rank, each span depends on the span whose
//     effect completed most recently before its own (effEnd order, NOT post
//     order: a receive pre-posted early and drained late would otherwise
//     sit "before" work that ran long after it was posted, letting the walk
//     jump forward in time);
//   - message edges: a linked receive (LinkSeq != 0) depends on the send
//     span (Peer, LinkSeq) on the sender's rank.
//
// The critical path is recovered backward from the span whose effect lands
// last. At each step the binding predecessor is whichever dependency held
// the span up longest. For a linked receive the message edge is binding
// when the time the rank sat waiting for the payload after its own work
// finished exceeds the head start the sender had — not merely when the
// delivery postdates the local predecessor: a rendezvous that completes a
// microsecond after this rank finally posted the receive is bound by the
// rank's own lateness, not by a sender that had been ready all along.
// Walking message edges hops ranks, which is exactly how a chain of
// sends/waits spanning the cluster — the thing that bounds the makespan —
// becomes visible from purely rank-local logs.

// spanKey names a span by its causal identity.
type spanKey struct {
	rank int
	seq  uint64
}

// CritStep is one span on the critical path, in global time.
type CritStep struct {
	Rank  int       `json:"rank"`
	Seq   uint64    `json:"seq"`
	Kind  obsv.Kind `json:"kind"`
	Peer  int       `json:"peer"`
	Phase int       `json:"phase"`
	Start float64   `json:"start"`
	End   float64   `json:"end"`
	// ViaLink marks a receive whose binding predecessor was the cross-rank
	// message edge: the path enters this rank through the wire here.
	ViaLink bool `json:"via_link,omitempty"`
}

// CriticalPath extracts the chain of spans bounding the makespan, ordered
// forward in time. Empty input yields an empty path.
func CriticalPath(spans []Span) []CritStep {
	if len(spans) == 0 {
		return nil
	}
	index := make(map[spanKey]*Span, len(spans))
	// prev[key] is the same-rank timeline predecessor: the span whose
	// effect completed most recently before this one's (ties by Seq).
	prev := make(map[spanKey]*Span, len(spans))
	perRank := make(map[int][]*Span)
	for i := range spans {
		sp := &spans[i]
		index[spanKey{sp.Rank, sp.Seq}] = sp
		perRank[sp.Rank] = append(perRank[sp.Rank], sp)
	}
	for _, list := range perRank {
		sort.Slice(list, func(i, j int) bool {
			if list[i].effEnd() != list[j].effEnd() {
				return list[i].effEnd() < list[j].effEnd()
			}
			return list[i].Seq < list[j].Seq
		})
		for i := 1; i < len(list); i++ {
			prev[spanKey{list[i].Rank, list[i].Seq}] = list[i-1]
		}
	}

	// Start from the span whose EFFECT happens last on the common timebase
	// (effEnd, not GEnd: a request drained late at the end of the run would
	// otherwise win on an artifact of drain order).
	cur := &spans[0]
	for i := range spans {
		if spans[i].effEnd() > cur.effEnd() {
			cur = &spans[i]
		}
	}

	var path []CritStep
	visited := make(map[spanKey]bool)
	for steps := 0; cur != nil && steps <= len(spans); steps++ {
		key := spanKey{cur.Rank, cur.Seq}
		if visited[key] {
			break
		}
		visited[key] = true

		var msgPred *Span
		if cur.Kind == obsv.KindRecv && cur.LinkSeq != 0 {
			msgPred = index[spanKey{cur.Peer, cur.LinkSeq}]
		}
		localPred := prev[key]

		viaLink := false
		var next *Span
		switch {
		case msgPred != nil && localPred == nil:
			viaLink = true
			next = msgPred
		case msgPred != nil && cur.GDeliver > 0 &&
			cur.GDeliver-localPred.effEnd() > localPred.effEnd()-msgPred.GStart:
			// The rank waited on the payload longer than the sender's head
			// start: the wire (or the sender) was the binding constraint.
			// When the gap is dwarfed by how long the sender had already
			// been ready, the rank's own lateness binds instead.
			viaLink = true
			next = msgPred
		default:
			next = localPred
		}

		path = append(path, CritStep{
			Rank: cur.Rank, Seq: cur.Seq, Kind: cur.Kind, Peer: cur.Peer,
			Phase: cur.Phase, Start: cur.GStart, End: cur.effEnd(), ViaLink: viaLink,
		})
		cur = next
	}

	// Reverse into forward time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PhaseStat attributes one schedule phase's time: who entered late, who
// stayed longest, how much of the stall was synchronization versus
// transmission, and (with a topology) which link ran slowest.
type PhaseStat struct {
	Phase int `json:"phase"`
	// EnterSkew is the spread between the first and last rank entering the
	// phase (MarkPhase spans).
	EnterSkew float64 `json:"enter_skew"`
	// FirstRank/LastRank entered earliest/latest.
	FirstRank int `json:"first_rank"`
	LastRank  int `json:"last_rank"`
	// SlowestRank spent the longest in the phase; Residence is its stay.
	SlowestRank int     `json:"slowest_rank"`
	Residence   float64 `json:"residence"`
	// SyncWait totals the ranks' recorded synchronization stalls in the
	// phase; Transmit totals the in-flight time (send start to delivery) of
	// the phase's data messages. Together they decompose where the phase's
	// waiting went.
	SyncWait float64 `json:"sync_wait"`
	Transmit float64 `json:"transmit"`
	// SlowestLink names the topology link whose crossing messages averaged
	// the highest latency ("u-v"); empty without a topology.
	SlowestLink        string  `json:"slowest_link,omitempty"`
	SlowestLinkLatency float64 `json:"slowest_link_latency,omitempty"`
}

// PhaseStats computes the per-phase attribution. A message belongs to the
// phase its SENDER recorded (receives are pre-posted before phases start,
// so the sender's phase is the schedule's truth). g may be nil.
func PhaseStats(spans []Span, g *topology.Graph) []PhaseStat {
	index := make(map[spanKey]*Span, len(spans))
	for i := range spans {
		sp := &spans[i]
		index[spanKey{sp.Rank, sp.Seq}] = sp
	}

	// entry[phase][rank] = global time the rank entered the phase.
	entry := make(map[int]map[int]float64)
	// exit[phase][rank] = entry into the rank's next phase, or its last
	// event end for the final phase.
	lastEnd := make(map[int]float64)
	rankPhases := make(map[int][]int) // phases in entry order per rank
	for i := range spans {
		sp := &spans[i]
		if sp.GEnd > lastEnd[sp.Rank] {
			lastEnd[sp.Rank] = sp.GEnd
		}
		if sp.Kind != obsv.KindPhase {
			continue
		}
		if entry[sp.Phase] == nil {
			entry[sp.Phase] = make(map[int]float64)
		}
		if _, dup := entry[sp.Phase][sp.Rank]; !dup {
			entry[sp.Phase][sp.Rank] = sp.GStart
			rankPhases[sp.Rank] = append(rankPhases[sp.Rank], sp.Phase)
		}
	}
	if len(entry) == 0 {
		return nil
	}

	type acc struct {
		sum   float64
		count int
	}
	syncWait := make(map[int]float64)
	transmit := make(map[int]float64)
	linkLat := make(map[int]map[topology.Edge]*acc)
	for i := range spans {
		sp := &spans[i]
		switch sp.Kind {
		case obsv.KindSyncWait:
			syncWait[sp.Phase] += sp.GEnd - sp.GStart
		case obsv.KindRecv:
			if sp.LinkSeq == 0 || sp.Bytes <= ControlSizeMax {
				continue
			}
			send := index[spanKey{sp.Peer, sp.LinkSeq}]
			if send == nil {
				continue
			}
			lat := sp.effEnd() - send.GStart
			transmit[send.Phase] += lat
			if g == nil || send.Rank == sp.Rank {
				continue
			}
			if linkLat[send.Phase] == nil {
				linkLat[send.Phase] = make(map[topology.Edge]*acc)
			}
			for _, e := range g.PathBetweenRanks(send.Rank, sp.Rank) {
				// Canonicalize direction so both directions of a physical
				// link accumulate together.
				if e.U > e.V {
					e = e.Reverse()
				}
				a := linkLat[send.Phase][e]
				if a == nil {
					a = &acc{}
					linkLat[send.Phase][e] = a
				}
				a.sum += lat
				a.count++
			}
		}
	}

	phases := make([]int, 0, len(entry))
	for p := range entry {
		phases = append(phases, p)
	}
	sort.Ints(phases)

	out := make([]PhaseStat, 0, len(phases))
	for _, p := range phases {
		st := PhaseStat{Phase: p, FirstRank: -1, LastRank: -1, SlowestRank: -1,
			SyncWait: syncWait[p], Transmit: transmit[p]}
		var minT, maxT float64
		for r, t := range entry[p] {
			if st.FirstRank == -1 || t < minT || (t == minT && r < st.FirstRank) {
				st.FirstRank, minT = r, t
			}
			if st.LastRank == -1 || t > maxT || (t == maxT && r < st.LastRank) {
				st.LastRank, maxT = r, t
			}
		}
		if st.FirstRank != -1 {
			st.EnterSkew = maxT - minT
		}
		// Residence: entry to next-phase entry (or last event) per rank.
		for r, t := range entry[p] {
			exit := lastEnd[r]
			seq := rankPhases[r]
			for i, ph := range seq {
				if ph == p && i+1 < len(seq) {
					exit = entry[seq[i+1]][r]
					break
				}
			}
			res := exit - t
			if st.SlowestRank == -1 || res > st.Residence || (res == st.Residence && r < st.SlowestRank) {
				st.SlowestRank, st.Residence = r, res
			}
		}
		// Slowest link by mean latency.
		var bestMean float64
		var bestEdge topology.Edge
		found := false
		// Deterministic edge order.
		edges := make([]topology.Edge, 0, len(linkLat[p]))
		for e := range linkLat[p] {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		for _, e := range edges {
			a := linkLat[p][e]
			mean := a.sum / float64(a.count)
			if !found || mean > bestMean {
				found, bestMean, bestEdge = true, mean, e
			}
		}
		if found {
			st.SlowestLink = linkName(g, bestEdge)
			st.SlowestLinkLatency = bestMean
		}
		out = append(out, st)
	}
	return out
}

// linkName renders an edge with the topology's node names.
func linkName(g *topology.Graph, e topology.Edge) string {
	return fmt.Sprintf("%s-%s", g.Node(e.U).Name, g.Node(e.V).Name)
}
