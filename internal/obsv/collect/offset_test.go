package collect

import (
	"math"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// synthTrace builds per-rank logs for a ring of messages with known clock
// skews: every directed pair (a, b) exchanges `per` messages with true
// one-way delay d plus per-message queueing noise, and each rank records
// times on a clock shifted by skew[r]. The estimator must recover offsets
// that cancel the skews (offset[r] = skew[0] - skew[r]).
func synthTrace(skew []float64, d float64, noise func(a, b, k int) float64) [][]obsv.Event {
	n := len(skew)
	byRank := make([][]obsv.Event, n)
	seq := make([]uint64, n)
	const per = 4
	// Base well above zero so skewed local stamps stay positive (0 means
	// "unknown" in the span model).
	t := 10.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			for k := 0; k < per; k++ {
				t += 0.001
				seq[a]++
				sendSeq := seq[a]
				byRank[a] = append(byRank[a], obsv.Event{
					Kind: obsv.KindSend, Rank: a, Peer: b, Seq: sendSeq, Bytes: 4096,
					Start: t + skew[a], End: t + 0.0001 + skew[a],
				})
				arr := t + d + noise(a, b, k)
				seq[b]++
				byRank[b] = append(byRank[b], obsv.Event{
					Kind: obsv.KindRecv, Rank: b, Peer: a, Seq: seq[b], Bytes: 4096,
					LinkSeq: sendSeq,
					Start:   t + skew[b], End: arr + 0.0002 + skew[b], Deliver: arr + skew[b],
				})
			}
		}
	}
	return byRank
}

func TestEstimateOffsetsRecoversSkew(t *testing.T) {
	skew := []float64{0, 0.5, -0.25, 1.75}
	byRank := synthTrace(skew, 0.002, func(a, b, k int) float64 {
		// Queueing only ever adds; the min over the pair's messages strips it.
		return float64(k) * 0.0003
	})
	offsets := EstimateOffsets(byRank)
	if len(offsets) != len(skew) {
		t.Fatalf("got %d offsets, want %d", len(offsets), len(skew))
	}
	for r := range skew {
		want := skew[0] - skew[r]
		if math.Abs(offsets[r]-want) > 1e-9 {
			t.Errorf("offsets[%d] = %v, want %v", r, offsets[r], want)
		}
	}
}

func TestEstimateOffsetsSilentRankKeepsZero(t *testing.T) {
	// Rank 3 exchanges no linked traffic: it cannot be aligned and must
	// keep offset 0 rather than inherit garbage.
	skew := []float64{0, 0.1, 0.2}
	byRank := synthTrace(skew, 0.001, func(a, b, k int) float64 { return 0 })
	byRank = append(byRank, nil)
	offsets := EstimateOffsets(byRank)
	if got := offsets[3]; got != 0 {
		t.Errorf("unlinked rank offset = %v, want 0", got)
	}
	for r := range skew {
		want := skew[0] - skew[r]
		if math.Abs(offsets[r]-want) > 1e-9 {
			t.Errorf("offsets[%d] = %v, want %v", r, offsets[r], want)
		}
	}
}

func TestEstimateOffsetsComposesAcrossHops(t *testing.T) {
	// Ranks 0 and 2 never talk directly; the estimate must compose through
	// rank 1 (BFS over observed pairs).
	skew := []float64{0, 0.3, -0.7}
	n := len(skew)
	byRank := make([][]obsv.Event, n)
	seq := make([]uint64, n)
	t0 := 10.0
	link := func(a, b int) {
		const d = 0.002
		for k := 0; k < 3; k++ {
			t0 += 0.001
			seq[a]++
			s := seq[a]
			byRank[a] = append(byRank[a], obsv.Event{
				Kind: obsv.KindSend, Rank: a, Peer: b, Seq: s,
				Start: t0 + skew[a], End: t0 + 0.0001 + skew[a],
			})
			seq[b]++
			byRank[b] = append(byRank[b], obsv.Event{
				Kind: obsv.KindRecv, Rank: b, Peer: a, Seq: seq[b], LinkSeq: s,
				Start: t0 + skew[b], End: t0 + d + skew[b], Deliver: t0 + d + skew[b],
			})
		}
	}
	link(0, 1)
	link(1, 0)
	link(1, 2)
	link(2, 1)
	offsets := EstimateOffsets(byRank)
	for r := range skew {
		want := skew[0] - skew[r]
		if math.Abs(offsets[r]-want) > 1e-9 {
			t.Errorf("offsets[%d] = %v, want %v", r, offsets[r], want)
		}
	}
}

// TestMergeAppliesOffsets pins the local-to-global mapping: global = local
// + offset, applied to Start, End, and Deliver alike.
func TestMergeAppliesOffsets(t *testing.T) {
	byRank := [][]obsv.Event{
		{{Kind: obsv.KindSend, Rank: 0, Seq: 1, Start: 1, End: 2}},
		{{Kind: obsv.KindRecv, Rank: 1, Seq: 1, LinkSeq: 1, Start: 1.5, End: 3, Deliver: 2.5}},
	}
	spans := Merge(byRank, []float64{0, -0.5})
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[1].GStart != 1.0 || spans[1].GEnd != 2.5 || spans[1].GDeliver != 2.0 {
		t.Errorf("offset not applied: %+v", spans[1])
	}
	if spans[0].GStart != 1 || spans[0].GEnd != 2 {
		t.Errorf("rank 0 shifted: %+v", spans[0])
	}
}
