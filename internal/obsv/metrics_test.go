package obsv

import (
	"bytes"
	"testing"
)

// TestWriteMetricsCounterFamilyGolden pins the counter section of the
// exposition byte-for-byte. The regression it guards: a plain byte sort of
// series names splits a family whenever another family name falls between
// its bare and labeled series ('_' is 0x5f, '{' is 0x7b, so
// "aapc_faults_total_errors" sorts between "aapc_faults_total" and
// "aapc_faults_total{kind=...}"), which made the old single-pass renderer
// emit the family's TYPE header twice — invalid Prometheus exposition — and
// it never emitted HELP for counters at all. Each family must render HELP
// and TYPE exactly once, with all of its series directly below.
func TestWriteMetricsCounterFamilyGolden(t *testing.T) {
	g := NewRegistry() // no recorders: the counter section is everything after the histograms

	// Two independently-registered sets (a node's transport counters and a
	// control-plane daemon's, in real deployments) sharing one family and
	// one exact series name: same-named series must merge by summing.
	var node, daemon Counters
	node.Add(`aapc_faults_total{kind="drop"}`, 2)
	node.Add("aapc_faults_total", 1)
	node.Add("aapc_sched_compiles_total", 5)
	daemon.Add(`aapc_faults_total{kind="drop"}`, 3)
	daemon.Add("aapc_faults_total_errors", 7)
	g.AddCounters(&node)
	g.AddCounters(&daemon)

	var buf bytes.Buffer
	g.WriteMetrics(&buf)
	out := buf.String()

	const wantCounters = `# HELP aapc_faults_total Named counter merged across ranks and registered counter sets.
# TYPE aapc_faults_total counter
aapc_faults_total 1
aapc_faults_total{kind="drop"} 5
# HELP aapc_faults_total_errors Named counter merged across ranks and registered counter sets.
# TYPE aapc_faults_total_errors counter
aapc_faults_total_errors 7
# HELP aapc_sched_compiles_total Named counter merged across ranks and registered counter sets.
# TYPE aapc_sched_compiles_total counter
aapc_sched_compiles_total 5
`
	// The counter section is the tail of the exposition, right after the last
	// histogram's _count line.
	idx := bytes.Index(buf.Bytes(), []byte("aapc_send_size_bytes_count"))
	if idx < 0 {
		t.Fatalf("exposition missing the histogram section:\n%s", out)
	}
	nl := bytes.IndexByte(buf.Bytes()[idx:], '\n')
	got := out[idx+nl+1:]
	if got != wantCounters {
		t.Errorf("counter section mismatch:\n--- got ---\n%s--- want ---\n%s", got, wantCounters)
	}
}
