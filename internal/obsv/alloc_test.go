package obsv

import (
	"testing"
	"time"
)

// TestInstrumentedOpAllocsAmortized is the allocation-regression gate for
// the instrumentation fast path: one Isend+Wait against a no-op transport
// must cost well under one allocation per operation in the steady state —
// request wrappers come from the icomm's bump-allocated chunks (1/64 ops)
// and event records from the recorder's block storage (1/256 events).
func TestInstrumentedOpAllocsAmortized(t *testing.T) {
	if !Enabled {
		t.Skip("obsv compiled out")
	}
	base := &nopComm{start: time.Now()}
	buf := make([]byte, 1024)
	c := Instrument(base, NewRecorder(0))
	for i := 0; i < 512; i++ { // past the small first event chunk
		if err := c.Isend(buf, 1, 0).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := c.Isend(buf, 1, 0).Wait(); err != nil {
			t.Fatal(err)
		}
	})
	// Amortized budget: 1/64 (ireq chunk) + 1/256 (event chunk) plus chunk
	// bookkeeping ≈ 0.02; 0.1 leaves headroom without hiding a regression to
	// per-op allocation.
	if allocs > 0.1 {
		t.Errorf("instrumented op: %.3f allocs/op, want <= 0.1", allocs)
	}
}
