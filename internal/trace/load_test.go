package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

func loadStar(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.New()
	sw := g.MustAddSwitch("sw")
	for i := 0; i < n; i++ {
		g.MustConnect(sw, g.MustAddMachine(string(rune('a'+i))))
	}
	return g.MustValidate()
}

// TestNewWithRanksIdleRank checks the satellite fix: a rank that never
// communicates must still get a Gantt row and dilute the mean busy fraction.
func TestNewWithRanksIdleRank(t *testing.T) {
	// Only ranks 0 and 1 exchange; rank 2 is idle.
	records := []simnet.FlowRecord{
		{Src: 0, Dst: 1, Size: 1000, StartedAt: 0, FinishedAt: 1},
		{Src: 1, Dst: 0, Size: 1000, StartedAt: 0, FinishedAt: 1},
	}
	inferred := New(records)
	explicit := NewWithRanks(records, 3)
	if got := strings.Count(inferred.Gantt(20), "rank"); got != 2 {
		t.Errorf("inferred Gantt has %d rows, want 2", got)
	}
	if got := strings.Count(explicit.Gantt(20), "rank"); got != 3 {
		t.Errorf("explicit Gantt has %d rows, want 3 (idle rank dropped)", got)
	}
	if bi, be := inferred.Stats().MeanSenderBusy, explicit.Stats().MeanSenderBusy; be >= bi {
		t.Errorf("idle rank must lower the mean busy fraction: inferred %g, explicit %g", bi, be)
	}
	// A too-small explicit count must not drop flows.
	if tl := NewWithRanks(records, 1); tl.ranks != 2 {
		t.Errorf("undersized rank count: got %d ranks, want inferred 2", tl.ranks)
	}
}

// TestJSONLTimelineRoundTrip records an instrumented scheduled all-to-all,
// writes the JSONL trace, loads it back, and demands the identical Timeline:
// record -> write -> load must lose nothing the timeline depends on.
func TestJSONLTimelineRoundTrip(t *testing.T) {
	const msize = 1024
	g := loadStar(t, 4)
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	n := sc.NumRanks()
	var mu sync.Mutex
	recs := make([]*obsv.Recorder, n)
	err = mem.Run(n, func(c mpi.Comm) error {
		rec := obsv.NewRecorder(c.Rank())
		mu.Lock()
		recs[c.Rank()] = rec
		mu.Unlock()
		return sc.Fn()(obsv.Instrument(c, rec), alltoall.NewShared(msize), msize)
	})
	if err != nil {
		t.Fatal(err)
	}
	meta := obsv.Meta{Version: 1, Ranks: n, Transport: "mem", Name: "ours", Msize: msize}
	direct := FromEvents(meta, obsv.MergedEvents(recs...))

	var buf bytes.Buffer
	if err := obsv.WriteRecorders(&buf, meta, recs...); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta round trip: got %+v, want %+v", gotMeta, meta)
	}
	ds, ls := direct.Stats(), loaded.Stats()
	if ds != ls {
		t.Errorf("timeline stats diverge after round trip:\ndirect %+v\nloaded %+v", ds, ls)
	}
	if direct.NumFlows() != loaded.NumFlows() || direct.Duration() != loaded.Duration() {
		t.Errorf("flows/duration diverge: %d/%g vs %d/%g",
			direct.NumFlows(), direct.Duration(), loaded.NumFlows(), loaded.Duration())
	}
	if dg, lg := direct.Gantt(60), loaded.Gantt(60); dg != lg {
		t.Errorf("Gantt diverges after round trip:\n%s\nvs\n%s", dg, lg)
	}
	// Sanity on content: the schedule's data flows are all there.
	if ds.DataFlows != n*(n-1) {
		t.Errorf("round trip has %d data flows, want %d", ds.DataFlows, n*(n-1))
	}
	if ds.ControlFlows == 0 {
		t.Error("expected sync-wait control flows in the timeline")
	}
}
