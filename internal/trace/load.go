package trace

import (
	"io"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// FromEvents converts a recorded obsv event stream into a Timeline, so runs
// on real transports (mem, tcp) render with the same Gantt charts and stats
// as simulator runs. Send events become data flows; syncwait markers become
// 1-byte control flows from the awaited peer (classified as control by
// ControlSizeMax, exactly like the simulator records the scheduled
// algorithm's synchronization messages). Receive, barrier and phase events
// carry no flow of their own and are skipped. meta.Ranks, when set, pins the
// world size so idle ranks keep their rows.
func FromEvents(meta obsv.Meta, events []obsv.Event) *Timeline {
	records := make([]simnet.FlowRecord, 0, len(events))
	for _, e := range events {
		switch e.Kind {
		case obsv.KindSend:
			records = append(records, simnet.FlowRecord{
				Src:        e.Rank,
				Dst:        e.Peer,
				Tag:        e.Tag,
				Size:       e.Bytes,
				MatchedAt:  e.Start,
				StartedAt:  e.Start,
				FinishedAt: e.End,
			})
		case obsv.KindSyncWait:
			// The stall interval on the waiting rank stands in for the
			// synchronization message's flight.
			records = append(records, simnet.FlowRecord{
				Src:        e.Peer,
				Dst:        e.Rank,
				Tag:        e.Tag,
				Size:       1,
				MatchedAt:  e.Start,
				StartedAt:  e.Start,
				FinishedAt: e.End,
			})
		}
	}
	return NewWithRanks(records, meta.Ranks)
}

// LoadJSONL reads an obsv JSONL event trace and builds its Timeline.
func LoadJSONL(r io.Reader) (*Timeline, obsv.Meta, error) {
	meta, events, err := obsv.ReadJSONL(r)
	if err != nil {
		return nil, meta, err
	}
	return FromEvents(meta, events), meta, nil
}
