package trace

import (
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/alltoall"
	"github.com/aapc-sched/aapcsched/internal/harness"
	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// runTraced executes one all-to-all on the Fig. 1 cluster and returns its
// timeline.
func runTraced(t *testing.T, fn alltoall.Func, msize int) *Timeline {
	t.Helper()
	g := harness.Fig1()
	w, err := simnet.NewWorld(simnet.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c mpi.Comm) error {
		return fn(c, alltoall.NewShared(msize), msize)
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(w.FlowTrace())
}

func TestTimelineFromScheduledRun(t *testing.T) {
	g := harness.Fig1()
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	tl := runTraced(t, sc.Fn(), 32<<10)
	st := tl.Stats()
	// 30 data messages (6 ranks all-to-all, self handled locally) plus the
	// 46 synchronization messages of the Fig. 1 plan.
	if st.DataFlows != 30 {
		t.Errorf("DataFlows = %d, want 30", st.DataFlows)
	}
	if st.ControlFlows != sc.SyncCount() {
		t.Errorf("ControlFlows = %d, want %d", st.ControlFlows, sc.SyncCount())
	}
	if st.DataBytes != 30*(32<<10) {
		t.Errorf("DataBytes = %d", st.DataBytes)
	}
	if tl.Duration() <= 0 || tl.NumFlows() != 30+sc.SyncCount() {
		t.Errorf("Duration %v NumFlows %d", tl.Duration(), tl.NumFlows())
	}
	if st.MeanSenderBusy <= 0 || st.MeanSenderBusy > 1 {
		t.Errorf("MeanSenderBusy = %v", st.MeanSenderBusy)
	}
	// The schedule never lets two data flows share a link; on this cluster
	// at most 4 data flows run at once (one per scheduled message of a
	// phase), never 30 like the unscheduled baseline.
	if st.MaxConcurrentData > 6 {
		t.Errorf("MaxConcurrentData = %d for the scheduled run", st.MaxConcurrentData)
	}
}

func TestScheduledVsSimpleConcurrency(t *testing.T) {
	g := harness.Fig1()
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	ours := runTraced(t, sc.Fn(), 16<<10).Stats()
	lam := runTraced(t, alltoall.Simple, 16<<10).Stats()
	if lam.MaxConcurrentData <= ours.MaxConcurrentData {
		t.Errorf("LAM concurrency %d should exceed scheduled %d",
			lam.MaxConcurrentData, ours.MaxConcurrentData)
	}
	if lam.DataFlows != ours.DataFlows {
		t.Errorf("both should move 30 data flows: %d vs %d", lam.DataFlows, ours.DataFlows)
	}
}

func TestGanttRendering(t *testing.T) {
	g := harness.Fig1()
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	tl := runTraced(t, sc.Fn(), 32<<10)
	gantt := tl.Gantt(72)
	lines := strings.Split(strings.TrimRight(gantt, "\n"), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("gantt has %d lines, want header+6:\n%s", len(lines), gantt)
	}
	for _, rank := range []string{"rank  0", "rank  5"} {
		if !strings.Contains(gantt, rank) {
			t.Errorf("gantt missing %q", rank)
		}
	}
	// Every rank sends at some point, so no row is all idle.
	for _, line := range lines[1:] {
		if !strings.ContainsAny(line, "0123456789") {
			t.Errorf("idle gantt row: %s", line)
		}
	}
}

func TestPhaseProfile(t *testing.T) {
	g := harness.Fig1()
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	tl := runTraced(t, sc.Fn(), 32<<10)
	prof := tl.PhaseProfile(9)
	total := 0
	for _, n := range prof {
		total += n
	}
	if total != 30 {
		t.Errorf("profile counts %d flows, want 30", total)
	}
	// Default bucket count.
	if got := tl.PhaseProfile(0); len(got) != 10 {
		t.Errorf("default buckets = %d", len(got))
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := New(nil)
	if tl.Duration() != 0 || tl.NumFlows() != 0 {
		t.Error("empty timeline not empty")
	}
	if !strings.Contains(tl.Gantt(40), "empty") {
		t.Error("empty gantt should say so")
	}
	st := tl.Stats()
	if st.DataFlows != 0 || st.MeanSenderBusy != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestUtilizationReport(t *testing.T) {
	g := harness.Fig1()
	sc, err := harness.CompileRoutine(g, alltoall.PairwiseSync)
	if err != nil {
		t.Fatal(err)
	}
	w, err := simnet.NewWorld(simnet.Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	const msize = 64 << 10
	if err := w.Run(func(c mpi.Comm) error {
		return sc.Fn()(c, alltoall.NewShared(msize), msize)
	}); err != nil {
		t.Fatal(err)
	}
	rep := UtilizationReport(g, w.LinkStats(), w.Elapsed())
	// The bottleneck s0--s1 must appear first (highest utilization).
	lines := strings.Split(rep, "\n")
	if len(lines) < 10 {
		t.Fatalf("report too short:\n%s", rep)
	}
	if !strings.Contains(lines[1], "s0 -- s1") {
		t.Errorf("bottleneck link not ranked first:\n%s", rep)
	}
	if !strings.Contains(rep, "%") || !strings.Contains(rep, "#") {
		t.Errorf("report missing bars/percentages:\n%s", rep)
	}
	// Empty inputs degrade gracefully.
	if !strings.Contains(UtilizationReport(g, nil, 0), "no utilization") {
		t.Error("empty report should say so")
	}
}

func TestBar(t *testing.T) {
	if bar(-1, 4) != "[----]" || bar(2, 4) != "[####]" || bar(0.5, 4) != "[##--]" {
		t.Errorf("bar rendering wrong: %q %q %q", bar(-1, 4), bar(2, 4), bar(0.5, 4))
	}
}

func TestPhaseProfileShapes(t *testing.T) {
	// Barrier-separated execution clusters flow starts into phase buckets;
	// the unscheduled baseline front-loads everything into the first bucket.
	g := harness.Fig1()
	barrier, err := harness.CompileRoutine(g, alltoall.BarrierSync)
	if err != nil {
		t.Fatal(err)
	}
	profBarrier := runTraced(t, barrier.Fn(), 32<<10).PhaseProfile(9)
	profLAM := runTraced(t, alltoall.Simple, 32<<10).PhaseProfile(9)
	if profLAM[0] != 30 {
		t.Errorf("LAM should start all 30 flows immediately, got %v", profLAM)
	}
	if profBarrier[0] >= 30 {
		t.Errorf("barrier-separated flows should spread across buckets, got %v", profBarrier)
	}
	nonEmpty := 0
	for _, n := range profBarrier {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 5 {
		t.Errorf("barrier profile too concentrated: %v", profBarrier)
	}
}
