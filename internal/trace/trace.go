// Package trace turns the simulator's flow records into human-readable
// pictures and statistics: per-sender Gantt charts of when each rank's
// messages were in flight, and aggregate numbers (busy fractions, control
// versus data traffic) that make schedule behaviour — phase structure,
// drift, synchronization stalls — visible at a glance.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/simnet"
)

// ControlSizeMax classifies flows: messages of at most this many bytes are
// counted as control traffic (the scheduled algorithm's synchronization
// messages are 1 byte). It aliases obsv.ControlSizeMax so simulator flow
// records and recorded obsv event traces share one classification.
const ControlSizeMax = obsv.ControlSizeMax

// Timeline is an analyzed set of flow records.
type Timeline struct {
	records []simnet.FlowRecord
	ranks   int
	end     float64
}

// New builds a timeline from the flow records of a finished simulation run.
// The rank count is inferred from the records, so a rank that never sent or
// received anything is invisible; when the true world size is known, use
// NewWithRanks so idle ranks keep their Gantt rows.
func New(records []simnet.FlowRecord) *Timeline {
	return NewWithRanks(records, 0)
}

// NewWithRanks builds a timeline with an explicit world size. ranks <= 0
// falls back to inferring the count from the records. An explicit count
// larger than any rank seen in the records adds idle rows (and lowers the
// mean busy fraction accordingly); a count smaller than the records imply
// is ignored in favor of the inferred one — flows never get dropped.
func NewWithRanks(records []simnet.FlowRecord, ranks int) *Timeline {
	tl := &Timeline{records: append([]simnet.FlowRecord(nil), records...)}
	if ranks > 0 {
		tl.ranks = ranks
	}
	for _, r := range tl.records {
		if r.Src+1 > tl.ranks {
			tl.ranks = r.Src + 1
		}
		if r.Dst+1 > tl.ranks {
			tl.ranks = r.Dst + 1
		}
		if r.FinishedAt > tl.end {
			tl.end = r.FinishedAt
		}
	}
	sort.SliceStable(tl.records, func(i, j int) bool {
		return tl.records[i].StartedAt < tl.records[j].StartedAt
	})
	return tl
}

// Duration returns the time of the last flow completion.
func (tl *Timeline) Duration() float64 { return tl.end }

// NumFlows returns the number of recorded flows.
func (tl *Timeline) NumFlows() int { return len(tl.records) }

// Stats summarizes a timeline.
type Stats struct {
	// DataFlows and ControlFlows partition the flows by ControlSizeMax.
	DataFlows    int
	ControlFlows int
	// DataBytes is the payload volume moved by data flows.
	DataBytes int
	// MeanSenderBusy is the mean over ranks of the fraction of the run each
	// rank spent with at least one outgoing data flow in flight.
	MeanSenderBusy float64
	// MaxConcurrentData is the peak number of simultaneously active data
	// flows.
	MaxConcurrentData int
}

// Stats computes aggregate statistics.
func (tl *Timeline) Stats() Stats {
	var st Stats
	type edge struct {
		at    float64
		delta int
	}
	var edges []edge
	busy := make([]float64, tl.ranks)
	for _, r := range tl.records {
		if r.Size <= ControlSizeMax {
			st.ControlFlows++
			continue
		}
		st.DataFlows++
		st.DataBytes += r.Size
		edges = append(edges, edge{r.StartedAt, 1}, edge{r.FinishedAt, -1})
		if r.Src < tl.ranks {
			busy[r.Src] += r.FinishedAt - r.StartedAt
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // process ends before starts at ties
	})
	cur := 0
	for _, e := range edges {
		cur += e.delta
		if cur > st.MaxConcurrentData {
			st.MaxConcurrentData = cur
		}
	}
	if tl.end > 0 && tl.ranks > 0 {
		total := 0.0
		for _, b := range busy {
			total += b / tl.end
		}
		st.MeanSenderBusy = total / float64(tl.ranks)
	}
	return st
}

// Gantt renders a per-sender timeline of data flows: one row per rank,
// time bucketed into width columns. Each cell shows the destination of the
// flow in flight ('0'-'9', 'a'-'z' beyond 9, '*' when several overlap,
// '.' when idle). Control flows are omitted.
func (tl *Timeline) Gantt(width int) string {
	if width < 10 {
		width = 60
	}
	if tl.end == 0 || tl.ranks == 0 {
		return "(empty timeline)\n"
	}
	rows := make([][]byte, tl.ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	mark := func(dst int) byte {
		switch {
		case dst < 10:
			return byte('0' + dst)
		case dst < 36:
			return byte('a' + dst - 10)
		default:
			return '#'
		}
	}
	for _, r := range tl.records {
		if r.Size <= ControlSizeMax || r.Src >= tl.ranks {
			continue
		}
		lo := int(r.StartedAt / tl.end * float64(width))
		hi := int(r.FinishedAt / tl.end * float64(width))
		if hi >= width {
			hi = width - 1
		}
		for x := lo; x <= hi; x++ {
			switch rows[r.Src][x] {
			case '.':
				rows[r.Src][x] = mark(r.Dst)
			default:
				rows[r.Src][x] = '*'
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sender timeline over %.3f ms (columns of %.3f ms; cells name the destination)\n",
		tl.end*1e3, tl.end/float64(width)*1e3)
	for rank, row := range rows {
		fmt.Fprintf(&sb, "rank %2d |%s|\n", rank, row)
	}
	return sb.String()
}

// PhaseProfile buckets data-flow start times and reports how many flows
// start in each bucket — for a well-synchronized schedule the starts
// cluster into the schedule's phases.
func (tl *Timeline) PhaseProfile(buckets int) []int {
	if buckets <= 0 {
		buckets = 10
	}
	out := make([]int, buckets)
	if tl.end == 0 {
		return out
	}
	for _, r := range tl.records {
		if r.Size <= ControlSizeMax {
			continue
		}
		b := int(r.StartedAt / tl.end * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		out[b]++
	}
	return out
}
