package trace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/aapc-sched/aapcsched/internal/simnet"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// UtilizationReport renders per-link utilization from a finished simulation
// run: for every physical link, the fraction of its capacity used over the
// elapsed time, in both directions. A contention-free schedule shows the
// bottleneck link near 100% and everything else proportional to its load.
func UtilizationReport(g *topology.Graph, stats []simnet.LinkStats, elapsed float64) string {
	if elapsed <= 0 || len(stats) == 0 {
		return "(no utilization data)\n"
	}
	// Pair up the two directions of each physical link.
	type row struct {
		name     string
		fwd, rev float64
	}
	byLink := make(map[topology.Edge]*row)
	for _, ls := range stats {
		e := ls.Edge
		canon := e
		if canon.U > canon.V {
			canon = canon.Reverse()
		}
		r, ok := byLink[canon]
		if !ok {
			r = &row{name: fmt.Sprintf("%s -- %s", g.Node(canon.U).Name, g.Node(canon.V).Name)}
			byLink[canon] = r
		}
		util := ls.BusySeconds / elapsed
		if e == canon {
			r.fwd = util
		} else {
			r.rev = util
		}
	}
	rows := make([]*row, 0, len(byLink))
	for _, r := range byLink {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		mi := rows[i].fwd
		if rows[i].rev > mi {
			mi = rows[i].rev
		}
		mj := rows[j].fwd
		if rows[j].rev > mj {
			mj = rows[j].rev
		}
		if mi != mj {
			return mi > mj
		}
		return rows[i].name < rows[j].name
	})
	var sb strings.Builder
	sb.WriteString("link utilization (fraction of capacity, by direction):\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("  %-16s %s %5.1f%%   %s %5.1f%%\n",
			r.name, bar(r.fwd, 20), r.fwd*100, bar(r.rev, 20), r.rev*100))
	}
	return sb.String()
}

// bar renders a utilization fraction as a fixed-width ASCII bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	fill := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + "]"
}
