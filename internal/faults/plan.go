// Package faults is a seeded, deterministic fault-injection layer for the
// mpi transports. A Plan — a list of rules parsed from a small line-oriented
// DSL or built programmatically — drives an Injector that can wrap any
// mpi.Comm (message delays, rank stalls, rank kills, lost messages) and
// plug into the tcp transport's frame writer (connection drops, duplicate
// delivery, frame delays) through the mpi.FaultInjector hook.
//
// Determinism: every decision for the k-th message of a directed pair (or
// the k-th operation of a rank) depends only on the plan, the seed and k —
// never on goroutine interleaving. Two runs with the same seed and plan
// inject the same event sequence per pair, which Events reports in a
// canonical order for comparison.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind is the kind of fault a rule injects.
type Kind int

const (
	// Delay postpones matching messages (src->dst) by Rule.Delay.
	Delay Kind = iota
	// Drop discards matching messages. At the frame level (tcp) the
	// transport breaks the pair connection instead of writing — a
	// resilient transport recovers by reconnect + retransmit. At the comm
	// level (mem) the message silently vanishes, so the receiver's
	// deadline fires.
	Drop
	// Dup delivers matching messages twice. Frame level only: above the
	// matching layer a duplicate is indistinguishable from a real message,
	// below it the sequence-number guard must discard it.
	Dup
	// Stall pauses the rank (Rule.Src) for Rule.Delay before matching
	// operations.
	Stall
	// Kill terminates the rank (Rule.Src) at its After-th operation: every
	// later operation involving it fails with a typed *mpi.RankError.
	Kill
)

// String names the kind with its DSL keyword.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Stall:
		return "stall"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Any is the wildcard rank for Rule.Src/Dst.
const Any = -1

// Rule matches a subset of messages (Delay/Drop/Dup: directed pair
// src->dst) or rank operations (Stall/Kill: rank Src) and injects one
// fault kind into them.
type Rule struct {
	Kind Kind
	// Src and Dst select the directed pair; Any is a wildcard. Stall and
	// Kill use Src as the rank and ignore Dst.
	Src, Dst int
	// After skips the first After matching messages/operations.
	After int
	// Count bounds how many messages/operations the rule affects after the
	// skip; 0 means unlimited.
	Count int
	// Prob injects with this probability per matching message (from the
	// pair's deterministic stream); 0 or 1 mean always.
	Prob float64
	// Delay is the injected duration for Delay and Stall rules.
	Delay time.Duration
}

// matches reports whether the rule selects the directed pair.
func (r *Rule) matchesPair(src, dst int) bool {
	return (r.Src == Any || r.Src == src) && (r.Dst == Any || r.Dst == dst)
}

// Plan is a reproducible fault plan: a seed plus an ordered rule list.
// The zero Plan injects nothing.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// pairRule and rankRule classify rule kinds.
func (r *Rule) pairRule() bool { return r.Kind == Delay || r.Kind == Drop || r.Kind == Dup }
func (r *Rule) rankRule() bool { return r.Kind == Stall || r.Kind == Kill }

// Format renders the plan in the DSL; ParsePlanString(p.Format()) is
// equivalent to p.
func (p *Plan) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d\n", p.Seed)
	for i := range p.Rules {
		r := &p.Rules[i]
		name := func(v int) string {
			if v == Any {
				return "*"
			}
			return strconv.Itoa(v)
		}
		switch r.Kind {
		case Delay, Drop, Dup:
			fmt.Fprintf(&sb, "%s %s %s", r.Kind, name(r.Src), name(r.Dst))
		case Stall:
			fmt.Fprintf(&sb, "stall %s", name(r.Src))
		case Kill:
			fmt.Fprintf(&sb, "kill %s", name(r.Src))
		}
		if r.Kind == Delay || r.Kind == Stall {
			fmt.Fprintf(&sb, " %v", r.Delay)
		}
		if r.After > 0 {
			fmt.Fprintf(&sb, " after %d", r.After)
		}
		if r.Count > 0 {
			fmt.Fprintf(&sb, " count %d", r.Count)
		}
		if r.Prob > 0 && r.Prob < 1 {
			fmt.Fprintf(&sb, " prob %g", r.Prob)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ParsePlan reads a fault plan in the DSL:
//
//	# comment
//	seed 42
//	delay 0 1 5ms count 3        # delay the first 3 messages 0->1 by 5ms
//	drop  * 2 prob 0.1           # drop ~10% of messages into rank 2
//	dup   1 0 after 2 count 1    # duplicate the third message 1->0
//	stall 3 10ms after 5         # pause rank 3 for 10ms from its 6th op on
//	kill  4 after 12             # rank 4 dies at its 12th operation
//
// Ranks are integers or the wildcard `*`; durations use Go syntax (5ms,
// 1s). The modifiers after/count/prob may appear in any order.
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("faults: line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return nil, bad("seed takes one integer")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, bad("bad seed %q", fields[1])
			}
			p.Seed = v
		case "delay", "drop", "dup", "stall", "kill":
			rule, rest, err := parseRuleHead(fields)
			if err != nil {
				return nil, bad("%v", err)
			}
			if err := parseModifiers(&rule, rest); err != nil {
				return nil, bad("%v", err)
			}
			p.Rules = append(p.Rules, rule)
		default:
			return nil, bad("unknown keyword %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParsePlanString is ParsePlan over a string.
func ParsePlanString(s string) (*Plan, error) {
	return ParsePlan(strings.NewReader(s))
}

func parseRank(s string) (int, error) {
	if s == "*" {
		return Any, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad rank %q", s)
	}
	return v, nil
}

// parseRuleHead consumes the keyword and positional arguments, returning
// the partial rule and the remaining modifier fields.
func parseRuleHead(fields []string) (Rule, []string, error) {
	var r Rule
	var err error
	switch fields[0] {
	case "delay", "drop", "dup":
		switch fields[0] {
		case "delay":
			r.Kind = Delay
		case "drop":
			r.Kind = Drop
		case "dup":
			r.Kind = Dup
		}
		need := 3
		if r.Kind == Delay {
			need = 4
		}
		if len(fields) < need {
			return r, nil, fmt.Errorf("%s needs SRC DST%s", fields[0],
				map[bool]string{true: " DURATION", false: ""}[r.Kind == Delay])
		}
		if r.Src, err = parseRank(fields[1]); err != nil {
			return r, nil, err
		}
		if r.Dst, err = parseRank(fields[2]); err != nil {
			return r, nil, err
		}
		if r.Kind == Delay {
			if r.Delay, err = time.ParseDuration(fields[3]); err != nil || r.Delay < 0 {
				return r, nil, fmt.Errorf("bad duration %q", fields[3])
			}
		}
		return r, fields[need:], nil
	case "stall":
		r.Kind = Stall
		r.Dst = Any
		if len(fields) < 3 {
			return r, nil, fmt.Errorf("stall needs RANK DURATION")
		}
		if r.Src, err = parseRank(fields[1]); err != nil {
			return r, nil, err
		}
		if r.Delay, err = time.ParseDuration(fields[2]); err != nil || r.Delay < 0 {
			return r, nil, fmt.Errorf("bad duration %q", fields[2])
		}
		return r, fields[3:], nil
	case "kill":
		r.Kind = Kill
		r.Dst = Any
		if len(fields) < 2 {
			return r, nil, fmt.Errorf("kill needs RANK")
		}
		if r.Src, err = parseRank(fields[1]); err != nil {
			return r, nil, err
		}
		if r.Src == Any {
			return r, nil, fmt.Errorf("kill rank cannot be a wildcard")
		}
		return r, fields[2:], nil
	}
	return r, nil, fmt.Errorf("unknown rule %q", fields[0])
}

func parseModifiers(r *Rule, fields []string) error {
	for i := 0; i < len(fields); i += 2 {
		if i+1 >= len(fields) {
			return fmt.Errorf("modifier %q needs a value", fields[i])
		}
		key, val := fields[i], fields[i+1]
		switch key {
		case "after":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return fmt.Errorf("bad after %q", val)
			}
			r.After = v
		case "count":
			v, err := strconv.Atoi(val)
			if err != nil || v < 1 {
				return fmt.Errorf("bad count %q", val)
			}
			r.Count = v
		case "prob":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil || v <= 0 || v > 1 {
				return fmt.Errorf("bad prob %q", val)
			}
			r.Prob = v
		default:
			return fmt.Errorf("unknown modifier %q", key)
		}
	}
	return nil
}

// Event is one injected fault, reported by Injector.Events.
type Event struct {
	Kind Kind
	// Src and Dst are the directed pair (Dst == Any for rank events).
	Src, Dst int
	// Op is the index of the affected message within its pair stream (or
	// operation within its rank stream).
	Op int
	// Delay is the injected duration for Delay/Stall events.
	Delay time.Duration
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Dst == Any {
		if e.Delay > 0 {
			return fmt.Sprintf("%s rank %d op %d %v", e.Kind, e.Src, e.Op, e.Delay)
		}
		return fmt.Sprintf("%s rank %d op %d", e.Kind, e.Src, e.Op)
	}
	if e.Delay > 0 {
		return fmt.Sprintf("%s %d->%d msg %d %v", e.Kind, e.Src, e.Dst, e.Op, e.Delay)
	}
	return fmt.Sprintf("%s %d->%d msg %d", e.Kind, e.Src, e.Dst, e.Op)
}

// sortEvents puts events in their canonical order: by pair, then stream
// position — the order determinism is defined over.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Kind < b.Kind
	})
}
