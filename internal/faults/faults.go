package faults

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/obsv"
)

// Injector evaluates a Plan deterministically. It serves two hook points:
//
//   - Frame level: it implements mpi.FaultInjector, so it can be handed to
//     the tcp transport (tcp.WithFaults) which consults it once per first
//     transmission of a data frame. Delay/Drop/Dup rules act here.
//   - Comm level: Wrap decorates any mpi.Comm; Stall and Kill rules act on
//     the rank's operation stream, and Delay/Drop rules act on messages for
//     transports without a frame layer (mem). Dup is frame-only — above the
//     matching layer a duplicate would be a real second message.
//
// Decisions are pure functions of (plan, seed, pair or rank, stream index):
// the k-th message of a directed pair gets the same fault in every run, no
// matter how goroutines interleave. After/Count/Prob windows are counted
// per matching pair stream (and per rank stream for Stall/Kill), which is
// what makes wildcard rules deterministic.
type Injector struct {
	plan *Plan

	mu        sync.Mutex
	pairNext  map[[2]int]int // next message index per directed pair
	rankNext  map[int]int    // next operation index per rank
	killed    map[int]bool
	events    []Event
	opTimeout time.Duration
	recorder  *obsv.Recorder
}

// New builds an injector for the plan. A nil plan injects nothing.
func New(plan *Plan) *Injector {
	if plan == nil {
		plan = &Plan{}
	}
	return &Injector{
		plan:     plan,
		pairNext: make(map[[2]int]int),
		rankNext: make(map[int]int),
		killed:   make(map[int]bool),
	}
}

// SetRecorder mirrors every injected fault into r's counters as
// aapc_faults_injected_total{kind="..."}, so injected chaos is visible on
// the same metrics endpoint as the communication it disturbs.
func (inj *Injector) SetRecorder(r *obsv.Recorder) {
	inj.mu.Lock()
	inj.recorder = r
	inj.mu.Unlock()
}

// countInjected bumps the recorder counter for one fired rule. Caller holds
// inj.mu.
func (inj *Injector) countInjected(kind Kind) {
	if inj.recorder != nil {
		inj.recorder.Counters().Inc(fmt.Sprintf("aapc_faults_injected_total{kind=%q}", kind))
	}
}

// SetOpTimeout bounds every Wait issued through wrapped comms. Required for
// comm-level Drop rules on transports without their own deadline support:
// a dropped message otherwise blocks its receiver forever.
func (inj *Injector) SetOpTimeout(d time.Duration) { inj.opTimeout = d }

// Killed reports whether a Kill rule has fired for the rank.
func (inj *Injector) Killed(rank int) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.killed[rank]
}

// Events returns every injected fault so far in canonical order (pair,
// then stream index) — the order determinism is asserted over.
func (inj *Injector) Events() []Event {
	inj.mu.Lock()
	evs := make([]Event, len(inj.events))
	copy(evs, inj.events)
	inj.mu.Unlock()
	sortEvents(evs)
	return evs
}

// hash01 maps the decision coordinates to a uniform [0,1) value using a
// splitmix64-style mix; this is the only source of randomness, so decisions
// depend on nothing but the plan, the seed and the coordinates.
func hash01(seed int64, vals ...int) float64 {
	h := uint64(seed) ^ 0x6a09e667f3bcc909
	for _, v := range vals {
		h ^= uint64(int64(v))
		h += 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return float64(h>>11) / (1 << 53)
}

// decidePair picks the rule (if any) that fires for the k-th message of the
// directed pair. First matching rule in plan order wins.
func (inj *Injector) decidePair(src, dst, k int) *Rule {
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if !r.pairRule() || !r.matchesPair(src, dst) {
			continue
		}
		if k < r.After || (r.Count > 0 && k >= r.After+r.Count) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && hash01(inj.plan.Seed, i, src, dst, k) >= r.Prob {
			continue
		}
		return r
	}
	return nil
}

// decideRank picks the Stall/Kill rule (if any) firing for the k-th
// operation of the rank.
func (inj *Injector) decideRank(rank, k int) *Rule {
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if !r.rankRule() || (r.Src != Any && r.Src != rank) {
			continue
		}
		if r.Kind == Kill {
			// A kill fires at its After-th operation and stays fired.
			if k >= r.After {
				return r
			}
			continue
		}
		if k < r.After || (r.Count > 0 && k >= r.After+r.Count) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && hash01(inj.plan.Seed, i, rank, Any, k) >= r.Prob {
			continue
		}
		return r
	}
	return nil
}

// FrameFault implements mpi.FaultInjector for the tcp transport: the next
// first-transmission frame src->dst gets the pair rule's action.
func (inj *Injector) FrameFault(src, dst int) (mpi.FaultOp, time.Duration) {
	inj.mu.Lock()
	k := inj.pairNext[[2]int{src, dst}]
	inj.pairNext[[2]int{src, dst}] = k + 1
	r := inj.decidePair(src, dst, k)
	if r == nil {
		inj.mu.Unlock()
		return mpi.FaultNone, 0
	}
	inj.events = append(inj.events, Event{Kind: r.Kind, Src: src, Dst: dst, Op: k, Delay: r.Delay})
	inj.countInjected(r.Kind)
	inj.mu.Unlock()
	switch r.Kind {
	case Delay:
		return mpi.FaultDelay, r.Delay
	case Drop:
		return mpi.FaultDropConn, 0
	case Dup:
		return mpi.FaultDuplicate, 0
	}
	return mpi.FaultNone, 0
}

// nextPairFault advances the pair stream for a comm-level message.
func (inj *Injector) nextPairFault(src, dst int) *Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	k := inj.pairNext[[2]int{src, dst}]
	inj.pairNext[[2]int{src, dst}] = k + 1
	r := inj.decidePair(src, dst, k)
	if r != nil {
		inj.events = append(inj.events, Event{Kind: r.Kind, Src: src, Dst: dst, Op: k, Delay: r.Delay})
		inj.countInjected(r.Kind)
	}
	return r
}

// nextRankFault advances the rank's operation stream; it records the event
// and marks kills. The returned rule is nil when nothing fires.
func (inj *Injector) nextRankFault(rank int) *Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.killed[rank] {
		return &inj.plan.Rules[inj.killRule(rank)]
	}
	k := inj.rankNext[rank]
	inj.rankNext[rank] = k + 1
	r := inj.decideRank(rank, k)
	if r != nil {
		inj.events = append(inj.events, Event{Kind: r.Kind, Src: rank, Dst: Any, Op: k, Delay: r.Delay})
		inj.countInjected(r.Kind)
		if r.Kind == Kill {
			inj.killed[rank] = true
		}
	}
	return r
}

// killRule finds the Kill rule for a rank already marked dead. Caller holds
// inj.mu and guarantees one exists.
func (inj *Injector) killRule(rank int) int {
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if r.Kind == Kill && (r.Src == rank || r.Src == Any) {
			return i
		}
	}
	panic(fmt.Sprintf("faults: rank %d marked killed without a kill rule", rank))
}

// Wrap decorates a communicator with the full comm-level fault set: Stall
// and Kill on the rank's operation stream, Delay and Drop on its outbound
// messages. Use it for transports without a frame layer (mem). For tcp,
// prefer WithFaults(inj) for the message faults plus WrapRankOnly for
// Stall/Kill, so Drop exercises the real reconnect path.
func (inj *Injector) Wrap(c mpi.Comm) mpi.Comm {
	return &faultComm{inner: c, inj: inj, msgFaults: true}
}

// WrapRankOnly decorates a communicator with Stall/Kill rules only,
// leaving message faults to the transport's frame layer.
func (inj *Injector) WrapRankOnly(c mpi.Comm) mpi.Comm {
	return &faultComm{inner: c, inj: inj}
}

// faultComm is the comm-level decorator.
type faultComm struct {
	inner     mpi.Comm
	inj       *Injector
	msgFaults bool
}

func (c *faultComm) Rank() int    { return c.inner.Rank() }
func (c *faultComm) Size() int    { return c.inner.Size() }
func (c *faultComm) Now() float64 { return c.inner.Now() }

// Kill passes through to the underlying transport (mpi.Killer).
func (c *faultComm) Kill() error {
	if k, ok := c.inner.(mpi.Killer); ok {
		return k.Kill()
	}
	return fmt.Errorf("faults: transport cannot kill ranks")
}

// rankOp applies the rank-stream rules before an operation: a Stall sleeps
// in the caller's goroutine; a Kill tears the rank down through the
// transport and returns the sticky typed error.
func (c *faultComm) rankOp() error {
	r := c.inj.nextRankFault(c.inner.Rank())
	if r == nil {
		return nil
	}
	switch r.Kind {
	case Stall:
		time.Sleep(r.Delay)
		return nil
	case Kill:
		rank := c.inner.Rank()
		if k, ok := c.inner.(mpi.Killer); ok {
			_ = k.Kill()
		}
		return &mpi.RankError{Rank: rank, Err: fmt.Errorf("faults: injected kill")}
	}
	return nil
}

// errRequest is an already-failed request.
type errRequest struct{ err error }

func (r errRequest) Wait() error                     { return r.err }
func (r errRequest) WaitTimeout(time.Duration) error { return r.err }

// timedReq bounds the inner request's Wait by the injector's op timeout.
type timedReq struct {
	inner mpi.Request
	d     time.Duration
}

func (r timedReq) Wait() error { return mpi.WaitTimeout(r.inner, r.d) }
func (r timedReq) WaitTimeout(d time.Duration) error {
	if r.d > 0 && (d <= 0 || r.d < d) {
		d = r.d
	}
	return mpi.WaitTimeout(r.inner, d)
}

// WaitTraced passes the trace information through (mpi.TracedRequest) while
// keeping the injector's op timeout in force.
func (r timedReq) WaitTraced() (mpi.TraceInfo, error) {
	return mpi.WaitTracedTimeout(r.inner, r.d)
}

// WaitTracedTimeout bounds WaitTraced by the tighter of the caller's and
// the injector's deadlines (mpi.TracedTimedRequest).
func (r timedReq) WaitTracedTimeout(d time.Duration) (mpi.TraceInfo, error) {
	if r.d > 0 && (d <= 0 || r.d < d) {
		d = r.d
	}
	return mpi.WaitTracedTimeout(r.inner, d)
}

func (c *faultComm) Isend(buf []byte, dst, tag int) mpi.Request {
	return c.isend(buf, dst, tag, 0)
}

// IsendTraced applies the same fault rules as Isend and forwards the trace
// context to the transport (mpi.TracedSender). Without this passthrough,
// wrapping a traced transport in the injector would silently unlink every
// message — exactly the runs where attribution matters most.
func (c *faultComm) IsendTraced(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	return c.isend(buf, dst, tag, ctx)
}

func (c *faultComm) isend(buf []byte, dst, tag int, ctx uint64) mpi.Request {
	if err := c.rankOp(); err != nil {
		return errRequest{err}
	}
	if c.msgFaults {
		if r := c.inj.nextPairFault(c.inner.Rank(), dst); r != nil {
			switch r.Kind {
			case Drop:
				// The message vanishes. MPI send semantics: completion means
				// the buffer is reusable, which it trivially is. The receiver
				// learns through its own deadline.
				return errRequest{nil}
			case Delay:
				// Pause before submitting, in the caller's goroutine: an
				// asynchronous late submission would let later sends of the
				// same (src, dst, tag) overtake this one and corrupt MPI's
				// non-overtaking guarantee. The frame-level injector delays
				// the same way (the pair writer sleeps).
				time.Sleep(r.Delay)
			}
			// Dup at comm level would be a real second message above the
			// matching layer; treated as none.
		}
	}
	if ctx != 0 {
		if ts, ok := c.inner.(mpi.TracedSender); ok {
			return timedReq{inner: ts.IsendTraced(buf, dst, tag, ctx), d: c.inj.opTimeout}
		}
	}
	return timedReq{inner: c.inner.Isend(buf, dst, tag), d: c.inj.opTimeout}
}

func (c *faultComm) Irecv(buf []byte, src, tag int) mpi.Request {
	if err := c.rankOp(); err != nil {
		return errRequest{err}
	}
	return timedReq{inner: c.inner.Irecv(buf, src, tag), d: c.inj.opTimeout}
}

func (c *faultComm) Barrier() error {
	if err := c.rankOp(); err != nil {
		return err
	}
	if c.inj.opTimeout <= 0 {
		return c.inner.Barrier()
	}
	// Bound the barrier too: when a peer fails closed and never arrives, a
	// transport without its own barrier deadline (mem) would block this
	// rank forever. The abandoned inner barrier may hold its goroutine
	// until the world is collected — the price of failing closed.
	done := make(chan error, 1)
	go func() { done <- c.inner.Barrier() }()
	t := time.NewTimer(c.inj.opTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return &mpi.TimeoutError{Op: "barrier", After: c.inj.opTimeout}
	}
}
