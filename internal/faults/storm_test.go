package faults

import (
	"math/rand"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

func stormTestCluster(t *testing.T) *topology.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	return topology.RandomCluster(topology.RandomOptions{Switches: 3, Machines: 8, Rand: rng})
}

// TestTopoStormDeterministic: two storms with the same seed emit the same
// delta sequence against the same evolving cluster.
func TestTopoStormDeterministic(t *testing.T) {
	run := func() []string {
		g := stormTestCluster(t)
		ts := NewTopoStorm(42)
		var out []string
		for i := 0; i < 40; i++ {
			d := ts.Next(g)
			out = append(out, d.Format())
			if ng, _, err := g.ApplyDelta(d); err == nil {
				g = ng
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestTopoStormMostlyFeasible: the storm reads the live cluster, so the
// bulk of its deltas must apply; every applied delta must leave a valid
// cluster with at least two machines.
func TestTopoStormMostlyFeasible(t *testing.T) {
	g := stormTestCluster(t)
	ts := NewTopoStorm(1337)
	applied, rejected := 0, 0
	for i := 0; i < 200; i++ {
		d := ts.Next(g)
		ng, rd, err := g.ApplyDelta(d)
		if err != nil {
			rejected++
			continue
		}
		applied++
		if ng.NumMachines() < 2 {
			// A leave at NumMachines==2 is the one storm pick that can
			// legally drop below the schedulable floor.
			if d.Op != topology.OpLeave && d.Op != topology.OpSwitchFail {
				t.Fatalf("step %d: %s left %d machines", i, d.Format(), ng.NumMachines())
			}
		}
		if rd.NumNew != ng.NumMachines() {
			t.Fatalf("step %d: rank delta says %d machines, graph has %d",
				i, rd.NumNew, ng.NumMachines())
		}
		g = ng
	}
	if applied < 150 {
		t.Errorf("storm too infeasible: %d applied, %d rejected", applied, rejected)
	}
	if rejected == 0 {
		t.Log("storm never hit an infeasible delta (fine, but the daemon's rejection path is then untested here)")
	}
}

// TestTopoStormSeedsDiffer: different seeds give different storms.
func TestTopoStormSeedsDiffer(t *testing.T) {
	g := stormTestCluster(t)
	a, b := NewTopoStorm(1), NewTopoStorm(2)
	same := 0
	for i := 0; i < 30; i++ {
		if a.Next(g).Format() == b.Next(g).Format() {
			same++
		}
	}
	if same == 30 {
		t.Error("seeds 1 and 2 produced identical storms")
	}
}
