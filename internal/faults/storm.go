package faults

import (
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// TopoStorm generates a deterministic, seeded stream of feasible topology
// deltas — the churn input for chaos-testing the schedule daemon. The same
// idiom as the message-fault injector applies: every decision is a pure
// function of (seed, step), so a storm replays identically no matter how
// the consumer interleaves it with other work.
//
// The storm is stateful only in the names it has minted (joined machines
// and switches are named storm-m<k>/storm-s<k>), not in the topology: Next
// takes the cluster as it currently stands and picks a delta that is
// feasible against it, so storms compose with updates from other sources.
type TopoStorm struct {
	seed int64
	step int
	// minted counts the names issued, so rejoining after a leave never
	// collides.
	minted int
}

// NewTopoStorm builds a storm for the seed.
func NewTopoStorm(seed int64) *TopoStorm {
	return &TopoStorm{seed: seed}
}

// Step returns how many deltas the storm has issued.
func (ts *TopoStorm) Step() int { return ts.step }

// Next picks the storm's next delta against the current cluster. The mix is
// join-heavy (half joins, a third leaves, the rest switch churn), keeping
// the cluster near its original size over long storms. The graph is only
// read.
func (ts *TopoStorm) Next(g *topology.Graph) topology.Delta {
	step := ts.step
	ts.step++
	r := hash01(ts.seed, step, 0)
	pick := hash01(ts.seed, step, 1)

	machines, switches := stormNodes(g)
	switch {
	case r < 0.50 || g.NumMachines() <= 2:
		// Join a machine at a random switch, occasionally on a slow link
		// (heterogeneous clusters are first-class in the scheduler).
		d := topology.Delta{
			Op:     topology.OpJoin,
			Node:   ts.mint("m"),
			Attach: switches[int(pick*float64(len(switches)))],
		}
		if hash01(ts.seed, step, 2) < 0.2 {
			d.Speed = 0.5
		}
		return d
	case r < 0.83:
		return topology.Delta{
			Op:   topology.OpLeave,
			Node: machines[int(pick*float64(len(machines)))],
		}
	case r < 0.92 && len(switches) > 1:
		return topology.Delta{
			Op:   topology.OpSwitchFail,
			Node: switches[int(pick*float64(len(switches)))],
		}
	default:
		return topology.Delta{
			Op:     topology.OpSwitchJoin,
			Node:   ts.mint("s"),
			Attach: switches[int(pick*float64(len(switches)))],
		}
	}
}

// mint issues a fresh storm-owned node name.
func (ts *TopoStorm) mint(kind string) string {
	ts.minted++
	return fmt.Sprintf("storm-%s%d", kind, ts.minted)
}

// stormNodes lists the cluster's machine and switch names in ID order (the
// deterministic enumeration the picks index into).
func stormNodes(g *topology.Graph) (machines, switches []string) {
	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		if n.Kind == topology.Switch {
			switches = append(switches, n.Name)
		} else {
			machines = append(machines, n.Name)
		}
	}
	return machines, switches
}
