package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/mpi"
	"github.com/aapc-sched/aapcsched/internal/mpi/mem"
)

func TestParsePlan(t *testing.T) {
	plan, err := ParsePlanString(`
# full-surface plan
seed 42
delay 0 1 5ms count 3
drop  * 2 prob 0.5
dup   1 0 after 2 count 1
stall 3 10ms after 5
kill  4 after 12
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{Seed: 42, Rules: []Rule{
		{Kind: Delay, Src: 0, Dst: 1, Delay: 5 * time.Millisecond, Count: 3},
		{Kind: Drop, Src: Any, Dst: 2, Prob: 0.5},
		{Kind: Dup, Src: 1, Dst: 0, After: 2, Count: 1},
		{Kind: Stall, Src: 3, Dst: Any, Delay: 10 * time.Millisecond, After: 5},
		{Kind: Kill, Src: 4, Dst: Any, After: 12},
	}}
	if !reflect.DeepEqual(plan, want) {
		t.Fatalf("parsed %+v\nwant %+v", plan, want)
	}
}

func TestPlanFormatRoundTrip(t *testing.T) {
	p := &Plan{Seed: -9, Rules: []Rule{
		{Kind: Delay, Src: Any, Dst: 3, Delay: time.Second, After: 1, Count: 2, Prob: 0.25},
		{Kind: Drop, Src: 2, Dst: Any},
		{Kind: Dup, Src: 0, Dst: 1, Count: 4},
		{Kind: Stall, Src: 5, Dst: Any, Delay: 3 * time.Millisecond},
		{Kind: Kill, Src: 1, Dst: Any, After: 7},
	}}
	text := p.Format()
	p2, err := ParsePlanString(text)
	if err != nil {
		t.Fatalf("formatted plan does not reparse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed the plan:\n%+v\nvs\n%+v\ntext:\n%s", p, p2, text)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"seed",
		"seed x",
		"warp 0 1",
		"delay 0 1",         // missing duration
		"delay 0 1 -5ms",    // negative duration
		"drop x 1",          // bad rank
		"drop -2 1",         // negative rank
		"kill *",            // wildcard kill
		"kill",              // missing rank
		"stall 1",           // missing duration
		"drop 0 1 count 0",  // count must be >= 1
		"drop 0 1 prob 1.5", // prob out of range
		"drop 0 1 prob",     // dangling modifier
		"drop 0 1 umm 3",    // unknown modifier
		"delay 0 1 5ms after -1",
	} {
		if _, err := ParsePlanString(bad); err == nil {
			t.Errorf("ParsePlanString(%q): want error", bad)
		}
	}
}

// TestDeterministicEvents is the acceptance check for reproducibility: the
// same seed and plan produce the identical injected event sequence no
// matter how the consulting goroutines interleave.
func TestDeterministicEvents(t *testing.T) {
	plan, err := ParsePlanString(`
seed 1234
delay * * 1us prob 0.3
drop 0 1 after 2 count 2
dup 2 0 prob 0.5
`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel bool) []Event {
		inj := New(plan)
		const n, msgs = 4, 25
		if parallel {
			done := make(chan struct{})
			for s := 0; s < n; s++ {
				go func(s int) {
					defer func() { done <- struct{}{} }()
					for d := 0; d < n; d++ {
						for k := 0; k < msgs; k++ {
							inj.FrameFault(s, d)
						}
					}
				}(s)
			}
			for s := 0; s < n; s++ {
				<-done
			}
		} else {
			// A very different interleaving: message index outermost.
			for k := 0; k < msgs; k++ {
				for d := n - 1; d >= 0; d-- {
					for s := 0; s < n; s++ {
						inj.FrameFault(s, d)
					}
				}
			}
		}
		return inj.Events()
	}
	want := run(false)
	if len(want) == 0 {
		t.Fatal("plan injected nothing; test is vacuous")
	}
	for i := 0; i < 5; i++ {
		got := run(true)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: event sequence diverged\ngot  %v\nwant %v", i, got, want)
		}
	}
	// A different seed must (for this plan) give a different sequence —
	// otherwise the seed is not wired through.
	other := *plan
	other.Seed = 77
	inj := New(&other)
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			for k := 0; k < 25; k++ {
				inj.FrameFault(s, d)
			}
		}
	}
	if reflect.DeepEqual(inj.Events(), want) {
		t.Fatal("changing the seed did not change the injected sequence")
	}
}

func TestDecideWindows(t *testing.T) {
	plan := &Plan{Rules: []Rule{
		{Kind: Drop, Src: 0, Dst: 1, After: 2, Count: 3},
	}}
	inj := New(plan)
	var fired []int
	for k := 0; k < 10; k++ {
		if op, _ := inj.FrameFault(0, 1); op == mpi.FaultDropConn {
			fired = append(fired, k)
		}
	}
	if !reflect.DeepEqual(fired, []int{2, 3, 4}) {
		t.Fatalf("window fired at %v, want [2 3 4]", fired)
	}
	if op, _ := inj.FrameFault(1, 0); op != mpi.FaultNone {
		t.Fatal("rule fired for a non-matching pair")
	}
}

func TestWrapStallAndDelayPreserveData(t *testing.T) {
	plan, err := ParsePlanString("seed 3\nstall 0 1ms count 2\ndelay 0 1 1ms count 2\n")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(plan)
	inj.SetOpTimeout(5 * time.Second)
	comms := mem.NewWorld(2)
	errs := make(chan error, 2)
	go func() {
		c := inj.Wrap(comms[0])
		for k := 0; k < 4; k++ {
			buf := []byte{byte(10 + k)}
			if err := mpi.Send(c, buf, 1, k); err != nil {
				errs <- err
				return
			}
			buf[0] = 0 // sender may reuse its buffer after Send returns
		}
		errs <- nil
	}()
	go func() {
		c := inj.Wrap(comms[1])
		for k := 0; k < 4; k++ {
			var buf [1]byte
			if err := mpi.Recv(c, buf[:], 0, k); err != nil {
				errs <- err
				return
			}
			if buf[0] != byte(10+k) {
				errs <- errors.New("wrong byte received")
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWrapDropTimesOutReceiver(t *testing.T) {
	plan := &Plan{Rules: []Rule{{Kind: Drop, Src: 0, Dst: 1, Count: 1}}}
	inj := New(plan)
	inj.SetOpTimeout(50 * time.Millisecond)
	comms := mem.NewWorld(2)
	send := inj.Wrap(comms[0]).Isend([]byte{1}, 1, 0)
	if err := send.Wait(); err != nil {
		t.Fatalf("dropped send must still complete locally: %v", err)
	}
	err := mpi.Recv(inj.Wrap(comms[1]), make([]byte, 1), 0, 0)
	if !mpi.IsTimeout(err) {
		t.Fatalf("receiver of a dropped message: got %v, want timeout", err)
	}
}

func TestWrapKill(t *testing.T) {
	plan := &Plan{Rules: []Rule{{Kind: Kill, Src: 1, Dst: Any, After: 1}}}
	inj := New(plan)
	comms, _ := mem.NewWorldComms(2)
	c1 := inj.Wrap(comms[1])

	// Op 0 is clean; op 1 fires the kill.
	_ = c1.Irecv(make([]byte, 1), 0, 9) //aapc:allow waitcheck the receive only consumes a fault-plan slot; it never completes
	err := c1.Isend([]byte{1}, 0, 5).Wait()
	if re, ok := mpi.AsRankError(err); !ok || re.Rank != 1 {
		t.Fatalf("op past the kill point: got %v, want RankError{Rank: 1}", err)
	}
	if !inj.Killed(1) {
		t.Fatal("injector did not record the kill")
	}
	// The kill went through the transport: rank 0's operations involving
	// rank 1 now fail with the typed error.
	err = comms[0].Isend([]byte{1}, 1, 7).Wait()
	re, ok := mpi.AsRankError(err)
	if !ok || re.Rank != 1 {
		t.Fatalf("peer op after kill: got %v, want RankError{Rank: 1}", err)
	}
	// And the dead rank's error is sticky.
	err = c1.Barrier()
	if re, ok := mpi.AsRankError(err); !ok || re.Rank != 1 {
		t.Fatalf("dead rank barrier: got %v, want RankError{Rank: 1}", err)
	}
}

func FuzzParsePlan(f *testing.F) {
	f.Add("seed 42\ndelay 0 1 5ms count 3\n")
	f.Add("drop * * prob 0.1\nkill 3 after 2\n")
	f.Add("stall 0 1s\n# comment\n")
	f.Add("seed -1\ndup 1 0 after 2 count 1 prob 0.999\n")
	f.Add("delay 0 1 5ms after 1 count 2 prob 0.5 extra")
	f.Add("\x00\xff")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParsePlanString(src)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil plan alongside an error")
			}
			return
		}
		// Accepted plans round-trip through Format.
		text := p.Format()
		p2, err := ParsePlanString(text)
		if err != nil {
			t.Fatalf("formatted plan does not reparse: %v\n%q", err, text)
		}
		if p2.Format() != text {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", text, p2.Format())
		}
		// And driving an injector with arbitrary accepted plans never
		// panics.
		inj := New(p)
		for s := 0; s < 3; s++ {
			for d := 0; d < 3; d++ {
				inj.FrameFault(s, d)
			}
		}
		_ = inj.Events()
	})
}

func TestEventString(t *testing.T) {
	e := Event{Kind: Delay, Src: 1, Dst: 2, Op: 3, Delay: time.Millisecond}
	if !strings.Contains(e.String(), "1->2") {
		t.Fatalf("event string %q", e.String())
	}
	e = Event{Kind: Kill, Src: 4, Dst: Any, Op: 0}
	if !strings.Contains(e.String(), "rank 4") {
		t.Fatalf("event string %q", e.String())
	}
}
