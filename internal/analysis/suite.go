package analysis

// Suite returns every analyzer enforced by aapcvet, in report order: the
// five project invariants first, then the stock-style safety passes.
func Suite() []*Analyzer {
	return []*Analyzer{
		Poolsafe,
		Determinism,
		Waitcheck,
		Noalloc,
		Copycount,
		Shadow,
		Copylocks,
		Loopclosure,
	}
}
