package analysis

// Suite returns every analyzer enforced by aapcvet, in report order: the
// project invariants first (the fact-driven passes among them are marked
// NeedsFacts and share one interprocedural summary computation per
// package), then the stock-style safety passes.
func Suite() []*Analyzer {
	return []*Analyzer{
		Poolsafe,
		Determinism,
		Waitcheck,
		Noalloc,
		Copycount,
		Lockorder,
		Spscsafe,
		Shadow,
		Copylocks,
		Loopclosure,
	}
}
