// Package analysistest runs a single analyzer over a corpus package under
// testdata/src and checks its diagnostics against expectations written in
// the corpus sources, mirroring the x/tools harness of the same name:
//
//	rand.Intn(4) // want `global rand\.Intn is shared`
//
// Each `want` comment holds one or more quoted regular expressions; every
// diagnostic reported on that line must match one of them, every
// expectation must be matched by some diagnostic, and diagnostics on lines
// with no expectation fail the test. Because expectations are checked
// after the allow filter, a corpus line carrying //aapc:allow exercises the
// suppression machinery by expecting nothing.
//
// Corpus packages are typechecked from source against the installed GOROOT
// (go/importer's source mode), so they may import the standard library but
// nothing else.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/analysis"
)

// Run analyzes testdata/src/<pkg> with the module's language version.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	RunWithVersion(t, testdata, a, pkg, "go1.22")
}

// RunWithVersion analyzes the corpus under an explicit language version,
// for version-gated analyzers like loopclosure.
func RunWithVersion(t *testing.T, testdata string, a *analysis.Analyzer, pkg, goVersion string) {
	t.Helper()
	pi := LoadCorpus(t, testdata, pkg, goVersion)
	diags, err := analysis.Run(pi, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pi.Fset, pi.Files)
	for _, d := range diags {
		pos := pi.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", filepath.Base(pos.Filename), pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

// LoadCorpus parses and typechecks testdata/src/<pkg> into a PackageInfo,
// for tests that drive analysis.RunWith directly (legacy-mode comparisons,
// unused-allow audits).
func LoadCorpus(t *testing.T, testdata, pkg, goVersion string) *analysis.PackageInfo {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing corpus: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("corpus %s is empty", dir)
	}

	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "source", nil),
		GoVersion: goVersion,
	}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking corpus %s: %v", pkg, err)
	}
	return &analysis.PackageInfo{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		Info:      info,
		PkgPath:   pkg,
		GoVersion: goVersion,
	}
}

// Diagnostics runs one analyzer over the corpus and returns the surviving
// (unsuppressed) diagnostics, with the fact engine optionally disabled —
// the raw material for proving what the legacy block-scoped passes miss.
func Diagnostics(t *testing.T, testdata string, a *analysis.Analyzer, pkg string, noFacts bool) []analysis.Diagnostic {
	t.Helper()
	pi := LoadCorpus(t, testdata, pkg, "go1.22")
	res, err := analysis.RunWith(pi, []*analysis.Analyzer{a}, analysis.RunConfig{NoFacts: noFacts})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var out []analysis.Diagnostic
	for _, d := range res.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// expectation is one quoted regexp of a want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantPattern pulls quoted strings ("..." with escapes, or `...`) out of the
// tail of a want comment.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantPattern.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat := strings.Trim(q, "`")
					if strings.HasPrefix(q, "\"") {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unmatched expectation on the diagnostic's
// line whose regexp matches the message.
func matchWant(wants []*expectation, pos token.Position, message string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
