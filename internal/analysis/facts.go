package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file defines the interprocedural fact model: per-function summaries
// computed bottom-up over the call graph (interproc.go) and carried across
// package boundaries through the unit checker's vetx files (unitchecker.go),
// the same channel go/analysis uses for its facts.
//
// A fact describes how a function treats its parameters and what it does to
// the process's lock state, in exactly the vocabulary the analyzers consume:
//
//   - poolsafe asks "does this callee release its argument back to a pool?"
//     and "does its result alias one of its arguments?";
//   - copycount asks "does this callee copy its argument's payload bytes on
//     its own hot path?";
//   - waitcheck asks "does this callee consume (wait, retain, or escape) the
//     request I hand it?";
//   - lockorder asks "which locks may this callee acquire while I am holding
//     mine?" and collects every held->acquired edge into one global graph.
//
// Facts are an over- or under-approximation in exactly the direction each
// consumer needs to avoid false positives: Releases and Copies are "on some
// path / on the hot path" (used to *add* findings, so they are computed from
// direct evidence only), while Consumed and Escapes are generous "on any
// plausible path" (used to *suppress* findings).

// ReceiverIndex is the parameter index of a method receiver in a ParamFact.
const ReceiverIndex = -1

// ParamFact describes what a function does with one of its parameters.
// Index is the 0-based parameter position; ReceiverIndex (-1) is the method
// receiver.
type ParamFact struct {
	Index int `json:"i"`
	// Releases: the parameter is handed back to a pool (pool.put(p),
	// p.Release(), or a callee that releases it) on some path.
	Releases bool `json:"rel,omitempty"`
	// Escapes: the parameter is stored into retained state — a field, index,
	// global, channel, composite literal, another escaping callee — or its
	// address is taken or it is captured by a function literal.
	Escapes bool `json:"esc,omitempty"`
	// Copied: the parameter's payload bytes are copied (copy, append-spread,
	// string conversion, Datatype.Pack/Unpack staging, or a copying callee)
	// on the function's hot path.
	Copied bool `json:"cp,omitempty"`
	// Consumed: the parameter is consumed in the waitcheck sense — a method
	// is called on it, it is returned, stored, ranged over, sent, assigned
	// onward, or passed to a callee that consumes it. A request passed to a
	// function whose fact lacks Consumed (and Escapes and Releases) never
	// reaches a Wait.
	Consumed bool `json:"cons,omitempty"`
}

// LockAcq is one lock class a function may acquire while it runs, directly
// or through any callee with known facts. Mode is "w" for Lock, "r" for
// RLock.
type LockAcq struct {
	Class string `json:"c"`
	Mode  string `json:"m"`
}

// LockEdge is one held->acquired ordering observation: while holding From,
// the function (or a callee reached with From held) acquires To. Pos is the
// rendered position of the inner acquisition, HeldPos of the outer one;
// positions are strings because token.Pos does not survive the package
// boundary.
type LockEdge struct {
	From     string `json:"f"`
	FromMode string `json:"fm"`
	To       string `json:"t"`
	ToMode   string `json:"tm"`
	Fn       string `json:"fn"`
	Pos      string `json:"p"`
	HeldPos  string `json:"hp"`
}

// edgeKey identifies an edge up to its example positions.
func (e LockEdge) edgeKey() string {
	return e.From + "\x00" + e.FromMode + "\x00" + e.To + "\x00" + e.ToMode
}

// FuncFact is the summary of one function.
type FuncFact struct {
	// Params holds one entry per parameter with at least one bit set.
	Params []ParamFact `json:"params,omitempty"`
	// ReturnsParams lists parameter indices that some result value may
	// alias (return p, return p[4:], return &p[0]...): the caller's handle
	// to pooled memory survives through the call.
	ReturnsParams []int `json:"ret,omitempty"`
	// Acquires lists every lock class the function may acquire while it
	// runs, including transitively through callees with known facts.
	Acquires []LockAcq `json:"acq,omitempty"`
	// Edges are the held->acquired observations made inside the function.
	Edges []LockEdge `json:"edges,omitempty"`
}

// Param returns the fact for parameter index i (ReceiverIndex for the
// receiver), or nil.
func (f *FuncFact) Param(i int) *ParamFact {
	if f == nil {
		return nil
	}
	for k := range f.Params {
		if f.Params[k].Index == i {
			return &f.Params[k]
		}
	}
	return nil
}

// returnsParam reports whether some result may alias parameter i.
func (f *FuncFact) returnsParam(i int) bool {
	if f == nil {
		return false
	}
	for _, r := range f.ReturnsParams {
		if r == i {
			return true
		}
	}
	return false
}

// normalize sorts every list so serialized facts are byte-stable.
func (f *FuncFact) normalize() {
	sort.Slice(f.Params, func(i, j int) bool { return f.Params[i].Index < f.Params[j].Index })
	sort.Ints(f.ReturnsParams)
	sort.Slice(f.Acquires, func(i, j int) bool {
		if f.Acquires[i].Class != f.Acquires[j].Class {
			return f.Acquires[i].Class < f.Acquires[j].Class
		}
		return f.Acquires[i].Mode < f.Acquires[j].Mode
	})
	sort.Slice(f.Edges, func(i, j int) bool { return f.Edges[i].edgeKey() < f.Edges[j].edgeKey() })
}

// equal reports whether two normalized facts carry the same information
// (edge example positions excluded: they never feed back into the fixed
// point).
func (f *FuncFact) equal(g *FuncFact) bool {
	if len(f.Params) != len(g.Params) || len(f.ReturnsParams) != len(g.ReturnsParams) ||
		len(f.Acquires) != len(g.Acquires) || len(f.Edges) != len(g.Edges) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != g.Params[i] {
			return false
		}
	}
	for i := range f.ReturnsParams {
		if f.ReturnsParams[i] != g.ReturnsParams[i] {
			return false
		}
	}
	for i := range f.Acquires {
		if f.Acquires[i] != g.Acquires[i] {
			return false
		}
	}
	for i := range f.Edges {
		if f.Edges[i].edgeKey() != g.Edges[i].edgeKey() {
			return false
		}
	}
	return true
}

// FactSet is the fact universe one pass sees: everything imported from
// dependency packages plus everything computed for the current package.
type FactSet struct {
	funcs map[string]*FuncFact
	// localEdges carries token positions for edges observed in the current
	// package, so lockorder can anchor its diagnostics (and the suppression
	// filter can find the line). Keyed by LockEdge.edgeKey.
	localEdges map[string]token.Pos
}

// NewFactSet returns an empty fact universe.
func NewFactSet() *FactSet {
	return &FactSet{funcs: make(map[string]*FuncFact), localEdges: make(map[string]token.Pos)}
}

// Func returns the fact recorded for the qualified function key, or nil.
func (fs *FactSet) Func(key string) *FuncFact {
	if fs == nil {
		return nil
	}
	return fs.funcs[key]
}

// Merge copies every fact of other into fs (imported facts never collide
// with local ones: keys carry the package path).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for k, v := range other.funcs {
		fs.funcs[k] = v
	}
}

// FuncKey builds the qualified fact key of a function object:
// pkgpath.Name for package functions, pkgpath.Type.Name for methods.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString(fn.Pkg().Path())
	b.WriteByte('.')
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := namedTypeName(sig.Recv().Type()); name != "" {
			b.WriteString(name)
			b.WriteByte('.')
		}
	}
	b.WriteString(fn.Name())
	return b.String()
}

// namedTypeName returns the bare name of a (possibly pointer-to) named
// type, or "".
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// CalleeFunc resolves the function object a call statically dispatches to,
// or nil (builtins, conversions, function values, interface methods of
// unknown dynamic type resolve to the interface method — still useful as a
// key miss).
func CalleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.ObjectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.ObjectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// CallArgs maps fact parameter indices to the argument expressions of a
// call: the method receiver (if the call is a selector method call) under
// ReceiverIndex, positional arguments under 0..n-1. Arguments feeding a
// variadic slot are omitted — facts cannot name them individually.
func CallArgs(pass *Pass, call *ast.CallExpr, fn *types.Func) map[int]ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	args := make(map[int]ast.Expr, len(call.Args)+1)
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args[ReceiverIndex] = sel.X
		}
	}
	np := sig.Params().Len()
	for i, a := range call.Args {
		if i >= np || (sig.Variadic() && i >= np-1) {
			break
		}
		args[i] = a
	}
	return args
}

// factsMagic is the first line of a vetx facts file written by aapcvet.
// Files not starting with it (including the pre-facts "no facts" marker)
// are ignored on import, so mixed-version caches degrade gracefully.
const factsMagic = "aapcvet-facts v1\n"

// Encode serializes the fact set (magic line + JSON with sorted keys).
func (fs *FactSet) Encode() ([]byte, error) {
	keys := make([]string, 0, len(fs.funcs))
	for k := range fs.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Build an ordered JSON object by hand so the output is byte-stable
	// (encoding/json sorts map keys too, but being explicit keeps the
	// normalize() requirement visible).
	var b strings.Builder
	b.WriteString(factsMagic)
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		name, _ := json.Marshal(k)
		val, err := json.Marshal(fs.funcs[k])
		if err != nil {
			return nil, err
		}
		b.Write(name)
		b.WriteString(":")
		b.Write(val)
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

// DecodeFacts parses a vetx facts file; ok is false when the payload is not
// an aapcvet facts file.
func DecodeFacts(data []byte) (*FactSet, bool, error) {
	s := string(data)
	if !strings.HasPrefix(s, factsMagic) {
		return nil, false, nil
	}
	var funcs map[string]*FuncFact
	if err := json.Unmarshal([]byte(strings.TrimPrefix(s, factsMagic)), &funcs); err != nil {
		return nil, true, fmt.Errorf("decoding facts: %w", err)
	}
	fs := NewFactSet()
	for k, v := range funcs {
		fs.funcs[k] = v
	}
	return fs, true, nil
}
