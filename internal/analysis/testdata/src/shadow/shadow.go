// Corpus for the shadow analyzer: same-type redeclarations whose outer
// binding is still used after the inner scope.
package shadow

func setup() error      { return nil }
func touch(x int) error { return nil }
func observe(total int) {}

func shadowed(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := total + x // want `declaration of "total" shadows declaration at line \d+`
			observe(total)
		}
	}
	return total
}

func suppressedShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		if x > 0 {
			total := total * x //aapc:allow shadow deliberate local rebind for the observation
			observe(total)
		}
	}
	return total
}

func noShadow(xs []int) int {
	total := 0
	for _, x := range xs {
		sum := x * 2
		total += sum
	}
	return total
}

func outerDeadAfterInner(xs []int) {
	err := setup()
	if err != nil {
		return
	}
	for _, x := range xs {
		err := touch(x) // ok: the outer err is never read after this scope
		_ = err
	}
}

func fetch() (int, error) { return 0, nil }

func guardClauseIdiom(xs []int) error {
	err := setup()
	if err != nil {
		return err
	}
	for _, x := range xs {
		if err := touch(x); err != nil { // ok: guard clause, inner err consumed in the if
			return err
		}
	}
	return err
}

func multiNameIdiom(xs []int) error {
	err := setup()
	for range xs {
		n, err := fetch() // ok: := was required to introduce n
		if err != nil {
			return err
		}
		observe(n)
	}
	return err
}

func differentType() {
	v := 0
	{
		v := "s" // ok: different type, := was the only way to write it
		_ = v
	}
	observe(v)
}
