// Corpus for the determinism analyzer. The package is named simnet so it
// falls inside the analyzer's replay-sensitive scope.
package simnet

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(4) // want `global rand\.Intn is shared, unseeded randomness`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(4) // ok: methods on a seeded *rand.Rand are the sanctioned source
}

func virtualDelay(ticks int64) time.Duration {
	return time.Duration(ticks) * time.Microsecond // ok: arithmetic on durations is fine
}

func mapOrder(m map[int]int) int {
	sum := 0
	for k := range m { // want `map iteration order is nondeterministic`
		sum += k
	}
	return sum
}

func sortedOrder(keys []int, m map[int]int) int {
	sum := 0
	for _, k := range keys { // ok: slice iteration is ordered
		sum += m[k]
	}
	return sum
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine spawn in a replay-sensitive package`
}

func spawnKeyed(ch chan int) {
	//aapc:allow determinism result is keyed by its channel slot
	go func() { ch <- 1 }()
}
