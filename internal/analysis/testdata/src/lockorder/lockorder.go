// Corpus for the lockorder analyzer: cycles in the static lock-acquisition
// graph. Each case uses its own mutexes so the cycles stay independent.
package lockorder

import "sync"

// ---- case 1: cycle across two functions, one edge through a callee fact ----

var muA, muB sync.Mutex

// lockB is summarized as "acquires muB"; path1's edge muA -> muB exists
// only through that fact — no syntactic muB.Lock under the held set.
func lockB() {
	muB.Lock()
	defer muB.Unlock()
}

func path1() {
	muA.Lock()
	lockB() // want `potential deadlock: lock-order cycle`
	muA.Unlock()
}

func path2() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// ---- case 2: RWMutex read acquisition participates in cycles ----

var rw sync.RWMutex
var muC sync.Mutex

func readThenLock() {
	rw.RLock() // read-side acquisition: still an ordering edge
	muC.Lock() // want `while holding lockorder\.rw \(read`
	muC.Unlock()
	rw.RUnlock()
}

func lockThenWrite() {
	muC.Lock()
	rw.Lock()
	rw.Unlock()
	muC.Unlock()
}

// ---- case 3: deliberate cycle, suppressed with an allow comment ----

var muS1, muS2 sync.Mutex

func orderedForward() {
	muS1.Lock()
	muS2.Lock() //aapc:allow lockorder both sites run under a higher-level gate
	muS2.Unlock()
	muS1.Unlock()
}

func orderedBackward() {
	muS2.Lock()
	muS1.Lock()
	muS1.Unlock()
	muS2.Unlock()
}

// ---- case 4: recursive acquisition through a helper ----

var muR sync.Mutex

func relock() {
	muR.Lock()
	muR.Unlock()
}

func rec() {
	muR.Lock()
	relock() // want `recursive acquisition`
	muR.Unlock()
}

// ---- non-findings ----

// Consistent ordering everywhere: no cycle.
var muX, muY sync.Mutex

func xy1() {
	muX.Lock()
	muY.Lock()
	muY.Unlock()
	muX.Unlock()
}

func xy2() {
	muX.Lock()
	defer muX.Unlock()
	muY.Lock()
	defer muY.Unlock()
}

// Branch-local acquisition does not leak into the fallthrough path.
var muP, muQ sync.Mutex

func branchScoped(cond bool) {
	if cond {
		muP.Lock()
		muP.Unlock()
	}
	muQ.Lock()
	muQ.Unlock()
}

func branchScopedReverse(cond bool) {
	muQ.Lock()
	muQ.Unlock()
	if cond {
		muP.Lock()
		muP.Unlock()
	}
}
