// Corpus for the interprocedural poolsafe upgrade: releases hidden behind a
// call boundary and aliases created by returns-param callees. Every finding
// here depends on function facts — the legacy block-scoped pass reports
// nothing on this file, which TestPoolsafeLegacyMiss asserts.
package poolsafeinter

type bufPool struct{ free [][]byte }

func (p *bufPool) get(n int) []byte {
	if len(p.free) == 0 {
		return make([]byte, n)
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b[:n]
}

func (p *bufPool) put(b []byte) { p.free = append(p.free, b) }

// freeBuf wraps the release: its fact marks parameter b as Releases, so a
// call to it is a release of the argument at the call site.
func freeBuf(p *bufPool, b []byte) {
	p.put(b)
}

// freeIndirect releases through one more hop: the fact propagates
// transitively in the bottom-up fixed point.
func freeIndirect(p *bufPool, b []byte) {
	freeBuf(p, b)
}

// header returns a view of its argument: its fact records that the result
// aliases parameter 0.
func header(b []byte) []byte {
	return b[:4]
}

func useAfterHelperRelease(p *bufPool) byte {
	b := p.get(64)
	freeBuf(p, b)
	return b[0] // want `use of b after it was released to the pool at line \d+`
}

func useAfterTransitiveRelease(p *bufPool) int {
	b := p.get(64)
	freeIndirect(p, b)
	return len(b) // want `use of b after it was released to the pool at line \d+`
}

func useAliasAfterRelease(p *bufPool) byte {
	b := p.get(64)
	h := header(b)
	p.put(b)
	return h[0] // want `use of h after it was released to the pool at line \d+`
}

// ---- non-findings ----

// inspect only reads its argument: passing a buffer to it is not a release.
func inspect(b []byte) int { return len(b) }

func useAfterInspect(p *bufPool) int {
	b := p.get(64)
	n := inspect(b)
	return n + len(b)
}

// Reassignment after a helper release ends tracking, same as for a direct
// release.
func reassignedAfterHelperRelease(p *bufPool) byte {
	b := p.get(64)
	freeBuf(p, b)
	b = p.get(32)
	return b[0]
}
