// Corpus proving the loopclosure analyzer is version-gated: under go1.22
// semantics every iteration owns its variable, so nothing is reported.
package loopclosure122

func spawnAll(xs []int, out chan int) {
	for _, x := range xs {
		go func() {
			out <- x // ok under go1.22: per-iteration variable
		}()
	}
}
