// Corpus for the -unusedallow audit: one allow comment that suppresses a
// real finding (used) and one that suppresses nothing (stale).
package unusedallow

type bufPool struct{ free [][]byte }

func (p *bufPool) get(n int) []byte {
	if len(p.free) == 0 {
		return make([]byte, n)
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b[:n]
}

func (p *bufPool) put(b []byte) { p.free = append(p.free, b) }

func suppressedFinding(p *bufPool) int {
	b := p.get(64)
	p.put(b)
	//aapc:allow poolsafe deliberate: len reads the header only, measured safe
	return len(b)
}

func staleComment(p *bufPool) {
	b := p.get(64)
	//aapc:allow poolsafe nothing here ever triggered
	p.put(b)
}
