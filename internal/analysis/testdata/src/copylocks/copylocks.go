// Corpus for the copylocks analyzer: by-value copies of types containing
// sync primitives.
package copylocks

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu sync.Mutex
	n  int
}

type stats struct{ hits atomic.Int64 }

func use(n int) {}

func takes(c counter) int { return c.n }

func (c counter) badReceiver() int { // want `value receiver copies lock`
	return c.n
}

func (c *counter) goodReceiver() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func assignCopy(c *counter) {
	snapshot := *c // want `assignment copies lock value`
	use(snapshot.n)
}

func callCopy(c *counter) int {
	return takes(*c) // want `call passes lock by value`
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want `range copies lock value`
		total += c.n
	}
	return total
}

func returnCopy(s *stats) stats {
	return *s // want `return copies lock value`
}

func rangePointers(cs []*counter) int {
	total := 0
	for _, c := range cs { // ok: pointers don't copy the lock
		total += c.n
	}
	return total
}

func freshValue() counter {
	return counter{} // ok: constructing a new value is not a copy
}

func plainStruct() {
	type point struct{ x, y int }
	p := point{1, 2}
	q := p // ok: no sync primitive inside
	use(q.x + q.y)
}

func suppressedCopy(c *counter) {
	snapshot := *c //aapc:allow copylocks snapshot taken before the counter is shared
	use(snapshot.n)
}
