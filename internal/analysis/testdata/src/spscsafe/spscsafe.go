// Corpus for the spscsafe analyzer: atomic access discipline and
// producer/consumer role separation on annotated SPSC ring types.
package spscsafe

import "sync/atomic"

// ring is the word-cursor shape: cursors are uint64 fields accessed by
// address.
//
//aapc:spsc
type ring struct {
	tail uint64 //aapc:cursor producer
	head uint64 //aapc:cursor consumer
	data []byte
}

func newRing(n int) *ring { return &ring{data: make([]byte, n)} }

// push is the clean producer: loads both cursors, stores only its own.
//
//aapc:role producer
func (r *ring) push(b byte) bool {
	tail := atomic.LoadUint64(&r.tail)
	head := atomic.LoadUint64(&r.head)
	if int(tail-head) == len(r.data) {
		return false
	}
	r.data[tail%uint64(len(r.data))] = b
	atomic.StoreUint64(&r.tail, tail+1)
	return true
}

// pop is the clean consumer.
//
//aapc:role consumer
func (r *ring) pop() (byte, bool) {
	head := atomic.LoadUint64(&r.head)
	tail := atomic.LoadUint64(&r.tail)
	if tail == head {
		return 0, false
	}
	b := r.data[head%uint64(len(r.data))]
	atomic.StoreUint64(&r.head, head+1)
	return b, true
}

// mixedAtomicPlain polls with a plain load next to atomic stores: the race
// the analyzer exists to catch.
//
//aapc:role consumer
func (r *ring) mixedAtomicPlain() (byte, bool) {
	head := r.head // want `cursor ring\.head copied out by plain read`
	tail := atomic.LoadUint64(&r.tail)
	if tail == head {
		return 0, false
	}
	b := r.data[head%uint64(len(r.data))]
	atomic.StoreUint64(&r.head, head+1)
	return b, true
}

// wrongRole mutates the cursor the other party owns.
//
//aapc:role consumer
func (r *ring) wrongRole() {
	atomic.StoreUint64(&r.tail, 0) // want `consumer-role method writes producer-owned cursor ring\.tail`
}

// reset stores a cursor from a method that never declared its role.
func (r *ring) reset() {
	atomic.StoreUint64(&r.head, 0) // want `cursor ring\.head written in a method without an //aapc:role annotation`
}

// plainIncrement bypasses atomics entirely.
//
//aapc:role producer
func (r *ring) plainIncrement() {
	r.tail++ // want `plain write of cursor ring\.tail`
}

// crossRoleCall: one end of the ring invoking the other end's operations is
// two parties in one goroutine.
//
//aapc:role producer
func (r *ring) crossRoleCall() {
	r.pop() // want `producer-role method calls consumer-role method pop`
}

// pring is the pointer-cursor shape (cursors live in a shared segment, the
// struct holds pointers), matching the shm transport's Ring.
//
//aapc:spsc
type pring struct {
	tail *uint64 //aapc:cursor producer
	head *uint64 //aapc:cursor consumer
}

func newPring() *pring {
	var segment [2]uint64
	return &pring{tail: &segment[0], head: &segment[1]}
}

//aapc:role producer
func (p *pring) advance() {
	tail := atomic.LoadUint64(p.tail)
	atomic.StoreUint64(p.tail, tail+1)
}

// badDeref reads the shared word through the pointer without an atomic.
//
//aapc:role consumer
func (p *pring) badDeref() uint64 {
	return *p.tail // want `plain read of cursor pring\.tail`
}

// leakPointer hands the cursor's address to arbitrary code.
func (p *pring) leakPointer(sink func(*uint64)) {
	sink(p.head) // want `cursor pring\.head passed to a non-atomic call`
}

// unmarked is an identical struct without the annotation: out of scope.
type unmarked struct {
	tail uint64
	head uint64
}

func (u *unmarked) anythingGoes() {
	u.tail++
	u.head = u.tail
}
