// Corpus for the noalloc analyzer: //aapc:noalloc annotation enforcement.
package noalloc

import "fmt"

type ring struct {
	buf   []int
	items []int
}

type node struct{ v int }

func sink(v any) {}

//aapc:noalloc steady-state push reuses capacity
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // ok: self-growth is the sanctioned amortized pattern
}

//aapc:noalloc
func hotMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//aapc:noalloc
func coldMake(r *ring, n int) []int {
	if n > cap(r.buf) {
		return make([]int, n) // ok: cold path, the block leaves the function
	}
	return r.buf[:n]
}

//aapc:noalloc
func hotNew() *node {
	return new(node) // want `new allocates`
}

//aapc:noalloc
func crossAppend(dst, src []int) []int {
	dst = append(src, 1) // want `append outside the x = append\(x, \.\.\.\) self-growth pattern allocates`
	return dst
}

//aapc:noalloc
func logged(v int) {
	fmt.Println(v) // want `fmt\.Println allocates`
}

//aapc:noalloc
func boxes(v int, p *int) {
	sink(p) // ok: pointers box without allocating
	sink(v) // want `boxing int into an interface argument allocates`
}

//aapc:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//aapc:noalloc
func convert(b []byte) string {
	return string(b) // want `conversion between string and byte/rune slice allocates`
}

//aapc:noalloc
func spawns(f func()) {
	go f() // want `go statement allocates a goroutine`
}

//aapc:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

//aapc:noalloc
func heapNode(v int) *node {
	return &node{v: v} // want `&composite literal allocates`
}

//aapc:noalloc
func valueLit(v int) node {
	return node{v: v} // ok: struct literal is a value, no heap
}

//aapc:noalloc
func localHelper(xs []int) int {
	sum := 0
	add := func(v int) { sum += v }
	for _, v := range xs {
		add(v) // ok: the literal is only called locally, it stays on the stack
	}
	return sum
}

//aapc:noalloc
func escapingLiteral(ch chan func()) {
	ch <- func() {} // want `function literal may escape and allocate`
}

//aapc:noalloc
func amortizedGrowth(r *ring, v int) {
	if len(r.items) == cap(r.items) {
		next := make([]int, len(r.items), 2*cap(r.items)+1) //aapc:allow noalloc amortized doubling on overflow
		copy(next, r.items)
		r.items = next
	}
	r.items = append(r.items, v)
}

func makeCounter() func() int {
	n := 0
	//aapc:noalloc the closure itself is the hot path
	return func() int {
		n++
		return n
	}
}

func makeAllocator() func() []int {
	//aapc:noalloc
	return func() []int {
		return []int{1, 2, 3} // want `slice literal allocates`
	}
}

func unannotated(n int) []int {
	return make([]int, n) // ok: no annotation, no constraint
}
