// Corpus proving the determinism analyzer is scoped: this package is not
// replay-sensitive, so wall clocks and map iteration pass untouched.
package other

import "time"

func wallClockIsFine() time.Time {
	return time.Now() // ok: package is outside the determinism scope
}

func mapIterationIsFine(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
