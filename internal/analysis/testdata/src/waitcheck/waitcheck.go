// Corpus for the waitcheck analyzer: request lifecycle of Isend/Irecv.
package waitcheck

import "errors"

type Request struct{ done bool }

func (r *Request) Wait() error { return nil }

type Comm struct{}

func (c *Comm) Isend(buf []byte, dst int) *Request { return &Request{} }
func (c *Comm) Irecv(buf []byte, src int) *Request { return &Request{} }

func waitAll(reqs []*Request) error {
	for _, r := range reqs {
		if err := r.Wait(); err != nil {
			return err
		}
	}
	return nil
}

func prepare(i int) error { return nil }

func timedOut(buf []byte) bool { return len(buf) == 0 }

func chainedWait(c *Comm, buf []byte) error {
	return c.Isend(buf, 1).Wait() // ok: waited immediately
}

func discarded(c *Comm, buf []byte) {
	_ = c.Isend(buf, 1) // want `result of Isend is discarded; the request is never waited`
}

func dropped(c *Comm, buf []byte) {
	c.Irecv(buf, 0) // want `result of Irecv is discarded; the request is never waited`
}

func neverWaited(c *Comm, buf []byte) {
	var reqs []*Request
	reqs = append(reqs, c.Isend(buf, 1)) // want `request stored in "reqs" is never waited`
	reqs = reqs[:0]
}

func earlyReturnLeak(c *Comm, buf []byte, n int) error {
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, c.Irecv(buf, i))
		if err := prepare(i); err != nil {
			return err // want `return leaks request\(s\) in "reqs" acquired at line \d+ without a Wait on this path`
		}
	}
	return waitAll(reqs)
}

func guardedReturn(c *Comm, buf []byte, n int) error {
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, c.Irecv(buf, i))
	}
	if err := waitAll(reqs); err != nil {
		return err // ok: the wait happened in this statement's init
	}
	return nil
}

func singleTracked(c *Comm, buf []byte) error {
	r := c.Isend(buf, 1)
	return r.Wait() // ok: waited on the only path
}

func escapesToCaller(c *Comm, buf []byte) *Request {
	return c.Isend(buf, 1) // ok: caller takes responsibility
}

func escapesViaSlice(c *Comm, buf []byte) []*Request {
	var reqs []*Request
	reqs = append(reqs, c.Isend(buf, 1), c.Irecv(buf, 1))
	return reqs // ok: slice escapes to the caller
}

func escapesViaHelper(c *Comm, buf []byte) error {
	return waitAll([]*Request{c.Isend(buf, 1)}) // ok: composite literal handed to the waiter
}

func deliberateAbandon(c *Comm, buf []byte) error {
	r := c.Isend(buf, 1)
	if timedOut(buf) {
		//aapc:allow waitcheck scratch comm is abandoned to the GC on timeout
		return errors.New("timeout")
	}
	return r.Wait()
}

// ---- interprocedural cases: callee facts decide who holds the request ----

// dropOnFloor ignores its request entirely; its fact proves it.
func dropOnFloor(r *Request) {}

// handOff genuinely consumes: the request reaches a Wait one frame down.
func handOff(r *Request) error { return r.Wait() }

func passedToSink(c *Comm, buf []byte) {
	dropOnFloor(c.Isend(buf, 1)) // want `result of Isend is passed to dropOnFloor, which neither waits nor retains it`
}

func passedToWaiter(c *Comm, buf []byte) error {
	return handOff(c.Isend(buf, 1)) // ok: handOff waits
}

func storedThenDropped(c *Comm, buf []byte) {
	r := c.Isend(buf, 1) // want `request stored in "r" is never waited`
	dropOnFloor(r)
}

func storedThenHandedOff(c *Comm, buf []byte) error {
	r := c.Isend(buf, 1)
	return handOff(r) // ok: the callee's fact marks the parameter consumed
}
