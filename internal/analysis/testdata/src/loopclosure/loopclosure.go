// Corpus for the loopclosure analyzer, checked under go1.21 semantics where
// all iterations share one loop variable.
package loopclosure

func spawnAll(xs []int, out chan int) {
	for _, x := range xs {
		go func() {
			out <- x // want `loop variable x captured by func literal`
		}()
	}
}

func deferredAll(names []string, sink func(string)) {
	for i := range names {
		defer func() {
			sink(names[i]) // want `loop variable i captured by func literal`
		}()
	}
}

func indexed(n int, out chan int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i // want `loop variable i captured by func literal`
		}()
	}
}

func rebound(xs []int, out chan int) {
	for _, x := range xs {
		x := x //aapc:allow shadow per-iteration copy, the point of the idiom
		go func() {
			out <- x // ok: rebound inside the iteration
		}()
	}
}

func passedAsArg(xs []int, out chan int) {
	for _, x := range xs {
		go func(v int) {
			out <- v // ok: the loop variable is passed by value
		}(x)
	}
}
