// Corpus for the copycount analyzer: //aapc:nocopy annotation enforcement.
package copycount

// Datatype stubs the mpi layout descriptor; the analyzer matches Pack and
// Unpack on it by type name.
type Datatype struct{}

func (Datatype) Pack(dst, base []byte) int   { return 0 }
func (Datatype) Unpack(base, src []byte) int { return 0 }

type batch struct {
	iovecs  [][]byte
	scratch []byte
}

//aapc:nocopy payload is borrowed into the writev batch
func (b *batch) borrow(payload []byte) {
	b.iovecs = append(b.iovecs, payload) // ok: appending the slice header, not its bytes
}

//aapc:nocopy
func hotCopy(dst, src []byte) int {
	return copy(dst, src) // want `copy moves payload bytes in a //aapc:nocopy function`
}

//aapc:nocopy
func hotCopyString(dst []byte, src string) int {
	return copy(dst, src) // want `copy moves payload bytes in a //aapc:nocopy function`
}

//aapc:nocopy
func intCopy(dst, src []int) int {
	return copy(dst, src) // ok: not payload bytes
}

//aapc:nocopy
func hotSpread(dst, src []byte) []byte {
	return append(dst, src...) // want `append\(x, src\.\.\.\) moves payload bytes in a //aapc:nocopy function`
}

//aapc:nocopy
func hotStringConv(src []byte) string {
	return string(src) // want `string/byte-slice conversion moves payload bytes in a //aapc:nocopy function`
}

//aapc:nocopy
func hotPack(dt Datatype, base []byte) []byte {
	staged := base[:0]
	dt.Pack(staged, base) // want `Datatype\.Pack stages payload through a pack buffer in a //aapc:nocopy function`
	return staged
}

//aapc:nocopy
func hotUnpack(dt Datatype, base, src []byte) {
	dt.Unpack(base, src) // want `Datatype\.Unpack stages payload through a pack buffer in a //aapc:nocopy function`
}

//aapc:nocopy the overflow fallback below legitimately stages
func coldStage(b *batch, payload []byte) []byte {
	if len(payload) > cap(b.scratch) {
		out := make([]byte, len(payload))
		copy(out, payload) // ok: cold path, the block leaves the function
		return out
	}
	return payload
}

//aapc:nocopy
func allowedCopy(dst, src []byte) int {
	//aapc:allow copycount tiny header prefix, measured free
	return copy(dst, src)
}

//aapc:nocopy annotation reaches the literal on the next line
var literalChecked = func(dst, src []byte) int {
	return copy(dst, src) // want `copy moves payload bytes in a //aapc:nocopy function`
}

// unannotated copies freely.
func unannotated(dst, src []byte) int {
	return copy(dst, src)
}

// ---- interprocedural cases: the memcpy hides one frame down ----

// memmove copies its payload on its own hot path; its fact carries the bit.
func memmove(dst, src []byte) int { return copy(dst, src) }

// coldCopy stages only on its overflow path, which leaves the function:
// no hot-path copy fact.
func coldCopy(dst, src []byte) int {
	if len(src) > len(dst) {
		tmp := make([]byte, len(src))
		copy(tmp, src)
		return len(tmp)
	}
	return 0
}

//aapc:nocopy
func hotViaHelper(dst, src []byte) int {
	return memmove(dst, src) // want `call to memmove copies payload bytes on its hot path in a //aapc:nocopy function`
}

//aapc:nocopy
func hotViaColdHelper(dst, src []byte) int {
	return coldCopy(dst, src) // ok: the helper copies only on its cold path
}
