// Corpus for the poolsafe analyzer: use-after-release of pooled buffers.
package poolsafe

type bufPool struct{ free [][]byte }

func (p *bufPool) get(n int) []byte {
	if len(p.free) == 0 {
		return make([]byte, n)
	}
	b := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b[:n]
}

func (p *bufPool) put(b []byte) { p.free = append(p.free, b) }

type frame struct{ buf []byte }

func (f *frame) Release() {}

func useAfterPut(p *bufPool) int {
	b := p.get(64)
	p.put(b)
	return len(b) // want `use of b after it was released to the pool at line \d+`
}

func doubleRelease(p *bufPool) {
	b := p.get(64)
	p.put(b)
	p.put(b) // want `use of b after it was released to the pool at line \d+`
}

func retainedByClosure(p *bufPool) func() int {
	b := p.get(64)
	p.put(b)
	return func() int { return cap(b) } // want `use of b after it was released to the pool at line \d+`
}

func releaseMethodThenUse(f *frame) int {
	f.Release()
	return len(f.buf) // want `use of f after it was released to the pool at line \d+`
}

func reassignedIsFresh(p *bufPool) int {
	b := p.get(64)
	p.put(b)
	b = p.get(128)
	return len(b) // ok: b was reassigned after the release
}

func putLastIsClean(p *bufPool, b []byte) {
	b = b[:0]
	p.put(b)
}

func loopScopedIsClean(p *bufPool, n int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		b = p.get(64)
		p.put(b)
	}
	return b // ok: releases are tracked within their own block only
}

type stack struct{ items [][]byte }

func (s *stack) put(b []byte) { s.items = append(s.items, b) }

func notAPool(s *stack) int {
	b := []byte("x")
	s.put(b)
	return len(b) // ok: stack is not a pool type
}

func suppressed(p *bufPool) int {
	b := p.get(64)
	p.put(b)
	return cap(b) //aapc:allow poolsafe capacity read is safe, buffer not dereferenced
}
