package analysis

import (
	"go/ast"
	"go/types"
)

// Waitcheck enforces the request lifecycle of the mpi layer: every request
// returned by Isend/Irecv must reach a Wait (directly, through
// WaitAll-style helpers, or by escaping to a caller) on every path out of
// the acquiring function. An unwaited request is a goroutine or matcher
// entry that outlives the collective — the static complement of the
// runtime goroutine-leak check.
//
// Recognized consumptions of a request (or of the slice it was appended
// to): calling any method on it, passing it to any function, returning it,
// ranging over it, storing it into a field, index, channel, or composite
// literal. Self-growth (reqs = append(reqs, ...)) is not a consumption.
//
// Two findings are produced:
//
//   - a request that is discarded or never consumed at all;
//   - a return statement between the acquisition and its first consumption
//     — the classic leak-on-error-path. Deliberate abandonment (e.g. a
//     timed-out collective whose scratch is left to the GC) is annotated
//     //aapc:allow waitcheck with the reason.
// With facts available (facts.go) the pass is interprocedural: passing a
// request to a callee counts as consumption only when the callee's fact
// says the parameter is waited, retained, or escapes — handing a request to
// a helper that ignores it is now a finding, not an assumption of
// responsibility. Unknown callees stay conservative (assumed to consume).
var Waitcheck = &Analyzer{
	Name:       "waitcheck",
	Doc:        "flags Isend/Irecv requests that can escape without reaching a Wait",
	NeedsFacts: true,
	Run:        runWaitcheck,
}

// isRequestAcquisition reports whether call is c.Isend(...)/c.Irecv(...)
// returning a waitable request (its result type has a Wait method).
func isRequestAcquisition(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Isend" && name != "Irecv" {
		return false
	}
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, pass.Pkg, "Wait")
	_, isFunc := obj.(*types.Func)
	return isFunc
}

func runWaitcheck(pass *Pass) error {
	for _, file := range pass.Files {
		parents := buildParentsOf(file)
		// tracked dedupes variables holding several acquisitions (one
		// append can carry both an Isend and an Irecv).
		tracked := make(map[types.Object]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRequestAcquisition(pass, call) {
				return true
			}
			checkAcquisition(pass, file, parents, call, tracked)
			return true
		})
	}
	return nil
}

// buildParentsOf maps each node under root to its parent.
func buildParentsOf(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// pathFromParents reconstructs the enclosing chain (outermost first).
func pathFromParents(parents map[ast.Node]ast.Node, n ast.Node) []ast.Node {
	var rev []ast.Node
	for n != nil {
		rev = append(rev, n)
		n = parents[n]
	}
	path := make([]ast.Node, len(rev))
	for i, x := range rev {
		path[len(rev)-1-i] = x
	}
	return path
}

// checkAcquisition classifies what happens to the request produced by call.
func checkAcquisition(pass *Pass, file *ast.File, parents map[ast.Node]ast.Node, call *ast.CallExpr, tracked map[types.Object]bool) {
	parent := parents[call]
	// Unwrap parens.
	for {
		if p, ok := parent.(*ast.ParenExpr); ok {
			parent = parents[p]
			continue
		}
		break
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// Chained: c.Isend(...).Wait() — consumed immediately.
		return
	case *ast.CallExpr:
		// Passed straight to a function. append(reqs, acq) transfers
		// ownership to the slice: track the slice variable instead.
		if isBuiltinAppend(pass, p) && len(p.Args) > 0 && p.Args[0] != call {
			if tgt := appendTarget(pass, parents, p); tgt != nil && !tracked[tgt] {
				tracked[tgt] = true
				trackVariable(pass, file, parents, call, tgt)
				return
			}
		}
		// A callee with a fact proving it drops the request on the floor is
		// not taking responsibility; anything without a fact still is.
		if callee := CalleeFunc(pass, p); callee != nil {
			if cf := pass.Facts.Func(FuncKey(callee)); cf != nil {
				for idx, arg := range CallArgs(pass, p, callee) {
					if ast.Unparen(arg) != call {
						continue
					}
					cp := cf.Param(idx)
					if cp == nil || !(cp.Consumed || cp.Escapes || cp.Releases) {
						pass.Reportf(call.Pos(), "result of %s is passed to %s, which neither waits nor retains it",
							callName(call), callee.Name())
					}
					return
				}
			}
		}
		return
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return // escapes to the caller / a structure / a channel
	case *ast.AssignStmt:
		// _ = acq discards; x := acq (or x = acq) tracks x.
		for i, rhs := range p.Rhs {
			if rhs != call || i >= len(p.Lhs) {
				continue
			}
			lhs := p.Lhs[i]
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is discarded; the request is never waited", callName(call))
					return
				}
				if obj := pass.ObjectOf(id); obj != nil && !tracked[obj] {
					tracked[obj] = true
					trackVariable(pass, file, parents, call, obj)
					return
				}
			}
			// Stored into a field/index: escapes, assumed managed.
			return
		}
		return
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s is discarded; the request is never waited", callName(call))
		return
	default:
		return
	}
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Isend/Irecv"
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendTarget returns the variable that receives the result of an append
// whose element is a request: reqs = append(reqs, acq) -> reqs.
func appendTarget(pass *Pass, parents map[ast.Node]ast.Node, appendCall *ast.CallExpr) types.Object {
	asg, ok := parents[appendCall].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 {
		return nil
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

// trackVariable verifies that obj (a request, or a slice of requests) is
// consumed, and that no return statement escapes the function between the
// acquisition and a consumption that covers it.
func trackVariable(pass *Pass, file *ast.File, parents map[ast.Node]ast.Node, acq *ast.CallExpr, obj types.Object) {
	acqPath := pathFromParents(parents, acq)
	fn := innermostFunc(acqPath)
	if fn == nil {
		return
	}

	// Gather consuming uses and return statements of the same function.
	var consumptions []ast.Stmt
	var returns []*ast.ReturnStmt
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if innermostFunc(pathFromParents(parents, n)) == fn {
				returns = append(returns, n)
			}
			return true
		case *ast.Ident:
			// consumingUseWithFacts degrades to isConsumingUse exactly when
			// pass.Facts is nil (legacy block-scoped mode).
			if pass.ObjectOf(n) != obj || !consumingUseWithFacts(pass, pass.Facts, parents, n) {
				return true
			}
			if stmt := owningStatement(parents, n); stmt != nil {
				consumptions = append(consumptions, stmt)
			}
		}
		return true
	})

	if len(consumptions) == 0 {
		pass.Reportf(acq.Pos(), "request stored in %q is never waited (no Wait, WaitAll, or escape in %s)",
			obj.Name(), funcDesc(fn))
		return
	}

	// Early-return check: a return after the acquisition is a leak unless
	// some consumption guards it — the return sits inside the consuming
	// statement itself, or the consumption completed lexically earlier
	// (per-round WaitAll loops drain before the function's final return).
	// The pass is lexical, not path-sensitive: a return between the
	// acquisition and its first consumption is the shape it exists to catch.
	for _, ret := range returns {
		if ret.Pos() <= acq.Pos() {
			continue
		}
		if returnConsumes(pass, ret, obj) {
			continue
		}
		guarded := false
		for _, c := range consumptions {
			if ret.Pos() >= c.Pos() && ret.End() <= c.End() {
				guarded = true // return is inside the consuming statement
				break
			}
			if c.End() <= ret.Pos() {
				guarded = true // consumption completed before this return
				break
			}
		}
		if !guarded {
			pass.Reportf(ret.Pos(), "return leaks request(s) in %q acquired at line %d without a Wait on this path",
				obj.Name(), pass.Fset.Position(acq.Pos()).Line)
		}
	}
}

// isConsumingUse reports whether the identifier use hands the request (or
// request slice) onward: method call, call argument, return, range, send,
// composite literal, or assignment into a structure. Self-growth and plain
// writes are not consumptions.
func isConsumingUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	parent := parents[id]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// id.Wait() — method call on the request.
		if p.X == id {
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg != id {
				continue
			}
			// reqs = append(reqs, ...): growing the tracked slice in place
			// is bookkeeping, not consumption.
			if isBuiltinAppend(pass, p) && p.Args[0] == id {
				if tgt := appendTarget(pass, parents, p); tgt == pass.ObjectOf(id) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.RangeStmt:
		return p.X == id
	case *ast.AssignStmt:
		// On the RHS: the value flows somewhere else — consumption unless
		// it is a self-reslice (reqs = reqs[:0] handled below via slice).
		for _, rhs := range p.Rhs {
			if rhs == id {
				return true
			}
		}
		return false
	case *ast.SliceExpr:
		// reqs[:0] — consumption only if the result leaves the variable.
		if asg, ok := parents[p].(*ast.AssignStmt); ok && len(asg.Lhs) == 1 {
			if lhs, ok := asg.Lhs[0].(*ast.Ident); ok && pass.ObjectOf(lhs) == pass.ObjectOf(id) {
				return false
			}
		}
		return true
	case *ast.UnaryExpr:
		return p.Op.String() == "&" // address escapes
	default:
		return false
	}
}

// owningStatement finds the innermost block-level statement containing the
// node.
func owningStatement(parents map[ast.Node]ast.Node, n ast.Node) ast.Stmt {
	path := pathFromParents(parents, n)
	for i := len(path) - 1; i >= 1; i-- {
		switch path[i-1].(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if stmt, ok := path[i].(ast.Stmt); ok {
				return stmt
			}
		}
	}
	return nil
}

// returnConsumes reports whether the return expression mentions obj.
func returnConsumes(pass *Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	found := false
	for _, e := range ret.Results {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

func funcDesc(fn ast.Node) string {
	if d, ok := fn.(*ast.FuncDecl); ok {
		return "function " + d.Name.Name
	}
	return "this function literal"
}
