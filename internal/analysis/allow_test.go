package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllowNames(t *testing.T) {
	cases := []struct {
		rest string
		want []string
	}{
		{" poolsafe", []string{"poolsafe"}},
		{" poolsafe waitcheck buffer is abandoned on purpose", []string{"poolsafe", "waitcheck"}},
		{" determinism results are keyed by job index", []string{"determinism"}},
		{" noalloc (amortized growth)", []string{"noalloc"}},
		{"", nil},
		{" Not-An-Analyzer reason", nil},
	}
	for _, c := range cases {
		if got := parseAllowNames(c.rest); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllowNames(%q) = %v, want %v", c.rest, got, c.want)
		}
	}
}

func TestAllowIndexLines(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //aapc:allow poolsafe same line
	//aapc:allow waitcheck line above
	_ = 2
	_ = 3
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildAllowIndex(fset, []*ast.File{f})
	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	if !idx.allows(at(4), "poolsafe") {
		t.Error("same-line suppression not honored")
	}
	if !idx.allows(at(6), "waitcheck") {
		t.Error("line-above suppression not honored")
	}
	if idx.allows(at(7), "waitcheck") {
		t.Error("suppression leaked past one line")
	}
	if idx.allows(at(4), "waitcheck") {
		t.Error("suppression applied to the wrong analyzer")
	}
}
