package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Loopclosure reports references to loop variables from within go/defer
// function literals — the classic pre-go1.22 capture bug. From go1.22 each
// iteration gets a fresh variable, so the pass gates itself on the module's
// language version and is a no-op for this repo; it stays in the suite so
// the tree is protected if the module version is ever lowered (and so older
// vendored snippets are checked with the corpus harness).
var Loopclosure = &Analyzer{
	Name: "loopclosure",
	Doc:  "reports loop-variable captures in go/defer literals (pre-go1.22 semantics)",
	Run:  runLoopclosure,
}

// loopVarPerIteration reports whether the configured language version gives
// each loop iteration its own variable (go1.22+). Unknown versions are
// assumed current.
func loopVarPerIteration(goVersion string) bool {
	v := strings.TrimPrefix(goVersion, "go")
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return true
	}
	major, err1 := strconv.Atoi(parts[0])
	minor, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return true
	}
	return major > 1 || (major == 1 && minor >= 22)
}

func runLoopclosure(pass *Pass) error {
	if loopVarPerIteration(pass.GoVersion) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var vars []*ast.Ident
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				if post, ok := n.Post.(*ast.IncDecStmt); ok {
					if id, ok := post.X.(*ast.Ident); ok {
						vars = append(vars, id)
					}
				}
				body = n.Body
			case *ast.RangeStmt:
				if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
					vars = append(vars, id)
				}
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					vars = append(vars, id)
				}
				body = n.Body
			default:
				return true
			}
			if len(vars) == 0 || body == nil {
				return true
			}
			checkLoopBody(pass, vars, body)
			return true
		})
	}
	return nil
}

// checkLoopBody flags references to the loop variables inside literals that
// outlive the iteration: go statements and defers.
func checkLoopBody(pass *Pass, vars []*ast.Ident, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var lit *ast.FuncLit
		switch n := n.(type) {
		case *ast.GoStmt:
			lit, _ = n.Call.Fun.(*ast.FuncLit)
		case *ast.DeferStmt:
			lit, _ = n.Call.Fun.(*ast.FuncLit)
		default:
			return true
		}
		if lit == nil {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			for _, v := range vars {
				if pass.ObjectOf(id) != nil && pass.ObjectOf(id) == pass.ObjectOf(v) {
					pass.Reportf(id.Pos(), "loop variable %s captured by func literal (per-loop variable before go1.22)", id.Name)
				}
			}
			return true
		})
		return true
	})
}
