package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol with no
// dependency on golang.org/x/tools. The protocol, from
// cmd/go/internal/work/exec.go:
//
//  1. `tool -V=full` must print a line `<name> version <id>...` whose
//     trailing id changes when the tool changes (cmd/go hashes it into the
//     vet cache key).
//  2. `tool -flags` must print a JSON array of the tool's flags so cmd/go
//     can validate command-line vet flags.
//  3. `tool [flags] <dir>/vet.cfg` is invoked once per package with a JSON
//     config naming the source files, the import map, and the export-data
//     files of every dependency. The tool must write cfg.VetxOutput (the
//     facts file cmd/go caches; this suite carries no cross-package facts,
//     so a constant marker is written), print diagnostics to stderr, and
//     exit 2 when it found anything, 0 when clean.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// vetxMarker is the constant "facts" payload: the suite is strictly
// intra-package, so the file exists only to satisfy the protocol.
var vetxMarker = []byte("aapcvet: no facts\n")

// Main is the entry point of cmd/aapcvet. It never returns.
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("aapcvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which aapcvet) [-<analyzer>=false] packages...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	vFlag := fs.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag description in JSON and exit (cmd/go protocol)")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		// Any stable-looking id works; hash the binary so edits to the
		// tool invalidate cmd/go's vet cache.
		fmt.Printf("aapcvet version v1-%s\n", selfHash())
		os.Exit(0)
	case *flagsFlag:
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, _ := json.Marshal(out)
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(runConfig(args[0], active))
}

// runConfig executes one unit-checker invocation and returns the process
// exit code.
func runConfig(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Always satisfy the facts side of the protocol first: cmd/go caches
	// this file keyed by the action, including for dependency-only runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, vetxMarker, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependencies are analyzed only for facts; this suite has none.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := newExportDataImporter(fset, &cfg)
	info := NewTypesInfo()
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compilerName(cfg.Compiler), buildArch()),
		GoVersion: cfg.GoVersion, // e.g. "go1.22"
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "aapcvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := Run(&PackageInfo{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		Info:      info,
		PkgPath:   cfg.ImportPath,
		GoVersion: cfg.GoVersion,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", relPosition(fset.Position(d.Pos), cfg.Dir), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// relPosition shortens absolute file names under dir for readability.
func relPosition(pos token.Position, dir string) token.Position {
	if dir != "" {
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos
}

func compilerName(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// exportDataImporter resolves imports through the vet config: source paths
// map through ImportMap to canonical package paths, whose compiled export
// data is listed in PackageFile. The heavy lifting (reading gc export data)
// is delegated to a single go/importer instance with a lookup function, so
// shared dependencies resolve to one *types.Package and type identity
// holds across the whole unit.
type exportDataImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newExportDataImporter(fset *token.FileSet, cfg *vetConfig) *exportDataImporter {
	m := &exportDataImporter{cfg: cfg}
	m.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		target := p
		if mapped, ok := cfg.ImportMap[p]; ok {
			target = mapped
		}
		file, ok := cfg.PackageFile[target]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	return m
}

func (m *exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return m.gc.Import(path)
}

// selfHash fingerprints the running binary for the -V=full build id.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
