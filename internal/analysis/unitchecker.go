package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// This file implements the `go vet -vettool` unit-checker protocol with no
// dependency on golang.org/x/tools. The protocol, from
// cmd/go/internal/work/exec.go:
//
//  1. `tool -V=full` must print a line `<name> version <id>...` whose
//     trailing id changes when the tool changes (cmd/go hashes it into the
//     vet cache key).
//  2. `tool -flags` must print a JSON array of the tool's flags so cmd/go
//     can validate command-line vet flags.
//  3. `tool [flags] <dir>/vet.cfg` is invoked once per package with a JSON
//     config naming the source files, the import map, and the export-data
//     files of every dependency. The tool must write cfg.VetxOutput — the
//     facts file cmd/go caches and feeds back through cfg.PackageVetx on
//     dependent packages — print diagnostics to stderr, and exit 2 when it
//     found anything, 0 when clean.
//
// The vetx channel carries the interprocedural fact summaries (facts.go):
// cmd/go invokes the tool with VetxOnly=true on every transitive dependency
// first, so by the time a package is analyzed for diagnostics, the facts of
// everything it imports sit in PackageVetx. Standard-library dependencies
// are exempt — they get the constant marker payload — both to keep `make
// lint` inside its time budget and because no analyzer consumes facts about
// std functions.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	ModulePath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// vetxMarker is the facts payload for packages whose facts are not computed
// (standard library, typecheck failures): a constant that DecodeFacts
// rejects by magic, so importing it is a clean no-op.
var vetxMarker = []byte("aapcvet: no facts\n")

// Main is the entry point of cmd/aapcvet. It never returns.
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("aapcvet", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which aapcvet) [-<analyzer>=false] [-json] [-unusedallow] packages...\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	vFlag := fs.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := fs.Bool("flags", false, "print flag description in JSON and exit (cmd/go protocol)")
	jsonFlagV := fs.Bool("json", false, "emit diagnostics as NDJSON on stderr (suppressed findings included)")
	unusedFlag := fs.Bool("unusedallow", false, "flag //aapc:allow comments that suppressed nothing")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	_ = fs.Parse(os.Args[1:])

	switch {
	case *vFlag != "":
		// Any stable-looking id works; hash the binary so edits to the
		// tool invalidate cmd/go's vet cache.
		fmt.Printf("aapcvet version v1-%s\n", selfHash())
		os.Exit(0)
	case *flagsFlag:
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		out := []jsonFlag{
			{Name: "json", Bool: true, Usage: "emit diagnostics as NDJSON"},
			{Name: "unusedallow", Bool: true, Usage: "flag stale //aapc:allow comments"},
		}
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, _ := json.Marshal(out)
		os.Stdout.Write(data)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fs.Usage()
		os.Exit(1)
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	os.Exit(runConfig(args[0], active, runOptions{json: *jsonFlagV, unusedAllow: *unusedFlag}))
}

// runOptions are the output-shaping flags of one invocation.
type runOptions struct {
	json        bool
	unusedAllow bool
}

// jsonDiagnostic is one NDJSON output line of -json mode.
type jsonDiagnostic struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// runConfig executes one unit-checker invocation and returns the process
// exit code.
func runConfig(cfgFile string, analyzers []*Analyzer, opts runOptions) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	needFacts := false
	for _, a := range analyzers {
		if a.NeedsFacts {
			needFacts = true
		}
	}

	if cfg.VetxOnly {
		// Dependency run: the only product is the facts file. Standard
		// library packages get the marker (no analyzer asks about them, and
		// summarizing all of std would dominate the wall clock).
		if !needFacts || isStdPackage(&cfg) {
			return writeVetx(&cfg, vetxMarker)
		}
		pkg, ok := loadPackage(&cfg)
		if !ok {
			// A dependency that fails to load (cgo, typecheck quirks) simply
			// contributes no facts; dependents stay conservative.
			return writeVetx(&cfg, vetxMarker)
		}
		facts := ComputeFacts(pkg, importFacts(&cfg))
		payload, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "aapcvet: encoding facts for %s: %v\n", cfg.ImportPath, err)
			return 1
		}
		return writeVetx(&cfg, payload)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(&cfg, vetxMarker)
			}
			fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	imp := newExportDataImporter(fset, &cfg)
	info := NewTypesInfo()
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compilerName(cfg.Compiler), buildArch()),
		GoVersion: cfg.GoVersion, // e.g. "go1.22"
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(&cfg, vetxMarker)
		}
		fmt.Fprintf(os.Stderr, "aapcvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	var imported *FactSet
	if needFacts {
		imported = importFacts(&cfg)
	}
	res, err := RunWith(&PackageInfo{
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		Info:      info,
		PkgPath:   cfg.ImportPath,
		GoVersion: cfg.GoVersion,
	}, analyzers, RunConfig{Imported: imported})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
		return 1
	}

	// The leaf package's facts also enter the cache: a dependent package in
	// the same `go vet` invocation imports them through PackageVetx.
	payload := vetxMarker
	if res.Facts != nil {
		if payload, err = res.Facts.Encode(); err != nil {
			fmt.Fprintf(os.Stderr, "aapcvet: encoding facts for %s: %v\n", cfg.ImportPath, err)
			return 1
		}
	}
	if code := writeVetx(&cfg, payload); code != 0 {
		return code
	}

	findings := 0
	emit := func(pos token.Position, analyzer, message string, suppressed bool) {
		if opts.json {
			rel := relPosition(pos, cfg.Dir)
			line, _ := json.Marshal(jsonDiagnostic{
				File: rel.Filename, Line: rel.Line, Col: rel.Column,
				Analyzer: analyzer, Message: message, Suppressed: suppressed,
			})
			fmt.Fprintf(os.Stderr, "%s\n", line)
		} else if !suppressed {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", relPosition(pos, cfg.Dir), message, analyzer)
		}
		if !suppressed {
			findings++
		}
	}
	for _, d := range res.Diags {
		emit(fset.Position(d.Pos), d.Analyzer, d.Message, d.Suppressed)
	}
	if opts.unusedAllow {
		for _, e := range res.UnusedAllows {
			emit(token.Position{Filename: e.File, Line: e.Line, Column: 1}, "unusedallow",
				fmt.Sprintf("stale //aapc:allow %s: the comment suppressed nothing in this run", e.Analyzer), false)
		}
	}
	if findings > 0 {
		return 2
	}
	return 0
}

// writeVetx satisfies the facts side of the protocol; cmd/go caches the file
// keyed by the action.
func writeVetx(cfg *vetConfig, payload []byte) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "aapcvet: %v\n", err)
		return 1
	}
	return 0
}

// isStdPackage reports whether the unit being checked is a standard-library
// package. cmd/go sets ModulePath only for module units (cfg.Standard lists
// the unit's std *dependencies*, not the unit itself, so it cannot answer
// this); the fallback for GOPATH-mode units is "no dot in the first path
// element" (module paths are domain-rooted, std paths are not).
func isStdPackage(cfg *vetConfig) bool {
	if cfg.ModulePath != "" {
		return false
	}
	first := cfg.ImportPath
	if i := strings.IndexByte(first, '/'); i >= 0 {
		first = first[:i]
	}
	return !strings.Contains(first, ".")
}

// loadPackage parses and typechecks the unit for a facts-only run; ok is
// false on any failure (the caller degrades to the marker payload).
func loadPackage(cfg *vetConfig) (*PackageInfo, bool) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, false
		}
		files = append(files, f)
	}
	imp := newExportDataImporter(fset, cfg)
	info := NewTypesInfo()
	tcfg := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(compilerName(cfg.Compiler), buildArch()),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, false
	}
	return &PackageInfo{
		Fset: fset, Files: files, Pkg: pkg, Info: info,
		PkgPath: cfg.ImportPath, GoVersion: cfg.GoVersion,
	}, true
}

// importFacts merges the fact sets of every dependency listed in
// PackageVetx. Marker payloads (std packages, older cache entries) decode
// to nothing and are skipped; a corrupt facts file is reported but not
// fatal — analysis just loses precision.
func importFacts(cfg *vetConfig) *FactSet {
	merged := NewFactSet()
	for dep, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		fs, ok, err := DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aapcvet: facts of %s: %v\n", dep, err)
			continue
		}
		if ok {
			merged.Merge(fs)
		}
	}
	return merged
}

// relPosition shortens absolute file names under dir for readability.
func relPosition(pos token.Position, dir string) token.Position {
	if dir != "" {
		if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return pos
}

func compilerName(name string) string {
	if name == "" {
		return "gc"
	}
	return name
}

func buildArch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

// exportDataImporter resolves imports through the vet config: source paths
// map through ImportMap to canonical package paths, whose compiled export
// data is listed in PackageFile. The heavy lifting (reading gc export data)
// is delegated to a single go/importer instance with a lookup function, so
// shared dependencies resolve to one *types.Package and type identity
// holds across the whole unit.
type exportDataImporter struct {
	cfg *vetConfig
	gc  types.Importer
}

func newExportDataImporter(fset *token.FileSet, cfg *vetConfig) *exportDataImporter {
	m := &exportDataImporter{cfg: cfg}
	m.gc = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
		target := p
		if mapped, ok := cfg.ImportMap[p]; ok {
			target = mapped
		}
		file, ok := cfg.PackageFile[target]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	})
	return m
}

func (m *exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return m.gc.Import(path)
}

// selfHash fingerprints the running binary for the -V=full build id.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
