package analysis

import (
	"go/ast"
	"go/token"
)

// Shared syntax-tree plumbing for the analyzers: enclosing-node paths,
// function iteration, root-identifier extraction, and the cold-path test
// used by noalloc and waitcheck.

// enclosingPath returns the chain of nodes containing pos, outermost first.
// The final element is the innermost node whose source range covers pos.
func enclosingPath(root ast.Node, pos token.Pos) []ast.Node {
	var path []ast.Node
	for {
		var next ast.Node
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil || next != nil {
				return false
			}
			if n == root {
				return true
			}
			if n.Pos() <= pos && pos < n.End() {
				next = n
			}
			return false
		})
		path = append(path, root)
		if next == nil {
			return path
		}
		root = next
	}
}

// funcBody is one function-like unit of analysis: a declared function or a
// function literal, with its body.
type funcBody struct {
	// node is the *ast.FuncDecl or *ast.FuncLit.
	node ast.Node
	body *ast.BlockStmt
	// doc is the declaration's doc comment (nil for literals).
	doc *ast.CommentGroup
}

// functionsIn yields every function and function literal in the file.
func functionsIn(f *ast.File, visit func(fb funcBody)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(funcBody{node: n, body: n.Body, doc: n.Doc})
			}
		case *ast.FuncLit:
			visit(funcBody{node: n, body: n.Body})
		}
		return true
	})
}

// innermostFunc returns the innermost FuncDecl/FuncLit on the path, or nil.
func innermostFunc(path []ast.Node) ast.Node {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return path[i]
		}
	}
	return nil
}

// rootIdent returns the leftmost identifier of an lvalue-like expression
// (x, x.f, x[i], *x, (x)), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// terminates reports whether stmt unconditionally leaves the enclosing
// function: a return, or a panic call.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// onColdPath reports whether the node at pos sits inside a conditional
// block that ends by leaving the function — the shape of an early-exit
// error path. Loop bodies never count as cold, and neither does the
// function's own body. path must be an enclosingPath ending at or inside
// the node of interest.
func onColdPath(path []ast.Node) bool {
	fn := innermostFunc(path)
	for i := len(path) - 1; i >= 1; i-- {
		if path[i] == fn {
			return false
		}
		var list []ast.Stmt
		switch b := path[i].(type) {
		case *ast.BlockStmt:
			// Only blocks hanging off a conditional are cold candidates;
			// for/range bodies are by definition the hot part.
			switch path[i-1].(type) {
			case *ast.IfStmt:
				list = b.List
			case *ast.ForStmt, *ast.RangeStmt:
				continue
			default:
				continue
			}
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		if n := len(list); n > 0 && terminates(list[n-1]) {
			return true
		}
	}
	return false
}
