package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Poolsafe enforces the payload-pool lifecycle: once a buffer (or pooled
// object) has been handed back with Put/put/Release/release on a pool-like
// receiver, the releasing function must not touch it again — not read it,
// not release it twice, not capture it in a closure — unless it is first
// reassigned. The transport's correctness depends on this: a released
// []byte is re-sliced and handed to another stream's read loop, so a stale
// use is a cross-message data race that no test reliably reproduces.
//
// The lexical scope of the check is block-scoped (uses after the release
// inside the release's own block, including nested statements and function
// literals, which would retain the buffer past the release point;
// reassigning the released expression or its root variable ends tracking;
// releases on one loop iteration are not matched against uses on the next),
// but release *recognition* is interprocedural: a call to any function
// whose fact (facts.go) says a parameter Releases is a release of that
// argument, so wrapping pool.put in a helper no longer hides the lifecycle.
// Facts also expose return aliasing — after y := f(x) where f returns a
// view of x, releasing x kills y too.
var Poolsafe = &Analyzer{
	Name:       "poolsafe",
	Doc:        "flags use of a pooled buffer after it was released back to its pool",
	NeedsFacts: true,
	Run:        runPoolsafe,
}

// isPoolRelease reports whether call returns a value to a pool, and if so
// which expression was released. Recognized shapes:
//
//	pool.put(x), pool.Put(x)      -> x   (receiver type name contains "pool")
//	x.Release(), x.release()      -> x
func isPoolRelease(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	name := sel.Sel.Name
	switch name {
	case "put", "Put":
		if len(call.Args) != 1 {
			return nil, false
		}
		if !isPoolType(pass.TypeOf(sel.X)) {
			return nil, false
		}
		return call.Args[0], true
	case "release", "Release":
		if len(call.Args) != 0 {
			return nil, false
		}
		return sel.X, true
	}
	return nil, false
}

// isPoolType reports whether t names a pool: a defined type whose name
// contains "pool" (bufPool, recvOpPool, sync.Pool, ...).
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.Contains(strings.ToLower(named.Obj().Name()), "pool")
}

func runPoolsafe(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			released, ok := isPoolRelease(pass, call)
			if !ok {
				released, ok = factRelease(pass, call)
			}
			if !ok {
				return true
			}
			checkAfterRelease(pass, file, call, released)
			for _, alias := range releaseAliases(pass, file, call, released) {
				checkAfterRelease(pass, file, call, alias)
			}
			return true
		})
	}
	return nil
}

// factRelease recognizes releases hidden behind a call boundary: helper(b)
// where helper's interprocedural fact marks that parameter Releases.
func factRelease(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	callee := CalleeFunc(pass, call)
	if callee == nil {
		return nil, false
	}
	cf := pass.Facts.Func(FuncKey(callee))
	if cf == nil {
		return nil, false
	}
	for idx, arg := range CallArgs(pass, call, callee) {
		if p := cf.Param(idx); p != nil && p.Releases {
			return arg, true
		}
	}
	return nil, false
}

// releaseAliases finds variables that alias the released buffer through a
// returns-param callee (view := slice(b); ...; pool.put(b) leaves view
// dangling) assigned lexically before the release in the same function.
func releaseAliases(pass *Pass, file *ast.File, rel *ast.CallExpr, released ast.Expr) []ast.Expr {
	if pass.Facts == nil {
		return nil
	}
	root := rootIdent(released)
	if root == nil {
		return nil
	}
	rootObj := pass.ObjectOf(root)
	if rootObj == nil {
		return nil
	}
	fn := innermostFunc(enclosingPath(file, rel.Pos()))
	if fn == nil {
		return nil
	}
	var aliases []ast.Expr
	ast.Inspect(fn, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Pos() >= rel.Pos() || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := CalleeFunc(pass, call)
			if callee == nil {
				continue
			}
			cf := pass.Facts.Func(FuncKey(callee))
			if cf == nil || len(cf.ReturnsParams) == 0 {
				continue
			}
			for idx, arg := range CallArgs(pass, call, callee) {
				if !cf.returnsParam(idx) {
					continue
				}
				r := rootIdent(arg)
				if r == nil || pass.ObjectOf(r) != rootObj {
					continue
				}
				if id, ok := asg.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					aliases = append(aliases, id)
				}
			}
		}
		return true
	})
	return aliases
}

// checkAfterRelease walks the statements that lexically follow the release
// inside its enclosing block and reports reads of the released expression.
func checkAfterRelease(pass *Pass, file *ast.File, call *ast.CallExpr, released ast.Expr) {
	root := rootIdent(released)
	if root == nil {
		return // released a temporary; nothing to track
	}
	rootObj := pass.ObjectOf(root)
	if rootObj == nil {
		return
	}
	relStr := types.ExprString(released)
	relLine := pass.Fset.Position(call.Pos()).Line

	path := enclosingPath(file, call.Pos())
	// Find the innermost statement list containing the release call and the
	// index of the statement holding it.
	var list []ast.Stmt
	holder := -1
	for i := len(path) - 1; i >= 0 && holder < 0; i-- {
		switch b := path[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		for j, s := range list {
			if s.Pos() <= call.Pos() && call.Pos() < s.End() {
				holder = j
				break
			}
		}
		if holder < 0 {
			list = nil
		}
	}
	if holder < 0 {
		return
	}

	// First: a second use inside the same statement as the release, after
	// the call (e.g. pool.put(b); pool.put(b) collapsed by a comma is not
	// syntax, but b reused in the same expression is possible).
	live := true
	for _, s := range list[holder+1:] {
		if !live {
			break
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if !live || n == nil {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				// A reassignment of the released expression (or its root)
				// ends tracking; but inspect the RHS first — it reads the
				// old value.
				for _, rhs := range n.Rhs {
					inspectReleasedUse(pass, rhs, relStr, rootObj, relLine, &live)
				}
				if !live {
					return false
				}
				for _, lhs := range n.Lhs {
					if exprMatches(pass, lhs, relStr, rootObj) || isRootRewrite(pass, lhs, rootObj) {
						live = false
						return false
					}
				}
				return false
			case ast.Expr:
				inspectReleasedUse(pass, n, relStr, rootObj, relLine, &live)
				return false
			}
			return true
		})
	}
}

// inspectReleasedUse reports reads of the released expression inside e.
func inspectReleasedUse(pass *Pass, e ast.Expr, relStr string, rootObj types.Object, relLine int, live *bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if !*live {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if exprMatches(pass, expr, relStr, rootObj) {
			pass.Reportf(expr.Pos(), "use of %s after it was released to the pool at line %d",
				relStr, relLine)
			*live = false
			return false
		}
		return true
	})
}

// exprMatches reports whether e denotes the released expression: same
// printed form and same root object.
func exprMatches(pass *Pass, e ast.Expr, relStr string, rootObj types.Object) bool {
	if types.ExprString(e) != relStr {
		return false
	}
	r := rootIdent(e)
	return r != nil && pass.ObjectOf(r) == rootObj
}

// isRootRewrite reports whether lhs reassigns the root variable itself
// (x = ...), which also invalidates any released x.f / x[i] tracking.
func isRootRewrite(pass *Pass, lhs ast.Expr, rootObj types.Object) bool {
	id, ok := lhs.(*ast.Ident)
	return ok && pass.ObjectOf(id) == rootObj
}
