package analysis_test

import (
	"testing"

	"github.com/aapc-sched/aapcsched/internal/analysis"
	"github.com/aapc-sched/aapcsched/internal/analysis/analysistest"
)

// Each analyzer runs over a corpus under testdata/src containing both
// violations (annotated `// want`) and clean idioms, including
// //aapc:allow suppressions which must silence the finding.

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Poolsafe, "poolsafe")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "simnet")
}

// TestDeterminismScope proves the analyzer keeps out of packages that are
// not replay-sensitive: the corpus reads wall clocks and iterates maps.
func TestDeterminismScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "other")
}

func TestWaitcheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Waitcheck, "waitcheck")
}

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noalloc, "noalloc")
}

func TestCopycount(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Copycount, "copycount")
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Shadow, "shadow")
}

func TestCopylocks(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Copylocks, "copylocks")
}

func TestLoopclosure(t *testing.T) {
	analysistest.RunWithVersion(t, "testdata", analysis.Loopclosure, "loopclosure", "go1.21")
}

// TestLoopclosureVersionGate proves the pass is silent under go1.22
// per-iteration loop-variable semantics.
func TestLoopclosureVersionGate(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Loopclosure, "loopclosure122")
}
