package analysis_test

import (
	"testing"

	"github.com/aapc-sched/aapcsched/internal/analysis"
	"github.com/aapc-sched/aapcsched/internal/analysis/analysistest"
)

// Each analyzer runs over a corpus under testdata/src containing both
// violations (annotated `// want`) and clean idioms, including
// //aapc:allow suppressions which must silence the finding.

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Poolsafe, "poolsafe")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "simnet")
}

// TestDeterminismScope proves the analyzer keeps out of packages that are
// not replay-sensitive: the corpus reads wall clocks and iterates maps.
func TestDeterminismScope(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "other")
}

func TestWaitcheck(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Waitcheck, "waitcheck")
}

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noalloc, "noalloc")
}

func TestCopycount(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Copycount, "copycount")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockorder, "lockorder")
}

func TestSpscsafe(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Spscsafe, "spscsafe")
}

// TestPoolsafeInterprocedural runs poolsafe with facts over a corpus whose
// every finding crosses a call boundary: helper releases (direct and
// transitive) and aliases through returns-param callees.
func TestPoolsafeInterprocedural(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Poolsafe, "poolsafeinter")
}

// TestPoolsafeLegacyMiss proves the interprocedural cases are exactly that:
// with the fact engine disabled, the block-scoped pass reports nothing on
// the poolsafeinter corpus — every finding there is new precision, not a
// restatement of what the old pass caught.
func TestPoolsafeLegacyMiss(t *testing.T) {
	diags := analysistest.Diagnostics(t, "testdata", analysis.Poolsafe, "poolsafeinter", true)
	for _, d := range diags {
		t.Errorf("legacy poolsafe unexpectedly found: %s", d.Message)
	}
	with := analysistest.Diagnostics(t, "testdata", analysis.Poolsafe, "poolsafeinter", false)
	if len(with) == 0 {
		t.Fatalf("fact-driven poolsafe found nothing on the interprocedural corpus")
	}
}

func TestShadow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Shadow, "shadow")
}

func TestCopylocks(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Copylocks, "copylocks")
}

func TestLoopclosure(t *testing.T) {
	analysistest.RunWithVersion(t, "testdata", analysis.Loopclosure, "loopclosure", "go1.21")
}

// TestLoopclosureVersionGate proves the pass is silent under go1.22
// per-iteration loop-variable semantics.
func TestLoopclosureVersionGate(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Loopclosure, "loopclosure122")
}

// TestUnusedAllowAudit drives the full Result surface: a suppressed finding
// marks its allow comment used; a comment that suppressed nothing surfaces
// in UnusedAllows with its position.
func TestUnusedAllowAudit(t *testing.T) {
	pi := analysistest.LoadCorpus(t, "testdata", "unusedallow", "go1.22")
	res, err := analysis.RunWith(pi, []*analysis.Analyzer{analysis.Poolsafe}, analysis.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}

	suppressed := 0
	for _, d := range res.Diags {
		if !d.Suppressed {
			t.Errorf("unexpected live diagnostic: %s", d.Message)
			continue
		}
		suppressed++
	}
	if suppressed != 1 {
		t.Errorf("suppressed findings = %d, want 1", suppressed)
	}

	if len(res.UnusedAllows) != 1 {
		t.Fatalf("unused allows = %+v, want exactly one", res.UnusedAllows)
	}
	e := res.UnusedAllows[0]
	if e.Analyzer != "poolsafe" {
		t.Errorf("stale entry analyzer = %q, want poolsafe", e.Analyzer)
	}
	pos := pi.Fset.Position(pi.Files[0].Pos())
	if e.File != pos.Filename {
		t.Errorf("stale entry file = %q, want %q", e.File, pos.Filename)
	}
}

// TestUnusedAllowScopedToRanAnalyzers proves a comment for a pass that was
// not enabled this run is not reported as stale: absence of evidence only
// counts when the analyzer actually looked.
func TestUnusedAllowScopedToRanAnalyzers(t *testing.T) {
	pi := analysistest.LoadCorpus(t, "testdata", "unusedallow", "go1.22")
	res, err := analysis.RunWith(pi, []*analysis.Analyzer{analysis.Determinism}, analysis.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnusedAllows) != 0 {
		t.Errorf("unused allows with poolsafe disabled = %+v, want none", res.UnusedAllows)
	}
}
