package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowPrefix introduces a suppression comment. The full form is
//
//	//aapc:allow analyzer1 analyzer2 (free-form reason)
//
// placed on the flagged line or the line directly above it. Analyzer names
// are read up to the first token that is not a registered analyzer name;
// the rest of the line is the human reason and is ignored by the machinery.
const allowPrefix = "aapc:allow"

// knownAllowNames is populated from the suite so free-text reasons are never
// mistaken for analyzer names.
var knownAllowNames = map[string]bool{}

func init() {
	for _, a := range Suite() {
		knownAllowNames[a.Name] = true
	}
}

// allowIndex maps file name -> line -> allowed analyzer name -> entry.
// Entries are shared, so marking one used through any line lookup marks
// the comment's claim used.
type allowIndex map[string]map[int]map[string]*AllowEntry

// buildAllowIndex scans every comment in the files for suppression markers.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, allowPrefix)
				names := parseAllowNames(rest)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]*AllowEntry)
					idx[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]*AllowEntry)
					lines[pos.Line] = set
				}
				for _, n := range names {
					if set[n] == nil {
						set[n] = &AllowEntry{File: pos.Filename, Line: pos.Line, Analyzer: n}
					}
				}
			}
		}
	}
	return idx
}

// parseAllowNames extracts the leading analyzer-name tokens of a suppression
// comment's tail.
func parseAllowNames(rest string) []string {
	var names []string
	for _, tok := range strings.Fields(rest) {
		if !knownAllowNames[tok] {
			break
		}
		names = append(names, tok)
	}
	return names
}

// allows reports whether a diagnostic of the named analyzer at pos is
// suppressed: an allow comment for it sits on the same line or the line
// above. A hit marks the entry used for the -unusedallow audit.
func (idx allowIndex) allows(pos token.Position, analyzer string) bool {
	lines := idx[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		if set := lines[l]; set != nil && set[analyzer] != nil {
			set[analyzer].used = true
			return true
		}
	}
	return false
}

// unused returns the entries that suppressed nothing, restricted to
// analyzers that actually ran (a comment for a pass disabled on the
// command line is not evidence of rot), sorted by (file, line, analyzer).
func (idx allowIndex) unused(ran []*Analyzer) []AllowEntry {
	ranNames := make(map[string]bool, len(ran))
	for _, a := range ran {
		ranNames[a.Name] = true
	}
	var out []AllowEntry
	for _, lines := range idx {
		for _, set := range lines {
			for _, e := range set {
				if !e.used && ranNames[e.Analyzer] {
					out = append(out, *e)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}
