package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Copycount is the static face of the zero-copy data path. A function (or
// function literal) annotated
//
//	//aapc:nocopy [reason]
//
// — the comment in a declaration's doc block, or on the line directly above
// a literal — must move payload by reference, not by value. Flagged
// constructs:
//
//   - copy(dst, src) where dst is a byte slice (the canonical payload
//     copy, whether from another slice or from a string);
//   - append(x, src...) spreading a byte slice into another (the disguised
//     copy; appending a []byte into a [][]byte batch — the borrow idiom —
//     is untouched);
//   - string <-> []byte conversions, which copy the bytes;
//   - Pack/Unpack calls on a Datatype receiver: gather/scatter through a
//     staging buffer is exactly what the typed transport paths exist to
//     avoid.
//
// Copies on cold paths — inside a conditional block that ends by leaving
// the function — are exempt, matching noalloc: overflow and error fallbacks
// are allowed to stage. Deliberate hot-path copies (the small-message
// skip-copy fast path, ring staging) are annotated //aapc:allow copycount
// with the reason.
var Copycount = &Analyzer{
	Name:       "copycount",
	Doc:        "rejects payload byte copies in functions annotated //aapc:nocopy",
	SkipTests:  true,
	NeedsFacts: true,
	Run:        runCopycount,
}

const nocopyMarker = "aapc:nocopy"

// nocopyComments returns the line numbers of every //aapc:nocopy comment in
// the file.
func nocopyComments(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, nocopyMarker) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func runCopycount(pass *Pass) error {
	for _, file := range pass.Files {
		marks := nocopyComments(pass, file)
		if len(marks) == 0 {
			continue
		}
		functionsIn(file, func(fb funcBody) {
			if !isNocopyAnnotated(pass, fb, marks) {
				return
			}
			checkCopycount(pass, fb)
		})
	}
	return nil
}

// isNocopyAnnotated matches the annotation to a function: in the doc
// comment of a declaration, or on the line directly above (or of) a
// function literal.
func isNocopyAnnotated(pass *Pass, fb funcBody, marks map[int]bool) bool {
	if fb.doc != nil {
		for _, c := range fb.doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), nocopyMarker) {
				return true
			}
		}
	}
	if _, ok := fb.node.(*ast.FuncLit); ok {
		line := pass.Fset.Position(fb.node.Pos()).Line
		return marks[line] || marks[line-1]
	}
	return false
}

// checkCopycount walks the annotated function's body, including nested
// literals, and reports payload copies on hot paths.
func checkCopycount(pass *Pass, fb funcBody) {
	ast.Inspect(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok {
			checkCopycountCall(pass, fb, call)
		}
		return true
	})
}

func checkCopycountCall(pass *Pass, fb funcBody, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "copy":
				if len(call.Args) == 2 && isByteSlice(pass.TypeOf(call.Args[0])) {
					reportCopy(pass, fb, call.Pos(), "copy moves payload bytes")
				}
			case "append":
				if call.Ellipsis.IsValid() && len(call.Args) == 2 &&
					isByteSlice(pass.TypeOf(call.Args[0])) && isByteSlice(pass.TypeOf(call.Args[1])) {
					reportCopy(pass, fb, call.Pos(), "append(x, src...) moves payload bytes")
				}
			}
			return
		}
	}
	// String <-> byte slice conversions copy their contents.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isAllocatingConversion(pass.TypeOf(call.Fun), pass.TypeOf(call.Args[0])) {
			reportCopy(pass, fb, call.Pos(), "string/byte-slice conversion moves payload bytes")
		}
		return
	}
	// Datatype gather/scatter through a staging buffer.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Pack" || sel.Sel.Name == "Unpack" {
			if isDatatypeType(pass.TypeOf(sel.X)) {
				reportCopy(pass, fb, call.Pos(), "Datatype.%s stages payload through a pack buffer", sel.Sel.Name)
				return
			}
		}
	}
	// Interprocedural: a callee whose fact says it copies this byte-slice
	// argument on its own hot path copies it here too — moving the memcpy
	// one frame down does not make the function zero-copy.
	callee := CalleeFunc(pass, call)
	if callee == nil {
		return
	}
	cf := pass.Facts.Func(FuncKey(callee))
	if cf == nil {
		return
	}
	for idx, arg := range CallArgs(pass, call, callee) {
		if p := cf.Param(idx); p != nil && p.Copied && isByteSlice(pass.TypeOf(arg)) {
			reportCopy(pass, fb, call.Pos(), "call to %s copies payload bytes on its hot path", callee.Name())
			return
		}
	}
}

// reportCopy files a diagnostic unless the position is on a cold
// (early-exit) path, where staging fallbacks are sanctioned.
func reportCopy(pass *Pass, fb funcBody, pos token.Pos, format string, args ...any) {
	if onColdPath(enclosingPath(fb.node, pos)) {
		return
	}
	pass.Reportf(pos, format+" in a //aapc:nocopy function", args...)
}

// isByteSlice reports whether t is a []byte (or named []byte).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// isDatatypeType reports whether t names a Datatype (the mpi layout
// descriptor; matched by name like poolsafe's pool detection so the corpus
// can stub it).
func isDatatypeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Datatype"
}
