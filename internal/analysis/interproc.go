package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// The summary engine: computes a FuncFact for every declared function of a
// package, iterating to a fixed point so facts flow bottom-up through the
// intra-package call graph (mutual recursion converges because every bit is
// monotone). Cross-package flow needs no iteration: the unit checker hands
// us dependency facts already complete, and Go's import graph is acyclic.
//
// The walk deliberately ignores function literals except where noted: a
// literal may run on another goroutine or after the function returns, so
// folding its effects into the enclosing function's summary would claim
// orderings (locks) and releases that never happen synchronously. Capturing
// a parameter in a literal still marks it as escaping, and consumption
// anywhere (including literals) still counts — both are suppression bits.

// maxFactIterations bounds the intra-package fixed point; facts are
// monotone, so this is a safety net, not a convergence requirement.
const maxFactIterations = 20

// ComputeFacts summarizes every function declared in pkg, seeding the
// result with imported (already stable) dependency facts.
func ComputeFacts(pkg *PackageInfo, imported *FactSet) *FactSet {
	fs := NewFactSet()
	fs.Merge(imported)

	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info, PkgPath: pkg.PkgPath}

	type fnUnit struct {
		key  string
		decl *ast.FuncDecl
	}
	var units []fnUnit
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, _ := pass.ObjectOf(decl.Name).(*types.Func)
			key := FuncKey(obj)
			if key == "" {
				continue
			}
			units = append(units, fnUnit{key: key, decl: decl})
		}
	}

	for iter := 0; iter < maxFactIterations; iter++ {
		changed := false
		for _, u := range units {
			fact := summarizeFunc(pass, fs, u.key, u.decl)
			fact.normalize()
			if prev := fs.funcs[u.key]; prev == nil || !prev.equal(fact) {
				fs.funcs[u.key] = fact
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return fs
}

// summarizeFunc computes one function's fact against the current fact
// universe.
func summarizeFunc(pass *Pass, fs *FactSet, key string, decl *ast.FuncDecl) *FuncFact {
	fact := &FuncFact{}
	params := paramObjects(pass, decl)
	if len(params) > 0 {
		// get returns the (never-retained) fact entry for a parameter
		// object; callers set one bit and drop the pointer, so the append
		// below may reallocate freely.
		get := func(obj types.Object) *ParamFact {
			idx, ok := params[obj]
			if !ok {
				return nil
			}
			for i := range fact.Params {
				if fact.Params[i].Index == idx {
					return &fact.Params[i]
				}
			}
			fact.Params = append(fact.Params, ParamFact{Index: idx})
			return &fact.Params[len(fact.Params)-1]
		}
		summarizeParams(pass, fs, decl, params, get, fact)
	}
	summarizeLocks(pass, fs, key, decl, fact)
	// Drop all-zero param entries so facts stay minimal and equal() cheap.
	kept := fact.Params[:0]
	for _, p := range fact.Params {
		if p.Releases || p.Escapes || p.Copied || p.Consumed {
			kept = append(kept, p)
		}
	}
	fact.Params = kept
	return fact
}

// paramObjects maps each parameter's object to its fact index (receiver
// included under ReceiverIndex).
func paramObjects(pass *Pass, decl *ast.FuncDecl) map[types.Object]int {
	params := make(map[types.Object]int)
	add := func(names []*ast.Ident, idx func(k int) int) {
		for k, name := range names {
			if obj := pass.ObjectOf(name); obj != nil {
				params[obj] = idx(k)
			}
		}
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		add(decl.Recv.List[0].Names, func(int) int { return ReceiverIndex })
	}
	i := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				i++ // unnamed parameter still occupies a position
				continue
			}
			base := i
			add(field.Names, func(k int) int { return base + k })
			i += n
		}
	}
	return params
}

// summarizeParams fills the per-parameter bits by one walk over the body.
func summarizeParams(pass *Pass, fs *FactSet, decl *ast.FuncDecl, params map[types.Object]int, get func(types.Object) *ParamFact, fact *FuncFact) {
	parents := buildParentsOf(decl)
	paramOf := func(e ast.Expr) types.Object {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		obj := pass.ObjectOf(root)
		if _, ok := params[obj]; !ok {
			return nil
		}
		return obj
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			summarizeCall(pass, fs, decl, params, paramOf, get, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := paramOf(res); obj != nil {
					if pf := get(obj); pf != nil {
						pf.Consumed = true
						if idx, ok := params[obj]; ok && !fact.returnsParam(idx) {
							fact.ReturnsParams = append(fact.ReturnsParams, idx)
						}
					}
				}
			}
		case *ast.Ident:
			obj := pass.ObjectOf(n)
			if _, ok := params[obj]; !ok {
				return true
			}
			if escapingUse(pass, parents, n) {
				if pf := get(obj); pf != nil {
					pf.Escapes = true
					pf.Consumed = true
				}
			} else if consumingUseWithFacts(pass, fs, parents, n) {
				if pf := get(obj); pf != nil {
					pf.Consumed = true
				}
			}
		case *ast.FuncLit:
			// A literal capturing a parameter retains it: escape. The walk
			// continues into the literal so the capture's Ident is seen, and
			// escapingUse treats uses under a FuncLit as escapes.
			return true
		}
		return true
	})
}

// summarizeCall folds one call's effect on parameter facts: releases and
// copies from direct evidence or callee facts.
func summarizeCall(pass *Pass, fs *FactSet, decl *ast.FuncDecl, params map[types.Object]int, paramOf func(ast.Expr) types.Object, get func(types.Object) *ParamFact, call *ast.CallExpr) {
	hot := !onColdPath(enclosingPath(decl, call.Pos()))

	// Direct pool release: p.put(x) / x.Release() on a parameter.
	if released, ok := isPoolRelease(pass, call); ok {
		if obj := paramOf(released); obj != nil {
			if pf := get(obj); pf != nil {
				pf.Releases = true
			}
		}
	}
	// Direct payload copies on the hot path.
	if hot {
		for _, arg := range directCopyArgs(pass, call) {
			if obj := paramOf(arg); obj != nil && isByteSlice(objType(obj)) {
				if pf := get(obj); pf != nil {
					pf.Copied = true
				}
			}
		}
	}
	// Callee facts: releases, copies, escapes propagate to our arguments.
	callee := CalleeFunc(pass, call)
	if callee == nil {
		return
	}
	cf := fs.Func(FuncKey(callee))
	if cf == nil {
		return
	}
	for idx, arg := range CallArgs(pass, call, callee) {
		obj := paramOf(arg)
		if obj == nil {
			continue
		}
		cp := cf.Param(idx)
		if cp == nil {
			continue
		}
		pf := get(obj)
		if pf == nil {
			continue
		}
		if cp.Releases {
			pf.Releases = true
		}
		if cp.Copied && hot {
			pf.Copied = true
		}
		if cp.Escapes {
			pf.Escapes = true
			pf.Consumed = true
		}
		if cp.Consumed {
			pf.Consumed = true
		}
	}
}

// directCopyArgs returns the payload-carrying argument expressions of a
// direct byte-copying construct (the same vocabulary copycount flags).
func directCopyArgs(pass *Pass, call *ast.CallExpr) []ast.Expr {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "copy":
				if len(call.Args) == 2 && isByteSlice(pass.TypeOf(call.Args[0])) {
					return call.Args
				}
			case "append":
				if call.Ellipsis.IsValid() && len(call.Args) == 2 &&
					isByteSlice(pass.TypeOf(call.Args[0])) && isByteSlice(pass.TypeOf(call.Args[1])) {
					return call.Args[1:]
				}
			}
			return nil
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isAllocatingConversion(pass.TypeOf(call.Fun), pass.TypeOf(call.Args[0])) {
			return call.Args
		}
		return nil
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Pack" || sel.Sel.Name == "Unpack") && isDatatypeType(pass.TypeOf(sel.X)) {
			return call.Args
		}
	}
	return nil
}

func objType(obj types.Object) types.Type {
	if obj == nil {
		return nil
	}
	return obj.Type()
}

// escapingUse reports whether this identifier use stores the value into
// retained state: composite literal, channel send, store through a
// selector/index/deref, assignment to a package-level variable, address-of,
// or capture by a function literal.
func escapingUse(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	// Capture: any use lexically inside a FuncLit below the declaring
	// function retains the variable beyond the current frame.
	for n := parents[id]; n != nil; n = parents[n] {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
		if _, ok := n.(*ast.FuncDecl); ok {
			break
		}
	}
	switch p := parents[id].(type) {
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs != id {
				continue
			}
			for _, lhs := range p.Lhs {
				switch l := lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					return true
				case *ast.Ident:
					if obj := pass.ObjectOf(l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
						return true
					}
				}
			}
		}
	}
	return false
}

// consumingUseWithFacts is isConsumingUse refined by callee facts: passing
// a value to a callee known not to consume that parameter is no longer a
// consumption.
func consumingUseWithFacts(pass *Pass, fs *FactSet, parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	if !isConsumingUse(pass, parents, id) {
		return false
	}
	call, ok := parents[id].(*ast.CallExpr)
	if !ok || call.Fun == id {
		return true
	}
	consumed, known := calleeConsumesArg(pass, fs, call, id)
	if !known {
		return true
	}
	return consumed
}

// calleeConsumesArg resolves whether the callee's fact says the parameter
// receiving id is consumed/escaped/released; known is false when no fact
// covers the callee or the argument position.
func calleeConsumesArg(pass *Pass, fs *FactSet, call *ast.CallExpr, id *ast.Ident) (consumed, known bool) {
	callee := CalleeFunc(pass, call)
	if callee == nil {
		return false, false
	}
	cf := fs.Func(FuncKey(callee))
	if cf == nil {
		return false, false
	}
	for idx, arg := range CallArgs(pass, call, callee) {
		if ast.Unparen(arg) != id {
			continue
		}
		cp := cf.Param(idx)
		if cp == nil {
			return false, true
		}
		return cp.Consumed || cp.Escapes || cp.Releases, true
	}
	// Argument position not covered (variadic slot): stay conservative.
	return false, false
}

// ---- lock facts ----

// lockMethods maps the sync.Mutex/RWMutex method names to (acquire?, mode).
var lockMethods = map[string]struct {
	acquire bool
	mode    string
}{
	"Lock":     {true, "w"},
	"TryLock":  {true, "w"},
	"RLock":    {true, "r"},
	"TryRLock": {true, "r"},
	"Unlock":   {false, "w"},
	"RUnlock":  {false, "r"},
}

// mutexCall matches x.Lock() / x.RUnlock() / ... where x is (or embeds) a
// sync.Mutex or sync.RWMutex, returning the mutex expression and method.
func mutexCall(pass *Pass, call *ast.CallExpr) (mx ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, "", false
	}
	if _, isLock := lockMethods[sel.Sel.Name]; !isLock {
		return nil, "", false
	}
	if isMutexType(pass.TypeOf(sel.X)) {
		return sel.X, sel.Sel.Name, true
	}
	// Embedded mutex: the selector resolves to sync.(*Mutex).Lock through
	// promotion; the lock identity is the embedding value.
	if fn, isFn := pass.ObjectOf(sel.Sel).(*types.Func); isFn && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && (n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

// lockClassOf names the lock an expression denotes, collapsing instances to
// their declaration site: a struct field becomes pkg.Type.field (or
// pkg.file:line.field when the owner type is unnamed), a package-level var
// becomes pkg.name, and a local var pkg.name@file:line. Reported cycles are
// therefore over lock *classes*; two instances of one class are one node.
func lockClassOf(pass *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	for {
		if star, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(star.X)
			continue
		}
		break
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := pass.ObjectOf(x.Sel).(*types.Var)
		if !ok || fieldObj.Pkg() == nil {
			return "", false
		}
		owner := namedTypeName(baseType(pass.TypeOf(x.X)))
		if owner == "" {
			owner = shortPos(pass.Fset.Position(fieldObj.Pos()))
		}
		return fieldObj.Pkg().Path() + "." + owner + "." + fieldObj.Name(), true
	case *ast.Ident:
		obj := pass.ObjectOf(x)
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		return obj.Pkg().Path() + "." + obj.Name() + "@" + shortPos(pass.Fset.Position(obj.Pos())), true
	case *ast.IndexExpr:
		return lockClassOf(pass, x.X)
	}
	return "", false
}

func baseType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// heldLock is one entry of the lexical held-set.
type heldLock struct {
	class string
	mode  string
	pos   token.Pos
}

// lockWalker accumulates one function's lock fact.
type lockWalker struct {
	pass *Pass
	fs   *FactSet
	fn   string
	fact *FuncFact
	seen map[string]bool // edgeKey dedup
	acq  map[LockAcq]bool
}

// summarizeLocks runs the lexical lock walk over the function body.
func summarizeLocks(pass *Pass, fs *FactSet, key string, decl *ast.FuncDecl, fact *FuncFact) {
	w := &lockWalker{pass: pass, fs: fs, fn: key, fact: fact,
		seen: make(map[string]bool), acq: make(map[LockAcq]bool)}
	w.walkStmts(decl.Body.List, &[]heldLock{})
	for a := range w.acq {
		fact.Acquires = append(fact.Acquires, a)
	}
}

// walkStmts processes a statement list in order, mutating held in place;
// branch bodies run on copies (acquisitions balanced inside a branch stay
// inside it — the lexical approximation the package doc describes).
func (w *lockWalker) walkStmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held *[]heldLock) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanCalls(s.Cond, held)
		branch := copyHeld(*held)
		w.walkStmts(s.Body.List, &branch)
		if s.Else != nil {
			els := copyHeld(*held)
			w.walkStmt(s.Else, &els)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanCalls(s.Cond, held)
		body := copyHeld(*held)
		w.walkStmts(s.Body.List, &body)
	case *ast.RangeStmt:
		w.scanCalls(s.X, held)
		body := copyHeld(*held)
		w.walkStmts(s.Body.List, &body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.scanCalls(s.Tag, held)
		w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		w.walkClauses(s.Body, held)
	case *ast.GoStmt:
		// The goroutine does not run with our locks held-ordered; its own
		// body is summarized when its function is.
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end: exactly
		// the lexical model, so nothing to do. Other deferred calls run at
		// exit with an unknown held-set; skip them.
	default:
		w.scanCalls(s, held)
	}
}

func (w *lockWalker) walkClauses(body *ast.BlockStmt, held *[]heldLock) {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.scanCalls(c.Comm, held)
			}
			stmts = c.Body
		}
		clause := copyHeld(*held)
		w.walkStmts(stmts, &clause)
	}
}

func copyHeld(h []heldLock) []heldLock {
	out := make([]heldLock, len(h))
	copy(out, h)
	return out
}

// scanCalls visits every call in the node (function literals pruned) in
// source order and applies lock transitions and callee-acquisition edges.
func (w *lockWalker) scanCalls(n ast.Node, held *[]heldLock) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.applyCall(call, held)
		return true
	})
}

func (w *lockWalker) applyCall(call *ast.CallExpr, held *[]heldLock) {
	if mx, method, ok := mutexCall(w.pass, call); ok {
		class, ok := lockClassOf(w.pass, mx)
		if !ok {
			return
		}
		m := lockMethods[method]
		if m.acquire {
			w.acq[LockAcq{Class: class, Mode: m.mode}] = true
			for _, h := range *held {
				w.addEdge(h, class, m.mode, call.Pos())
			}
			*held = append(*held, heldLock{class: class, mode: m.mode, pos: call.Pos()})
		} else {
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].class == class {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
		return
	}
	callee := CalleeFunc(w.pass, call)
	if callee == nil {
		return
	}
	cf := w.fs.Func(FuncKey(callee))
	if cf == nil || len(cf.Acquires) == 0 {
		return
	}
	for _, a := range cf.Acquires {
		w.acq[a] = true
		for _, h := range *held {
			w.addEdge(h, a.Class, a.Mode, call.Pos())
		}
	}
}

func (w *lockWalker) addEdge(h heldLock, to, toMode string, pos token.Pos) {
	e := LockEdge{
		From: h.class, FromMode: h.mode,
		To: to, ToMode: toMode,
		Fn:      w.fn,
		Pos:     shortPosOf(w.pass.Fset, pos),
		HeldPos: shortPosOf(w.pass.Fset, h.pos),
	}
	k := e.edgeKey() + "\x00" + w.fn
	if w.seen[k] {
		return
	}
	w.seen[k] = true
	w.fact.Edges = append(w.fact.Edges, e)
	if w.fs.localEdges != nil {
		if _, have := w.fs.localEdges[e.edgeKey()]; !have {
			w.fs.localEdges[e.edgeKey()] = pos
		}
	}
}

func shortPosOf(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// packageLabel shortens a lock class for diagnostics: the package path's
// last element is kept, the rest dropped.
func packageLabel(class string) string {
	slash := strings.LastIndexByte(class, '/')
	if slash < 0 {
		return class
	}
	return class[slash+1:]
}
