package analysis

import (
	"sort"
	"strings"
)

// Lockorder builds the static lock-acquisition graph of everything the
// fact universe has seen — this package plus every dependency whose facts
// were imported — and reports each cycle as a potential deadlock, with the
// acquisition sites of every edge printed.
//
// Nodes are lock *classes*: a struct field collapses every instance to one
// node (pkg.Type.field), a package-level mutex is its own node. An edge
// A -> B means some function acquires B while holding A, either directly or
// through a callee whose facts say it may acquire B. The walk is lexical
// (interproc.go): branch-local acquisitions stay in their branch,
// defer mu.Unlock() holds to function end, goroutine bodies contribute
// their own function's edges but no ordering against the spawner.
//
// A cycle among classes is the classic deadlock precondition: two
// executions can interleave so that each holds one lock of the cycle and
// waits for the next. RWMutex read acquisitions are edges too — Go's
// RWMutex blocks new readers once a writer is queued, so read-side cycles
// deadlock the same way — and the report tags each acquisition (read) or
// (write) so the distinction is visible.
//
// A cycle is reported once, in the package owning its lexically first
// local edge, anchored at that acquisition so a deliberate ordering can be
// suppressed with //aapc:allow lockorder <why both orders are safe>.
// Same-class self-cycles (A acquired while an A is held) are reported as
// recursive acquisition: with one instance that is an immediate deadlock,
// and with two it is an instance-order hazard the class graph cannot
// prove safe.
var Lockorder = &Analyzer{
	Name:       "lockorder",
	Doc:        "reports cycles in the static lock-acquisition graph as potential deadlocks",
	SkipTests:  true,
	NeedsFacts: true,
	Run:        runLockorder,
}

func runLockorder(pass *Pass) error {
	if pass.Facts == nil {
		return nil
	}
	// Collect every edge in the universe, deduplicated by (from, to, modes);
	// prefer an edge observed locally (it carries a reportable position).
	edges := make(map[string]LockEdge)
	for _, fact := range pass.Facts.funcs {
		for _, e := range fact.Edges {
			k := e.edgeKey()
			_, isLocal := pass.Facts.localEdges[k]
			if prev, ok := edges[k]; ok {
				if _, prevLocal := pass.Facts.localEdges[prev.edgeKey()]; prevLocal || !isLocal {
					continue
				}
			}
			edges[k] = e
		}
	}

	adj := make(map[string][]LockEdge)
	for _, e := range edges {
		if e.From == e.To {
			// Self-cycle: report immediately (no enumeration needed), but
			// only if observed locally.
			if pos, ok := pass.Facts.localEdges[e.edgeKey()]; ok {
				pass.Reportf(pos, "recursive acquisition: %s is locked at %s (in %s) while an instance of it is already held (at %s); same-instance recursion deadlocks immediately, cross-instance order cannot be proven",
					packageLabel(e.To), e.Pos, shortFn(e.Fn), e.HeldPos)
			}
			continue
		}
		adj[e.From] = append(adj[e.From], e)
	}
	for _, list := range adj {
		sort.Slice(list, func(i, j int) bool { return list[i].edgeKey() < list[j].edgeKey() })
	}

	// Enumerate simple cycles with a bounded DFS from each node (classes
	// per package number in the tens, cycle lengths in practice 2-3).
	const maxCycleLen = 5
	seenCycles := make(map[string]bool)
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var path []LockEdge
	onPath := make(map[string]bool)
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		if len(path) >= maxCycleLen {
			return
		}
		for _, e := range adj[cur] {
			if e.To == start {
				cycle := append(append([]LockEdge(nil), path...), e)
				reportCycle(pass, seenCycles, cycle)
				continue
			}
			if onPath[e.To] {
				continue
			}
			// Only enumerate cycles from their smallest node, so each
			// cycle is found exactly once.
			if e.To < start {
				continue
			}
			onPath[e.To] = true
			path = append(path, e)
			dfs(start, e.To)
			path = path[:len(path)-1]
			onPath[e.To] = false
		}
	}
	for _, n := range nodes {
		onPath[n] = true
		dfs(n, n)
		onPath[n] = false
	}
	return nil
}

// reportCycle emits one diagnostic per distinct cycle that includes at
// least one locally observed edge, anchored at the lexically first local
// edge.
func reportCycle(pass *Pass, seen map[string]bool, cycle []LockEdge) {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = e.edgeKey()
	}
	sort.Strings(keys)
	id := strings.Join(keys, "|")
	if seen[id] {
		return
	}
	seen[id] = true

	anchor := -1
	for i, e := range cycle {
		pos, ok := pass.Facts.localEdges[e.edgeKey()]
		if !ok {
			continue
		}
		if anchor < 0 {
			anchor = i
		} else if aPos := pass.Facts.localEdges[cycle[anchor].edgeKey()]; pos < aPos {
			anchor = i
		}
	}
	if anchor < 0 {
		return // cycle entirely in dependencies; their own run reports it
	}

	var b strings.Builder
	b.WriteString("potential deadlock: lock-order cycle ")
	b.WriteString(packageLabel(cycle[0].From))
	for _, e := range cycle {
		b.WriteString(" -> ")
		b.WriteString(packageLabel(e.To))
	}
	b.WriteString(";")
	for i, e := range cycle {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(" ")
		b.WriteString(packageLabel(e.To))
		b.WriteString(" (")
		b.WriteString(modeWord(e.ToMode))
		b.WriteString(") acquired at ")
		b.WriteString(e.Pos)
		b.WriteString(" in ")
		b.WriteString(shortFn(e.Fn))
		b.WriteString(" while holding ")
		b.WriteString(packageLabel(e.From))
		b.WriteString(" (")
		b.WriteString(modeWord(e.FromMode))
		b.WriteString(", locked at ")
		b.WriteString(e.HeldPos)
		b.WriteString(")")
	}
	pass.Reportf(pass.Facts.localEdges[cycle[anchor].edgeKey()], "%s", b.String())
}

func modeWord(m string) string {
	if m == "r" {
		return "read"
	}
	return "write"
}

// shortFn trims the package path of a qualified function key down to its
// last element.
func shortFn(fn string) string {
	if i := strings.LastIndexByte(fn, '/'); i >= 0 {
		return fn[i+1:]
	}
	return fn
}
