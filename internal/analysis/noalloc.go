package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Noalloc is the static face of the repo's allocation gates. A function (or
// function literal) annotated
//
//	//aapc:noalloc [reason]
//
// — the comment in a declaration's doc block, or on the line directly above
// a literal — is checked for constructs that allocate in the steady state:
//
//   - make, new, slice/map literals, &T{...} composites;
//   - fmt.* / errors.* calls, string concatenation and string<->[]byte
//     conversions;
//   - boxing a non-pointer-shaped value into an interface argument;
//   - go statements and escaping function literals (a literal that is only
//     assigned to a local and called directly, like a loop-body helper, is
//     allowed);
//   - append that does not grow its own slice in place
//     (x = append(x, ...) is the sanctioned amortized pattern).
//
// Allocations on cold paths — inside a conditional block that ends by
// leaving the function, the shape of error handling — are exempt: the
// runtime gates measure the success path, and so does this analyzer.
// Deliberate amortized growth (pool-miss make, chunk growth) is annotated
// //aapc:allow noalloc on the allocating line.
var Noalloc = &Analyzer{
	Name:      "noalloc",
	Doc:       "rejects allocating constructs in functions annotated //aapc:noalloc",
	SkipTests: true,
	Run:       runNoalloc,
}

const noallocMarker = "aapc:noalloc"

// noallocComments returns the line numbers of every //aapc:noalloc comment
// in the file.
func noallocComments(pass *Pass, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, noallocMarker) {
				lines[pass.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func runNoalloc(pass *Pass) error {
	for _, file := range pass.Files {
		marks := noallocComments(pass, file)
		if len(marks) == 0 {
			continue
		}
		functionsIn(file, func(fb funcBody) {
			if !isNoallocAnnotated(pass, fb, marks) {
				return
			}
			checkNoalloc(pass, fb)
		})
	}
	return nil
}

// isNoallocAnnotated matches the annotation to a function: in the doc
// comment of a declaration, or on the line directly above (or of) a
// function literal — which covers the `return func(...)` closure shape.
func isNoallocAnnotated(pass *Pass, fb funcBody, marks map[int]bool) bool {
	if fb.doc != nil {
		for _, c := range fb.doc.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), noallocMarker) {
				return true
			}
		}
	}
	if _, ok := fb.node.(*ast.FuncLit); ok {
		line := pass.Fset.Position(fb.node.Pos()).Line
		return marks[line] || marks[line-1]
	}
	return false
}

// checkNoalloc walks the annotated function's body, including nested
// helper literals, and reports allocating constructs on hot paths.
func checkNoalloc(pass *Pass, fb funcBody) {
	parents := buildParentsOf(fb.body)
	// localOnlyLits are function literals assigned to a local variable
	// whose every use is a direct call — the compiler keeps those on the
	// stack, so they are allowed and their bodies are still checked.
	localOnlyLits := map[*ast.FuncLit]bool{}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		lit, ok := asg.Rhs[0].(*ast.FuncLit)
		if !ok {
			return true
		}
		id, ok := asg.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.ObjectOf(id); obj != nil && onlyCalled(pass, fb.body, obj, id) {
			localOnlyLits[lit] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == fb.node {
				return true
			}
			if !localOnlyLits[n] && !noallocCold(pass, fb, n.Pos()) {
				pass.Reportf(n.Pos(), "function literal may escape and allocate in a //aapc:noalloc function")
			}
			return true // still check the literal's body
		case *ast.GoStmt:
			report(pass, fb, n.Pos(), "go statement allocates a goroutine")
			return true
		case *ast.CallExpr:
			checkNoallocCall(pass, fb, parents, n)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(pass, fb, n.Pos(), "&composite literal allocates")
				}
			}
			return true
		case *ast.CompositeLit:
			checkCompositeLit(pass, fb, n)
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypeOf(n); t != nil && isStringType(t) {
					report(pass, fb, n.Pos(), "string concatenation allocates")
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(fb.body, walk)
}

// report files a diagnostic unless the position is on a cold (early-exit)
// path.
func report(pass *Pass, fb funcBody, pos token.Pos, format string, args ...any) {
	if noallocCold(pass, fb, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

func noallocCold(pass *Pass, fb funcBody, pos token.Pos) bool {
	return onColdPath(enclosingPath(fb.node, pos))
}

// onlyCalled reports whether every use of obj within scope is as the
// function of a call.
func onlyCalled(pass *Pass, scope ast.Node, obj types.Object, def *ast.Ident) bool {
	ok := true
	ast.Inspect(scope, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if isCall {
			if id, isID := call.Fun.(*ast.Ident); isID && pass.ObjectOf(id) == obj {
				// Direct call: skip the Fun child so the generic ident
				// check below doesn't see it; args still inspected.
				for _, a := range call.Args {
					ast.Inspect(a, func(m ast.Node) bool {
						if id, isID := m.(*ast.Ident); isID && id != def && pass.ObjectOf(id) == obj {
							ok = false
						}
						return ok
					})
				}
				return false
			}
		}
		if id, isID := n.(*ast.Ident); isID && id != def && pass.ObjectOf(id) == obj {
			ok = false
		}
		return ok
	})
	return ok
}

func checkNoallocCall(pass *Pass, fb funcBody, parents map[ast.Node]ast.Node, call *ast.CallExpr) {
	// Builtins and conversions.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if b, ok := pass.ObjectOf(fun).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(pass, fb, call.Pos(), "make allocates")
				return
			case "new":
				report(pass, fb, call.Pos(), "new allocates")
				return
			case "append":
				if !isSelfAppend(pass, parents, call) {
					report(pass, fb, call.Pos(), "append outside the x = append(x, ...) self-growth pattern allocates")
				}
				return
			}
		}
	}
	// String <-> byte/rune conversions.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := pass.TypeOf(call.Fun), pass.TypeOf(call.Args[0])
		if isAllocatingConversion(to, from) {
			report(pass, fb, call.Pos(), "conversion between string and byte/rune slice allocates")
		}
		return
	}
	// Calls into always-allocating packages.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "fmt", "errors":
				report(pass, fb, call.Pos(), "%s.%s allocates", fn.Pkg().Name(), fn.Name())
				return
			}
		}
	}
	// Interface boxing of arguments.
	checkBoxing(pass, fb, call)
}

// isSelfAppend recognizes the sanctioned amortized pattern
// x = append(x, ...), including field and index targets
// (b.iovecs = append(b.iovecs, ...)).
func isSelfAppend(pass *Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	asg, ok := parents[call].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
		return false
	}
	lhs, arg := asg.Lhs[0], call.Args[0]
	if types.ExprString(lhs) != types.ExprString(arg) {
		return false
	}
	lr, ar := rootIdent(lhs), rootIdent(arg)
	return lr != nil && ar != nil && pass.ObjectOf(lr) == pass.ObjectOf(ar)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isAllocatingConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toStr, fromStr := isStringType(to), isStringType(from)
	toSlice := isByteOrRuneSlice(to)
	fromSlice := isByteOrRuneSlice(from)
	return (toStr && fromSlice) || (toSlice && fromStr)
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// checkBoxing flags arguments whose concrete, non-pointer-shaped value is
// implicitly converted to an interface parameter — the hidden allocation
// behind fmt-style APIs.
func checkBoxing(pass *Pass, fb funcBody, call *ast.CallExpr) {
	sigT := pass.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				return
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue // interface to interface: no box
		}
		if isPointerShaped(at) {
			continue // pointers box without allocating
		}
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
			continue // untyped constants often intern (and signal intent)
		}
		report(pass, fb, arg.Pos(), "boxing %s into an interface argument allocates", at.String())
	}
}

func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func checkCompositeLit(pass *Pass, fb funcBody, lit *ast.CompositeLit) {
	t := pass.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		report(pass, fb, lit.Pos(), "slice literal allocates")
	case *types.Map:
		report(pass, fb, lit.Pos(), "map literal allocates")
	}
	// Struct/array literals are values; they only allocate via &T{...},
	// which is flagged where the address is taken.
}
