package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the packages whose tests and tooling assume
// bit-identical replays: the simulator (the rate-engine oracle test replays
// the same run through two solvers and demands 1e-9 agreement), the
// schedule builders (greedy construction must be reproducible for the
// committed benchmark schedules), and the experiment harness (parallel and
// serial runs must produce identical reports). In those packages the
// analyzer forbids, outside _test.go files:
//
//   - wall-clock reads (time.Now, time.Since, time.After, time.Tick):
//     simulated time comes from the engine's virtual clock;
//   - the global math/rand source (package-level rand.Intn etc.): all
//     randomness must flow through a seeded *rand.Rand;
//   - ranging over a map: iteration order varies run to run, so anything
//     emitted from such a loop (events, completions, appends) reorders;
//   - spawning goroutines: concurrency is only deterministic when results
//     are keyed, which the analyzer cannot prove — the spawn site must be
//     annotated //aapc:allow determinism with the keying argument.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbids wall clocks, global rand, map iteration, and goroutine spawn in replay-sensitive packages",
	SkipTests: true,
	AppliesTo: determinismScoped,
	Run:       runDeterminism,
}

// determinismScope lists the replay-sensitive packages. Matching accepts
// both full import paths (the unitchecker) and bare directory names (the
// test corpus).
var determinismScope = []string{"simnet", "schedule", "harness"}

func determinismScoped(pkgPath string) bool {
	base := pkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	for _, s := range determinismScope {
		if base == s {
			return true
		}
	}
	return false
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic in a replay-sensitive package; iterate sorted keys or an indexed structure")
					}
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine spawn in a replay-sensitive package; results must be keyed deterministically (annotate //aapc:allow determinism with the keying)")
			}
			return true
		})
	}
	return nil
}

func checkBannedCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on a seeded *rand.Rand are the
	// sanctioned source of randomness.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a replay-sensitive package; use the engine's virtual clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(),
			"global %s.%s is shared, unseeded randomness; thread a seeded *rand.Rand instead", pathBase(fn.Pkg().Path()), fn.Name())
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
