package analysis

import (
	"go/ast"
	"go/types"
)

// Copylocks reports copies of values whose type transitively contains a
// synchronization primitive (anything defined in package sync or
// sync/atomic): value receivers, by-value arguments, assignments from an
// existing value, by-value range variables, and by-value returns. The tcp
// transport and the simulator both embed mutexes and atomics in long-lived
// structs; copying one forks its lock state silently.
var Copylocks = &Analyzer{
	Name: "copylocks",
	Doc:  "reports by-value copies of types containing sync primitives",
	Run:  runCopylocks,
}

// containsLock reports whether a value of type t embeds a sync primitive by
// value. seen guards recursive types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync", "sync/atomic":
				// sync.Locker et al. are interfaces — copying an interface
				// value is fine; every struct in sync/atomic is a no-copy.
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					return true
				}
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockish(t types.Type) bool {
	return containsLock(t, map[types.Type]bool{})
}

// copiesValue reports whether the expression denotes an existing value
// (rather than a freshly constructed one), so assigning or passing it
// copies.
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

func runCopylocks(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, f := range n.Recv.List {
						if t := pass.TypeOf(f.Type); t != nil && !isPointer(t) && lockish(t) {
							pass.Reportf(f.Type.Pos(), "value receiver copies lock: %s contains a sync primitive; use a pointer receiver", types.TypeString(t, types.RelativeTo(pass.Pkg)))
						}
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) && len(n.Rhs) != 1 {
						break
					}
					if !copiesValue(rhs) {
						continue
					}
					if t := pass.TypeOf(rhs); t != nil && !isPointer(t) && lockish(t) {
						pass.Reportf(rhs.Pos(), "assignment copies lock value: %s contains a sync primitive", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if !copiesValue(arg) {
						continue
					}
					if t := pass.TypeOf(arg); t != nil && !isPointer(t) && lockish(t) {
						pass.Reportf(arg.Pos(), "call passes lock by value: %s contains a sync primitive", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypeOf(n.Value); t != nil && !isPointer(t) && lockish(t) {
						pass.Reportf(n.Value.Pos(), "range copies lock value: %s contains a sync primitive; range over indices", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if !copiesValue(res) {
						continue
					}
					if t := pass.TypeOf(res); t != nil && !isPointer(t) && lockish(t) {
						pass.Reportf(res.Pos(), "return copies lock value: %s contains a sync primitive", types.TypeString(t, types.RelativeTo(pass.Pkg)))
					}
				}
			}
			return true
		})
	}
	return nil
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
