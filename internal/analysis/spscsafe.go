package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Spscsafe enforces the shm ring discipline on types annotated //aapc:spsc:
// lock-free single-producer single-consumer structures whose whole
// correctness argument is "each cursor has exactly one writer and every
// cross-party access is an atomic with the right ordering". The compiler
// checks none of that; this pass checks the statically checkable half.
//
// Annotations:
//
//	//aapc:spsc                    on the type declaration
//	//aapc:cursor producer         on the producer-owned cursor field
//	//aapc:cursor consumer         on the consumer-owned cursor field
//	//aapc:role producer|consumer  on each method that mutates a cursor
//
// Rules:
//
//  1. Cursor fields are touched only through sync/atomic: the field passed
//     directly (pointer-typed cursors) or by address (word-typed cursors)
//     to an atomic call, or set in a composite literal during construction.
//     A plain read of an atomically-written word is a data race even when
//     it "only polls" — the compiler may tear, cache, or hoist it.
//  2. Atomic *writes* to a cursor happen only in methods of the annotated
//     type that carry an //aapc:role matching the cursor's owner. The
//     consumer storing tail (or any unannotated helper storing either
//     cursor) breaks the single-writer invariant the ring depends on.
//  3. A method annotated with one role never calls a method annotated with
//     the other: a producer that pops records is two parties on one end.
//
// Reads are unrestricted (the producer legitimately loads head to compute
// free space); role separation binds writers only.
var Spscsafe = &Analyzer{
	Name: "spscsafe",
	Doc:  "enforces atomic access and producer/consumer role separation on //aapc:spsc ring types",
	Run:  runSpscsafe,
}

// cursorInfo is one annotated cursor field.
type cursorInfo struct {
	role     string // "producer" or "consumer"
	typeName string
}

func runSpscsafe(pass *Pass) error {
	cursors := make(map[types.Object]cursorInfo)
	spscTypes := make(map[types.Object]bool)
	collectSpscTypes(pass, cursors, spscTypes)
	if len(spscTypes) == 0 {
		return nil
	}
	roles := methodRoles(pass, spscTypes)

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkSpscFunc(pass, decl, cursors, spscTypes, roles)
		}
	}
	return nil
}

// collectSpscTypes finds //aapc:spsc struct types and their annotated
// cursor fields.
func collectSpscTypes(pass *Pass, cursors map[types.Object]cursorInfo, spscTypes map[types.Object]bool) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gen, ok := d.(*ast.GenDecl)
			if !ok || gen.Tok != token.TYPE {
				continue
			}
			for _, spec := range gen.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker("aapc:spsc", gen.Doc, ts.Doc, ts.Comment) {
					continue
				}
				obj := pass.ObjectOf(ts.Name)
				if obj == nil {
					continue
				}
				spscTypes[obj] = true
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					role, ok := markerArg("aapc:cursor", field.Doc, field.Comment)
					if !ok {
						continue
					}
					if role != "producer" && role != "consumer" {
						pass.Reportf(field.Pos(), "//aapc:cursor role must be producer or consumer, got %q", role)
						continue
					}
					for _, name := range field.Names {
						if fobj := pass.ObjectOf(name); fobj != nil {
							cursors[fobj] = cursorInfo{role: role, typeName: obj.Name()}
						}
					}
				}
			}
		}
	}
}

// methodRoles maps each role-annotated method (by its object) of an spsc
// type to its declared role.
func methodRoles(pass *Pass, spscTypes map[types.Object]bool) map[types.Object]string {
	roles := make(map[types.Object]string)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Recv == nil {
				continue
			}
			role, ok := markerArg("aapc:role", decl.Doc)
			if !ok {
				continue
			}
			if role != "producer" && role != "consumer" {
				pass.Reportf(decl.Pos(), "//aapc:role must be producer or consumer, got %q", role)
				continue
			}
			if !recvIsSpsc(pass, decl, spscTypes) {
				pass.Reportf(decl.Pos(), "//aapc:role on a method whose receiver is not an //aapc:spsc type")
				continue
			}
			if obj := pass.ObjectOf(decl.Name); obj != nil {
				roles[obj] = role
			}
		}
	}
	return roles
}

func recvIsSpsc(pass *Pass, decl *ast.FuncDecl, spscTypes map[types.Object]bool) bool {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return false
	}
	t := pass.TypeOf(decl.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return spscTypes[n.Obj()]
	}
	return false
}

// checkSpscFunc checks every cursor access and cross-role call inside one
// function.
func checkSpscFunc(pass *Pass, decl *ast.FuncDecl, cursors map[types.Object]cursorInfo, spscTypes map[types.Object]bool, roles map[types.Object]string) {
	var fnRole string
	var fnIsMethod bool
	if obj := pass.ObjectOf(decl.Name); obj != nil {
		fnRole = roles[obj]
	}
	fnIsMethod = recvIsSpsc(pass, decl, spscTypes)

	parents := buildParentsOf(decl)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fobj := pass.ObjectOf(n.Sel)
			info, isCursor := cursors[fobj]
			if !isCursor {
				return true
			}
			checkCursorAccess(pass, parents, decl, n, info, fnRole, fnIsMethod)
		case *ast.CallExpr:
			callee := CalleeFunc(pass, n)
			if callee == nil {
				return true
			}
			calleeRole, ok := roles[types.Object(callee)]
			if !ok || fnRole == "" || calleeRole == fnRole {
				return true
			}
			pass.Reportf(n.Pos(), "%s-role method calls %s-role method %s: producer and consumer ends must stay separate",
				fnRole, calleeRole, callee.Name())
		}
		return true
	})
}

// checkCursorAccess classifies one selector access to a cursor field.
func checkCursorAccess(pass *Pass, parents map[ast.Node]ast.Node, decl *ast.FuncDecl, sel *ast.SelectorExpr, info cursorInfo, fnRole string, fnIsMethod bool) {
	field := info.typeName + "." + sel.Sel.Name
	parent := skipParens(parents, sel)
	switch p := parent.(type) {
	case *ast.CallExpr:
		// Pointer-typed cursor handed straight to sync/atomic.
		kind := atomicCallKind(pass, p)
		if kind == atomicNone {
			pass.Reportf(sel.Pos(), "cursor %s passed to a non-atomic call: cursors may only reach sync/atomic", field)
			return
		}
		if kind == atomicWrite {
			checkCursorWrite(pass, sel, info, field, fnRole, fnIsMethod)
		}
	case *ast.UnaryExpr:
		// Word-typed cursor: &s.cursor is legal only as an atomic argument.
		if p.Op != token.AND {
			pass.Reportf(sel.Pos(), "plain read of cursor %s: use sync/atomic (the compiler may tear or cache a plain load)", field)
			return
		}
		call, ok := skipParens(parents, p).(*ast.CallExpr)
		if !ok {
			pass.Reportf(sel.Pos(), "address of cursor %s escapes outside sync/atomic", field)
			return
		}
		kind := atomicCallKind(pass, call)
		if kind == atomicNone {
			pass.Reportf(sel.Pos(), "address of cursor %s passed to a non-atomic call", field)
			return
		}
		if kind == atomicWrite {
			checkCursorWrite(pass, sel, info, field, fnRole, fnIsMethod)
		}
	case *ast.StarExpr:
		// *r.cursor — plain access through the pointer.
		if isAssignTarget(parents, p) {
			pass.Reportf(sel.Pos(), "plain write of cursor %s: use sync/atomic store", field)
		} else {
			pass.Reportf(sel.Pos(), "plain read of cursor %s: use sync/atomic (the compiler may tear or cache a plain load)", field)
		}
	case *ast.KeyValueExpr:
		// Construction: Ring{tail: ...}. (Keyed literals use a bare Ident
		// key, so this arm only fires for nested selector values, which are
		// reads — but a read feeding a composite literal escapes.)
		pass.Reportf(sel.Pos(), "cursor %s stored into a composite literal outside construction", field)
	case *ast.AssignStmt:
		if isAssignTargetIn(p, sel) {
			pass.Reportf(sel.Pos(), "plain write of cursor %s: use sync/atomic store", field)
		} else {
			pass.Reportf(sel.Pos(), "cursor %s copied out by plain read: use sync/atomic", field)
		}
	case *ast.IncDecStmt:
		pass.Reportf(sel.Pos(), "plain write of cursor %s: use sync/atomic store", field)
	default:
		pass.Reportf(sel.Pos(), "plain read of cursor %s: use sync/atomic (the compiler may tear or cache a plain load)", field)
	}
}

// checkCursorWrite enforces single-writer role separation on an atomic
// store to a cursor.
func checkCursorWrite(pass *Pass, sel *ast.SelectorExpr, info cursorInfo, field, fnRole string, fnIsMethod bool) {
	switch {
	case !fnIsMethod:
		pass.Reportf(sel.Pos(), "cursor %s written outside a method of its //aapc:spsc type", field)
	case fnRole == "":
		pass.Reportf(sel.Pos(), "cursor %s written in a method without an //aapc:role annotation", field)
	case fnRole != info.role:
		pass.Reportf(sel.Pos(), "%s-role method writes %s-owned cursor %s: each cursor has exactly one writing party",
			fnRole, info.role, field)
	}
}

const (
	atomicNone = iota
	atomicRead
	atomicWrite
)

// atomicCallKind classifies a call as a sync/atomic read, write, or neither.
// Read-modify-write operations (Add, Swap, CompareAndSwap) count as writes.
func atomicCallKind(pass *Pass, call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return atomicNone
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return atomicNone
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Load"):
		return atomicRead
	case strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Add"),
		strings.HasPrefix(name, "Swap"), strings.HasPrefix(name, "CompareAndSwap"):
		return atomicWrite
	}
	return atomicNone
}

// skipParens returns the nearest non-paren ancestor.
func skipParens(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	p := parents[n]
	for {
		paren, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = parents[paren]
	}
}

// isAssignTarget reports whether n appears on the left side of its
// enclosing assignment.
func isAssignTarget(parents map[ast.Node]ast.Node, n ast.Node) bool {
	assign, ok := parents[n].(*ast.AssignStmt)
	if !ok {
		return false
	}
	return isAssignTargetIn(assign, n)
}

func isAssignTargetIn(assign *ast.AssignStmt, n ast.Node) bool {
	for _, lhs := range assign.Lhs {
		if ast.Unparen(lhs) == n {
			return true
		}
	}
	return false
}

// hasMarker reports whether any of the comment groups contains the marker
// as a whole comment line.
func hasMarker(marker string, groups ...*ast.CommentGroup) bool {
	_, ok := markerLine(marker, groups)
	return ok
}

// markerArg returns the first whitespace-separated argument after the
// marker ("producer" in "//aapc:cursor producer").
func markerArg(marker string, groups ...*ast.CommentGroup) (string, bool) {
	rest, ok := markerLine(marker, groups)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

func markerLine(marker string, groups []*ast.CommentGroup) (string, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == marker {
				return "", true
			}
			if strings.HasPrefix(text, marker+" ") {
				return strings.TrimPrefix(text, marker+" "), true
			}
		}
	}
	return "", false
}
