// Package analysis is the repo's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// model (Analyzer, Pass, Diagnostic) plus the project-specific analyzers
// that enforce invariants the runtime gates can only sample:
//
//   - poolsafe: pooled payloads must not be used after release;
//   - determinism: replay-sensitive packages must not consult wall clocks,
//     global randomness, or map iteration order;
//   - waitcheck: every request returned by Isend/Irecv must reach a Wait on
//     every path, including error paths;
//   - noalloc: functions annotated //aapc:noalloc must not contain
//     allocating constructs outside cold (early-exit) paths;
//
// together with lightweight ports of the stock vet passes the repo does not
// get by default (shadow, copylocks, loopclosure).
//
// The framework is built on the standard library's go/ast and go/types
// only. The build environment pins no external modules, so rather than
// depending on golang.org/x/tools this package re-derives the two pieces it
// needs: the analyzer/pass model (this file) and the `go vet -vettool`
// unit-checker protocol (unitchecker.go).
//
// Findings are suppressed with a comment on the flagged line or the line
// above it:
//
//	//aapc:allow <analyzer>... [reason]
//
// The reason is free text; the convention is to state why the invariant
// holds anyway (e.g. "results are keyed by job index").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	// Suppressed marks findings silenced by an //aapc:allow comment; they
	// are dropped from human output but survive into -json.
	Suppressed bool
}

// Analyzer is one named pass over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier: flag name, suppression token, and
	// diagnostic tag.
	Name string
	// Doc is the one-line description shown in usage output.
	Doc string
	// SkipTests excludes _test.go files from the pass (used by analyzers
	// whose invariants only bind production code, like determinism).
	SkipTests bool
	// AppliesTo, when non-nil, restricts the pass to packages for which it
	// returns true (matched against the package's import path).
	AppliesTo func(pkgPath string) bool
	// NeedsFacts marks analyzers that consult interprocedural summaries;
	// the runner computes (or imports) facts only when one is enabled.
	NeedsFacts bool
	// Run reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees. When the analyzer sets
	// SkipTests, _test.go files are already filtered out.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// PkgPath is the import path the package was loaded under.
	PkgPath string
	// GoVersion is the module's language version ("go1.22"); version-gated
	// analyzers (loopclosure) consult it.
	GoVersion string
	// Facts is the interprocedural fact universe: summaries for every
	// function of this package plus everything imported from dependencies.
	// Nil when no enabled analyzer declared NeedsFacts.
	Facts *FactSet

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PackageInfo is a loaded, type-checked package handed to the runner by a
// front end (the unitchecker or the test harness).
type PackageInfo struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	PkgPath   string
	GoVersion string
}

// NewTypesInfo returns a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// isTestFile reports whether the file's name has the _test.go suffix.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}

// AllowEntry is one analyzer name claimed by an //aapc:allow comment,
// together with whether it suppressed anything during the run.
type AllowEntry struct {
	File     string
	Line     int
	Analyzer string
	used     bool
}

// Result is the full outcome of a run: every diagnostic (suppressed ones
// flagged, all sorted by file/line/column/analyzer) plus the allow entries
// that suppressed nothing — the raw material of the -unusedallow audit.
type Result struct {
	Diags        []Diagnostic
	UnusedAllows []AllowEntry
	// Facts holds the summaries computed for this package (imported ones
	// included), for export through the vetx channel. Nil when facts were
	// not needed.
	Facts *FactSet
}

// RunConfig tunes a run.
type RunConfig struct {
	// Imported seeds the fact engine with dependency summaries.
	Imported *FactSet
	// NoFacts disables the fact engine even for NeedsFacts analyzers,
	// reducing them to their legacy function-local behavior (used by the
	// test suite to prove what the block-scoped passes miss).
	NoFacts bool
}

// Run executes the analyzers over the package and returns the surviving
// diagnostics, suppressed findings dropped. Facts are computed
// automatically when an enabled analyzer needs them.
func Run(pkg *PackageInfo, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunWith(pkg, analyzers, RunConfig{})
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, d := range res.Diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// RunWith executes the analyzers and returns the full Result.
func RunWith(pkg *PackageInfo, analyzers []*Analyzer, cfg RunConfig) (*Result, error) {
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	res := &Result{}

	needFacts := false
	for _, a := range analyzers {
		if a.NeedsFacts && (a.AppliesTo == nil || a.AppliesTo(pkg.PkgPath)) {
			needFacts = true
		}
	}
	var facts *FactSet
	if needFacts && !cfg.NoFacts {
		facts = ComputeFacts(pkg, cfg.Imported)
		res.Facts = facts
	}

	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.PkgPath) {
			continue
		}
		files := pkg.Files
		if a.SkipTests {
			files = nil
			for _, f := range pkg.Files {
				if !isTestFile(pkg.Fset, f) {
					files = append(files, f)
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Pkg,
			Info:      pkg.Info,
			PkgPath:   pkg.PkgPath,
			GoVersion: pkg.GoVersion,
			Facts:     facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			d.Suppressed = allow.allows(pkg.Fset.Position(d.Pos), a.Name)
			res.Diags = append(res.Diags, d)
		}
	}

	// Byte-stable output order regardless of analyzer registration or file
	// load order: (file, line, column, analyzer, message).
	sort.Slice(res.Diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(res.Diags[i].Pos), pkg.Fset.Position(res.Diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if res.Diags[i].Analyzer != res.Diags[j].Analyzer {
			return res.Diags[i].Analyzer < res.Diags[j].Analyzer
		}
		return res.Diags[i].Message < res.Diags[j].Message
	})

	res.UnusedAllows = allow.unused(analyzers)
	return res, nil
}
