package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow is a conservative port of the x/tools shadow pass: it reports a
// short variable declaration that redeclares a name from an enclosing
// function scope when the shadow is likely to bite — the types are
// identical (so a misspelled `=` vs `:=` compiles silently) and the outer
// variable is still used after the inner scope ends.
//
// Two idiomatic shapes the stock pass drowns in are deliberately exempt:
//
//   - the guard clause `if err := f(); err != nil { ... }` (and for/switch
//     init statements), where the inner value is consumed inside the guard;
//   - multi-name declarations like `n, err := f()` that introduce at least
//     one genuinely new variable, where := was the only way to write it.
//
// What remains is the lost-error shape: a plain block-level `err := f()`
// whose result the author believed updated the outer err.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "reports shadowed variables whose outer binding is used after the shadow's scope",
	Run:  runShadow,
}

func runShadow(pass *Pass) error {
	// span of each object: the extent of its uses.
	spans := map[types.Object]token.Pos{}
	grow := func(obj types.Object, pos token.Pos) {
		if obj == nil {
			return
		}
		if end, ok := spans[obj]; !ok || pos > end {
			spans[obj] = pos
		}
	}
	for id, obj := range pass.Info.Uses {
		grow(obj, id.End())
	}
	for id, obj := range pass.Info.Defs {
		grow(obj, id.End())
	}

	for _, file := range pass.Files {
		parents := buildParentsOf(file)
		ast.Inspect(file, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || asg.Tok != token.DEFINE {
				return true
			}
			if isInitClause(parents, asg) {
				return true
			}
			var defs []*ast.Ident
			for _, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if pass.Info.Defs[id] != nil {
					defs = append(defs, id)
				}
			}
			// If the statement introduces more names than it shadows, the :=
			// was required and the shadow is the standard idiom.
			shadowing := 0
			for _, id := range defs {
				if shadowsOuter(pass, pass.Info.Defs[id], id) {
					shadowing++
				}
			}
			if shadowing == 0 || shadowing < len(defs) {
				return true
			}
			for _, id := range defs {
				checkShadow(pass, spans, id, pass.Info.Defs[id])
			}
			return true
		})
	}
	return nil
}

// isInitClause reports whether asg is the init statement of an
// if/for/switch, or the receive of a select case — the guard-clause idioms
// whose inner value is consumed within the clause.
func isInitClause(parents map[ast.Node]ast.Node, asg *ast.AssignStmt) bool {
	switch p := parents[asg].(type) {
	case *ast.IfStmt:
		return p.Init == ast.Stmt(asg)
	case *ast.ForStmt:
		return p.Init == ast.Stmt(asg)
	case *ast.SwitchStmt:
		return p.Init == ast.Stmt(asg)
	case *ast.TypeSwitchStmt:
		return p.Init == ast.Stmt(asg)
	case *ast.CommClause:
		return p.Comm == ast.Stmt(asg)
	}
	return false
}

// shadowsOuter reports whether the definition redeclares a same-typed
// function-scoped variable from an enclosing scope.
func shadowsOuter(pass *Pass, obj types.Object, id *ast.Ident) bool {
	inner := obj.Parent()
	if inner == nil || inner.Parent() == nil {
		return false
	}
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok {
		return false
	}
	outerScope := outer.Parent()
	if outerScope == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
		return false
	}
	return types.Identical(obj.Type(), outer.Type())
}

func checkShadow(pass *Pass, spans map[types.Object]token.Pos, id *ast.Ident, obj types.Object) {
	inner := obj.Parent()
	if inner == nil || inner.Parent() == nil {
		return
	}
	_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
	outer, ok := outerObj.(*types.Var)
	if !ok {
		return
	}
	outerScope := outer.Parent()
	if outerScope == nil || outerScope == types.Universe || outerScope == pass.Pkg.Scope() {
		return // package-level and universe shadows are deliberate style here
	}
	if !types.Identical(obj.Type(), outer.Type()) {
		return // different types: := was the only way to write it
	}
	// Only report when the outer variable is used after the inner scope
	// closes — otherwise the shadow cannot change behavior.
	if spans[outer] <= inner.End() {
		return
	}
	pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is used after this scope",
		id.Name, pass.Fset.Position(outer.Pos()).Line)
}
