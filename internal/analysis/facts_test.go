package analysis

import (
	"bytes"
	"testing"
)

// TestFactsRoundTrip proves the vetx payload survives encode/decode with
// nothing lost: the serialized form is the cross-package contract.
func TestFactsRoundTrip(t *testing.T) {
	fs := NewFactSet()
	fs.funcs["pkg.helper"] = &FuncFact{
		Params: []ParamFact{
			{Index: ReceiverIndex, Releases: true},
			{Index: 1, Copied: true, Consumed: true},
		},
		ReturnsParams: []int{0},
		Acquires:      []LockAcq{{Class: "pkg.mu", Mode: "w"}},
		Edges: []LockEdge{{
			From: "pkg.mu", FromMode: "w", To: "pkg.T.mu", ToMode: "r",
			Fn: "pkg.helper", Pos: "a.go:10", HeldPos: "a.go:8",
		}},
	}
	fs.funcs["pkg.T.method"] = &FuncFact{
		Params: []ParamFact{{Index: 0, Escapes: true}},
	}

	data, err := fs.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, ok, err := DecodeFacts(data)
	if err != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, err)
	}
	for key, want := range fs.funcs {
		g := got.Func(key)
		if g == nil {
			t.Fatalf("decoded facts lost %q", key)
		}
		if !g.equal(want) {
			t.Errorf("fact %q changed across the round trip: %+v != %+v", key, g, want)
		}
	}
	if g := got.Func("pkg.helper"); !g.Param(ReceiverIndex).Releases || !g.returnsParam(0) {
		t.Errorf("accessor mismatch after decode: %+v", g)
	}

	// Byte stability: encoding twice yields identical bytes (cmd/go caches
	// the payload; a nondeterministic file would thrash the vet cache).
	again, _ := fs.Encode()
	if !bytes.Equal(data, again) {
		t.Errorf("Encode is not deterministic")
	}
}

// TestDecodeFactsRejectsMarker proves foreign vetx payloads (the pre-facts
// marker, other tools' files) are skipped, not fatal.
func TestDecodeFactsRejectsMarker(t *testing.T) {
	for _, payload := range [][]byte{
		vetxMarker,
		[]byte(""),
		[]byte("something else entirely"),
	} {
		if _, ok, err := DecodeFacts(payload); ok || err != nil {
			t.Errorf("DecodeFacts(%q) = ok=%v err=%v, want ok=false err=nil", payload, ok, err)
		}
	}
	// A truncated facts file is an error, not silence: it means cache
	// corruption, and pretending it is empty would hide real findings.
	if _, ok, err := DecodeFacts([]byte(factsMagic + "{bad")); !ok || err == nil {
		t.Errorf("corrupt facts file: ok=%v err=%v, want ok=true with error", ok, err)
	}
}
