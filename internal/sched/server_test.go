package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// testCluster is two switches with three machines each.
func testCluster(t testing.TB) *topology.Graph {
	t.Helper()
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnect(s0, s1)
	for i := 0; i < 6; i++ {
		sw := s0
		if i >= 3 {
			sw = s1
		}
		g.MustConnect(sw, g.MustAddMachine(fmt.Sprintf("n%d", i)))
	}
	return g.MustValidate()
}

// newTestDaemon spins up a daemon and an httptest server around it.
func newTestDaemon(t testing.TB, opts Options) (*Daemon, *httptest.Server, *Client) {
	t.Helper()
	if opts.Graph == nil {
		opts.Graph = testCluster(t)
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(d, opts.Registry))
	t.Cleanup(srv.Close)
	return d, srv, NewClient(srv.URL, srv.Client())
}

func TestScheduleEndpointServesVerifiedSchedules(t *testing.T) {
	d, _, cl := newTestDaemon(t, Options{})
	ctx := context.Background()
	for _, alg := range []string{AlgOurs, AlgGreedy, AlgAuto} {
		resp, err := cl.Schedule(ctx, alg, 64<<10, true, "")
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if resp.Alg != alg || resp.NumRanks != 6 || resp.Version != 1 {
			t.Errorf("%s: bad echo: %+v", alg, resp)
		}
		if resp.Class != string(ClassMedium) || resp.SyncMode != "pairwise" {
			t.Errorf("%s: class/sync advice: %q/%q", alg, resp.Class, resp.SyncMode)
		}
		if resp.TopoHash != d.Store().Current().Hash {
			t.Errorf("%s: hash mismatch", alg)
		}
		s := resp.ToSchedule()
		g := d.Store().Current().Graph
		var verr error
		if alg == AlgRing || alg == AlgAuto {
			verr = schedule.VerifyCapacity(g, s)
		} else {
			verr = schedule.Verify(g, s, alg == AlgOurs)
		}
		if verr != nil {
			t.Errorf("%s: served schedule invalid: %v", alg, verr)
		}
		if len(resp.Syncs) == 0 && alg == AlgOurs {
			t.Errorf("%s: requested syncs but got none", alg)
		}
		if plan := resp.ToPlan(); alg == AlgOurs && plan.NumSyncs() != len(resp.Syncs) {
			t.Errorf("%s: plan round-trip lost syncs", alg)
		}
	}
}

// TestRingServedOnlyWhenCapacityValid: the ring schedule ignores switch
// structure, so on a uniform cluster its permutation phases oversubscribe
// the trunk and the daemon must refuse it (422) rather than serve an
// oversubscribed schedule. On a fast-trunk cluster the same request is
// served and capacity-verified.
func TestRingServedOnlyWhenCapacityValid(t *testing.T) {
	ctx := context.Background()

	// Uniform trunk: infeasible.
	_, srv, cl := newTestDaemon(t, Options{})
	if _, err := cl.Schedule(ctx, AlgRing, 512, false, ""); err == nil {
		t.Fatal("ring on a uniform cluster was served; want 422")
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/schedule?alg=ring")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ring on uniform cluster: status %d, want 422", resp.StatusCode)
	}

	// Fast trunk (speed 8 carries any permutation phase of 3 crossers):
	// feasible, served, capacity-valid.
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnectSpeed(s0, s1, 8)
	for i := 0; i < 6; i++ {
		sw := s0
		if i >= 3 {
			sw = s1
		}
		g.MustConnect(sw, g.MustAddMachine(fmt.Sprintf("n%d", i)))
	}
	g.MustValidate()
	d, _, cl := newTestDaemon(t, Options{Graph: g})
	rr, err := cl.Schedule(ctx, AlgRing, 512, true, "")
	if err != nil {
		t.Fatalf("ring on fast-trunk cluster: %v", err)
	}
	s := rr.ToSchedule()
	if got, want := s.NumMessages(), 6*5; got != want {
		t.Errorf("ring schedule has %d messages, want %d", got, want)
	}
	if err := schedule.VerifyCapacity(d.Store().Current().Graph, s); err != nil {
		t.Errorf("served ring schedule exceeds capacity: %v", err)
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	d, _, cl := newTestDaemon(t, Options{})
	ctx := context.Background()
	c := d.Counters()

	// Miss, then hit for the same key; a different msize class is its own
	// key and misses again.
	r1, err := cl.Schedule(ctx, AlgOurs, 1024, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first request reported cached")
	}
	r2, err := cl.Schedule(ctx, AlgOurs, 2048, false, "") // same class (small)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("second request missed the cache")
	}
	if _, err := cl.Schedule(ctx, AlgOurs, 1<<20, false, ""); err != nil { // large class
		t.Fatal(err)
	}
	if got := c.Get(ctrHits); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := c.Get(ctrMisses); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := c.Get(ctrCompiles); got != 2 {
		t.Errorf("compiles = %d, want 2", got)
	}
	if r1.CompileNanos <= 0 {
		t.Error("compileNanos not recorded")
	}
}

// TestSingleflightDedup holds one compile open while K identical requests
// arrive: exactly one compile must run, and the followers must share its
// result, proven by the daemon's own counters.
func TestSingleflightDedup(t *testing.T) {
	const K = 8
	d, _, cl := newTestDaemon(t, Options{})
	ctx := context.Background()

	var entered atomic.Int32
	release := make(chan struct{})
	d.compileHook = func(Key) {
		entered.Add(1)
		<-release
	}

	var wg sync.WaitGroup
	responses := make([]*ScheduleResponse, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = cl.Schedule(ctx, AlgGreedy, 512, false, "")
		}(i)
	}

	// Wait until the one compile is blocked inside the hook and the other
	// K-1 requests are parked on its flight.
	deadline := time.Now().Add(10 * time.Second)
	for entered.Load() != 1 || d.Counters().Get(ctrDedup) != K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("never converged: entered=%d dedup=%d",
				entered.Load(), d.Counters().Get(ctrDedup))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := entered.Load(); got != 1 {
		t.Errorf("%d compiles entered, want 1", got)
	}
	if got := d.Counters().Get(ctrCompiles); got != 1 {
		t.Errorf("compiles counter = %d, want 1", got)
	}
	if got := d.Counters().Get(ctrMisses); got != 1 {
		t.Errorf("misses counter = %d, want 1 (followers are dedups, not misses)", got)
	}
	want := responses[0].NumPhases
	for i, r := range responses {
		if r.NumPhases != want || r.TopoHash != responses[0].TopoHash {
			t.Errorf("response %d diverged from the shared compile", i)
		}
	}
}

func TestCacheEvictionUnderCap(t *testing.T) {
	d, _, cl := newTestDaemon(t, Options{Shards: 1, CacheCap: 2})
	ctx := context.Background()
	// Three distinct keys through a cap of two.
	for _, alg := range []string{AlgOurs, AlgGreedy, AlgAuto} {
		if _, err := cl.Schedule(ctx, alg, 512, false, ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.CacheLen(); got != 2 {
		t.Errorf("cache holds %d entries, want 2", got)
	}
	if got := d.Counters().Get(ctrEvictions); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// The LRU victim was the first key; re-requesting it is a miss.
	if _, err := cl.Schedule(ctx, AlgOurs, 512, false, ""); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().Get(ctrMisses); got != 4 {
		t.Errorf("misses = %d, want 4 (evicted key recompiles)", got)
	}
}

// TestMalformedRequests pins the error surface: status codes and the JSON
// error shape.
func TestMalformedRequests(t *testing.T) {
	d, srv, _ := newTestDaemon(t, Options{})
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"bad alg", http.MethodGet, "/v1/schedule?alg=quantum", "", http.StatusBadRequest},
		{"bad msize", http.MethodGet, "/v1/schedule?msize=banana", "", http.StatusBadRequest},
		{"negative msize", http.MethodGet, "/v1/schedule?msize=-1", "", http.StatusBadRequest},
		{"unknown param", http.MethodGet, "/v1/schedule?msizes=4096", "", http.StatusBadRequest},
		{"repeated param", http.MethodGet, "/v1/schedule?alg=ours&alg=ours", "", http.StatusBadRequest},
		{"bad syncs", http.MethodGet, "/v1/schedule?syncs=maybe", "", http.StatusBadRequest},
		{"unknown hash", http.MethodGet, "/v1/schedule?hash=deadbeef00000000", "", http.StatusNotFound},
		{"schedule wrong method", http.MethodPost, "/v1/schedule", "", http.StatusMethodNotAllowed},
		{"topology wrong method", http.MethodPost, "/v1/topology", "", http.StatusMethodNotAllowed},
		{"topology bad version", http.MethodGet, "/v1/topology?version=x", "", http.StatusBadRequest},
		{"topology unknown version", http.MethodGet, "/v1/topology?version=99", "", http.StatusNotFound},
		{"updates wrong method", http.MethodGet, "/v1/updates", "", http.StatusMethodNotAllowed},
		{"updates bad syntax", http.MethodPost, "/v1/updates", "jion n9 s0\n", http.StatusBadRequest},
		{"updates unknown node", http.MethodPost, "/v1/updates", "leave ghost\n", http.StatusUnprocessableEntity},
	}
	errorsBefore := d.Counters().Get(ctrReqErrors + `{code="400"}`)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body not {\"error\": ...}: decode err %v, %+v", err, e)
			}
		})
	}
	if got := d.Counters().Get(ctrReqErrors + `{code="400"}`); got <= errorsBefore {
		t.Error("request-error counter did not move")
	}
}

// TestUpdatesStreamLockstep drives the streaming endpoint through the
// client: acks arrive per delta, versions advance, rejected deltas come
// back as in-stream error acks without killing the stream, and schedules
// pinned to a pre-update hash still resolve.
func TestUpdatesStreamLockstep(t *testing.T) {
	d, _, cl := newTestDaemon(t, Options{})
	ctx := context.Background()

	// Prime the cache so the update has something to patch.
	before, err := cl.Schedule(ctx, AlgOurs, 512, false, "")
	if err != nil {
		t.Fatal(err)
	}

	st, err := cl.StartUpdates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ack, err := st.Apply(topology.Delta{Op: topology.OpJoin, Node: "n6", Attach: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Error != "" || ack.Version != 2 || ack.NumRanks != 7 {
		t.Fatalf("join ack: %+v", ack)
	}
	if ack.Patched != 1 {
		t.Errorf("join patched %d entries, want 1", ack.Patched)
	}

	// A rejected delta must not advance the version or kill the stream.
	ack, err = st.Apply(topology.Delta{Op: topology.OpLeave, Node: "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Error == "" {
		t.Fatal("expected in-stream error ack for unknown machine")
	}
	ack, err = st.Apply(topology.Delta{Op: topology.OpLeave, Node: "n0"})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Error != "" || ack.Version != 3 || ack.NumRanks != 6 {
		t.Fatalf("leave ack: %+v", ack)
	}

	// The current schedule reflects version 3 and was patched, not
	// recompiled.
	after, err := cl.Schedule(ctx, AlgOurs, 512, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if after.Version != 3 || !after.Incremental || !after.Cached {
		t.Errorf("post-update schedule: version=%d incremental=%v cached=%v, want 3/true/true",
			after.Version, after.Incremental, after.Cached)
	}
	if err := schedule.Verify(d.Store().Current().Graph, after.ToSchedule(), false); err != nil {
		t.Errorf("patched schedule invalid: %v", err)
	}
	if got := d.Counters().Get(ctrPatches); got != 2 {
		t.Errorf("incremental patches = %d, want 2", got)
	}

	// The boot-version schedule is still resolvable by its hash.
	pinned, err := cl.Schedule(ctx, AlgOurs, 512, false, before.TopoHash)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Version != 1 || pinned.TopoHash != before.TopoHash || pinned.NumRanks != 6 {
		t.Errorf("hash-pinned schedule: %+v", pinned)
	}

	// And the topology endpoint serves both versions.
	cur, err := cl.Topology(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 3 || cur.NumMachines != 6 {
		t.Errorf("current topology: %+v", cur)
	}
	v1, err := cl.Topology(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := topology.ParseString(v1.DSL)
	if err != nil {
		t.Fatalf("version-1 DSL does not parse: %v", err)
	}
	if g1.Hash() != before.TopoHash {
		t.Error("version-1 DSL round-trip changed the hash")
	}
}

// TestLargeDeltaDropsInsteadOfPatching: a delta touching more than a
// quarter of the machines must invalidate cached entries rather than patch
// them.
func TestLargeDeltaDropsInsteadOfPatching(t *testing.T) {
	// Two machines on s0, four on s1: failing s1 removes 4 of 6 machines.
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnect(s0, s1)
	for i := 0; i < 6; i++ {
		sw := s0
		if i >= 2 {
			sw = s1
		}
		g.MustConnect(sw, g.MustAddMachine(fmt.Sprintf("n%d", i)))
	}
	g.MustValidate()

	d, _, cl := newTestDaemon(t, Options{Graph: g})
	ctx := context.Background()
	if _, err := cl.Schedule(ctx, AlgOurs, 512, false, ""); err != nil {
		t.Fatal(err)
	}
	res, err := d.ApplyDelta(topology.Delta{Op: topology.OpSwitchFail, Node: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != 0 || res.Dropped != 1 {
		t.Errorf("patched=%d dropped=%d, want 0/1", res.Patched, res.Dropped)
	}
	after, err := cl.Schedule(ctx, AlgOurs, 512, false, "")
	if err != nil {
		t.Fatal(err)
	}
	if after.Incremental || after.NumRanks != 2 {
		t.Errorf("post-failure schedule: incremental=%v ranks=%d, want false/2", after.Incremental, after.NumRanks)
	}
}

// TestMetricsEndpointExposesDaemonCounters: the daemon's counters render on
// /metrics through the shared obsv registry.
func TestMetricsEndpointExposesDaemonCounters(t *testing.T) {
	reg := obsv.NewRegistry()
	_, srv, cl := newTestDaemon(t, Options{Registry: reg})
	if _, err := cl.Schedule(context.Background(), AlgOurs, 512, false, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{ctrMisses + " 1", ctrCompiles + " 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
