package sched

import (
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
)

// The JSON wire types of the daemon's v1 API. Message and sync shapes match
// the aapcgen routine JSON (src/dst, after/before), so existing tooling can
// consume daemon responses.

// WireMessage is one schedule message on the wire.
type WireMessage struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// WireSync is one pair-wise synchronization on the wire.
type WireSync struct {
	After  WireMessage `json:"after"`
	Before WireMessage `json:"before"`
}

// ScheduleResponse is the body of GET /v1/schedule.
type ScheduleResponse struct {
	// TopoHash and Version identify the topology the schedule is valid
	// for; pass the hash back to pin a follow-up request to it.
	TopoHash string `json:"topoHash"`
	Version  int    `json:"version"`
	// NumRanks, Alg and Class echo the resolved cache key.
	NumRanks int    `json:"numRanks"`
	Alg      string `json:"alg"`
	Class    string `json:"class"`
	// SyncMode is the synchronization advice for the class.
	SyncMode string `json:"syncMode"`
	// Cached is true when the response came from the cache without
	// waiting on any compile; Incremental is true when the schedule was
	// produced by an incremental patch rather than a from-scratch compile.
	Cached      bool `json:"cached"`
	Incremental bool `json:"incremental"`
	// CompileNanos is the wall time of the compile or patch that produced
	// the schedule (not of this request, which may have been a cache hit).
	CompileNanos int64 `json:"compileNanos"`
	// NumPhases and Load describe the schedule: Load is the topology's
	// AAPC lower bound, NumPhases >= Load with equality for the optimal
	// construction.
	NumPhases int `json:"numPhases"`
	Load      int `json:"load"`
	// Phases is the schedule body.
	Phases [][]WireMessage `json:"phases"`
	// Syncs is the pair-wise synchronization plan, present when the
	// request asked for it.
	Syncs []WireSync `json:"syncs,omitempty"`
}

// ToSchedule rebuilds the runtime schedule from a response.
func (r *ScheduleResponse) ToSchedule() *schedule.Schedule {
	s := &schedule.Schedule{NumRanks: r.NumRanks, Phases: make([]schedule.Phase, len(r.Phases))}
	for i, p := range r.Phases {
		for _, m := range p {
			s.Phases[i] = append(s.Phases[i], schedule.Message{Src: m.Src, Dst: m.Dst})
		}
	}
	return s
}

// ToPlan rebuilds the synchronization plan from a response (nil when the
// response carries no syncs).
func (r *ScheduleResponse) ToPlan() *syncplan.Plan {
	if r.Syncs == nil {
		return nil
	}
	plan := &syncplan.Plan{}
	for _, sy := range r.Syncs {
		plan.Syncs = append(plan.Syncs, syncplan.Sync{
			After:  schedule.Message{Src: sy.After.Src, Dst: sy.After.Dst},
			Before: schedule.Message{Src: sy.Before.Src, Dst: sy.Before.Dst},
		})
	}
	return plan
}

// responseFor renders a served schedule (and optional plan) as wire JSON.
func responseFor(res *result, plan *syncplan.Plan) *ScheduleResponse {
	e := res.entry
	out := &ScheduleResponse{
		TopoHash:     e.key.TopoHash,
		Version:      e.version,
		NumRanks:     e.s.NumRanks,
		Alg:          e.key.Alg,
		Class:        string(e.key.Class),
		SyncMode:     e.key.Class.SyncModeFor(),
		Cached:       res.cached,
		Incremental:  e.incremental,
		CompileNanos: e.compileNanos,
		NumPhases:    len(e.s.Phases),
		Load:         res.version.Graph.AAPCLoad(),
		Phases:       make([][]WireMessage, len(e.s.Phases)),
	}
	for i, p := range e.s.Phases {
		out.Phases[i] = make([]WireMessage, len(p))
		for j, m := range p {
			out.Phases[i][j] = WireMessage{Src: m.Src, Dst: m.Dst}
		}
	}
	if plan != nil {
		for _, sy := range plan.Syncs {
			out.Syncs = append(out.Syncs, WireSync{
				After:  WireMessage{Src: sy.After.Src, Dst: sy.After.Dst},
				Before: WireMessage{Src: sy.Before.Src, Dst: sy.Before.Dst},
			})
		}
	}
	return out
}

// TopologyResponse is the body of GET /v1/topology.
type TopologyResponse struct {
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	// NumMachines and NumSwitches summarize the cluster.
	NumMachines int `json:"numMachines"`
	NumSwitches int `json:"numSwitches"`
	// DSL is the topology in the repository's topology DSL
	// (topology.Parse round-trips it).
	DSL string `json:"dsl"`
}

// UpdateAck is one line of the streaming POST /v1/updates response: the
// outcome of applying one delta line.
type UpdateAck struct {
	// Delta echoes the applied delta in DSL form.
	Delta string `json:"delta"`
	// Version and Hash identify the topology after the delta.
	Version int    `json:"version"`
	Hash    string `json:"hash"`
	// NumRanks is the machine count after the delta.
	NumRanks int `json:"numRanks"`
	// Patched and Dropped count the cache entries incrementally patched
	// and invalidated by this update.
	Patched int `json:"patched"`
	Dropped int `json:"dropped"`
	// Error is set when the delta could not be applied; the stream
	// continues with the topology unchanged.
	Error string `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
