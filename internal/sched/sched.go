// Package sched is the control plane of the schedule daemon (aapcd): it
// compiles, caches and serves the contention-free AAPC schedules of
// Faraj & Yuan (IPPS 2005) over HTTP/JSON, keyed by
// (topology hash, machine count, algorithm, message-size class).
//
// The paper's workflow is offline: measure the topology once, generate the
// customized routine, link it into the application. On a real cluster the
// topology is not static — machines join and leave, switches fail — and a
// 512-rank greedy compile takes tens of seconds, far too slow to sit on a
// job-launch path. The daemon closes that gap two ways:
//
//   - A sharded in-memory cache with singleflight compile deduplication:
//     concurrent requests for the same key cost one compile, and repeated
//     requests are a map hit.
//   - Incremental rescheduling (schedule.Reschedule): a topology delta that
//     touches few machines patches every cached schedule of the previous
//     version — pinning the messages between survivors, re-placing only the
//     messages incident to the change — in milliseconds instead of
//     recompiling. Large deltas fall back to a full compile, with the
//     greedy path parallelized (schedule.BuildGreedyParallel).
//
// Topology versions are retained in a bounded history so that in-flight
// clients can still resolve the version their schedule was keyed to — the
// chaos suite leans on this to prove no torn reads under update storms.
package sched

import (
	"errors"
	"fmt"

	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Sentinel request errors the HTTP layer maps to status codes.
var (
	// ErrUnknownHash: the request pinned a topology hash that is neither
	// current nor retained in the version history (404).
	ErrUnknownHash = errors.New("sched: no retained topology version with that hash")
	// ErrRingInfeasible: the ring schedule oversubscribes a link on this
	// topology — it is only servable when the inter-switch trunks are fast
	// enough to carry whole permutation phases (422).
	ErrRingInfeasible = errors.New("sched: ring schedule exceeds link capacity on this topology")
)

// MsizeClass buckets message sizes for cache identity. The schedule itself
// is size-independent, but the recommended synchronization mode is not
// (short messages amortize a barrier poorly; long ones hide the pair-wise
// control traffic), so classes get distinct cache entries and sync advice.
type MsizeClass string

// Message-size classes and their boundaries.
const (
	// ClassSmall is msize < 32 KiB: barrier-synchronized phases.
	ClassSmall MsizeClass = "small"
	// ClassMedium is 32 KiB <= msize < 256 KiB: pair-wise synchronization.
	ClassMedium MsizeClass = "medium"
	// ClassLarge is msize >= 256 KiB: pair-wise synchronization.
	ClassLarge MsizeClass = "large"

	smallLimit  = 32 << 10
	mediumLimit = 256 << 10
)

// ClassifyMsize buckets a message size in bytes.
//
//aapc:noalloc
func ClassifyMsize(msize int) MsizeClass {
	switch {
	case msize < smallLimit:
		return ClassSmall
	case msize < mediumLimit:
		return ClassMedium
	default:
		return ClassLarge
	}
}

// SyncModeFor returns the synchronization advice served with a schedule of
// the class: "barrier" for small messages, "pairwise" otherwise.
func (c MsizeClass) SyncModeFor() string {
	if c == ClassSmall {
		return "barrier"
	}
	return "pairwise"
}

// Algorithm names accepted by the schedule endpoint.
const (
	// AlgOurs is the paper's load-optimal construction (schedule.Build).
	AlgOurs = "ours"
	// AlgGreedy is the first-fit baseline, compiled with the parallel
	// builder (schedule.BuildGreedyParallel).
	AlgGreedy = "greedy"
	// AlgAuto picks the cheaper of the optimal and ring schedules by
	// weighted cost (schedule.BuildAuto) — the heterogeneous-cluster path.
	AlgAuto = "auto"
	// AlgRing is the logical-ring schedule (schedule.BuildRing).
	AlgRing = "ring"
)

// ValidAlg reports whether name is a servable algorithm.
func ValidAlg(name string) bool {
	switch name {
	case AlgOurs, AlgGreedy, AlgAuto, AlgRing:
		return true
	}
	return false
}

// Key identifies one cached schedule.
type Key struct {
	// TopoHash is topology.Graph.Hash() of the cluster the schedule was
	// compiled for.
	TopoHash string
	// N is the machine count (redundant with the hash, but it spreads the
	// shard distribution and makes keys self-describing in logs).
	N int
	// Alg is the algorithm name (AlgOurs, AlgGreedy, AlgAuto, AlgRing).
	Alg string
	// Class is the message-size class.
	Class MsizeClass
}

// String renders the key for logs and error messages.
func (k Key) String() string {
	return fmt.Sprintf("%s/n%d/%s/%s", k.TopoHash, k.N, k.Alg, k.Class)
}

// compileSchedule runs the requested builder. greedyWorkers bounds the
// parallel greedy fan-out (<= 0 means GOMAXPROCS).
func compileSchedule(g *topology.Graph, alg string, greedyWorkers int) (*schedule.Schedule, error) {
	switch alg {
	case AlgOurs:
		return schedule.Build(g)
	case AlgGreedy:
		return schedule.BuildGreedyParallel(g, greedyWorkers), nil
	case AlgAuto:
		return schedule.BuildAuto(g)
	case AlgRing:
		s := schedule.BuildRing(g)
		if err := schedule.VerifyCapacity(g, s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRingInfeasible, err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("sched: unknown algorithm %q", alg)
}

// reschedulable reports whether entries of the algorithm may be patched
// incrementally after a topology delta. The optimal and greedy schedules
// stay valid under phase-pinning (tree paths between survivors are
// unchanged); auto and ring re-derive structure from the whole topology, so
// they recompile.
func reschedulable(alg string) bool { return alg == AlgOurs || alg == AlgGreedy }
