package sched

import (
	"fmt"
	"sync"
	"time"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Options configures a Daemon.
type Options struct {
	// Graph is the boot topology (required, validated).
	Graph *topology.Graph
	// CacheCap is the per-shard entry capacity (default 64).
	CacheCap int
	// Shards is the cache shard count (default 8).
	Shards int
	// GreedyWorkers bounds the parallel greedy compile fan-out
	// (default GOMAXPROCS).
	GreedyWorkers int
	// History is how many topology versions to retain (default 32).
	History int
	// Registry, when set, receives the daemon's counters for /metrics.
	Registry *obsv.Registry
}

// Daemon compiles, caches and patches schedules for an evolving cluster.
// Schedule is safe for arbitrary concurrency; ApplyDelta calls are
// serialized internally.
type Daemon struct {
	store    *Store
	cache    *Cache
	counters obsv.Counters
	workers  int

	// updateMu serializes topology updates: apply-then-repair must be
	// atomic with respect to other updates (repairs read the predecessor
	// version's entries).
	updateMu sync.Mutex

	// incrementalLimit is the affected-machine fraction (in 1/256ths of n)
	// above which a cached entry is dropped instead of patched.
	incrementalLimit int

	// compileHook, when set, observes every from-scratch compile as it
	// starts — the conformance suite uses it to hold compiles open and
	// prove singleflight deduplication.
	compileHook func(Key)
}

// New builds a daemon serving schedules for the given boot topology.
func New(opts Options) (*Daemon, error) {
	if opts.Graph == nil {
		return nil, fmt.Errorf("sched: Options.Graph is required")
	}
	if opts.CacheCap == 0 {
		opts.CacheCap = 64
	}
	if opts.Shards == 0 {
		opts.Shards = 8
	}
	if opts.History == 0 {
		opts.History = 32
	}
	st, err := NewStore(opts.Graph, opts.History)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		store:            st,
		workers:          opts.GreedyWorkers,
		incrementalLimit: 64, // patch when <= 25% of machines changed
	}
	d.cache = NewCache(opts.Shards, opts.CacheCap, &d.counters)
	if opts.Registry != nil {
		opts.Registry.AddCounters(&d.counters)
	}
	return d, nil
}

// Counters exposes the daemon's named counters (cache accounting, compile
// and patch totals, request errors).
func (d *Daemon) Counters() *obsv.Counters { return &d.counters }

// Store exposes the topology version store.
func (d *Daemon) Store() *Store { return d.store }

// CacheLen returns the number of cached schedules.
func (d *Daemon) CacheLen() int { return d.cache.Len() }

// result is a served schedule plus its provenance.
type result struct {
	entry   *entry
	version *Version
	cached  bool
}

// Schedule returns the schedule for the algorithm and message size on the
// current topology — or, when hash is non-empty, on the retained version
// with that topology hash. The first request for a key compiles; concurrent
// duplicates share that compile; later requests hit the cache.
func (d *Daemon) Schedule(alg string, msize int, hash string) (*result, error) {
	if !ValidAlg(alg) {
		return nil, fmt.Errorf("sched: unknown algorithm %q", alg)
	}
	if msize < 0 {
		return nil, fmt.Errorf("sched: negative message size %d", msize)
	}
	v := d.store.Current()
	if hash != "" && hash != v.Hash {
		old, ok := d.store.ByHash(hash)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownHash, hash)
		}
		v = old
	}
	k := Key{TopoHash: v.Hash, N: v.Graph.NumMachines(), Alg: alg, Class: ClassifyMsize(msize)}
	e, cached, err := d.cache.GetOrCompile(k, func() (*entry, error) {
		if d.compileHook != nil {
			d.compileHook(k)
		}
		start := time.Now()
		s, err := compileSchedule(v.Graph, alg, d.workers)
		if err != nil {
			return nil, err
		}
		return &entry{key: k, s: s, version: v.Seq, compileNanos: time.Since(start).Nanoseconds()}, nil
	})
	if err != nil {
		return nil, err
	}
	return &result{entry: e, version: v, cached: cached}, nil
}

// SyncPlan computes the pair-wise synchronization plan for a served
// schedule on the topology version it was keyed to. Plans are derived on
// demand; they are cheap relative to compiles and only requested by
// pairwise-sync clients. Ring and auto schedules are capacity-respecting
// rather than strictly contention-free — same-phase sharing of fast links
// is legitimate there, so they use the capacity-aware planner.
func (d *Daemon) SyncPlan(r *result) (*syncplan.Plan, error) {
	if alg := r.entry.key.Alg; alg == AlgRing || alg == AlgAuto {
		return syncplan.BuildCapacityAware(r.version.Graph, r.entry.s)
	}
	return syncplan.Build(r.version.Graph, r.entry.s)
}

// UpdateResult describes one applied topology update.
type UpdateResult struct {
	// Version is the topology after the delta.
	Version *Version
	// Patched counts cache entries carried forward by incremental
	// reschedule; Dropped counts entries invalidated (they recompile on
	// next request).
	Patched, Dropped int
}

// ApplyDelta advances the topology and repairs the cache: entries of the
// predecessor version whose algorithm supports phase-pinning are patched
// incrementally (schedule.Reschedule) when the delta touched at most a
// quarter of the machines; everything else keyed to the predecessor is
// dropped and recompiles on next request. Entries of older versions are
// left for the LRU to age out — they stay correct for their own version.
func (d *Daemon) ApplyDelta(delta topology.Delta) (*UpdateResult, error) {
	d.updateMu.Lock()
	defer d.updateMu.Unlock()

	prev := d.store.Current()
	v, rd, err := d.store.Apply(delta)
	if err != nil {
		return nil, err
	}
	d.counters.Inc(ctrTopoUpdates)

	out := &UpdateResult{Version: v}
	n := v.Graph.NumMachines()
	patchable := rd.Affected()*256 <= d.incrementalLimit*n
	for _, e := range d.cache.Snapshot() {
		if e.key.TopoHash != prev.Hash {
			continue
		}
		if patchable && reschedulable(e.key.Alg) {
			start := time.Now()
			patched, err := schedule.Reschedule(e.s, v.Graph, rd)
			if err == nil {
				d.cache.Put(&entry{
					key:          Key{TopoHash: v.Hash, N: n, Alg: e.key.Alg, Class: e.key.Class},
					s:            patched,
					version:      v.Seq,
					compileNanos: time.Since(start).Nanoseconds(),
					incremental:  true,
				})
				d.counters.Inc(ctrPatches)
				out.Patched++
				continue
			}
		}
		d.cache.Remove(e.key)
		d.counters.Inc(ctrRecompiles)
		out.Dropped++
	}
	return out, nil
}
