package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/aapc-sched/aapcsched/internal/faults"
	"github.com/aapc-sched/aapcsched/internal/schedule"
)

// TestChaosTopologyStorm drives a seeded topology-update storm through the
// live streaming endpoint while reader goroutines hammer the schedule
// endpoint. Every served schedule must be contention-free (capacity-valid
// for auto) for the topology version it was keyed to — resolved by its
// TopoHash against the retained history — proving the daemon never serves
// a torn read: a schedule patched for one version labelled with another.
func TestChaosTopologyStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm skipped in -short")
	}
	const (
		stormSteps = 60
		readers    = 4
	)
	// History large enough that no version served during the storm can age
	// out before its reader validates it.
	d, _, cl := newTestDaemon(t, Options{History: 2 * stormSteps})
	ctx := context.Background()

	// Prime one entry per algorithm so the storm exercises the patch path
	// from the very first delta.
	for _, alg := range []string{AlgOurs, AlgGreedy, AlgAuto} {
		if _, err := cl.Schedule(ctx, alg, 512, false, ""); err != nil {
			t.Fatal(err)
		}
	}

	st, err := cl.StartUpdates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var (
		served   atomic.Int64
		applied  atomic.Int64
		rejected atomic.Int64
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			algs := []string{AlgOurs, AlgGreedy, AlgAuto}
			msizes := []int{512, 64 << 10, 1 << 20}
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				alg := algs[(r+i)%len(algs)]
				resp, err := cl.Schedule(ctx, alg, msizes[i%len(msizes)], false, "")
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				v, ok := d.Store().ByHash(resp.TopoHash)
				if !ok {
					t.Errorf("reader %d: served hash %q not in history", r, resp.TopoHash)
					return
				}
				n := v.Graph.NumMachines()
				if resp.NumRanks != n {
					t.Errorf("reader %d: response says %d ranks, version %d has %d",
						r, resp.NumRanks, v.Seq, n)
					return
				}
				s := resp.ToSchedule()
				verr := schedule.Verify(v.Graph, s, false)
				if verr != nil && alg == AlgAuto {
					// Auto may serve a ring schedule that shares fast links
					// within a phase; that is valid iff capacity-respecting.
					verr = schedule.VerifyCapacity(v.Graph, s)
				}
				if verr != nil {
					t.Errorf("reader %d: %s schedule for version %d invalid: %v",
						r, alg, v.Seq, verr)
					return
				}
				served.Add(1)
			}
		}(r)
	}

	storm := faults.NewTopoStorm(20250808)
	for step := 0; step < stormSteps; step++ {
		delta := storm.Next(d.Store().Current().Graph)
		ack, err := st.Apply(delta)
		if err != nil {
			t.Fatalf("storm step %d (%s): %v", step, delta.Format(), err)
		}
		if ack.Error != "" {
			rejected.Add(1)
			continue
		}
		applied.Add(1)
	}
	close(done)
	wg.Wait()

	if applied.Load() < stormSteps/2 {
		t.Errorf("storm applied only %d/%d deltas (rejected %d) — not chaotic enough",
			applied.Load(), stormSteps, rejected.Load())
	}
	if served.Load() < readers {
		t.Errorf("readers validated only %d schedules", served.Load())
	}
	t.Logf("storm: %d applied, %d rejected; readers validated %d served schedules across %d retained versions",
		applied.Load(), rejected.Load(), served.Load(), d.Store().Current().Seq)
}
