package sched

import (
	"fmt"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Version is one immutable snapshot of the cluster topology. Graphs are
// never mutated after publication, so a Version may be read concurrently.
type Version struct {
	// Seq is the monotonically increasing version number; the boot
	// topology is 1.
	Seq int
	// Hash is Graph.Hash(), the cache-key component.
	Hash string
	// Graph is the validated cluster.
	Graph *topology.Graph
}

// Store holds the current topology and a bounded history of predecessors,
// so clients holding a schedule keyed to an older version can still resolve
// (and re-validate against) the exact topology it was compiled for.
type Store struct {
	mu      sync.RWMutex
	history []*Version // ascending Seq; last is current
	keep    int
	nextSeq int
}

// NewStore publishes g as version 1 and retains up to keep versions
// (minimum 1).
func NewStore(g *topology.Graph, keep int) (*Store, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if keep < 1 {
		keep = 1
	}
	st := &Store{keep: keep, nextSeq: 1}
	st.publish(g)
	return st, nil
}

// publish appends g as the next version. Callers hold no lock; publish
// takes it.
func (st *Store) publish(g *topology.Graph) *Version {
	// Warm the lazily cached rooted view before the graph becomes visible
	// to concurrent compiles: the rooted-view cache is written on first
	// use (NewEdgeIndex reads it), and warmed graphs are read-only
	// thereafter.
	g.NewEdgeIndex()
	v := &Version{Graph: g, Hash: g.Hash()}
	st.mu.Lock()
	v.Seq = st.nextSeq
	st.nextSeq++
	st.history = append(st.history, v)
	if len(st.history) > st.keep {
		st.history = append(st.history[:0], st.history[len(st.history)-st.keep:]...)
	}
	st.mu.Unlock()
	return v
}

// Current returns the latest version.
func (st *Store) Current() *Version {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.history[len(st.history)-1]
}

// BySeq returns the retained version with the given sequence number.
func (st *Store) BySeq(seq int) (*Version, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i := len(st.history) - 1; i >= 0; i-- {
		if st.history[i].Seq == seq {
			return st.history[i], true
		}
	}
	return nil, false
}

// ByHash returns the most recent retained version with the given topology
// hash.
func (st *Store) ByHash(hash string) (*Version, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i := len(st.history) - 1; i >= 0; i-- {
		if st.history[i].Hash == hash {
			return st.history[i], true
		}
	}
	return nil, false
}

// Apply derives the next version from the current one. The rank delta maps
// the previous version's ranks onto the new one. Apply calls must be
// externally serialized (the daemon funnels them through one updater).
func (st *Store) Apply(d topology.Delta) (*Version, *topology.RankDelta, error) {
	cur := st.Current()
	newG, rd, err := cur.Graph.ApplyDelta(d)
	if err != nil {
		return nil, nil, fmt.Errorf("sched: apply %s to version %d: %w", d.Format(), cur.Seq, err)
	}
	return st.publish(newG), rd, nil
}
