package sched

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// Client talks to a running aapcd over its v1 HTTP API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the daemon at base (e.g.
// "http://127.0.0.1:7113"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// decodeError extracts the JSON error body of a non-2xx response.
func decodeError(resp *http.Response) error {
	var e ErrorResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&e); err != nil || e.Error == "" {
		return fmt.Errorf("sched: daemon returned %s", resp.Status)
	}
	return fmt.Errorf("sched: daemon returned %s: %s", resp.Status, e.Error)
}

// Schedule fetches the schedule for the algorithm and message size.
// withSyncs also requests the pair-wise synchronization plan. hash, when
// non-empty, pins the request to a retained topology version.
func (c *Client) Schedule(ctx context.Context, alg string, msize int, withSyncs bool, hash string) (*ScheduleResponse, error) {
	q := url.Values{}
	q.Set("alg", alg)
	q.Set("msize", strconv.Itoa(msize))
	if withSyncs {
		q.Set("syncs", "1")
	}
	if hash != "" {
		q.Set("hash", hash)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/schedule?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule response: %w", err)
	}
	return &out, nil
}

// Topology fetches a topology version (0 means current).
func (c *Client) Topology(ctx context.Context, version int) (*TopologyResponse, error) {
	u := c.base + "/v1/topology"
	if version > 0 {
		u += "?version=" + strconv.Itoa(version)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out TopologyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("sched: decoding topology response: %w", err)
	}
	return &out, nil
}

// UpdateStream is a lockstep topology-update session over one POST
// /v1/updates connection: each Apply sends one delta line and blocks for
// its ack, so the caller observes the new version (or the rejection) before
// deciding the next update.
type UpdateStream struct {
	pw    *io.PipeWriter
	resp  *http.Response
	sc    *bufio.Scanner
	ready chan error // closed path: first response (headers) or dial error
}

// StartUpdates opens an update stream. Close it to end the session.
func (c *Client) StartUpdates(ctx context.Context) (*UpdateStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/updates", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "text/plain")
	s := &UpdateStream{pw: pw, ready: make(chan error, 1)}
	go func() {
		resp, err := c.hc.Do(req)
		if err != nil {
			s.ready <- err
			return
		}
		s.resp = resp
		s.ready <- nil
	}()
	return s, nil
}

// Apply sends one delta and waits for its ack. An ack with a non-empty
// Error field means the daemon rejected the delta (the stream stays
// usable); a returned error means the stream itself failed.
func (s *UpdateStream) Apply(d topology.Delta) (UpdateAck, error) {
	if _, err := io.WriteString(s.pw, d.Format()+"\n"); err != nil {
		return UpdateAck{}, err
	}
	if s.sc == nil {
		// The server sends headers with the first ack; wait for them once.
		if err := <-s.ready; err != nil {
			return UpdateAck{}, err
		}
		if s.resp.StatusCode != http.StatusOK {
			defer s.resp.Body.Close()
			return UpdateAck{}, decodeError(s.resp)
		}
		s.sc = bufio.NewScanner(s.resp.Body)
	}
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return UpdateAck{}, err
		}
		return UpdateAck{}, io.ErrUnexpectedEOF
	}
	var ack UpdateAck
	if err := json.Unmarshal(s.sc.Bytes(), &ack); err != nil {
		return UpdateAck{}, fmt.Errorf("sched: decoding update ack: %w", err)
	}
	return ack, nil
}

// Close ends the update session and drains the response.
func (s *UpdateStream) Close() error {
	s.pw.Close()
	if s.sc == nil {
		if err := <-s.ready; err != nil {
			return nil // dial already failed; nothing to drain
		}
	}
	if s.resp != nil {
		io.Copy(io.Discard, s.resp.Body)
		return s.resp.Body.Close()
	}
	return nil
}
