package sched

import (
	"net/url"
	"strconv"
	"testing"
)

// FuzzScheduleRequest throws arbitrary query strings at the schedule
// endpoint's parser: it must never panic, must reject what the grammar
// rejects, and everything it accepts must be servable (known algorithm,
// non-negative msize, classifiable).
func FuzzScheduleRequest(f *testing.F) {
	f.Add("alg=ours&msize=65536")
	f.Add("alg=greedy&msize=512&syncs=1")
	f.Add("alg=auto&syncs=false&hash=deadbeef")
	f.Add("alg=ring")
	f.Add("msize=-1")
	f.Add("alg=ours&alg=ours")
	f.Add("msizes=4096")
	f.Add("syncs=maybe")
	f.Add("hash=")
	f.Add("alg=%6furs&msize=0012")
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := parseScheduleQuery(vals)
		if err != nil {
			return
		}
		if !ValidAlg(q.alg) {
			t.Fatalf("accepted unknown alg %q from %q", q.alg, raw)
		}
		if q.msize < 0 {
			t.Fatalf("accepted negative msize %d from %q", q.msize, raw)
		}
		switch ClassifyMsize(q.msize) {
		case ClassSmall, ClassMedium, ClassLarge:
		default:
			t.Fatalf("msize %d has no class", q.msize)
		}
		if got := vals.Get("msize"); got != "" {
			n, aerr := strconv.Atoi(got)
			if aerr != nil || n != q.msize {
				t.Fatalf("msize round-trip: query %q parsed as %d", got, q.msize)
			}
		}
		if vals.Get("hash") != q.hash {
			t.Fatalf("hash round-trip: %q became %q", vals.Get("hash"), q.hash)
		}
	})
}
