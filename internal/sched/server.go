package sched

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/syncplan"
	"github.com/aapc-sched/aapcsched/internal/topology"
)

// NewServer mounts the daemon's v1 API on a fresh mux:
//
//	GET  /v1/schedule?alg=ours&msize=65536[&syncs=1][&hash=H]
//	GET  /v1/topology[?version=K]
//	POST /v1/updates        (streaming delta-DSL lines -> JSON ack lines)
//	GET  /metrics           (Prometheus text, when a registry is given)
//	GET  /healthz
//
// Errors are JSON {"error": "..."} with 400 for malformed requests, 404 for
// unknown versions/hashes, 405 for wrong methods and 422 for well-formed
// deltas the topology rejects.
func NewServer(d *Daemon, reg *obsv.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", d.handleSchedule)
	mux.HandleFunc("/v1/topology", d.handleTopology)
	mux.HandleFunc("/v1/updates", d.handleUpdates)
	if reg != nil {
		mux.Handle("/metrics", reg)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// fail renders a JSON error and accounts it.
func (d *Daemon) fail(w http.ResponseWriter, status int, format string, args ...any) {
	d.counters.Inc(fmt.Sprintf("%s{code=%q}", ctrReqErrors, strconv.Itoa(status)))
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// scheduleQuery is the parsed GET /v1/schedule query.
type scheduleQuery struct {
	alg   string
	msize int
	syncs bool
	hash  string
}

// parseScheduleQuery validates the schedule query parameters. It rejects
// unknown parameters so that a typo ("msizes=") fails loudly instead of
// silently serving the default.
func parseScheduleQuery(q url.Values) (scheduleQuery, error) {
	out := scheduleQuery{alg: AlgOurs}
	for name, vals := range q {
		if len(vals) != 1 {
			return out, fmt.Errorf("parameter %q repeated", name)
		}
		v := vals[0]
		switch name {
		case "alg":
			if !ValidAlg(v) {
				return out, fmt.Errorf("unknown alg %q (want ours, greedy, auto or ring)", v)
			}
			out.alg = v
		case "msize":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return out, fmt.Errorf("bad msize %q: want a non-negative integer", v)
			}
			out.msize = n
		case "syncs":
			b, err := strconv.ParseBool(v)
			if err != nil {
				return out, fmt.Errorf("bad syncs %q: want a boolean", v)
			}
			out.syncs = b
		case "hash":
			if v == "" {
				return out, fmt.Errorf("empty hash")
			}
			out.hash = v
		default:
			return out, fmt.Errorf("unknown parameter %q", name)
		}
	}
	return out, nil
}

func (d *Daemon) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q, err := parseScheduleQuery(r.URL.Query())
	if err != nil {
		d.fail(w, http.StatusBadRequest, "bad query: %v", err)
		return
	}
	res, err := d.Schedule(q.alg, q.msize, q.hash)
	switch {
	case errors.Is(err, ErrUnknownHash):
		d.fail(w, http.StatusNotFound, "%v", err)
		return
	case errors.Is(err, ErrRingInfeasible):
		d.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case err != nil:
		d.fail(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var plan *syncplan.Plan
	if q.syncs {
		plan, err = d.SyncPlan(res)
		if err != nil {
			d.fail(w, http.StatusInternalServerError, "sync plan: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, responseFor(res, plan))
}

func (d *Daemon) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		d.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	v := d.store.Current()
	if arg := r.URL.Query().Get("version"); arg != "" {
		seq, err := strconv.Atoi(arg)
		if err != nil {
			d.fail(w, http.StatusBadRequest, "bad version %q", arg)
			return
		}
		old, ok := d.store.BySeq(seq)
		if !ok {
			d.fail(w, http.StatusNotFound, "version %d not retained", seq)
			return
		}
		v = old
	}
	writeJSON(w, http.StatusOK, TopologyResponse{
		Version:     v.Seq,
		Hash:        v.Hash,
		NumMachines: v.Graph.NumMachines(),
		NumSwitches: v.Graph.NumSwitches(),
		DSL:         v.Graph.Format(),
	})
}

// handleUpdates consumes delta-DSL lines from the request body and streams
// one JSON ack per line back, flushing after each, so a client can apply
// updates in lockstep over one connection. A malformed line is a 400 if
// nothing has been acked yet, otherwise an in-stream error ack; a
// well-formed delta the topology rejects is always an in-stream error ack
// (the stream and the topology survive it).
func (d *Daemon) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		d.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Lockstep streaming interleaves reads of the request body with writes
	// of the response. Without full duplex, the server's first response
	// write would block draining the (still-open) request body.
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		// Keep the session usable on transports without duplex support by
		// refusing connection reuse instead of draining.
		w.Header().Set("Connection", "close")
	}
	enc := json.NewEncoder(w)
	started := false
	ack := func(a UpdateAck) {
		if !started {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		enc.Encode(a)
		rc.Flush()
	}
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		delta, err := topology.ParseDelta(line)
		if err != nil {
			if !started {
				d.fail(w, http.StatusBadRequest, "%v", err)
				return
			}
			ack(UpdateAck{Delta: line, Error: err.Error()})
			continue
		}
		res, err := d.ApplyDelta(delta)
		if err != nil {
			if !started {
				d.fail(w, http.StatusUnprocessableEntity, "%v", err)
				return
			}
			ack(UpdateAck{Delta: delta.Format(), Error: err.Error()})
			continue
		}
		ack(UpdateAck{
			Delta:    delta.Format(),
			Version:  res.Version.Seq,
			Hash:     res.Version.Hash,
			NumRanks: res.Version.Graph.NumMachines(),
			Patched:  res.Patched,
			Dropped:  res.Dropped,
		})
	}
	if err := sc.Err(); err != nil && !started {
		d.fail(w, http.StatusBadRequest, "reading body: %v", err)
	}
}
