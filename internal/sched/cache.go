package sched

import (
	"container/list"
	"sync"

	"github.com/aapc-sched/aapcsched/internal/obsv"
	"github.com/aapc-sched/aapcsched/internal/schedule"
)

// Metric names the daemon's cache and compiler account under (rendered on
// /metrics through obsv.Registry.AddCounters).
const (
	ctrHits        = "aapcd_cache_hits_total"
	ctrMisses      = "aapcd_cache_misses_total"
	ctrDedup       = "aapcd_singleflight_dedup_total"
	ctrEvictions   = "aapcd_cache_evictions_total"
	ctrCompiles    = "aapcd_compiles_total"
	ctrPatches     = "aapcd_incremental_patches_total"
	ctrRecompiles  = "aapcd_full_recompiles_total"
	ctrTopoUpdates = "aapcd_topology_updates_total"
	ctrReqErrors   = "aapcd_request_errors_total"
)

// entry is one cached schedule with the provenance the daemon serves
// alongside it.
type entry struct {
	key Key
	s   *schedule.Schedule
	// version is the topology-store sequence number the schedule was
	// compiled (or patched) for.
	version int
	// compileNanos is the wall time of the compile or incremental patch
	// that produced the schedule.
	compileNanos int64
	// incremental marks schedules produced by Reschedule rather than a
	// from-scratch compile.
	incremental bool
}

// flight is one in-progress compile; followers block on done and share the
// result.
type flight struct {
	done chan struct{}
	e    *entry
	err  error
}

// cacheShard is one lock domain of the cache: an LRU over entries plus the
// in-flight compiles for its keys.
type cacheShard struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *entry
	byKey   map[Key]*list.Element
	flights map[Key]*flight
}

// Cache is a sharded LRU of compiled schedules with singleflight compile
// deduplication. Keys hash to a shard; each shard holds at most cap
// entries, evicting least-recently-used. Concurrent GetOrCompile calls for
// the same key run the compile function exactly once.
type Cache struct {
	shards   []*cacheShard
	counters *obsv.Counters
}

// NewCache builds a cache of the given shard count and per-shard capacity
// (minimums of 1 apply). counters may be nil.
func NewCache(shards, capPerShard int, counters *obsv.Counters) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capPerShard < 1 {
		capPerShard = 1
	}
	c := &Cache{shards: make([]*cacheShard, shards), counters: counters}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap:     capPerShard,
			order:   list.New(),
			byKey:   make(map[Key]*list.Element),
			flights: make(map[Key]*flight),
		}
	}
	return c
}

// shardFor hashes the key to its shard (FNV-1a over the string form).
func (c *Cache) shardFor(k Key) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range []byte(k.TopoHash) {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range []byte(k.Alg) {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range []byte(k.Class) {
		h = (h ^ uint64(b)) * prime64
	}
	h = (h ^ uint64(k.N)) * prime64
	return c.shards[h%uint64(len(c.shards))]
}

// GetOrCompile returns the cached entry for the key, or runs compile to
// produce it. Exactly one caller compiles; concurrent callers for the same
// key wait for that result (singleflight). A failed compile is not cached —
// every waiter receives the error and the next request retries.
func (c *Cache) GetOrCompile(k Key, compile func() (*entry, error)) (*entry, bool, error) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.byKey[k]; ok {
		sh.order.MoveToFront(el)
		sh.mu.Unlock()
		c.counters.Inc(ctrHits)
		return el.Value.(*entry), true, nil
	}
	if f, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.counters.Inc(ctrDedup)
		<-f.done
		return f.e, false, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()
	c.counters.Inc(ctrMisses)

	f.e, f.err = compile()

	sh.mu.Lock()
	delete(sh.flights, k)
	if f.err == nil {
		sh.insertLocked(f.e, c.counters)
	}
	sh.mu.Unlock()
	close(f.done)
	if f.err == nil {
		c.counters.Inc(ctrCompiles)
	}
	return f.e, false, f.err
}

// Put inserts (or replaces) an entry directly — the incremental-repair path
// uses it to publish patched schedules without a request in flight.
func (c *Cache) Put(e *entry) {
	sh := c.shardFor(e.key)
	sh.mu.Lock()
	sh.insertLocked(e, c.counters)
	sh.mu.Unlock()
}

// insertLocked adds the entry at the LRU front and evicts past capacity.
func (sh *cacheShard) insertLocked(e *entry, counters *obsv.Counters) {
	if el, ok := sh.byKey[e.key]; ok {
		el.Value = e
		sh.order.MoveToFront(el)
		return
	}
	sh.byKey[e.key] = sh.order.PushFront(e)
	for sh.order.Len() > sh.cap {
		last := sh.order.Back()
		sh.order.Remove(last)
		delete(sh.byKey, last.Value.(*entry).key)
		counters.Inc(ctrEvictions)
	}
}

// Snapshot returns every cached entry, newest-first per shard — the
// incremental-repair pass walks this to find entries worth patching.
func (c *Cache) Snapshot() []*entry {
	var out []*entry
	for _, sh := range c.shards {
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			out = append(out, el.Value.(*entry))
		}
		sh.mu.Unlock()
	}
	return out
}

// Remove drops the key if present.
func (c *Cache) Remove(k Key) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if el, ok := sh.byKey[k]; ok {
		sh.order.Remove(el)
		delete(sh.byKey, k)
	}
	sh.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
