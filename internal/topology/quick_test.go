package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var quickCfg = &quick.Config{MaxCount: 150}

// clusterFromSeed derives a random valid cluster from a seed.
func clusterFromSeed(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return RandomCluster(RandomOptions{
		Switches: 1 + rng.Intn(7),
		Machines: 2 + rng.Intn(20),
		Rand:     rng,
	})
}

// TestQuickPathProperties: for any cluster and machine pair, the path starts
// at the source, ends at the destination, chains contiguously, repeats no
// edge, and the reverse path is the edge-wise mirror.
func TestQuickPathProperties(t *testing.T) {
	prop := func(seed int64, a, b uint) bool {
		g := clusterFromSeed(seed)
		m := g.NumMachines()
		src := int(a % uint(m))
		dst := int(b % uint(m))
		if src == dst {
			return len(g.PathBetweenRanks(src, dst)) == 0
		}
		path := g.PathBetweenRanks(src, dst)
		if len(path) == 0 ||
			path[0].U != g.MachineID(src) ||
			path[len(path)-1].V != g.MachineID(dst) {
			return false
		}
		seen := make(map[Edge]bool)
		for i, e := range path {
			if seen[e] || seen[e.Reverse()] {
				return false // a tree path never revisits a link
			}
			seen[e] = true
			if i > 0 && path[i-1].V != e.U {
				return false
			}
		}
		rev := g.PathBetweenRanks(dst, src)
		if len(rev) != len(path) {
			return false
		}
		for i := range rev {
			if rev[i] != path[len(path)-1-i].Reverse() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLinkLoadConservation: summing |Mu|*|Mv| over links equals summing
// path lengths over all ordered machine pairs (every message crosses each of
// its links once), and every link load is positive.
func TestQuickLinkLoadConservation(t *testing.T) {
	prop := func(seed int64) bool {
		g := clusterFromSeed(seed)
		loadSum := 0
		for _, ll := range g.LinkLoads() {
			if ll.Load < 0 || ll.MachinesU+ll.MachinesV != g.NumMachines() {
				return false
			}
			loadSum += ll.Load
		}
		pathSum := 0
		m := g.NumMachines()
		for s := 0; s < m; s++ {
			for d := 0; d < m; d++ {
				if s != d {
					pathSum += len(g.PathBetweenRanks(s, d))
				}
			}
		}
		// Each ordered pair's path has one directed edge per link crossed;
		// link load counts one direction only, so pathSum = 2 * loadSum.
		return pathSum == 2*loadSum
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickParseFormatRoundTrip: Format then Parse reproduces an isomorphic
// cluster (same analysis outputs).
func TestQuickParseFormatRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		g := clusterFromSeed(seed)
		g2, err := ParseString(g.Format())
		if err != nil {
			return false
		}
		if g2.NumMachines() != g.NumMachines() ||
			g2.NumSwitches() != g.NumSwitches() ||
			g2.NumLinks() != g.NumLinks() ||
			g2.AAPCLoad() != g.AAPCLoad() {
			return false
		}
		return g2.Format() == g.Format()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBestCaseConsistent: BestCaseTime and PeakAggregateThroughput are
// two views of the same bound.
func TestQuickBestCaseConsistent(t *testing.T) {
	prop := func(seed int64, bwRaw uint) bool {
		g := clusterFromSeed(seed)
		bw := float64(bwRaw%1000+1) * 1e5
		msize := 1 << 14
		m := float64(g.NumMachines())
		best := g.BestCaseTime(msize, bw)
		peak := g.PeakAggregateThroughput(bw)
		// total data / best time == peak throughput
		total := m * (m - 1) * float64(msize)
		diff := total/best - peak
		return diff < 1e-6*peak && diff > -1e-6*peak
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEdgeIndexBijective: the dense edge index is a bijection over the
// 2 * numLinks directed edges.
func TestQuickEdgeIndexBijective(t *testing.T) {
	prop := func(seed int64) bool {
		g := clusterFromSeed(seed)
		idx := g.NewEdgeIndex()
		if idx.Len() != 2*g.NumLinks() {
			return false
		}
		for i := 0; i < idx.Len(); i++ {
			if idx.ID(idx.Edge(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLemma3PathDisjointness verifies Lemma 3 of the paper directly:
// in a tree, for distinct nodes x, y, z, path(x, y) and path(y, z) share no
// directed edge.
func TestQuickLemma3PathDisjointness(t *testing.T) {
	prop := func(seed int64, a, b, c uint) bool {
		g := clusterFromSeed(seed)
		n := g.NumNodes()
		x := int(a % uint(n))
		y := int(b % uint(n))
		z := int(c % uint(n))
		if x == y || y == z || x == z {
			return true // lemma requires distinct nodes
		}
		onXY := make(map[Edge]bool)
		for _, e := range g.Path(x, y) {
			onXY[e] = true
		}
		for _, e := range g.Path(y, z) {
			if onXY[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
