package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The delta DSL describes incremental topology changes, one per line:
//
//	join n9 s2 [SPEED]       # machine n9 joins, attached to switch s2
//	leave n3                 # machine n3 leaves the cluster
//	failswitch s1            # switch s1 fails; disconnected nodes drop out
//	joinswitch s9 s2 [SPEED] # switch s9 joins, uplinked to switch s2
//
// Blank lines and #-comments are ignored, mirroring the topology DSL. The
// schedule daemon's streaming update endpoint consumes this format.

// DeltaOp enumerates incremental topology changes.
type DeltaOp uint8

const (
	// OpJoin adds a machine attached to an existing switch. The new
	// machine receives the highest rank.
	OpJoin DeltaOp = iota
	// OpLeave removes one machine. Higher ranks shift down by one.
	OpLeave
	// OpSwitchFail removes a switch and every node the failure
	// disconnects: only the surviving component with the most machines
	// (ties: most nodes, then lowest node ID) remains.
	OpSwitchFail
	// OpSwitchJoin adds a leaf switch uplinked to an existing switch.
	// Machine ranks are unchanged.
	OpSwitchJoin
)

// String names the op with its DSL keyword.
func (o DeltaOp) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeave:
		return "leave"
	case OpSwitchFail:
		return "failswitch"
	case OpSwitchJoin:
		return "joinswitch"
	default:
		return fmt.Sprintf("DeltaOp(%d)", uint8(o))
	}
}

// Delta is one incremental topology change.
type Delta struct {
	Op DeltaOp
	// Node is the machine (join/leave) or switch (failswitch/joinswitch)
	// the change targets.
	Node string
	// Attach is the existing switch a join/joinswitch connects to.
	Attach string
	// Speed is the link speed multiplier for joins; 0 means 1.
	Speed float64
}

// Format renders the delta in the DSL; ParseDelta(d.Format()) reproduces it.
func (d Delta) Format() string {
	switch d.Op {
	case OpJoin, OpSwitchJoin:
		if d.Speed != 0 && d.Speed != 1 {
			return fmt.Sprintf("%s %s %s %g", d.Op, d.Node, d.Attach, d.Speed)
		}
		return fmt.Sprintf("%s %s %s", d.Op, d.Node, d.Attach)
	default:
		return fmt.Sprintf("%s %s", d.Op, d.Node)
	}
}

// ParseDelta parses a single delta line. Comments and surrounding blanks are
// stripped; an empty line returns an error.
func ParseDelta(line string) (Delta, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Delta{}, fmt.Errorf("topology: empty delta")
	}
	var d Delta
	switch fields[0] {
	case "join", "joinswitch":
		if fields[0] == "join" {
			d.Op = OpJoin
		} else {
			d.Op = OpSwitchJoin
		}
		if len(fields) != 3 && len(fields) != 4 {
			return Delta{}, fmt.Errorf("topology: %s needs NODE SWITCH [SPEED]", fields[0])
		}
		d.Node, d.Attach = fields[1], fields[2]
		if len(fields) == 4 {
			s, err := strconv.ParseFloat(fields[3], 64)
			if err != nil || s <= 0 {
				return Delta{}, fmt.Errorf("topology: bad link speed %q", fields[3])
			}
			d.Speed = s
		}
	case "leave", "failswitch":
		if fields[0] == "leave" {
			d.Op = OpLeave
		} else {
			d.Op = OpSwitchFail
		}
		if len(fields) != 2 {
			return Delta{}, fmt.Errorf("topology: %s needs NODE", fields[0])
		}
		d.Node = fields[1]
	default:
		return Delta{}, fmt.Errorf("topology: unknown delta keyword %q", fields[0])
	}
	if d.Node == "" {
		return Delta{}, fmt.Errorf("topology: empty node name in delta")
	}
	return d, nil
}

// ParseDeltas reads a sequence of delta lines (blank lines and comments
// permitted between them).
func ParseDeltas(r io.Reader) ([]Delta, error) {
	var out []Delta
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		d, err := ParseDelta(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RankDelta maps machine ranks across an applied Delta. Incremental
// rescheduling uses it to pin surviving messages and identify the ones that
// must be re-placed.
type RankDelta struct {
	// NumOld and NumNew are the machine counts before and after.
	NumOld, NumNew int
	// OldToNew maps each old rank to its new rank, -1 for removed
	// machines. Surviving ranks keep their relative order.
	OldToNew []int
	// Removed lists the removed old ranks in ascending order.
	Removed []int
	// Added lists the added new ranks in ascending order.
	Added []int
}

// Identity reports whether the delta left every rank in place.
func (rd *RankDelta) Identity() bool {
	return len(rd.Removed) == 0 && len(rd.Added) == 0 && rd.NumOld == rd.NumNew
}

// Affected returns the number of machines the delta touched (removed plus
// added).
func (rd *RankDelta) Affected() int { return len(rd.Removed) + len(rd.Added) }

// ApplyDelta applies one incremental change to a validated cluster and
// returns the resulting cluster (a new graph; the receiver is unchanged)
// plus the rank mapping. Changes that would leave the cluster without
// machines, or that reference unknown or wrongly-kinded nodes, are
// rejected.
func (g *Graph) ApplyDelta(d Delta) (*Graph, *RankDelta, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	switch d.Op {
	case OpJoin, OpSwitchJoin:
		if _, dup := g.byName[d.Node]; dup {
			return nil, nil, fmt.Errorf("topology: delta %s: node %q already exists", d.Op, d.Node)
		}
		at, ok := g.Lookup(d.Attach)
		if !ok {
			return nil, nil, fmt.Errorf("topology: delta %s: unknown switch %q", d.Op, d.Attach)
		}
		if g.nodes[at].Kind != Switch {
			return nil, nil, fmt.Errorf("topology: delta %s: %q is a machine, not a switch", d.Op, d.Attach)
		}
		c := g.Clone()
		var id int
		if d.Op == OpJoin {
			id = c.MustAddMachine(d.Node)
		} else {
			id = c.MustAddSwitch(d.Node)
		}
		speed := d.Speed
		if speed == 0 {
			speed = 1
		}
		// Clone preserves node IDs, so at addresses the same switch.
		if err := c.ConnectSpeed(at, id, speed); err != nil {
			return nil, nil, err
		}
		if err := c.Validate(); err != nil {
			return nil, nil, fmt.Errorf("topology: delta %s: %w", d.Op, err)
		}
		n := g.NumMachines()
		rd := &RankDelta{NumOld: n, NumNew: c.NumMachines(), OldToNew: identityRanks(n)}
		if d.Op == OpJoin {
			rd.Added = []int{n}
		}
		return c, rd, nil

	case OpLeave:
		id, ok := g.Lookup(d.Node)
		if !ok {
			return nil, nil, fmt.Errorf("topology: delta leave: unknown machine %q", d.Node)
		}
		if g.nodes[id].Kind != Machine {
			return nil, nil, fmt.Errorf("topology: delta leave: %q is a switch (use failswitch)", d.Node)
		}
		if g.NumMachines() == 1 {
			return nil, nil, fmt.Errorf("topology: delta leave: cannot remove the last machine")
		}
		return g.rebuildWithout(map[int]bool{id: true})

	case OpSwitchFail:
		id, ok := g.Lookup(d.Node)
		if !ok {
			return nil, nil, fmt.Errorf("topology: delta failswitch: unknown switch %q", d.Node)
		}
		if g.nodes[id].Kind != Switch {
			return nil, nil, fmt.Errorf("topology: delta failswitch: %q is a machine (use leave)", d.Node)
		}
		if g.NumSwitches() == 1 {
			return nil, nil, fmt.Errorf("topology: delta failswitch: cannot remove the only switch")
		}
		removed, err := g.failureShadow(id)
		if err != nil {
			return nil, nil, err
		}
		return g.rebuildWithout(removed)
	}
	return nil, nil, fmt.Errorf("topology: unknown delta op %v", d.Op)
}

func identityRanks(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// failureShadow returns the set of node IDs removed by the failure of
// switch id: the switch itself plus every node outside the surviving
// component with the most machines (ties: most nodes, then lowest minimum
// node ID). An error is returned if no surviving component has a machine.
func (g *Graph) failureShadow(id int) (map[int]bool, error) {
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	comp[id] = -2 // the failed switch belongs to no component
	type score struct{ machines, nodes, minID int }
	var scores []score
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		ci := len(scores)
		sc := score{minID: start}
		queue := []int{start}
		comp[start] = ci
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			sc.nodes++
			if g.nodes[u].Kind == Machine {
				sc.machines++
			}
			for _, v := range g.adj[u] {
				if comp[v] == -1 {
					comp[v] = ci
					queue = append(queue, v)
				}
			}
		}
		scores = append(scores, sc)
	}
	best := -1
	for i, sc := range scores {
		if sc.machines == 0 {
			continue
		}
		if best == -1 {
			best = i
			continue
		}
		b := scores[best]
		if sc.machines > b.machines ||
			(sc.machines == b.machines && sc.nodes > b.nodes) ||
			(sc.machines == b.machines && sc.nodes == b.nodes && sc.minID < b.minID) {
			best = i
		}
	}
	if best == -1 {
		return nil, fmt.Errorf("topology: delta failswitch: failure of %s disconnects every machine",
			g.nodes[id].Name)
	}
	removed := map[int]bool{id: true}
	for v, c := range comp {
		if c != best && v != id {
			removed[v] = true
		}
	}
	return removed, nil
}

// rebuildWithout reconstructs the cluster with the given node IDs removed,
// preserving the names, relative rank order and link speeds of everything
// that survives.
func (g *Graph) rebuildWithout(removed map[int]bool) (*Graph, *RankDelta, error) {
	c := New()
	oldToNewID := make([]int, len(g.nodes))
	for i := range oldToNewID {
		oldToNewID[i] = -1
	}
	for _, node := range g.nodes {
		if removed[node.ID] {
			continue
		}
		if node.Kind == Switch {
			oldToNewID[node.ID] = c.MustAddSwitch(node.Name)
		} else {
			oldToNewID[node.ID] = c.MustAddMachine(node.Name)
		}
	}
	for _, l := range g.Links() {
		nu, nv := oldToNewID[l.U], oldToNewID[l.V]
		if nu < 0 || nv < 0 {
			continue
		}
		c.MustConnectSpeed(nu, nv, g.LinkSpeed(l))
	}
	if err := c.Validate(); err != nil {
		return nil, nil, fmt.Errorf("topology: delta result invalid: %w", err)
	}
	rd := &RankDelta{
		NumOld:   g.NumMachines(),
		NumNew:   c.NumMachines(),
		OldToNew: make([]int, g.NumMachines()),
	}
	for r, id := range g.machines {
		if nid := oldToNewID[id]; nid >= 0 {
			rd.OldToNew[r] = c.rank[nid]
		} else {
			rd.OldToNew[r] = -1
			rd.Removed = append(rd.Removed, r)
		}
	}
	return c, rd, nil
}
