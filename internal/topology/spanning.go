package topology

import (
	"fmt"
	"sort"
)

// Physical wirings with redundant links. Section 3 of the paper notes that
// Ethernet switches run a spanning tree protocol, so the *forwarding*
// topology is always a tree even when the cabling is not. This file provides
// the preprocessing step: a Wiring may contain cycles and redundant links;
// SpanningTree derives the forwarding tree the way IEEE 802.1D-style
// bridges do — lowest-named switch becomes the root bridge, and every other
// node keeps the port on its best path to the root (shortest hop count,
// ties broken by the lexicographically smallest neighbor name).

// Wiring is a raw physical cluster description: an arbitrary connected
// multigraph of switches and machines (machines still have exactly one
// link).
type Wiring struct {
	names    []string
	kinds    []Kind
	byName   map[string]int
	adj      [][]int
	numLinks int
}

// NewWiring returns an empty wiring.
func NewWiring() *Wiring {
	return &Wiring{byName: make(map[string]int)}
}

func (w *Wiring) add(name string, kind Kind) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("topology: empty node name")
	}
	if _, dup := w.byName[name]; dup {
		return 0, fmt.Errorf("topology: duplicate node name %q", name)
	}
	id := len(w.names)
	w.names = append(w.names, name)
	w.kinds = append(w.kinds, kind)
	w.adj = append(w.adj, nil)
	w.byName[name] = id
	return id, nil
}

// AddSwitch declares a switch.
func (w *Wiring) AddSwitch(name string) (int, error) { return w.add(name, Switch) }

// AddMachine declares a machine.
func (w *Wiring) AddMachine(name string) (int, error) { return w.add(name, Machine) }

// Connect cables two nodes. Parallel links and cycles are allowed between
// switches; machines may have only one cable.
func (w *Wiring) Connect(u, v int) error {
	if u < 0 || u >= len(w.names) || v < 0 || v >= len(w.names) {
		return fmt.Errorf("topology: Connect(%d, %d): node out of range", u, v)
	}
	if u == v {
		return fmt.Errorf("topology: self link on %s", w.names[u])
	}
	w.adj[u] = append(w.adj[u], v)
	w.adj[v] = append(w.adj[v], u)
	w.numLinks++
	return nil
}

// SpanningTree derives the forwarding tree from the wiring:
//
//  1. The root bridge is the switch with the lexicographically smallest
//     name (standing in for the lowest bridge ID).
//  2. Every node keeps exactly one upstream link: the one on a
//     minimum-hop path to the root, ties broken by the smallest upstream
//     neighbor name. All other switch-switch links are blocked.
//
// The returned Graph preserves node names and machine declaration order
// (ranks), so all scheduling applies unchanged.
func (w *Wiring) SpanningTree() (*Graph, error) {
	n := len(w.names)
	if n == 0 {
		return nil, fmt.Errorf("topology: empty wiring")
	}
	// Pick the root bridge.
	root := -1
	for i, k := range w.kinds {
		if k != Switch {
			continue
		}
		if root < 0 || w.names[i] < w.names[root] {
			root = i
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("topology: wiring has no switches")
	}
	// Machines must have exactly one cable.
	for i, k := range w.kinds {
		if k == Machine && len(w.adj[i]) != 1 {
			return nil, fmt.Errorf("topology: machine %s has %d cables, want 1",
				w.names[i], len(w.adj[i]))
		}
	}
	// BFS by hop count from the root, visiting neighbors in name order so
	// the parent choice is the deterministic 802.1D-ish tie-break.
	parent := make([]int, n)
	dist := make([]int, n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	dist[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		// Deduplicate parallel links and order by neighbor name.
		neighbors := append([]int(nil), w.adj[u]...)
		sort.Slice(neighbors, func(i, j int) bool {
			return w.names[neighbors[i]] < w.names[neighbors[j]]
		})
		for _, v := range neighbors {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	for i, d := range dist {
		if d == -1 {
			return nil, fmt.Errorf("topology: wiring is not connected: %s unreachable",
				w.names[i])
		}
	}
	// Rebuild as a validated tree, preserving machine rank order.
	g := New()
	ids := make([]int, n)
	for i, name := range w.names {
		var err error
		if w.kinds[i] == Switch {
			ids[i], err = g.AddSwitch(name)
		} else {
			ids[i], err = g.AddMachine(name)
		}
		if err != nil {
			return nil, err
		}
	}
	for v, p := range parent {
		if p >= 0 {
			if err := g.Connect(ids[p], ids[v]); err != nil {
				return nil, err
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("topology: spanning tree invalid: %w", err)
	}
	return g, nil
}

// BlockedLinks returns the number of physical links the spanning tree
// disables (redundant cables).
func (w *Wiring) BlockedLinks() int {
	return w.numLinks - (len(w.names) - 1)
}
