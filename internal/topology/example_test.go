package topology_test

import (
	"fmt"
	"log"

	"github.com/aapc-sched/aapcsched/internal/topology"
)

// ExampleParse analyzes a small two-switch cluster.
func ExampleParse() {
	g, err := topology.ParseString(`
switches s0 s1
machines n0 n1 n2 n3
link s0 s1
link s0 n0
link s0 n1
link s1 n2
link s1 n3
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)
	fmt.Println("AAPC load:", g.AAPCLoad())
	bn := g.BottleneckLinks()[0]
	fmt.Printf("bottleneck: %s--%s (%dx%d)\n",
		g.Node(bn.Link.U).Name, g.Node(bn.Link.V).Name, bn.MachinesU, bn.MachinesV)
	// Output:
	// cluster{2 switches, 4 machines, 5 links}
	// AAPC load: 4
	// bottleneck: s0--s1 (2x2)
}

// ExampleGraph_FindRoot shows the root identification of Section 4.1.
func ExampleGraph_FindRoot() {
	g := topology.New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	g.MustConnect(s0, s1)
	for i, sw := range []int{s0, s0, s0, s1, s1} {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(sw, m)
	}
	g.MustValidate()
	ri, err := g.FindRoot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root:", g.Node(ri.Root).Name)
	for i, st := range ri.Subtrees {
		fmt.Printf("t%d: machines %v\n", i, st.Machines)
	}
	fmt.Println("phases:", ri.NumPhases())
	// Output:
	// root: s0
	// t0: machines [3 4]
	// t1: machines [0]
	// t2: machines [1]
	// t3: machines [2]
	// phases: 6
}
