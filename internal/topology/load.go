package topology

import (
	"fmt"
	"sort"
)

// LinkLoad is the AAPC load of one physical link: the number of AAPC
// messages whose path crosses the link in one direction. Because the
// topology is a tree, both directions of a link always carry the same load
// (Section 3 of the paper), so one number suffices per link.
type LinkLoad struct {
	Link Edge // canonical orientation with U < V
	// Load = |Mu| * |Mv| where removing the link splits the machines into
	// Mu and Mv.
	Load int
	// MachinesU is the number of machines on the U side of the link.
	MachinesU int
	// MachinesV is the number of machines on the V side of the link.
	MachinesV int
}

// LinkLoads computes the AAPC load of every physical link. The result is
// sorted by canonical link order (as returned by Links).
func (g *Graph) LinkLoads() []LinkLoad {
	g.ensureValid()
	rt := g.canonical()
	total := g.NumMachines()
	links := g.Links()
	loads := make([]LinkLoad, len(links))
	for i, l := range links {
		// One endpoint is the child of the other in the canonical rooting;
		// the child's machine count gives the split.
		var below int
		switch {
		case rt.parent[l.V] == l.U:
			below = rt.machineCount[l.V]
		case rt.parent[l.U] == l.V:
			below = rt.machineCount[l.U]
		default:
			panic(fmt.Sprintf("topology: link %v not in canonical tree", l))
		}
		lu := total - below
		lv := below
		if rt.parent[l.U] == l.V {
			lu, lv = lv, lu
		}
		loads[i] = LinkLoad{Link: l, Load: lu * lv, MachinesU: lu, MachinesV: lv}
	}
	return loads
}

// AAPCLoad returns the load of the AAPC pattern on the cluster: the load of
// a bottleneck link. This is the minimum number of contention-free phases in
// which AAPC can complete, and therefore the phase count achieved by the
// paper's scheduling algorithm.
func (g *Graph) AAPCLoad() int {
	max := 0
	for _, ll := range g.LinkLoads() {
		if ll.Load > max {
			max = ll.Load
		}
	}
	return max
}

// BottleneckLinks returns every link whose load equals the AAPC load.
func (g *Graph) BottleneckLinks() []LinkLoad {
	loads := g.LinkLoads()
	max := 0
	for _, ll := range loads {
		if ll.Load > max {
			max = ll.Load
		}
	}
	var out []LinkLoad
	for _, ll := range loads {
		if ll.Load == max {
			out = append(out, ll)
		}
	}
	return out
}

// BestCaseTime returns the lower bound on AAPC completion time from
// Section 3: load * msize / bandwidth, with msize in bytes and bandwidth in
// bytes per second. The result is in seconds.
func (g *Graph) BestCaseTime(msize int, bandwidth float64) float64 {
	return float64(g.AAPCLoad()) * float64(msize) / bandwidth
}

// PeakAggregateThroughput returns the peak aggregate AAPC throughput bound
// from Section 3: |M| * (|M|-1) * B / (|Mu| * |Mv|), in the same units as
// the per-link bandwidth B.
func (g *Graph) PeakAggregateThroughput(bandwidth float64) float64 {
	m := g.NumMachines()
	return float64(m) * float64(m-1) * bandwidth / float64(g.AAPCLoad())
}

// Subtree describes one branch hanging off the scheduling root in the
// two-level view of the network (Fig. 2 of the paper).
type Subtree struct {
	// Top is the node attached directly to the root (a switch or a machine).
	Top int
	// Machines lists the machine ranks in the subtree, in increasing rank
	// order. Position j in this list is the paper's node t_{i,j}.
	Machines []int
}

// RootInfo is the result of the root identification procedure (Section 4.1).
type RootInfo struct {
	// Root is the node ID of the scheduling root. It is always a switch.
	Root int
	// Subtrees are the branches of the root ordered by decreasing machine
	// count (ties broken by Top node ID), matching the paper's
	// |M0| >= |M1| >= ... >= |Mk-1| convention. Branches with no machines
	// are omitted: they carry no AAPC traffic.
	Subtrees []Subtree
}

// NumPhases returns |M0| * (|M| - |M0|): the number of phases the paper's
// schedule uses, which equals the AAPC load of the cluster.
func (ri *RootInfo) NumPhases() int {
	total := 0
	for _, t := range ri.Subtrees {
		total += len(t.Machines)
	}
	m0 := len(ri.Subtrees[0].Machines)
	return m0 * (total - m0)
}

// SubtreeOf returns the index of the subtree containing the machine rank,
// and the position of the machine within that subtree (the paper's t_{i,j}
// coordinates).
func (ri *RootInfo) SubtreeOf(rank int) (subtree, pos int) {
	for i, t := range ri.Subtrees {
		for j, r := range t.Machines {
			if r == rank {
				return i, j
			}
		}
	}
	return -1, -1
}

// FindRoot runs the root identification procedure from Section 4.1: start
// from a bottleneck link, move toward the side with at least half the
// machines until reaching a node with more than one machine-bearing branch.
// The resulting root is a switch each of whose subtrees contains at most
// |M|/2 machines (Lemma 1).
//
// FindRoot requires |M| >= 2. For |M| >= 3 the result is the scheduling root
// used by the phase-construction algorithm.
func (g *Graph) FindRoot() (*RootInfo, error) {
	g.ensureValid()
	if g.NumMachines() < 2 {
		return nil, fmt.Errorf("topology: FindRoot needs at least 2 machines, have %d",
			g.NumMachines())
	}
	bns := g.BottleneckLinks()
	bl := bns[0].Link
	// Orient the bottleneck link so that v is the heavy side (|Mu| <= |Mv|):
	// the paper walks into the side with more machines.
	u, v := bl.U, bl.V
	if bns[0].MachinesU > bns[0].MachinesV {
		u, v = v, u
	}
	// Walk from v away from u until v has more than one machine-bearing
	// branch (excluding the branch back toward u).
	prev := u
	cur := v
	for {
		branches := 0
		var next int
		for _, w := range g.adj[cur] {
			if w == prev {
				continue
			}
			if g.machinesBeyond(cur, w) > 0 {
				branches++
				next = w
			}
		}
		if branches != 1 {
			break
		}
		// Exactly one machine-bearing branch: the link (next, cur) is also a
		// bottleneck link; repeat the process from it.
		prev, cur = cur, next
	}
	if g.nodes[cur].Kind == Machine {
		// Possible only when |M| == 2 (both machines hang off one link); the
		// machine's single switch is the natural root.
		cur = g.adj[cur][0]
	}
	return g.rootInfoAt(cur)
}

// machinesBeyond counts machines in the branch reached from node `from`
// through neighbor `through` (i.e. in the component of through after
// removing the link from-through).
func (g *Graph) machinesBeyond(from, through int) int {
	rt := g.canonical()
	if rt.parent[through] == from {
		return rt.machineCount[through]
	}
	// through is the parent of from: the branch is everything except from's
	// subtree.
	return g.NumMachines() - rt.machineCount[from]
}

// rootInfoAt builds the two-level subtree view for a given root node.
func (g *Graph) rootInfoAt(root int) (*RootInfo, error) {
	if g.nodes[root].Kind != Switch {
		return nil, fmt.Errorf("topology: root %s is not a switch", g.nodes[root].Name)
	}
	ri := &RootInfo{Root: root}
	for _, w := range g.adj[root] {
		ranks := g.machineRanksBeyond(root, w)
		if len(ranks) == 0 {
			continue
		}
		sort.Ints(ranks)
		ri.Subtrees = append(ri.Subtrees, Subtree{Top: w, Machines: ranks})
	}
	if len(ri.Subtrees) == 0 {
		return nil, fmt.Errorf("topology: root %s has no machine-bearing branches",
			g.nodes[root].Name)
	}
	sort.SliceStable(ri.Subtrees, func(i, j int) bool {
		si, sj := ri.Subtrees[i], ri.Subtrees[j]
		if len(si.Machines) != len(sj.Machines) {
			return len(si.Machines) > len(sj.Machines)
		}
		return si.Top < sj.Top
	})
	return ri, nil
}

// RootInfoAt builds the two-level view for an explicitly chosen root switch.
// It allows callers (ablation studies, tests) to bypass FindRoot.
func (g *Graph) RootInfoAt(root int) (*RootInfo, error) {
	g.ensureValid()
	return g.rootInfoAt(root)
}

// machineRanksBeyond lists machine ranks in the branch reached from `from`
// through `through`.
func (g *Graph) machineRanksBeyond(from, through int) []int {
	var ranks []int
	// BFS within the branch.
	seen := map[int]bool{from: true, through: true}
	queue := []int{through}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if g.nodes[x].Kind == Machine {
			ranks = append(ranks, g.rank[x])
		}
		for _, y := range g.adj[x] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return ranks
}
