package topology

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the DSL parser: it must never panic,
// and whatever it accepts must be a valid cluster that round-trips through
// Format.
func FuzzParse(f *testing.F) {
	f.Add("switches s0 s1\nmachines a b\nlink s0 s1\nlink s0 a\nlink s1 b\n")
	f.Add("switch s\nmachine m n\nlink s m\nlink s n\n")
	f.Add("# only a comment\n")
	f.Add("link x y")
	f.Add("switch s\nmachine m\nlink s m 2.5\n")
	f.Add("machines a b\nlink a b\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted clusters must satisfy every invariant.
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted invalid cluster: %v\ninput: %q", err, src)
		}
		text := g.Format()
		g2, err := ParseString(text)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\n%s", err, text)
		}
		if g2.Format() != text {
			t.Fatalf("format not a fixed point:\n%q\nvs\n%q", text, g2.Format())
		}
		// Analysis must not panic on any accepted cluster.
		_ = g.AAPCLoad()
		if g.NumMachines() >= 2 {
			if _, err := g.FindRoot(); err != nil {
				t.Fatalf("FindRoot failed on accepted cluster: %v\n%s", err, text)
			}
		}
	})
}

// FuzzParseTopology exercises the whole DSL surface on one input: the tree
// parser and the wiring parser (which permits cycles) must never panic, and
// every wiring they accept must either produce a valid spanning tree or a
// clean error.
func FuzzParseTopology(f *testing.F) {
	f.Add("switches s0 s1\nmachines a b\nlink s0 s1\nlink s0 a\nlink s1 b\n")
	f.Add("switches s0 s1 s2\nmachines a b\nlink s0 s1\nlink s1 s2\nlink s2 s0\nlink s0 a\nlink s1 b\n")
	f.Add("switch s\nlink s s\n")
	f.Add("machines m\n")
	f.Add("switches x y\nmachine m\nlink x y\nlink x y\nlink y m\n")
	f.Add("")
	f.Add("link")
	f.Add("switch \xff\nmachine \x00\n")
	f.Fuzz(func(t *testing.T, src string) {
		// The strict tree parser: accepted input must round-trip (same
		// invariants FuzzParse checks, repeated here so one corpus covers
		// both parsers).
		if g, err := ParseString(src); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("Parse accepted invalid cluster: %v\ninput: %q", err, src)
			}
		}
		// The wiring parser: cycles are legal, so the only hard promises are
		// no panic and a valid tree out of SpanningTree when it succeeds.
		w, err := ParseWiring(strings.NewReader(src))
		if err != nil {
			return
		}
		g, err := w.SpanningTree()
		if err != nil {
			return // wirings with no machines etc. may be rejected here
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("SpanningTree produced invalid cluster: %v\ninput: %q", err, src)
		}
		if _, err := ParseString(g.Format()); err != nil {
			t.Fatalf("spanning tree does not reparse: %v\n%s", err, g.Format())
		}
	})
}
