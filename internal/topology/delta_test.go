package topology

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// deltaTestCluster is two switches with two machines each.
func deltaTestCluster(t *testing.T) *Graph {
	t.Helper()
	g, err := ParseString(`
switches s0 s1
machines n0 n1 n2 n3
link s0 s1
link s0 n0
link s0 n1
link s1 n2
link s1 n3
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHashStableAndSensitive(t *testing.T) {
	g := deltaTestCluster(t)
	h := g.Hash()
	if len(h) != 16 {
		t.Fatalf("Hash() = %q, want 16 hex chars", h)
	}
	if g.Hash() != h || g.Clone().Hash() != h {
		t.Fatal("hash not stable across calls and Clone")
	}
	g2, _, err := g.ApplyDelta(Delta{Op: OpJoin, Node: "n4", Attach: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Hash() == h {
		t.Fatal("hash unchanged after join")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := deltaTestCluster(t)
	c := g.Clone()
	if c.Format() != g.Format() {
		t.Fatalf("clone differs:\n%s\nvs\n%s", c.Format(), g.Format())
	}
	c.MustAddMachine("extra")
	if c.Format() == g.Format() {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestApplyDeltaJoin(t *testing.T) {
	g := deltaTestCluster(t)
	g2, rd, err := g.ApplyDelta(Delta{Op: OpJoin, Node: "n4", Attach: "s1", Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumMachines() != 5 || rd.NumOld != 4 || rd.NumNew != 5 {
		t.Fatalf("join: machines=%d rd=%+v", g2.NumMachines(), rd)
	}
	if len(rd.Added) != 1 || rd.Added[0] != 4 || len(rd.Removed) != 0 {
		t.Fatalf("join rank delta: %+v", rd)
	}
	for r, nr := range rd.OldToNew {
		if r != nr {
			t.Fatalf("join must not renumber survivors: %v", rd.OldToNew)
		}
	}
	id, _ := g2.Lookup("n4")
	sw, _ := g2.Lookup("s1")
	if s := g2.LinkSpeed(Edge{U: min(id, sw), V: max(id, sw)}); s != 2 {
		t.Fatalf("join link speed = %g, want 2", s)
	}
	// The original graph is untouched.
	if g.NumMachines() != 4 {
		t.Fatal("ApplyDelta mutated the receiver")
	}
}

func TestApplyDeltaLeave(t *testing.T) {
	g := deltaTestCluster(t)
	g2, rd, err := g.ApplyDelta(Delta{Op: OpLeave, Node: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumMachines() != 3 {
		t.Fatalf("machines = %d, want 3", g2.NumMachines())
	}
	want := []int{0, -1, 1, 2}
	for r, nr := range rd.OldToNew {
		if nr != want[r] {
			t.Fatalf("OldToNew = %v, want %v", rd.OldToNew, want)
		}
	}
	if len(rd.Removed) != 1 || rd.Removed[0] != 1 {
		t.Fatalf("Removed = %v", rd.Removed)
	}
	// Rank order of survivors is preserved by name.
	for i, name := range []string{"n0", "n2", "n3"} {
		if got := g2.Node(g2.MachineID(i)).Name; got != name {
			t.Fatalf("rank %d = %s, want %s", i, got, name)
		}
	}
}

func TestApplyDeltaSwitchFail(t *testing.T) {
	g := deltaTestCluster(t)
	g2, rd, err := g.ApplyDelta(Delta{Op: OpSwitchFail, Node: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	// s1 and its machines n2, n3 drop; s0 keeps n0, n1.
	if g2.NumMachines() != 2 || g2.NumSwitches() != 1 {
		t.Fatalf("after failswitch: %s", g2)
	}
	if len(rd.Removed) != 2 || rd.Removed[0] != 2 || rd.Removed[1] != 3 {
		t.Fatalf("Removed = %v", rd.Removed)
	}
}

func TestApplyDeltaSwitchJoin(t *testing.T) {
	g := deltaTestCluster(t)
	g2, rd, err := g.ApplyDelta(Delta{Op: OpSwitchJoin, Node: "s2", Attach: "s0"})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumSwitches() != 3 || !rd.Identity() {
		t.Fatalf("switchjoin: switches=%d rd=%+v", g2.NumSwitches(), rd)
	}
	// Machines can then join the new switch.
	if _, _, err := g2.ApplyDelta(Delta{Op: OpJoin, Node: "n4", Attach: "s2"}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	g := deltaTestCluster(t)
	bad := []Delta{
		{Op: OpJoin, Node: "n0", Attach: "s0"},      // duplicate name
		{Op: OpJoin, Node: "n9", Attach: "nope"},    // unknown switch
		{Op: OpJoin, Node: "n9", Attach: "n0"},      // attach to machine
		{Op: OpLeave, Node: "s0"},                   // leave a switch
		{Op: OpLeave, Node: "ghost"},                // unknown machine
		{Op: OpSwitchFail, Node: "n0"},              // fail a machine
		{Op: OpSwitchJoin, Node: "s0", Attach: "s1"}, // duplicate switch
	}
	for _, d := range bad {
		if _, _, err := g.ApplyDelta(d); err == nil {
			t.Errorf("ApplyDelta(%v): want error", d)
		}
	}
	// The only switch of a star cannot fail, and the last machine cannot
	// leave.
	star, err := ParseString("switch s\nmachines a b\nlink s a\nlink s b\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := star.ApplyDelta(Delta{Op: OpSwitchFail, Node: "s"}); err == nil {
		t.Error("failing the only switch must error")
	}
	one, _, err := star.ApplyDelta(Delta{Op: OpLeave, Node: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := one.ApplyDelta(Delta{Op: OpLeave, Node: "b"}); err == nil {
		t.Error("removing the last machine must error")
	}
}

func TestParseDeltaRoundTrip(t *testing.T) {
	lines := []string{
		"join n9 s2",
		"join n9 s2 2.5",
		"leave n3",
		"failswitch s1",
		"joinswitch s9 s2",
	}
	for _, line := range lines {
		d, err := ParseDelta(line)
		if err != nil {
			t.Fatalf("ParseDelta(%q): %v", line, err)
		}
		if d.Format() != line {
			t.Errorf("round trip %q -> %q", line, d.Format())
		}
	}
	for _, bad := range []string{"", "# comment only", "join", "join a", "leave", "explode n0", "join a b -1"} {
		if _, err := ParseDelta(bad); err == nil {
			t.Errorf("ParseDelta(%q): want error", bad)
		}
	}
	ds, err := ParseDeltas(strings.NewReader("# storm\njoin a s0\n\nleave b # trailing\n"))
	if err != nil || len(ds) != 2 {
		t.Fatalf("ParseDeltas = %v, %v", ds, err)
	}
}

// TestQuickDeltaChainsStayValid applies random delta chains to random
// clusters: every accepted delta must yield a validating cluster with a
// consistent rank mapping.
func TestQuickDeltaChainsStayValid(t *testing.T) {
	prop := func(seed int64, steps uint) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomCluster(RandomOptions{Switches: 1 + rng.Intn(4), Machines: 2 + rng.Intn(8), Rand: rng})
		for step := 0; step < int(steps%12)+1; step++ {
			d := randomDelta(rng, g, step)
			g2, rd, err := g.ApplyDelta(d)
			if err != nil {
				continue // infeasible deltas must fail cleanly, not panic
			}
			if err := g2.Validate(); err != nil {
				t.Logf("delta %v produced invalid graph: %v", d, err)
				return false
			}
			if !rankDeltaConsistent(g, g2, rd) {
				t.Logf("inconsistent rank delta %+v for %v", rd, d)
				return false
			}
			g = g2
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomDelta(rng *rand.Rand, g *Graph, step int) Delta {
	switchName := func() string {
		var names []string
		for id := 0; id < g.NumNodes(); id++ {
			if g.Node(id).Kind == Switch {
				names = append(names, g.Node(id).Name)
			}
		}
		return names[rng.Intn(len(names))]
	}
	switch rng.Intn(4) {
	case 0:
		return Delta{Op: OpJoin, Node: nameFor("q", step, rng), Attach: switchName()}
	case 1:
		return Delta{Op: OpLeave, Node: g.Node(g.MachineID(rng.Intn(g.NumMachines()))).Name}
	case 2:
		return Delta{Op: OpSwitchFail, Node: switchName()}
	default:
		return Delta{Op: OpSwitchJoin, Node: nameFor("w", step, rng), Attach: switchName()}
	}
}

func nameFor(prefix string, step int, rng *rand.Rand) string {
	return prefix + string(rune('a'+rng.Intn(26))) + string(rune('0'+step%10))
}

// rankDeltaConsistent cross-checks the mapping against machine names.
func rankDeltaConsistent(oldG, newG *Graph, rd *RankDelta) bool {
	if rd.NumOld != oldG.NumMachines() || rd.NumNew != newG.NumMachines() {
		return false
	}
	if len(rd.OldToNew) != rd.NumOld {
		return false
	}
	removed := 0
	for r, nr := range rd.OldToNew {
		name := oldG.Node(oldG.MachineID(r)).Name
		if nr < 0 {
			removed++
			if _, ok := newG.Lookup(name); ok {
				return false // mapped to -1 but still present
			}
			continue
		}
		if nr >= rd.NumNew || newG.Node(newG.MachineID(nr)).Name != name {
			return false
		}
	}
	if removed != len(rd.Removed) {
		return false
	}
	for _, nr := range rd.Added {
		name := newG.Node(newG.MachineID(nr)).Name
		if _, ok := oldG.Lookup(name); ok {
			return false // "added" machine already existed
		}
	}
	return rd.NumNew == rd.NumOld-len(rd.Removed)+len(rd.Added)
}

// FuzzTopologyDelta throws arbitrary text at the delta parser and applies
// whatever it accepts to a small cluster: the parser must never panic,
// accepted deltas must round-trip through Format, and successful
// applications must produce validating clusters with consistent rank
// mappings.
func FuzzTopologyDelta(f *testing.F) {
	f.Add("join n9 s0")
	f.Add("join n9 s1 2.5")
	f.Add("leave n2")
	f.Add("failswitch s1")
	f.Add("joinswitch s7 s0")
	f.Add("leave   n0   # comment")
	f.Add("join \xff s0")
	f.Fuzz(func(t *testing.T, line string) {
		d, err := ParseDelta(line)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		d2, err := ParseDelta(d.Format())
		if err != nil || d2 != d {
			t.Fatalf("delta round trip: %+v -> %q -> %+v, %v", d, d.Format(), d2, err)
		}
		g, perr := ParseString(`
switches s0 s1
machines n0 n1 n2 n3
link s0 s1
link s0 n0
link s0 n1
link s1 n2
link s1 n3
`)
		if perr != nil {
			t.Fatal(perr)
		}
		g2, rd, err := g.ApplyDelta(d)
		if err != nil {
			return // infeasible against this cluster; clean rejection
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("accepted delta %v produced invalid cluster: %v", d, err)
		}
		if !rankDeltaConsistent(g, g2, rd) {
			t.Fatalf("inconsistent rank delta %+v for %v", rd, d)
		}
	})
}
