package topology

import (
	"fmt"
	"math/rand"
)

// RandomOptions controls RandomCluster generation.
type RandomOptions struct {
	// Switches is the number of switches (>= 1).
	Switches int
	// Machines is the number of machines (>= 2).
	Machines int
	// Rand is the randomness source; must not be nil.
	Rand *rand.Rand
}

// RandomCluster generates a random valid Ethernet switched cluster: a random
// tree over the switches with machines attached to uniformly random
// switches. Every generated cluster validates; machine ranks are assigned in
// name order n0, n1, ...
//
// Switches that end up with no machines anywhere beyond them are permitted:
// they are legal (if pointless) topologies and good stress tests.
func RandomCluster(opt RandomOptions) *Graph {
	if opt.Switches < 1 || opt.Machines < 2 {
		panic(fmt.Sprintf("topology: RandomCluster needs >=1 switch and >=2 machines, got %d/%d",
			opt.Switches, opt.Machines))
	}
	rng := opt.Rand
	g := New()
	switches := make([]int, opt.Switches)
	for i := range switches {
		switches[i] = g.MustAddSwitch(fmt.Sprintf("s%d", i))
	}
	// Random tree over switches: each non-first switch links to a random
	// earlier one (random recursive tree).
	for i := 1; i < opt.Switches; i++ {
		g.MustConnect(switches[i], switches[rng.Intn(i)])
	}
	for i := 0; i < opt.Machines; i++ {
		m := g.MustAddMachine(fmt.Sprintf("n%d", i))
		g.MustConnect(m, switches[rng.Intn(opt.Switches)])
	}
	return g.MustValidate()
}
