package topology

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// fig1 builds the example cluster of Fig. 1 in the paper:
//
//	s0 — n0, n1, s2;  s2 — n2;  s1 (root) — s0, s3, n5;  s3 — n3, n4
//
// This wiring is the unique one consistent with the paper's
// path(n0, n3) = {(n0,s0), (s0,s1), (s1,s3), (s3,n3)} and with the subtree
// decomposition t0 = t_s0 = {n0,n1,n2}, t1 = t_s3 = {n3,n4}, t2 = t_n5 = {n5}.
func fig1(t testing.TB) *Graph {
	t.Helper()
	g := New()
	s0 := g.MustAddSwitch("s0")
	s1 := g.MustAddSwitch("s1")
	s2 := g.MustAddSwitch("s2")
	s3 := g.MustAddSwitch("s3")
	n := make([]int, 6)
	for i := range n {
		n[i] = g.MustAddMachine("n" + string(rune('0'+i)))
	}
	g.MustConnect(s0, n[0])
	g.MustConnect(s0, n[1])
	g.MustConnect(s0, s2)
	g.MustConnect(s2, n[2])
	g.MustConnect(s1, s0)
	g.MustConnect(s1, s3)
	g.MustConnect(s1, n[5])
	g.MustConnect(s3, n[3])
	g.MustConnect(s3, n[4])
	if err := g.Validate(); err != nil {
		t.Fatalf("fig1 validate: %v", err)
	}
	return g
}

func TestFig1Basics(t *testing.T) {
	g := fig1(t)
	if got, want := g.NumMachines(), 6; got != want {
		t.Errorf("NumMachines = %d, want %d", got, want)
	}
	if got, want := g.NumSwitches(), 4; got != want {
		t.Errorf("NumSwitches = %d, want %d", got, want)
	}
	if got, want := g.NumLinks(), 9; got != want {
		t.Errorf("NumLinks = %d, want %d", got, want)
	}
}

func TestFig1PathN0N3(t *testing.T) {
	g := fig1(t)
	n0, _ := g.Lookup("n0")
	n3, _ := g.Lookup("n3")
	s0, _ := g.Lookup("s0")
	s1, _ := g.Lookup("s1")
	s3, _ := g.Lookup("s3")
	want := []Edge{{n0, s0}, {s0, s1}, {s1, s3}, {s3, n3}}
	got := g.Path(n0, n3)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Path(n0, n3) = %v, want %v", got, want)
	}
	// Reverse path is the edge-reversed mirror.
	rev := g.Path(n3, n0)
	if len(rev) != len(want) {
		t.Fatalf("Path(n3, n0) length %d, want %d", len(rev), len(want))
	}
	for i, e := range rev {
		if e != want[len(want)-1-i].Reverse() {
			t.Errorf("reverse path edge %d = %v", i, e)
		}
	}
}

func TestPathSelfEmpty(t *testing.T) {
	g := fig1(t)
	n0, _ := g.Lookup("n0")
	if p := g.Path(n0, n0); len(p) != 0 {
		t.Errorf("Path(n0, n0) = %v, want empty", p)
	}
}

func TestFig1Loads(t *testing.T) {
	g := fig1(t)
	if got, want := g.AAPCLoad(), 9; got != want {
		t.Errorf("AAPCLoad = %d, want %d", got, want)
	}
	bl := g.BottleneckLinks()
	if len(bl) != 1 {
		t.Fatalf("BottleneckLinks = %v, want exactly one", bl)
	}
	s0, _ := g.Lookup("s0")
	s1, _ := g.Lookup("s1")
	l := bl[0].Link
	if !(l == (Edge{s0, s1}) || l == (Edge{s1, s0})) {
		t.Errorf("bottleneck link = %v, want s0-s1", l)
	}
	// Loads by link: s0-s1: 3*3=9; s1-s3: 2*4=8; s0-s2, s1-n5: 1*5=5;
	// machine links: 5.
	for _, ll := range g.LinkLoads() {
		mu, mv := ll.MachinesU, ll.MachinesV
		if mu*mv != ll.Load {
			t.Errorf("link %v: load %d != |Mu|*|Mv| = %d*%d", ll.Link, ll.Load, mu, mv)
		}
		if mu+mv != g.NumMachines() {
			t.Errorf("link %v: machine split %d+%d != %d", ll.Link, mu, mv, g.NumMachines())
		}
	}
}

func TestFig1PeakThroughput(t *testing.T) {
	g := fig1(t)
	// |M|(|M|-1)B/load = 6*5*100/9.
	got := g.PeakAggregateThroughput(100)
	want := 6.0 * 5 * 100 / 9
	if got != want {
		t.Errorf("PeakAggregateThroughput = %v, want %v", got, want)
	}
	// Best case time: 9 * msize / B.
	if got, want := g.BestCaseTime(1000, 100), 90.0; got != want {
		t.Errorf("BestCaseTime = %v, want %v", got, want)
	}
}

func TestFig1RootInfoAtS1(t *testing.T) {
	g := fig1(t)
	s1, _ := g.Lookup("s1")
	ri, err := g.RootInfoAt(s1)
	if err != nil {
		t.Fatal(err)
	}
	wantSizes := []int{3, 2, 1}
	if len(ri.Subtrees) != 3 {
		t.Fatalf("subtrees = %d, want 3", len(ri.Subtrees))
	}
	for i, w := range wantSizes {
		if got := len(ri.Subtrees[i].Machines); got != w {
			t.Errorf("|M%d| = %d, want %d", i, got, w)
		}
	}
	if got := ri.Subtrees[0].Machines; !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("t0 machines = %v, want [0 1 2]", got)
	}
	if got := ri.Subtrees[1].Machines; !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("t1 machines = %v, want [3 4]", got)
	}
	if got := ri.Subtrees[2].Machines; !reflect.DeepEqual(got, []int{5}) {
		t.Errorf("t2 machines = %v, want [5]", got)
	}
	if got, want := ri.NumPhases(), 9; got != want {
		t.Errorf("NumPhases = %d, want %d", got, want)
	}
	if st, pos := ri.SubtreeOf(4); st != 1 || pos != 1 {
		t.Errorf("SubtreeOf(4) = (%d, %d), want (1, 1)", st, pos)
	}
	if st, pos := ri.SubtreeOf(99); st != -1 || pos != -1 {
		t.Errorf("SubtreeOf(99) = (%d, %d), want (-1, -1)", st, pos)
	}
}

// checkRootLemma1 asserts the two root conditions of Section 4.1 plus
// Lemma 1: the root is a switch adjacent to a bottleneck link, and every
// subtree holds at most |M|/2 machines.
func checkRootLemma1(t *testing.T, g *Graph, ri *RootInfo) {
	t.Helper()
	if g.Node(ri.Root).Kind != Switch {
		t.Errorf("root %s is not a switch", g.Node(ri.Root).Name)
	}
	half := g.NumMachines() / 2
	total := 0
	for i, st := range ri.Subtrees {
		if len(st.Machines) > half {
			t.Errorf("subtree %d has %d machines > |M|/2 = %d", i, len(st.Machines), half)
		}
		if i > 0 && len(st.Machines) > len(ri.Subtrees[i-1].Machines) {
			t.Errorf("subtrees not sorted by size: %d after %d",
				len(st.Machines), len(ri.Subtrees[i-1].Machines))
		}
		total += len(st.Machines)
	}
	if total != g.NumMachines() {
		t.Errorf("subtrees cover %d machines, want %d", total, g.NumMachines())
	}
	// The root must be adjacent to a bottleneck link.
	adjacent := false
	for _, bl := range g.BottleneckLinks() {
		if bl.Link.U == ri.Root || bl.Link.V == ri.Root {
			adjacent = true
		}
	}
	if !adjacent {
		t.Errorf("root %s is not adjacent to any bottleneck link", g.Node(ri.Root).Name)
	}
	// NumPhases must equal the AAPC load (the optimality target).
	if got, want := ri.NumPhases(), g.AAPCLoad(); got != want {
		t.Errorf("NumPhases = %d, want AAPC load %d", got, want)
	}
}

func TestFig1FindRoot(t *testing.T) {
	g := fig1(t)
	ri, err := g.FindRoot()
	if err != nil {
		t.Fatal(err)
	}
	checkRootLemma1(t, g, ri)
	// Either s0 or s1 satisfies the root conditions (the bottleneck split is
	// a 3/3 tie); the paper picks s1.
	name := g.Node(ri.Root).Name
	if name != "s0" && name != "s1" {
		t.Errorf("root = %s, want s0 or s1", name)
	}
}

func TestFindRootSingleSwitch(t *testing.T) {
	g := New()
	s := g.MustAddSwitch("s0")
	for i := 0; i < 5; i++ {
		m := g.MustAddMachine("n" + string(rune('0'+i)))
		g.MustConnect(s, m)
	}
	g.MustValidate()
	ri, err := g.FindRoot()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Root != s {
		t.Errorf("root = %d, want the single switch %d", ri.Root, s)
	}
	if len(ri.Subtrees) != 5 {
		t.Errorf("subtrees = %d, want 5", len(ri.Subtrees))
	}
	if got, want := ri.NumPhases(), 4; got != want {
		t.Errorf("NumPhases = %d, want %d (= N-1 for a star)", got, want)
	}
	checkRootLemma1(t, g, ri)
}

func TestFindRootChainOfSwitches(t *testing.T) {
	// s0 - s1 - s2 - s3 with 2 machines on each end pair: the walk must
	// cross intermediate degree-2 switches.
	g := New()
	var sw [4]int
	for i := range sw {
		sw[i] = g.MustAddSwitch("s" + string(rune('0'+i)))
		if i > 0 {
			g.MustConnect(sw[i-1], sw[i])
		}
	}
	for i := 0; i < 3; i++ {
		m := g.MustAddMachine("a" + string(rune('0'+i)))
		g.MustConnect(sw[0], m)
	}
	for i := 0; i < 3; i++ {
		m := g.MustAddMachine("b" + string(rune('0'+i)))
		g.MustConnect(sw[3], m)
	}
	g.MustValidate()
	ri, err := g.FindRoot()
	if err != nil {
		t.Fatal(err)
	}
	checkRootLemma1(t, g, ri)
	// All three inter-switch links are bottlenecks (3*3); the root must be a
	// switch with more than one machine-bearing branch: s0 or s3.
	name := g.Node(ri.Root).Name
	if name != "s0" && name != "s3" {
		t.Errorf("root = %s, want s0 or s3", name)
	}
}

func TestFindRootTwoMachines(t *testing.T) {
	g := New()
	s := g.MustAddSwitch("s0")
	a := g.MustAddMachine("a")
	b := g.MustAddMachine("b")
	g.MustConnect(s, a)
	g.MustConnect(s, b)
	g.MustValidate()
	ri, err := g.FindRoot()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Root != s {
		t.Errorf("root = %v, want %v", ri.Root, s)
	}
}

func TestFindRootLemma1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		g := RandomCluster(RandomOptions{
			Switches: 1 + rng.Intn(8),
			Machines: 3 + rng.Intn(30),
			Rand:     rng,
		})
		ri, err := g.FindRoot()
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, g.Format())
		}
		checkRootLemma1(t, g, ri)
		if t.Failed() {
			t.Fatalf("trial %d topology:\n%s", trial, g.Format())
		}
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := New().Validate(); err == nil {
			t.Error("want error for empty graph")
		}
	})
	t.Run("no machines", func(t *testing.T) {
		g := New()
		g.MustAddSwitch("s0")
		if err := g.Validate(); err == nil {
			t.Error("want error for machine-less graph")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		g := New()
		a := g.MustAddSwitch("a")
		b := g.MustAddSwitch("b")
		c := g.MustAddSwitch("c")
		m := g.MustAddMachine("m")
		n := g.MustAddMachine("n")
		g.MustConnect(a, b)
		g.MustConnect(b, c)
		g.MustConnect(c, a)
		g.MustConnect(a, m)
		g.MustConnect(b, n)
		if err := g.Validate(); err == nil {
			t.Error("want error for cyclic graph")
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		g := New()
		g.MustAddSwitch("a")
		g.MustAddSwitch("b")
		m := g.MustAddMachine("m")
		n := g.MustAddMachine("n")
		g.MustConnect(m, n)
		if err := g.Validate(); err == nil {
			t.Error("want error for disconnected graph")
		}
	})
	t.Run("machine not leaf", func(t *testing.T) {
		g := New()
		m := g.MustAddMachine("m")
		a := g.MustAddSwitch("a")
		b := g.MustAddSwitch("b")
		n := g.MustAddMachine("n")
		g.MustConnect(a, m)
		g.MustConnect(m, b)
		g.MustConnect(b, n)
		if err := g.Validate(); err == nil {
			t.Error("want error for non-leaf machine")
		}
	})
	t.Run("duplicate name", func(t *testing.T) {
		g := New()
		g.MustAddSwitch("x")
		if _, err := g.AddMachine("x"); err == nil {
			t.Error("want error for duplicate name")
		}
	})
	t.Run("self link", func(t *testing.T) {
		g := New()
		s := g.MustAddSwitch("s")
		if err := g.Connect(s, s); err == nil {
			t.Error("want error for self link")
		}
	})
	t.Run("duplicate link", func(t *testing.T) {
		g := New()
		a := g.MustAddSwitch("a")
		b := g.MustAddSwitch("b")
		g.MustConnect(a, b)
		if err := g.Connect(b, a); err == nil {
			t.Error("want error for duplicate link")
		}
	})
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# Fig. 1 of the paper
switches s0 s1 s2 s3
machines n0 n1 n2 n3 n4 n5
link s0 n0
link s0 n1
link s0 s2
link s2 n2
link s1 s0
link s1 s3
link s1 n5
link s3 n3
link s3 n4
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMachines() != 6 || g.NumSwitches() != 4 {
		t.Fatalf("parsed %s", g)
	}
	if g.AAPCLoad() != 9 {
		t.Errorf("AAPCLoad = %d, want 9", g.AAPCLoad())
	}
	// Round trip.
	text := g.Format()
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if g2.Format() != text {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", text, g2.Format())
	}
	if g2.NumMachines() != g.NumMachines() || g2.AAPCLoad() != g.AAPCLoad() {
		t.Errorf("round trip changed analysis")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown keyword": "frobnicate s0",
		"unknown node":    "switch s0\nlink s0 s1",
		"bad link arity":  "switch s0 s1\nlink s0",
		"dup name":        "switch s0 s0",
		"not a tree":      "switch s0 s1\nmachine m0 m1\nlink s0 m0\nlink s1 m1",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: want parse error for %q", name, src)
		}
	}
}

func TestEdgeIndex(t *testing.T) {
	g := fig1(t)
	idx := g.NewEdgeIndex()
	if got, want := idx.Len(), 2*g.NumLinks(); got != want {
		t.Fatalf("EdgeIndex.Len = %d, want %d", got, want)
	}
	seen := map[int]bool{}
	for _, l := range g.Links() {
		for _, e := range []Edge{l, l.Reverse()} {
			id := idx.ID(e)
			if seen[id] {
				t.Errorf("duplicate edge id %d", id)
			}
			seen[id] = true
			if idx.Edge(id) != e {
				t.Errorf("Edge(ID(%v)) = %v", e, idx.Edge(id))
			}
		}
	}
	n0, _ := g.Lookup("n0")
	n3, _ := g.Lookup("n3")
	ids := g.PathIDs(idx, n0, n3)
	if len(ids) != 4 {
		t.Errorf("PathIDs length = %d, want 4", len(ids))
	}
}

func TestKindString(t *testing.T) {
	if Switch.String() != "switch" || Machine.String() != "machine" {
		t.Error("Kind.String mismatch")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}

func TestRandomClusterValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		g := RandomCluster(RandomOptions{
			Switches: 1 + rng.Intn(10),
			Machines: 2 + rng.Intn(40),
			Rand:     rng,
		})
		if err := g.Validate(); err != nil {
			t.Fatalf("random cluster invalid: %v", err)
		}
		// Every pair of machines must have a path whose first edge leaves
		// the source and last edge enters the destination.
		m := g.NumMachines()
		src := rng.Intn(m)
		dst := rng.Intn(m)
		if src != dst {
			p := g.PathBetweenRanks(src, dst)
			if p[0].U != g.MachineID(src) || p[len(p)-1].V != g.MachineID(dst) {
				t.Fatalf("path endpoints wrong: %v", p)
			}
		}
	}
}

func TestValidateRejectsMachineToMachineLink(t *testing.T) {
	g := New()
	a := g.MustAddMachine("a")
	b := g.MustAddMachine("b")
	g.MustConnect(a, b)
	if err := g.Validate(); err == nil {
		t.Error("want error for machine-machine link (no switch)")
	}
}
