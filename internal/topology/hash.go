package topology

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash returns a short stable identifier for the cluster: the hex-encoded
// 64-bit prefix of the SHA-256 of the canonical DSL text (Format). Graphs
// with identical node names, ranks, links and link speeds hash identically;
// any structural change produces a different hash. The schedule daemon keys
// compiled schedules on it, so the hash must not depend on incidental state
// such as insertion history beyond what Format exposes.
func (g *Graph) Hash() string {
	sum := sha256.Sum256([]byte(g.Format()))
	return hex.EncodeToString(sum[:8])
}

// Clone returns an independent copy of the graph with the same node IDs,
// machine ranks, links and link speeds. The copy is validated if the
// original validates.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		if n.Kind == Switch {
			c.MustAddSwitch(n.Name)
		} else {
			c.MustAddMachine(n.Name)
		}
	}
	for _, l := range g.Links() {
		c.MustConnectSpeed(l.U, l.V, g.LinkSpeed(l))
	}
	return c
}
