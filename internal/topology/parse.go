package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The topology DSL is a line-oriented text format:
//
//	# comment
//	switch  s0 s1 s2          # declare switches
//	machine n0 n1 n2 n3       # declare machines (rank order = declaration order)
//	link    s0 s1             # full-duplex link
//	link    s0 n0 10          # optional speed multiplier (10x trunk)
//
// Keywords may repeat, blank lines and #-comments are ignored.

// Parse reads a cluster description in the topology DSL and validates it.
func Parse(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "switch", "switches":
			for _, name := range fields[1:] {
				if _, err := g.AddSwitch(name); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineno, err)
				}
			}
		case "machine", "machines":
			for _, name := range fields[1:] {
				if _, err := g.AddMachine(name); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineno, err)
				}
			}
		case "link":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("line %d: link needs 2 endpoints and an optional speed", lineno)
			}
			u, ok := g.Lookup(fields[1])
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineno, fields[1])
			}
			v, ok := g.Lookup(fields[2])
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineno, fields[2])
			}
			speed := 1.0
			if len(fields) == 4 {
				s, err := strconv.ParseFloat(fields[3], 64)
				if err != nil || s <= 0 {
					return nil, fmt.Errorf("line %d: bad link speed %q", lineno, fields[3])
				}
				speed = s
			}
			if err := g.ConnectSpeed(u, v, speed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown keyword %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) {
	return Parse(strings.NewReader(s))
}

// Write emits the cluster in the topology DSL. Parsing the output
// reconstructs an identical graph (same names, ranks and links).
func (g *Graph) Write(w io.Writer) error {
	var switches, machines []string
	for _, n := range g.nodes {
		if n.Kind == Switch {
			switches = append(switches, n.Name)
		}
	}
	for _, id := range g.machines {
		machines = append(machines, g.nodes[id].Name)
	}
	bw := bufio.NewWriter(w)
	if len(switches) > 0 {
		fmt.Fprintf(bw, "switches %s\n", strings.Join(switches, " "))
	}
	if len(machines) > 0 {
		fmt.Fprintf(bw, "machines %s\n", strings.Join(machines, " "))
	}
	links := g.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].U != links[j].U {
			return links[i].U < links[j].U
		}
		return links[i].V < links[j].V
	})
	for _, l := range links {
		if s := g.LinkSpeed(l); s != 1 {
			fmt.Fprintf(bw, "link %s %s %g\n", g.nodes[l.U].Name, g.nodes[l.V].Name, s)
		} else {
			fmt.Fprintf(bw, "link %s %s\n", g.nodes[l.U].Name, g.nodes[l.V].Name)
		}
	}
	return bw.Flush()
}

// Format returns the DSL text for the cluster.
func (g *Graph) Format() string {
	var sb strings.Builder
	if err := g.Write(&sb); err != nil {
		panic(err) // strings.Builder never fails
	}
	return sb.String()
}

// ParseWiring reads the same DSL as Parse but permits cycles and redundant
// links between switches (physical cabling before the spanning tree
// protocol prunes it). Link speeds are not supported on wirings: blocked
// links make per-cable speeds ambiguous.
func ParseWiring(r io.Reader) (*Wiring, error) {
	w := NewWiring()
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "switch", "switches":
			for _, name := range fields[1:] {
				if _, err := w.AddSwitch(name); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineno, err)
				}
			}
		case "machine", "machines":
			for _, name := range fields[1:] {
				if _, err := w.AddMachine(name); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineno, err)
				}
			}
		case "link":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: wiring links take exactly 2 endpoints", lineno)
			}
			u, ok := w.byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineno, fields[1])
			}
			v, ok := w.byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("line %d: unknown node %q", lineno, fields[2])
			}
			if err := w.Connect(u, v); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("line %d: unknown keyword %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return w, nil
}

// DOT renders the cluster in Graphviz dot syntax: switches as boxes,
// machines as circles, non-unit link speeds as edge labels.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("graph cluster {\n")
	for _, n := range g.nodes {
		shape := "circle"
		if n.Kind == Switch {
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %q [shape=%s];\n", n.Name, shape)
	}
	for _, l := range g.Links() {
		label := ""
		if s := g.LinkSpeed(l); s != 1 {
			label = fmt.Sprintf(" [label=\"%gx\"]", s)
		}
		fmt.Fprintf(&sb, "  %q -- %q%s;\n", g.nodes[l.U].Name, g.nodes[l.V].Name, label)
	}
	sb.WriteString("}\n")
	return sb.String()
}
