package topology

import (
	"fmt"
	"math"
)

// Link speeds extend the paper's uniform-bandwidth model to heterogeneous
// Ethernet clusters (e.g. gigabit trunk uplinks feeding 100 Mbps machine
// links). A link's speed is a multiplier relative to the base bandwidth B:
// speed 1 is a standard link, speed 10 a 10x-faster trunk. The scheduling
// algorithm is unchanged — its phases are contention-free regardless of
// speeds — but the bottleneck analysis and the throughput bounds become
// weighted: the binding constraint is the link maximizing load/speed.

// ConnectSpeed adds a full-duplex link whose bandwidth is speed times the
// base link bandwidth. Connect is equivalent to ConnectSpeed with speed 1.
func (g *Graph) ConnectSpeed(u, v int, speed float64) error {
	if speed <= 0 {
		return fmt.Errorf("topology: link speed %v must be positive", speed)
	}
	if err := g.Connect(u, v); err != nil {
		return err
	}
	if speed != 1 {
		if g.speeds == nil {
			g.speeds = make(map[Edge]float64)
		}
		if u > v {
			u, v = v, u
		}
		g.speeds[Edge{U: u, V: v}] = speed
	}
	return nil
}

// MustConnectSpeed is ConnectSpeed that panics on error.
func (g *Graph) MustConnectSpeed(u, v int, speed float64) {
	if err := g.ConnectSpeed(u, v, speed); err != nil {
		panic(err)
	}
}

// LinkSpeed returns the speed multiplier of the link containing the edge
// (either direction), 1 for links added with plain Connect.
func (g *Graph) LinkSpeed(e Edge) float64 {
	if g.speeds == nil {
		return 1
	}
	if e.U > e.V {
		e = e.Reverse()
	}
	if s, ok := g.speeds[e]; ok {
		return s
	}
	return 1
}

// Uniform reports whether every link has the same speed.
func (g *Graph) Uniform() bool {
	for _, s := range g.speeds {
		if s != 1 {
			return false
		}
	}
	return true
}

// WeightedBottleneck returns the link with the largest load/speed ratio —
// the link that bounds AAPC completion time on a heterogeneous cluster —
// together with that ratio (in units of messages per unit base bandwidth).
func (g *Graph) WeightedBottleneck() (LinkLoad, float64) {
	var worst LinkLoad
	ratio := -1.0
	for _, ll := range g.LinkLoads() {
		r := float64(ll.Load) / g.LinkSpeed(ll.Link)
		if r > ratio {
			ratio = r
			worst = ll
		}
	}
	return worst, ratio
}

// WeightedBestCaseTime generalizes BestCaseTime: the completion-time lower
// bound with per-link speeds, msize in bytes and base bandwidth in bytes per
// second.
func (g *Graph) WeightedBestCaseTime(msize int, bandwidth float64) float64 {
	_, ratio := g.WeightedBottleneck()
	return ratio * float64(msize) / bandwidth
}

// WeightedPeakAggregateThroughput generalizes PeakAggregateThroughput to
// heterogeneous links.
func (g *Graph) WeightedPeakAggregateThroughput(bandwidth float64) float64 {
	m := float64(g.NumMachines())
	_, ratio := g.WeightedBottleneck()
	if ratio <= 0 {
		return math.Inf(1)
	}
	return m * (m - 1) * bandwidth / ratio
}
